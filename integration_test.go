package gapsched

// Integration tests exercising the public facade end to end across
// modules: generator → solver → simulator → accounting, plus the
// cross-algorithm consistency relations that tie the repository
// together.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/exact"
	"repro/internal/workload"
)

func TestFacadeEndToEndOneInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		in := workload.FeasibleOneInterval(rng, 2+rng.Intn(10), 1+rng.Intn(3), 16, 5)
		if !Feasible(in) {
			t.Fatal("generator promised feasibility")
		}
		res, err := MinimizeGaps(in)
		if err != nil {
			t.Fatalf("MinimizeGaps: %v", err)
		}
		if err := res.Schedule.Validate(in); err != nil {
			t.Fatalf("schedule invalid: %v", err)
		}

		const alpha = 2.5
		pres, err := MinimizePower(in, alpha)
		if err != nil {
			t.Fatalf("MinimizePower: %v", err)
		}
		// The simulator's breakdown must equal the DP's optimum.
		tl := Simulate(pres.Schedule, alpha)
		if math.Abs(tl.Energy.Total-pres.Power) > 1e-9 {
			t.Fatalf("simulated energy %v != DP power %v", tl.Energy.Total, pres.Power)
		}
		// Power optimum never exceeds the gap-optimal schedule's power.
		if pres.Power > res.Schedule.PowerCost(alpha)+1e-9 {
			t.Fatalf("power optimum %v above gap schedule's %v", pres.Power, res.Schedule.PowerCost(alpha))
		}
		// EDF is feasible and no better than the optimum.
		edf, ok := EDF(in)
		if !ok {
			t.Fatal("EDF failed on feasible instance")
		}
		if edf.Spans() < res.Spans {
			t.Fatalf("EDF %d spans beats optimum %d", edf.Spans(), res.Spans)
		}
	}
}

func TestFacadeEndToEndMultiInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		mi := workload.FeasibleMultiInterval(rng, 2+rng.Intn(8), 1+rng.Intn(3), 1+rng.Intn(2), 14)
		if !FeasibleMulti(mi) {
			t.Fatal("generator promised feasibility")
		}
		const alpha = 2.0
		ms, st, err := ApproxMultiPower(mi, alpha, ApproxOptions{SearchDepth: 2})
		if err != nil {
			t.Fatalf("ApproxMultiPower: %v", err)
		}
		if err := ms.Validate(mi); err != nil {
			t.Fatalf("approx schedule invalid: %v", err)
		}
		naive, err := AnyMultiSchedule(mi)
		if err != nil {
			t.Fatalf("AnyMultiSchedule: %v", err)
		}
		if err := naive.Validate(mi); err != nil {
			t.Fatalf("naive schedule invalid: %v", err)
		}
		opt, ok := exact.PowerMulti(mi, alpha)
		if !ok {
			t.Fatal("oracle infeasible")
		}
		for name, got := range map[string]float64{
			"approx": ms.PowerCost(alpha),
			"naive":  naive.PowerCost(alpha),
		} {
			if got < opt-1e-9 {
				t.Fatalf("%s power %v below optimum %v", name, got, opt)
			}
			if got > (1+alpha)*opt+1e-9 {
				t.Fatalf("%s power %v above the universal (1+α) bound", name, got)
			}
		}
		tl := SimulateMulti(ms, alpha)
		if math.Abs(tl.Energy.Total-st.Power) > 1e-9 {
			t.Fatalf("simulated %v != stats power %v", tl.Energy.Total, st.Power)
		}
	}
}

// TestLayOutReducesMultiprocToMultiInterval verifies the §1 reduction on
// the span objective: the multiprocessor optimum equals the laid-out
// single-machine multi-interval optimum (spans are preserved because
// processor segments are separated and idle segment remainders are
// free).
func TestLayOutReducesMultiprocToMultiInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		in := workload.FeasibleOneInterval(rng, 2+rng.Intn(5), 1+rng.Intn(3), 8, 3)
		mi, _ := LayOut(in)
		direct, err := MinimizeGaps(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		laid, ok := exact.SpansMulti(mi)
		if !ok {
			t.Fatalf("trial %d: laid-out instance infeasible", trial)
		}
		if laid != direct.Spans {
			t.Fatalf("trial %d: laid-out optimum %d != multiprocessor optimum %d (p=%d jobs %v)",
				trial, laid, direct.Spans, in.Procs, in.Jobs)
		}
	}
}

func TestThroughputFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		mi := workload.MultiInterval(rng, 3+rng.Intn(6), 2, 2, 12)
		res, err := MaxThroughput(mi, 2)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Spans > 2 {
			t.Fatalf("trial %d: budget exceeded", trial)
		}
		opt := exact.MaxThroughput(mi, 2)
		if res.Jobs() > opt {
			t.Fatalf("trial %d: greedy beats oracle", trial)
		}
	}
}

func TestGreedyFacadeConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		in := workload.FeasibleOneInterval(rng, 2+rng.Intn(7), 1, 12, 4)
		g, err := GreedyGapSchedule(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		opt, err := MinimizeGaps(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if g.Spans < opt.Spans {
			t.Fatalf("trial %d: greedy %d spans beats exact %d", trial, g.Spans, opt.Spans)
		}
	}
}

func TestConstructorsRoundTrip(t *testing.T) {
	j := MultiJobFromTimes(3, 1, 2, 9)
	if j.NumTimes() != 4 || !j.Contains(9) || j.Contains(4) {
		t.Fatalf("MultiJobFromTimes wrong: %v", j)
	}
	iv := NewMultiJob(Interval{Lo: 0, Hi: 2}, Interval{Lo: 2, Hi: 4})
	if len(iv.Intervals) != 1 {
		t.Fatalf("NewMultiJob did not normalize: %v", iv.Intervals)
	}
	in := NewMultiprocInstance([]Job{{Release: 0, Deadline: 1}}, 3)
	if in.Procs != 3 {
		t.Fatal("NewMultiprocInstance lost procs")
	}
}
