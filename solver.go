package gapsched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fragcache"
	"repro/internal/heur"
	"repro/internal/obs"
	"repro/internal/poly"
	"repro/internal/prep"
	"repro/internal/sched"
)

// Objective selects what a Solver minimizes.
type Objective int

const (
	// ObjectiveGaps minimizes the total number of spans — sleep→active
	// transitions — across processors (Theorem 1).
	ObjectiveGaps Objective = iota
	// ObjectivePower minimizes total power consumption under the
	// transition cost Alpha, with idle-active bridging (Theorem 2).
	ObjectivePower
)

func (o Objective) String() string {
	switch o {
	case ObjectiveGaps:
		return "gaps"
	case ObjectivePower:
		return "power"
	}
	return fmt.Sprintf("Objective(%d)", int(o))
}

// Mode selects which solving tier serves an instance's fragments.
type Mode int

const (
	// ModeExact (the default) runs the exact DP engine on every
	// fragment: optimal costs, polynomial but steep in fragment size.
	ModeExact Mode = iota
	// ModeHeuristic runs the near-linear greedy tier (internal/heur) on
	// every fragment: always-feasible schedules with certified
	// optimality gaps (Solution.LowerBound ≤ OPT ≤ cost), serving
	// instance sizes the exact tier cannot.
	ModeHeuristic
	// ModeAuto picks per fragment among three tiers: the index-space DP
	// engine when the fragment's estimated DP size (prep.StateEstimate)
	// is within Solver.StateBudget; otherwise the polynomial
	// single-machine backend (internal/poly) when the fragment is
	// single-processor and its own, lower-degree estimate
	// (poly.Estimate) is within Solver.PolyBudget; the heuristic
	// otherwise. Mixed instances thus get exact answers wherever either
	// exact backend is affordable, and the Solution's LowerBound stays
	// tight (exact fragments contribute their optimal cost to it).
	ModeAuto
)

func (m Mode) String() string {
	switch m {
	case ModeExact:
		return "exact"
	case ModeHeuristic:
		return "heuristic"
	case ModeAuto:
		return "auto"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Cost returns sol's value under objective o, in the objective's own
// units: the span count (as a float) for ObjectiveGaps, the power for
// ObjectivePower. It pairs with Solution.LowerBound, which is
// expressed in the same units, so sol's certified optimality gap is
// o.Cost(sol) − sol.LowerBound.
func (o Objective) Cost(sol Solution) float64 {
	if o == ObjectivePower {
		return sol.Power
	}
	return float64(sol.Spans)
}

// ParseMode parses the mode names used by the CLIs and the wire format
// — "exact", "heuristic", "auto" — with "" meaning ModeExact.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "exact":
		return ModeExact, nil
	case "heuristic":
		return ModeHeuristic, nil
	case "auto":
		return ModeAuto, nil
	}
	return 0, fmt.Errorf("gapsched: unknown mode %q (want exact, heuristic or auto)", s)
}

// DefaultStateBudget is the ModeAuto exact-tier admission bound used
// when Solver.StateBudget is zero. It is calibrated so fragments of up
// to a few hundred jobs (sub-millisecond exact solves) stay exact while
// the huge fragments that would stall the engine go to the heuristic.
const DefaultStateBudget = 1 << 25

// DefaultPolyBudget is the ModeAuto admission bound for the polynomial
// single-machine backend, used when Solver.PolyBudget is zero. The
// backend's estimate (poly.Estimate, G·(n+1)) is a much lower-degree
// polynomial than the index-space shape, so the same order of budget
// admits single-processor fragments with thousands of jobs — the E23
// crossover — while fragments large enough to stall even the
// specialized backend still fall to the heuristic.
const DefaultPolyBudget = 1 << 25

// Solver is the configured entry point to the solving pipeline:
// preprocessing (instance decomposition and coordinate compression, see
// internal/prep), the solving tiers — the exact tier with its two
// backends, the index-space DP engine (internal/core) and the
// polynomial single-machine DP (internal/poly), plus the certified
// greedy heuristic (internal/heur), selected by Mode — an optional
// canonical-fragment solution cache,
// and, for SolveBatch, a bounded worker pool fed at fragment
// granularity. The zero value minimizes gaps exactly with
// preprocessing enabled and no cache.
type Solver struct {
	// Objective selects the cost model. Default: ObjectiveGaps.
	Objective Objective
	// Alpha is the sleep→active transition cost; used by
	// ObjectivePower. Must be non-negative.
	Alpha float64
	// NoPreprocess skips the prep layer and hands the raw instance to
	// the DP engine in one piece. Useful for ablation; results are
	// identical either way.
	NoPreprocess bool
	// Workers bounds SolveBatch concurrency. Zero or negative means
	// GOMAXPROCS.
	Workers int
	// CacheSize, when positive and Cache is nil, gives each SolveBatch
	// call a transient fragment cache with roughly that capacity, so
	// duplicate fragments within one batch are solved once. Zero or
	// negative disables the transient cache.
	CacheSize int
	// Cache, when non-nil, is a persistent canonical-fragment solution
	// cache consulted by both Solve and SolveBatch and shared across
	// calls (and across Solvers — entries are keyed by objective,
	// alpha, and solving tier, so differently configured Solvers can
	// share one cache without ever conflating an exact fragment
	// solution with a heuristic one). Takes precedence over CacheSize.
	Cache *FragmentCache
	// Mode selects the solving tier: ModeExact (default), ModeHeuristic,
	// or ModeAuto, which decides per fragment using StateBudget and
	// PolyBudget.
	Mode Mode
	// StateBudget is ModeAuto's admission bound for the index-space DP
	// engine: a fragment is solved there when its estimated DP size
	// (prep.StateEstimate) is at most this. Zero means
	// DefaultStateBudget; a negative budget disables the whole exact
	// tier — both backends — and sends every fragment to the heuristic.
	// Ignored by ModeExact and ModeHeuristic.
	StateBudget int
	// PolyBudget is ModeAuto's admission bound for the polynomial
	// single-machine backend, consulted only for fragments the
	// StateBudget gate rejected: such a fragment is solved by
	// internal/poly when it is single-processor (poly.Admissible) and
	// its backend estimate (poly.Estimate) is at most this. Zero means
	// DefaultPolyBudget; a negative budget disables the polynomial
	// backend. Ignored by ModeExact and ModeHeuristic.
	PolyBudget int
}

// Solution is the unified outcome of a Solver run.
type Solution struct {
	// Spans is the optimal number of spans (wake-ups) summed over
	// processors. For ObjectivePower it reports the spans of the
	// returned schedule, which need not be span-minimal.
	Spans int
	// Gaps is Spans−1 (clamped at 0), the classic gap count on one
	// processor.
	Gaps int
	// Power is the optimal power consumption; set for ObjectivePower.
	Power float64
	// Schedule is an optimal schedule for the configured objective.
	Schedule Schedule
	// States counts memoized DP subproblems, summed over sub-instances:
	// the effective size of the exact computation. Fragments served
	// from the cache report the states their solve cost when it ran, so
	// the count is independent of cache hits.
	States int
	// Subinstances is the number of independent fragments the prep
	// layer solved (1 when preprocessing is off or nothing splits, 0
	// for the empty instance).
	Subinstances int
	// CacheHits counts the fragments of this instance that were served
	// from the fragment cache (including waits on another worker's
	// in-flight solve of the same fragment). Always 0 when no cache is
	// configured.
	CacheHits int
	// ResolvedFragments and ReusedFragments are set by Session.Resolve:
	// the fragments re-solved because a delta dirtied them, and the
	// fragments whose stored solutions were reused without re-solving.
	// Both are 0 for one-shot Solve/SolveBatch results.
	ResolvedFragments int
	ReusedFragments   int
	// Mode records the Solver.Mode that produced this solution.
	Mode Mode
	// LowerBound is a certified lower bound on the optimal cost of the
	// solved instance, in the objective's own units (spans for
	// ObjectiveGaps, power for ObjectivePower): LowerBound ≤ OPT ≤ the
	// reported cost. Fragments solved exactly contribute their optimal
	// cost; fragments served by the heuristic tier contribute the
	// internal/heur certificates (Hall/density span bound,
	// active-units + forced-transitions power bound). For a pure exact
	// solve it therefore equals the optimal cost itself.
	LowerBound float64
	// HeuristicFragments counts the fragments served by the heuristic
	// tier; 0 for ModeExact, Subinstances for ModeHeuristic, and
	// in between for ModeAuto on mixed instances.
	HeuristicFragments int
	// PolyFragments counts the fragments served by the polynomial
	// single-machine backend (internal/poly) — exact solves, so they
	// contribute their optimal cost to LowerBound like the DP engine's.
	// Only ModeAuto routes fragments there, so this is 0 for ModeExact
	// and ModeHeuristic; the DP engine served
	// Subinstances − HeuristicFragments − PolyFragments.
	PolyFragments int
	// CompetitiveRatio, CommittedJobs, and CommittedCost are set by
	// Resolve on online (commit-only) sessions and zero everywhere
	// else. CompetitiveRatio is the measured ratio of the online run's
	// cost over the revealed prefix (committed units plus the current
	// run-out) to the certified LowerBound of the same prefix's offline
	// optimum — the certificate keeps the ratio honest (never
	// understated) even when the mirror solve is heuristic. It is ≥ 1
	// up to the certificate's slack. CommittedJobs counts the jobs
	// placed irrevocably; CommittedCost is the committed prefix's cost
	// in the objective's units.
	CompetitiveRatio float64
	CommittedJobs    int
	CommittedCost    float64
	// PrunedStates counts exact-tier DP subproblems answered by the
	// branch-and-bound lower bound without being expanded, summed over
	// fragments. ExpandedStates counts the subproblems the recursion
	// actually expanded; together with States they size the bounded
	// search against the full DP. Like States, fragments served from the
	// cache report the counters of the solve that populated the entry,
	// so both are independent of cache hits; heuristic fragments
	// contribute 0.
	PrunedStates   int
	ExpandedStates int
	// Timings is the per-stage wall-clock breakdown of this solve —
	// where the pipeline actually spent its time. Unlike the state
	// counters it measures this call: fragments served from the cache
	// contribute their lookup/wait time to Timings.Cache, not the
	// original solve's cost, and a Session.Resolve reports only the
	// fragments it re-solved.
	Timings Timings
}

// Timings is a solve's per-stage wall-clock breakdown. The stages
// mirror the pipeline: preprocessing (validation + decomposition),
// fragment-cache service (lookups that avoided a backend solve,
// singleflight waits included), the three solving backends, and
// reassembly (fragment schedules → instance schedule + validation).
// Durations are summed over fragments/sub-steps, so on a parallel
// SolveBatch they report aggregate work, not elapsed wall-clock.
type Timings struct {
	Prep      time.Duration
	Cache     time.Duration
	SolveDP   time.Duration
	SolvePoly time.Duration
	SolveHeur time.Duration
	Assemble  time.Duration
}

// Solve returns the summed backend solve time across all three tiers.
func (t Timings) Solve() time.Duration {
	return t.SolveDP + t.SolvePoly + t.SolveHeur
}

// Total returns the summed duration of every recorded stage.
func (t Timings) Total() time.Duration {
	return t.Prep + t.Cache + t.Solve() + t.Assemble
}

// add folds one fragment's outcome into the breakdown.
func (t *Timings) add(r fragResult) {
	if r.hit {
		t.Cache += r.dur
		return
	}
	switch {
	case r.heur:
		t.SolveHeur += r.dur
	case r.poly:
		t.SolvePoly += r.dur
	default:
		t.SolveDP += r.dur
	}
}

// FragmentCache is a sharded, bounded (LRU per shard) cache of
// canonical-fragment solutions with in-flight deduplication: concurrent
// solves of identical fragments are performed once. It is safe for
// concurrent use and may be shared across Solvers and batches; entries
// are keyed by the fragment's canonical form plus objective and alpha
// (see internal/prep.CanonicalKey), so a hit is always an exact match.
type FragmentCache struct {
	c *fragcache.Cache[fragSolution]
}

// NewFragmentCache builds a fragment cache holding at most about
// capacity fragment solutions (the bound is enforced per shard, so it
// is approximate; see internal/fragcache).
func NewFragmentCache(capacity int) *FragmentCache {
	return &FragmentCache{c: fragcache.New[fragSolution](capacity)}
}

// CacheStats snapshots a FragmentCache's effectiveness counters.
type CacheStats = fragcache.Stats

// Stats snapshots the cache counters accumulated over every solve that
// used this cache.
func (fc *FragmentCache) Stats() CacheStats { return fc.c.Stats() }

// Len returns the number of fragment solutions currently stored.
func (fc *FragmentCache) Len() int { return fc.c.Len() }

// fragSolution is one cached canonical-fragment outcome. The schedule
// is in canonical job order; err is typically ErrInfeasible (infeasible
// fragments are cached too, so repeated infeasible duplicates do not
// re-run the feasibility machinery). lb is the fragment's certified
// lower bound — the optimal cost itself when the fragment was solved
// exactly, the internal/heur certificate when heur is set.
type fragSolution struct {
	cost     float64
	schedule sched.Schedule
	states   int
	pruned   int
	expanded int
	lb       float64
	heur     bool
	poly     bool
	err      error
}

// heurTag and polyTag mark heuristic-tier and polynomial-backend
// entries in the cache key's tag byte, so backends can never serve
// each other's solutions even when Solvers of different modes share
// one FragmentCache. (Poly entries are exact, but their counters —
// states, backend attribution — differ from the DP engine's, and
// keeping the keyspaces disjoint keeps every Solution's accounting
// independent of who warmed the cache.)
const (
	heurTag = 0x80
	polyTag = 0x40
)

// backend identifies which solver serves one fragment: the exact tier
// is pluggable — the index-space B&B engine (internal/core) and the
// polynomial single-machine DP (internal/poly) are two implementations
// behind the same seam — and the certified greedy is the fallback.
type backend int

const (
	backendDP backend = iota
	backendPoly
	backendHeur
)

// objectiveRuntime binds the objective- and mode-specific pieces of
// the pipeline after the configuration has been validated once: how to
// decompose an instance, how to solve one fragment on each backend,
// which backend a fragment goes to, and how to interpret the
// accumulated cost. Sharing it between Solve and SolveBatch is what
// makes their validation and results uniform.
type objectiveRuntime struct {
	tag        byte // cache-key objective tag
	alpha      float64
	mode       Mode
	budget     int // resolved ModeAuto DP-engine admission bound
	polyBudget int // resolved ModeAuto poly-backend admission bound
	plan       func(sched.Instance) *prep.Plan
	solveExact func(sched.Instance) fragSolution
	solvePoly  func(sched.Instance) fragSolution
	solveHeur  func(sched.Instance) fragSolution
	finish     func(*Solution, float64)
}

// solverFor returns the solve function and cache-key tag of one
// backend. Distinct tag bits keep the three keyspaces disjoint in a
// shared FragmentCache.
func (rt *objectiveRuntime) solverFor(b backend) (func(sched.Instance) fragSolution, byte) {
	switch b {
	case backendPoly:
		return rt.solvePoly, rt.tag | polyTag
	case backendHeur:
		return rt.solveHeur, rt.tag | heurTag
	}
	return rt.solveExact, rt.tag
}

// autoPruneDiscount scales ModeAuto's admission estimate to reflect
// branch-and-bound pruning: prep.StateEstimate models the unpruned
// state space, while the bounded engine expands a fraction of it on
// real workloads (the state-count reductions E21 measures run well
// above this factor), so admitting by raw estimate would send the
// exact tier's newly affordable fragments to the heuristic. Dividing
// the estimate, rather than multiplying the budget, keeps MaxInt
// budgets overflow-free.
const autoPruneDiscount = 32

// tier picks the backend serving one fragment under the configured
// mode. ModeAuto decides three ways: the index-space DP engine when
// the fragment's estimated DP size — discounted for pruning — fits
// StateBudget; otherwise the polynomial backend when the fragment is
// single-processor and its lower-degree estimate fits PolyBudget;
// the heuristic otherwise. A negative StateBudget disables the whole
// exact tier (both backends), preserving the established "auto with a
// negative budget ≡ heuristic" contract. Every estimate depends only
// on the job multiset and processor count, so the decision is
// identical for a fragment and its canonical form.
func (rt *objectiveRuntime) tier(fr sched.Instance) backend {
	switch rt.mode {
	case ModeHeuristic:
		return backendHeur
	case ModeAuto:
		if rt.budget < 0 {
			return backendHeur
		}
		if prep.StateEstimate(fr)/autoPruneDiscount <= rt.budget {
			return backendDP
		}
		if rt.polyBudget >= 0 && poly.Admissible(fr) && poly.Estimate(fr) <= rt.polyBudget {
			return backendPoly
		}
		return backendHeur
	}
	return backendDP
}

// heurErr maps the heuristic tier's infeasibility onto the facade's
// ErrInfeasible, so callers see one error identity regardless of tier.
func heurErr(err error) error {
	if errors.Is(err, heur.ErrInfeasible) {
		return ErrInfeasible
	}
	return err
}

// polyErr is heurErr's analogue for the polynomial backend.
func polyErr(err error) error {
	if errors.Is(err, poly.ErrInfeasible) {
		return ErrInfeasible
	}
	return err
}

// runtime validates the Solver configuration — Alpha, Objective, and
// Mode — in one place, so Solve and SolveBatch report identical errors
// for identical misconfigurations regardless of objective path.
func (s Solver) runtime() (objectiveRuntime, error) {
	if s.Alpha < 0 {
		return objectiveRuntime{}, fmt.Errorf("gapsched: negative transition cost alpha %v", s.Alpha)
	}
	switch s.Mode {
	case ModeExact, ModeHeuristic, ModeAuto:
	default:
		return objectiveRuntime{}, fmt.Errorf("gapsched: unknown mode %v", s.Mode)
	}
	budget := s.StateBudget
	if budget == 0 {
		budget = DefaultStateBudget
	}
	polyBudget := s.PolyBudget
	if polyBudget == 0 {
		polyBudget = DefaultPolyBudget
	}
	switch s.Objective {
	case ObjectiveGaps:
		return objectiveRuntime{
			tag:        byte(ObjectiveGaps),
			mode:       s.Mode,
			budget:     budget,
			polyBudget: polyBudget,
			plan:       prep.ForGaps,
			solveExact: func(fr sched.Instance) fragSolution {
				res, err := core.SolveGaps(fr)
				return fragSolution{cost: float64(res.Spans), schedule: res.Schedule,
					states: res.States, pruned: res.PrunedStates, expanded: res.ExpandedStates,
					lb: float64(res.Spans), err: err}
			},
			solvePoly: func(fr sched.Instance) fragSolution {
				res, err := poly.SolveGaps(fr)
				return fragSolution{cost: res.Cost, schedule: res.Schedule,
					states: res.States, pruned: res.PrunedStates, expanded: res.ExpandedStates,
					lb: res.Cost, poly: true, err: polyErr(err)}
			},
			solveHeur: func(fr sched.Instance) fragSolution {
				res, err := heur.SolveGapsFragment(fr)
				return fragSolution{cost: res.Cost, schedule: res.Schedule,
					lb: res.LowerBound, heur: true, err: heurErr(err)}
			},
			finish: func(sol *Solution, cost float64) {
				sol.Spans = int(cost)
				sol.Gaps = max(sol.Spans-1, 0)
			},
		}, nil
	case ObjectivePower:
		alpha := s.Alpha
		return objectiveRuntime{
			tag:        byte(ObjectivePower),
			alpha:      alpha,
			mode:       s.Mode,
			budget:     budget,
			polyBudget: polyBudget,
			plan:       func(in sched.Instance) *prep.Plan { return prep.ForPower(in, alpha) },
			solveExact: func(fr sched.Instance) fragSolution {
				res, err := core.SolvePower(fr, alpha)
				return fragSolution{cost: res.Power, schedule: res.Schedule,
					states: res.States, pruned: res.PrunedStates, expanded: res.ExpandedStates,
					lb: res.Power, err: err}
			},
			solvePoly: func(fr sched.Instance) fragSolution {
				res, err := poly.SolvePower(fr, alpha)
				return fragSolution{cost: res.Cost, schedule: res.Schedule,
					states: res.States, pruned: res.PrunedStates, expanded: res.ExpandedStates,
					lb: res.Cost, poly: true, err: polyErr(err)}
			},
			solveHeur: func(fr sched.Instance) fragSolution {
				res, err := heur.SolvePowerFragment(fr, alpha)
				return fragSolution{cost: res.Cost, schedule: res.Schedule,
					lb: res.LowerBound, heur: true, err: heurErr(err)}
			},
			finish: func(sol *Solution, cost float64) {
				sol.Power = cost
				sol.Spans = sol.Schedule.Spans()
				sol.Gaps = max(sol.Spans-1, 0)
			},
		}, nil
	}
	return objectiveRuntime{}, fmt.Errorf("gapsched: unknown objective %v", s.Objective)
}

// fragResult is the outcome of solving one fragment, in the fragment's
// own job order. dur is the wall-clock this call spent obtaining the
// result — the backend solve for a miss, the lookup (and possible
// singleflight wait) for a cache hit.
type fragResult struct {
	cost     float64
	schedule sched.Schedule
	states   int
	pruned   int
	expanded int
	lb       float64
	heur     bool
	poly     bool
	hit      bool
	dur      time.Duration
	err      error
}

// backendName names the backend that produced a result, matching the
// obs span tags and the daemon's per-backend metric labels.
func (r fragResult) backendName() string {
	switch {
	case r.heur:
		return "heuristic"
	case r.poly:
		return "poly"
	}
	return "dp"
}

// record stamps the fragment's duration and, when a trace is attached,
// its span: cache hits become StageCache spans, real solves become
// backend-tagged StageSolve spans.
func (r *fragResult) record(tr *obs.Trace, start time.Time) {
	r.dur = time.Since(start)
	if tr == nil {
		return
	}
	name := obs.StageSolve
	if r.hit {
		name = obs.StageCache
	}
	tr.Span(name, r.backendName(), start, r.dur)
}

// preparedInstance is one instance after the prep phase: its fragments
// ready to solve (each independently) and slots for their results. For
// NoPreprocess the whole raw instance is the single "fragment".
type preparedInstance struct {
	in      Instance
	plan    *prep.Plan // nil when NoPreprocess
	frags   []sched.Instance
	err     error // validation error; no fragments when set
	prepDur time.Duration
	results []fragResult
	// failed is set once any fragment errors, so batch workers skip the
	// instance's remaining fragments instead of solving results that
	// finishInstance will discard. Skipping cannot change which error
	// is reported for an uncanceled solve: fragments of a validated
	// instance only ever fail with ErrInfeasible, so the first error in
	// fragment order is the same error regardless of which fragments
	// actually ran. (Once the batch context is done, fragments fail
	// with the context's error instead, and the reported error may be
	// either — both mean "not solved".)
	failed atomic.Bool
}

// prepare runs the prep phase for one instance, timing it (the prep
// duration lands in Solution.Timings and, when a trace is attached, a
// StagePrep span).
func (s Solver) prepare(in Instance, rt objectiveRuntime, tr *obs.Trace) *preparedInstance {
	start := time.Now()
	p := &preparedInstance{in: in}
	defer func() {
		p.prepDur = time.Since(start)
		tr.Span(obs.StagePrep, "", start, p.prepDur)
	}()
	if s.NoPreprocess {
		p.frags = []sched.Instance{in}
	} else {
		if err := in.Validate(); err != nil {
			p.err = err
			return p
		}
		p.plan = rt.plan(in)
		p.frags = make([]sched.Instance, len(p.plan.Subs))
		for i, sub := range p.plan.Subs {
			p.frags[i] = sub.Instance
		}
	}
	p.results = make([]fragResult, len(p.frags))
	return p
}

// solveFragment solves one fragment on the backend the configured
// mode assigns it, through the cache when one is configured. Cached
// solves run on the canonical form of the fragment (jobs sorted in
// compressed coordinates) and the stored schedule is mapped back
// through the canonicalization permutation, so a hit returns a
// schedule of the fragment as given; each backend's entries carry a
// distinct key tag, so backends never serve each other's solutions.
// Every call is timed: the elapsed wall-clock lands in the result's
// dur and, when tr is non-nil, in a per-fragment span — a
// backend-tagged StageSolve span for a real solve, a StageCache span
// for a hit (singleflight waits on another worker's solve included).
func (s Solver) solveFragment(rt objectiveRuntime, cache *FragmentCache, fr sched.Instance, tr *obs.Trace) fragResult {
	start := time.Now()
	solve, tag := rt.solverFor(rt.tier(fr))
	if cache == nil {
		val := solve(fr)
		res := fragResult{cost: val.cost, schedule: val.schedule, states: val.states,
			pruned: val.pruned, expanded: val.expanded,
			lb: val.lb, heur: val.heur, poly: val.poly, err: val.err}
		res.record(tr, start)
		return res
	}
	canon, perm := prep.Canonicalize(fr)
	key := prep.CanonicalKey(canon, tag, rt.alpha)
	val, hit := cache.c.Do(key, func() fragSolution { return solve(canon) })
	res := fragResult{cost: val.cost, states: val.states,
		pruned: val.pruned, expanded: val.expanded,
		lb: val.lb, heur: val.heur, poly: val.poly, hit: hit, err: val.err}
	if val.err == nil {
		// Canonical job i is fragment job perm[i]; their windows agree,
		// so rerouting the slots yields a valid fragment schedule. The
		// cached slice is shared and read-only; build a fresh one.
		slots := make([]sched.Assignment, len(val.schedule.Slots))
		for i, a := range val.schedule.Slots {
			slots[perm[i]] = a
		}
		res.schedule = sched.Schedule{Procs: val.schedule.Procs, Slots: slots}
	}
	res.record(tr, start)
	return res
}

// finishInstance folds per-fragment results (all of which must be
// populated unless a fragment errored, after which siblings may be
// zero-value placeholders) into one Solution: costs and
// states accumulate in fragment order — fixed summation order keeps
// float results bit-identical no matter which workers solved what —
// and the fragment schedules are reassembled onto the original
// instance. The first error in fragment order wins, matching a
// sequential solve exactly. The reassembly is timed into
// Timings.Assemble (and a StageAssemble span when tr is non-nil);
// per-fragment durations accumulate into the stage the fragment used.
func (s Solver) finishInstance(p *preparedInstance, rt objectiveRuntime, tr *obs.Trace) (Solution, error) {
	if p.err != nil {
		return Solution{}, p.err
	}
	sol := Solution{Subinstances: len(p.frags), Mode: s.Mode}
	sol.Timings.Prep = p.prepDur
	parts := make([]sched.Schedule, len(p.frags))
	cost := 0.0
	for i := range p.results {
		r := &p.results[i]
		if r.err != nil {
			return Solution{}, r.err
		}
		cost += r.cost
		sol.LowerBound += r.lb
		sol.States += r.states
		sol.PrunedStates += r.pruned
		sol.ExpandedStates += r.expanded
		if r.heur {
			sol.HeuristicFragments++
		}
		if r.poly {
			sol.PolyFragments++
		}
		if r.hit {
			sol.CacheHits++
		}
		sol.Timings.add(*r)
		parts[i] = r.schedule
	}
	if p.plan == nil {
		sol.Schedule = parts[0]
	} else {
		start := time.Now()
		schedule, err := p.plan.Assemble(parts)
		if err == nil {
			err = schedule.Validate(p.in)
		}
		sol.Timings.Assemble = time.Since(start)
		tr.Span(obs.StageAssemble, "", start, sol.Timings.Assemble)
		if err != nil {
			return Solution{}, err
		}
		sol.Schedule = schedule
	}
	rt.finish(&sol, cost)
	return sol, nil
}

// Solve runs the configured pipeline on one instance. It consults
// s.Cache when set (a transient CacheSize cache is a batch-level
// feature and does not apply here). Solve is SolveContext with a
// background context.
func (s Solver) Solve(in Instance) (Solution, error) {
	return s.SolveContext(context.Background(), in)
}

// SolveContext is Solve with cancellation and deadline support: the
// context is observed at fragment granularity, so a solve of a
// many-fragment instance stops between fragments once ctx is done and
// returns ctx.Err() (wrapped). A fragment already running in the DP
// engine is completed; unit fragments are fast, so cancellation
// latency is bounded by the heaviest single fragment. A successful
// return is always a complete, bit-identical Solve result — partial
// solutions are never returned.
func (s Solver) SolveContext(ctx context.Context, in Instance) (Solution, error) {
	rt, err := s.runtime()
	if err != nil {
		return Solution{}, err
	}
	return s.solveOne(ctx, in, rt, s.Cache)
}

// ctxErr converts a done context into the facade's error form.
func ctxErr(ctx context.Context) error {
	return fmt.Errorf("gapsched: solve aborted: %w", context.Cause(ctx))
}

func (s Solver) solveOne(ctx context.Context, in Instance, rt objectiveRuntime, cache *FragmentCache) (Solution, error) {
	tr := obs.FromContext(ctx)
	p := s.prepare(in, rt, tr)
	for i, fr := range p.frags {
		if ctx.Err() != nil {
			return Solution{}, ctxErr(ctx)
		}
		p.results[i] = s.solveFragment(rt, cache, fr, tr)
		if p.results[i].err != nil {
			break // finishInstance reports the first error in order
		}
	}
	return s.finishInstance(p, rt, tr)
}

// BatchResult pairs one instance's Solution with its error; exactly one
// of the two is meaningful.
type BatchResult struct {
	Solution Solution
	Err      error
}

// task addresses one fragment in the flattened batch work queue.
type task struct {
	inst, frag int
}

// SolveBatch solves every instance with the configured pipeline,
// distributing work across a pool bounded by Workers (default
// GOMAXPROCS) at *fragment* granularity: all instances are preprocessed
// up front, their fragments flattened into one work queue, and each
// instance's solution assembled as its last fragment completes. A
// skewed instance therefore cannot serialize the batch behind one
// worker, and — when a cache is configured via Cache or CacheSize —
// identical fragments recurring across the batch are solved once.
//
// Results align positionally with ins and are identical to per-instance
// Solve calls (first-error semantics and bit-exact costs included),
// independent of Workers and of cache configuration — except CacheHits,
// whose attribution across instances depends on which worker reaches a
// duplicate fragment first (and on CacheSize, which Solve ignores).
// Instances are independent; a failure in one does not disturb the
// others.
//
// SolveBatch is SolveBatchContext with a background context.
func (s Solver) SolveBatch(ins []Instance) []BatchResult {
	return s.SolveBatchContext(context.Background(), ins)
}

// SolveBatchContext is SolveBatch with cancellation and deadline
// support. The context is observed at fragment granularity: once ctx
// is done, workers stop picking up fragments, already-running
// fragments are completed, and every instance whose solve did not
// finish reports ctx's error (instances whose fragments all completed
// before the cancellation still report their full solution). A nil
// error in a BatchResult therefore always accompanies a complete,
// bit-identical solution.
func (s Solver) SolveBatchContext(ctx context.Context, ins []Instance) []BatchResult {
	out := make([]BatchResult, len(ins))
	if len(ins) == 0 {
		return out
	}
	rt, err := s.runtime()
	if err != nil {
		for i := range out {
			out[i].Err = err
		}
		return out
	}
	cache := s.Cache
	if cache == nil && s.CacheSize > 0 {
		cache = NewFragmentCache(s.CacheSize)
	}

	// Prep phase: decompose every instance, flatten the fragments. One
	// batch shares the context's trace, so its spans interleave across
	// instances; per-instance Timings stay exact regardless.
	tr := obs.FromContext(ctx)
	prepped := make([]*preparedInstance, len(ins))
	queue := make([]task, 0, len(ins))
	for i, in := range ins {
		prepped[i] = s.prepare(in, rt, tr)
		for f := range prepped[i].frags {
			queue = append(queue, task{inst: i, frag: f})
		}
	}

	// Instances with nothing to solve (validation failures, empty
	// plans) finish immediately; the rest finish when their fragment
	// counter drains.
	remaining := make([]atomic.Int32, len(ins))
	for i, p := range prepped {
		if len(p.frags) == 0 {
			out[i].Solution, out[i].Err = s.finishInstance(p, rt, tr)
		} else {
			remaining[i].Store(int32(len(p.frags)))
		}
	}

	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queue) {
		workers = len(queue)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				qi := int(next.Add(1)) - 1
				if qi >= len(queue) {
					return
				}
				tk := queue[qi]
				p := prepped[tk.inst]
				if !p.failed.Load() {
					var res fragResult
					if ctx.Err() != nil {
						res = fragResult{err: ctxErr(ctx)}
					} else {
						res = s.solveFragment(rt, cache, p.frags[tk.frag], tr)
					}
					p.results[tk.frag] = res
					if res.err != nil {
						p.failed.Store(true)
					}
				}
				// The worker that drains the counter observes every
				// sibling fragment's result (atomic Add orders the
				// writes) and assembles the instance.
				if remaining[tk.inst].Add(-1) == 0 {
					out[tk.inst].Solution, out[tk.inst].Err = s.finishInstance(p, rt, tr)
				}
			}
		}()
	}
	wg.Wait()
	return out
}
