package gapsched

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/prep"
	"repro/internal/sched"
)

// Objective selects what a Solver minimizes.
type Objective int

const (
	// ObjectiveGaps minimizes the total number of spans — sleep→active
	// transitions — across processors (Theorem 1).
	ObjectiveGaps Objective = iota
	// ObjectivePower minimizes total power consumption under the
	// transition cost Alpha, with idle-active bridging (Theorem 2).
	ObjectivePower
)

func (o Objective) String() string {
	switch o {
	case ObjectiveGaps:
		return "gaps"
	case ObjectivePower:
		return "power"
	}
	return fmt.Sprintf("Objective(%d)", int(o))
}

// Solver is the configured entry point to the exact solving pipeline:
// preprocessing (instance decomposition and coordinate compression, see
// internal/prep), the unified DP engine (internal/core), and — for
// SolveBatch — a bounded worker pool. The zero value minimizes gaps
// with preprocessing enabled.
type Solver struct {
	// Objective selects the cost model. Default: ObjectiveGaps.
	Objective Objective
	// Alpha is the sleep→active transition cost; used by
	// ObjectivePower. Must be non-negative.
	Alpha float64
	// NoPreprocess skips the prep layer and hands the raw instance to
	// the DP engine in one piece. Useful for ablation; results are
	// identical either way.
	NoPreprocess bool
	// Workers bounds SolveBatch concurrency. Zero or negative means
	// GOMAXPROCS.
	Workers int
}

// Solution is the unified outcome of a Solver run.
type Solution struct {
	// Spans is the optimal number of spans (wake-ups) summed over
	// processors. For ObjectivePower it reports the spans of the
	// returned schedule, which need not be span-minimal.
	Spans int
	// Gaps is Spans−1 (clamped at 0), the classic gap count on one
	// processor.
	Gaps int
	// Power is the optimal power consumption; set for ObjectivePower.
	Power float64
	// Schedule is an optimal schedule for the configured objective.
	Schedule Schedule
	// States counts memoized DP subproblems, summed over sub-instances:
	// the effective size of the exact computation.
	States int
	// Subinstances is the number of independent fragments the prep
	// layer solved (1 when preprocessing is off or nothing splits, 0
	// for the empty instance).
	Subinstances int
}

// Solve runs the configured pipeline on one instance.
func (s Solver) Solve(in Instance) (Solution, error) {
	switch s.Objective {
	case ObjectiveGaps:
		return s.solveGaps(in)
	case ObjectivePower:
		return s.solvePower(in)
	default:
		return Solution{}, fmt.Errorf("gapsched: unknown objective %v", s.Objective)
	}
}

func (s Solver) solveGaps(in Instance) (Solution, error) {
	cost, sol, err := s.pipeline(in, prep.ForGaps, func(fr sched.Instance) (float64, sched.Schedule, int, error) {
		res, err := core.SolveGaps(fr)
		return float64(res.Spans), res.Schedule, res.States, err
	})
	if err != nil {
		return Solution{}, err
	}
	sol.Spans = int(cost)
	sol.Gaps = max(sol.Spans-1, 0)
	return sol, nil
}

func (s Solver) solvePower(in Instance) (Solution, error) {
	if s.Alpha < 0 {
		return Solution{}, fmt.Errorf("gapsched: negative transition cost alpha %v", s.Alpha)
	}
	plan := func(in sched.Instance) *prep.Plan { return prep.ForPower(in, s.Alpha) }
	cost, sol, err := s.pipeline(in, plan, func(fr sched.Instance) (float64, sched.Schedule, int, error) {
		res, err := core.SolvePower(fr, s.Alpha)
		return res.Power, res.Schedule, res.States, err
	})
	if err != nil {
		return Solution{}, err
	}
	sol.Power = cost
	sol.Spans = sol.Schedule.Spans()
	sol.Gaps = max(sol.Spans-1, 0)
	return sol, nil
}

// pipeline is the objective-independent half of Solve: decompose with
// the prep layer (unless NoPreprocess), solve every fragment with
// solveSub, accumulate cost and states, and reassemble a schedule of
// the original instance. The objective-specific entry points interpret
// the accumulated cost.
func (s Solver) pipeline(
	in Instance,
	plan func(sched.Instance) *prep.Plan,
	solveSub func(sched.Instance) (float64, sched.Schedule, int, error),
) (float64, Solution, error) {
	if s.NoPreprocess {
		cost, schedule, states, err := solveSub(in)
		if err != nil {
			return 0, Solution{}, err
		}
		return cost, Solution{Schedule: schedule, States: states, Subinstances: 1}, nil
	}
	if err := in.Validate(); err != nil {
		return 0, Solution{}, err
	}
	pl := plan(in)
	sol := Solution{Subinstances: len(pl.Subs)}
	parts := make([]sched.Schedule, len(pl.Subs))
	cost := 0.0
	for i, sub := range pl.Subs {
		c, schedule, states, err := solveSub(sub.Instance)
		if err != nil {
			return 0, Solution{}, err
		}
		cost += c
		sol.States += states
		parts[i] = schedule
	}
	schedule, err := pl.Assemble(parts)
	if err != nil {
		return 0, Solution{}, err
	}
	if err := schedule.Validate(in); err != nil {
		return 0, Solution{}, err
	}
	sol.Schedule = schedule
	return cost, sol, nil
}

// BatchResult pairs one instance's Solution with its error; exactly one
// of the two is meaningful.
type BatchResult struct {
	Solution Solution
	Err      error
}

// SolveBatch solves every instance with the configured pipeline,
// fanning the work across a worker pool bounded by Workers (default
// GOMAXPROCS). Results align positionally with ins. Instances are
// independent; a failure in one does not disturb the others.
func (s Solver) SolveBatch(ins []Instance) []BatchResult {
	out := make([]BatchResult, len(ins))
	if len(ins) == 0 {
		return out
	}
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ins) {
		workers = len(ins)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ins) {
					return
				}
				out[i].Solution, out[i].Err = s.Solve(ins[i])
			}
		}()
	}
	wg.Wait()
	return out
}
