package gapsched

// Incremental scheduling sessions: the facade over internal/incr. A
// Session holds a live instance and keeps its exact solution current
// under job add/remove deltas, re-solving only the fragments a delta
// touched (the rest keep their stored results), with every Resolve
// bit-identical to a from-scratch Solve of the current job set. This
// is the stateful tier the paper's motivating workloads want: devices
// and real-time systems where unit jobs arrive and expire over time.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/incr"
	"repro/internal/obs"
	"repro/internal/online"
	"repro/internal/sched"
)

// ErrSessionClosed is returned by every operation on a closed Session.
var ErrSessionClosed = errors.New("gapsched: session closed")

// ErrCommitOnly is returned by Remove on online sessions: commitments
// are irrevocable, so the live job set only ever grows.
var ErrCommitOnly = errors.New("gapsched: online session is commit-only")

// ErrReleaseOrder is returned by Add on online sessions when a job
// arrives out of release order (its release precedes an earlier
// arrival's). It is internal/online's sentinel, re-exported.
var ErrReleaseOrder = online.ErrReleaseOrder

// Session is a stateful incremental solver: a live job set plus its
// forced-idle fragment decomposition, maintained under deltas so that
// Resolve re-solves only dirty fragments. Obtain one with
// Solver.Open; it inherits the Solver's objective, alpha, and cache
// configuration. Fragment solves go through the Solver's
// FragmentCache when one is configured (Cache, or a session-lifetime
// cache of CacheSize entries), so sessions also reuse fragments solved
// by batches and by each other.
//
// A Session is safe for concurrent use; operations serialize on an
// internal mutex, so a Resolve and a delta never interleave.
type Session struct {
	mu     sync.Mutex
	rt     objectiveRuntime
	solver Solver
	cache  *FragmentCache
	tr     *incr.Tracker
	onl    *online.Scheduler // non-nil for commit-only online sessions
	closed bool
}

// Open starts an incremental session on procs processors (0 means 1)
// with the Solver's configuration. The session decomposes with the
// same split width the one-shot pipeline uses — every forced-idle run
// for ObjectiveGaps, runs of width ≥ Alpha for ObjectivePower — so its
// solutions are bit-identical to from-scratch solves. NoPreprocess
// and Workers do not apply to sessions: incrementality is the
// decomposition, and Resolve solves its dirty fragments sequentially —
// a delta typically dirties one fragment, so there is nothing to fan
// out (for a bulk first solve of a huge job set, SolveBatch the
// instance once and open the session for the churn). Configuration
// errors are the same ones Solve reports.
func (s Solver) Open(procs int) (*Session, error) {
	rt, err := s.runtime()
	if err != nil {
		return nil, err
	}
	if procs == 0 {
		procs = 1
	}
	if procs < 0 {
		return nil, fmt.Errorf("gapsched: session on %d processors, need ≥ 1", procs)
	}
	splitWidth := 1.0
	if s.Objective == ObjectivePower {
		splitWidth = s.Alpha
	}
	cache := s.Cache
	if cache == nil && s.CacheSize > 0 {
		cache = NewFragmentCache(s.CacheSize)
	}
	return &Session{
		rt:     rt,
		solver: s,
		cache:  cache,
		tr:     incr.New(procs, splitWidth),
	}, nil
}

// OpenOnline starts a commit-only online session on procs processors
// (0 means 1): jobs are revealed with Add in release order, each
// arrival irrevocably commits every time unit before its release —
// eager-EDF assignments, with idle periods priced by the α-threshold
// ski-rental rule for ObjectivePower (internal/online) — and Resolve
// returns the online run's schedule over the revealed prefix together
// with its measured competitive ratio against the prefix's offline
// optimum. The offline mirror re-solves through this Solver in
// ModeAuto regardless of s.Mode, so the certificate LowerBound keeps
// the ratio honest even when the prefix outgrows the exact tier.
// Remove returns ErrCommitOnly: the commitments cannot be revisited.
func (s Solver) OpenOnline(procs int) (*Session, error) {
	mirror := s
	mirror.Mode = ModeAuto
	ss, err := mirror.Open(procs)
	if err != nil {
		return nil, err
	}
	if procs == 0 {
		procs = 1
	}
	ss.onl, err = online.NewScheduler(online.Config{
		Procs: procs,
		Alpha: s.Alpha,
		Power: s.Objective == ObjectivePower,
	})
	if err != nil {
		return nil, err
	}
	return ss, nil
}

// Add inserts a job into the live instance and returns its id, the
// handle Remove takes. Ids are assigned in arrival order and never
// reused. Only the fragments whose covered regions the job touches or
// bridges are marked dirty.
//
// On an online session, Add is the revelation step: jobs must arrive
// in non-decreasing release order (ErrReleaseOrder otherwise — the
// rejected job is not admitted), and each Add first commits every time
// unit before the job's release, irrevocably. A commitment that
// misses a deadline makes the session permanently infeasible — Resolve
// keeps returning ErrInfeasible — but later Adds still succeed: the
// revealed job set remains well-defined.
func (ss *Session) Add(j Job) (int, error) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.closed {
		return 0, ErrSessionClosed
	}
	if !j.Valid() {
		return 0, fmt.Errorf("gapsched: job has empty window [%d,%d]", j.Release, j.Deadline)
	}
	if ss.onl != nil {
		if _, _, err := ss.onl.Step(j.Release, []sched.Job{j}); err != nil {
			return 0, err
		}
	}
	// For online sessions the tracker mirrors the scheduler's job set;
	// both assign sequential ids in arrival order, so the ids agree.
	return ss.tr.Add(j), nil
}

// Remove deletes the job with the given id. Only the fragment that
// contained the job is re-decomposed (it may split); everything else
// keeps its solved result. Online sessions are commit-only and return
// ErrCommitOnly.
func (ss *Session) Remove(id int) error {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.closed {
		return ErrSessionClosed
	}
	if ss.onl != nil {
		return ErrCommitOnly
	}
	if !ss.tr.Remove(id) {
		return fmt.Errorf("gapsched: session has no job %d", id)
	}
	return nil
}

// Online reports whether the session is commit-only (opened with
// OpenOnline) and, if so, the arrival watermark: the earliest release
// the next Add may carry (math.MinInt before the first Add). Callers
// that need a delta to apply atomically pre-validate arrival order
// against it.
func (ss *Session) Online() (watermark int, online bool) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.closed || ss.onl == nil {
		return math.MinInt, false
	}
	return ss.onl.Watermark(), true
}

// Len returns the number of live jobs; 0 after Close.
func (ss *Session) Len() int {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.closed {
		return 0
	}
	return ss.tr.Len()
}

// Job returns the live job with the given id. Callers that need a
// whole delta to apply atomically (the daemon's /v1/session endpoints)
// use it to verify every removal before mutating anything.
func (ss *Session) Job(id int) (Job, bool) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.closed {
		return Job{}, false
	}
	return ss.tr.Job(id)
}

// Instance snapshots the current job set (jobs in id order) — the
// instance a from-scratch Solve would be handed to reproduce the next
// Resolve exactly, and the one its Schedule validates against. After
// Close it returns the zero Instance, like every other accessor.
func (ss *Session) Instance() Instance {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.closed {
		return Instance{}
	}
	return ss.tr.Instance()
}

// Resolve brings the solution up to date and returns it: dirty
// fragments are re-solved through the engine (and the fragment cache,
// when configured), clean fragments are reused, and costs sum in
// fragment time order, so the result is bit-identical to a
// from-scratch Solve of Instance(). Solution.ResolvedFragments and
// ReusedFragments report the split; infeasibility is ErrInfeasible,
// exactly as Solve reports it. Resolve is ResolveContext with a
// background context.
func (ss *Session) Resolve() (Solution, error) {
	return ss.ResolveContext(context.Background())
}

// ResolveContext is Resolve with observability threading: when ctx
// carries an obs.Trace, every re-solved fragment records its
// backend-tagged span into it. Solution.Timings reports only the work
// this call did — the fragments a delta dirtied — so a no-op Resolve
// reports zero solve time.
func (ss *Session) ResolveContext(ctx context.Context) (Solution, error) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.closed {
		return Solution{}, ErrSessionClosed
	}
	trace := obs.FromContext(ctx)
	var timings Timings
	cost, schedule, counts, err := ss.tr.Resolve(func(fr sched.Instance) incr.Result {
		r := ss.solver.solveFragment(ss.rt, ss.cache, fr, trace)
		timings.add(r)
		return incr.Result{Cost: r.cost, Schedule: r.schedule, States: r.states,
			Pruned: r.pruned, Expanded: r.expanded,
			LB: r.lb, Heur: r.heur, Poly: r.poly, Hit: r.hit, Err: r.err}
	})
	if err != nil {
		return Solution{}, err
	}
	if ss.onl != nil {
		sol, err := ss.resolveOnline(counts)
		if err != nil {
			return Solution{}, err
		}
		sol.Timings = timings
		return sol, nil
	}
	if err := schedule.Validate(ss.tr.Instance()); err != nil {
		return Solution{}, err
	}
	sol := Solution{
		Timings:            timings,
		Schedule:           schedule,
		States:             counts.States,
		PrunedStates:       counts.PrunedStates,
		ExpandedStates:     counts.ExpandedStates,
		Subinstances:       ss.tr.Fragments(),
		CacheHits:          counts.CacheHits,
		ResolvedFragments:  counts.Resolved,
		ReusedFragments:    counts.Reused,
		Mode:               ss.solver.Mode,
		LowerBound:         counts.LowerBound,
		HeuristicFragments: counts.HeuristicFragments,
		PolyFragments:      counts.PolyFragments,
	}
	ss.rt.finish(&sol, cost)
	return sol, nil
}

// resolveOnline finishes an online Resolve, with the lock held and the
// offline mirror freshly resolved (counts). The returned Solution
// carries the online run's schedule — the committed prefix extended by
// a projected run-out over the revealed jobs — its cost, and the
// measured competitive ratio against the mirror's certified
// LowerBound: onlineCost ≥ OPT ≥ LowerBound, so the ratio is ≥ 1 and
// never understated.
func (ss *Session) resolveOnline(counts incr.Counts) (Solution, error) {
	proj, err := ss.onl.Project()
	if err != nil {
		// By EDF's feasibility-optimality this happens only when the
		// revealed instance itself is infeasible; report it exactly as
		// the offline path does.
		return Solution{}, ErrInfeasible
	}
	if err := proj.Schedule.Validate(ss.tr.Instance()); err != nil {
		return Solution{}, err
	}
	acct := ss.onl.Accounting()
	sol := Solution{
		Schedule:           proj.Schedule,
		States:             counts.States,
		PrunedStates:       counts.PrunedStates,
		ExpandedStates:     counts.ExpandedStates,
		Subinstances:       ss.tr.Fragments(),
		CacheHits:          counts.CacheHits,
		ResolvedFragments:  counts.Resolved,
		ReusedFragments:    counts.Reused,
		Mode:               ModeAuto, // the mirror's tier
		LowerBound:         counts.LowerBound,
		HeuristicFragments: counts.HeuristicFragments,
		PolyFragments:      counts.PolyFragments,
		CommittedJobs:      acct.Committed,
		CommittedCost:      acct.Cost,
		CompetitiveRatio:   1,
	}
	ss.rt.finish(&sol, proj.Cost)
	if counts.LowerBound > 0 {
		sol.CompetitiveRatio = proj.Cost / counts.LowerBound
	}
	return sol, nil
}

// Close releases the session: every later mutating or solving call
// returns ErrSessionClosed and the accessors (Len, Instance, Job)
// report an empty session. Close waits for an in-flight operation to
// finish and is idempotent.
func (ss *Session) Close() {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.closed = true
}
