package gapsched

// Incremental scheduling sessions: the facade over internal/incr. A
// Session holds a live instance and keeps its exact solution current
// under job add/remove deltas, re-solving only the fragments a delta
// touched (the rest keep their stored results), with every Resolve
// bit-identical to a from-scratch Solve of the current job set. This
// is the stateful tier the paper's motivating workloads want: devices
// and real-time systems where unit jobs arrive and expire over time.

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/incr"
	"repro/internal/sched"
)

// ErrSessionClosed is returned by every operation on a closed Session.
var ErrSessionClosed = errors.New("gapsched: session closed")

// Session is a stateful incremental solver: a live job set plus its
// forced-idle fragment decomposition, maintained under deltas so that
// Resolve re-solves only dirty fragments. Obtain one with
// Solver.Open; it inherits the Solver's objective, alpha, and cache
// configuration. Fragment solves go through the Solver's
// FragmentCache when one is configured (Cache, or a session-lifetime
// cache of CacheSize entries), so sessions also reuse fragments solved
// by batches and by each other.
//
// A Session is safe for concurrent use; operations serialize on an
// internal mutex, so a Resolve and a delta never interleave.
type Session struct {
	mu     sync.Mutex
	rt     objectiveRuntime
	solver Solver
	cache  *FragmentCache
	tr     *incr.Tracker
	closed bool
}

// Open starts an incremental session on procs processors (0 means 1)
// with the Solver's configuration. The session decomposes with the
// same split width the one-shot pipeline uses — every forced-idle run
// for ObjectiveGaps, runs of width ≥ Alpha for ObjectivePower — so its
// solutions are bit-identical to from-scratch solves. NoPreprocess
// and Workers do not apply to sessions: incrementality is the
// decomposition, and Resolve solves its dirty fragments sequentially —
// a delta typically dirties one fragment, so there is nothing to fan
// out (for a bulk first solve of a huge job set, SolveBatch the
// instance once and open the session for the churn). Configuration
// errors are the same ones Solve reports.
func (s Solver) Open(procs int) (*Session, error) {
	rt, err := s.runtime()
	if err != nil {
		return nil, err
	}
	if procs == 0 {
		procs = 1
	}
	if procs < 0 {
		return nil, fmt.Errorf("gapsched: session on %d processors, need ≥ 1", procs)
	}
	splitWidth := 1.0
	if s.Objective == ObjectivePower {
		splitWidth = s.Alpha
	}
	cache := s.Cache
	if cache == nil && s.CacheSize > 0 {
		cache = NewFragmentCache(s.CacheSize)
	}
	return &Session{
		rt:     rt,
		solver: s,
		cache:  cache,
		tr:     incr.New(procs, splitWidth),
	}, nil
}

// Add inserts a job into the live instance and returns its id, the
// handle Remove takes. Ids are assigned in arrival order and never
// reused. Only the fragments whose covered regions the job touches or
// bridges are marked dirty.
func (ss *Session) Add(j Job) (int, error) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.closed {
		return 0, ErrSessionClosed
	}
	if !j.Valid() {
		return 0, fmt.Errorf("gapsched: job has empty window [%d,%d]", j.Release, j.Deadline)
	}
	return ss.tr.Add(j), nil
}

// Remove deletes the job with the given id. Only the fragment that
// contained the job is re-decomposed (it may split); everything else
// keeps its solved result.
func (ss *Session) Remove(id int) error {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.closed {
		return ErrSessionClosed
	}
	if !ss.tr.Remove(id) {
		return fmt.Errorf("gapsched: session has no job %d", id)
	}
	return nil
}

// Len returns the number of live jobs; 0 after Close.
func (ss *Session) Len() int {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.closed {
		return 0
	}
	return ss.tr.Len()
}

// Job returns the live job with the given id. Callers that need a
// whole delta to apply atomically (the daemon's /v1/session endpoints)
// use it to verify every removal before mutating anything.
func (ss *Session) Job(id int) (Job, bool) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.closed {
		return Job{}, false
	}
	return ss.tr.Job(id)
}

// Instance snapshots the current job set (jobs in id order) — the
// instance a from-scratch Solve would be handed to reproduce the next
// Resolve exactly, and the one its Schedule validates against. After
// Close it returns the zero Instance, like every other accessor.
func (ss *Session) Instance() Instance {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.closed {
		return Instance{}
	}
	return ss.tr.Instance()
}

// Resolve brings the solution up to date and returns it: dirty
// fragments are re-solved through the engine (and the fragment cache,
// when configured), clean fragments are reused, and costs sum in
// fragment time order, so the result is bit-identical to a
// from-scratch Solve of Instance(). Solution.ResolvedFragments and
// ReusedFragments report the split; infeasibility is ErrInfeasible,
// exactly as Solve reports it.
func (ss *Session) Resolve() (Solution, error) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.closed {
		return Solution{}, ErrSessionClosed
	}
	cost, schedule, counts, err := ss.tr.Resolve(func(fr sched.Instance) incr.Result {
		r := ss.solver.solveFragment(ss.rt, ss.cache, fr)
		return incr.Result{Cost: r.cost, Schedule: r.schedule, States: r.states,
			Pruned: r.pruned, Expanded: r.expanded,
			LB: r.lb, Heur: r.heur, Hit: r.hit, Err: r.err}
	})
	if err != nil {
		return Solution{}, err
	}
	if err := schedule.Validate(ss.tr.Instance()); err != nil {
		return Solution{}, err
	}
	sol := Solution{
		Schedule:           schedule,
		States:             counts.States,
		PrunedStates:       counts.PrunedStates,
		ExpandedStates:     counts.ExpandedStates,
		Subinstances:       ss.tr.Fragments(),
		CacheHits:          counts.CacheHits,
		ResolvedFragments:  counts.Resolved,
		ReusedFragments:    counts.Reused,
		Mode:               ss.solver.Mode,
		LowerBound:         counts.LowerBound,
		HeuristicFragments: counts.HeuristicFragments,
	}
	ss.rt.finish(&sol, cost)
	return sol, nil
}

// Close releases the session: every later mutating or solving call
// returns ErrSessionClosed and the accessors (Len, Instance, Job)
// report an empty session. Close waits for an in-flight operation to
// finish and is idempotent.
func (ss *Session) Close() {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.closed = true
}
