package gapsched

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/workload"
)

// sessionConfigs is the configuration matrix the session tests sweep:
// both objectives, with and without a shared fragment cache.
func sessionConfigs() []Solver {
	return []Solver{
		{},
		{Cache: NewFragmentCache(1 << 10)},
		{Objective: ObjectivePower, Alpha: 2.5},
		{Objective: ObjectivePower, Alpha: 2.5, Cache: NewFragmentCache(1 << 10)},
	}
}

func sessionCost(s Solver, sol Solution) float64 {
	if s.Objective == ObjectivePower {
		return sol.Power
	}
	return float64(sol.Spans)
}

// TestSessionMatchesScratchUnderChurn drives random add/remove churn
// and asserts after every delta that Resolve is bit-identical to a
// from-scratch Solve of the session's snapshot instance, under every
// configuration of the matrix. The from-scratch reference uses the
// same Solver (same cache), which is exactly the claim the subsystem
// makes.
func TestSessionMatchesScratchUnderChurn(t *testing.T) {
	for _, cfg := range sessionConfigs() {
		rng := rand.New(rand.NewSource(23))
		sess, err := cfg.Open(2)
		if err != nil {
			t.Fatal(err)
		}
		var live []int
		for step := 0; step < 60; step++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				i := rng.Intn(len(live))
				if err := sess.Remove(live[i]); err != nil {
					t.Fatal(err)
				}
				live = append(live[:i], live[i+1:]...)
			} else {
				r := rng.Intn(50)
				id, err := sess.Add(Job{Release: r, Deadline: r + rng.Intn(6)})
				if err != nil {
					t.Fatal(err)
				}
				live = append(live, id)
			}
			snapshot := sess.Instance()
			want, wantErr := cfg.Solve(snapshot)
			got, gotErr := sess.Resolve()
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("step %d: session err %v, scratch err %v", step, gotErr, wantErr)
			}
			if gotErr != nil {
				if !errors.Is(gotErr, ErrInfeasible) {
					t.Fatalf("step %d: session err %v, want ErrInfeasible", step, gotErr)
				}
				continue
			}
			if sessionCost(cfg, got) != sessionCost(cfg, want) {
				t.Fatalf("step %d: session cost %v, scratch %v (jobs %v)",
					step, sessionCost(cfg, got), sessionCost(cfg, want), snapshot.Jobs)
			}
			if got.Spans != want.Spans || got.Gaps != want.Gaps {
				t.Fatalf("step %d: session spans/gaps %d/%d, scratch %d/%d", step, got.Spans, got.Gaps, want.Spans, want.Gaps)
			}
			if err := got.Schedule.Validate(snapshot); err != nil {
				t.Fatalf("step %d: session schedule invalid: %v", step, err)
			}
			if got.ResolvedFragments+got.ReusedFragments != got.Subinstances {
				t.Fatalf("step %d: counters %d+%d do not cover %d fragments",
					step, got.ResolvedFragments, got.ReusedFragments, got.Subinstances)
			}
		}
		sess.Close()
	}
}

// TestSessionReusesCleanFragments pins the point of the subsystem: on
// a many-fragment instance, a single-job delta re-solves one fragment
// and reuses the rest.
func TestSessionReusesCleanFragments(t *testing.T) {
	sess, err := Solver{}.Open(1)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	const clusters = 8
	for c := 0; c < clusters; c++ {
		base := 20 * c
		for k := 0; k < 3; k++ {
			if _, err := sess.Add(Job{Release: base + k, Deadline: base + k + 2}); err != nil {
				t.Fatal(err)
			}
		}
	}
	sol, err := sess.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Subinstances != clusters || sol.ResolvedFragments != clusters {
		t.Fatalf("initial resolve: %d fragments, %d resolved; want %d/%d",
			sol.Subinstances, sol.ResolvedFragments, clusters, clusters)
	}
	id, err := sess.Add(Job{Release: 61, Deadline: 63}) // inside cluster 3
	if err != nil {
		t.Fatal(err)
	}
	sol, err = sess.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.ResolvedFragments != 1 || sol.ReusedFragments != clusters-1 {
		t.Fatalf("single add: resolved %d reused %d, want 1/%d", sol.ResolvedFragments, sol.ReusedFragments, clusters-1)
	}
	if err := sess.Remove(id); err != nil {
		t.Fatal(err)
	}
	sol, err = sess.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.ResolvedFragments != 1 || sol.ReusedFragments != clusters-1 {
		t.Fatalf("single remove: resolved %d reused %d, want 1/%d", sol.ResolvedFragments, sol.ReusedFragments, clusters-1)
	}
}

// TestSessionSharedCacheAcrossSessions: a fragment solved in one
// session is a cache hit in another sharing the same FragmentCache.
func TestSessionSharedCacheAcrossSessions(t *testing.T) {
	cache := NewFragmentCache(1 << 10)
	cfg := Solver{Cache: cache}
	a, err := cfg.Open(1)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := cfg.Open(1)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	jobs := []Job{{Release: 5, Deadline: 7}, {Release: 6, Deadline: 9}}
	for _, j := range jobs {
		if _, err := a.Add(j); err != nil {
			t.Fatal(err)
		}
		// Same windows, different absolute location: prep's coordinate
		// compression makes the canonical fragment identical.
		if _, err := b.Add(Job{Release: j.Release + 100, Deadline: j.Deadline + 100}); err != nil {
			t.Fatal(err)
		}
	}
	solA, err := a.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if solA.CacheHits != 0 {
		t.Fatalf("first session hit the cache %d times on a cold cache", solA.CacheHits)
	}
	solB, err := b.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if solB.CacheHits != 1 || solB.Spans != solA.Spans {
		t.Fatalf("second session: hits %d spans %d, want 1 hit and spans %d", solB.CacheHits, solB.Spans, solA.Spans)
	}
}

// TestSessionErrors covers the error surface: invalid configuration,
// invalid jobs, unknown removals, and use after Close.
func TestSessionErrors(t *testing.T) {
	if _, err := (Solver{Alpha: -1}).Open(1); err == nil {
		t.Fatal("negative alpha accepted")
	}
	if _, err := (Solver{Objective: Objective(9)}).Open(1); err == nil {
		t.Fatal("unknown objective accepted")
	}
	if _, err := (Solver{}).Open(-2); err == nil {
		t.Fatal("negative procs accepted")
	}

	sess, err := Solver{}.Open(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := sess.Instance().Procs; got != 1 {
		t.Fatalf("Open(0) procs = %d, want 1", got)
	}
	if _, err := sess.Add(Job{Release: 3, Deadline: 1}); err == nil {
		t.Fatal("empty-window job accepted")
	}
	if err := sess.Remove(42); err == nil {
		t.Fatal("unknown removal succeeded")
	}
	if sol, err := sess.Resolve(); err != nil || sol.Spans != 0 || len(sol.Schedule.Slots) != 0 {
		t.Fatalf("empty resolve: %+v err %v", sol, err)
	}

	if _, err := sess.Add(Job{Release: 1, Deadline: 2}); err != nil {
		t.Fatal(err)
	}
	sess.Close()
	sess.Close() // idempotent
	if sess.Len() != 0 || len(sess.Instance().Jobs) != 0 {
		t.Fatal("closed session still reports live state")
	}
	if _, ok := sess.Job(0); ok {
		t.Fatal("closed session still serves jobs")
	}
	if _, err := sess.Add(Job{}); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Add after Close: %v", err)
	}
	if err := sess.Remove(0); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Remove after Close: %v", err)
	}
	if _, err := sess.Resolve(); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Resolve after Close: %v", err)
	}
}

// TestSessionConcurrentUse hammers one session from several goroutines
// (deltas, resolves, snapshots) to give the race detector a surface;
// the final resolve must still match a from-scratch solve.
func TestSessionConcurrentUse(t *testing.T) {
	cfg := Solver{Cache: NewFragmentCache(1 << 10)}
	sess, err := cfg.Open(2)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	rng := rand.New(rand.NewSource(7))
	in := workload.FeasibleOneInterval(rng, 12, 2, 60, 5)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				id, err := sess.Add(in.Jobs[(3*w+i)%len(in.Jobs)])
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := sess.Resolve(); err != nil && !errors.Is(err, ErrInfeasible) {
					t.Error(err)
					return
				}
				if i == 2 {
					if err := sess.Remove(id); err != nil {
						t.Error(err)
					}
				}
				sess.Instance()
			}
		}()
	}
	wg.Wait()
	got, gotErr := sess.Resolve()
	want, wantErr := cfg.Solve(sess.Instance())
	if (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("session err %v, scratch err %v", gotErr, wantErr)
	}
	if gotErr == nil && (got.Spans != want.Spans || got.Power != want.Power) {
		t.Fatalf("after concurrent churn: session %d/%v, scratch %d/%v", got.Spans, got.Power, want.Spans, want.Power)
	}
}
