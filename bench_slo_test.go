package gapsched_test

// BenchmarkE24_Replay: the trace-replay SLO harness of DESIGN.md §4
// (E24) on a pinned, time-compressed recording. Each iteration stands
// up a fresh daemon, replays the recorded arrival trace open-loop
// through the CSV adapter, and cross-checks the daemon's rolling-window
// SLO view against external measurement, reporting:
//
//	p99_us/op      externally measured p99 of the replayed requests
//	bucket_agree   1 when the daemon's sliding p99 lands in the same
//	               log₂ bucket as the external p99
//	verdict_agree  1 when the daemon's ok/degraded verdict matches the
//	               verdict computed externally from the same objectives
//
// The agreement columns are reported (not asserted) so a noisy CI
// machine shows up as a metric regression, not a flaky failure.
//
// This file is in package gapsched_test (not gapsched like
// bench_test.go) because internal/service imports the root package:
// an in-package benchmark would create an import cycle.

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/http/httptrace"
	"sort"
	"sync"
	"testing"
	"time"

	gapsched "repro"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/service"
	"repro/internal/workload"
)

// e24BenchTrace builds the pinned recording: bursty arrivals over a
// small pool of feasible two-processor instances, round-tripped
// through the CSV adapter, compressed to tens of milliseconds so one
// replay is one benchmark op.
func e24BenchTrace(b *testing.B) workload.Trace {
	b.Helper()
	rng := rand.New(rand.NewSource(24))
	pool := make([]sched.Instance, 5)
	for i := range pool {
		for {
			in := workload.Bursty(rng, 12, 3, 72, 4, 5)
			in.Procs = 2
			if gapsched.Feasible(in) {
				pool[i] = in
				break
			}
		}
	}
	trace := workload.RecordBursty(rng, pool, 6, 5, 8*time.Millisecond, 300*time.Microsecond)
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf); err != nil {
		b.Fatal(err)
	}
	parsed, err := workload.ParseTrace(&buf)
	if err != nil {
		b.Fatal(err)
	}
	return parsed
}

func BenchmarkE24_Replay(b *testing.B) {
	trace := e24BenchTrace(b)
	lanes := []struct {
		name      string
		p99Target time.Duration
	}{
		{"generous", 2 * time.Second}, // healthy on both sides
		{"tight", time.Nanosecond},    // degraded on both sides
	}
	for _, lane := range lanes {
		b.Run(lane.name, func(b *testing.B) {
			var p99Sum, bucketAgree, verdictAgree float64
			for i := 0; i < b.N; i++ {
				extP99, daemonP99, daemonVerdict := e24BenchReplay(b, trace, lane.p99Target)
				p99Sum += float64(extP99.Microseconds())
				if obs.BucketIndex(extP99) == obs.BucketIndex(daemonP99) {
					bucketAgree++
				}
				extVerdict := service.SLOStatusOK
				if extP99 > lane.p99Target {
					extVerdict = service.SLOStatusDegraded
				}
				if daemonVerdict == extVerdict {
					verdictAgree++
				}
			}
			b.ReportMetric(p99Sum/float64(b.N), "p99_us/op")
			b.ReportMetric(bucketAgree/float64(b.N), "bucket_agree")
			b.ReportMetric(verdictAgree/float64(b.N), "verdict_agree")
		})
	}
}

// e24BenchReplay replays the trace against a fresh daemon and returns
// the external p99, the daemon's sliding solve p99, and its verdict.
func e24BenchReplay(b *testing.B, trace workload.Trace, p99Target time.Duration) (extP99, daemonP99 time.Duration, verdict string) {
	b.Helper()
	srv := service.New(service.Config{
		// As in E24: a 20 ms coalescing window floors the tail latency
		// a few ms above the 16384 µs bucket boundary, keeping the
		// bucket-agreement metric stable against client jitter.
		Window:        20 * time.Millisecond,
		CacheCapacity: 1 << 14,
		SolveTimeout:  time.Minute,
		SLOLatencyP99: p99Target,
		SLOErrorRate:  0.05,
		SLOWindow:     5 * time.Minute,
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 256,
	}}
	defer client.CloseIdleConnections()
	// Pre-warm keep-alive connections through the uninstrumented
	// /healthz so TCP setup never lands in a measured latency.
	var warm sync.WaitGroup
	for i := 0; i < 8; i++ {
		warm.Add(1)
		go func() {
			defer warm.Done()
			if resp, err := client.Get(ts.URL + "/healthz"); err == nil {
				resp.Body.Close()
			}
		}()
	}
	warm.Wait()

	steps := trace.Instances(2)
	lats := make([]time.Duration, len(steps))
	var wg sync.WaitGroup
	start := time.Now()
	for i, step := range steps {
		if d := time.Until(start.Add(step.At)); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int, in sched.Instance) {
			defer wg.Done()
			var buf bytes.Buffer
			req := sched.SolveRequest{Objective: sched.WireGaps, Procs: in.Procs, Jobs: in.Jobs}
			if err := json.NewEncoder(&buf).Encode(req); err != nil {
				return
			}
			hreq, err := http.NewRequest("POST", ts.URL+"/v1/solve", &buf)
			if err != nil {
				return
			}
			hreq.Header.Set("Content-Type", "application/json")
			// Latency to first response byte, matching the daemon's
			// handler-side window rather than client-side scheduling.
			var firstByte time.Time
			hreq = hreq.WithContext(httptrace.WithClientTrace(hreq.Context(), &httptrace.ClientTrace{
				GotFirstResponseByte: func() { firstByte = time.Now() },
			}))
			t0 := time.Now()
			resp, err := client.Do(hreq)
			done := time.Now()
			if err != nil {
				lats[i] = done.Sub(t0)
				return
			}
			resp.Body.Close()
			if firstByte.IsZero() {
				firstByte = done
			}
			lats[i] = firstByte.Sub(t0)
		}(i, step.Instance)
	}
	wg.Wait()

	sort.Slice(lats, func(x, y int) bool { return lats[x] < lats[y] })
	extP99 = lats[(len(lats)*99+99)/100-1]

	resp, err := client.Get(ts.URL + "/v1/debug/slo")
	if err != nil {
		b.Fatal(err)
	}
	var rep service.SLOReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	daemonP99 = time.Duration(rep.Endpoints["solve"].P99Seconds * float64(time.Second))
	return extP99, daemonP99, rep.Status
}
