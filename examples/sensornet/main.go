// Sensornet: multi-interval power minimization on a duty-cycled sensor
// (Theorem 3 pipeline).
//
// A sensor node must take n measurements; each measurement is possible
// only while its phenomenon is observable — an arbitrary set of time
// windows per measurement (multi-interval jobs). Waking the radio/CPU
// costs α. The example sweeps α and compares three schedulers:
//
//   - naive: any feasible schedule (maximum matching) — the trivial
//     (1+α)-approximation;
//   - packed: the Theorem 3 pipeline (shifted-run set packing +
//     augmenting-path completion), guaranteed (1 + (2/3+ε)α)·OPT;
//   - exact: the brute-force oracle (small n only), the true optimum.
//
// Run with: go run ./examples/sensornet
package main

import (
	"fmt"
	"log"
	"math/rand"

	gapsched "repro"
	"repro/internal/exact"
	"repro/internal/workload"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	mi := workload.FeasibleMultiInterval(rng, 10, 2, 2, 18)

	fmt.Printf("sensor with %d measurements over windows:\n", mi.N())
	for i, j := range mi.Jobs {
		fmt.Printf("  m%-2d %v\n", i, j.Intervals)
	}
	fmt.Println("\n   α   | naive power | packed power | optimal | packed/optimal | proof bound")
	for _, alpha := range []float64{0.5, 1, 2, 4, 8} {
		naive, err := gapsched.AnyMultiSchedule(mi)
		if err != nil {
			log.Fatal(err)
		}
		packed, _, err := gapsched.ApproxMultiPower(mi, alpha, gapsched.ApproxOptions{SearchDepth: 2})
		if err != nil {
			log.Fatal(err)
		}
		opt, _ := exact.PowerMulti(mi, alpha)
		ratio := packed.PowerCost(alpha) / opt
		bound := 1 + 2.0/3.0*alpha
		fmt.Printf(" %5.1f |   %7.2f   |   %7.2f    | %7.2f |     %.3f      |   %.3f\n",
			alpha, naive.PowerCost(alpha), packed.PowerCost(alpha), opt, ratio, bound)
	}

	const alpha = 2
	packed, st, err := gapsched.ApproxMultiPower(mi, alpha, gapsched.ApproxOptions{SearchDepth: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npacked schedule at α=%d: %d runs packed, %d spans\n", alpha, st.PackedRuns, st.Spans)
	fmt.Print(gapsched.SimulateMulti(packed, alpha).Render())
}
