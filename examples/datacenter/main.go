// Datacenter: multiprocessor wake-up minimization (Theorem 1).
//
// A rack of p machines receives batches of unit jobs with deadlines.
// Every machine that wakes from sleep pays a fixed energy cost, so the
// operator wants a feasible assignment minimizing total wake-ups. The
// paper's Lemma 1 says an optimal solution is a "staircase": at every
// time the busy machines form a prefix of the rack — exactly what the
// exact DP returns. The example compares the DP against the eager EDF
// dispatcher that a naive cluster scheduler would use, across rack
// sizes.
//
// Run with: go run ./examples/datacenter
package main

import (
	"fmt"
	"log"
	"math/rand"

	gapsched "repro"
	"repro/internal/workload"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	// Two bursts of requests with moderate slack — a lull in between is
	// an opportunity to sleep, if jobs are batched cleverly.
	base := workload.Bursty(rng, 18, 2, 30, 4, 6)

	fmt.Println("rack size | optimal wake-ups | EDF wake-ups | saved")
	for _, p := range []int{1, 2, 3, 4} {
		in := gapsched.NewMultiprocInstance(base.Jobs, p)
		if !gapsched.Feasible(in) {
			fmt.Printf("   p=%d    | infeasible — need a bigger rack\n", p)
			continue
		}
		res, err := gapsched.MinimizeGaps(in)
		if err != nil {
			log.Fatalf("p=%d: %v", p, err)
		}
		edf, ok := gapsched.EDF(in)
		if !ok {
			log.Fatalf("p=%d: EDF failed on feasible instance", p)
		}
		fmt.Printf("   p=%d    |        %2d        |      %2d      |  %2d\n",
			p, res.Spans, edf.Spans(), edf.Spans()-res.Spans)
	}

	// Show the staircase structure for p = 3.
	in := gapsched.NewMultiprocInstance(base.Jobs, 3)
	res, err := gapsched.MinimizeGaps(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\noptimal staircase timeline for p=3 (α=4):")
	fmt.Print(gapsched.Simulate(res.Schedule, 4).Render())
}
