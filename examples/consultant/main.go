// Consultant: the minimum-restart story of §6 (Theorem 11).
//
// A consultant bills by the day: each maximal stretch of consecutive
// work is one "day" (span), and calling the consultant back later costs
// a new day. Each task can be done only at specified hours. Given a
// budget of k days, schedule as many tasks as possible.
//
// The example runs the paper's greedy — repeatedly book the longest
// fully-fillable stretch of hours — and compares it against the exact
// optimum for increasing day budgets.
//
// Run with: go run ./examples/consultant
package main

import (
	"fmt"
	"log"
	"math/rand"

	gapsched "repro"
	"repro/internal/exact"
	"repro/internal/workload"
)

func main() {
	rng := rand.New(rand.NewSource(3))
	// 12 tasks, each possible at a few scattered hours of the month.
	tasks := workload.UnitMulti(rng, 12, 3, 40)

	fmt.Printf("%d tasks with allowed hours:\n", tasks.N())
	for i, j := range tasks.Jobs {
		fmt.Printf("  task %-2d %v\n", i, j.Times())
	}

	fmt.Println("\n days budget | greedy tasks done | optimal | greedy days used")
	for k := 1; k <= 4; k++ {
		res, err := gapsched.MaxThroughput(tasks, k)
		if err != nil {
			log.Fatal(err)
		}
		opt := exact.MaxThroughput(tasks, k)
		fmt.Printf("      %d      |        %2d         |   %2d    |       %d\n",
			k, res.Jobs(), opt, res.Spans)
	}

	res, err := gapsched.MaxThroughput(tasks, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbooked stretches with a 3-day budget:")
	for i, iv := range res.Intervals {
		fmt.Printf("  day %d: hours [%d, %d]\n", i+1, iv.Lo, iv.Hi)
	}
}
