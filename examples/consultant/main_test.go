package main

import (
	"os"
	"testing"
)

// Smoke test: the example must run end to end. Any solver error aborts
// the test binary through log.Fatal. Stdout is silenced to keep test
// logs readable.
func TestProgramRuns(t *testing.T) {
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()
	main()
}
