// Quickstart: the smallest end-to-end tour of the gapsched API.
//
// Five unit jobs with deadlines on one processor: find the schedule
// minimizing wake-ups (Theorem 1), then the schedule minimizing power
// for a given transition cost α (Theorem 2), and render both timelines.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	gapsched "repro"
)

func main() {
	// A device receives five unit tasks. Job i may run at any integer
	// time within [Release, Deadline].
	jobs := []gapsched.Job{
		{Release: 0, Deadline: 2},
		{Release: 1, Deadline: 4},
		{Release: 6, Deadline: 9},
		{Release: 7, Deadline: 9},
		{Release: 14, Deadline: 15},
	}
	in := gapsched.NewInstance(jobs)

	// 1. Minimize wake-ups: the exact DP of Theorem 1.
	res, err := gapsched.MinimizeGaps(in)
	if err != nil {
		log.Fatalf("minimize gaps: %v", err)
	}
	fmt.Printf("minimum wake-ups: %d (gaps between busy periods: %d)\n", res.Spans, res.Gaps)
	for i, a := range res.Schedule.Slots {
		fmt.Printf("  job %d -> t=%d\n", i, a.Time)
	}

	// 2. Minimize power with transition cost α = 3: short gaps are
	// bridged by staying awake (Theorem 2).
	const alpha = 3
	pres, err := gapsched.MinimizePower(in, alpha)
	if err != nil {
		log.Fatalf("minimize power: %v", err)
	}
	fmt.Printf("\nminimum power at α=%v: %.2f\n", float64(alpha), pres.Power)
	fmt.Println("timeline (# busy, ~ awake-idle, . asleep):")
	fmt.Print(gapsched.Simulate(pres.Schedule, alpha).Render())

	// 3. Compare with the eager online baseline (EDF): correct, but
	// pays more wake-ups because it cannot wait.
	edf, _ := gapsched.EDF(in)
	fmt.Printf("\nEDF wake-ups: %d vs optimal %d\n", edf.Spans(), res.Spans)
}
