package sched

// The service wire format: request/response JSON bodies exchanged with
// the scheduling daemon (internal/service, cmd/gapschedd). Kept here —
// next to the model types they serialize — so clients, the service,
// and the CLIs share one strictly-validated schema. File (json.go) is
// the on-disk instance envelope; these types are the over-the-wire
// solve protocol.

import (
	"encoding/json"
	"fmt"
	"io"
)

// Wire objective names accepted by SolveRequest. An empty objective
// means WireGaps.
const (
	WireGaps  = "gaps"
	WirePower = "power"
)

// Wire solver-mode names accepted by SolveRequest and
// SessionCreateRequest. An empty mode means WireModeExact. They match
// gapsched.Mode.String / gapsched.ParseMode.
const (
	WireModeExact     = "exact"
	WireModeHeuristic = "heuristic"
	WireModeAuto      = "auto"
)

// validMode reports whether s names a solver mode ("" included).
func validMode(s string) error {
	switch s {
	case "", WireModeExact, WireModeHeuristic, WireModeAuto:
		return nil
	}
	return fmt.Errorf("sched: unknown mode %q (want %q, %q or %q)",
		s, WireModeExact, WireModeHeuristic, WireModeAuto)
}

// Wire error codes carried by WireError. They partition every way a
// request can come back without a schedule: the request itself was
// malformed or misconfigured (bad_request), the instance admits no
// feasible schedule (infeasible), the solve was cut off by a deadline
// or disconnect (canceled), the server is draining for shutdown
// (unavailable — retry elsewhere), or the server failed (internal).
const (
	ErrCodeBadRequest  = "bad_request"
	ErrCodeInfeasible  = "infeasible"
	ErrCodeCanceled    = "canceled"
	ErrCodeUnavailable = "unavailable"
	ErrCodeInternal    = "internal"
	// ErrCodeNotFound is specific to the stateful /v1/session
	// endpoints: the named session (or a job id inside a delta) does
	// not exist — it may have been deleted or evicted by the TTL.
	ErrCodeNotFound = "not_found"
)

// SolveRequest is the wire form of one scheduling request, the JSON
// body of the daemon's /v1/solve endpoint and the element of a
// BatchRequest. The zero Objective means WireGaps and zero Procs means
// one processor, so the minimal request is just {"jobs":[...]}.
type SolveRequest struct {
	// Objective is WireGaps or WirePower ("" = WireGaps).
	Objective string `json:"objective,omitempty"`
	// Alpha is the sleep→active transition cost used by WirePower.
	Alpha float64 `json:"alpha,omitempty"`
	// Procs is the processor count (0 = 1).
	Procs int `json:"procs,omitempty"`
	// Mode is the solving tier: WireModeExact, WireModeHeuristic, or
	// WireModeAuto ("" = WireModeExact).
	Mode string `json:"mode,omitempty"`
	// StateBudget tunes WireModeAuto: a fragment is solved exactly when
	// its estimated DP size is within the budget (0 = the server's
	// default budget; negative sends every fragment to the heuristic).
	// Ignored by the other modes.
	StateBudget int `json:"stateBudget,omitempty"`
	// Jobs are the unit jobs to schedule.
	Jobs []Job `json:"jobs"`
}

// Instance converts the request to the solver's instance form,
// applying the Procs default.
func (r SolveRequest) Instance() Instance {
	p := r.Procs
	if p == 0 {
		p = 1
	}
	return Instance{Jobs: r.Jobs, Procs: p}
}

// Validate checks the request: a known objective, a known mode, a
// non-negative alpha, and a structurally valid instance.
func (r SolveRequest) Validate() error {
	switch r.Objective {
	case "", WireGaps, WirePower:
	default:
		return fmt.Errorf("sched: unknown objective %q (want %q or %q)", r.Objective, WireGaps, WirePower)
	}
	if err := validMode(r.Mode); err != nil {
		return err
	}
	if r.Alpha < 0 {
		return fmt.Errorf("sched: negative alpha %v", r.Alpha)
	}
	return r.Instance().Validate()
}

// BatchRequest is the wire form of the daemon's /v1/batch endpoint:
// independent requests solved positionally.
type BatchRequest struct {
	Requests []SolveRequest `json:"requests"`
}

// WireError is the wire form of a failed request. It implements error,
// so a decoded response's failure can be returned directly.
type WireError struct {
	// Code is one of the ErrCode constants.
	Code string `json:"code"`
	// Message is the human-readable cause.
	Message string `json:"message"`
}

func (e *WireError) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// SolveResponse is the wire form of one request's outcome. Exactly one
// of {a solution with Schedule set, Err set} is present; the numeric
// fields mirror gapsched.Solution.
type SolveResponse struct {
	// Spans and Gaps report the schedule's wake-up counts.
	Spans int `json:"spans,omitempty"`
	Gaps  int `json:"gaps,omitempty"`
	// Power is the total power consumption; meaningful for WirePower.
	Power float64 `json:"power,omitempty"`
	// Schedule is the computed schedule (nil when Err is set).
	Schedule *Schedule `json:"schedule,omitempty"`
	// States, Subinstances and CacheHits mirror the solver's
	// effectiveness counters.
	States       int `json:"states,omitempty"`
	Subinstances int `json:"subinstances,omitempty"`
	CacheHits    int `json:"cacheHits,omitempty"`
	// PrunedStates and ExpandedStates report the exact tier's
	// branch-and-bound accounting: subproblems cut by the lower bound
	// versus subproblems expanded.
	PrunedStates   int `json:"prunedStates,omitempty"`
	ExpandedStates int `json:"expandedStates,omitempty"`
	// Mode is the solving tier that served the request ("" = exact).
	Mode string `json:"mode,omitempty"`
	// LowerBound is the certified lower bound on the optimal cost, in
	// the objective's units; for pure exact solves it equals the
	// reported cost.
	LowerBound float64 `json:"lowerBound,omitempty"`
	// HeuristicFragments counts the fragments served by the greedy
	// tier (0 for exact solves); PolyFragments those served exactly by
	// the polynomial single-machine backend (auto mode only).
	HeuristicFragments int `json:"heuristicFragments,omitempty"`
	PolyFragments      int `json:"polyFragments,omitempty"`
	// ResolvedFragments and ReusedFragments are set by session solves
	// (/v1/session/{id}/solve): how many fragments the incremental
	// resolve actually re-solved versus served from session state.
	ResolvedFragments int `json:"resolvedFragments,omitempty"`
	ReusedFragments   int `json:"reusedFragments,omitempty"`
	// CompetitiveRatio, CommittedJobs, and CommittedCost are set by
	// solves of online (commit-only) sessions: the measured ratio of
	// the online run's cost to the certified lower bound of the
	// revealed prefix's offline optimum, the number of irrevocably
	// committed jobs, and the committed prefix's cost.
	CompetitiveRatio float64 `json:"competitiveRatio,omitempty"`
	CommittedJobs    int     `json:"committedJobs,omitempty"`
	CommittedCost    float64 `json:"committedCost,omitempty"`
	// Timings is the per-stage wall-clock breakdown of the solve that
	// produced this response (nil when Err is set).
	Timings *WireTimings `json:"timings,omitempty"`
	// Err is set when the request failed; all other fields are zero.
	Err *WireError `json:"error,omitempty"`
}

// WireTimings mirrors gapsched.Timings on the wire: where the solve
// spent its time, per pipeline stage, summed over fragments. All
// fields are integer nanoseconds. Cache hits report their lookup time
// under CacheNs rather than the original solve's cost, and session
// solves report only the fragments the resolve actually re-solved.
type WireTimings struct {
	PrepNs      int64 `json:"prepNs,omitempty"`
	CacheNs     int64 `json:"cacheNs,omitempty"`
	SolveDPNs   int64 `json:"solveDpNs,omitempty"`
	SolvePolyNs int64 `json:"solvePolyNs,omitempty"`
	SolveHeurNs int64 `json:"solveHeurNs,omitempty"`
	AssembleNs  int64 `json:"assembleNs,omitempty"`
}

// Validate checks the response invariant: exactly one of a schedule
// or an error, and errors carry a code.
func (r SolveResponse) Validate() error {
	if r.Err != nil {
		if r.Schedule != nil {
			return fmt.Errorf("sched: response carries both a schedule and error %q", r.Err.Code)
		}
		if r.Err.Code == "" {
			return fmt.Errorf("sched: response error has no code")
		}
		return nil
	}
	if r.Schedule == nil {
		return fmt.Errorf("sched: response carries neither a schedule nor an error")
	}
	return nil
}

// BatchResponse is the wire form of a /v1/batch outcome. On success
// Responses align positionally with the BatchRequest's Requests (each
// element failing independently); Err is set — and Responses empty —
// only when the envelope itself could not be processed.
type BatchResponse struct {
	Responses []SolveResponse `json:"responses,omitempty"`
	Err       *WireError      `json:"error,omitempty"`
}

// Validate checks the envelope invariant: an element list or an
// envelope error, never both, with every element and the error itself
// well-formed.
func (r BatchResponse) Validate() error {
	if r.Err != nil {
		if len(r.Responses) > 0 {
			return fmt.Errorf("sched: batch response carries both elements and envelope error %q", r.Err.Code)
		}
		if r.Err.Code == "" {
			return fmt.Errorf("sched: batch response envelope error has no code")
		}
		return nil
	}
	for i, sr := range r.Responses {
		if err := sr.Validate(); err != nil {
			return fmt.Errorf("sched: batch response %d: %w", i, err)
		}
	}
	return nil
}

// SessionCreateRequest is the wire form of opening an incremental
// scheduling session, the JSON body of POST /v1/session: a solver
// configuration plus an optional initial job set. Zero Objective means
// WireGaps and zero Procs means one processor, like SolveRequest.
type SessionCreateRequest struct {
	// Objective is WireGaps or WirePower ("" = WireGaps).
	Objective string `json:"objective,omitempty"`
	// Alpha is the sleep→active transition cost used by WirePower.
	Alpha float64 `json:"alpha,omitempty"`
	// Procs is the processor count (0 = 1).
	Procs int `json:"procs,omitempty"`
	// Mode is the session's solving tier ("" = WireModeExact); every
	// incremental resolve of the session runs on it.
	Mode string `json:"mode,omitempty"`
	// StateBudget tunes WireModeAuto, as in SolveRequest.
	StateBudget int `json:"stateBudget,omitempty"`
	// Online makes the session commit-only: jobs must arrive in release
	// order (initial Jobs included), deltas may not remove, and solves
	// return the online run's schedule with its measured
	// CompetitiveRatio. Solves of online sessions always mirror through
	// the auto tier, so Mode applies to offline sessions only.
	Online bool `json:"online,omitempty"`
	// Jobs is the initial job set; it may be empty (jobs arrive as
	// deltas) and may be infeasible (the first solve reports it).
	Jobs []Job `json:"jobs,omitempty"`
}

// Validate checks the request: a known objective, a known mode, a
// non-negative alpha, a representable processor count, and non-empty
// job windows.
func (r SessionCreateRequest) Validate() error {
	switch r.Objective {
	case "", WireGaps, WirePower:
	default:
		return fmt.Errorf("sched: unknown objective %q (want %q or %q)", r.Objective, WireGaps, WirePower)
	}
	if err := validMode(r.Mode); err != nil {
		return err
	}
	if r.Alpha < 0 {
		return fmt.Errorf("sched: negative alpha %v", r.Alpha)
	}
	if r.Procs < 0 {
		return fmt.Errorf("sched: negative processor count %d", r.Procs)
	}
	for i, j := range r.Jobs {
		if !j.Valid() {
			return fmt.Errorf("sched: job %d has empty window [%d,%d]", i, j.Release, j.Deadline)
		}
	}
	return nil
}

// SessionDeltaRequest is the wire form of one job-churn step, the JSON
// body of POST /v1/session/{id}/delta. Removals are applied before
// additions; the whole delta applies atomically — an unknown removal
// id or an invalid added job rejects the delta without mutating the
// session.
type SessionDeltaRequest struct {
	// Add lists jobs entering the instance; the response returns their
	// assigned ids positionally.
	Add []Job `json:"add,omitempty"`
	// Remove lists job ids leaving the instance.
	Remove []int `json:"remove,omitempty"`
}

// Validate checks the delta: it must carry at least one operation,
// every added job needs a non-empty window, and no id is removed
// twice. (Whether removal ids are live is checked against the session
// by the service, not here.)
func (r SessionDeltaRequest) Validate() error {
	if len(r.Add) == 0 && len(r.Remove) == 0 {
		return fmt.Errorf("sched: session delta carries no operations")
	}
	for i, j := range r.Add {
		if !j.Valid() {
			return fmt.Errorf("sched: added job %d has empty window [%d,%d]", i, j.Release, j.Deadline)
		}
	}
	seen := make(map[int]bool, len(r.Remove))
	for _, id := range r.Remove {
		if seen[id] {
			return fmt.Errorf("sched: job %d removed twice in one delta", id)
		}
		seen[id] = true
	}
	return nil
}

// SessionResponse is the wire form of every session-management outcome
// (create, delta, delete); session *solves* answer with SolveResponse.
// Exactly one of {session fields, Err} is meaningful.
type SessionResponse struct {
	// Session is the session id addressed by later requests.
	Session string `json:"session,omitempty"`
	// JobIDs are the ids assigned to this request's added jobs,
	// positionally (create: the initial jobs; delta: the Add list).
	JobIDs []int `json:"jobIds,omitempty"`
	// Jobs is the number of live jobs after the operation.
	Jobs int `json:"jobs,omitempty"`
	// Err is set when the request failed; all other fields are zero.
	Err *WireError `json:"error,omitempty"`
}

// Validate checks the response invariant: a session id or an error
// with a code, never both.
func (r SessionResponse) Validate() error {
	if r.Err != nil {
		if r.Session != "" || len(r.JobIDs) > 0 || r.Jobs != 0 {
			return fmt.Errorf("sched: session response carries both state and error %q", r.Err.Code)
		}
		if r.Err.Code == "" {
			return fmt.Errorf("sched: session response error has no code")
		}
		return nil
	}
	if r.Session == "" {
		return fmt.Errorf("sched: session response carries neither a session id nor an error")
	}
	return nil
}

// decodeStrict decodes exactly one JSON value into v, rejecting
// unknown fields and trailing garbage — the shared strictness of every
// wire decoder below.
func decodeStrict(r io.Reader, v any, what string) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("sched: decoding %s: %w", what, err)
	}
	var extra json.RawMessage
	switch err := dec.Decode(&extra); err {
	case io.EOF:
		return nil
	case nil:
		return fmt.Errorf("sched: decoding %s: trailing data after JSON value", what)
	default:
		// A real read failure (truncated body, size limit), not a
		// protocol violation — report it as what it is.
		return fmt.Errorf("sched: decoding %s: %w", what, err)
	}
}

// DecodeSolveRequest decodes and validates one SolveRequest.
func DecodeSolveRequest(r io.Reader) (SolveRequest, error) {
	var req SolveRequest
	if err := decodeStrict(r, &req, "solve request"); err != nil {
		return SolveRequest{}, err
	}
	if err := req.Validate(); err != nil {
		return SolveRequest{}, err
	}
	return req, nil
}

// DecodeBatchRequest decodes a BatchRequest and validates its shape.
// Per-request validation is left to the solve path so each element
// fails independently, mirroring batch solve semantics.
func DecodeBatchRequest(r io.Reader) (BatchRequest, error) {
	var req BatchRequest
	if err := decodeStrict(r, &req, "batch request"); err != nil {
		return BatchRequest{}, err
	}
	return req, nil
}

// DecodeSessionCreateRequest decodes and validates one
// SessionCreateRequest.
func DecodeSessionCreateRequest(r io.Reader) (SessionCreateRequest, error) {
	var req SessionCreateRequest
	if err := decodeStrict(r, &req, "session create request"); err != nil {
		return SessionCreateRequest{}, err
	}
	if err := req.Validate(); err != nil {
		return SessionCreateRequest{}, err
	}
	return req, nil
}

// DecodeSessionDeltaRequest decodes and validates one
// SessionDeltaRequest.
func DecodeSessionDeltaRequest(r io.Reader) (SessionDeltaRequest, error) {
	var req SessionDeltaRequest
	if err := decodeStrict(r, &req, "session delta request"); err != nil {
		return SessionDeltaRequest{}, err
	}
	if err := req.Validate(); err != nil {
		return SessionDeltaRequest{}, err
	}
	return req, nil
}

// DecodeSessionResponse decodes and validates one SessionResponse.
func DecodeSessionResponse(r io.Reader) (SessionResponse, error) {
	var resp SessionResponse
	if err := decodeStrict(r, &resp, "session response"); err != nil {
		return SessionResponse{}, err
	}
	if err := resp.Validate(); err != nil {
		return SessionResponse{}, err
	}
	return resp, nil
}

// DecodeSolveResponse decodes and validates one SolveResponse.
func DecodeSolveResponse(r io.Reader) (SolveResponse, error) {
	var resp SolveResponse
	if err := decodeStrict(r, &resp, "solve response"); err != nil {
		return SolveResponse{}, err
	}
	if err := resp.Validate(); err != nil {
		return SolveResponse{}, err
	}
	return resp, nil
}

// DecodeBatchResponse decodes and validates a BatchResponse.
func DecodeBatchResponse(r io.Reader) (BatchResponse, error) {
	var resp BatchResponse
	if err := decodeStrict(r, &resp, "batch response"); err != nil {
		return BatchResponse{}, err
	}
	if err := resp.Validate(); err != nil {
		return BatchResponse{}, err
	}
	return resp, nil
}
