package sched

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func randWireRequest(rng *rand.Rand) SolveRequest {
	req := SolveRequest{
		Objective: [...]string{"", WireGaps, WirePower}[rng.Intn(3)],
		Mode:      [...]string{"", WireModeExact, WireModeHeuristic, WireModeAuto}[rng.Intn(4)],
		Procs:     rng.Intn(4), // 0 exercises the default
	}
	if req.Objective == WirePower {
		req.Alpha = float64(rng.Intn(12)) / 2
	}
	if req.Mode == WireModeAuto {
		req.StateBudget = rng.Intn(3) - 1 // negative, zero and positive budgets
	}
	n := rng.Intn(8)
	for i := 0; i < n; i++ {
		r := rng.Intn(30)
		req.Jobs = append(req.Jobs, Job{Release: r, Deadline: r + rng.Intn(6)})
	}
	return req
}

func randWireResponse(rng *rand.Rand) SolveResponse {
	switch rng.Intn(4) {
	case 0: // infeasible payload
		return SolveResponse{Err: &WireError{Code: ErrCodeInfeasible, Message: "no feasible schedule"}}
	case 1: // config-error payload
		return SolveResponse{Err: &WireError{Code: ErrCodeBadRequest, Message: "negative alpha -1"}}
	}
	n := rng.Intn(6)
	s := &Schedule{Procs: 1 + rng.Intn(3)}
	for i := 0; i < n; i++ {
		s.Slots = append(s.Slots, Assignment{Proc: rng.Intn(s.Procs), Time: rng.Intn(40)})
	}
	resp := SolveResponse{
		Spans:        rng.Intn(5),
		Schedule:     s,
		States:       rng.Intn(1000),
		Subinstances: rng.Intn(4),
		CacheHits:    rng.Intn(4),
	}
	resp.Gaps = max(resp.Spans-1, 0)
	if rng.Intn(2) == 1 {
		resp.Power = float64(rng.Intn(40)) / 4
	}
	if rng.Intn(2) == 1 {
		resp.Mode = [...]string{WireModeExact, WireModeHeuristic, WireModeAuto}[rng.Intn(3)]
		resp.LowerBound = float64(rng.Intn(resp.Spans + 1))
		resp.HeuristicFragments = rng.Intn(resp.Subinstances + 1)
	}
	return resp
}

// Round-trip property: encode → strict decode is the identity on every
// wire type, for requests of all shapes and for success, infeasible,
// and config-error response payloads.
func TestWireRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		req := randWireRequest(rng)
		if err := req.Validate(); err != nil {
			t.Fatalf("generated request invalid: %v", err)
		}
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(req); err != nil {
			t.Fatal(err)
		}
		got, err := DecodeSolveRequest(&buf)
		if err != nil {
			t.Fatalf("trial %d: decode request: %v", trial, err)
		}
		if !reflect.DeepEqual(got, req) {
			t.Fatalf("trial %d: request round trip:\n got %+v\nwant %+v", trial, got, req)
		}

		resp := randWireResponse(rng)
		buf.Reset()
		if err := json.NewEncoder(&buf).Encode(resp); err != nil {
			t.Fatal(err)
		}
		gotResp, err := DecodeSolveResponse(&buf)
		if err != nil {
			t.Fatalf("trial %d: decode response: %v", trial, err)
		}
		if !reflect.DeepEqual(gotResp, resp) {
			t.Fatalf("trial %d: response round trip:\n got %+v\nwant %+v", trial, gotResp, resp)
		}
	}
}

// Round-trip property at batch granularity: element order and payload
// variety (success / infeasible / config error) survive the envelope.
func TestWireBatchRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		var breq BatchRequest
		var bresp BatchResponse
		n := rng.Intn(6)
		for i := 0; i < n; i++ {
			breq.Requests = append(breq.Requests, randWireRequest(rng))
			bresp.Responses = append(bresp.Responses, randWireResponse(rng))
		}
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(breq); err != nil {
			t.Fatal(err)
		}
		gotReq, err := DecodeBatchRequest(&buf)
		if err != nil {
			t.Fatalf("trial %d: decode batch request: %v", trial, err)
		}
		if !reflect.DeepEqual(gotReq, breq) {
			t.Fatalf("trial %d: batch request round trip:\n got %+v\nwant %+v", trial, gotReq, breq)
		}
		buf.Reset()
		if err := json.NewEncoder(&buf).Encode(bresp); err != nil {
			t.Fatal(err)
		}
		gotResp, err := DecodeBatchResponse(&buf)
		if err != nil {
			t.Fatalf("trial %d: decode batch response: %v", trial, err)
		}
		if !reflect.DeepEqual(gotResp, bresp) {
			t.Fatalf("trial %d: batch response round trip:\n got %+v\nwant %+v", trial, gotResp, bresp)
		}
	}
}

func TestWireRequestRejects(t *testing.T) {
	cases := map[string]string{
		"unknown objective": `{"objective":"speed","jobs":[]}`,
		"unknown mode":      `{"mode":"sloppy","jobs":[]}`,
		"negative alpha":    `{"alpha":-2,"jobs":[]}`,
		"negative procs":    `{"procs":-1,"jobs":[]}`,
		"empty window":      `{"jobs":[{"release":3,"deadline":1}]}`,
		"unknown field":     `{"jobs":[],"priority":9}`,
		"trailing garbage":  `{"jobs":[]} {"jobs":[]}`,
		"not an object":     `[1,2,3]`,
	}
	for name, body := range cases {
		if _, err := DecodeSolveRequest(strings.NewReader(body)); err == nil {
			t.Errorf("%s: accepted %s", name, body)
		}
	}
}

func TestWireResponseRejects(t *testing.T) {
	cases := map[string]string{
		"schedule and error": `{"schedule":{"procs":1,"slots":[]},"error":{"code":"infeasible","message":"x"}}`,
		"error without code": `{"error":{"code":"","message":"x"}}`,
		"unknown field":      `{"spans":1,"bogus":true}`,
		"empty response":     `{}`,
		"neither on success": `{"spans":2,"gaps":1}`,
	}
	for name, body := range cases {
		if _, err := DecodeSolveResponse(strings.NewReader(body)); err == nil {
			t.Errorf("%s: accepted %s", name, body)
		}
	}
	if _, err := DecodeBatchResponse(strings.NewReader(`{"responses":[{"error":{"code":"","message":"x"}}]}`)); err == nil {
		t.Error("batch response with codeless error accepted")
	}
}

// Session wire round trips: create and delta requests and the shared
// session-management response survive encode → strict decode for all
// payload shapes.
func TestWireSessionRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 200; trial++ {
		sreq := randWireRequest(rng)
		creq := SessionCreateRequest{Objective: sreq.Objective, Alpha: sreq.Alpha, Procs: sreq.Procs,
			Mode: sreq.Mode, StateBudget: sreq.StateBudget, Jobs: sreq.Jobs}
		if err := creq.Validate(); err != nil {
			t.Fatalf("generated create request invalid: %v", err)
		}
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(creq); err != nil {
			t.Fatal(err)
		}
		gotC, err := DecodeSessionCreateRequest(&buf)
		if err != nil {
			t.Fatalf("trial %d: decode create: %v", trial, err)
		}
		if !reflect.DeepEqual(gotC, creq) {
			t.Fatalf("trial %d: create round trip:\n got %+v\nwant %+v", trial, gotC, creq)
		}

		dreq := SessionDeltaRequest{}
		for i := rng.Intn(4); i >= 0; i-- {
			r := rng.Intn(30)
			dreq.Add = append(dreq.Add, Job{Release: r, Deadline: r + rng.Intn(6)})
		}
		for _, id := range rng.Perm(20)[:rng.Intn(3)] {
			dreq.Remove = append(dreq.Remove, id)
		}
		buf.Reset()
		if err := json.NewEncoder(&buf).Encode(dreq); err != nil {
			t.Fatal(err)
		}
		gotD, err := DecodeSessionDeltaRequest(&buf)
		if err != nil {
			t.Fatalf("trial %d: decode delta: %v", trial, err)
		}
		if !reflect.DeepEqual(gotD, dreq) {
			t.Fatalf("trial %d: delta round trip:\n got %+v\nwant %+v", trial, gotD, dreq)
		}

		resp := SessionResponse{Session: "s1", Jobs: rng.Intn(9)}
		for i := rng.Intn(4); i > 0; i-- {
			resp.JobIDs = append(resp.JobIDs, rng.Intn(20))
		}
		if rng.Intn(3) == 0 {
			resp = SessionResponse{Err: &WireError{Code: ErrCodeNotFound, Message: "no session s9"}}
		}
		buf.Reset()
		if err := json.NewEncoder(&buf).Encode(resp); err != nil {
			t.Fatal(err)
		}
		gotR, err := DecodeSessionResponse(&buf)
		if err != nil {
			t.Fatalf("trial %d: decode session response: %v", trial, err)
		}
		if !reflect.DeepEqual(gotR, resp) {
			t.Fatalf("trial %d: session response round trip:\n got %+v\nwant %+v", trial, gotR, resp)
		}
	}
}

func TestWireSessionRejects(t *testing.T) {
	creates := map[string]string{
		"unknown objective": `{"objective":"speed"}`,
		"unknown mode":      `{"mode":"sloppy"}`,
		"negative alpha":    `{"alpha":-2}`,
		"negative procs":    `{"procs":-1}`,
		"empty window":      `{"jobs":[{"release":3,"deadline":1}]}`,
		"unknown field":     `{"ttl":30}`,
		"trailing garbage":  `{} {}`,
	}
	for name, body := range creates {
		if _, err := DecodeSessionCreateRequest(strings.NewReader(body)); err == nil {
			t.Errorf("create %s: accepted %s", name, body)
		}
	}
	deltas := map[string]string{
		"no operations":    `{}`,
		"empty window":     `{"add":[{"release":3,"deadline":1}]}`,
		"unknown field":    `{"add":[],"drop":[1]}`,
		"trailing garbage": `{"remove":[1]} {}`,
	}
	for name, body := range deltas {
		if _, err := DecodeSessionDeltaRequest(strings.NewReader(body)); err == nil {
			t.Errorf("delta %s: accepted %s", name, body)
		}
	}
	responses := map[string]string{
		"state and error":    `{"session":"s1","error":{"code":"not_found","message":"x"}}`,
		"error without code": `{"error":{"code":"","message":"x"}}`,
		"neither":            `{}`,
		"ids without id":     `{"jobIds":[1,2]}`,
	}
	for name, body := range responses {
		if _, err := DecodeSessionResponse(strings.NewReader(body)); err == nil {
			t.Errorf("response %s: accepted %s", name, body)
		}
	}
}

// The batch envelope error is itself part of the wire contract: it
// round-trips, and mixing it with element responses is rejected.
func TestWireBatchEnvelopeError(t *testing.T) {
	envelope := BatchResponse{Err: &WireError{Code: ErrCodeBadRequest, Message: "decoding batch request: bad JSON"}}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(envelope); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatchResponse(&buf)
	if err != nil {
		t.Fatalf("envelope error round trip: %v", err)
	}
	if !reflect.DeepEqual(got, envelope) {
		t.Fatalf("envelope error mangled: %+v", got)
	}
	rejects := map[string]string{
		"elements and envelope error": `{"responses":[{"spans":1,"schedule":{"procs":1,"slots":[]}}],"error":{"code":"bad_request","message":"x"}}`,
		"codeless envelope error":     `{"error":{"code":"","message":"x"}}`,
	}
	for name, body := range rejects {
		if _, err := DecodeBatchResponse(strings.NewReader(body)); err == nil {
			t.Errorf("%s: accepted %s", name, body)
		}
	}
}
