package sched

import (
	"fmt"
	"sort"
)

// Interval is a closed integer interval [Lo, Hi].
type Interval struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Len returns the number of integer times in the interval.
func (iv Interval) Len() int { return iv.Hi - iv.Lo + 1 }

// Valid reports whether the interval is non-empty.
func (iv Interval) Valid() bool { return iv.Lo <= iv.Hi }

// Contains reports whether t lies in the interval.
func (iv Interval) Contains(t int) bool { return iv.Lo <= t && t <= iv.Hi }

// Overlaps reports whether the two intervals share an integer time.
func (iv Interval) Overlaps(other Interval) bool {
	return iv.Lo <= other.Hi && other.Lo <= iv.Hi
}

func (iv Interval) String() string { return fmt.Sprintf("[%d,%d]", iv.Lo, iv.Hi) }

// MultiJob is a unit-length task executable at any integer time contained
// in one of its intervals (the paper's set T_i, stored run-length
// encoded). Intervals are kept sorted and disjoint by Normalize.
type MultiJob struct {
	Intervals []Interval `json:"intervals"`
}

// NewMultiJob builds a job from intervals, normalizing them.
func NewMultiJob(ivs ...Interval) MultiJob {
	j := MultiJob{Intervals: ivs}
	j.Normalize()
	return j
}

// MultiJobFromTimes builds a job allowed exactly at the given times.
func MultiJobFromTimes(times ...int) MultiJob {
	sorted := append([]int(nil), times...)
	sort.Ints(sorted)
	var ivs []Interval
	for i := 0; i < len(sorted); {
		k := i
		for k+1 < len(sorted) && sorted[k+1] <= sorted[k]+1 {
			k++
		}
		ivs = append(ivs, Interval{Lo: sorted[i], Hi: sorted[k]})
		i = k + 1
	}
	return MultiJob{Intervals: ivs}
}

// Normalize sorts the intervals and merges overlapping or adjacent ones.
func (j *MultiJob) Normalize() {
	if len(j.Intervals) == 0 {
		return
	}
	sort.Slice(j.Intervals, func(a, b int) bool {
		if j.Intervals[a].Lo != j.Intervals[b].Lo {
			return j.Intervals[a].Lo < j.Intervals[b].Lo
		}
		return j.Intervals[a].Hi < j.Intervals[b].Hi
	})
	out := j.Intervals[:1]
	for _, iv := range j.Intervals[1:] {
		last := &out[len(out)-1]
		if iv.Lo <= last.Hi+1 {
			if iv.Hi > last.Hi {
				last.Hi = iv.Hi
			}
		} else {
			out = append(out, iv)
		}
	}
	j.Intervals = out
}

// Valid reports whether every interval is non-empty and at least one
// interval exists.
func (j MultiJob) Valid() bool {
	if len(j.Intervals) == 0 {
		return false
	}
	for _, iv := range j.Intervals {
		if !iv.Valid() {
			return false
		}
	}
	return true
}

// Contains reports whether the job may execute at time t.
func (j MultiJob) Contains(t int) bool {
	for _, iv := range j.Intervals {
		if iv.Contains(t) {
			return true
		}
	}
	return false
}

// Times returns all allowed times in increasing order.
func (j MultiJob) Times() []int {
	var ts []int
	for _, iv := range j.Intervals {
		for t := iv.Lo; t <= iv.Hi; t++ {
			ts = append(ts, t)
		}
	}
	return ts
}

// NumTimes returns the number of allowed times.
func (j MultiJob) NumTimes() int {
	n := 0
	for _, iv := range j.Intervals {
		n += iv.Len()
	}
	return n
}

// UnitIntervals reports whether every interval has length exactly 1
// (the "unit" restriction of §5.2–§5.3).
func (j MultiJob) UnitIntervals() bool {
	for _, iv := range j.Intervals {
		if iv.Len() != 1 {
			return false
		}
	}
	return true
}

// MultiInstance is a single-machine multi-interval scheduling instance:
// assign each job a unique integer time from its allowed set.
type MultiInstance struct {
	Jobs []MultiJob `json:"jobs"`
}

// N returns the number of jobs.
func (mi MultiInstance) N() int { return len(mi.Jobs) }

// Validate checks that every job has at least one non-empty interval.
func (mi MultiInstance) Validate() error {
	for i, j := range mi.Jobs {
		if !j.Valid() {
			return fmt.Errorf("sched: multi-interval job %d has no valid interval", i)
		}
	}
	return nil
}

// AllTimes returns the sorted distinct union of all allowed times.
func (mi MultiInstance) AllTimes() []int {
	seen := make(map[int]struct{})
	for _, j := range mi.Jobs {
		for _, iv := range j.Intervals {
			for t := iv.Lo; t <= iv.Hi; t++ {
				seen[t] = struct{}{}
			}
		}
	}
	out := make([]int, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}

// MaxIntervalsPerJob returns the largest interval count over jobs.
func (mi MultiInstance) MaxIntervalsPerJob() int {
	m := 0
	for _, j := range mi.Jobs {
		if len(j.Intervals) > m {
			m = len(j.Intervals)
		}
	}
	return m
}

// FromOneInterval converts a single-processor one-interval instance to
// the equivalent multi-interval instance.
func FromOneInterval(in Instance) MultiInstance {
	jobs := make([]MultiJob, len(in.Jobs))
	for i, j := range in.Jobs {
		jobs[i] = MultiJob{Intervals: []Interval{{Lo: j.Release, Hi: j.Deadline}}}
	}
	return MultiInstance{Jobs: jobs}
}

// LayOut converts a p-processor one-interval instance into the equivalent
// single-machine multi-interval instance by laying the processor
// executions one after another on the timeline (§1 of the paper): with
// period x larger than the horizon, a job with window [a, d] becomes
// executable in the arithmetic sequence of intervals [a+qx, d+qx] for
// q = 0..p−1. It returns the instance and the period x.
func LayOut(in Instance) (MultiInstance, int) {
	lo, hi := in.TimeHorizon()
	if hi < lo {
		return MultiInstance{}, 1
	}
	x := hi - lo + 2 // leave one idle unit between processor segments
	jobs := make([]MultiJob, len(in.Jobs))
	for i, j := range in.Jobs {
		ivs := make([]Interval, in.Procs)
		for q := 0; q < in.Procs; q++ {
			ivs[q] = Interval{Lo: j.Release + q*x, Hi: j.Deadline + q*x}
		}
		jobs[i] = MultiJob{Intervals: ivs}
	}
	return MultiInstance{Jobs: jobs}, x
}

// MultiSchedule assigns each multi-interval job an execution time.
// Entry i is job i's time.
type MultiSchedule struct {
	Times []int `json:"times"`
}

// Validate checks distinctness and containment in allowed sets.
func (ms MultiSchedule) Validate(mi MultiInstance) error {
	if len(ms.Times) != len(mi.Jobs) {
		return fmt.Errorf("sched: schedule has %d times for %d jobs", len(ms.Times), len(mi.Jobs))
	}
	used := make(map[int]int, len(ms.Times))
	for i, t := range ms.Times {
		if !mi.Jobs[i].Contains(t) {
			return fmt.Errorf("sched: job %d at time %d outside its allowed set", i, t)
		}
		if prev, dup := used[t]; dup {
			return fmt.Errorf("sched: jobs %d and %d both at time %d", prev, i, t)
		}
		used[t] = i
	}
	return nil
}

// Spans returns the number of maximal busy intervals of the schedule.
func (ms MultiSchedule) Spans() int { return SpansOfTimes(ms.Times) }

// Gaps returns spans − 1 (0 when empty): the finite idle intervals
// between busy periods.
func (ms MultiSchedule) Gaps() int {
	s := ms.Spans()
	if s == 0 {
		return 0
	}
	return s - 1
}

// PowerCost returns the optimal-bridging power consumption of the
// schedule: busyUnits + α + Σ_gaps min(len, α) (initial wake included,
// final sleep free). Returns 0 for an empty schedule.
func (ms MultiSchedule) PowerCost(alpha float64) float64 {
	if len(ms.Times) == 0 {
		return 0
	}
	total := float64(len(ms.Times)) + alpha
	for _, g := range GapLengths(ms.Times) {
		total += minF(float64(g), alpha)
	}
	return total
}
