package sched

import (
	"encoding/json"
	"fmt"
	"io"
)

// File is the on-disk JSON envelope understood by the cmd tools. Exactly
// one of Instance or Multi must be set.
type File struct {
	// Kind is "one-interval" or "multi-interval".
	Kind string `json:"kind"`
	// Alpha is the wake-up transition cost for power objectives.
	Alpha float64 `json:"alpha,omitempty"`
	// Instance holds a one-interval (possibly multiprocessor) instance.
	Instance *Instance `json:"instance,omitempty"`
	// Multi holds a single-machine multi-interval instance.
	Multi *MultiInstance `json:"multi,omitempty"`
}

// KindOneInterval and KindMultiInterval are the accepted File kinds.
const (
	KindOneInterval   = "one-interval"
	KindMultiInterval = "multi-interval"
)

// WriteJSON encodes the file as indented JSON.
func (f File) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// ReadJSON decodes and validates a File.
func ReadJSON(r io.Reader) (File, error) {
	var f File
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return File{}, fmt.Errorf("sched: decoding instance file: %w", err)
	}
	switch f.Kind {
	case KindOneInterval:
		if f.Instance == nil {
			return File{}, fmt.Errorf("sched: kind %q requires field \"instance\"", f.Kind)
		}
		if err := f.Instance.Validate(); err != nil {
			return File{}, err
		}
	case KindMultiInterval:
		if f.Multi == nil {
			return File{}, fmt.Errorf("sched: kind %q requires field \"multi\"", f.Kind)
		}
		if err := f.Multi.Validate(); err != nil {
			return File{}, err
		}
	default:
		return File{}, fmt.Errorf("sched: unknown instance kind %q", f.Kind)
	}
	if f.Alpha < 0 {
		return File{}, fmt.Errorf("sched: negative alpha %v", f.Alpha)
	}
	return f, nil
}
