package sched

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestJobBasics(t *testing.T) {
	j := Job{Release: 2, Deadline: 5}
	if !j.Valid() || j.Window() != 4 {
		t.Fatalf("job basics broken: %+v", j)
	}
	if j.Contains(1) || !j.Contains(2) || !j.Contains(5) || j.Contains(6) {
		t.Fatal("Contains wrong")
	}
	if (Job{Release: 3, Deadline: 2}).Valid() {
		t.Fatal("reversed window accepted")
	}
}

func TestInstanceValidate(t *testing.T) {
	if err := NewInstance([]Job{{0, 1}}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := NewInstance([]Job{{1, 0}}).Validate(); err == nil {
		t.Fatal("empty window accepted")
	}
	if err := (Instance{Jobs: []Job{{0, 1}}, Procs: 0}).Validate(); err == nil {
		t.Fatal("zero processors accepted")
	}
}

func TestTimeHorizon(t *testing.T) {
	lo, hi := NewInstance([]Job{{3, 8}, {1, 4}, {5, 6}}).TimeHorizon()
	if lo != 1 || hi != 8 {
		t.Fatalf("horizon (%d,%d), want (1,8)", lo, hi)
	}
	lo, hi = NewInstance(nil).TimeHorizon()
	if lo != 0 || hi != -1 {
		t.Fatalf("empty horizon (%d,%d)", lo, hi)
	}
}

func TestSortedByDeadline(t *testing.T) {
	in := NewInstance([]Job{{0, 5}, {0, 2}, {1, 2}, {0, 9}})
	got := in.SortedByDeadline()
	want := []int{1, 2, 0, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestScheduleValidate(t *testing.T) {
	in := NewMultiprocInstance([]Job{{0, 2}, {0, 2}}, 2)
	good := Schedule{Procs: 2, Slots: []Assignment{{0, 0}, {1, 0}}}
	if err := good.Validate(in); err != nil {
		t.Fatal(err)
	}
	dup := Schedule{Procs: 2, Slots: []Assignment{{0, 0}, {0, 0}}}
	if err := dup.Validate(in); err == nil {
		t.Fatal("duplicate slot accepted")
	}
	out := Schedule{Procs: 2, Slots: []Assignment{{0, 5}, {1, 0}}}
	if err := out.Validate(in); err == nil {
		t.Fatal("out-of-window accepted")
	}
	badProc := Schedule{Procs: 2, Slots: []Assignment{{2, 0}, {1, 0}}}
	if err := badProc.Validate(in); err == nil {
		t.Fatal("out-of-range processor accepted")
	}
}

func TestSpansOfTimes(t *testing.T) {
	cases := []struct {
		ts   []int
		want int
	}{
		{nil, 0},
		{[]int{5}, 1},
		{[]int{1, 2, 3}, 1},
		{[]int{1, 3}, 2},
		{[]int{3, 1, 2, 7, 8, 10}, 3},
		{[]int{4, 4, 5}, 1}, // duplicates ignored
	}
	for _, c := range cases {
		if got := SpansOfTimes(c.ts); got != c.want {
			t.Fatalf("SpansOfTimes(%v) = %d, want %d", c.ts, got, c.want)
		}
	}
}

func TestGapLengths(t *testing.T) {
	got := GapLengths([]int{1, 2, 5, 9})
	want := []int{2, 3}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("GapLengths = %v, want %v", got, want)
	}
	if GapLengths(nil) != nil {
		t.Fatal("nil expected")
	}
}

func TestScheduleSpansAndGaps(t *testing.T) {
	s := Schedule{Procs: 2, Slots: []Assignment{
		{Proc: 0, Time: 0}, {Proc: 0, Time: 1}, {Proc: 0, Time: 5},
		{Proc: 1, Time: 1},
	}}
	if got := s.Spans(); got != 3 {
		t.Fatalf("spans %d, want 3", got)
	}
	if got := s.Gaps(); got != 2 {
		t.Fatalf("gaps %d, want 2", got)
	}
	empty := Schedule{Procs: 1}
	if empty.Spans() != 0 || empty.Gaps() != 0 {
		t.Fatal("empty schedule spans/gaps not 0")
	}
}

func TestPowerCost(t *testing.T) {
	s := Schedule{Procs: 1, Slots: []Assignment{
		{Proc: 0, Time: 0}, {Proc: 0, Time: 3},
	}}
	// gap of 2, alpha 5 → bridge: 2 busy + 5 wake + 2 bridge = 9.
	if got := s.PowerCost(5); got != 9 {
		t.Fatalf("power %v, want 9", got)
	}
	// alpha 1 → sleep: 2 + 1 + 1 = 4.
	if got := s.PowerCost(1); got != 4 {
		t.Fatalf("power %v, want 4", got)
	}
	if got := s.PowerCostSleepOnly(1); got != 4 {
		t.Fatalf("sleep-only %v, want 4", got)
	}
	if got := s.PowerCostSleepOnly(5); got != 12 {
		t.Fatalf("sleep-only %v, want 12", got)
	}
}

func TestSpansOfProfile(t *testing.T) {
	if got := SpansOfProfile(map[int]int{0: 2, 1: 1, 5: 1}); got != 3 {
		t.Fatalf("profile spans %d, want 3", got)
	}
	if got := SpansOfProfile(map[int]int{}); got != 0 {
		t.Fatalf("empty profile %d", got)
	}
	if got := SpansOfProfile(map[int]int{3: 1, 4: 2, 5: 1}); got != 2 {
		t.Fatalf("mountain %d, want 2", got)
	}
}

// TestProfileSpanIdentity: for any staircase schedule, per-processor
// span counting equals the profile formula Σ (l_u − l_{u−1})_+.
func TestProfileSpanIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Random staircase profile.
		profile := map[int]int{}
		for t := 0; t < 12; t++ {
			if l := r.Intn(4); l > 0 {
				profile[t] = l
			}
		}
		var slots []Assignment
		for t, l := range profile {
			for q := 0; q < l; q++ {
				slots = append(slots, Assignment{Proc: q, Time: t})
			}
		}
		s := Schedule{Procs: 3, Slots: slots}
		return s.Spans() == SpansOfProfile(profile)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestStaircaseNeverWorse: rearranging to staircase form never
// increases the span count (Lemma 1 direction we rely on).
func TestStaircaseNeverWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		p := 1 + rng.Intn(3)
		used := map[Assignment]bool{}
		var slots []Assignment
		for i := 0; i < 1+rng.Intn(8); i++ {
			a := Assignment{Proc: rng.Intn(p), Time: rng.Intn(10)}
			if !used[a] {
				used[a] = true
				slots = append(slots, a)
			}
		}
		s := Schedule{Procs: p, Slots: slots}
		st := s.Staircase()
		if st.Spans() > s.Spans() {
			t.Fatalf("trial %d: staircase %d spans > original %d (%v)", trial, st.Spans(), s.Spans(), slots)
		}
	}
}

func TestMultiJobNormalize(t *testing.T) {
	// All four intervals are contiguous as time sets: {1..9}.
	j := NewMultiJob(Interval{5, 7}, Interval{1, 2}, Interval{3, 4}, Interval{6, 9})
	if len(j.Intervals) != 1 || j.Intervals[0] != (Interval{1, 9}) {
		t.Fatalf("normalized to %v, want [[1,9]]", j.Intervals)
	}
	// A true hole survives normalization.
	k := NewMultiJob(Interval{8, 9}, Interval{1, 2}, Interval{2, 3})
	if len(k.Intervals) != 2 || k.Intervals[0] != (Interval{1, 3}) || k.Intervals[1] != (Interval{8, 9}) {
		t.Fatalf("normalized to %v, want [[1,3] [8,9]]", k.Intervals)
	}
}

func TestMultiJobFromTimes(t *testing.T) {
	j := MultiJobFromTimes(7, 1, 2, 3, 9)
	if len(j.Intervals) != 3 {
		t.Fatalf("intervals %v", j.Intervals)
	}
	ts := j.Times()
	want := []int{1, 2, 3, 7, 9}
	if len(ts) != len(want) {
		t.Fatalf("times %v", ts)
	}
	for i := range want {
		if ts[i] != want[i] {
			t.Fatalf("times %v, want %v", ts, want)
		}
	}
	if j.NumTimes() != 5 {
		t.Fatalf("NumTimes %d", j.NumTimes())
	}
}

func TestMultiScheduleValidate(t *testing.T) {
	mi := MultiInstance{Jobs: []MultiJob{
		MultiJobFromTimes(0, 1),
		MultiJobFromTimes(1, 2),
	}}
	if err := (MultiSchedule{Times: []int{0, 1}}).Validate(mi); err != nil {
		t.Fatal(err)
	}
	if err := (MultiSchedule{Times: []int{1, 1}}).Validate(mi); err == nil {
		t.Fatal("duplicate time accepted")
	}
	if err := (MultiSchedule{Times: []int{2, 1}}).Validate(mi); err == nil {
		t.Fatal("out-of-set time accepted")
	}
}

func TestLayOutStructure(t *testing.T) {
	in := NewMultiprocInstance([]Job{{0, 2}, {1, 3}}, 3)
	mi, x := LayOut(in)
	if x != 5 {
		t.Fatalf("period %d, want 5", x)
	}
	for _, j := range mi.Jobs {
		if len(j.Intervals) != 3 {
			t.Fatalf("laid-out job has %d intervals", len(j.Intervals))
		}
		for q := 1; q < 3; q++ {
			if j.Intervals[q].Lo-j.Intervals[q-1].Lo != x {
				t.Fatal("intervals not an arithmetic sequence with period x")
			}
		}
	}
}

func TestUnitIntervals(t *testing.T) {
	if !MultiJobFromTimes(1, 3, 5).UnitIntervals() {
		t.Fatal("unit times reported non-unit")
	}
	if NewMultiJob(Interval{0, 1}).UnitIntervals() {
		t.Fatal("length-2 interval reported unit")
	}
}

func TestBusyTimesSorted(t *testing.T) {
	s := Schedule{Procs: 2, Slots: []Assignment{{0, 5}, {0, 1}, {1, 3}}}
	per := s.BusyTimes()
	if !sort.IntsAreSorted(per[0]) || !sort.IntsAreSorted(per[1]) {
		t.Fatal("busy times unsorted")
	}
	if len(per[0]) != 2 || len(per[1]) != 1 {
		t.Fatalf("per-proc counts wrong: %v", per)
	}
}
