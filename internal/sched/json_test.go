package sched

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTripOneInterval(t *testing.T) {
	f := File{
		Kind:     KindOneInterval,
		Alpha:    2.5,
		Instance: &Instance{Jobs: []Job{{0, 3}, {2, 5}}, Procs: 2},
	}
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Alpha != 2.5 || got.Instance == nil || got.Instance.Procs != 2 || len(got.Instance.Jobs) != 2 {
		t.Fatalf("round trip mangled: %+v", got)
	}
}

func TestJSONRoundTripMulti(t *testing.T) {
	f := File{
		Kind:  KindMultiInterval,
		Multi: &MultiInstance{Jobs: []MultiJob{MultiJobFromTimes(1, 5, 9)}},
	}
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Multi == nil || got.Multi.N() != 1 {
		t.Fatalf("round trip mangled: %+v", got)
	}
}

func TestJSONRejects(t *testing.T) {
	cases := []string{
		`{"kind":"nonsense"}`,
		`{"kind":"one-interval"}`,   // missing instance
		`{"kind":"multi-interval"}`, // missing multi
		`{"kind":"one-interval","instance":{"jobs":[{"release":2,"deadline":1}],"procs":1}}`, // bad window
		`{"kind":"one-interval","alpha":-1,"instance":{"jobs":[],"procs":1}}`,                // negative alpha
		`{"kind":"one-interval","bogus":1,"instance":{"jobs":[],"procs":1}}`,                 // unknown field
	}
	for _, c := range cases {
		if _, err := ReadJSON(strings.NewReader(c)); err == nil {
			t.Fatalf("accepted %s", c)
		}
	}
}
