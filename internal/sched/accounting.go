package sched

import "sort"

// SpansOfTimes returns the number of maximal runs of consecutive integers
// in ts (which need not be sorted; duplicates are ignored).
func SpansOfTimes(ts []int) int {
	if len(ts) == 0 {
		return 0
	}
	sorted := append([]int(nil), ts...)
	sort.Ints(sorted)
	spans := 1
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			continue
		}
		if sorted[i] != sorted[i-1]+1 {
			spans++
		}
	}
	return spans
}

// GapLengths returns the lengths of the finite maximal idle intervals
// between consecutive busy times in ts.
func GapLengths(ts []int) []int {
	if len(ts) == 0 {
		return nil
	}
	sorted := append([]int(nil), ts...)
	sort.Ints(sorted)
	var gaps []int
	for i := 1; i < len(sorted); i++ {
		if d := sorted[i] - sorted[i-1]; d > 1 {
			gaps = append(gaps, d-1)
		}
	}
	return gaps
}

// Spans returns the total number of spans (maximal busy intervals,
// equivalently sleep→active transitions) of the schedule, summed over
// processors. This is the primitive minimization objective (DESIGN.md §1).
func (s Schedule) Spans() int {
	total := 0
	for _, ts := range s.BusyTimes() {
		total += SpansOfTimes(ts)
	}
	return total
}

// Gaps returns the number of finite idle intervals of the schedule in the
// concatenated-timeline convention: spans − 1 (0 for an empty schedule).
// On a single processor this is the classic gap count of Baptiste.
func (s Schedule) Gaps() int {
	sp := s.Spans()
	if sp == 0 {
		return 0
	}
	return sp - 1
}

// SpansOfProfile computes Σ_u (l_u − l_{u−1})_+ for a staircase occupancy
// profile given as a time→level map: the total number of per-processor
// spans of the staircase arrangement.
func SpansOfProfile(profile map[int]int) int {
	if len(profile) == 0 {
		return 0
	}
	times := make([]int, 0, len(profile))
	for t := range profile {
		if profile[t] > 0 {
			times = append(times, t)
		}
	}
	sort.Ints(times)
	spans, prev, prevT := 0, 0, 0
	for i, t := range times {
		l := profile[t]
		if i == 0 || t != prevT+1 {
			prev = 0
		}
		if l > prev {
			spans += l - prev
		}
		prev, prevT = l, t
	}
	return spans
}

// PowerCost returns the minimum power consumption of the schedule under
// transition cost alpha, when each processor may optionally remain active
// through a gap: activeUnits + α·transitions with each finite gap of
// length ℓ contributing min(ℓ, α). Processors begin asleep (the first
// wake-up on each used processor costs α) and the final return to sleep
// is free.
func (s Schedule) PowerCost(alpha float64) float64 {
	total := 0.0
	for _, ts := range s.BusyTimes() {
		if len(ts) == 0 {
			continue
		}
		total += float64(distinct(ts)) + alpha // busy units + initial wake
		for _, g := range GapLengths(ts) {
			total += minF(float64(g), alpha)
		}
	}
	return total
}

// PowerCostSleepOnly returns the power consumption when the machine must
// sleep during every gap (no bridging): n + α·spans.
func (s Schedule) PowerCostSleepOnly(alpha float64) float64 {
	busy := 0
	for _, ts := range s.BusyTimes() {
		busy += distinct(ts)
	}
	return float64(busy) + alpha*float64(s.Spans())
}

func distinct(sortedTs []int) int {
	n := 0
	for i, t := range sortedTs {
		if i == 0 || t != sortedTs[i-1] {
			n++
		}
	}
	return n
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Staircase rearranges the schedule so that at every time the occupied
// processors form a prefix P_0..P_{l−1} (Lemma 1 normal form). Job order
// within a time unit follows slot index. The returned schedule executes
// the same jobs at the same times.
func (s Schedule) Staircase() Schedule {
	out := s.Clone()
	byTime := make(map[int][]int)
	for i, a := range s.Slots {
		byTime[a.Time] = append(byTime[a.Time], i)
	}
	for t, jobs := range byTime {
		sort.Ints(jobs)
		for q, i := range jobs {
			out.Slots[i] = Assignment{Proc: q, Time: t}
		}
	}
	return out
}
