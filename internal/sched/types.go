// Package sched defines the core problem types shared by every algorithm
// in this repository: unit jobs with one-interval windows or explicit
// multi-interval time sets, single- and multi-processor instances, and
// schedules with span/gap/power accounting.
//
// Conventions (see DESIGN.md §1):
//   - Time is integral. A unit job scheduled at time t occupies exactly
//     the time unit t.
//   - The primitive objective is the number of spans (maximal busy
//     intervals), equivalently sleep→active transitions. On a single
//     machine, gaps = spans − 1.
//   - Power consumption with transition cost α is
//     activeUnits + α·(number of sleep→active transitions),
//     where the machine may stay active through a gap (bridging a gap of
//     length ℓ costs min(ℓ, α)).
package sched

import (
	"fmt"
	"sort"
)

// Job is a unit-length task with a one-interval execution window.
// It may be executed at any integer time t with Release ≤ t ≤ Deadline.
type Job struct {
	Release  int `json:"release"`
	Deadline int `json:"deadline"`
}

// Valid reports whether the job's window is non-empty.
func (j Job) Valid() bool { return j.Release <= j.Deadline }

// Window returns the number of integer times at which the job may run.
func (j Job) Window() int { return j.Deadline - j.Release + 1 }

// Contains reports whether the job may execute at time t.
func (j Job) Contains(t int) bool { return j.Release <= t && t <= j.Deadline }

func (j Job) String() string { return fmt.Sprintf("[%d,%d]", j.Release, j.Deadline) }

// Instance is a one-interval scheduling instance on p identical
// processors. Every job must be assigned a unique (processor, time) pair
// inside its window; each processor executes at most one job per time.
type Instance struct {
	Jobs  []Job `json:"jobs"`
	Procs int   `json:"procs"`
}

// NewInstance builds a single-processor instance from jobs.
func NewInstance(jobs []Job) Instance { return Instance{Jobs: jobs, Procs: 1} }

// NewMultiprocInstance builds a p-processor instance from jobs.
func NewMultiprocInstance(jobs []Job, p int) Instance { return Instance{Jobs: jobs, Procs: p} }

// N returns the number of jobs.
func (in Instance) N() int { return len(in.Jobs) }

// Validate checks structural sanity: at least one processor and
// non-empty windows for every job.
func (in Instance) Validate() error {
	if in.Procs < 1 {
		return fmt.Errorf("sched: instance has %d processors, need ≥ 1", in.Procs)
	}
	for i, j := range in.Jobs {
		if !j.Valid() {
			return fmt.Errorf("sched: job %d has empty window [%d,%d]", i, j.Release, j.Deadline)
		}
	}
	return nil
}

// TimeHorizon returns the smallest release and largest deadline.
// For an empty instance it returns (0, -1).
func (in Instance) TimeHorizon() (lo, hi int) {
	if len(in.Jobs) == 0 {
		return 0, -1
	}
	lo, hi = in.Jobs[0].Release, in.Jobs[0].Deadline
	for _, j := range in.Jobs[1:] {
		if j.Release < lo {
			lo = j.Release
		}
		if j.Deadline > hi {
			hi = j.Deadline
		}
	}
	return lo, hi
}

// SortedByDeadline returns job indices sorted by (deadline, release,
// index). All dynamic programs in this repository use this order.
func (in Instance) SortedByDeadline() []int {
	idx := make([]int, len(in.Jobs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool {
		a, b := in.Jobs[idx[x]], in.Jobs[idx[y]]
		if a.Deadline != b.Deadline {
			return a.Deadline < b.Deadline
		}
		if a.Release != b.Release {
			return a.Release < b.Release
		}
		return idx[x] < idx[y]
	})
	return idx
}

// Assignment places one job: processor Proc (0-based) at time Time.
type Assignment struct {
	Proc int `json:"proc"`
	Time int `json:"time"`
}

// Schedule assigns every job of an instance to a (processor, time) pair.
// Entry i corresponds to job i of the originating instance.
type Schedule struct {
	Procs int          `json:"procs"`
	Slots []Assignment `json:"slots"`
}

// Clone returns a deep copy of the schedule.
func (s Schedule) Clone() Schedule {
	out := Schedule{Procs: s.Procs, Slots: make([]Assignment, len(s.Slots))}
	copy(out.Slots, s.Slots)
	return out
}

// Validate checks the schedule against the instance: one assignment per
// job, times within windows, processors in range, no two jobs sharing a
// (processor, time) slot.
func (s Schedule) Validate(in Instance) error {
	if len(s.Slots) != len(in.Jobs) {
		return fmt.Errorf("sched: schedule has %d slots for %d jobs", len(s.Slots), len(in.Jobs))
	}
	if s.Procs != in.Procs {
		return fmt.Errorf("sched: schedule has %d procs, instance has %d", s.Procs, in.Procs)
	}
	used := make(map[Assignment]int, len(s.Slots))
	for i, a := range s.Slots {
		if a.Proc < 0 || a.Proc >= s.Procs {
			return fmt.Errorf("sched: job %d on processor %d out of range [0,%d)", i, a.Proc, s.Procs)
		}
		if !in.Jobs[i].Contains(a.Time) {
			return fmt.Errorf("sched: job %d at time %d outside window %v", i, a.Time, in.Jobs[i])
		}
		if prev, dup := used[a]; dup {
			return fmt.Errorf("sched: jobs %d and %d share slot (proc %d, time %d)", prev, i, a.Proc, a.Time)
		}
		used[a] = i
	}
	return nil
}

// Profile returns the occupancy profile of the schedule: a map from time
// to the number of jobs executing at that time (across all processors).
func (s Schedule) Profile() map[int]int {
	prof := make(map[int]int)
	for _, a := range s.Slots {
		prof[a.Time]++
	}
	return prof
}

// BusyTimes returns the sorted distinct times at which at least one job
// runs, per processor: result[q] lists processor q's busy times.
func (s Schedule) BusyTimes() [][]int {
	per := make([][]int, s.Procs)
	for _, a := range s.Slots {
		per[a.Proc] = append(per[a.Proc], a.Time)
	}
	for q := range per {
		sort.Ints(per[q])
	}
	return per
}
