// Package cli holds the one command-line convention shared by every
// tool under cmd/: flags parse on a ContinueOnError FlagSet, stray
// positional arguments are rejected with the usage text, and errors
// map to exit status 2 (0 for -h). Keeping it here means the tools
// cannot drift apart the way the early CLIs did.
package cli

import (
	"errors"
	"flag"
	"fmt"
)

// Parse runs fs on args and rejects stray positional arguments,
// printing the offending argument and the usage text to the FlagSet's
// configured output. The returned error is flag.ErrHelp when -h was
// asked for; pass any error to Status for the conventional exit code.
func Parse(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(fs.Output(), "%s: unexpected argument %q\n", fs.Name(), fs.Arg(0))
		fs.Usage()
		return fmt.Errorf("%s: unexpected arguments", fs.Name())
	}
	return nil
}

// Status maps a Parse outcome to the conventional exit status: 0 for
// success and -h, 2 for any command-line error.
func Status(err error) int {
	if err == nil || errors.Is(err, flag.ErrHelp) {
		return 0
	}
	return 2
}
