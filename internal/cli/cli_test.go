package cli

import (
	"bytes"
	"flag"
	"strings"
	"testing"
)

func newFS(stderr *bytes.Buffer) *flag.FlagSet {
	fs := flag.NewFlagSet("tool", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Int("n", 1, "a number")
	return fs
}

func TestParseAndStatus(t *testing.T) {
	cases := []struct {
		name       string
		args       []string
		wantStatus int
		wantUsage  bool
	}{
		{"clean", []string{"-n", "3"}, 0, false},
		{"unknown flag", []string{"-bogus"}, 2, true},
		{"bad value", []string{"-n", "lots"}, 2, true},
		{"positional", []string{"stray"}, 2, true},
		{"flag then positional", []string{"-n", "3", "stray"}, 2, true},
		{"help", []string{"-h"}, 0, true},
	}
	for _, c := range cases {
		var stderr bytes.Buffer
		err := Parse(newFS(&stderr), c.args)
		if got := Status(err); got != c.wantStatus {
			t.Errorf("%s: Status = %d, want %d (err %v)", c.name, got, c.wantStatus, err)
		}
		if hasUsage := strings.Contains(stderr.String(), "-n"); hasUsage != c.wantUsage {
			t.Errorf("%s: usage printed = %v, want %v:\n%s", c.name, hasUsage, c.wantUsage, stderr.String())
		}
	}
}

func TestParseNamesTheStrayArgument(t *testing.T) {
	var stderr bytes.Buffer
	if err := Parse(newFS(&stderr), []string{"oops"}); err == nil {
		t.Fatal("stray argument accepted")
	}
	if !strings.Contains(stderr.String(), `tool: unexpected argument "oops"`) {
		t.Fatalf("message does not name the argument:\n%s", stderr.String())
	}
}
