// Package obs is the observability layer shared by the solving
// pipeline and the daemon: lock-free latency histograms rendered in
// Prometheus histogram exposition format, and a lightweight
// solve-trace recorder — per-request span trees kept in a fixed-size
// ring — that the facade fills through a context-threaded Trace and
// the daemon serves at /v1/debug/traces. Everything here is designed
// to sit on the hot path: Observe is a couple of atomic adds, span
// recording is one short critical section per stage, and every
// recording entry point is nil-receiver safe so uninstrumented calls
// cost a single branch.
package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"strconv"
	"sync/atomic"
	"time"
)

// The bucket layout: finite bucket i holds observations with duration
// ≤ 2^i microseconds, so the boundaries run 1µs, 2µs, 4µs, … up to
// 2^25 µs ≈ 33.6 s, and one overflow bucket catches the rest (the
// exposition renders it as le="+Inf"). Log₂ spacing makes bucketing a
// bit-length computation — no search, no float math — which is what
// keeps Observe lock-free and branch-light.
const (
	// NumFiniteBuckets is the number of finite (non-+Inf) buckets.
	NumFiniteBuckets = 26
	numBuckets       = NumFiniteBuckets + 1 // + overflow ("+Inf")
)

// BucketBound returns the inclusive upper bound of finite bucket i in
// seconds: 2^i microseconds.
func BucketBound(i int) float64 {
	return float64(uint64(1)<<i) * 1e-6
}

// BucketIndex maps a duration to the index of the bucket it is counted
// in — the first finite bucket whose bound covers it, or
// NumFiniteBuckets for the overflow bucket. Exposed so quantile
// estimates and externally measured latencies can be compared at
// bucket granularity (the histogram's native resolution).
func BucketIndex(d time.Duration) int {
	return bucketOf(d)
}

// bucketOf maps a duration to its bucket index: the first finite
// bucket whose bound covers it, or the overflow bucket. Non-positive
// durations land in bucket 0.
func bucketOf(d time.Duration) int {
	n := d.Nanoseconds()
	if n <= 1000 { // ≤ 1µs, bucket 0's bound
		return 0
	}
	us := (uint64(n) + 999) / 1000 // ceil to microseconds
	i := bits.Len64(us - 1)        // ceil(log₂ us): first i with us ≤ 2^i
	if i >= NumFiniteBuckets {
		return NumFiniteBuckets // overflow
	}
	return i
}

// Histogram is a lock-free log₂-bucketed histogram of durations: one
// atomic counter per bucket plus an atomic nanosecond sum. The zero
// value is ready to use, and all methods are safe for concurrent use.
// Snapshots taken while writers are active are internally consistent
// per counter (each bucket is exact) but need not be a single instant
// across counters; the rendered cumulative counts are still monotone
// because they are summed from one snapshot.
type Histogram struct {
	buckets [numBuckets]atomic.Uint64
	sum     atomic.Int64 // nanoseconds
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.buckets[bucketOf(d)].Add(1)
	h.sum.Add(d.Nanoseconds())
}

// Snapshot is a point-in-time copy of a Histogram's counters.
type Snapshot struct {
	// Buckets holds per-bucket (non-cumulative) counts; the last entry
	// is the overflow ("+Inf") bucket.
	Buckets [numBuckets]uint64
	// Sum is the total of every observed duration.
	Sum time.Duration
}

// Snapshot copies the counters.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	if h == nil {
		return s
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Sum = time.Duration(h.sum.Load())
	return s
}

// reset zeroes the counters. Each store is atomic, but the reset as a
// whole is not a transaction: an Observe racing a reset may survive it
// or be lost. Windowed rotation (window.go) accepts that — a handful
// of observations at a sub-window boundary land in the neighboring
// sub-window or vanish, which is noise at histogram granularity.
func (h *Histogram) reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.sum.Store(0)
}

// Count returns the total number of observations in the snapshot.
func (s Snapshot) Count() uint64 {
	var n uint64
	for _, b := range s.Buckets {
		n += b
	}
	return n
}

// Merge adds another snapshot's counters into s.
func (s *Snapshot) Merge(o Snapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Sum += o.Sum
}

// Quantile estimates the q-quantile of the observed durations, in
// seconds, from the bucket counts alone. The rank's bucket is found by
// cumulative count; within the bucket the estimate interpolates
// geometrically — value = lo·2^frac over the bucket's (lo, hi] range,
// the natural interpolation for log₂-spaced bounds — so the estimate
// is always inside the bucket that holds the exact sample quantile,
// i.e. within one log₂ bucket (a factor of 2) of it. The overflow
// bucket is treated as one more doubling, (2^25µs, 2^26µs]. q is
// clamped to [0, 1]; an empty snapshot estimates 0.
func (s Snapshot) Quantile(q float64) float64 {
	total := s.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	// Nearest-rank: the smallest bucket whose cumulative count reaches
	// rank. rank 0 (q=0) resolves to the first non-empty bucket.
	rank := q * float64(total)
	var cum uint64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		if float64(cum)+float64(c) >= rank {
			hi := BucketBound(i)
			if i == NumFiniteBuckets {
				hi = 2 * BucketBound(NumFiniteBuckets-1)
			}
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return hi / 2 * math.Pow(2, frac)
		}
		cum += c
	}
	return 2 * BucketBound(NumFiniteBuckets-1)
}

// Series pairs one Histogram with the label set identifying it inside
// a metric family, e.g. `endpoint="solve"`. An empty Labels renders an
// unlabeled series.
type Series struct {
	Labels string
	Hist   *Histogram
}

// WriteProm renders one histogram metric family in Prometheus text
// exposition format: a single HELP/TYPE header followed, per series,
// by cumulative <name>_bucket samples with le boundaries in seconds
// ending at le="+Inf", then <name>_sum (seconds) and <name>_count.
func WriteProm(w io.Writer, name, help string, series ...Series) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for _, s := range series {
		snap := s.Hist.Snapshot()
		sep := ""
		if s.Labels != "" {
			sep = ","
		}
		var cum uint64
		for i := 0; i < NumFiniteBuckets; i++ {
			cum += snap.Buckets[i]
			fmt.Fprintf(w, "%s_bucket{%s%sle=\"%s\"} %d\n",
				name, s.Labels, sep, strconv.FormatFloat(BucketBound(i), 'g', -1, 64), cum)
		}
		cum += snap.Buckets[NumFiniteBuckets]
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, s.Labels, sep, cum)
		if s.Labels != "" {
			fmt.Fprintf(w, "%s_sum{%s} %g\n%s_count{%s} %d\n",
				name, s.Labels, snap.Sum.Seconds(), name, s.Labels, cum)
		} else {
			fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", name, snap.Sum.Seconds(), name, cum)
		}
	}
}
