package obs

// Rotation semantics of the rolling-window ring: deterministic aging
// with an explicit clock, ring reuse after idle gaps, and race-mode
// hammering of concurrent observers, rotators, and snapshotters.

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestWindowedRotation walks an explicit clock through sub-windows and
// checks the merged snapshot covers exactly the trailing window.
func TestWindowedRotation(t *testing.T) {
	w := NewWindowed(4*time.Second, 4) // 4 sub-windows of 1s
	base := time.Now()
	at := func(d time.Duration) time.Time { return base.Add(d) }

	// One observation in each of the first four sub-windows.
	for i := 0; i < 4; i++ {
		w.ObserveAt(at(time.Duration(i)*time.Second+500*time.Millisecond), time.Millisecond)
	}
	if got := w.SnapshotAt(at(3900 * time.Millisecond)).Count(); got != 4 {
		t.Fatalf("full window count = %d, want 4", got)
	}
	// Entering epoch 4 ages out epoch 0's observation.
	if got := w.SnapshotAt(at(4500 * time.Millisecond)).Count(); got != 3 {
		t.Fatalf("after one rotation count = %d, want 3", got)
	}
	// Sub-window by sub-window, the rest expire.
	if got := w.SnapshotAt(at(6500 * time.Millisecond)).Count(); got != 1 {
		t.Fatalf("after three rotations count = %d, want 1", got)
	}
	if got := w.SnapshotAt(at(8 * time.Second)).Count(); got != 0 {
		t.Fatalf("idle ring count = %d, want 0", got)
	}

	// Ring reuse after the idle gap: a new observation recycles its
	// slot and is the only thing a fresh snapshot sees.
	w.ObserveAt(at(9*time.Second+100*time.Millisecond), 2*time.Millisecond)
	snap := w.SnapshotAt(at(9*time.Second + 200*time.Millisecond))
	if got := snap.Count(); got != 1 {
		t.Fatalf("post-reuse count = %d, want 1", got)
	}
	if got := snap.Quantile(0.5); got < 1e-3 || got > 2e-3 {
		t.Errorf("post-reuse median = %g, want inside (1ms, 2ms]", got)
	}
}

// TestWindowedCounterRotation mirrors the histogram rotation test for
// the counter ring.
func TestWindowedCounterRotation(t *testing.T) {
	c := NewWindowedCounter(3*time.Second, 3)
	base := time.Now()
	at := func(d time.Duration) time.Time { return base.Add(d) }

	c.AddAt(at(100*time.Millisecond), 5)
	c.AddAt(at(1100*time.Millisecond), 7)
	c.AddAt(at(2100*time.Millisecond), 11)
	if got := c.TotalAt(at(2900 * time.Millisecond)); got != 23 {
		t.Fatalf("full window total = %d, want 23", got)
	}
	if got := c.TotalAt(at(3500 * time.Millisecond)); got != 18 {
		t.Fatalf("after one rotation total = %d, want 18", got)
	}
	if got := c.TotalAt(at(10 * time.Second)); got != 0 {
		t.Fatalf("idle total = %d, want 0", got)
	}
	// Reuse: the slot that held the first sub-window is recycled.
	c.AddAt(at(9*time.Second+10*time.Millisecond), 3)
	if got := c.TotalAt(at(9*time.Second + 20*time.Millisecond)); got != 3 {
		t.Fatalf("post-reuse total = %d, want 3", got)
	}
}

// TestWindowedDefaultsAndNil: non-positive construction parameters take
// the defaults, and nil receivers are no-ops (matching Histogram).
func TestWindowedDefaultsAndNil(t *testing.T) {
	w := NewWindowed(0, 0)
	if got := w.Window(); got != DefaultWindow {
		t.Errorf("default window = %v, want %v", got, DefaultWindow)
	}
	var nilW *Windowed
	nilW.Observe(time.Millisecond)
	if got := nilW.Snapshot().Count(); got != 0 {
		t.Errorf("nil Windowed snapshot count = %d", got)
	}
	if nilW.Window() != 0 {
		t.Errorf("nil Windowed window = %v", nilW.Window())
	}
	var nilC *WindowedCounter
	nilC.Add(1)
	if nilC.Total() != 0 {
		t.Errorf("nil WindowedCounter total = %d", nilC.Total())
	}
}

// TestWindowedConcurrentRotation hammers one ring from concurrent
// observers whose clocks advance through many sub-windows while
// snapshotters read, exercising recycle races under -race. The ring
// may drop boundary observations by design, so the invariants are
// one-sided: a snapshot never reports more than was ever observed, and
// never more than the trailing window could hold.
func TestWindowedConcurrentRotation(t *testing.T) {
	const (
		writers  = 4
		perEpoch = 64 // observations per writer per sub-window
		epochs   = 40 // sub-windows the virtual clock walks through
		subs     = 4  // ring size
		width    = int64(time.Millisecond)
	)
	w := NewWindowed(time.Duration(subs*width), subs)
	base := time.Now()
	var observed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for e := 0; e < epochs; e++ {
				for i := 0; i < perEpoch; i++ {
					at := base.Add(time.Duration(int64(e)*width + rng.Int63n(width)))
					w.ObserveAt(at, time.Duration(rng.Int63n(int64(time.Second))))
					observed.Add(1)
				}
			}
		}(g)
	}
	stop := make(chan struct{})
	var snapErr atomic.Value
	var snapWG sync.WaitGroup
	for g := 0; g < 2; g++ {
		snapWG.Add(1)
		go func(g int) {
			defer snapWG.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				at := base.Add(time.Duration(rng.Int63n(int64(epochs) * width)))
				snap := w.SnapshotAt(at)
				if n := snap.Count(); int64(n) > observed.Load() {
					snapErr.Store(n)
					return
				}
				snap.Quantile(0.99) // must never panic mid-rotation
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	snapWG.Wait()
	if v := snapErr.Load(); v != nil {
		t.Fatalf("snapshot reported %v observations, more than were ever made", v)
	}

	// Quiesced: a snapshot at the final epoch covers at most the last
	// `subs` sub-windows' worth of observations, plus the handful of
	// writers that may race each slot rotation.
	final := w.SnapshotAt(base.Add(time.Duration(int64(epochs-1)*width + width - 1)))
	maxInWindow := uint64(writers*perEpoch*subs + writers*subs)
	if got := final.Count(); got > maxInWindow {
		t.Fatalf("final window count = %d, want <= %d", got, maxInWindow)
	}
}

// TestWindowedCounterConcurrent is the counter-ring analogue.
func TestWindowedCounterConcurrent(t *testing.T) {
	const (
		writers = 4
		epochs  = 40
		width   = int64(time.Millisecond)
	)
	c := NewWindowedCounter(4*time.Duration(width), 4)
	base := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for e := 0; e < epochs; e++ {
				for i := 0; i < 32; i++ {
					c.AddAt(base.Add(time.Duration(int64(e)*width+rng.Int63n(width))), 1)
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			if c.TotalAt(base.Add(time.Duration(int64(i%epochs)*width))) < 0 {
				t.Error("negative windowed total")
				return
			}
		}
	}()
	wg.Wait()
	<-done
}
