package obs

// Rolling-window counters for live SLO evaluation. A cumulative
// Histogram can answer "what was p99 since startup" but not "what is
// p99 right now"; Windowed keeps a ring of K sub-window Histograms
// rotated on the monotonic clock, so a merged snapshot covers exactly
// the trailing window and old traffic ages out sub-window by
// sub-window. Observations stay on the lock-free Histogram hot path —
// rotation (one mutex acquisition per sub-window per slot, not per
// observation) is the only coordination added. WindowedCounter is the
// same ring over a single count, for windowed request/error rates.
//
// Rotation semantics: each ring slot is stamped with the sub-window
// index (epoch) it currently holds. A writer that finds its slot
// holding an older epoch recycles it under the mutex — reset, then
// re-stamp — before observing. Snapshots merge only slots whose epoch
// falls inside the trailing window, so a ring that has gone idle
// reports empty without ever being touched. Observations racing a
// recycle at a sub-window boundary may land in the neighboring
// sub-window or be dropped; every individual counter access is atomic,
// so the structure is race-clean and the loss is bounded by the
// handful of in-flight writers at the instant of rotation.

import (
	"sync"
	"sync/atomic"
	"time"
)

// Defaults applied when NewWindowed/NewWindowedCounter get
// non-positive parameters.
const (
	// DefaultWindow is the trailing window covered when none is given.
	DefaultWindow = time.Minute
	// DefaultSubWindows is the ring size when none is given: the
	// window's resolution, and the fraction of it (1/K) by which the
	// oldest traffic can outlive the window before aging out.
	DefaultSubWindows = 8
)

// windowClock is the epoch arithmetic shared by Windowed and
// WindowedCounter: sub-window index = elapsed monotonic time since
// base, divided by the sub-window width.
type windowClock struct {
	base  time.Time // monotonic anchor, set at construction
	width time.Duration
	slots int
}

func newWindowClock(window time.Duration, slots int) windowClock {
	if window <= 0 {
		window = DefaultWindow
	}
	if slots <= 0 {
		slots = DefaultSubWindows
	}
	width := window / time.Duration(slots)
	if width <= 0 {
		width = 1
	}
	return windowClock{base: time.Now(), width: width, slots: slots}
}

// epoch returns the sub-window index containing now (clamped at 0 for
// times before the anchor, which only a caller-supplied clock can
// produce).
func (c windowClock) epoch(now time.Time) int64 {
	e := int64(now.Sub(c.base) / c.width)
	if e < 0 {
		return 0
	}
	return e
}

// Window returns the trailing span a snapshot covers: slots × width
// (the requested window, up to divisor rounding).
func (c windowClock) Window() time.Duration {
	return c.width * time.Duration(c.slots)
}

// Windowed is a rolling-window histogram: a ring of sub-window
// Histograms rotated on the monotonic clock. Construct with
// NewWindowed; all methods are safe for concurrent use.
type Windowed struct {
	clock windowClock
	mu    sync.Mutex // serializes slot recycling
	ring  []windowSlot
}

type windowSlot struct {
	epoch atomic.Int64
	hist  Histogram
}

// NewWindowed builds a rolling histogram whose snapshots cover the
// trailing window, aged out in window/subs steps (non-positive
// arguments take DefaultWindow / DefaultSubWindows).
func NewWindowed(window time.Duration, subs int) *Windowed {
	clock := newWindowClock(window, subs)
	w := &Windowed{clock: clock, ring: make([]windowSlot, clock.slots)}
	for i := range w.ring {
		// Slot i starts as the (empty) holder of epoch i, so the ring
		// needs no sentinel state: every slot is always a valid,
		// possibly stale, sub-window.
		w.ring[i].epoch.Store(int64(i))
	}
	return w
}

// Window returns the trailing span a snapshot covers.
func (w *Windowed) Window() time.Duration {
	if w == nil {
		return 0
	}
	return w.clock.Window()
}

// Observe records one duration in the current sub-window.
func (w *Windowed) Observe(d time.Duration) {
	w.ObserveAt(time.Now(), d)
}

// ObserveAt records one duration in the sub-window containing now.
// Taking the clock as an argument keeps rotation testable; production
// callers use Observe. An observation whose sub-window has already
// been rotated past (a writer delayed across a full ring revolution)
// is dropped — its sub-window has aged out of the trailing window, so
// counting it anywhere would misattribute it.
func (w *Windowed) ObserveAt(now time.Time, d time.Duration) {
	if w == nil {
		return
	}
	e := w.clock.epoch(now)
	s := &w.ring[int(e%int64(len(w.ring)))]
	if ep := s.epoch.Load(); ep != e {
		if ep > e {
			return
		}
		w.recycle(s, e)
	}
	s.hist.Observe(d)
}

// recycle rotates slot s forward to epoch e: reset, then re-stamp,
// under the mutex so concurrent writers recycle each slot once.
func (w *Windowed) recycle(s *windowSlot, e int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if s.epoch.Load() >= e {
		return // another writer already rotated this slot
	}
	s.hist.reset()
	s.epoch.Store(e)
}

// Snapshot merges the sub-windows inside the trailing window ending
// now.
func (w *Windowed) Snapshot() Snapshot {
	return w.SnapshotAt(time.Now())
}

// SnapshotAt merges the sub-windows covering (now − Window(), now]:
// every ring slot whose epoch is within the last len(ring) sub-window
// indices. Slots that rotate while being read are skipped — their
// contents just left the window.
func (w *Windowed) SnapshotAt(now time.Time) Snapshot {
	var merged Snapshot
	if w == nil {
		return merged
	}
	e := w.clock.epoch(now)
	oldest := e - int64(len(w.ring)) + 1
	for i := range w.ring {
		s := &w.ring[i]
		ep := s.epoch.Load()
		if ep < oldest || ep > e {
			continue
		}
		snap := s.hist.Snapshot()
		if s.epoch.Load() != ep {
			continue // rotated mid-read; the data was about to expire anyway
		}
		merged.Merge(snap)
	}
	return merged
}

// WindowedCounter is a rolling-window event counter: the Windowed ring
// over a single count. Construct with NewWindowedCounter; all methods
// are safe for concurrent use.
type WindowedCounter struct {
	clock windowClock
	mu    sync.Mutex
	ring  []counterSlot
}

type counterSlot struct {
	epoch atomic.Int64
	n     atomic.Int64
}

// NewWindowedCounter builds a rolling counter whose Total covers the
// trailing window (non-positive arguments take DefaultWindow /
// DefaultSubWindows).
func NewWindowedCounter(window time.Duration, subs int) *WindowedCounter {
	clock := newWindowClock(window, subs)
	c := &WindowedCounter{clock: clock, ring: make([]counterSlot, clock.slots)}
	for i := range c.ring {
		c.ring[i].epoch.Store(int64(i))
	}
	return c
}

// Add counts n events in the current sub-window.
func (c *WindowedCounter) Add(n int64) {
	c.AddAt(time.Now(), n)
}

// AddAt counts n events in the sub-window containing now. Events whose
// sub-window has already been rotated past are dropped, mirroring
// Windowed.ObserveAt.
func (c *WindowedCounter) AddAt(now time.Time, n int64) {
	if c == nil {
		return
	}
	e := c.clock.epoch(now)
	s := &c.ring[int(e%int64(len(c.ring)))]
	if ep := s.epoch.Load(); ep != e {
		if ep > e {
			return
		}
		c.mu.Lock()
		if s.epoch.Load() < e {
			s.n.Store(0)
			s.epoch.Store(e)
		}
		c.mu.Unlock()
	}
	s.n.Add(n)
}

// Total sums the events inside the trailing window ending now.
func (c *WindowedCounter) Total() int64 {
	return c.TotalAt(time.Now())
}

// TotalAt sums the events inside (now − Window(), now].
func (c *WindowedCounter) TotalAt(now time.Time) int64 {
	if c == nil {
		return 0
	}
	e := c.clock.epoch(now)
	oldest := e - int64(len(c.ring)) + 1
	var total int64
	for i := range c.ring {
		s := &c.ring[i]
		ep := s.epoch.Load()
		if ep < oldest || ep > e {
			continue
		}
		n := s.n.Load()
		if s.epoch.Load() != ep {
			continue
		}
		total += n
	}
	return total
}
