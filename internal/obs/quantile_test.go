package obs

// Quantile-estimation accuracy: on synthetic distributions spanning
// several orders of magnitude — uniform, bimodal, heavy-tail — the
// log₂-bucket estimate of p50/p90/p99 must land within one log₂
// bucket of the exact sample percentile (the histogram's native
// resolution; the geometric interpolation cannot do better than the
// bucket that holds the rank).

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// exactQuantile is the nearest-rank sample quantile, matching the rank
// convention of Snapshot.Quantile.
func exactQuantile(sorted []time.Duration, q float64) time.Duration {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

func testQuantileAccuracy(t *testing.T, name string, draw func(*rand.Rand) time.Duration) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	const n = 20000
	var h Histogram
	samples := make([]time.Duration, n)
	for i := range samples {
		samples[i] = draw(rng)
		h.Observe(samples[i])
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	snap := h.Snapshot()
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := exactQuantile(samples, q)
		est := time.Duration(snap.Quantile(q) * float64(time.Second))
		eb, xb := BucketIndex(est), BucketIndex(exact)
		if d := eb - xb; d < -1 || d > 1 {
			t.Errorf("%s p%g: estimate %v (bucket %d) vs exact %v (bucket %d): off by more than one log2 bucket",
				name, 100*q, est, eb, exact, xb)
		}
	}
}

func TestQuantileUniform(t *testing.T) {
	testQuantileAccuracy(t, "uniform", func(rng *rand.Rand) time.Duration {
		return time.Millisecond + time.Duration(rng.Int63n(int64(99*time.Millisecond)))
	})
}

func TestQuantileBimodal(t *testing.T) {
	testQuantileAccuracy(t, "bimodal", func(rng *rand.Rand) time.Duration {
		// A fast mode around 2ms and a slow mode around 80ms, 9:1 —
		// the cache-hit / cache-miss latency shape.
		if rng.Float64() < 0.9 {
			return 2*time.Millisecond + time.Duration(rng.Int63n(int64(time.Millisecond)))
		}
		return 80*time.Millisecond + time.Duration(rng.Int63n(int64(10*time.Millisecond)))
	})
}

func TestQuantileHeavyTail(t *testing.T) {
	testQuantileAccuracy(t, "heavy-tail", func(rng *rand.Rand) time.Duration {
		// Pareto with shape 1.2 and scale 1ms, truncated at 20s: a
		// straggler-dominated tail several decades wide.
		x := float64(time.Millisecond) / math.Pow(1-rng.Float64(), 1/1.2)
		if x > float64(20*time.Second) {
			x = float64(20 * time.Second)
		}
		return time.Duration(x)
	})
}

// TestQuantileEdgeCases pins the degenerate inputs: empty snapshots,
// out-of-range q, single-bucket mass, and the overflow bucket.
func TestQuantileEdgeCases(t *testing.T) {
	var empty Snapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty snapshot quantile = %g, want 0", got)
	}

	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(3 * time.Microsecond) // bucket 2: (2µs, 4µs]
	}
	snap := h.Snapshot()
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		got := snap.Quantile(q)
		if got < 2e-6 || got > 4e-6 {
			t.Errorf("single-bucket quantile(%g) = %g, want inside (2µs, 4µs]", q, got)
		}
	}

	var over Histogram
	over.Observe(time.Hour) // overflow bucket
	if got := over.Snapshot().Quantile(0.99); got < BucketBound(NumFiniteBuckets-1) {
		t.Errorf("overflow quantile = %g, want >= %g", got, BucketBound(NumFiniteBuckets-1))
	}
}

// TestQuantileMonotone: estimates are non-decreasing in q.
func TestQuantileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	for i := 0; i < 5000; i++ {
		h.Observe(time.Duration(rng.Int63n(int64(time.Second))))
	}
	snap := h.Snapshot()
	prev := -1.0
	for q := 0.0; q <= 1.0; q += 0.01 {
		got := snap.Quantile(q)
		if got < prev {
			t.Fatalf("quantile(%g) = %g < quantile of smaller q %g", q, got, prev)
		}
		prev = got
	}
}
