package obs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestTraceSpansAndAttrs records a few stages (concurrently, as batch
// workers do) and checks the snapshot: spans sorted by start offset,
// attributes copied, error and duration stamped by Finish.
func TestTraceSpansAndAttrs(t *testing.T) {
	tr := NewTrace("solve")
	base := tr.Begin()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr.Span(StageSolve, "dp", base.Add(time.Duration(i)*time.Millisecond), time.Millisecond)
		}(i)
	}
	wg.Wait()
	tr.Span(StagePrep, "", base, 500*time.Microsecond)
	tr.SetAttr("mode", "auto")
	tr.Finish(errors.New("boom"))

	d := tr.Data()
	if d.Op != "solve" || d.Err != "boom" || d.Dur <= 0 {
		t.Fatalf("bad trace header: %+v", d)
	}
	if d.Attrs["mode"] != "auto" {
		t.Fatalf("attrs = %v", d.Attrs)
	}
	if len(d.Spans) != 5 {
		t.Fatalf("got %d spans, want 5", len(d.Spans))
	}
	for i := 1; i < len(d.Spans); i++ {
		if d.Spans[i].Start < d.Spans[i-1].Start {
			t.Fatalf("spans not sorted by start: %+v", d.Spans)
		}
	}
	if d.Spans[0].Name != StagePrep && d.Spans[0].Name != StageSolve {
		t.Fatalf("unexpected first span %+v", d.Spans[0])
	}

	// Finish stamps once: a second Finish must not overwrite.
	first := d.Dur
	tr.Finish(errors.New("later"))
	if got := tr.Data(); got.Dur != first || got.Err != "boom" {
		t.Fatalf("Finish overwrote: dur %v→%v err %q", first, got.Dur, got.Err)
	}
}

// TestNilTraceAndContext pins the nil-safety contract: recording into
// an absent trace is a no-op, and a context without a trace yields nil.
func TestNilTraceAndContext(t *testing.T) {
	var tr *Trace
	tr.Span(StageSolve, "dp", time.Now(), time.Second)
	tr.SetAttr("k", "v")
	tr.Finish(nil)
	if d := tr.Data(); d.Op != "" || len(d.Spans) != 0 {
		t.Fatalf("nil trace data = %+v", d)
	}
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("FromContext(empty) = %v", got)
	}
	ctx := With(context.Background(), nil)
	if got := FromContext(ctx); got != nil {
		t.Fatalf("FromContext(With(nil)) = %v", got)
	}
	real := NewTrace("x")
	if got := FromContext(With(context.Background(), real)); got != real {
		t.Fatalf("trace did not round-trip through context")
	}
}

// TestRecorderWraparound fills a small ring far past its capacity and
// checks that exactly the last N traces survive, newest first, with
// monotonically assigned ids.
func TestRecorderWraparound(t *testing.T) {
	const ringSize, total = 4, 11
	r := NewRecorder(ringSize)
	for i := 1; i <= total; i++ {
		tr := NewTrace(fmt.Sprintf("op%d", i))
		tr.Finish(nil)
		r.Add(tr)
	}
	got := r.Traces()
	if len(got) != ringSize {
		t.Fatalf("ring holds %d traces, want %d", len(got), ringSize)
	}
	for i, d := range got {
		wantID := uint64(total - i)
		if d.ID != wantID {
			t.Fatalf("trace %d has id %d, want %d (newest first)", i, d.ID, wantID)
		}
		if want := fmt.Sprintf("op%d", wantID); d.Op != want {
			t.Fatalf("trace id %d has op %q, want %q", d.ID, d.Op, want)
		}
	}
}

// TestRecorderPartialFill reads a ring that has not wrapped yet.
func TestRecorderPartialFill(t *testing.T) {
	r := NewRecorder(8)
	for i := 1; i <= 3; i++ {
		r.Add(NewTrace(fmt.Sprintf("op%d", i)))
	}
	got := r.Traces()
	if len(got) != 3 {
		t.Fatalf("ring holds %d traces, want 3", len(got))
	}
	if got[0].Op != "op3" || got[2].Op != "op1" {
		t.Fatalf("order wrong: %v, %v", got[0].Op, got[2].Op)
	}
	// Add finishes unfinished traces so durations are stamped.
	if got[0].Dur <= 0 {
		t.Fatalf("Add did not stamp duration: %+v", got[0])
	}
}

// TestRecorderConcurrentAdd exercises the ring under concurrent
// writers and readers (race detector coverage).
func TestRecorderConcurrentAdd(t *testing.T) {
	r := NewRecorder(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				r.Add(NewTrace("op"))
				r.Traces()
			}
		}()
	}
	wg.Wait()
	got := r.Traces()
	if len(got) != 16 {
		t.Fatalf("ring holds %d traces, want 16", len(got))
	}
	if got[0].ID != 400 {
		t.Fatalf("newest id = %d, want 400", got[0].ID)
	}
	var nilRec *Recorder
	nilRec.Add(NewTrace("x"))
	if nilRec.Traces() != nil {
		t.Fatalf("nil recorder returned traces")
	}
	r.Add(nil) // nil trace is a no-op
	if got := r.Traces(); got[0].ID != 400 {
		t.Fatalf("nil Add bumped ids: %d", got[0].ID)
	}
}
