package obs

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Span stage names recorded by the solving pipeline. Solve spans
// additionally carry the backend that served the fragment
// ("dp", "poly", "heuristic").
const (
	StageQueueWait = "queue_wait" // coalescer buffering, enqueue → dispatch
	StagePrep      = "prep"       // instance validation + decomposition
	StageCache     = "cache"      // fragment served from the cache (incl. singleflight waits)
	StageSolve     = "solve"      // one fragment's backend solve
	StageAssemble  = "assemble"   // fragment schedules → instance schedule + validation
)

// Span is one timed stage of a solve. Start is the offset from the
// owning trace's start time, so a span tree is self-contained.
// Both durations marshal as integer nanoseconds.
type Span struct {
	Name    string        `json:"name"`
	Backend string        `json:"backend,omitempty"`
	Start   time.Duration `json:"startNs"`
	Dur     time.Duration `json:"durationNs"`
}

// Trace collects the span tree of one solve request. Create with
// NewTrace, attach to a context with With so the facade records into
// it, and hand the finished trace to a Recorder. All methods are safe
// for concurrent use (batch workers record spans concurrently) and
// nil-receiver safe, so an unattached pipeline pays one branch per
// would-be span.
type Trace struct {
	op    string
	start time.Time

	mu    sync.Mutex
	spans []Span
	attrs map[string]string
	err   string
	dur   time.Duration
}

// NewTrace starts a trace for one operation (e.g. "solve",
// "session_solve"); the clock starts now.
func NewTrace(op string) *Trace {
	return &Trace{op: op, start: time.Now()}
}

// Begin returns the trace's start time; recording helpers measure
// span offsets against it.
func (t *Trace) Begin() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// Span records one completed stage: a span named name (backend-tagged
// when backend is non-empty) that started at start and ran for d.
func (t *Trace) Span(name, backend string, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	sp := Span{Name: name, Backend: backend, Start: start.Sub(t.start), Dur: d}
	t.mu.Lock()
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
}

// SetAttr attaches one key=value attribute (request id, mode, fragment
// count, …) shown with the trace in /v1/debug/traces and in slow-solve
// log lines.
func (t *Trace) SetAttr(key, value string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.attrs == nil {
		t.attrs = make(map[string]string)
	}
	t.attrs[key] = value
	t.mu.Unlock()
}

// Finish stamps the trace's total duration (once; later calls keep the
// first stamp) and, when err is non-nil, its error text.
func (t *Trace) Finish(err error) {
	if t == nil {
		return
	}
	d := time.Since(t.start)
	t.mu.Lock()
	if t.dur == 0 {
		t.dur = d
	}
	if err != nil && t.err == "" {
		t.err = err.Error()
	}
	t.mu.Unlock()
}

// Dur returns the total duration stamped by Finish (the live elapsed
// time if Finish has not run yet).
func (t *Trace) Dur() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.dur == 0 {
		return time.Since(t.start)
	}
	return t.dur
}

// Data snapshots the trace into its serializable form: spans sorted by
// start offset (concurrent workers append out of order), attributes
// copied. ID is zero until a Recorder assigns one.
func (t *Trace) Data() TraceData {
	if t == nil {
		return TraceData{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	d := TraceData{
		Op:    t.op,
		Start: t.start,
		Dur:   t.dur,
		Err:   t.err,
		Spans: append([]Span(nil), t.spans...),
	}
	if len(t.attrs) > 0 {
		d.Attrs = make(map[string]string, len(t.attrs))
		for k, v := range t.attrs {
			d.Attrs[k] = v
		}
	}
	sort.SliceStable(d.Spans, func(i, j int) bool { return d.Spans[i].Start < d.Spans[j].Start })
	return d
}

// TraceData is the serializable snapshot of one finished trace, the
// element of /v1/debug/traces responses. Dur marshals as integer
// nanoseconds.
type TraceData struct {
	ID    uint64            `json:"id"`
	Op    string            `json:"op"`
	Start time.Time         `json:"start"`
	Dur   time.Duration     `json:"durationNs"`
	Err   string            `json:"error,omitempty"`
	Attrs map[string]string `json:"attrs,omitempty"`
	Spans []Span            `json:"spans"`
}

// ctxKey keys the Trace attached to a context.
type ctxKey struct{}

// With returns a context carrying t; the solving pipeline records its
// stage spans into whatever trace the context carries.
func With(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the context's trace, or nil when none is
// attached (every recording method is nil-safe).
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// DefaultRingSize is the trace ring capacity used when a Recorder is
// built with a non-positive size.
const DefaultRingSize = 64

// Recorder keeps the last N finished traces in a fixed-size ring and
// assigns each a monotonically increasing id. Safe for concurrent use.
type Recorder struct {
	mu   sync.Mutex
	ring []TraceData
	next uint64 // traces ever added; ids are 1-based
}

// NewRecorder builds a recorder holding the last n traces (n ≤ 0 means
// DefaultRingSize).
func NewRecorder(n int) *Recorder {
	if n <= 0 {
		n = DefaultRingSize
	}
	return &Recorder{ring: make([]TraceData, 0, n)}
}

// Add finishes t (if its owner has not already) and stores its
// snapshot, evicting the oldest trace once the ring is full. It
// returns the id assigned to the trace, so log lines can reference the
// retained entry. A nil recorder or a nil trace is a no-op returning 0.
func (r *Recorder) Add(t *Trace) uint64 {
	if r == nil || t == nil {
		return 0
	}
	t.Finish(nil)
	d := t.Data()
	r.mu.Lock()
	r.next++
	d.ID = r.next
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, d)
	} else {
		r.ring[int((r.next-1)%uint64(cap(r.ring)))] = d
	}
	r.mu.Unlock()
	return d.ID
}

// Traces returns the retained traces, newest first.
func (r *Recorder) Traces() []TraceData {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceData, 0, len(r.ring))
	for i := 0; i < len(r.ring); i++ {
		// Newest is at index (next-1) mod cap; walk backwards.
		idx := int((r.next - 1 - uint64(i)) % uint64(cap(r.ring)))
		out = append(out, r.ring[idx])
	}
	return out
}
