package obs

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestBucketBoundaries pins the bucketing contract at the exact edges:
// non-positive and sub-microsecond durations land in bucket 0, a
// duration exactly at a power-of-two boundary lands in the bucket
// whose inclusive bound it equals, one nanosecond past a boundary
// spills into the next bucket, and durations beyond the last finite
// bound land in the overflow bucket.
func TestBucketBoundaries(t *testing.T) {
	last := time.Duration(1<<(NumFiniteBuckets-1)) * time.Microsecond
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{-time.Second, 0},
		{time.Nanosecond, 0},
		{time.Microsecond, 0},         // exactly bucket 0's bound
		{time.Microsecond + 1, 1},     // one past it
		{2 * time.Microsecond, 1},     // exactly 2^1 µs
		{4 * time.Microsecond, 2},     // exactly 2^2 µs
		{4*time.Microsecond + 1, 3},   // one past 2^2 µs
		{1024 * time.Microsecond, 10}, // exactly 2^10 µs
		{last, NumFiniteBuckets - 1},  // exactly the last finite bound
		{last + 1, NumFiniteBuckets},  // one past it: overflow
		{time.Hour, NumFiniteBuckets}, // far overflow
		{3 * time.Microsecond, 2},     // interior value rounds up
		{1500 * time.Nanosecond, 1},   // sub-µs remainder ceils
	}
	for _, c := range cases {
		if got := bucketOf(c.d); got != c.want {
			t.Errorf("bucketOf(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

// TestHistogramConcurrentObserve hammers one histogram from many
// goroutines (run under -race in CI) and checks that no observation is
// lost and the sum is exact.
func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(time.Duration(w*perWorker+i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	snap := h.Snapshot()
	if got, want := snap.Count(), uint64(workers*perWorker); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	var wantSum time.Duration
	for i := 0; i < workers*perWorker; i++ {
		wantSum += time.Duration(i) * time.Microsecond
	}
	if snap.Sum != wantSum {
		t.Fatalf("sum = %v, want %v", snap.Sum, wantSum)
	}
}

// TestNilHistogram pins nil-receiver safety: the uninstrumented path
// calls Observe/Snapshot on nil.
func TestNilHistogram(t *testing.T) {
	var h *Histogram
	h.Observe(time.Second)
	if got := h.Snapshot().Count(); got != 0 {
		t.Fatalf("nil histogram count = %d", got)
	}
}

// TestWritePromExposition renders a two-series family and checks the
// exposition invariants the daemon's /metrics relies on: one HELP/TYPE
// header, per-series cumulative-monotone buckets ending at le="+Inf",
// and _sum/_count samples agreeing with the observations.
func TestWritePromExposition(t *testing.T) {
	var a, b Histogram
	a.Observe(time.Microsecond)     // bucket 0
	a.Observe(3 * time.Microsecond) // bucket 2
	a.Observe(time.Hour)            // overflow
	b.Observe(2 * time.Millisecond)

	var sb strings.Builder
	WriteProm(&sb, "test_seconds", "Test histogram.",
		Series{Labels: `endpoint="solve"`, Hist: &a},
		Series{Labels: `endpoint="batch"`, Hist: &b})
	out := sb.String()

	if !strings.HasPrefix(out, "# HELP test_seconds Test histogram.\n# TYPE test_seconds histogram\n") {
		t.Fatalf("missing HELP/TYPE header:\n%s", out)
	}
	if n := strings.Count(out, "# TYPE"); n != 1 {
		t.Fatalf("want exactly one TYPE line, got %d", n)
	}
	for _, series := range []struct {
		label string
		count uint64
		sum   float64
	}{
		{`endpoint="solve"`, 3, (time.Microsecond + 3*time.Microsecond + time.Hour).Seconds()},
		{`endpoint="batch"`, 1, (2 * time.Millisecond).Seconds()},
	} {
		var prev uint64
		buckets, infSeen := 0, false
		sc := bufio.NewScanner(strings.NewReader(out))
		for sc.Scan() {
			line := sc.Text()
			if !strings.Contains(line, series.label) {
				continue
			}
			switch {
			case strings.HasPrefix(line, "test_seconds_bucket{"):
				if infSeen {
					t.Fatalf("bucket after le=\"+Inf\": %s", line)
				}
				fields := strings.Fields(line)
				v, err := strconv.ParseUint(fields[1], 10, 64)
				if err != nil {
					t.Fatalf("bad bucket value %q: %v", line, err)
				}
				if v < prev {
					t.Fatalf("non-monotone cumulative bucket: %s (prev %d)", line, prev)
				}
				prev = v
				buckets++
				if strings.Contains(line, `le="+Inf"`) {
					infSeen = true
					if v != series.count {
						t.Fatalf("+Inf bucket = %d, want %d", v, series.count)
					}
				}
			case strings.HasPrefix(line, "test_seconds_count"):
				if fields := strings.Fields(line); fields[1] != fmt.Sprint(series.count) {
					t.Fatalf("count sample %q, want %d", line, series.count)
				}
			case strings.HasPrefix(line, "test_seconds_sum"):
				fields := strings.Fields(line)
				v, err := strconv.ParseFloat(fields[1], 64)
				if err != nil || v != series.sum {
					t.Fatalf("sum sample %q, want %g", line, series.sum)
				}
			}
		}
		if !infSeen {
			t.Fatalf("series %s has no le=\"+Inf\" bucket", series.label)
		}
		if buckets != NumFiniteBuckets+1 {
			t.Fatalf("series %s rendered %d buckets, want %d", series.label, buckets, NumFiniteBuckets+1)
		}
	}
}

// TestBucketBoundsAscending pins that the rendered le boundaries are
// strictly increasing — the property the cumulative counts depend on.
func TestBucketBoundsAscending(t *testing.T) {
	for i := 1; i < NumFiniteBuckets; i++ {
		if BucketBound(i) <= BucketBound(i-1) {
			t.Fatalf("BucketBound(%d)=%g not above BucketBound(%d)=%g",
				i, BucketBound(i), i-1, BucketBound(i-1))
		}
	}
}
