// Package fragcache is a sharded, bounded, concurrency-safe
// memoization cache with in-flight deduplication ("singleflight"). The
// solver facade uses it to cache canonical-fragment solutions across a
// batch: duplicate fragments — the common case for bursty
// power-management workloads that repeat the same local job patterns —
// are solved once and served from memory afterwards, and two workers
// that reach the same fragment concurrently share one computation
// instead of racing to duplicate it.
//
// The cache is generic in its value type and keyed by exact strings
// (the facade uses prep.CanonicalKey), so a hit can never conflate two
// different subproblems. Keys hash onto a fixed set of shards, each
// holding an independently locked LRU list; capacity is enforced per
// shard, so the total bound is approximate (capacity rounded up to a
// multiple of the shard count) but eviction never blocks other shards.
package fragcache

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// numShards fixes the lock-striping width. 16 keeps per-shard mutex
// contention negligible for worker pools up to a few dozen goroutines
// while keeping the per-cache footprint trivial.
const numShards = 16

// Cache is a sharded LRU memoization cache. The zero value is not
// usable; construct with New.
type Cache[V any] struct {
	shards [numShards]shard[V]

	hits      atomic.Int64
	misses    atomic.Int64
	waits     atomic.Int64
	evictions atomic.Int64
}

type shard[V any] struct {
	mu       sync.Mutex
	cap      int
	entries  map[string]*list.Element // key → *lruEntry[V] element
	order    *list.List               // front = most recently used
	inflight map[string]*call[V]
}

type lruEntry[V any] struct {
	key string
	val V
}

// call is one in-flight computation. done is closed when the leader
// finishes; ok reports whether val was actually produced (false when
// the leader's compute panicked, in which case waiters retry).
type call[V any] struct {
	done chan struct{}
	val  V
	ok   bool
}

// New builds a cache holding at most about capacity entries (rounded up
// to a multiple of the shard count; capacities below one entry per
// shard still admit one entry per shard).
func New[V any](capacity int) *Cache[V] {
	if capacity < 1 {
		capacity = 1
	}
	per := (capacity + numShards - 1) / numShards
	c := &Cache[V]{}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.cap = per
		sh.entries = make(map[string]*list.Element)
		sh.order = list.New()
		sh.inflight = make(map[string]*call[V])
	}
	return c
}

// Do returns the value for key, running compute to produce it on a
// miss. Concurrent calls with an equal key are deduplicated: exactly
// one caller (the leader) runs compute while the rest block and share
// its result. hit reports whether this caller avoided running compute —
// a stored entry or a completed in-flight computation.
//
// compute must be deterministic for the key (the facade guarantees
// this: keys encode the whole subproblem) and must not call back into
// the same cache key, which would deadlock.
func (c *Cache[V]) Do(key string, compute func() V) (v V, hit bool) {
	sh := &c.shards[shardIndex(key)%numShards]
	for {
		sh.mu.Lock()
		if el, ok := sh.entries[key]; ok {
			sh.order.MoveToFront(el)
			v = el.Value.(*lruEntry[V]).val
			sh.mu.Unlock()
			c.hits.Add(1)
			return v, true
		}
		if cl, ok := sh.inflight[key]; ok {
			sh.mu.Unlock()
			c.waits.Add(1)
			<-cl.done
			if cl.ok {
				c.hits.Add(1)
				return cl.val, true
			}
			continue // the leader panicked; take over the computation
		}
		cl := &call[V]{done: make(chan struct{})}
		sh.inflight[key] = cl
		sh.mu.Unlock()
		c.misses.Add(1)
		return c.lead(sh, key, cl, compute)
	}
}

// lead runs compute as the single in-flight leader for key. Publishing
// happens in a defer so that waiters are woken even if compute panics;
// they observe ok == false and retry the computation themselves rather
// than caching a poisoned entry.
func (c *Cache[V]) lead(sh *shard[V], key string, cl *call[V], compute func() V) (V, bool) {
	defer func() {
		sh.mu.Lock()
		delete(sh.inflight, key)
		if cl.ok {
			sh.insert(key, cl.val, &c.evictions)
		}
		sh.mu.Unlock()
		close(cl.done)
	}()
	cl.val = compute()
	cl.ok = true
	return cl.val, false
}

// insert stores key at the front of the shard's LRU order, evicting
// from the back past capacity. Caller holds sh.mu.
func (sh *shard[V]) insert(key string, v V, evictions *atomic.Int64) {
	if el, ok := sh.entries[key]; ok {
		el.Value.(*lruEntry[V]).val = v
		sh.order.MoveToFront(el)
		return
	}
	sh.entries[key] = sh.order.PushFront(&lruEntry[V]{key: key, val: v})
	for sh.order.Len() > sh.cap {
		back := sh.order.Back()
		sh.order.Remove(back)
		delete(sh.entries, back.Value.(*lruEntry[V]).key)
		evictions.Add(1)
	}
}

// Len returns the number of stored entries across all shards.
func (c *Cache[V]) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.order.Len()
		sh.mu.Unlock()
	}
	return n
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits counts Do calls that did not run compute: entries served
	// from storage plus waiters that shared a completed in-flight
	// computation.
	Hits int64
	// Misses counts Do calls that ran compute (in-flight leaders).
	Misses int64
	// Waits counts Do calls that blocked on another caller's in-flight
	// computation; each such call is also counted in Hits once the
	// leader succeeds.
	Waits int64
	// Evictions counts entries dropped by the per-shard LRU bound;
	// together with Entries it makes cache pressure observable — a
	// growing eviction rate at a pinned Entries means the working set
	// no longer fits.
	Evictions int64
	// Entries is the number of entries currently stored (Len at
	// snapshot time).
	Entries int
}

// Stats snapshots the cache counters. The counters are read
// individually, so a snapshot taken under concurrent use is internally
// consistent only approximately.
func (c *Cache[V]) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Waits:     c.waits.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.Len(),
	}
}

// shardIndex is FNV-1a over the key bytes, inlined to avoid a hasher
// allocation per lookup.
func shardIndex(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}
