package fragcache

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoMissThenHit(t *testing.T) {
	c := New[int](8)
	calls := 0
	compute := func() int { calls++; return 42 }
	v, hit := c.Do("k", compute)
	if v != 42 || hit {
		t.Fatalf("first Do: v=%d hit=%v", v, hit)
	}
	v, hit = c.Do("k", compute)
	if v != 42 || !hit {
		t.Fatalf("second Do: v=%d hit=%v", v, hit)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times", calls)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Waits != 0 || st.Evictions != 0 {
		t.Fatalf("stats %+v", st)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestDistinctKeysDistinctValues(t *testing.T) {
	c := New[string](64)
	for i := 0; i < 32; i++ {
		key := fmt.Sprintf("key-%d", i)
		want := fmt.Sprintf("val-%d", i)
		if v, _ := c.Do(key, func() string { return want }); v != want {
			t.Fatalf("%s: got %q", key, v)
		}
	}
	for i := 0; i < 32; i++ {
		key := fmt.Sprintf("key-%d", i)
		want := fmt.Sprintf("val-%d", i)
		v, hit := c.Do(key, func() string { t.Fatalf("%s recomputed", key); return "" })
		if !hit || v != want {
			t.Fatalf("%s: hit=%v v=%q", key, hit, v)
		}
	}
}

func TestCapacityBoundAndEviction(t *testing.T) {
	capacity := 32
	c := New[int](capacity)
	n := 100 * capacity
	for i := 0; i < n; i++ {
		c.Do(fmt.Sprintf("key-%d", i), func() int { return i })
	}
	// Capacity is enforced per shard: ceil(32/16) = 2 entries per shard.
	perShard := (capacity + numShards - 1) / numShards
	if got, bound := c.Len(), perShard*numShards; got > bound {
		t.Fatalf("Len = %d exceeds bound %d", got, bound)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions after overfilling")
	}
	if st.Evictions+int64(c.Len()) != int64(n) {
		t.Fatalf("evictions %d + len %d != inserted %d", st.Evictions, c.Len(), n)
	}
	if st.Entries != c.Len() {
		t.Fatalf("Stats().Entries = %d, Len() = %d", st.Entries, c.Len())
	}
}

// TestStatsEntriesTracksSize: the Entries counter in a Stats snapshot
// follows the stored-entry count as the cache fills and then holds at
// the bound under pressure while Evictions keeps growing — the
// observable signature of a working set outgrowing the cache.
func TestStatsEntriesTracksSize(t *testing.T) {
	c := New[int](numShards) // 1 entry per shard
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("fresh cache Entries = %d", st.Entries)
	}
	c.Do("only", func() int { return 1 })
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("Entries = %d after one insert", st.Entries)
	}
	var prevEvictions int64
	for round := 0; round < 3; round++ {
		for i := 0; i < 200; i++ {
			c.Do(fmt.Sprintf("pressure-%d-%d", round, i), func() int { return i })
		}
		st := c.Stats()
		if st.Entries > numShards {
			t.Fatalf("round %d: Entries = %d exceeds capacity %d", round, st.Entries, numShards)
		}
		if st.Evictions <= prevEvictions {
			t.Fatalf("round %d: evictions stalled at %d under pressure", round, st.Evictions)
		}
		prevEvictions = st.Evictions
	}
}

func TestLRUKeepsRecentlyUsed(t *testing.T) {
	// One shard (capacity ≤ numShards rounds to 1 per shard); use keys
	// that land in the same shard by brute-force search.
	c := New[int](numShards * 2) // 2 entries per shard
	shardOf := func(k string) uint64 { return shardIndex(k) % numShards }
	var same []string
	for i := 0; len(same) < 3; i++ {
		k := fmt.Sprintf("probe-%d", i)
		if shardOf(k) == 0 {
			same = append(same, k)
		}
	}
	a, b, d := same[0], same[1], same[2]
	c.Do(a, func() int { return 1 })
	c.Do(b, func() int { return 2 })
	c.Do(a, func() int { return 0 }) // touch a: b becomes LRU
	c.Do(d, func() int { return 3 }) // evicts b
	if _, hit := c.Do(a, func() int { return -1 }); !hit {
		t.Fatal("recently used entry evicted")
	}
	if _, hit := c.Do(b, func() int { return -2 }); hit {
		t.Fatal("least recently used entry survived")
	}
}

func TestSingleflightDedup(t *testing.T) {
	c := New[int](8)
	var computes atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once

	const waiters = 8
	var wg sync.WaitGroup
	results := make([]int, waiters)
	hits := make([]bool, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], hits[i] = c.Do("shared", func() int {
				computes.Add(1)
				once.Do(func() { close(started) })
				<-release
				return 7
			})
		}(i)
	}
	<-started
	// Wait until every non-leader is blocked on the in-flight call, then
	// release the leader.
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Waits < waiters-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d waiters after 5s", c.Stats().Waits)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times under singleflight", got)
	}
	nHits := 0
	for i := range results {
		if results[i] != 7 {
			t.Fatalf("goroutine %d got %d", i, results[i])
		}
		if hits[i] {
			nHits++
		}
	}
	if nHits != waiters-1 {
		t.Fatalf("%d hits for %d waiters", nHits, waiters)
	}
}

func TestPanickingComputeDoesNotPoison(t *testing.T) {
	c := New[int](8)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic swallowed")
			}
		}()
		c.Do("k", func() int { panic("boom") })
	}()
	// The failed computation must not be cached and must not deadlock
	// later callers.
	v, hit := c.Do("k", func() int { return 5 })
	if hit || v != 5 {
		t.Fatalf("after panic: v=%d hit=%v", v, hit)
	}
}

func TestWaiterRetriesAfterLeaderPanic(t *testing.T) {
	c := New[int](8)
	entered := make(chan struct{})
	proceed := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // leader: panics after the waiter has queued up
		defer wg.Done()
		defer func() { recover() }()
		c.Do("k", func() int {
			close(entered)
			<-proceed
			panic("leader dies")
		})
	}()

	<-entered
	var v int
	var hit bool
	wg.Add(1)
	go func() { // waiter
		defer wg.Done()
		v, hit = c.Do("k", func() int { return 9 })
	}()
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Waits < 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never blocked")
		}
		time.Sleep(time.Millisecond)
	}
	close(proceed)
	wg.Wait()
	if v != 9 || hit {
		t.Fatalf("waiter after leader panic: v=%d hit=%v (want recomputed miss)", v, hit)
	}
}

// TestConcurrentHammer drives many goroutines over an overlapping
// keyspace with evictions in play; run with -race this exercises every
// lock path. Values are derived from keys so any cross-key confusion is
// detected.
func TestConcurrentHammer(t *testing.T) {
	c := New[int](24) // small: forces constant eviction
	const goroutines = 8
	const opsPerG = 2000
	const keys = 64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for op := 0; op < opsPerG; op++ {
				k := rng.Intn(keys)
				key := fmt.Sprintf("key-%d", k)
				v, _ := c.Do(key, func() int { return k * 3 })
				if v != k*3 {
					t.Errorf("key %d returned %d", k, v)
					return
				}
				if op%128 == 0 {
					c.Len()
					c.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses != goroutines*opsPerG {
		t.Fatalf("hits %d + misses %d != %d ops", st.Hits, st.Misses, goroutines*opsPerG)
	}
}

func TestTinyAndZeroCapacity(t *testing.T) {
	for _, capacity := range []int{-5, 0, 1} {
		c := New[int](capacity)
		for i := 0; i < 50; i++ {
			key := fmt.Sprintf("k%d", i)
			if v, _ := c.Do(key, func() int { return i }); v != i {
				t.Fatalf("cap %d: key %s got %d", capacity, key, v)
			}
		}
		if c.Len() > numShards {
			t.Fatalf("cap %d: len %d exceeds one entry per shard", capacity, c.Len())
		}
	}
}
