// Package exact provides exponential-time exact solvers ("oracles") for
// every problem variant in the repository. They exist to validate the
// polynomial algorithms on small instances and to measure true
// approximation ratios in the experiment harness; they are deliberately
// simple and deliberately slow.
//
// All oracles reduce the search space with two normalizations proved in
// the paper (and re-verified here by the ultra-brute solvers in
// ultrabrute.go, which apply no normalization at all):
//
//   - staircase form (Lemma 1/2): at every time the busy/active
//     processors form a prefix, so only the occupancy profile matters;
//   - EDF-prefix form: among the jobs available at a time, running those
//     with earliest deadlines is without loss of generality.
package exact

import (
	"fmt"
	"sort"

	"repro/internal/sched"
)

// MaxOracleJobs bounds the instance size accepted by the bitmask oracles.
const MaxOracleJobs = 20

// Infeasible is returned (as ok=false) when an instance admits no
// feasible schedule.

type gapKey struct {
	mask  uint32
	lprev int8
}

// SpansOneInterval computes the minimum total number of spans (wake-ups)
// of a feasible schedule for the one-interval p-processor instance, by
// dynamic programming over occupancy profiles. ok is false when the
// instance is infeasible.
func SpansOneInterval(in sched.Instance) (spans int, ok bool) {
	n := len(in.Jobs)
	if n == 0 {
		return 0, true
	}
	if n > MaxOracleJobs {
		panic(fmt.Sprintf("exact: %d jobs exceeds oracle limit %d", n, MaxOracleJobs))
	}
	lo, hi := in.TimeHorizon()
	byDeadline := in.SortedByDeadline()

	const inf = int(^uint(0) >> 1)
	cur := map[gapKey]int{{mask: 0, lprev: 0}: 0}
	full := uint32(1)<<uint(n) - 1

	for t := lo; t <= hi; t++ {
		next := make(map[gapKey]int, len(cur))
		for key, cost := range cur {
			// Available jobs in deadline order.
			var avail []int
			for _, j := range byDeadline {
				if key.mask&(1<<uint(j)) != 0 {
					continue
				}
				if in.Jobs[j].Release <= t && t <= in.Jobs[j].Deadline {
					avail = append(avail, j)
				}
			}
			maxRun := len(avail)
			if maxRun > in.Procs {
				maxRun = in.Procs
			}
			for run := 0; run <= maxRun; run++ {
				mask := key.mask
				for i := 0; i < run; i++ {
					mask |= 1 << uint(avail[i])
				}
				added := 0
				if run > int(key.lprev) {
					added = run - int(key.lprev)
				}
				nk := gapKey{mask: mask, lprev: int8(run)}
				if c, seen := next[nk]; !seen || cost+added < c {
					next[nk] = cost + added
				}
			}
		}
		cur = next
	}
	best, found := inf, false
	for key, cost := range cur {
		if key.mask == full && cost < best {
			best, found = cost, true
		}
	}
	return best, found
}

type powerKey struct {
	mask  uint32
	aprev int8
}

// PowerOneInterval computes the minimum power consumption (active units
// plus alpha per sleep→active transition, idle-active permitted) of a
// feasible schedule for the one-interval p-processor instance.
func PowerOneInterval(in sched.Instance, alpha float64) (power float64, ok bool) {
	n := len(in.Jobs)
	if n == 0 {
		return 0, true
	}
	if n > MaxOracleJobs {
		panic(fmt.Sprintf("exact: %d jobs exceeds oracle limit %d", n, MaxOracleJobs))
	}
	lo, hi := in.TimeHorizon()
	byDeadline := in.SortedByDeadline()
	cur := map[powerKey]float64{{mask: 0, aprev: 0}: 0}
	full := uint32(1)<<uint(n) - 1

	for t := lo; t <= hi; t++ {
		next := make(map[powerKey]float64, len(cur))
		for key, cost := range cur {
			var avail []int
			for _, j := range byDeadline {
				if key.mask&(1<<uint(j)) != 0 {
					continue
				}
				if in.Jobs[j].Release <= t && t <= in.Jobs[j].Deadline {
					avail = append(avail, j)
				}
			}
			maxRun := len(avail)
			if maxRun > in.Procs {
				maxRun = in.Procs
			}
			for run := 0; run <= maxRun; run++ {
				mask := key.mask
				for i := 0; i < run; i++ {
					mask |= 1 << uint(avail[i])
				}
				// Active level may exceed the number of running jobs
				// (idle-active bridging, Theorem 2).
				for act := run; act <= in.Procs; act++ {
					added := float64(act)
					if act > int(key.aprev) {
						added += alpha * float64(act-int(key.aprev))
					}
					nk := powerKey{mask: mask, aprev: int8(act)}
					if c, seen := next[nk]; !seen || cost+added < c {
						next[nk] = cost + added
					}
				}
			}
		}
		cur = next
	}
	best, found := 0.0, false
	for key, cost := range cur {
		if key.mask == full && (!found || cost < best) {
			best, found = cost, true
		}
	}
	return best, found
}

// multiTimes returns the sorted distinct allowed times of mi, panicking
// when the instance exceeds oracle limits.
func multiTimes(mi sched.MultiInstance) []int {
	if mi.N() > MaxOracleJobs {
		panic(fmt.Sprintf("exact: %d jobs exceeds oracle limit %d", mi.N(), MaxOracleJobs))
	}
	return mi.AllTimes()
}

type multiKey struct {
	mask uint32
	busy bool // busy at the previously processed time
}

// SpansMulti computes the minimum number of spans of a feasible schedule
// for the single-machine multi-interval instance.
func SpansMulti(mi sched.MultiInstance) (spans int, ok bool) {
	n := mi.N()
	if n == 0 {
		return 0, true
	}
	times := multiTimes(mi)
	full := uint32(1)<<uint(n) - 1
	cur := map[multiKey]int{{mask: 0, busy: false}: 0}
	for ti, t := range times {
		adjacent := ti > 0 && times[ti-1] == t-1
		next := make(map[multiKey]int, len(cur)*2)
		relax := func(k multiKey, c int) {
			if old, seen := next[k]; !seen || c < old {
				next[k] = c
			}
		}
		for key, cost := range cur {
			prevBusy := key.busy && adjacent
			// Idle at t.
			relax(multiKey{mask: key.mask, busy: false}, cost)
			// Schedule one available job at t.
			for j := 0; j < n; j++ {
				if key.mask&(1<<uint(j)) != 0 || !mi.Jobs[j].Contains(t) {
					continue
				}
				added := 0
				if !prevBusy {
					added = 1
				}
				relax(multiKey{mask: key.mask | 1<<uint(j), busy: true}, cost+added)
			}
		}
		cur = next
	}
	const inf = int(^uint(0) >> 1)
	best, found := inf, false
	for key, cost := range cur {
		if key.mask == full && cost < best {
			best, found = cost, true
		}
	}
	return best, found
}

type multiPowerKey struct {
	mask     uint32
	lastBusy int32 // last busy time, or minInt32 when never busy
}

const neverBusy = int32(-1 << 31)

// PowerMulti computes the minimum power consumption of a feasible
// schedule for the single-machine multi-interval instance under
// transition cost alpha with optimal gap bridging.
func PowerMulti(mi sched.MultiInstance, alpha float64) (power float64, ok bool) {
	n := mi.N()
	if n == 0 {
		return 0, true
	}
	times := multiTimes(mi)
	full := uint32(1)<<uint(n) - 1
	cur := map[multiPowerKey]float64{{mask: 0, lastBusy: neverBusy}: 0}
	for _, t := range times {
		next := make(map[multiPowerKey]float64, len(cur)*2)
		relax := func(k multiPowerKey, c float64) {
			if old, seen := next[k]; !seen || c < old {
				next[k] = c
			}
		}
		for key, cost := range cur {
			// Idle at t.
			relax(key, cost)
			for j := 0; j < n; j++ {
				if key.mask&(1<<uint(j)) != 0 || !mi.Jobs[j].Contains(t) {
					continue
				}
				added := 1.0 // execution unit
				switch {
				case key.lastBusy == neverBusy:
					added += alpha // initial wake-up
				case int(key.lastBusy) < t-1:
					gap := float64(t - int(key.lastBusy) - 1)
					if gap > alpha {
						gap = alpha
					}
					added += gap // bridge or sleep+wake, whichever is cheaper
				}
				relax(multiPowerKey{mask: key.mask | 1<<uint(j), lastBusy: int32(t)}, cost+added)
			}
		}
		cur = next
	}
	best, found := 0.0, false
	for key, cost := range cur {
		if key.mask == full && (!found || cost < best) {
			best, found = cost, true
		}
	}
	return best, found
}

type restartKey struct {
	mask  uint32
	busy  bool
	spans int8
}

// MaxThroughput computes the maximum number of jobs of the multi-interval
// instance schedulable with at most maxSpans spans (equivalently at most
// maxSpans−1 gaps / restarts), the objective of Theorem 11.
func MaxThroughput(mi sched.MultiInstance, maxSpans int) int {
	n := mi.N()
	if n == 0 || maxSpans <= 0 {
		return 0
	}
	times := multiTimes(mi)
	cur := map[restartKey]struct{}{{mask: 0, busy: false, spans: 0}: {}}
	for ti, t := range times {
		adjacent := ti > 0 && times[ti-1] == t-1
		next := make(map[restartKey]struct{}, len(cur)*2)
		for key := range cur {
			prevBusy := key.busy && adjacent
			next[restartKey{mask: key.mask, busy: false, spans: key.spans}] = struct{}{}
			for j := 0; j < n; j++ {
				if key.mask&(1<<uint(j)) != 0 || !mi.Jobs[j].Contains(t) {
					continue
				}
				spans := key.spans
				if !prevBusy {
					spans++
				}
				if int(spans) > maxSpans {
					continue
				}
				next[restartKey{mask: key.mask | 1<<uint(j), busy: true, spans: spans}] = struct{}{}
			}
		}
		cur = next
	}
	best := 0
	for key := range cur {
		if c := popcount(uint32(key.mask)); c > best {
			best = c
		}
	}
	return best
}

func popcount(x uint32) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}

// SortTimes is a small helper exposed for tests: returns sorted copy.
func SortTimes(ts []int) []int {
	out := append([]int(nil), ts...)
	sort.Ints(out)
	return out
}
