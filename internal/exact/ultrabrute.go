package exact

import (
	"fmt"

	"repro/internal/sched"
)

// MaxUltraBruteJobs bounds the instance size accepted by the
// normalization-free solvers.
const MaxUltraBruteJobs = 7

// UltraBruteSpans enumerates every feasible assignment of jobs to
// (processor, time) slots — with no staircase or EDF normalization — and
// returns the minimum total span count. It exists solely to certify that
// the normalizations used by the fast oracles and the dynamic programs
// are loss-free.
func UltraBruteSpans(in sched.Instance) (spans int, ok bool) {
	n := len(in.Jobs)
	if n == 0 {
		return 0, true
	}
	if n > MaxUltraBruteJobs {
		panic(fmt.Sprintf("exact: %d jobs exceeds ultra-brute limit %d", n, MaxUltraBruteJobs))
	}
	slots := make([]sched.Assignment, n)
	used := make(map[sched.Assignment]bool, n)
	const inf = int(^uint(0) >> 1)
	best := inf

	var rec func(i int)
	rec = func(i int) {
		if i == n {
			s := sched.Schedule{Procs: in.Procs, Slots: append([]sched.Assignment(nil), slots...)}
			if sp := s.Spans(); sp < best {
				best = sp
			}
			return
		}
		j := in.Jobs[i]
		for t := j.Release; t <= j.Deadline; t++ {
			for q := 0; q < in.Procs; q++ {
				a := sched.Assignment{Proc: q, Time: t}
				if used[a] {
					continue
				}
				used[a] = true
				slots[i] = a
				rec(i + 1)
				delete(used, a)
			}
		}
	}
	rec(0)
	if best == inf {
		return 0, false
	}
	return best, true
}

// UltraBrutePower enumerates every feasible assignment and returns the
// minimum power consumption, with each processor bridging each of its
// gaps optimally (min(len, α)); no staircase normalization is applied.
func UltraBrutePower(in sched.Instance, alpha float64) (power float64, ok bool) {
	n := len(in.Jobs)
	if n == 0 {
		return 0, true
	}
	if n > MaxUltraBruteJobs {
		panic(fmt.Sprintf("exact: %d jobs exceeds ultra-brute limit %d", n, MaxUltraBruteJobs))
	}
	slots := make([]sched.Assignment, n)
	used := make(map[sched.Assignment]bool, n)
	best, found := 0.0, false

	var rec func(i int)
	rec = func(i int) {
		if i == n {
			s := sched.Schedule{Procs: in.Procs, Slots: append([]sched.Assignment(nil), slots...)}
			if p := s.PowerCost(alpha); !found || p < best {
				best, found = p, true
			}
			return
		}
		j := in.Jobs[i]
		for t := j.Release; t <= j.Deadline; t++ {
			for q := 0; q < in.Procs; q++ {
				a := sched.Assignment{Proc: q, Time: t}
				if used[a] {
					continue
				}
				used[a] = true
				slots[i] = a
				rec(i + 1)
				delete(used, a)
			}
		}
	}
	rec(0)
	return best, found
}

// UltraBruteMultiSpans enumerates every injective assignment of
// multi-interval jobs to allowed times and returns the minimum span
// count.
func UltraBruteMultiSpans(mi sched.MultiInstance) (spans int, ok bool) {
	n := mi.N()
	if n == 0 {
		return 0, true
	}
	if n > MaxUltraBruteJobs {
		panic(fmt.Sprintf("exact: %d jobs exceeds ultra-brute limit %d", n, MaxUltraBruteJobs))
	}
	times := make([]int, n)
	used := make(map[int]bool, n)
	const inf = int(^uint(0) >> 1)
	best := inf

	var rec func(i int)
	rec = func(i int) {
		if i == n {
			ms := sched.MultiSchedule{Times: append([]int(nil), times...)}
			if sp := ms.Spans(); sp < best {
				best = sp
			}
			return
		}
		for _, t := range mi.Jobs[i].Times() {
			if used[t] {
				continue
			}
			used[t] = true
			times[i] = t
			rec(i + 1)
			delete(used, t)
		}
	}
	rec(0)
	if best == inf {
		return 0, false
	}
	return best, true
}
