package exact

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sched"
	"repro/internal/workload"
)

func TestSpansOneIntervalKnown(t *testing.T) {
	cases := []struct {
		name  string
		jobs  []sched.Job
		p     int
		spans int
		ok    bool
	}{
		{"empty", nil, 1, 0, true},
		{"single", []sched.Job{{Release: 0, Deadline: 3}}, 1, 1, true},
		{"chain", []sched.Job{{Release: 0, Deadline: 0}, {Release: 1, Deadline: 1}, {Release: 2, Deadline: 2}}, 1, 1, true},
		{"forced split", []sched.Job{{Release: 0, Deadline: 0}, {Release: 5, Deadline: 5}}, 1, 2, true},
		{"stack on 2 procs", []sched.Job{{Release: 0, Deadline: 0}, {Release: 0, Deadline: 0}}, 2, 2, true},
		{"infeasible", []sched.Job{{Release: 0, Deadline: 0}, {Release: 0, Deadline: 0}}, 1, 0, false},
		{"mergeable window", []sched.Job{{Release: 0, Deadline: 4}, {Release: 0, Deadline: 4}, {Release: 0, Deadline: 4}}, 1, 1, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			in := sched.Instance{Jobs: c.jobs, Procs: c.p}
			got, ok := SpansOneInterval(in)
			if ok != c.ok {
				t.Fatalf("ok = %v, want %v", ok, c.ok)
			}
			if ok && got != c.spans {
				t.Fatalf("spans = %d, want %d", got, c.spans)
			}
		})
	}
}

func TestPowerOneIntervalKnown(t *testing.T) {
	// Two jobs with a gap of 3: bridging costs 3, sleeping costs α.
	in := sched.NewInstance([]sched.Job{{Release: 0, Deadline: 0}, {Release: 4, Deadline: 4}})
	if got, ok := PowerOneInterval(in, 10); !ok || got != 2+10+3 {
		t.Fatalf("bridge case: %v %v", got, ok)
	}
	if got, ok := PowerOneInterval(in, 1); !ok || got != 2+1+1 {
		t.Fatalf("sleep case: %v %v", got, ok)
	}
	if got, ok := PowerOneInterval(in, 3); !ok || got != 2+3+3 {
		t.Fatalf("tie case: %v %v", got, ok)
	}
}

func TestSpansMultiKnown(t *testing.T) {
	mi := sched.MultiInstance{Jobs: []sched.MultiJob{
		sched.MultiJobFromTimes(0, 5),
		sched.MultiJobFromTimes(1, 6),
	}}
	// {0,1} or {5,6} are contiguous: 1 span.
	if got, ok := SpansMulti(mi); !ok || got != 1 {
		t.Fatalf("spans = %d ok=%v, want 1", got, ok)
	}
	bad := sched.MultiInstance{Jobs: []sched.MultiJob{
		sched.MultiJobFromTimes(0),
		sched.MultiJobFromTimes(0),
	}}
	if _, ok := SpansMulti(bad); ok {
		t.Fatal("infeasible accepted")
	}
}

func TestPowerMultiMatchesSpansForHugeAlpha(t *testing.T) {
	// With enormous α and short horizons every gap is bridged, so
	// power = busy + α·1... unless the instance forces isolation beyond
	// bridging reach — here windows are close, so one wake suffices.
	mi := sched.MultiInstance{Jobs: []sched.MultiJob{
		sched.MultiJobFromTimes(0, 1),
		sched.MultiJobFromTimes(3, 4),
	}}
	got, ok := PowerMulti(mi, 1000)
	if !ok {
		t.Fatal("infeasible")
	}
	// Best: times {1,3}: 2 busy + 1000 + bridge 1 = 1003.
	if got != 1003 {
		t.Fatalf("power = %v, want 1003", got)
	}
}

func TestMaxThroughputMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mi := workload.MultiInterval(r, 1+r.Intn(7), 1+r.Intn(3), 1+r.Intn(2), 10)
		prev := 0
		for budget := 0; budget <= 4; budget++ {
			cur := MaxThroughput(mi, budget)
			if cur < prev || cur > mi.N() {
				return false
			}
			prev = cur
		}
		// With n spans allowed, a feasible instance schedules all jobs.
		full := MaxThroughput(mi, mi.N())
		if _, ok := SpansMulti(mi); ok && full != mi.N() {
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestOracleConsistencyAcrossModels: spans and power oracles agree on
// the sleep-only relationship when bridging cannot help (alpha = 0
// makes transitions free: power = n; and for instances with no gaps
// shorter than alpha, power = n + alpha·spans).
func TestOracleConsistencyAcrossModels(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 60; trial++ {
		in := workload.OneInterval(rng, 1+rng.Intn(6), 8, 3)
		spans, ok1 := SpansOneInterval(in)
		powerFree, ok2 := PowerOneInterval(in, 0)
		if ok1 != ok2 {
			t.Fatalf("trial %d: feasibility disagreement", trial)
		}
		if !ok1 {
			continue
		}
		if powerFree != float64(len(in.Jobs)) {
			t.Fatalf("trial %d: α=0 power %v, want n=%d", trial, powerFree, len(in.Jobs))
		}
		// α = 1: bridging a gap of length ≥ 1 costs ≥ 1 = α, so power
		// n + spans is always achievable and optimal.
		powerOne, _ := PowerOneInterval(in, 1)
		if want := float64(len(in.Jobs) + spans); math.Abs(powerOne-want) > 1e-9 {
			t.Fatalf("trial %d: α=1 power %v, want n+spans=%v", trial, powerOne, want)
		}
	}
}

func TestUltraBruteLimits(t *testing.T) {
	big := sched.NewInstance(make([]sched.Job, MaxUltraBruteJobs+1))
	for i := range big.Jobs {
		big.Jobs[i] = sched.Job{Release: i, Deadline: i}
	}
	assertPanics(t, func() { UltraBruteSpans(big) })
	assertPanics(t, func() { UltraBrutePower(big, 1) })
	huge := sched.Instance{Jobs: make([]sched.Job, MaxOracleJobs+1), Procs: 1}
	for i := range huge.Jobs {
		huge.Jobs[i] = sched.Job{Release: i, Deadline: i}
	}
	assertPanics(t, func() { SpansOneInterval(huge) })
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
