// Package multiinterval implements the paper's §3: the polynomial-time
// (1 + (2/3 + ε)α)-approximation for multi-interval power minimization
// (Theorem 3), built from Lemmas 3–5:
//
//   - Lemma 4: for any feasible schedule with M spans and any k > 1,
//     some shift class i has at least (n − M(k−1))/k anchors t ≡ i
//     (mod k) whose whole run t..t+k−1 is busy.
//   - Lemma 5: those runs form a (k+1)-set-packing instance (k jobs plus
//     the anchor time per set); a packing of A runs schedules k·A jobs in
//     at most A+1 spans.
//   - Lemma 3: a feasible partial schedule extends to all n jobs via
//     augmenting paths, adding at most one span per added job.
//
// The headline bound uses k = 2. The pipeline never assumes the packing
// subroutine achieved its worst-case guarantee — it just schedules
// whatever was packed and extends; the experiment harness measures the
// resulting true ratios against the exact oracle.
package multiinterval

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/feas"
	"repro/internal/sched"
	"repro/internal/setpacking"
)

// ErrInfeasible is returned when the instance admits no feasible
// schedule.
var ErrInfeasible = errors.New("multiinterval: instance is infeasible")

// Options configures the Theorem 3 pipeline.
type Options struct {
	// K is the run length of Lemma 5 (the paper's k); the headline bound
	// uses 2. 0 defaults to 2. Supported: 2 or 3.
	K int
	// SearchDepth is the local-search exchange depth for set packing
	// (see internal/setpacking). 0 defaults to 1.
	SearchDepth int
}

func (o Options) withDefaults() (Options, error) {
	if o.K == 0 {
		o.K = 2
	}
	if o.K < 2 || o.K > 3 {
		return o, fmt.Errorf("multiinterval: unsupported run length k=%d (want 2 or 3)", o.K)
	}
	if o.SearchDepth == 0 {
		o.SearchDepth = 1
	}
	return o, nil
}

// Stats reports what the pipeline did, for the experiment harness.
type Stats struct {
	// Shift is the chosen residue class i ∈ [0, K).
	Shift int
	// PackedRuns and PackedJobs count the set-packing phase output.
	PackedRuns, PackedJobs int
	// Spans and Power describe the final schedule.
	Spans int
	Power float64
}

// ApproxPower runs the Theorem 3 pipeline and returns a feasible
// schedule for all jobs together with pipeline statistics.
func ApproxPower(mi sched.MultiInstance, alpha float64, opts Options) (sched.MultiSchedule, Stats, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return sched.MultiSchedule{}, Stats{}, err
	}
	if err := mi.Validate(); err != nil {
		return sched.MultiSchedule{}, Stats{}, err
	}
	if alpha < 0 {
		return sched.MultiSchedule{}, Stats{}, errors.New("multiinterval: negative alpha")
	}
	if mi.N() == 0 {
		return sched.MultiSchedule{}, Stats{}, nil
	}
	if !feas.FeasibleMulti(mi) {
		return sched.MultiSchedule{}, Stats{}, ErrInfeasible
	}

	k := opts.K
	bestShift, bestPartial := 0, map[int]int(nil)
	for shift := 0; shift < k; shift++ {
		packInst, runs := buildPackingInstance(mi, k, shift)
		chosen := setpacking.LocalSearch(packInst, opts.SearchDepth)
		partial := make(map[int]int, len(chosen)*k)
		for _, ci := range chosen {
			run := runs[ci]
			for l, job := range run.jobs {
				partial[job] = run.anchor + l
			}
		}
		if bestPartial == nil || len(partial) > len(bestPartial) {
			bestShift, bestPartial = shift, partial
		}
	}

	full, ok := feas.ExtendSchedule(mi, bestPartial)
	if !ok {
		// Cannot happen for a feasible instance; defensive.
		return sched.MultiSchedule{}, Stats{}, ErrInfeasible
	}
	st := Stats{
		Shift:      bestShift,
		PackedRuns: len(bestPartial) / k,
		PackedJobs: len(bestPartial),
		Spans:      full.Spans(),
		Power:      full.PowerCost(alpha),
	}
	return full, st, nil
}

// run is one candidate set of the Lemma 5 packing instance: k distinct
// jobs executable consecutively from the anchor time.
type run struct {
	anchor int
	jobs   []int
}

// buildPackingInstance constructs the (k+1)-set-packing instance for one
// shift class: universe = n job elements plus one element per anchor
// time ≡ shift (mod k); each candidate set is {jobs of a run} ∪ {anchor}.
func buildPackingInstance(mi sched.MultiInstance, k, shift int) (setpacking.Instance, []run) {
	n := mi.N()
	canRunAt := make(map[int][]int) // time → jobs executable there
	for j, job := range mi.Jobs {
		for _, t := range job.Times() {
			canRunAt[t] = append(canRunAt[t], j)
		}
	}
	anchorID := make(map[int]int)
	var sets [][]int
	var runs []run
	mod := func(x, m int) int { return ((x % m) + m) % m }
	// Iterate anchors in sorted time order so the construction (and the
	// downstream greedy's tie-breaking) is deterministic.
	anchors := make([]int, 0, len(canRunAt))
	for t := range canRunAt {
		if mod(t, k) == shift {
			anchors = append(anchors, t)
		}
	}
	sort.Ints(anchors)
	for _, t := range anchors {
		// Enumerate k distinct jobs a_0..a_{k−1} with a_l runnable at t+l.
		var emit func(l int, picked []int)
		emit = func(l int, picked []int) {
			if l == k {
				id, ok := anchorID[t]
				if !ok {
					id = n + len(anchorID)
					anchorID[t] = id
				}
				set := append(append([]int{}, picked...), id)
				sets = append(sets, set)
				runs = append(runs, run{anchor: t, jobs: append([]int{}, picked...)})
				return
			}
			for _, j := range canRunAt[t+l] {
				dup := false
				for _, q := range picked {
					if q == j {
						dup = true
						break
					}
				}
				if !dup {
					emit(l+1, append(picked, j))
				}
			}
		}
		emit(0, nil)
	}
	return setpacking.Instance{Universe: n + len(anchorID), Sets: sets}, runs
}

// NaiveSchedule returns an arbitrary feasible schedule via maximum
// matching: the trivial (1+α)-approximation of §3 ("every schedule is
// within a 1+α factor of optimal").
func NaiveSchedule(mi sched.MultiInstance) (sched.MultiSchedule, error) {
	ms, ok := feas.SolveMulti(mi)
	if !ok {
		return sched.MultiSchedule{}, ErrInfeasible
	}
	return ms, nil
}

// Bound returns the proven approximation factor 1 + (2/3 + eps)·α of
// Theorem 3 for run length k = 2, or 1 + (k−1)·(... ) in the general
// parameterization; only k = 2 and k = 3 are exposed.
func Bound(k int, eps, alpha float64) float64 {
	switch k {
	case 2:
		return 1 + (2.0/3.0+eps)*alpha
	case 3:
		// From Corollary 1 with k = 3: spans ≤ n − (n−2M)/3·(1/2−ε)
		// giving factor 1 + (5/6 + ε)·α; looser than k = 2.
		return 1 + (5.0/6.0+eps)*alpha
	default:
		return 1 + alpha
	}
}

// ShiftCover computes, for a set of busy times ts and run length k, the
// shift class i maximizing |L_{S,k,i}| = #{t ≡ i (mod k) : t..t+k−1 all
// busy}, returning the best shift and its count (Lemma 4's quantity).
func ShiftCover(ts []int, k int) (bestShift, count int) {
	busy := make(map[int]bool, len(ts))
	for _, t := range ts {
		busy[t] = true
	}
	mod := func(x, m int) int { return ((x % m) + m) % m }
	counts := make([]int, k)
	for t := range busy {
		full := true
		for l := 0; l < k; l++ {
			if !busy[t+l] {
				full = false
				break
			}
		}
		if full {
			counts[mod(t, k)]++
		}
	}
	for i, c := range counts {
		if c > counts[bestShift] {
			bestShift = i
		}
		_ = c
	}
	return bestShift, counts[bestShift]
}
