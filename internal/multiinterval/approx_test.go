package multiinterval

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/exact"
	"repro/internal/sched"
	"repro/internal/workload"
)

func TestApproxPowerFeasibleAndValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 120; trial++ {
		mi := workload.FeasibleMultiInterval(rng, 2+rng.Intn(10), 1+rng.Intn(3), 1+rng.Intn(3), 16)
		ms, st, err := ApproxPower(mi, 2.0, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := ms.Validate(mi); err != nil {
			t.Fatalf("trial %d: invalid schedule: %v", trial, err)
		}
		if st.Spans != ms.Spans() {
			t.Fatalf("trial %d: stats spans %d, schedule %d", trial, st.Spans, ms.Spans())
		}
	}
}

func TestApproxPowerInfeasible(t *testing.T) {
	mi := sched.MultiInstance{Jobs: []sched.MultiJob{
		sched.MultiJobFromTimes(0),
		sched.MultiJobFromTimes(0),
	}}
	if _, _, err := ApproxPower(mi, 1, Options{}); err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

// TestApproxPowerWithinBound: the measured ratio against the exact
// optimum must respect the Theorem 3 guarantee 1 + (2/3 + ε)α (we allow
// ε = 1/3 slack, i.e. 1 + α, for the bounded-depth packing search, and
// additionally record that ratios are far below it in practice — the
// harness reports the distribution).
func TestApproxPowerWithinBound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	alphas := []float64{0.25, 0.5, 1, 2, 4, 8}
	for trial := 0; trial < 120; trial++ {
		alpha := alphas[trial%len(alphas)]
		mi := workload.FeasibleMultiInterval(rng, 2+rng.Intn(8), 1+rng.Intn(3), 1+rng.Intn(2), 12)
		ms, _, err := ApproxPower(mi, alpha, Options{SearchDepth: 2})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		opt, feasible := exact.PowerMulti(mi, alpha)
		if !feasible {
			t.Fatalf("trial %d: oracle infeasible after feasibility check", trial)
		}
		got := ms.PowerCost(alpha)
		bound := (1 + alpha) * opt // every-schedule bound, never violable
		if got > bound+1e-9 {
			t.Fatalf("trial %d: power %v above trivial bound %v (α=%v)", trial, got, bound, alpha)
		}
		if got < opt-1e-9 {
			t.Fatalf("trial %d: power %v beats the optimum %v — accounting bug", trial, got, opt)
		}
	}
}

// TestLemma4ShiftBound is the Lemma 4 property test: for any schedule S
// with n jobs in M spans and any k ∈ {2, 3}, the best shift class i has
// |L_{S,k,i}| ≥ (n − M(k−1))/k.
func TestLemma4ShiftBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Random busy-time set.
		busy := map[int]bool{}
		for i := 0; i < 1+r.Intn(20); i++ {
			busy[r.Intn(30)] = true
		}
		var ts []int
		for t := range busy {
			ts = append(ts, t)
		}
		n := len(ts)
		m := sched.SpansOfTimes(ts)
		for _, k := range []int{2, 3} {
			_, count := ShiftCover(ts, k)
			lower := float64(n-m*(k-1)) / float64(k)
			if float64(count) < lower-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestNaiveScheduleIsFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 60; trial++ {
		mi := workload.FeasibleMultiInterval(rng, 2+rng.Intn(8), 1+rng.Intn(3), 1+rng.Intn(2), 12)
		ms, err := NaiveSchedule(mi)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := ms.Validate(mi); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestPipelineSpanComposition asserts the theorem-backed composition
// bound: packing A runs schedules k·A jobs in at most A+1 spans
// (Lemma 5) and extension adds at most one span per remaining job
// (Lemma 3), so the final schedule has at most A + 1 + (n − kA) spans.
func TestPipelineSpanComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 80; trial++ {
		mi := workload.FeasibleMultiInterval(rng, 2+rng.Intn(10), 1+rng.Intn(3), 1+rng.Intn(3), 16)
		ms, st, err := ApproxPower(mi, 1, Options{SearchDepth: 2})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		bound := st.PackedRuns + 1 + (mi.N() - st.PackedJobs)
		if ms.Spans() > bound {
			t.Fatalf("trial %d: %d spans above composition bound %d (runs %d, packed %d, n %d)",
				trial, ms.Spans(), bound, st.PackedRuns, st.PackedJobs, mi.N())
		}
	}
}

// TestPipelinePacksSharedWindow: on jobs sharing one long window, the
// packing phase must pack every job (n/k runs), yielding a single-block
// schedule within the window.
func TestPipelinePacksSharedWindow(t *testing.T) {
	jobs := make([]sched.MultiJob, 8)
	for i := range jobs {
		jobs[i] = sched.NewMultiJob(
			sched.Interval{Lo: 0, Hi: 15},
			sched.Interval{Lo: 40 + 3*i, Hi: 40 + 3*i},
		)
	}
	mi := sched.MultiInstance{Jobs: jobs}
	ms, st, err := ApproxPower(mi, 4, Options{SearchDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.PackedJobs != 8 {
		t.Fatalf("packed %d of 8 jobs", st.PackedJobs)
	}
	if ms.Spans() > st.PackedRuns {
		t.Fatalf("spans %d exceed run count %d on fully packed instance", ms.Spans(), st.PackedRuns)
	}
}

func TestApproxPowerKIs3(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	mi := workload.FeasibleMultiInterval(rng, 9, 2, 2, 14)
	ms, _, err := ApproxPower(mi, 2, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.Validate(mi); err != nil {
		t.Fatal(err)
	}
}

func TestApproxPowerRejectsBadOptions(t *testing.T) {
	mi := sched.MultiInstance{Jobs: []sched.MultiJob{sched.MultiJobFromTimes(0)}}
	if _, _, err := ApproxPower(mi, 1, Options{K: 7}); err == nil {
		t.Fatal("accepted unsupported k")
	}
	if _, _, err := ApproxPower(mi, -2, Options{}); err == nil {
		t.Fatal("accepted negative alpha")
	}
}

func TestBound(t *testing.T) {
	if b := Bound(2, 0, 3); b != 3 {
		t.Fatalf("Bound(2,0,3) = %v, want 3 (1 + 2/3·3)", b)
	}
	if b := Bound(2, 0, 0); b != 1 {
		t.Fatalf("Bound(2,0,0) = %v, want 1", b)
	}
}

func TestShiftCoverExamples(t *testing.T) {
	// Busy 0..5: for k=2 both shifts have full runs; count = 3 each
	// (t ∈ {0,2,4} for shift 0).
	_, c := ShiftCover([]int{0, 1, 2, 3, 4, 5}, 2)
	if c != 3 {
		t.Fatalf("ShiftCover count = %d, want 3", c)
	}
	// Isolated units have no length-2 runs.
	if _, c := ShiftCover([]int{0, 2, 4}, 2); c != 0 {
		t.Fatalf("isolated units count = %d, want 0", c)
	}
}
