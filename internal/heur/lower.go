package heur

// Certified instance lower bounds. Both bounds rest on two facts:
//
//   - Decomposition exactness (internal/prep): the optimum of an
//     instance is the sum of the optima of its forced-idle fragments —
//     every forced-idle run of width ≥ 1 separates spans, and every run
//     of width ≥ α separates power-optimal solutions — so a per-fragment
//     lower bound sums to an instance lower bound.
//
//   - The density (Hall-type) level bound: jobs whose windows lie
//     inside [s, e] contribute |inside| busy units to the e−s+1 times of
//     [s, e], so some time there has profile level at least
//     m = ⌈|inside| / (e−s+1)⌉. The span objective Σ_u (l_u − l_{u−1})_+
//     telescopes to at least the maximum level, so each fragment needs
//     at least max(1, m) spans; and for power, the active profile
//     dominates the busy profile, so each fragment pays at least its
//     job count in active units plus α·max(1, m) in wake transitions
//     (the fragment starts asleep — bridging into it from a neighbor
//     across a forced-idle run of width ≥ α costs at least α too, which
//     is exactly why the decomposition stays exact).
//
// The density maximum is evaluated over the candidate windows
// {[r_j, d_j] : j a job of the fragment} — a sound restriction of the
// full release×deadline candidate set (any subset of windows yields a
// valid bound) computable in O(n log n) by a Fenwick sweep. E20 and
// FuzzHeuristicQuality measure and certify LowerBound ≤ OPT.

import (
	"sort"

	"repro/internal/prep"
	"repro/internal/sched"
)

// SpanLowerBound returns a certified lower bound on the optimal span
// count (total sleep→active transitions) of the instance: the sum over
// forced-idle fragments of the fragment's density level bound.
func SpanLowerBound(in sched.Instance) int {
	lb := 0
	for _, sub := range prep.ForGaps(in).Subs {
		lb += FragmentSpanLB(sub.Instance)
	}
	return lb
}

// PowerLowerBound returns a certified lower bound on the optimal power
// consumption at transition cost alpha: per power fragment (forced-idle
// runs of width ≥ alpha split), the fragment's job count in active
// units plus alpha per forced wake transition (the density level
// bound).
func PowerLowerBound(in sched.Instance, alpha float64) float64 {
	lb := 0.0
	for _, sub := range prep.ForPower(in, alpha).Subs {
		lb += FragmentPowerLB(sub.Instance, alpha)
	}
	return lb
}

// FragmentSpanLB is the per-fragment span certificate: the density
// level bound, at least 1 for any non-empty fragment. It assumes
// nothing about decomposition — on an instance that still contains
// splittable idle runs it is merely a weaker (but sound) bound than
// SpanLowerBound, which sums it over the fragments.
func FragmentSpanLB(in sched.Instance) int {
	if len(in.Jobs) == 0 {
		return 0
	}
	return max(1, densityLB(in))
}

// FragmentPowerLB is the per-fragment power certificate: the
// fragment's active units plus alpha per forced wake. Like
// FragmentSpanLB, it is sound on any instance and tight on a single
// power fragment.
func FragmentPowerLB(in sched.Instance, alpha float64) float64 {
	if len(in.Jobs) == 0 {
		return 0
	}
	return float64(len(in.Jobs)) + alpha*float64(max(1, densityLB(in)))
}

// SubSpanLB restricts the span bound to one DP subproblem of the exact
// engine: k own unit jobs inside [t1, t2] with own boundary levels l1
// (at t1) and l2 (at t2) and c2 context jobs stacked at t2. It is
// admissible for the engine's node cost Σ_{u∈(t1,t2]} (h_u − h_{u−1})_+
// — the span starts charged to the node — because the profile ends at
// height l2+c2 and must peak at ⌈k/width⌉ somewhere in the window (k
// unit jobs over width = t2−t1+1 times), so the positive increments
// after t1 sum to at least the larger target minus the starting level
// l1. A point interval charges nothing to (t1, t2].
func SubSpanLB(k, l1, l2, c2, t1, t2 int) int {
	if t2 <= t1 {
		return 0
	}
	need := l2 + c2
	if k > 0 {
		width := t2 - t1 + 1
		if m := (k + width - 1) / width; m > need {
			need = m
		}
	}
	if need <= l1 {
		return 0
	}
	return need - l1
}

// SubPowerLB is SubSpanLB's analogue for the power engine, whose node
// cost is Σ_{u∈(t1,t2]} A_u + α·(A_u − A_{u−1})_+ over active profiles
// with A_{t1} = l1 and A_{t2} = l2 (context executes inside l2). Active
// units: t2 itself pays l2, and the own jobs that fit at neither
// boundary — at most l1 execute at t1 (outside this node's sum) and at
// most l2 at t2 — each pay one interior unit. Transitions: the profile
// must rise from l1 to max(l2, ⌈k/width⌉) at α per step.
func SubPowerLB(k, l1, l2, c2, t1, t2 int, alpha float64) float64 {
	if t2 <= t1 {
		return 0
	}
	lb := float64(l2)
	if interior := k - l1 - l2; interior > 0 {
		lb += float64(interior)
	}
	peak := l2
	width := t2 - t1 + 1
	if m := (k + width - 1) / width; m > peak {
		peak = m
	}
	if peak > l1 {
		lb += alpha * float64(peak-l1)
	}
	return lb
}

// densityLB computes max over job windows [r_j, d_j] of
// ⌈|{i : r_i ≥ r_j, d_i ≤ d_j}| / (d_j − r_j + 1)⌉ — the largest
// profile level any schedule of the instance must reach, per the
// density argument above. Jobs are swept in decreasing release order
// with a Fenwick tree over deadline ranks, so each window's contained
// count is one prefix query.
func densityLB(in sched.Instance) int {
	n := len(in.Jobs)
	if n == 0 {
		return 0
	}
	dls := make([]int, n)
	for i, j := range in.Jobs {
		dls[i] = j.Deadline
	}
	sort.Ints(dls)
	dls = dedupe(dls)
	rank := func(d int) int { return sort.SearchInts(dls, d) }

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		return in.Jobs[order[x]].Release > in.Jobs[order[y]].Release
	})

	fen := newFenwick(len(dls))
	best := 0
	for i := 0; i < n; {
		// Insert the whole equal-release group before querying any of
		// its members: "release ≥ r_j" includes ties.
		j := i
		for j < n && in.Jobs[order[j]].Release == in.Jobs[order[i]].Release {
			fen.add(rank(in.Jobs[order[j]].Deadline), 1)
			j++
		}
		for k := i; k < j; k++ {
			jb := in.Jobs[order[k]]
			cnt := fen.prefix(rank(jb.Deadline))
			width := jb.Deadline - jb.Release + 1
			if m := (cnt + width - 1) / width; m > best {
				best = m
			}
		}
		i = j
	}
	return best
}

// fenwick is a classic binary indexed tree over 0-based positions.
type fenwick struct{ tree []int }

func newFenwick(n int) *fenwick { return &fenwick{tree: make([]int, n+1)} }

func (f *fenwick) add(pos, delta int) {
	for i := pos + 1; i < len(f.tree); i += i & -i {
		f.tree[i] += delta
	}
}

// prefix sums positions [0, pos].
func (f *fenwick) prefix(pos int) int {
	s := 0
	for i := pos + 1; i > 0; i -= i & -i {
		s += f.tree[i]
	}
	return s
}
