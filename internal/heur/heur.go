// Package heur is the heuristic solving tier: near-linear feasible
// schedule construction for one-interval p-processor instances, paired
// with certified instance lower bounds so every heuristic answer ships
// with a bounded optimality gap. It serves the instance sizes the exact
// DP tier (internal/core) cannot — the engine's state space grows
// polynomially with high degree, so n in the tens of thousands is out
// of its reach, while the greedy here is O(n log n).
//
// # The constructor
//
// Greedy builds a schedule with the lazy-wakeup rule: stay asleep as
// long as feasibility allows, and once awake, extend the current busy
// span while any pending window allows it.
//
//   - Lazy wake. While idle with remaining job set R (every job of R
//     released at or after the next arrival r), waking at time w and
//     running EDF is feasible iff the instance with releases clamped to
//     w satisfies Hall's condition. Clamping only tightens the
//     constraint anchored at s = w — N(e) ≤ p·(e−w+1) for every
//     deadline e, with N(e) = |{j ∈ R : d_j ≤ e}| — because every
//     constraint anchored later uses original releases and is implied
//     by the instance's own feasibility. The latest safe wake is
//     therefore w* = min_e ⌊(p·(e+1) − N(e))/p⌋, maintained under job
//     completions by a lazy segment tree over deadlines (suffix add,
//     suffix min), O(log n) per scheduled job.
//   - Eager span extension. Once awake, the p (or fewer) pending jobs
//     with earliest deadlines run each time unit, and newly released
//     jobs join the pending set — the busy span keeps absorbing work
//     until nothing is pending, so flexible jobs ride along with forced
//     wake-ups instead of forcing their own.
//   - Sleep or bridge. When the pending set drains the machine sleeps
//     again; whether a processor should instead stay active through the
//     gap (worth it exactly when the gap is shorter than the transition
//     cost α) is a costing question, not a placement one, and the
//     schedule accounting (sched.Schedule.PowerCost) already bridges
//     optimally — so one constructed schedule serves both objectives.
//
// The lazy-wake rule makes Greedy a feasibility oracle: on a feasible
// instance every awake phase runs EDF on a Hall-feasible clamped
// sub-instance and meets all deadlines, and on an infeasible instance
// no schedule exists, so the greedy's own deadline miss (or a wake
// bound behind the next arrival) is a correct ErrInfeasible verdict.
// FuzzHeuristicQuality cross-checks the verdict against the exact tier.
//
// # The certificates
//
// SpanLowerBound and PowerLowerBound (lower.go) are certified lower
// bounds on the optimal cost, so a heuristic Result bounds its own
// optimality gap: LowerBound ≤ OPT ≤ Cost. The facade (gapsched.Solver
// with Mode ModeHeuristic or ModeAuto) threads them through to
// Solution.LowerBound, summing exact fragment costs where fragments
// were solved exactly and these bounds where they were not.
package heur

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/sched"
)

// ErrInfeasible is returned when the instance admits no feasible
// schedule. The facade maps it onto gapsched.ErrInfeasible, so callers
// see one infeasibility error regardless of tier.
var ErrInfeasible = errors.New("heur: instance is infeasible")

// Result is one heuristic solve: a feasible schedule, its cost under
// the requested objective, and a certified lower bound on the optimal
// cost of the same instance, so Cost/LowerBound bounds the optimality
// gap of the answer.
type Result struct {
	// Cost is the heuristic schedule's objective value: the span count
	// for SolveGaps (as a float for uniformity with power), the total
	// power at alpha for SolvePower.
	Cost float64
	// LowerBound is a certified lower bound on the optimal cost:
	// LowerBound ≤ OPT ≤ Cost.
	LowerBound float64
	// Spans is the schedule's span count (equal to Cost for SolveGaps).
	Spans int
	// Schedule is the feasible schedule the greedy constructed; slot i
	// schedules job i of the input instance.
	Schedule sched.Schedule
}

// SolveGaps runs the greedy constructor on a one-interval instance for
// the span objective and certifies the answer with SpanLowerBound. It
// returns ErrInfeasible when no feasible schedule exists.
func SolveGaps(in sched.Instance) (Result, error) {
	s, err := Greedy(in)
	if err != nil {
		return Result{}, err
	}
	sp := s.Spans()
	return Result{
		Cost:       float64(sp),
		LowerBound: float64(SpanLowerBound(in)),
		Spans:      sp,
		Schedule:   s,
	}, nil
}

// SolvePower runs the greedy constructor for the power objective with
// transition cost alpha and certifies the answer with PowerLowerBound.
// The cost is the schedule's optimally bridged power (gaps shorter than
// alpha are carried active). It returns ErrInfeasible when no feasible
// schedule exists.
func SolvePower(in sched.Instance, alpha float64) (Result, error) {
	if alpha < 0 {
		return Result{}, fmt.Errorf("heur: negative transition cost alpha %v", alpha)
	}
	s, err := Greedy(in)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Cost:       s.PowerCost(alpha),
		LowerBound: PowerLowerBound(in, alpha),
		Spans:      s.Spans(),
		Schedule:   s,
	}, nil
}

// SolveGapsFragment is SolveGaps for an instance the caller has
// already decomposed (a single forced-idle fragment, the shape the
// facade pipeline hands down): identical schedule and cost, with the
// fragment-level certificate (FragmentSpanLB) computed without
// re-running the decomposition sweep. Sound on any instance; merely a
// weaker certificate when splittable idle runs remain.
func SolveGapsFragment(in sched.Instance) (Result, error) {
	s, err := Greedy(in)
	if err != nil {
		return Result{}, err
	}
	sp := s.Spans()
	return Result{
		Cost:       float64(sp),
		LowerBound: float64(FragmentSpanLB(in)),
		Spans:      sp,
		Schedule:   s,
	}, nil
}

// SolvePowerFragment is SolvePower for an already-decomposed fragment,
// certified by FragmentPowerLB without re-decomposing.
func SolvePowerFragment(in sched.Instance, alpha float64) (Result, error) {
	if alpha < 0 {
		return Result{}, fmt.Errorf("heur: negative transition cost alpha %v", alpha)
	}
	s, err := Greedy(in)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Cost:       s.PowerCost(alpha),
		LowerBound: FragmentPowerLB(in, alpha),
		Spans:      s.Spans(),
		Schedule:   s,
	}, nil
}

// Greedy builds a feasible schedule for a one-interval p-processor
// instance with the lazy-wakeup rule (see the package comment): sleep
// until the latest Hall-safe wake time, then run earliest-deadline
// pending jobs — extending the busy span while anything is pending —
// and sleep again when the pending set drains. O(n log n); the
// schedule occupies processors as a staircase (prefix of processors at
// every busy time). It returns ErrInfeasible when and only when the
// instance admits no feasible schedule.
func Greedy(in sched.Instance) (sched.Schedule, error) {
	if err := in.Validate(); err != nil {
		return sched.Schedule{}, err
	}
	n := len(in.Jobs)
	out := sched.Schedule{Procs: in.Procs, Slots: make([]sched.Assignment, n)}
	if n == 0 {
		return out, nil
	}
	// No schedule occupies more than n processors at once; the smaller
	// p also helps keep p·(e+1) small in the wake-bound arithmetic.
	p := in.Procs
	if p > n {
		p = n
	}
	// Work on a zero-based timeline (like prep's coordinate
	// compression): instances living at large absolute times — epoch
	// timestamps, say — must not push p·(e+1) anywhere near overflow.
	// Residual pathologies (window widths near MaxInt/p) are handled
	// by saturating the wake-bound values below.
	lo, _ := in.TimeHorizon()
	jobs := make([]sched.Job, n)
	for i, j := range in.Jobs {
		jobs[i] = sched.Job{Release: j.Release - lo, Deadline: j.Deadline - lo}
	}

	// Arrivals in release order; deadlines deduplicated for the wake
	// tree's coordinate axis.
	byRel := make([]int, n)
	for i := range byRel {
		byRel[i] = i
	}
	sort.Slice(byRel, func(x, y int) bool {
		a, b := jobs[byRel[x]], jobs[byRel[y]]
		if a.Release != b.Release {
			return a.Release < b.Release
		}
		return byRel[x] < byRel[y]
	})
	dls := make([]int, n)
	for i, j := range jobs {
		dls[i] = j.Deadline
	}
	sort.Ints(dls)
	dls = dedupe(dls)
	rank := func(d int) int { return sort.SearchInts(dls, d) }

	// f(e) = p·(e+1) − N(e) with N(e) the unscheduled jobs with
	// deadline ≤ e; the latest safe wake from an idle state with next
	// arrival r is ⌊min_{e ≥ r} f(e) / p⌋. Scheduling a job with
	// deadline d adds 1 to f(e) for every e ≥ d. The p·(e+1) term
	// saturates with headroom for those n suffix increments; a capped
	// term only pulls the wake bound earlier, and when that drags it
	// below the next arrival the slow path below re-checks the Hall
	// condition with overflow-safe arithmetic before believing it.
	f := make([]int, len(dls))
	remaining := make([]int, len(dls))
	for _, j := range jobs {
		f[rank(j.Deadline)]--
		remaining[rank(j.Deadline)]++
	}
	run := 0
	for i, e := range dls {
		run += f[i]
		pe := math.MaxInt - n
		if e <= (math.MaxInt-n)/p-1 {
			pe = p * (e + 1)
		}
		f[i] = pe + run
	}
	tree := newMinTree(f)

	// hallViolated re-derives the wake-bound verdict for waking at r
	// without the saturating encoding: is there a deadline e ≥ r whose
	// N(e) remaining jobs overfill p·(e−r+1) slots? O(n), but it runs
	// at most once on feasible instances with sane horizons — only a
	// saturated (≥ ~MaxInt/p-wide) instance or a genuine infeasibility
	// reaches it.
	hallViolated := func(r int) bool {
		cum := 0
		for i := rank(r); i < len(dls); i++ {
			cum += remaining[i]
			width := dls[i] - r + 1
			if width <= (math.MaxInt-1)/p && cum > p*width {
				return true
			}
		}
		return false
	}

	pend := &edfHeap{jobs: jobs}
	next, scheduled := 0, 0
	for scheduled < n {
		// Asleep with an empty pending set: every unscheduled job is a
		// future arrival.
		rNext := jobs[byRel[next]].Release
		w := floorDiv(tree.minSuffix(rank(rNext)), p)
		if w < rNext {
			if hallViolated(rNext) {
				// Even waking at the next arrival cannot meet some
				// deadline bound among the remaining jobs.
				return sched.Schedule{}, ErrInfeasible
			}
			// Saturation artifact: the true bound clears rNext, so
			// waking right at the arrival is safe (merely less lazy).
			w = rNext
		}
		for t := w; ; t++ {
			for next < n && jobs[byRel[next]].Release <= t {
				heap.Push(pend, byRel[next])
				next++
			}
			if pend.Len() == 0 {
				break // span ends; sleep and recompute the wake bound
			}
			k := min(p, pend.Len())
			for q := 0; q < k; q++ {
				j := heap.Pop(pend).(int)
				if jobs[j].Deadline < t {
					return sched.Schedule{}, ErrInfeasible
				}
				out.Slots[j] = sched.Assignment{Proc: q, Time: t + lo}
				tree.addSuffix(rank(jobs[j].Deadline), 1)
				remaining[rank(jobs[j].Deadline)]--
				scheduled++
			}
		}
	}
	return out, nil
}

// edfHeap is a min-heap of job indices ordered by (deadline, index):
// the pending set of the greedy's awake phases.
type edfHeap struct {
	jobs []sched.Job
	idx  []int
}

func (h *edfHeap) Len() int { return len(h.idx) }
func (h *edfHeap) Less(x, y int) bool {
	a, b := h.jobs[h.idx[x]], h.jobs[h.idx[y]]
	if a.Deadline != b.Deadline {
		return a.Deadline < b.Deadline
	}
	return h.idx[x] < h.idx[y]
}
func (h *edfHeap) Swap(x, y int) { h.idx[x], h.idx[y] = h.idx[y], h.idx[x] }
func (h *edfHeap) Push(v any)    { h.idx = append(h.idx, v.(int)) }
func (h *edfHeap) Pop() any {
	v := h.idx[len(h.idx)-1]
	h.idx = h.idx[:len(h.idx)-1]
	return v
}

// floorDiv is floor(a/b) for b > 0 (Go's / truncates toward zero).
func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func dedupe(sorted []int) []int {
	out := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != sorted[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// minTree is a lazy segment tree supporting the two operations the
// wake-bound maintenance needs: add a delta to a suffix of the value
// array, and query the minimum of a suffix.
type minTree struct {
	n    int
	mn   []int
	lazy []int
}

func newMinTree(vals []int) *minTree {
	t := &minTree{n: len(vals), mn: make([]int, 4*len(vals)), lazy: make([]int, 4*len(vals))}
	t.build(1, 0, t.n-1, vals)
	return t
}

func (t *minTree) build(nd, lo, hi int, vals []int) {
	if lo == hi {
		t.mn[nd] = vals[lo]
		return
	}
	mid := (lo + hi) / 2
	t.build(2*nd, lo, mid, vals)
	t.build(2*nd+1, mid+1, hi, vals)
	t.mn[nd] = min(t.mn[2*nd], t.mn[2*nd+1])
}

// addSuffix adds delta to vals[from:].
func (t *minTree) addSuffix(from, delta int) { t.add(1, 0, t.n-1, from, delta) }

func (t *minTree) add(nd, lo, hi, from, delta int) {
	if from <= lo {
		t.mn[nd] += delta
		t.lazy[nd] += delta
		return
	}
	if hi < from {
		return
	}
	mid := (lo + hi) / 2
	t.add(2*nd, lo, mid, from, delta)
	t.add(2*nd+1, mid+1, hi, from, delta)
	t.mn[nd] = min(t.mn[2*nd], t.mn[2*nd+1]) + t.lazy[nd]
}

// minSuffix returns min(vals[from:]); callers guarantee from < n.
func (t *minTree) minSuffix(from int) int { return t.query(1, 0, t.n-1, from) }

func (t *minTree) query(nd, lo, hi, from int) int {
	if from <= lo {
		return t.mn[nd]
	}
	mid := (lo + hi) / 2
	if from > mid {
		return t.query(2*nd+1, mid+1, hi, from) + t.lazy[nd]
	}
	return min(t.query(2*nd, lo, mid, from), t.query(2*nd+1, mid+1, hi, from)) + t.lazy[nd]
}
