package heur_test

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/feas"
	"repro/internal/heur"
	"repro/internal/sched"
	"repro/internal/workload"
)

// TestGreedyMatchesFeasibilityOracle: the lazy-wakeup greedy must agree
// with Hall's condition on every random instance — succeeding with a
// valid schedule exactly when the instance is feasible.
func TestGreedyMatchesFeasibilityOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 400; trial++ {
		n := 1 + rng.Intn(9)
		p := 1 + rng.Intn(3)
		in := workload.Multiproc(rng, n, p, 4+rng.Intn(24), 1+rng.Intn(5))
		want := feas.FeasibleOneInterval(in)
		s, err := heur.Greedy(in)
		if want != (err == nil) {
			t.Fatalf("greedy feasibility %v, Hall %v (jobs %v procs %d)", err == nil, want, in.Jobs, in.Procs)
		}
		if err != nil {
			if !errors.Is(err, heur.ErrInfeasible) {
				t.Fatalf("greedy failed with %v, want heur.ErrInfeasible", err)
			}
			continue
		}
		if err := s.Validate(in); err != nil {
			t.Fatalf("greedy schedule invalid: %v (jobs %v procs %d)", err, in.Jobs, in.Procs)
		}
	}
}

// TestSolveSandwich: on small instances the heuristic cost must be
// sandwiched by the certificates — LowerBound ≤ OPT ≤ Cost — for both
// objectives, against the exact DP.
func TestSolveSandwich(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(8)
		p := 1 + rng.Intn(2)
		in := workload.FeasibleOneInterval(rng, n, p, 4+rng.Intn(30), 1+rng.Intn(5))
		alpha := float64(rng.Intn(9)) / 2

		gr, err := heur.SolveGaps(in)
		if err != nil {
			t.Fatalf("SolveGaps: %v (jobs %v)", err, in.Jobs)
		}
		opt, err := core.SolveGaps(in)
		if err != nil {
			t.Fatalf("core.SolveGaps: %v", err)
		}
		if float64(opt.Spans) < gr.LowerBound || gr.Cost < float64(opt.Spans) {
			t.Fatalf("span sandwich violated: lb %v opt %d heur %v (jobs %v procs %d)",
				gr.LowerBound, opt.Spans, gr.Cost, in.Jobs, in.Procs)
		}
		if gr.Spans != gr.Schedule.Spans() || gr.Cost != float64(gr.Spans) {
			t.Fatalf("span accounting inconsistent: %d vs %v", gr.Spans, gr.Cost)
		}

		pr, err := heur.SolvePower(in, alpha)
		if err != nil {
			t.Fatalf("SolvePower: %v (jobs %v)", err, in.Jobs)
		}
		popt, err := core.SolvePower(in, alpha)
		if err != nil {
			t.Fatalf("core.SolvePower: %v", err)
		}
		if popt.Power < pr.LowerBound-1e-9 || pr.Cost < popt.Power-1e-9 {
			t.Fatalf("power sandwich violated: lb %v opt %v heur %v (jobs %v procs %d alpha %v)",
				pr.LowerBound, popt.Power, pr.Cost, in.Jobs, in.Procs, alpha)
		}
	}
}

// TestGreedyIsOptimalOnEasyShapes: on shapes where laziness plus eager
// extension is obviously right, the greedy must hit the exact optimum.
func TestGreedyIsOptimalOnEasyShapes(t *testing.T) {
	cases := []struct {
		name string
		in   sched.Instance
		want int // optimal spans
	}{
		{"tight chain", workload.TightChain(6), 1},
		{"two far clusters", sched.NewInstance([]sched.Job{
			{Release: 0, Deadline: 2}, {Release: 1, Deadline: 3},
			{Release: 50, Deadline: 52}, {Release: 51, Deadline: 53},
		}), 2},
		{"flexible absorbed by forced", sched.NewInstance([]sched.Job{
			{Release: 0, Deadline: 100},
			{Release: 40, Deadline: 40},
		}), 1},
		{"single job", sched.NewInstance([]sched.Job{{Release: 7, Deadline: 9}}), 1},
	}
	for _, c := range cases {
		res, err := heur.SolveGaps(c.in)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if res.Spans != c.want {
			t.Errorf("%s: greedy spans %d, want %d", c.name, res.Spans, c.want)
		}
		if res.LowerBound > float64(c.want) {
			t.Errorf("%s: lower bound %v above optimum %d", c.name, res.LowerBound, c.want)
		}
	}
}

// TestLowerBoundsAgainstOracle: the certificates must never exceed the
// true optimum on exhaustively checkable instances.
func TestLowerBoundsAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(5)
		in := workload.FeasibleOneInterval(rng, n, 1+rng.Intn(2), 3+rng.Intn(14), 1+rng.Intn(4))
		alpha := float64(rng.Intn(7)) / 2
		if spans, ok := exact.SpansOneInterval(in); ok {
			if lb := heur.SpanLowerBound(in); lb > spans {
				t.Fatalf("span LB %d > oracle optimum %d (jobs %v procs %d)", lb, spans, in.Jobs, in.Procs)
			}
		}
		if power, ok := exact.PowerOneInterval(in, alpha); ok {
			if lb := heur.PowerLowerBound(in, alpha); lb > power+1e-9 {
				t.Fatalf("power LB %v > oracle optimum %v (jobs %v procs %d alpha %v)", lb, power, in.Jobs, in.Procs, alpha)
			}
		}
	}
}

// TestLowerBoundShapes pins the bounds on hand-checkable instances.
func TestLowerBoundShapes(t *testing.T) {
	// Three singleton clusters far apart: 3 forced spans; at alpha = 2
	// each cluster pays its active unit plus one wake.
	scattered := sched.NewInstance([]sched.Job{
		{Release: 0, Deadline: 0}, {Release: 50, Deadline: 50}, {Release: 100, Deadline: 100},
	})
	if lb := heur.SpanLowerBound(scattered); lb != 3 {
		t.Errorf("scattered span LB %d, want 3", lb)
	}
	if lb := heur.PowerLowerBound(scattered, 2); lb != 3+3*2 {
		t.Errorf("scattered power LB %v, want 9", lb)
	}
	// A huge alpha bridges everything: one power fragment, one wake.
	if lb := heur.PowerLowerBound(scattered, 1000); lb != 3+1000 {
		t.Errorf("bridged power LB %v, want 1003", lb)
	}
	// Density: 6 jobs crammed into a width-2 window force level 3, so
	// at least 3 spans even though it is a single fragment.
	dense := sched.NewMultiprocInstance([]sched.Job{
		{Release: 0, Deadline: 1}, {Release: 0, Deadline: 1}, {Release: 0, Deadline: 1},
		{Release: 0, Deadline: 1}, {Release: 0, Deadline: 1}, {Release: 0, Deadline: 1},
	}, 3)
	if lb := heur.SpanLowerBound(dense); lb != 3 {
		t.Errorf("dense span LB %d, want 3", lb)
	}
	// Empty instance: nothing to pay for.
	if lb := heur.SpanLowerBound(sched.Instance{Procs: 1}); lb != 0 {
		t.Errorf("empty span LB %d, want 0", lb)
	}
	if lb := heur.PowerLowerBound(sched.Instance{Procs: 1}, 2); lb != 0 {
		t.Errorf("empty power LB %v, want 0", lb)
	}
}

// TestGreedyLargeInstance: the constructor must handle a 100k-job
// stress instance quickly and feasibly — the scale the exact tier
// cannot touch. (Plain go test; the timed version is E20.)
func TestGreedyLargeInstance(t *testing.T) {
	if testing.Short() {
		t.Skip("large instance")
	}
	rng := rand.New(rand.NewSource(23))
	in := workload.StressBursty(rng, 100_000, 4)
	res, err := heur.SolveGaps(in)
	if err != nil {
		t.Fatalf("SolveGaps: %v", err)
	}
	if err := res.Schedule.Validate(in); err != nil {
		t.Fatalf("schedule invalid: %v", err)
	}
	if res.LowerBound < 1 || res.Cost < res.LowerBound {
		t.Fatalf("degenerate certificate: cost %v lb %v", res.Cost, res.LowerBound)
	}
	pres, err := heur.SolvePower(in, 4)
	if err != nil {
		t.Fatalf("SolvePower: %v", err)
	}
	if pres.Cost < pres.LowerBound {
		t.Fatalf("power certificate inverted: cost %v lb %v", pres.Cost, pres.LowerBound)
	}
}

// TestGreedyLargeAbsoluteTimes: instances living at huge absolute
// times (epoch-scale timestamps, windows near MaxInt) must not
// overflow the wake-bound arithmetic into spurious infeasibility —
// the greedy translates to a zero-based timeline and saturates.
func TestGreedyLargeAbsoluteTimes(t *testing.T) {
	base := math.MaxInt/2 + 10
	in := sched.NewMultiprocInstance([]sched.Job{
		{Release: base, Deadline: base},
		{Release: base, Deadline: base},
		{Release: base + 1000, Deadline: base + 1002},
	}, 2)
	s, err := heur.Greedy(in)
	if err != nil {
		t.Fatalf("greedy on large absolute times: %v", err)
	}
	if err := s.Validate(in); err != nil {
		t.Fatalf("schedule invalid: %v", err)
	}
	// Two simultaneous jobs occupy two processors (2 per-processor
	// spans) and the far cluster adds one more: 3 spans, certified.
	res, err := heur.SolveGaps(in)
	if err != nil || res.Spans != 3 || res.LowerBound != 3 {
		t.Fatalf("large-time solve: spans %d lb %v err %v", res.Spans, res.LowerBound, err)
	}
	// Degenerate width: a single job whose window spans most of the
	// int range still schedules (saturated wake bound, conservative
	// wake).
	wide := sched.NewInstance([]sched.Job{{Release: 0, Deadline: math.MaxInt - 4}})
	if _, err := heur.Greedy(wide); err != nil {
		t.Fatalf("greedy on a near-MaxInt window: %v", err)
	}
	// Saturated regime with a late arrival: the zero-based horizon
	// exceeds MaxInt/p, so the capped wake bound dips below the far
	// arrival — the overflow-safe Hall re-check must recognize the
	// instance as feasible and wake at the arrival instead.
	sat := sched.NewMultiprocInstance([]sched.Job{
		{Release: 0, Deadline: math.MaxInt - 5},
		{Release: 0, Deadline: 0},
		{Release: math.MaxInt - 10, Deadline: math.MaxInt - 5},
	}, 2)
	s, err = heur.Greedy(sat)
	if err != nil {
		t.Fatalf("greedy on a saturated horizon: %v", err)
	}
	if err := s.Validate(sat); err != nil {
		t.Fatalf("saturated-horizon schedule invalid: %v", err)
	}
	// And a genuinely infeasible instance in the same regime is still
	// detected (three point jobs on two processors).
	satBad := sched.NewMultiprocInstance([]sched.Job{
		{Release: 0, Deadline: math.MaxInt - 5},
		{Release: math.MaxInt - 7, Deadline: math.MaxInt - 7},
		{Release: math.MaxInt - 7, Deadline: math.MaxInt - 7},
		{Release: math.MaxInt - 7, Deadline: math.MaxInt - 7},
	}, 2)
	if _, err := heur.Greedy(satBad); !errors.Is(err, heur.ErrInfeasible) {
		t.Fatalf("saturated infeasible instance: got %v, want heur.ErrInfeasible", err)
	}
}

// TestGreedyEmptyAndDegenerate covers the trivial shapes.
func TestGreedyEmptyAndDegenerate(t *testing.T) {
	s, err := heur.Greedy(sched.Instance{Procs: 2})
	if err != nil || len(s.Slots) != 0 {
		t.Fatalf("empty instance: %v %v", s, err)
	}
	if _, err := heur.Greedy(sched.Instance{Jobs: []sched.Job{{Release: 0, Deadline: 0}}, Procs: 0}); err == nil {
		t.Fatal("0-processor instance must be rejected")
	}
	if _, err := heur.SolvePower(sched.Instance{Procs: 1}, -1); err == nil {
		t.Fatal("negative alpha must be rejected")
	}
	// Two same-slot jobs on one processor: infeasible.
	clash := sched.NewInstance([]sched.Job{{Release: 3, Deadline: 3}, {Release: 3, Deadline: 3}})
	if _, err := heur.Greedy(clash); !errors.Is(err, heur.ErrInfeasible) {
		t.Fatalf("clash: got %v, want heur.ErrInfeasible", err)
	}
	if _, err := heur.SolveGaps(clash); !errors.Is(err, heur.ErrInfeasible) {
		t.Fatal("SolveGaps must surface heur.ErrInfeasible")
	}
	if _, err := heur.SolvePower(clash, 1); !errors.Is(err, heur.ErrInfeasible) {
		t.Fatal("SolvePower must surface heur.ErrInfeasible")
	}
}
