// Package poly is the second exact backend of the solving pipeline:
// Baptiste's polynomial single-machine dynamic program for minimum-gap
// scheduling of unit jobs [Bap06] — the algorithm Baptiste, Chrobak and
// Dürr extend to minimum-energy scheduling and that Demaine et al.
// generalize to p processors (the index-space engine in internal/core).
//
// The recursion is the same interval decomposition core runs — the
// subproblem C(t1, t2, k, ℓ1, ℓ2, c2) schedules the k earliest-deadline
// jobs released in [t1, t2] under pinned boundary profile levels — but
// specialized to one effective processor, where every level dimension
// collapses to a bit: ℓ1, ℓ2, c2 ∈ {0, 1}, the case-B profile height at
// the split is always 1, and the right child's level fan-out is {0, 1}
// instead of p+1. That removes the (p+1)³ factor from the state space
// (the memo is keyed by interval pair × k × three bits) and, with it,
// the reason the index-space admission estimate rejects single-
// processor fragments in the thousands of jobs: this backend's
// admission signal (Estimate) is a polynomial of much lower degree.
//
// Like core, the recursion is branch-and-bound: the greedy tier's
// feasible schedule seeds an incumbent budget, nodes are screened by
// the admissible subinterval bounds heur.SubSpanLB/SubPowerLB, and
// pruned nodes memoize budget-aware markers. Pruning never changes an
// answer (Options.NoPrune ablates it), and on every fragment both
// backends can solve the two are bit-identical — costs and schedules —
// which solver-level property tests and the FuzzPolyExact lane certify.
package poly

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/feas"
	"repro/internal/heur"
	"repro/internal/prep"
	"repro/internal/sched"
)

// ErrInfeasible is returned when the instance admits no feasible
// schedule.
var ErrInfeasible = errors.New("poly: instance is infeasible")

// ErrMultiProcessor is returned when the instance needs more than one
// effective processor; this backend is the single-machine
// specialization (see Admissible).
var ErrMultiProcessor = errors.New("poly: instance needs more than one effective processor")

// Admissible reports whether this backend can solve the instance: at
// most one effective processor (Procs capped at the job count, the
// same cap the index-space engine applies). The empty instance is
// admissible trivially.
func Admissible(in sched.Instance) bool {
	p := in.Procs
	if n := len(in.Jobs); p > n {
		p = n
	}
	return p <= 1
}

// Estimate returns this backend's deterministic a-priori admission
// signal: G·(n+1), where G is the candidate-grid size (prep.GridSize,
// the same grid the recursion builds). Like prep.StateEstimate it is a
// routing signal — monotone in fragment size, identical for a fragment
// and its canonical form, saturating instead of overflowing — not a
// visited-state prediction; the bounded recursion expands far fewer
// states than its interval-pair space on real workloads (E23 measures
// the scaling), which is why the signal deliberately prices the
// per-interval frontier rather than the G² pair space. The empty
// instance estimates 0.
func Estimate(in sched.Instance) int {
	n := len(in.Jobs)
	if n == 0 {
		return 0
	}
	g := prep.GridSize(in)
	if g == 0 {
		return 0
	}
	if g > math.MaxInt/(n+1) {
		return math.MaxInt
	}
	return g * (n + 1)
}

// Result reports the outcome of one exact solve on this backend.
type Result struct {
	// Cost is the optimal objective value: the span count (as a float)
	// for SolveGaps, the power consumption for SolvePower.
	Cost float64
	// Schedule is an optimal schedule.
	Schedule sched.Schedule
	// States is the number of memoized subproblems.
	States int
	// PrunedStates counts subproblems answered by the branch-and-bound
	// lower bound without being expanded; 0 when pruning is disabled.
	PrunedStates int
	// ExpandedStates counts subproblems the recursion actually expanded.
	ExpandedStates int
}

// Options tunes the backend for ablation and certification.
type Options struct {
	// NoPrune disables branch-and-bound pruning (no greedy incumbent,
	// no per-node bound checks). Results are identical either way.
	NoPrune bool
}

// SolveGaps computes an optimal minimum-wake-up schedule for a
// one-interval single-effective-processor instance. It returns
// ErrInfeasible when no feasible schedule exists and ErrMultiProcessor
// when Admissible is false.
func SolveGaps(in sched.Instance) (Result, error) {
	return SolveGapsOpt(in, Options{})
}

// SolveGapsOpt is SolveGaps with explicit tuning options.
func SolveGapsOpt(in sched.Instance, opts Options) (Result, error) {
	return solve(in, gapModel{}, func(s sched.Schedule) float64 {
		return float64(s.Spans())
	}, opts)
}

// SolvePower computes an optimal minimum-power schedule for a
// one-interval single-effective-processor instance with transition
// cost alpha. It returns ErrInfeasible when no feasible schedule
// exists and ErrMultiProcessor when Admissible is false.
func SolvePower(in sched.Instance, alpha float64) (Result, error) {
	return SolvePowerOpt(in, alpha, Options{})
}

// SolvePowerOpt is SolvePower with explicit tuning options.
func SolvePowerOpt(in sched.Instance, alpha float64, opts Options) (Result, error) {
	if alpha < 0 {
		return Result{}, errors.New("poly: negative transition cost alpha")
	}
	return solve(in, powerModel{alpha: alpha}, func(s sched.Schedule) float64 {
		return s.PowerCost(alpha)
	}, opts)
}

// solve runs the shared pipeline: validation, the Hall feasibility
// pre-check, the greedy incumbent, the bounded recursion with its
// defensive unbounded re-run, and reconstruction.
func solve[M model](in sched.Instance, m M, incumbent func(sched.Schedule) float64, opts Options) (Result, error) {
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	n := len(in.Jobs)
	if n == 0 {
		return Result{Schedule: sched.Schedule{Procs: in.Procs}}, nil
	}
	if !Admissible(in) {
		return Result{}, ErrMultiProcessor
	}
	if !feas.FeasibleOneInterval(in) {
		return Result{}, ErrInfeasible
	}
	budget := infinite
	if !opts.NoPrune {
		if s, err := heur.Greedy(in); err == nil {
			// One ulp above the incumbent, as in core: an optimum equal
			// to the incumbent stays below the budget and is found
			// exactly.
			budget = math.Nextafter(incumbent(s), infinite)
		}
	}
	e := newEngine(in, m)
	cost, placed, ok := e.run(n, budget)
	if !ok && budget < infinite {
		// Defensive, as in core: never let a too-tight incumbent
		// masquerade as infeasibility; re-solve unbounded.
		cost, placed, ok = e.run(n, infinite)
	}
	if !ok {
		// Cannot happen after the Hall pre-check; defensive.
		return Result{}, ErrInfeasible
	}
	schedule, err := assemble(n, in.Procs, placed)
	if err != nil {
		return Result{}, err
	}
	if err := schedule.Validate(in); err != nil {
		return Result{}, err
	}
	return Result{Cost: cost, Schedule: schedule, States: len(e.memo),
		PrunedStates: e.pruned, ExpandedStates: e.expanded}, nil
}

// assemble builds a schedule from job→time placements; on one
// effective processor every time holds at most one job.
func assemble(n, procs int, placed map[int]int) (sched.Schedule, error) {
	if len(placed) != n {
		return sched.Schedule{}, fmt.Errorf("poly: reconstruction placed %d of %d jobs", len(placed), n)
	}
	s := sched.Schedule{Procs: procs, Slots: make([]sched.Assignment, n)}
	seen := make(map[int]int, n)
	for j, t := range placed {
		if prev, dup := seen[t]; dup {
			return sched.Schedule{}, fmt.Errorf("poly: jobs %d and %d both placed at time %d", prev, j, t)
		}
		seen[t] = j
		s.Slots[j] = sched.Assignment{Proc: 0, Time: t}
	}
	return s, nil
}

// infinite marks unreachable subproblems, exactly as in core.
var infinite = math.Inf(1)

// model supplies the objective-specific hooks of the single-machine
// recursion — the p = 1 restriction of internal/core's costModel, with
// the level arguments already known to be bits. See DESIGN.md §3.
type model interface {
	stateOK(l1, l2, c2 int) bool
	emptyCost(l1, l2, c2, t1, t2 int) (float64, bool)
	pointOK(k, l1, l2, c2 int) bool
	caseAChild(l2, c2 int) (int, int, bool)
	leftLevel() int
	pointLeft(l1, kL int) (int, int, bool)
	boundary(level, next, ctx int) float64
	nodeLB(k, l1, l2, c2, t1, t2 int) float64
}

// gapModel is the span objective at one processor: levels are busy
// bits, context stacks on top of l2.
type gapModel struct{}

func (gapModel) stateOK(l1, l2, c2 int) bool { return l2+c2 <= 1 }

func (gapModel) emptyCost(l1, l2, c2, t1, t2 int) (float64, bool) {
	if l1 != 0 || l2 != 0 {
		return 0, false
	}
	if t2 > t1 {
		return float64(c2), true
	}
	return 0, true
}

func (gapModel) pointOK(k, l1, l2, c2 int) bool { return l1 == k && l2 == k && k+c2 <= 1 }

func (gapModel) caseAChild(l2, c2 int) (int, int, bool) { return l2 - 1, c2 + 1, l2 >= 1 }

// leftLevel: the left child's own level at t′ excludes j_k, and the
// profile height there is exactly 1.
func (gapModel) leftLevel() int { return 0 }

func (gapModel) pointLeft(l1, kL int) (int, int, bool) { return kL, kL, l1 == kL+1 }

func (gapModel) boundary(level, next, ctx int) float64 {
	if d := next + ctx - level; d > 0 {
		return float64(d)
	}
	return 0
}

func (gapModel) nodeLB(k, l1, l2, c2, t1, t2 int) float64 {
	return float64(heur.SubSpanLB(k, l1, l2, c2, t1, t2))
}

// powerModel is the power objective at one processor: levels are
// active bits, context executes inside l2.
type powerModel struct{ alpha float64 }

func (powerModel) stateOK(l1, l2, c2 int) bool { return l2 <= 1 && c2 <= l2 }

func (m powerModel) emptyCost(l1, l2, c2, t1, t2 int) (float64, bool) {
	if t1 == t2 {
		return 0, l1 == l2
	}
	width := t2 - t1 - 1
	best := infinite
	maxB := l1
	if l2 < maxB {
		maxB = l2
	}
	for b := 0; b <= maxB; b++ {
		if c := float64(l2) + float64(b*width) + m.alpha*float64(l2-b); c < best {
			best = c
		}
	}
	return best, true
}

func (powerModel) pointOK(k, l1, l2, c2 int) bool { return l1 == l2 && k+c2 <= l2 }

func (powerModel) caseAChild(l2, c2 int) (int, int, bool) { return l2, c2 + 1, c2+1 <= l2 }

// leftLevel: active levels include j_k, so the left child's level at
// t′ is the full profile height 1.
func (powerModel) leftLevel() int { return 1 }

func (powerModel) pointLeft(l1, kL int) (int, int, bool) { return l1, l1, true }

func (m powerModel) boundary(level, next, ctx int) float64 {
	c := float64(next)
	if next > level {
		c += m.alpha * float64(next-level)
	}
	return c
}

func (m powerModel) nodeLB(k, l1, l2, c2, t1, t2 int) float64 {
	return heur.SubPowerLB(k, l1, l2, c2, t1, t2, m.alpha)
}

// choice kinds recorded for reconstruction, mirroring core.
const (
	choiceNone   = iota // infeasible
	choiceEmpty         // base case, no own jobs
	choicePoint         // base case t1 == t2
	choiceA             // j_k placed at t2, joining the context
	choiceB             // j_k placed at t′ < t2, splitting into children
	choicePruned        // cut by branch and bound; cost holds the budget
)

// pnode identifies one subproblem: interval endpoint indices into
// t1val/t2val, the own-job count, and the three level bits packed into
// lv (l1<<2 | l2<<1 | c2). A struct key keeps the sparse memo safe for
// any grid or job count — no index-space packing to overflow.
type pnode struct {
	i1, i2, k int32
	lv        uint8
}

// pentry is one memo record: the optimal cost plus the choice
// attaining it. lp is the left child's own level at t′ for choiceB
// (−1 for a point left child); lpp the right child's level at t′+1.
type pentry struct {
	cost   float64
	tp     int32
	lp     int8
	lpp    int8
	choice int8
}

// engine runs the single-machine DP for one model. The memo is a
// sparse map — memory is the visited states, and the struct key never
// aliases — and the recursion is serial: the fragments this backend is
// for solve in milliseconds to seconds, below the fan-out threshold
// the index-space engine parallelizes at.
type engine[M model] struct {
	jobs  []sched.Job
	byDL  []int
	grid  []int
	model M

	t1val, t2val []int
	lists        map[[2]int][]int
	memo         map[pnode]pentry

	pruned, expanded int
}

func newEngine[M model](in sched.Instance, m M) *engine[M] {
	n := len(in.Jobs)
	e := &engine[M]{
		jobs:  in.Jobs,
		byDL:  in.SortedByDeadline(),
		model: m,
		lists: make(map[[2]int][]int),
		memo:  make(map[pnode]pentry),
	}
	// The candidate grid is the one core builds (Baptiste's Prop 2.1):
	// the union of the ±n neighbourhoods of releases and deadlines,
	// clipped to the horizon.
	lo, hi := in.TimeHorizon()
	gridSet := make(map[int]struct{})
	for _, j := range in.Jobs {
		for _, center := range [2]int{j.Release, j.Deadline} {
			from, to := max(center-n, lo), min(center+n, hi)
			for t := from; t <= to; t++ {
				gridSet[t] = struct{}{}
			}
		}
	}
	e.grid = make([]int, 0, len(gridSet))
	for t := range gridSet {
		e.grid = append(e.grid, t)
	}
	sort.Ints(e.grid)

	g := len(e.grid)
	e.t1val = make([]int, g+1)
	e.t2val = make([]int, g+1)
	e.t1val[0] = e.grid[0] - 1
	for i, t := range e.grid {
		e.t1val[i+1] = t + 1
		e.t2val[i] = t
	}
	e.t2val[g] = e.grid[g-1] + 1
	return e
}

// list returns the deadline-ordered job indices released in [t1, t2],
// cached per interval.
func (e *engine[M]) list(t1, t2 int) []int {
	key := [2]int{t1, t2}
	if l, ok := e.lists[key]; ok {
		return l
	}
	l := []int{}
	for _, j := range e.byDL {
		if a := e.jobs[j].Release; t1 <= a && a <= t2 {
			l = append(l, j)
		}
	}
	e.lists[key] = l
	return l
}

// pendingAfter counts, among the first k−1 jobs of list, those
// released strictly after t — the right child's job count when j_k is
// placed at t.
func (e *engine[M]) pendingAfter(list []int, k, t int) int {
	cnt := 0
	for _, j := range list[:k-1] {
		if e.jobs[j].Release > t {
			cnt++
		}
	}
	return cnt
}

// run solves the root problem covering the whole horizon and replays
// the optimal choices into job→time placements, under the same
// budget contract as core: a run that comes back !ok under a finite
// budget only certifies cost ≥ budget, not infeasibility.
func (e *engine[M]) run(n int, budget float64) (cost float64, placed map[int]int, ok bool) {
	root := pnode{i1: 0, i2: int32(len(e.grid)), k: int32(n)}
	cost = e.dp(root, budget)
	if cost >= infinite {
		return 0, nil, false
	}
	placed = make(map[int]int, n)
	e.rebuild(root, placed)
	return cost, placed, true
}

// dp returns the minimum cost of the node's subproblem, memoized, or
// infinite when that cost is at least budget. Memo semantics are
// core's exactly: exact entries serve every caller; prune markers
// record the largest budget the node was cut under and answer only
// callers whose budget they cover.
func (e *engine[M]) dp(nd pnode, budget float64) float64 {
	if r, ok := e.memo[nd]; ok {
		if r.choice != choicePruned {
			return r.cost
		}
		if budget <= r.cost {
			e.pruned++
			return infinite
		}
	}
	l1, l2, c2 := int(nd.lv>>2), int(nd.lv>>1&1), int(nd.lv&1)
	if lb := e.model.nodeLB(int(nd.k), l1, l2, c2, e.t1val[nd.i1], e.t2val[nd.i2]); lb >= budget {
		e.pruned++
		e.memo[nd] = pentry{cost: lb, choice: choicePruned}
		return infinite
	}
	e.expanded++
	r := e.compute(nd, budget)
	if r.cost < budget || budget >= infinite {
		e.memo[nd] = r
		return r.cost
	}
	e.memo[nd] = pentry{cost: budget, choice: choicePruned}
	return infinite
}

// compute is the recursion: base cases, case A (j_k joins the context
// at t2) and case B (j_k at a grid time t′ < t2). The candidate order
// — case A, then grid points ascending, then the right level next in
// {0, 1} — matches core's serial order with strict < folding, so the
// first-attaining choice (and hence the reconstructed schedule) is the
// one the index-space engine records.
func (e *engine[M]) compute(nd pnode, budget float64) pentry {
	t1, t2 := e.t1val[nd.i1], e.t2val[nd.i2]
	k := int(nd.k)
	l1, l2, c2 := int(nd.lv>>2), int(nd.lv>>1&1), int(nd.lv&1)
	inf := pentry{cost: infinite, choice: choiceNone}

	if !e.model.stateOK(l1, l2, c2) {
		return inf
	}
	if k == 0 {
		if cost, ok := e.model.emptyCost(l1, l2, c2, t1, t2); ok {
			return pentry{cost: cost, choice: choiceEmpty}
		}
		return inf
	}
	list := e.list(t1, t2)
	if k > len(list) {
		return inf
	}
	if t1 == t2 {
		if !e.model.pointOK(k, l1, l2, c2) {
			return inf
		}
		return pentry{cost: 0, choice: choicePoint}
	}

	jk := list[k-1]
	job := e.jobs[jk]
	best := inf

	// Case A: j_k at t′ = t2, joining the context stack.
	if job.Deadline >= t2 {
		if cl2, cc2, ok := e.model.caseAChild(l2, c2); ok {
			if c := e.dp(pnode{nd.i1, nd.i2, nd.k - 1, packLv(l1, cl2, cc2)}, budget); c < best.cost {
				best = pentry{cost: c, choice: choiceA}
			}
		}
	}

	// Case B: j_k at a grid time t′ ∈ [t1, t2) within its window.
	giLo := sort.SearchInts(e.grid, max(job.Release, t1))
	giHi := sort.SearchInts(e.grid, min(job.Deadline, t2-1)+1)
	for gi := giLo; gi < giHi; gi++ {
		best = e.evalSplit(nd, gi, t1, t2, list, budget, best)
	}
	return best
}

func packLv(l1, l2, c2 int) uint8 { return uint8(l1<<2 | l2<<1 | c2) }

// evalSplit evaluates the case-B candidates placing j_k at grid index
// gi, folding improvements into best with strict <. thr0 is the
// caller's branch-and-bound budget; children see min(thr0, best so
// far), candidates whose children's summed admissible bounds already
// meet the threshold are skipped before any dp call (the skip writes
// no memo state), and under an infinite thr0 pruning is disabled
// outright — all exactly core's contract.
func (e *engine[M]) evalSplit(nd pnode, gi, t1, t2 int, list []int, thr0 float64, best pentry) pentry {
	k := int(nd.k)
	l1, l2, c2 := int(nd.lv>>2), int(nd.lv>>1&1), int(nd.lv&1)
	thr := func() float64 {
		if thr0 >= infinite {
			return infinite
		}
		if best.cost < thr0 {
			return best.cost
		}
		return thr0
	}

	tp := e.grid[gi]
	i := e.pendingAfter(list, k, tp)
	kL := k - 1 - i

	// The right child does not depend on the profile height at t′; its
	// two next-level values are shared by the point-left and interior
	// branches. −1 marks "not yet evaluated".
	var rights [2]float64
	rights[0], rights[1] = -1, -1
	right := func(next int) float64 {
		if rights[next] < 0 {
			rights[next] = e.dp(pnode{int32(gi) + 1, nd.i2, int32(i), packLv(next, l2, c2)}, thr())
		}
		return rights[next]
	}

	ctx := 0
	if tp+1 == t2 {
		ctx = c2
	}

	// Candidate-level cut: left bound + right bound ≥ threshold skips
	// the candidate before any child call. rLB is the right child's
	// bound minimized over next ∈ {0, 1}.
	rLB := 0.0
	if thr0 < infinite {
		rLB = infinite
		rt1, rt2 := e.t1val[gi+1], e.t2val[nd.i2]
		for next := 0; next <= 1; next++ {
			if lb := e.model.nodeLB(i, next, l2, c2, rt1, rt2); lb < rLB {
				rLB = lb
			}
		}
	}

	if tp == t1 {
		// j_k and the kL left jobs all sit at t1; the left child is the
		// single-point base with j_k as context.
		pl1, pl2, ok := e.model.pointLeft(l1, kL)
		if !ok {
			return best
		}
		if thr0 < infinite && e.model.nodeLB(kL, pl1, pl2, 1, e.t1val[nd.i1], e.t2val[gi])+rLB >= thr() {
			return best
		}
		left := e.dp(pnode{nd.i1, int32(gi), int32(kL), packLv(pl1, pl2, 1)}, thr())
		if left >= infinite {
			return best
		}
		for next := 0; next <= 1; next++ {
			r := right(next)
			if r >= infinite {
				continue
			}
			if c := left + r + e.model.boundary(l1, next, ctx); c < best.cost {
				best = pentry{cost: c, choice: choiceB, tp: int32(gi), lp: -1, lpp: int8(next)}
			}
		}
		return best
	}

	// Interior split: the profile height at t′ is exactly 1 (j_k runs
	// there), so the p-level loop of the general engine collapses to
	// this single branch.
	lv := e.model.leftLevel()
	if thr0 < infinite && e.model.nodeLB(kL, l1, lv, 1, e.t1val[nd.i1], e.t2val[gi])+rLB >= thr() {
		return best
	}
	left := e.dp(pnode{nd.i1, int32(gi), int32(kL), packLv(l1, lv, 1)}, thr())
	if left >= infinite {
		return best
	}
	for next := 0; next <= 1; next++ {
		r := right(next)
		if r >= infinite {
			continue
		}
		if c := left + r + e.model.boundary(1, next, ctx); c < best.cost {
			best = pentry{cost: c, choice: choiceB, tp: int32(gi), lp: int8(lv), lpp: int8(next)}
		}
	}
	return best
}

// rebuild replays the recorded choices into job→time placements.
func (e *engine[M]) rebuild(nd pnode, placed map[int]int) {
	r, ok := e.memo[nd]
	if !ok || r.choice == choiceNone || r.choice == choicePruned {
		return
	}
	t1, t2 := e.t1val[nd.i1], e.t2val[nd.i2]
	k := int(nd.k)
	l1, l2, c2 := int(nd.lv>>2), int(nd.lv>>1&1), int(nd.lv&1)
	switch r.choice {
	case choiceEmpty:
		return
	case choicePoint:
		for _, j := range e.list(t1, t2)[:k] {
			placed[j] = t1
		}
	case choiceA:
		jk := e.list(t1, t2)[k-1]
		placed[jk] = t2
		cl2, cc2, _ := e.model.caseAChild(l2, c2)
		e.rebuild(pnode{nd.i1, nd.i2, nd.k - 1, packLv(l1, cl2, cc2)}, placed)
	case choiceB:
		list := e.list(t1, t2)
		jk := list[k-1]
		gi := int(r.tp)
		tp := e.grid[gi]
		placed[jk] = tp
		i := e.pendingAfter(list, k, tp)
		kL := k - 1 - i
		if r.lp < 0 {
			pl1, pl2, _ := e.model.pointLeft(l1, kL)
			e.rebuild(pnode{nd.i1, int32(gi), int32(kL), packLv(pl1, pl2, 1)}, placed)
		} else {
			e.rebuild(pnode{nd.i1, int32(gi), int32(kL), packLv(l1, int(r.lp), 1)}, placed)
		}
		e.rebuild(pnode{int32(gi) + 1, nd.i2, int32(i), packLv(int(r.lpp), l2, c2)}, placed)
	}
}
