package poly

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
)

// randInstance draws a single-processor fragment: n jobs with windows
// of slack ≤ maxSlack over a horizon of maxT.
func randInstance(rng *rand.Rand, n, maxT, maxSlack int) sched.Instance {
	jobs := make([]sched.Job, n)
	for i := range jobs {
		r := rng.Intn(maxT)
		jobs[i] = sched.Job{Release: r, Deadline: r + rng.Intn(maxSlack+1)}
	}
	return sched.Instance{Jobs: jobs, Procs: 1}
}

// TestGapsMatchesCore certifies poly ≡ dp on the span objective:
// identical costs, identical schedules, identical error identity,
// over randomized single-processor fragments.
func TestGapsMatchesCore(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 400; trial++ {
		in := randInstance(rng, 1+rng.Intn(9), 14, 4)
		want, wantErr := core.SolveGaps(in)
		got, gotErr := SolveGaps(in)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("trial %d: core err %v, poly err %v (jobs %v)", trial, wantErr, gotErr, in.Jobs)
		}
		if wantErr != nil {
			if !errors.Is(gotErr, ErrInfeasible) {
				t.Fatalf("trial %d: poly err %v, want ErrInfeasible", trial, gotErr)
			}
			continue
		}
		if got.Cost != float64(want.Spans) {
			t.Fatalf("trial %d: poly cost %v, core spans %d (jobs %v)", trial, got.Cost, want.Spans, in.Jobs)
		}
		if got.Schedule.Spans() != want.Spans {
			t.Fatalf("trial %d: poly schedule spans %d, want %d", trial, got.Schedule.Spans(), want.Spans)
		}
		if err := got.Schedule.Validate(in); err != nil {
			t.Fatalf("trial %d: poly schedule invalid: %v", trial, err)
		}
	}
}

// TestPowerMatchesCore certifies poly ≡ dp on the power objective at
// dyadic alphas, where float sums are exact and equality is exact
// equality.
func TestPowerMatchesCore(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 400; trial++ {
		in := randInstance(rng, 1+rng.Intn(8), 12, 4)
		alpha := float64(rng.Intn(9)) / 2
		want, wantErr := core.SolvePower(in, alpha)
		got, gotErr := SolvePower(in, alpha)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("trial %d: core err %v, poly err %v (jobs %v α=%v)", trial, wantErr, gotErr, in.Jobs, alpha)
		}
		if wantErr != nil {
			continue
		}
		if got.Cost != want.Power {
			t.Fatalf("trial %d: poly power %v, core power %v (jobs %v α=%v)", trial, got.Cost, want.Power, in.Jobs, alpha)
		}
		if pc := got.Schedule.PowerCost(alpha); pc != want.Power {
			t.Fatalf("trial %d: poly schedule power %v, want %v", trial, pc, want.Power)
		}
		if err := got.Schedule.Validate(in); err != nil {
			t.Fatalf("trial %d: poly schedule invalid: %v", trial, err)
		}
	}
}

// TestNoPruneIdentity certifies that branch-and-bound pruning changes
// neither costs nor schedules, and that the NoPrune run keeps
// PrunedStates at 0.
func TestNoPruneIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		in := randInstance(rng, 1+rng.Intn(8), 12, 3)
		alpha := float64(rng.Intn(7)) / 2
		for _, obj := range []string{"gaps", "power"} {
			run := func(opts Options) (Result, error) {
				if obj == "gaps" {
					return SolveGapsOpt(in, opts)
				}
				return SolvePowerOpt(in, alpha, opts)
			}
			pruned, prunedErr := run(Options{})
			full, fullErr := run(Options{NoPrune: true})
			if (prunedErr == nil) != (fullErr == nil) {
				t.Fatalf("trial %d %s: pruned err %v, full err %v", trial, obj, prunedErr, fullErr)
			}
			if prunedErr != nil {
				continue
			}
			if full.PrunedStates != 0 {
				t.Fatalf("trial %d %s: NoPrune run pruned %d states", trial, obj, full.PrunedStates)
			}
			if pruned.Cost != full.Cost {
				t.Fatalf("trial %d %s: pruned cost %v, full cost %v", trial, obj, pruned.Cost, full.Cost)
			}
			for i, a := range pruned.Schedule.Slots {
				if a != full.Schedule.Slots[i] {
					t.Fatalf("trial %d %s: schedules differ at job %d: %v vs %v", trial, obj, i, a, full.Schedule.Slots[i])
				}
			}
		}
	}
}

func TestAdmissible(t *testing.T) {
	j := sched.Job{Release: 0, Deadline: 3}
	cases := []struct {
		in   sched.Instance
		want bool
	}{
		{sched.Instance{Procs: 1}, true},                             // empty
		{sched.Instance{Jobs: []sched.Job{j}, Procs: 1}, true},       // single proc
		{sched.Instance{Jobs: []sched.Job{j}, Procs: 5}, true},       // p caps at n = 1
		{sched.Instance{Jobs: []sched.Job{j, j}, Procs: 2}, false},   // genuinely multi-proc
		{sched.Instance{Jobs: []sched.Job{j, j, j}, Procs: 1}, true}, // single proc, n > 1
	}
	for i, c := range cases {
		if got := Admissible(c.in); got != c.want {
			t.Fatalf("case %d: Admissible = %v, want %v", i, got, c.want)
		}
	}
}

// TestMultiProcessorRejected pins the error identity for instances the
// backend cannot serve.
func TestMultiProcessorRejected(t *testing.T) {
	in := sched.Instance{Jobs: []sched.Job{{Release: 0, Deadline: 1}, {Release: 0, Deadline: 1}}, Procs: 2}
	if _, err := SolveGaps(in); !errors.Is(err, ErrMultiProcessor) {
		t.Fatalf("SolveGaps on 2 procs: %v, want ErrMultiProcessor", err)
	}
	if _, err := SolvePower(in, 1); !errors.Is(err, ErrMultiProcessor) {
		t.Fatalf("SolvePower on 2 procs: %v, want ErrMultiProcessor", err)
	}
}

// TestEstimate pins the admission signal's shape: 0 for empty, G·(n+1)
// otherwise, monotone in the horizon.
func TestEstimate(t *testing.T) {
	if got := Estimate(sched.Instance{Procs: 1}); got != 0 {
		t.Fatalf("empty estimate = %d, want 0", got)
	}
	small := sched.Instance{Jobs: []sched.Job{{Release: 0, Deadline: 2}}, Procs: 1}
	// One job: grid is [−1, 3] clipped to [0, 2] → G = 3; G·(n+1) = 6.
	if got := Estimate(small); got != 6 {
		t.Fatalf("estimate = %d, want 6", got)
	}
	wide := sched.Instance{Jobs: []sched.Job{{Release: 0, Deadline: 200}}, Procs: 1}
	if Estimate(wide) <= Estimate(small) {
		t.Fatalf("estimate not monotone: wide %d ≤ small %d", Estimate(wide), Estimate(small))
	}
}
