// Package power simulates the machine-state model of the paper: per
// processor and per time unit, a device is Busy (executing a job),
// Active (awake but idle, bridging a gap), or Asleep. It renders
// timelines and itemized energy breakdowns for schedules, implementing
// exactly the cost model of DESIGN.md §1: energy = active units (busy or
// idle-active) + α per sleep→active transition, with a gap bridged iff
// that is no more expensive than sleeping through it.
package power

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sched"
)

// State is the power state of one processor during one time unit.
type State byte

// The three machine states.
const (
	Asleep State = iota
	Active       // awake but idle (bridging)
	Busy         // executing a job
)

func (s State) String() string {
	switch s {
	case Asleep:
		return "asleep"
	case Active:
		return "active"
	default:
		return "busy"
	}
}

// Rune returns the timeline glyph of the state.
func (s State) Rune() rune {
	switch s {
	case Asleep:
		return '.'
	case Active:
		return '~'
	default:
		return '#'
	}
}

// Breakdown itemizes the energy of a simulated schedule.
type Breakdown struct {
	Alpha           float64
	BusyUnits       int     // units executing jobs
	IdleActiveUnits int     // units awake without a job (bridged gaps)
	Transitions     int     // sleep→active transitions (wake-ups)
	Total           float64 // BusyUnits + IdleActiveUnits + Alpha·Transitions
}

// Timeline is the simulated state matrix of a schedule.
type Timeline struct {
	Start, End int // inclusive time range simulated
	// States[q][t−Start] is processor q's state at time t.
	States [][]State
	Energy Breakdown
}

// Simulate derives the optimal-bridging timeline of a one-interval
// schedule: each processor stays awake through a gap iff the gap is
// shorter than alpha (cost len < α), matching Schedule.PowerCost.
func Simulate(s sched.Schedule, alpha float64) Timeline {
	per := s.BusyTimes()
	lo, hi, any := 0, 0, false
	for _, ts := range per {
		for _, t := range ts {
			if !any {
				lo, hi, any = t, t, true
			}
			if t < lo {
				lo = t
			}
			if t > hi {
				hi = t
			}
		}
	}
	tl := Timeline{Start: lo, End: hi, Energy: Breakdown{Alpha: alpha}}
	if !any {
		tl.States = make([][]State, s.Procs)
		return tl
	}
	width := hi - lo + 1
	tl.States = make([][]State, s.Procs)
	for q := range tl.States {
		row := make([]State, width)
		ts := per[q]
		for _, t := range ts {
			row[t-lo] = Busy
		}
		// Bridge gaps shorter than alpha.
		for i := 1; i < len(ts); i++ {
			gap := ts[i] - ts[i-1] - 1
			if gap > 0 && float64(gap) < alpha {
				for t := ts[i-1] + 1; t < ts[i]; t++ {
					row[t-lo] = Active
				}
			}
		}
		tl.States[q] = row
	}
	tl.tally()
	return tl
}

// SimulateMulti derives the timeline of a single-machine multi-interval
// schedule.
func SimulateMulti(ms sched.MultiSchedule, alpha float64) Timeline {
	slots := make([]sched.Assignment, len(ms.Times))
	for i, t := range ms.Times {
		slots[i] = sched.Assignment{Proc: 0, Time: t}
	}
	return Simulate(sched.Schedule{Procs: 1, Slots: slots}, alpha)
}

// tally fills in the energy breakdown from the state matrix.
func (tl *Timeline) tally() {
	e := &tl.Energy
	e.BusyUnits, e.IdleActiveUnits, e.Transitions = 0, 0, 0
	for _, row := range tl.States {
		prev := Asleep
		for _, st := range row {
			switch st {
			case Busy:
				e.BusyUnits++
			case Active:
				e.IdleActiveUnits++
			}
			if prev == Asleep && st != Asleep {
				e.Transitions++
			}
			prev = st
		}
	}
	e.Total = float64(e.BusyUnits+e.IdleActiveUnits) + e.Alpha*float64(e.Transitions)
}

// Render draws the timeline, one row per processor:
//
//	P0 |##~~#....#|  (# busy, ~ idle-active, . asleep)
func (tl Timeline) Render() string {
	var b strings.Builder
	for q, row := range tl.States {
		fmt.Fprintf(&b, "P%-2d |", q)
		for _, st := range row {
			b.WriteRune(st.Rune())
		}
		b.WriteString("|\n")
	}
	fmt.Fprintf(&b, "t = [%d, %d]   energy = %d busy + %d idle-active + %d×α wake-ups = %.2f (α=%.2f)\n",
		tl.Start, tl.End, tl.Energy.BusyUnits, tl.Energy.IdleActiveUnits, tl.Energy.Transitions,
		tl.Energy.Total, tl.Energy.Alpha)
	return b.String()
}

// SpanSummary lists, per processor, the busy spans of the schedule.
func SpanSummary(s sched.Schedule) string {
	var b strings.Builder
	for q, ts := range s.BusyTimes() {
		sort.Ints(ts)
		fmt.Fprintf(&b, "P%-2d:", q)
		for i := 0; i < len(ts); {
			j := i
			for j+1 < len(ts) && ts[j+1] <= ts[j]+1 {
				j++
			}
			fmt.Fprintf(&b, " [%d,%d]", ts[i], ts[j])
			i = j + 1
		}
		b.WriteString("\n")
	}
	return b.String()
}
