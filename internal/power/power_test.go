package power

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/sched"
	"repro/internal/workload"
)

func TestSimulateMatchesPowerCost(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 150; trial++ {
		p := 1 + rng.Intn(3)
		used := map[sched.Assignment]bool{}
		var slots []sched.Assignment
		for i := 0; i < 1+rng.Intn(8); i++ {
			a := sched.Assignment{Proc: rng.Intn(p), Time: rng.Intn(14)}
			if !used[a] {
				used[a] = true
				slots = append(slots, a)
			}
		}
		s := sched.Schedule{Procs: p, Slots: slots}
		for _, alpha := range []float64{0, 0.5, 1, 2.5, 7} {
			tl := Simulate(s, alpha)
			if want := s.PowerCost(alpha); math.Abs(tl.Energy.Total-want) > 1e-9 {
				t.Fatalf("trial %d α=%v: simulated %v, accounting %v (slots %v)",
					trial, alpha, tl.Energy.Total, want, slots)
			}
		}
	}
}

func TestSimulateBridgesIffShorter(t *testing.T) {
	s := sched.Schedule{Procs: 1, Slots: []sched.Assignment{
		{Proc: 0, Time: 0}, {Proc: 0, Time: 3}, // gap length 2
	}}
	bridged := Simulate(s, 5)
	if bridged.Energy.IdleActiveUnits != 2 || bridged.Energy.Transitions != 1 {
		t.Fatalf("α=5 should bridge: %+v", bridged.Energy)
	}
	slept := Simulate(s, 1)
	if slept.Energy.IdleActiveUnits != 0 || slept.Energy.Transitions != 2 {
		t.Fatalf("α=1 should sleep: %+v", slept.Energy)
	}
	// Tie (gap == α): either is optimal; Simulate sleeps (strict <).
	tie := Simulate(s, 2)
	if math.Abs(tie.Energy.Total-s.PowerCost(2)) > 1e-9 {
		t.Fatalf("tie case cost mismatch: %v vs %v", tie.Energy.Total, s.PowerCost(2))
	}
}

func TestSimulateEmpty(t *testing.T) {
	tl := Simulate(sched.Schedule{Procs: 2}, 3)
	if tl.Energy.Total != 0 || len(tl.States) != 2 {
		t.Fatalf("empty timeline wrong: %+v", tl)
	}
}

func TestRenderGlyphs(t *testing.T) {
	s := sched.Schedule{Procs: 1, Slots: []sched.Assignment{
		{Proc: 0, Time: 0}, {Proc: 0, Time: 2},
	}}
	out := Simulate(s, 10).Render()
	if !strings.Contains(out, "#~#") {
		t.Fatalf("expected bridged glyphs #~#, got:\n%s", out)
	}
	out = Simulate(s, 0.5).Render()
	if !strings.Contains(out, "#.#") {
		t.Fatalf("expected sleeping glyphs #.#, got:\n%s", out)
	}
}

func TestSimulateMulti(t *testing.T) {
	ms := sched.MultiSchedule{Times: []int{0, 1, 5}}
	tl := SimulateMulti(ms, 2)
	if math.Abs(tl.Energy.Total-ms.PowerCost(2)) > 1e-9 {
		t.Fatalf("multi simulate %v != accounting %v", tl.Energy.Total, ms.PowerCost(2))
	}
}

func TestSpanSummary(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	in := workload.FeasibleOneInterval(rng, 5, 2, 8, 3)
	_ = in
	s := sched.Schedule{Procs: 2, Slots: []sched.Assignment{
		{Proc: 0, Time: 1}, {Proc: 0, Time: 2}, {Proc: 1, Time: 7},
	}}
	out := SpanSummary(s)
	if !strings.Contains(out, "[1,2]") || !strings.Contains(out, "[7,7]") {
		t.Fatalf("span summary wrong:\n%s", out)
	}
}

func TestStateStrings(t *testing.T) {
	if Asleep.String() != "asleep" || Active.String() != "active" || Busy.String() != "busy" {
		t.Fatal("state names wrong")
	}
	if Asleep.Rune() != '.' || Active.Rune() != '~' || Busy.Rune() != '#' {
		t.Fatal("state glyphs wrong")
	}
}
