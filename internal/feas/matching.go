// Package feas provides the feasibility substrate used throughout the
// repository: Hopcroft–Karp bipartite matching between jobs and time
// units, Hall-condition feasibility tests for one-interval instances,
// earliest-deadline-first scheduling, and the augmenting-path schedule
// extension of Lemma 3.
package feas

// Bipartite is a bipartite graph between nLeft left vertices (jobs) and
// nRight right vertices (time slots), given by adjacency lists.
type Bipartite struct {
	NLeft  int
	NRight int
	Adj    [][]int // Adj[u] lists right-neighbours of left vertex u
}

// NewBipartite allocates a graph with the given part sizes.
func NewBipartite(nLeft, nRight int) *Bipartite {
	return &Bipartite{NLeft: nLeft, NRight: nRight, Adj: make([][]int, nLeft)}
}

// AddEdge connects left vertex u to right vertex v.
func (g *Bipartite) AddEdge(u, v int) { g.Adj[u] = append(g.Adj[u], v) }

// Matching is the result of a maximum-matching computation.
// MatchL[u] is the right vertex matched to left u (−1 if unmatched);
// MatchR[v] is the left vertex matched to right v (−1 if unmatched).
type Matching struct {
	Size   int
	MatchL []int
	MatchR []int
}

const unmatched = -1

// MaxMatching computes a maximum-cardinality matching with the
// Hopcroft–Karp algorithm in O(E·√V).
func MaxMatching(g *Bipartite) Matching {
	matchL := make([]int, g.NLeft)
	matchR := make([]int, g.NRight)
	for i := range matchL {
		matchL[i] = unmatched
	}
	for i := range matchR {
		matchR[i] = unmatched
	}
	dist := make([]int, g.NLeft)
	queue := make([]int, 0, g.NLeft)

	const inf = int(^uint(0) >> 1)

	bfs := func() bool {
		queue = queue[:0]
		for u := 0; u < g.NLeft; u++ {
			if matchL[u] == unmatched {
				dist[u] = 0
				queue = append(queue, u)
			} else {
				dist[u] = inf
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, v := range g.Adj[u] {
				w := matchR[v]
				if w == unmatched {
					found = true
				} else if dist[w] == inf {
					dist[w] = dist[u] + 1
					queue = append(queue, w)
				}
			}
		}
		return found
	}

	var dfs func(u int) bool
	dfs = func(u int) bool {
		for _, v := range g.Adj[u] {
			w := matchR[v]
			if w == unmatched || (dist[w] == dist[u]+1 && dfs(w)) {
				matchL[u] = v
				matchR[v] = u
				return true
			}
		}
		dist[u] = inf
		return false
	}

	size := 0
	for bfs() {
		for u := 0; u < g.NLeft; u++ {
			if matchL[u] == unmatched && dfs(u) {
				size++
			}
		}
	}
	return Matching{Size: size, MatchL: matchL, MatchR: matchR}
}

// AugmentFrom attempts to grow an existing matching by one edge starting
// from the unmatched left vertex u, using a simple alternating BFS. It
// mutates m in place and reports success. This is the primitive behind
// the Lemma 3 schedule-extension procedure, where each successful
// augmentation adds exactly one new execution time to a partial schedule.
func AugmentFrom(g *Bipartite, m *Matching, u int) bool {
	if m.MatchL[u] != unmatched {
		return false
	}
	parent := make(map[int]int) // right vertex -> left vertex that discovered it
	queue := []int{u}
	var endRight = -1
	visitedL := make(map[int]bool)
	visitedL[u] = true
search:
	for qi := 0; qi < len(queue); qi++ {
		cur := queue[qi]
		for _, v := range g.Adj[cur] {
			if _, seen := parent[v]; seen {
				continue
			}
			parent[v] = cur
			w := m.MatchR[v]
			if w == unmatched {
				endRight = v
				break search
			}
			if !visitedL[w] {
				visitedL[w] = true
				queue = append(queue, w)
			}
		}
	}
	if endRight == -1 {
		return false
	}
	// Flip the alternating path.
	v := endRight
	for {
		l := parent[v]
		prev := m.MatchL[l]
		m.MatchL[l] = v
		m.MatchR[v] = l
		if prev == unmatched && l == u {
			break
		}
		v = prev
	}
	m.Size++
	return true
}
