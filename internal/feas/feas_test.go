package feas_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/feas"
	"repro/internal/sched"
	"repro/internal/workload"
)

func TestMaxMatchingSmall(t *testing.T) {
	g := feas.NewBipartite(3, 3)
	g.AddEdge(0, 0)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(2, 2)
	m := feas.MaxMatching(g)
	if m.Size != 3 {
		t.Fatalf("matching size %d, want 3", m.Size)
	}
	for u := 0; u < 3; u++ {
		if m.MatchL[u] < 0 {
			t.Fatalf("left %d unmatched", u)
		}
		if m.MatchR[m.MatchL[u]] != u {
			t.Fatalf("inconsistent matching at %d", u)
		}
	}
}

func TestMaxMatchingDeficient(t *testing.T) {
	g := feas.NewBipartite(3, 2)
	for u := 0; u < 3; u++ {
		g.AddEdge(u, 0)
		g.AddEdge(u, 1)
	}
	if m := feas.MaxMatching(g); m.Size != 2 {
		t.Fatalf("matching size %d, want 2", m.Size)
	}
}

func TestMaxMatchingEmpty(t *testing.T) {
	if m := feas.MaxMatching(feas.NewBipartite(0, 0)); m.Size != 0 {
		t.Fatalf("empty graph matching size %d", m.Size)
	}
	if m := feas.MaxMatching(feas.NewBipartite(2, 2)); m.Size != 0 {
		t.Fatalf("edgeless graph matching size %d", m.Size)
	}
}

// TestMatchingEqualsGreedyAugmenting: Hopcroft–Karp and repeated
// feas.AugmentFrom must agree on matching size.
func TestMatchingEqualsGreedyAugmenting(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		nl, nr := 1+rng.Intn(8), 1+rng.Intn(8)
		g := feas.NewBipartite(nl, nr)
		for u := 0; u < nl; u++ {
			for v := 0; v < nr; v++ {
				if rng.Intn(3) == 0 {
					g.AddEdge(u, v)
				}
			}
		}
		hk := feas.MaxMatching(g)
		m := feas.Matching{MatchL: make([]int, nl), MatchR: make([]int, nr)}
		for i := range m.MatchL {
			m.MatchL[i] = -1
		}
		for i := range m.MatchR {
			m.MatchR[i] = -1
		}
		for u := 0; u < nl; u++ {
			feas.AugmentFrom(g, &m, u)
		}
		if m.Size != hk.Size {
			t.Fatalf("trial %d: augmenting %d, Hopcroft–Karp %d", trial, m.Size, hk.Size)
		}
	}
}

func TestEDFMatchesHall(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(10)
		p := 1 + rng.Intn(3)
		in := workload.Multiproc(rng, n, p, 12, 4)
		_, edfOK := feas.EDFOneInterval(in)
		hall := feas.FeasibleOneInterval(in)
		if edfOK != hall {
			t.Fatalf("trial %d: EDF=%v Hall=%v (p=%d jobs %v)", trial, edfOK, hall, p, in.Jobs)
		}
	}
}

func TestEDFSchedulesValidly(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		in := workload.FeasibleOneInterval(rng, 1+rng.Intn(10), 1+rng.Intn(3), 12, 4)
		s, ok := feas.EDFOneInterval(in)
		if !ok {
			t.Fatalf("trial %d: EDF failed on feasible instance", trial)
		}
		if err := s.Validate(in); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestFeasibleMultiAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 200; trial++ {
		mi := workload.MultiInterval(rng, 1+rng.Intn(6), 1+rng.Intn(3), 1+rng.Intn(2), 8)
		got := feas.FeasibleMulti(mi)
		want := bruteFeasible(mi)
		if got != want {
			t.Fatalf("trial %d: matching=%v brute=%v (%v)", trial, got, want, mi.Jobs)
		}
	}
}

func bruteFeasible(mi sched.MultiInstance) bool {
	used := map[int]bool{}
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == mi.N() {
			return true
		}
		for _, t := range mi.Jobs[i].Times() {
			if !used[t] {
				used[t] = true
				if rec(i + 1) {
					return true
				}
				delete(used, t)
			}
		}
		return false
	}
	return rec(0)
}

// TestExtendScheduleLemma3 is the Lemma 3 property test: extending a
// feasible partial schedule of n′ jobs with g spans yields a full
// schedule with at most g + (n − n′) spans.
func TestExtendScheduleLemma3(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cfg := &quick.Config{MaxCount: 150, Rand: rng}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mi := workload.FeasibleMultiInterval(r, 2+r.Intn(8), 1+r.Intn(3), 1+r.Intn(3), 14)
		full, ok := feas.SolveMulti(mi)
		if !ok {
			return false
		}
		// Random partial sub-schedule.
		partial := map[int]int{}
		for j, tm := range full.Times {
			if r.Intn(2) == 0 {
				partial[j] = tm
			}
		}
		var partialTimes []int
		for _, tm := range partial {
			partialTimes = append(partialTimes, tm)
		}
		g := sched.SpansOfTimes(partialTimes)
		ext, ok := feas.ExtendSchedule(mi, partial)
		if !ok {
			return false
		}
		if err := ext.Validate(mi); err != nil {
			return false
		}
		// Lemma 3 bound.
		return ext.Spans() <= g+(mi.N()-len(partial))
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestExtendScheduleRejectsBadPartial(t *testing.T) {
	mi := sched.MultiInstance{Jobs: []sched.MultiJob{
		sched.MultiJobFromTimes(0, 1),
		sched.MultiJobFromTimes(0),
	}}
	// Job 1 pinned to 0 and job 0 also (illegally) claimed at 0.
	if _, ok := feas.ExtendSchedule(mi, map[int]int{0: 0, 1: 0}); ok {
		t.Fatal("accepted colliding partial schedule")
	}
	if _, ok := feas.ExtendSchedule(mi, map[int]int{0: 5}); ok {
		t.Fatal("accepted out-of-set partial time")
	}
	if ext, ok := feas.ExtendSchedule(mi, map[int]int{0: 1}); !ok {
		t.Fatal("rejected valid partial schedule")
	} else if err := ext.Validate(mi); err != nil {
		t.Fatal(err)
	}
}

func TestLayOutEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 50; trial++ {
		in := workload.Multiproc(rng, 1+rng.Intn(6), 1+rng.Intn(3), 8, 3)
		mi, _ := sched.LayOut(in)
		if got, want := feas.FeasibleMulti(mi), feas.FeasibleOneInterval(in); got != want {
			t.Fatalf("trial %d: laid-out feasibility %v, direct %v", trial, got, want)
		}
	}
}
