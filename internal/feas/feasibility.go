package feas

import (
	"sort"

	"repro/internal/sched"
)

// FeasibleOneInterval reports whether every job of the one-interval
// p-processor instance can be scheduled, using the Hall condition for
// interval bipartite graphs: for every window [s, e] over critical
// endpoints, the number of jobs whose window lies inside [s, e] must not
// exceed p·(e − s + 1).
func FeasibleOneInterval(in sched.Instance) bool {
	if len(in.Jobs) == 0 {
		return true
	}
	releases := make([]int, 0, len(in.Jobs))
	deadlines := make([]int, 0, len(in.Jobs))
	for _, j := range in.Jobs {
		releases = append(releases, j.Release)
		deadlines = append(deadlines, j.Deadline)
	}
	sort.Ints(releases)
	sort.Ints(deadlines)
	releases = dedupe(releases)
	deadlines = dedupe(deadlines)
	for _, s := range releases {
		for _, e := range deadlines {
			if e < s {
				continue
			}
			inside := 0
			for _, j := range in.Jobs {
				if j.Release >= s && j.Deadline <= e {
					inside++
				}
			}
			if inside > in.Procs*(e-s+1) {
				return false
			}
		}
	}
	return true
}

func dedupe(sorted []int) []int {
	out := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != sorted[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// EDFOneInterval builds a feasible schedule for a one-interval
// p-processor instance by scanning time and running, at each unit, the p
// (or fewer) released unscheduled jobs with earliest deadlines. It
// returns false if some job misses its deadline — which, by the standard
// exchange argument, happens only when the instance is infeasible.
// The schedule produced is "eager": it never idles while work is
// available, so it is the canonical online/greedy baseline (§1).
func EDFOneInterval(in sched.Instance) (sched.Schedule, bool) {
	n := len(in.Jobs)
	out := sched.Schedule{Procs: in.Procs, Slots: make([]sched.Assignment, n)}
	if n == 0 {
		return out, true
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		return in.Jobs[order[x]].Release < in.Jobs[order[y]].Release
	})
	lo, hi := in.TimeHorizon()
	// pending is a simple deadline-ordered list; n is small enough in all
	// our workloads that O(n log n) per step is unnecessary complexity.
	var pending []int
	next := 0
	scheduled := 0
	for t := lo; t <= hi && scheduled < n; t++ {
		for next < n && in.Jobs[order[next]].Release <= t {
			pending = append(pending, order[next])
			next++
		}
		sort.Slice(pending, func(x, y int) bool {
			a, b := in.Jobs[pending[x]], in.Jobs[pending[y]]
			if a.Deadline != b.Deadline {
				return a.Deadline < b.Deadline
			}
			return pending[x] < pending[y]
		})
		run := len(pending)
		if run > in.Procs {
			run = in.Procs
		}
		for q := 0; q < run; q++ {
			i := pending[q]
			if in.Jobs[i].Deadline < t {
				return sched.Schedule{}, false
			}
			out.Slots[i] = sched.Assignment{Proc: q, Time: t}
			scheduled++
		}
		pending = pending[run:]
	}
	if scheduled < n {
		return sched.Schedule{}, false
	}
	return out, true
}

// MultiGraph builds the jobs×times bipartite graph of a multi-interval
// instance. times is the sorted distinct union of allowed times; the
// returned index maps a time to its right-vertex id.
func MultiGraph(mi sched.MultiInstance) (g *Bipartite, times []int, index map[int]int) {
	times = mi.AllTimes()
	index = make(map[int]int, len(times))
	for i, t := range times {
		index[t] = i
	}
	g = NewBipartite(mi.N(), len(times))
	for u, j := range mi.Jobs {
		for _, iv := range j.Intervals {
			for t := iv.Lo; t <= iv.Hi; t++ {
				g.AddEdge(u, index[t])
			}
		}
	}
	return g, times, index
}

// FeasibleMulti reports whether every job of the multi-interval instance
// can be assigned a distinct allowed time (maximum matching saturates the
// job side).
func FeasibleMulti(mi sched.MultiInstance) bool {
	g, _, _ := MultiGraph(mi)
	return MaxMatching(g).Size == mi.N()
}

// SolveMulti returns an arbitrary feasible schedule for the
// multi-interval instance via maximum matching, or false if infeasible.
// No attempt is made to minimize spans; this is the "any feasible
// schedule is a (1+α)-approximation" baseline of §3.
func SolveMulti(mi sched.MultiInstance) (sched.MultiSchedule, bool) {
	g, times, _ := MultiGraph(mi)
	m := MaxMatching(g)
	if m.Size != mi.N() {
		return sched.MultiSchedule{}, false
	}
	out := sched.MultiSchedule{Times: make([]int, mi.N())}
	for u := 0; u < mi.N(); u++ {
		out.Times[u] = times[m.MatchL[u]]
	}
	return out, true
}

// ExtendSchedule implements Lemma 3: given a feasible partial schedule
// (jobTimes[i] = execution time of job i, or absent) of a feasible
// instance, extend it to all jobs by repeatedly reversing augmenting
// paths, each of which adds exactly one new execution time. It returns
// the full schedule, or false if the instance is infeasible.
//
// The span guarantee of Lemma 3 — the result has at most g + (n − n′)
// spans when the partial schedule has g spans (each new execution time
// starts at most one new span; path reversal only relocates jobs among
// times that already execute something) — is verified by property tests.
func ExtendSchedule(mi sched.MultiInstance, partial map[int]int) (sched.MultiSchedule, bool) {
	g, times, index := MultiGraph(mi)
	m := Matching{
		Size:   0,
		MatchL: make([]int, g.NLeft),
		MatchR: make([]int, g.NRight),
	}
	for i := range m.MatchL {
		m.MatchL[i] = unmatched
	}
	for i := range m.MatchR {
		m.MatchR[i] = unmatched
	}
	for job, t := range partial {
		v, ok := index[t]
		if !ok || !mi.Jobs[job].Contains(t) || m.MatchR[v] != unmatched {
			return sched.MultiSchedule{}, false
		}
		m.MatchL[job] = v
		m.MatchR[v] = job
		m.Size++
	}
	for u := 0; u < g.NLeft; u++ {
		if m.MatchL[u] == unmatched && !AugmentFrom(g, &m, u) {
			return sched.MultiSchedule{}, false
		}
	}
	out := sched.MultiSchedule{Times: make([]int, mi.N())}
	for u := 0; u < mi.N(); u++ {
		out.Times[u] = times[m.MatchL[u]]
	}
	return out, true
}
