package service

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	gapsched "repro"
	"repro/internal/obs"
	"repro/internal/sched"
)

// metrics is the daemon's counter set, updated with atomics on the
// request path and rendered in Prometheus text exposition format by
// the /metrics endpoint. Fragment-cache counters are not duplicated
// here; they are read from the shared FragmentCache at render time.
type metrics struct {
	start time.Time // process vitals anchor, set by New

	solveRequests atomic.Int64 // /v1/solve requests received
	batchRequests atomic.Int64 // /v1/batch envelopes received
	batchItems    atomic.Int64 // requests carried inside /v1/batch envelopes
	dispatches    atomic.Int64 // solver dispatches (coalesced groups + batch groups)
	coalesced     atomic.Int64 // solve requests that shared a dispatch with ≥1 peer
	inflight      atomic.Int64 // HTTP requests currently being served

	sessionRequests atomic.Int64 // requests to any /v1/session endpoint
	sessionDeltas   atomic.Int64 // deltas applied to sessions
	sessionSolves   atomic.Int64 // incremental session resolves served
	sessionsCreated atomic.Int64 // sessions opened
	sessionsClosed  atomic.Int64 // sessions deleted by clients or shutdown
	sessionsExpired atomic.Int64 // sessions reclaimed by the TTL

	// Per-mode solve accounting: every successfully served solution —
	// /v1/solve, each /v1/batch element, each session resolve — bumps
	// the counter of the solver mode that produced it, and adds its
	// certified optimality gap (cost − lowerBound, zero for exact
	// solves) to the summed quality-gap gauge.
	modeExact     atomic.Int64
	modeHeuristic atomic.Int64
	modeAuto      atomic.Int64
	qualityGap    atomic.Uint64 // float64 bits of the summed gap

	// Per-backend fragment accounting: every served solution adds its
	// fragment counts to the backend that solved them — the index-space
	// DP engine, the polynomial single-machine backend, or the greedy
	// heuristic — so the live tier mix is visible at fragment
	// granularity, where ModeAuto actually decides.
	backendDP   atomic.Int64
	backendPoly atomic.Int64
	backendHeur atomic.Int64

	// Online-tier accounting: solves served for commit-only sessions,
	// and the most recently measured competitive ratio (a gauge — the
	// ratio is a property of one session's revealed prefix, so summing
	// across sessions would mean nothing).
	onlineSolves atomic.Int64
	onlineRatio  atomic.Uint64 // float64 bits of the last ratio

	// Branch-and-bound accounting summed over served solutions: DP
	// subproblems cut by the exact tier's bound versus subproblems
	// expanded. Their ratio is the live pruning effectiveness of the
	// workload the daemon is actually serving.
	prunedStates   atomic.Int64
	expandedStates atomic.Int64

	errBadRequest  atomic.Int64
	errInfeasible  atomic.Int64
	errCanceled    atomic.Int64
	errUnavailable atomic.Int64
	errNotFound    atomic.Int64
	errInternal    atomic.Int64

	// Latency histograms (lock-free, log₂-bucketed; internal/obs).
	// Request histograms measure end-to-end handler time per endpoint;
	// fragment histograms measure individual backend solves extracted
	// from dispatch traces; queueWait measures how long solve requests
	// sat buffered in coalescing windows before their dispatch started.
	reqSolve         obs.Histogram
	reqBatch         obs.Histogram
	reqSessionCreate obs.Histogram
	reqSessionDelta  obs.Histogram
	reqSessionSolve  obs.Histogram
	reqSessionDelete obs.Histogram
	fragDP           obs.Histogram
	fragPoly         obs.Histogram
	fragHeur         obs.Histogram
	queueWait        obs.Histogram
}

// observeFragment records one fragment's backend solve duration under
// the backend's histogram; the backend names match the trace span tags
// ("dp", "poly", "heuristic").
func (m *metrics) observeFragment(backend string, d time.Duration) {
	switch backend {
	case "poly":
		m.fragPoly.Observe(d)
	case "heuristic":
		m.fragHeur.Observe(d)
	default:
		m.fragDP.Observe(d)
	}
}

// countModeSolve records one successfully served solution: the mode
// that produced it, its certified optimality gap, and its
// branch-and-bound state counters.
func (m *metrics) countModeSolve(sol gapsched.Solution, gap float64) {
	m.prunedStates.Add(int64(sol.PrunedStates))
	m.expandedStates.Add(int64(sol.ExpandedStates))
	m.backendDP.Add(int64(sol.Subinstances - sol.HeuristicFragments - sol.PolyFragments))
	m.backendPoly.Add(int64(sol.PolyFragments))
	m.backendHeur.Add(int64(sol.HeuristicFragments))
	switch sol.Mode {
	case gapsched.ModeHeuristic:
		m.modeHeuristic.Add(1)
	case gapsched.ModeAuto:
		m.modeAuto.Add(1)
	default:
		m.modeExact.Add(1)
	}
	if !(gap > 0) { // exact solves certify themselves: gap 0
		return
	}
	for {
		old := m.qualityGap.Load()
		next := math.Float64bits(math.Float64frombits(old) + gap)
		if m.qualityGap.CompareAndSwap(old, next) {
			return
		}
	}
}

// qualityGapTotal reads the summed quality gap.
func (m *metrics) qualityGapTotal() float64 {
	return math.Float64frombits(m.qualityGap.Load())
}

// observeOnlineRatio records one online-session solve and its measured
// competitive ratio.
func (m *metrics) observeOnlineRatio(ratio float64) {
	m.onlineSolves.Add(1)
	m.onlineRatio.Store(math.Float64bits(ratio))
}

// onlineRatioValue reads the last measured online competitive ratio
// (0 before any online solve).
func (m *metrics) onlineRatioValue() float64 {
	return math.Float64frombits(m.onlineRatio.Load())
}

// bumpError increments the counter for one wire error code.
func (m *metrics) bumpError(code string) {
	switch code {
	case sched.ErrCodeBadRequest:
		m.errBadRequest.Add(1)
	case sched.ErrCodeInfeasible:
		m.errInfeasible.Add(1)
	case sched.ErrCodeCanceled:
		m.errCanceled.Add(1)
	case sched.ErrCodeUnavailable:
		m.errUnavailable.Add(1)
	case sched.ErrCodeNotFound:
		m.errNotFound.Add(1)
	default:
		m.errInternal.Add(1)
	}
}

// buildRevision reads the VCS revision stamped into the binary, once.
// Binaries built outside a checkout (or with -buildvcs=false) report
// "unknown".
var buildRevision = sync.OnceValue(func() string {
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				return s.Value
			}
		}
	}
	return "unknown"
})

// writeVitals renders the process-identity and runtime gauges: the
// build (Go version + VCS revision), the start time, and the live
// goroutine and heap numbers a dashboard needs next to the request
// metrics.
func (m *metrics) writeVitals(w io.Writer) {
	fmt.Fprintf(w, "# HELP gapschedd_build_info Build identity; the value is always 1, the labels carry the Go version and VCS revision.\n"+
		"# TYPE gapschedd_build_info gauge\ngapschedd_build_info{goversion=%q,revision=%q} 1\n",
		runtime.Version(), buildRevision())
	fmt.Fprintf(w, "# HELP gapschedd_start_time_seconds Unix time the daemon was constructed, for uptime arithmetic.\n"+
		"# TYPE gapschedd_start_time_seconds gauge\ngapschedd_start_time_seconds %.3f\n",
		float64(m.start.UnixNano())/1e9)
	fmt.Fprintf(w, "# HELP gapschedd_go_goroutines Goroutines currently live.\n"+
		"# TYPE gapschedd_go_goroutines gauge\ngapschedd_go_goroutines %d\n", runtime.NumGoroutine())
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(w, "# HELP gapschedd_go_heap_inuse_bytes Bytes in in-use heap spans.\n"+
		"# TYPE gapschedd_go_heap_inuse_bytes gauge\ngapschedd_go_heap_inuse_bytes %d\n", ms.HeapInuse)
	fmt.Fprintf(w, "# HELP gapschedd_go_heap_alloc_bytes Bytes of live heap objects.\n"+
		"# TYPE gapschedd_go_heap_alloc_bytes gauge\ngapschedd_go_heap_alloc_bytes %d\n", ms.HeapAlloc)
}

// write renders the counters. buffered is the coalescer's current
// open-window occupancy, sessionsOpen the live session count; cache
// may be nil (caching disabled).
func (m *metrics) write(w io.Writer, buffered, sessionsOpen int, cache *gapsched.FragmentCache) {
	counter := func(name, help string, pairs ...any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for i := 0; i < len(pairs); i += 2 {
			if labels := pairs[i].(string); labels != "" {
				fmt.Fprintf(w, "%s{%s} %d\n", name, labels, pairs[i+1])
			} else {
				fmt.Fprintf(w, "%s %d\n", name, pairs[i+1])
			}
		}
	}
	counter("gapschedd_requests_total", "Requests received, by endpoint.",
		`endpoint="solve"`, m.solveRequests.Load(),
		`endpoint="batch"`, m.batchRequests.Load(),
		`endpoint="session"`, m.sessionRequests.Load())
	counter("gapschedd_batch_items_total", "Requests carried inside /v1/batch envelopes.",
		"", m.batchItems.Load())
	counter("gapschedd_dispatches_total", "Solver dispatches (each runs one SolveBatch).",
		"", m.dispatches.Load())
	counter("gapschedd_coalesced_requests_total", "Solve requests that shared a dispatch with at least one other request.",
		"", m.coalesced.Load())
	counter("gapschedd_errors_total", "Failed requests, by wire error code.",
		`code="bad_request"`, m.errBadRequest.Load(),
		`code="infeasible"`, m.errInfeasible.Load(),
		`code="canceled"`, m.errCanceled.Load(),
		`code="unavailable"`, m.errUnavailable.Load(),
		`code="not_found"`, m.errNotFound.Load(),
		`code="internal"`, m.errInternal.Load())
	counter("gapschedd_mode_solves_total", "Successfully served solutions, by solver mode.",
		`mode="exact"`, m.modeExact.Load(),
		`mode="heuristic"`, m.modeHeuristic.Load(),
		`mode="auto"`, m.modeAuto.Load())
	counter("gapschedd_backend_solves_total", "Fragments solved over served solutions, by backend: the index-space DP engine, the polynomial single-machine backend, or the greedy heuristic.",
		`backend="dp"`, m.backendDP.Load(),
		`backend="poly"`, m.backendPoly.Load(),
		`backend="heuristic"`, m.backendHeur.Load())
	fmt.Fprintf(w, "# HELP gapschedd_quality_gap_total Summed certified optimality gap (cost minus lower bound) over served solutions.\n"+
		"# TYPE gapschedd_quality_gap_total counter\ngapschedd_quality_gap_total %g\n", m.qualityGapTotal())
	counter("gapschedd_dp_states_total", "Exact-tier DP subproblems over served solutions, by outcome: pruned (cut by the branch-and-bound lower bound) versus expanded.",
		`outcome="pruned"`, m.prunedStates.Load(),
		`outcome="expanded"`, m.expandedStates.Load())
	counter("gapschedd_session_events_total", "Incremental-session lifecycle and usage events.",
		`event="created"`, m.sessionsCreated.Load(),
		`event="closed"`, m.sessionsClosed.Load(),
		`event="expired"`, m.sessionsExpired.Load(),
		`event="delta"`, m.sessionDeltas.Load(),
		`event="solve"`, m.sessionSolves.Load())
	counter("gapschedd_online_solves_total", "Solves served for online (commit-only) sessions.",
		"", m.onlineSolves.Load())
	fmt.Fprintf(w, "# HELP gapschedd_online_ratio Last measured online competitive ratio (online cost over the certified lower bound of the revealed prefix's offline optimum).\n"+
		"# TYPE gapschedd_online_ratio gauge\ngapschedd_online_ratio %g\n", m.onlineRatioValue())
	fmt.Fprintf(w, "# HELP gapschedd_sessions_open Incremental sessions currently live.\n"+
		"# TYPE gapschedd_sessions_open gauge\ngapschedd_sessions_open %d\n", sessionsOpen)
	fmt.Fprintf(w, "# HELP gapschedd_inflight_requests HTTP requests currently being served.\n"+
		"# TYPE gapschedd_inflight_requests gauge\ngapschedd_inflight_requests %d\n", m.inflight.Load())
	fmt.Fprintf(w, "# HELP gapschedd_buffered_requests Requests waiting in open coalescing windows.\n"+
		"# TYPE gapschedd_buffered_requests gauge\ngapschedd_buffered_requests %d\n", buffered)
	if cache != nil {
		st := cache.Stats()
		counter("gapschedd_fragcache_events_total", "Fragment cache events since startup.",
			`event="hit"`, st.Hits,
			`event="miss"`, st.Misses,
			`event="wait"`, st.Waits,
			`event="eviction"`, st.Evictions)
		fmt.Fprintf(w, "# HELP gapschedd_fragcache_entries Fragment solutions currently cached.\n"+
			"# TYPE gapschedd_fragcache_entries gauge\ngapschedd_fragcache_entries %d\n", st.Entries)
	}
	obs.WriteProm(w, "gapschedd_request_duration_seconds",
		"End-to-end request handling latency, by endpoint.",
		obs.Series{Labels: `endpoint="solve"`, Hist: &m.reqSolve},
		obs.Series{Labels: `endpoint="batch"`, Hist: &m.reqBatch},
		obs.Series{Labels: `endpoint="session_create"`, Hist: &m.reqSessionCreate},
		obs.Series{Labels: `endpoint="session_delta"`, Hist: &m.reqSessionDelta},
		obs.Series{Labels: `endpoint="session_solve"`, Hist: &m.reqSessionSolve},
		obs.Series{Labels: `endpoint="session_delete"`, Hist: &m.reqSessionDelete})
	obs.WriteProm(w, "gapschedd_fragment_solve_duration_seconds",
		"Per-fragment backend solve latency over dispatched solves, by backend (cache hits excluded).",
		obs.Series{Labels: `backend="dp"`, Hist: &m.fragDP},
		obs.Series{Labels: `backend="poly"`, Hist: &m.fragPoly},
		obs.Series{Labels: `backend="heuristic"`, Hist: &m.fragHeur})
	obs.WriteProm(w, "gapschedd_queue_wait_seconds",
		"Time solve requests spent buffered in coalescing windows before their dispatch started.",
		obs.Series{Hist: &m.queueWait})
	m.writeVitals(w)
}
