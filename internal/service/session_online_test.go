package service

// End-to-end coverage of online (commit-only) sessions over the wire:
// competitiveRatio on solve responses, the commit-only delta contract,
// release-order enforcement, and the online metrics series.

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/sched"
)

// TestSessionOnlineEndToEnd drives an online session over HTTP through
// the §1 adversarial stream and checks the measured competitive ratio
// comes back on the solve response.
func TestSessionOnlineEndToEnd(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// The n=3 adversarial family: flexible jobs first, then tight ones
	// interleaved so the online run pays n spans against an optimum of 1.
	create := sched.SessionCreateRequest{
		Online: true,
		Jobs: []sched.Job{
			{Release: 0, Deadline: 9},
			{Release: 0, Deadline: 9},
			{Release: 0, Deadline: 9},
		},
	}
	code, out := sessionDo(t, "POST", ts.URL+"/v1/session", create)
	if code != http.StatusOK || out.Session == "" || len(out.JobIDs) != 3 {
		t.Fatalf("online create: status %d payload %+v", code, out)
	}
	id := out.Session

	for _, j := range []sched.Job{{Release: 3, Deadline: 4}, {Release: 5, Deadline: 6}, {Release: 7, Deadline: 8}} {
		code, dout := sessionDo(t, "POST", ts.URL+"/v1/session/"+id+"/delta", sched.SessionDeltaRequest{Add: []sched.Job{j}})
		if code != http.StatusOK || dout.Err != nil {
			t.Fatalf("delta add %+v: status %d payload %+v", j, code, dout)
		}
	}

	code, got := sessionSolve(t, ts.URL, id)
	if code != http.StatusOK || got.Err != nil {
		t.Fatalf("online solve: status %d err %+v", code, got.Err)
	}
	if got.Spans != 3 || got.CompetitiveRatio != 3 {
		t.Fatalf("adversarial n=3: spans %d ratio %v, want 3 and 3", got.Spans, got.CompetitiveRatio)
	}
	if got.CommittedJobs == 0 {
		t.Fatalf("stream reached time 9, yet %d jobs committed", got.CommittedJobs)
	}

	st := srv.Stats()
	if st.OnlineSolves != 1 || st.OnlineRatio != 3 {
		t.Fatalf("online stats: solves %d ratio %v, want 1 and 3", st.OnlineSolves, st.OnlineRatio)
	}

	// The online series make it to /metrics.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, series := range []string{
		"gapschedd_online_solves_total 1",
		"gapschedd_online_ratio 3",
	} {
		if !strings.Contains(buf.String(), series) {
			t.Errorf("metrics output missing %q", series)
		}
	}
}

// TestSessionOnlineCommitOnlyContract: removals and out-of-order
// arrivals are rejected as bad_request without mutating the session,
// at create time and at delta time.
func TestSessionOnlineCommitOnlyContract(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Create with out-of-order initial jobs: rejected whole, no session.
	code, out := sessionDo(t, "POST", ts.URL+"/v1/session", sched.SessionCreateRequest{
		Online: true,
		Jobs:   []sched.Job{{Release: 8, Deadline: 9}, {Release: 2, Deadline: 9}},
	})
	if code != http.StatusBadRequest || out.Err == nil || out.Err.Code != sched.ErrCodeBadRequest {
		t.Fatalf("out-of-order create: status %d payload %+v", code, out)
	}
	if srv.Stats().SessionsOpen != 0 {
		t.Fatal("rejected online create left a session open")
	}

	_, out = sessionDo(t, "POST", ts.URL+"/v1/session", sched.SessionCreateRequest{
		Online: true,
		Jobs:   []sched.Job{{Release: 4, Deadline: 6}},
	})
	id := out.Session

	// Removal → bad_request, session untouched.
	code, dout := sessionDo(t, "POST", ts.URL+"/v1/session/"+id+"/delta", sched.SessionDeltaRequest{Remove: []int{0}})
	if code != http.StatusBadRequest || dout.Err == nil || dout.Err.Code != sched.ErrCodeBadRequest {
		t.Fatalf("online remove: status %d payload %+v", code, dout)
	}

	// Arrival before the watermark → bad_request, nothing admitted —
	// including a mixed delta whose first job would have been legal.
	code, dout = sessionDo(t, "POST", ts.URL+"/v1/session/"+id+"/delta", sched.SessionDeltaRequest{
		Add: []sched.Job{{Release: 10, Deadline: 12}, {Release: 1, Deadline: 12}},
	})
	if code != http.StatusBadRequest || dout.Err == nil || dout.Err.Code != sched.ErrCodeBadRequest {
		t.Fatalf("out-of-order delta: status %d payload %+v", code, dout)
	}
	if _, got := sessionSolve(t, ts.URL, id); got.Err != nil || len(got.Schedule.Slots) != 1 {
		t.Fatalf("session mutated by rejected deltas: %+v", got)
	}

	// Offline sessions are unaffected: removals still work, and their
	// solves carry no ratio.
	_, off := sessionDo(t, "POST", ts.URL+"/v1/session", sched.SessionCreateRequest{
		Jobs: []sched.Job{{Release: 0, Deadline: 2}},
	})
	code, dout = sessionDo(t, "POST", ts.URL+"/v1/session/"+off.Session+"/delta", sched.SessionDeltaRequest{Remove: []int{off.JobIDs[0]}})
	if code != http.StatusOK || dout.Err != nil {
		t.Fatalf("offline remove: status %d payload %+v", code, dout)
	}
	if _, got := sessionSolve(t, ts.URL, off.Session); got.Err != nil || got.CompetitiveRatio != 0 {
		t.Fatalf("offline solve carries ratio %v", got.CompetitiveRatio)
	}
}

// TestSessionOnlineInfeasibleOverWire: a committed deadline miss
// surfaces as the infeasible wire code on solve.
func TestSessionOnlineInfeasibleOverWire(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	_, out := sessionDo(t, "POST", ts.URL+"/v1/session", sched.SessionCreateRequest{
		Online: true,
		Jobs:   []sched.Job{{Release: 0, Deadline: 0}, {Release: 0, Deadline: 0}},
	})
	code, got := sessionSolve(t, ts.URL, out.Session)
	if code != http.StatusUnprocessableEntity || got.Err == nil || got.Err.Code != sched.ErrCodeInfeasible {
		t.Fatalf("overloaded online solve: status %d payload %+v", code, got)
	}
}
