package service

// Tests for the SLO layer: verdict flips on latency and error-budget
// breaches, the /v1/debug/slo and /healthz surfaces, edge-triggered
// budget-burn warnings, the slow-solve log rate limiter, and strict
// /metrics exposition under concurrent load.

import (
	"encoding/json"
	"log/slog"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/sched"
)

// fetchSLO GETs and decodes /v1/debug/slo.
func fetchSLO(t *testing.T, url string) SLOReport {
	t.Helper()
	var rep SLOReport
	if err := json.Unmarshal([]byte(fetch(t, url+"/v1/debug/slo")), &rep); err != nil {
		t.Fatalf("undecodable SLO report: %v", err)
	}
	return rep
}

// TestSLOReportHealthy: clean traffic against generous objectives
// reports ok everywhere — the debug endpoint, /healthz, and the
// per-endpoint summaries.
func TestSLOReportHealthy(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	driveTraffic(t, ts.URL)

	rep := fetchSLO(t, ts.URL)
	if rep.Status != SLOStatusOK {
		t.Errorf("status = %q, want ok; report %+v", rep.Status, rep)
	}
	if rep.WindowSeconds != DefaultSLOWindow.Seconds() ||
		rep.TargetP99Seconds != DefaultSLOLatencyP99.Seconds() ||
		rep.TargetErrorRate != DefaultSLOErrorRate {
		t.Errorf("objectives not echoed: %+v", rep)
	}
	if rep.Requests == 0 || rep.Errors != 0 || rep.ErrorBudgetRemaining != 1 || rep.BurnRate != 0 {
		t.Errorf("aggregate window wrong: %+v", rep)
	}
	ep, ok := rep.Endpoints["solve"]
	if !ok || ep.Requests == 0 || ep.Status != SLOStatusOK {
		t.Errorf("solve endpoint window wrong: %+v", ep)
	}
	if ep.P99Seconds <= 0 || ep.P50Seconds > ep.P99Seconds {
		t.Errorf("solve quantiles inconsistent: %+v", ep)
	}

	var hz struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal([]byte(fetch(t, ts.URL+"/healthz")), &hz); err != nil {
		t.Fatalf("undecodable healthz body: %v", err)
	}
	if hz.Status != SLOStatusOK {
		t.Errorf("healthz status = %q, want ok", hz.Status)
	}
}

// TestSLOLatencyBreach: an unreachably tight p99 objective flips the
// verdict to degraded on the endpoints that served traffic, and the
// degradation shows on /healthz and /metrics.
func TestSLOLatencyBreach(t *testing.T) {
	srv := New(Config{SLOLatencyP99: time.Nanosecond})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	for _, req := range testPool(3) {
		if got := decodeSolve(t, postJSON(t, ts.URL+"/v1/solve", req)); got.Err != nil {
			t.Fatalf("solve failed: %+v", got.Err)
		}
	}

	rep := fetchSLO(t, ts.URL)
	if rep.Status != SLOStatusDegraded {
		t.Fatalf("status = %q, want degraded; report %+v", rep.Status, rep)
	}
	if ep := rep.Endpoints["solve"]; ep.Status != SLOStatusDegraded {
		t.Errorf("solve endpoint = %+v, want degraded", ep)
	}
	// Error budget is intact — only latency is breached.
	if rep.ErrorBudgetRemaining != 1 || rep.Errors != 0 {
		t.Errorf("latency breach should not burn error budget: %+v", rep)
	}
	if !strings.Contains(fetch(t, ts.URL+"/healthz"), `"degraded"`) {
		t.Error("healthz does not report the degradation")
	}
	exp := parseExposition(t, fetch(t, ts.URL+"/metrics"))
	if v := exp.samples["gapschedd_slo_degraded"]; v != "1" {
		t.Errorf("gapschedd_slo_degraded = %q, want 1", v)
	}
}

// TestSLOErrorBudgetBurn: 5xx responses (session creates rejected at
// the registry bound → 503) burn the error budget past its objective,
// degrade the verdict, zero the remaining budget gauge, and fire the
// edge-triggered burn warning exactly once.
func TestSLOErrorBudgetBurn(t *testing.T) {
	var buf syncBuffer
	srv := New(Config{
		MaxSessions:  1,
		SLOErrorRate: 0.01,
		Logger:       slog.New(slog.NewTextHandler(&buf, nil)),
	})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	mk := func() (int, sched.SessionResponse) {
		return sessionDo(t, "POST", ts.URL+"/v1/session", sched.SessionCreateRequest{
			Objective: sched.WireGaps, Procs: 1,
			Jobs: []sched.Job{{Release: 0, Deadline: 2}},
		})
	}
	if code, _ := mk(); code != 200 {
		t.Fatalf("first session create: status %d", code)
	}
	for i := 0; i < 5; i++ {
		if code, _ := mk(); code != 503 {
			t.Fatalf("over-bound session create: status %d, want 503", code)
		}
	}

	rep := fetchSLO(t, ts.URL)
	if rep.Status != SLOStatusDegraded || rep.Errors != 5 {
		t.Fatalf("report after burn: %+v", rep)
	}
	if rep.ErrorBudgetRemaining != 0 || rep.BurnRate <= 1 {
		t.Errorf("budget accounting: remaining %g burn %g", rep.ErrorBudgetRemaining, rep.BurnRate)
	}
	if ep := rep.Endpoints["session_create"]; ep.Status != SLOStatusDegraded || ep.Errors != 5 {
		t.Errorf("session_create endpoint: %+v", ep)
	}
	exp := parseExposition(t, fetch(t, ts.URL+"/metrics"))
	if v := exp.samples["gapschedd_slo_error_budget_remaining"]; v != "0" {
		t.Errorf("budget gauge = %q, want 0", v)
	}
	if n := strings.Count(buf.String(), "slo error budget burning"); n != 1 {
		t.Errorf("burn warning fired %d times, want exactly 1 (edge-triggered):\n%s", n, buf.String())
	}
}

// TestSLOObjectivesDisabled: negative objectives turn enforcement off —
// errors and slow requests never degrade the verdict.
func TestSLOObjectivesDisabled(t *testing.T) {
	srv := New(Config{MaxSessions: 1, SLOLatencyP99: -1, SLOErrorRate: -1})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	for i := 0; i < 3; i++ {
		sessionDo(t, "POST", ts.URL+"/v1/session", sched.SessionCreateRequest{
			Objective: sched.WireGaps, Procs: 1,
			Jobs: []sched.Job{{Release: 0, Deadline: 2}},
		})
	}
	rep := fetchSLO(t, ts.URL)
	if rep.Status != SLOStatusOK {
		t.Errorf("disabled objectives still degraded: %+v", rep)
	}
	if rep.TargetP99Seconds != 0 || rep.TargetErrorRate != 0 {
		t.Errorf("disabled objectives should echo as 0: %+v", rep)
	}
	if rep.Errors == 0 {
		t.Errorf("errors still counted while unenforced: %+v", rep)
	}
}

// TestLogLimiter pins the token-bucket arithmetic with an explicit
// clock: the burst drains, suppression counts accumulate, and refill
// restores one emission per 1/rate seconds carrying the drop count.
func TestLogLimiter(t *testing.T) {
	l := newLogLimiter(0.5, 2) // one line per 2s, burst 2
	base := time.Now()
	at := func(d time.Duration) time.Time { return base.Add(d) }

	for i := 0; i < 2; i++ {
		if ok, n := l.allow(at(0)); !ok || n != 0 {
			t.Fatalf("burst emission %d: allow = %v,%d", i, ok, n)
		}
	}
	for i := 0; i < 3; i++ {
		if ok, _ := l.allow(at(time.Duration(i) * 100 * time.Millisecond)); ok {
			t.Fatalf("emission %d allowed with empty bucket", i)
		}
	}
	// 2s later one token has refilled; the emission reports the drops.
	if ok, n := l.allow(at(2300 * time.Millisecond)); !ok || n != 3 {
		t.Fatalf("refilled allow = %v,%d, want true,3", ok, n)
	}
	if ok, _ := l.allow(at(2300 * time.Millisecond)); ok {
		t.Fatal("token spent twice")
	}
	// The bucket never overfills past its burst.
	if ok, _ := l.allow(at(time.Hour)); !ok {
		t.Fatal("long idle should allow")
	}
	if ok, _ := l.allow(at(time.Hour)); !ok {
		t.Fatal("burst capacity lost after idle")
	}
	if ok, _ := l.allow(at(time.Hour)); ok {
		t.Fatal("burst exceeded after idle")
	}
	var nilL *logLimiter
	if ok, n := nilL.allow(at(0)); !ok || n != 0 {
		t.Fatal("nil limiter must allow everything")
	}
}

// TestSlowSolveWarningsRateLimited: with a nanosecond threshold every
// dispatch qualifies, but the limiter caps the emitted lines at the
// burst (plus any trickle refill) instead of one per solve.
func TestSlowSolveWarningsRateLimited(t *testing.T) {
	var buf syncBuffer
	srv := New(Config{
		SlowSolve: time.Nanosecond,
		Logger:    slog.New(slog.NewTextHandler(&buf, nil)),
	})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const solves = 20
	pool := testPool(4)
	for i := 0; i < solves; i++ {
		if got := decodeSolve(t, postJSON(t, ts.URL+"/v1/solve", pool[i%len(pool)])); got.Err != nil {
			t.Fatalf("solve failed: %+v", got.Err)
		}
	}
	warned := strings.Count(buf.String(), `"slow solve"`)
	if warned == 0 {
		t.Fatal("rate limiter suppressed every slow-solve warning")
	}
	// Even a generous bound: the burst is 4 and refill is 0.5/s, so 20
	// back-to-back dispatches cannot emit anywhere near 20 lines.
	if warned >= solves/2 {
		t.Errorf("slow-solve warnings not rate limited: %d lines for %d solves", warned, solves)
	}
}

// TestMetricsExpositionUnderLoad scrapes /metrics and /v1/debug/slo
// with the strict validator while solve and error traffic runs
// concurrently: every scrape must parse cleanly mid-flight.
func TestMetricsExpositionUnderLoad(t *testing.T) {
	srv := New(Config{MaxSessions: 1, Window: 200 * time.Microsecond})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	pool := testPool(6)
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := trySolve(ts.URL, pool[(g*7+i)%len(pool)]); err != nil {
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() { // 5xx traffic: session creates bouncing off the bound
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			sessionDo(t, "POST", ts.URL+"/v1/session", sched.SessionCreateRequest{
				Objective: sched.WireGaps, Procs: 1,
				Jobs: []sched.Job{{Release: 0, Deadline: 2}},
			})
		}
	}()

	deadline := time.Now().Add(2 * time.Second)
	scrapes := 0
	for time.Now().Before(deadline) {
		exp := parseExposition(t, fetch(t, ts.URL+"/metrics"))
		for family, typ := range requiredFamilies {
			if exp.typeOf[family] != typ {
				t.Fatalf("scrape %d: family %q wrong (TYPE %q)", scrapes, family, exp.typeOf[family])
			}
		}
		rep := fetchSLO(t, ts.URL)
		if rep.Status != SLOStatusOK && rep.Status != SLOStatusDegraded {
			t.Fatalf("scrape %d: bad SLO status %q", scrapes, rep.Status)
		}
		scrapes++
	}
	close(stop)
	wg.Wait()
	if scrapes == 0 {
		t.Fatal("no scrapes completed")
	}
}
