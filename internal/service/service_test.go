package service

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	gapsched "repro"
	"repro/internal/sched"
	"repro/internal/workload"
)

func postJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// trySolve is the goroutine-safe counterpart of postJSON+decodeSolve:
// it returns errors instead of calling into testing.T, which must not
// be failed from spawned goroutines.
func trySolve(url string, req sched.SolveRequest) (sched.SolveResponse, error) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(req); err != nil {
		return sched.SolveResponse{}, err
	}
	httpResp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		return sched.SolveResponse{}, err
	}
	defer httpResp.Body.Close()
	return sched.DecodeSolveResponse(httpResp.Body)
}

func decodeSolve(t *testing.T, resp *http.Response) sched.SolveResponse {
	t.Helper()
	defer resp.Body.Close()
	out, err := sched.DecodeSolveResponse(resp.Body)
	if err != nil {
		t.Fatalf("undecodable solve response: %v", err)
	}
	return out
}

// testPool builds distinct feasible instances that prep into several
// fragments, so coalesced batches exercise the fragment queue.
func testPool(n int) []sched.SolveRequest {
	rng := rand.New(rand.NewSource(5))
	reqs := make([]sched.SolveRequest, n)
	for i := range reqs {
		in := workload.FeasibleOneInterval(rng, 8, 2, 40, 4)
		obj := sched.WireGaps
		// Gaps requests carry varying alphas: the objective ignores
		// them, so they must all still coalesce into one group.
		alpha := float64(i % 3)
		if i%2 == 1 {
			obj, alpha = sched.WirePower, 2.5
		}
		reqs[i] = sched.SolveRequest{Objective: obj, Alpha: alpha, Procs: in.Procs, Jobs: in.Jobs}
	}
	return reqs
}

func directSolve(t *testing.T, req sched.SolveRequest) gapsched.Solution {
	t.Helper()
	s := gapsched.Solver{Alpha: req.Alpha}
	if req.Objective == sched.WirePower {
		s.Objective = gapsched.ObjectivePower
	}
	sol, err := s.Solve(req.Instance())
	if err != nil {
		t.Fatalf("direct solve: %v", err)
	}
	return sol
}

// End-to-end coalescing test: concurrent /v1/solve requests are forced
// into exactly one dispatch per solver configuration by a size trigger
// (window far longer than the test, MaxBatch = requests per
// configuration), and every response must be bit-identical to a direct
// Solve of the same instance.
func TestSolveCoalescedMatchesDirect(t *testing.T) {
	const perKey = 12
	pool := testPool(2 * perKey) // alternates gaps / power, perKey each
	srv := New(Config{Window: time.Hour, MaxBatch: perKey, SolveTimeout: time.Minute})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var wg sync.WaitGroup
	responses := make([]sched.SolveResponse, len(pool))
	errs := make([]error, len(pool))
	for i, req := range pool {
		wg.Add(1)
		go func() {
			defer wg.Done()
			responses[i], errs[i] = trySolve(ts.URL+"/v1/solve", req)
		}()
	}
	wg.Wait()

	for i, got := range responses {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if got.Err != nil {
			t.Fatalf("request %d failed: %v", i, got.Err)
		}
		want := directSolve(t, pool[i])
		if got.Spans != want.Spans || got.Gaps != want.Gaps || got.Power != want.Power {
			t.Errorf("request %d: served (spans=%d gaps=%d power=%v) != direct (spans=%d gaps=%d power=%v)",
				i, got.Spans, got.Gaps, got.Power, want.Spans, want.Gaps, want.Power)
		}
		if got.Schedule == nil {
			t.Fatalf("request %d: no schedule", i)
		}
		if err := got.Schedule.Validate(pool[i].Instance()); err != nil {
			t.Errorf("request %d: served schedule invalid: %v", i, err)
		}
	}

	st := srv.Stats()
	if st.SolveRequests != int64(len(pool)) {
		t.Errorf("SolveRequests = %d, want %d", st.SolveRequests, len(pool))
	}
	// Every handler blocks until its window dispatches and the window
	// only dispatches at MaxBatch (the timer is an hour out), so the
	// coalescer must have folded the load into one dispatch per
	// configuration.
	if st.Dispatches != 2 {
		t.Errorf("Dispatches = %d, want 2 (one per solver configuration)", st.Dispatches)
	}
	if st.Coalesced != int64(len(pool)) {
		t.Errorf("Coalesced = %d, want %d", st.Coalesced, len(pool))
	}
	if st.Cache.Misses == 0 {
		t.Errorf("shared cache saw no misses: %+v", st.Cache)
	}
}

// Uncoalesced servers (zero window) must serve the same answers.
func TestSolveUncoalescedMatchesDirect(t *testing.T) {
	pool := testPool(6)
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	for i, req := range pool {
		got := decodeSolve(t, postJSON(t, ts.URL+"/v1/solve", req))
		if got.Err != nil {
			t.Fatalf("request %d failed: %v", i, got.Err)
		}
		want := directSolve(t, req)
		if got.Spans != want.Spans || got.Power != want.Power {
			t.Errorf("request %d: served != direct", i)
		}
	}
	if st := srv.Stats(); st.Coalesced != 0 {
		t.Errorf("uncoalesced server reported %d coalesced requests", st.Coalesced)
	}
}

func TestBatchEndpoint(t *testing.T) {
	pool := testPool(4)
	breq := sched.BatchRequest{Requests: []sched.SolveRequest{
		pool[0],
		{Jobs: []sched.Job{{Release: 0, Deadline: 0}, {Release: 0, Deadline: 0}}}, // infeasible
		{Objective: "speed", Jobs: []sched.Job{}},                                 // config error
		pool[1],
	}}
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	httpResp := postJSON(t, ts.URL+"/v1/batch", breq)
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", httpResp.StatusCode)
	}
	bresp, err := sched.DecodeBatchResponse(httpResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(bresp.Responses) != 4 {
		t.Fatalf("got %d responses, want 4", len(bresp.Responses))
	}
	for _, i := range []int{0, 3} {
		got, want := bresp.Responses[i], directSolve(t, breq.Requests[i])
		if got.Err != nil || got.Spans != want.Spans || got.Power != want.Power {
			t.Errorf("batch element %d: served %+v != direct %+v", i, got, want)
		}
	}
	if e := bresp.Responses[1].Err; e == nil || e.Code != sched.ErrCodeInfeasible {
		t.Errorf("element 1: got %+v, want infeasible", bresp.Responses[1])
	}
	if e := bresp.Responses[2].Err; e == nil || e.Code != sched.ErrCodeBadRequest {
		t.Errorf("element 2: got %+v, want bad_request", bresp.Responses[2])
	}
}

// A malformed /v1/batch envelope must come back in the wire contract's
// own shape: a BatchResponse with an envelope-level error that the
// strict decoder accepts.
func TestBatchEnvelopeErrorIsDecodable(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(`{"requests": nope`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	bresp, err := sched.DecodeBatchResponse(resp.Body)
	if err != nil {
		t.Fatalf("envelope error not decodable as BatchResponse: %v", err)
	}
	if bresp.Err == nil || bresp.Err.Code != sched.ErrCodeBadRequest || len(bresp.Responses) != 0 {
		t.Fatalf("unexpected envelope payload: %+v", bresp)
	}
}

func TestSolveErrorPayloads(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(`{"jobs": not json`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", resp.StatusCode)
	}
	if out := decodeSolve(t, resp); out.Err == nil || out.Err.Code != sched.ErrCodeBadRequest {
		t.Errorf("malformed body: payload %+v", out)
	}

	infeasible := sched.SolveRequest{Jobs: []sched.Job{{Release: 2, Deadline: 2}, {Release: 2, Deadline: 2}}}
	resp = postJSON(t, ts.URL+"/v1/solve", infeasible)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("infeasible: status %d, want 422", resp.StatusCode)
	}
	if out := decodeSolve(t, resp); out.Err == nil || out.Err.Code != sched.ErrCodeInfeasible {
		t.Errorf("infeasible: payload %+v", out)
	}

	st := srv.Stats()
	if st.Errors[sched.ErrCodeBadRequest] != 1 || st.Errors[sched.ErrCodeInfeasible] != 1 {
		t.Errorf("error counters: %+v", st.Errors)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}

	decodeSolve(t, postJSON(t, ts.URL+"/v1/solve", testPool(1)[0]))

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	body := buf.String()
	for _, series := range []string{
		`gapschedd_requests_total{endpoint="solve"} 1`,
		"gapschedd_dispatches_total 1",
		"gapschedd_inflight_requests",
		`gapschedd_fragcache_events_total{event="miss"}`,
		"gapschedd_fragcache_entries",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("metrics output missing %q:\n%s", series, body)
		}
	}
}

// Graceful shutdown must answer requests already buffered in an open
// window and reject requests arriving afterwards.
func TestCloseFlushesPendingWindow(t *testing.T) {
	pool := testPool(2)
	srv := New(Config{Window: time.Hour, MaxBatch: 100})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	type solveResult struct {
		resp sched.SolveResponse
		err  error
	}
	got := make(chan solveResult, 1)
	go func() {
		resp, err := trySolve(ts.URL+"/v1/solve", pool[0])
		got <- solveResult{resp, err}
	}()
	// Wait until the request is actually buffered in an open window —
	// the request counter bumps before enqueue, so polling it would
	// race Close against the handler's enqueue call.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Buffered == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never reached a coalescing window")
		}
		time.Sleep(time.Millisecond)
	}
	srv.Close()

	select {
	case out := <-got:
		if out.err != nil {
			t.Fatalf("buffered request errored on shutdown: %v", out.err)
		}
		if out.resp.Err != nil {
			t.Fatalf("buffered request failed on shutdown: %v", out.resp.Err)
		}
		if want := directSolve(t, pool[0]); out.resp.Spans != want.Spans {
			t.Errorf("flushed answer wrong: %d != %d", out.resp.Spans, want.Spans)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("buffered request never answered after Close")
	}

	resp := postJSON(t, ts.URL+"/v1/solve", pool[1])
	out := decodeSolve(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable || out.Err == nil || out.Err.Code != sched.ErrCodeUnavailable {
		t.Errorf("solve after Close: status %d payload %+v, want 503 unavailable", resp.StatusCode, out)
	}

	// Client-built batches share the shutdown lifecycle: envelopes
	// arriving after Close are rejected, in the envelope's own shape.
	bresp := postJSON(t, ts.URL+"/v1/batch", sched.BatchRequest{Requests: []sched.SolveRequest{pool[1]}})
	defer bresp.Body.Close()
	benv, err := sched.DecodeBatchResponse(bresp.Body)
	if bresp.StatusCode != http.StatusServiceUnavailable || err != nil || benv.Err == nil || benv.Err.Code != sched.ErrCodeUnavailable {
		t.Errorf("batch after Close: status %d payload %+v err %v, want 503 unavailable", bresp.StatusCode, benv, err)
	}
}
