package service

// The daemon's side of the observability layer: every solver dispatch
// — a coalesced /v1/solve window, a /v1/batch group, a session resolve
// — runs under one obs.Trace threaded through the solve context, so
// the facade records its per-stage spans into it. When the dispatch
// completes, the trace is drained into the latency histograms
// (/metrics), retained in the ring served by /v1/debug/traces, and —
// past the configured slow-solve threshold — logged with its full
// stage breakdown.

import (
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// logLimiter is a token bucket gating noisy warning paths: a busy
// daemon with a saturated solver would otherwise emit one slow-solve
// line per dispatch. allow spends one token when available and reports
// how many lines were suppressed since the last allowed one, so the
// next emitted warning can carry the drop count instead of losing it.
type logLimiter struct {
	mu         sync.Mutex
	rate       float64 // tokens per second
	burst      float64
	tokens     float64
	last       time.Time
	suppressed int64
}

// slow-solve warning budget: sustained one line per 2s with a burst of
// 4, so isolated stragglers always log and a pathological stream
// settles at half a line per second.
const (
	slowLogRate  = 0.5
	slowLogBurst = 4
)

func newLogLimiter(rate, burst float64) *logLimiter {
	return &logLimiter{rate: rate, burst: burst, tokens: burst}
}

// allow reports whether one line may be emitted at now, and — when it
// may — how many lines were suppressed since the previous emission. A
// nil limiter allows everything.
func (l *logLimiter) allow(now time.Time) (bool, int64) {
	if l == nil {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.last.IsZero() {
		l.tokens += now.Sub(l.last).Seconds() * l.rate
		if l.tokens > l.burst {
			l.tokens = l.burst
		}
	}
	l.last = now
	if l.tokens < 1 {
		l.suppressed++
		return false, 0
	}
	l.tokens--
	n := l.suppressed
	l.suppressed = 0
	return true, n
}

// pipelineObs bundles the sinks a finished dispatch trace feeds. Built
// once by New and shared by the coalescer and the session handlers.
type pipelineObs struct {
	met     *metrics
	rec     *obs.Recorder // nil when trace retention is disabled
	logger  *slog.Logger
	slow    time.Duration // warn threshold; ≤ 0 disables slow-solve logging
	slowLim *logLimiter   // rate limit on slow-solve warnings
}

// finishTrace completes one dispatch trace: stamps its duration and
// error, feeds its spans into the queue-wait and per-backend fragment
// histograms, retains it in the debug ring, and logs it when it ran
// slower than the configured threshold.
func (o *pipelineObs) finishTrace(tr *obs.Trace, err error) {
	tr.Finish(err)
	d := tr.Data()
	for _, sp := range d.Spans {
		switch sp.Name {
		case obs.StageQueueWait:
			o.met.queueWait.Observe(sp.Dur)
		case obs.StageSolve:
			o.met.observeFragment(sp.Backend, sp.Dur)
		}
	}
	id := o.rec.Add(tr)
	if o.slow <= 0 || d.Dur < o.slow {
		return
	}
	ok, suppressed := o.slowLim.allow(time.Now())
	if !ok {
		return
	}
	args := []any{
		slog.Uint64("traceId", id),
		slog.String("op", d.Op),
		slog.Duration("duration", d.Dur),
		slog.String("stages", stageSummary(d)),
	}
	if suppressed > 0 {
		args = append(args, slog.Int64("suppressed", suppressed))
	}
	if d.Err != "" {
		args = append(args, slog.String("error", d.Err))
	}
	for k, v := range d.Attrs {
		args = append(args, slog.String(k, v))
	}
	o.logger.Warn("slow solve", args...)
}

// stageSummary aggregates a trace's spans into one compact per-stage
// line ("queue_wait=1.2ms prep=30µs solve[dp]=4ms …"): durations sum
// per stage/backend pair, in fixed pipeline order, so the summary
// stays one log attribute no matter how many fragments the dispatch
// solved.
func stageSummary(d obs.TraceData) string {
	type key struct{ name, backend string }
	order := []key{
		{obs.StageQueueWait, ""},
		{obs.StagePrep, ""},
		{obs.StageCache, ""},
		{obs.StageSolve, "dp"},
		{obs.StageSolve, "poly"},
		{obs.StageSolve, "heuristic"},
		{obs.StageAssemble, ""},
	}
	sums := make(map[key]time.Duration, len(order))
	for _, sp := range d.Spans {
		k := key{sp.Name, sp.Backend}
		if sp.Name == obs.StageCache {
			k.backend = "" // one cache line regardless of owning backend
		}
		sums[k] += sp.Dur
	}
	var b strings.Builder
	for _, k := range order {
		dur, ok := sums[k]
		if !ok {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(k.name)
		if k.backend != "" {
			fmt.Fprintf(&b, "[%s]", k.backend)
		}
		fmt.Fprintf(&b, "=%s", dur)
	}
	return b.String()
}
