package service

// End-to-end coverage of the solver-mode surface: mode threading
// through /v1/solve, /v1/batch and /v1/session, the per-mode solve
// counters, and the summed quality-gap gauge.

import (
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/sched"
)

// TestSolveModesEndToEnd drives one instance through every mode and
// checks the wire fields, the counters, and the gauge.
func TestSolveModesEndToEnd(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	pool := testPool(1)
	base := pool[0]

	exact := base
	exactResp := decodeSolve(t, postJSON(t, ts.URL+"/v1/solve", exact))
	if exactResp.Err != nil {
		t.Fatalf("exact solve failed: %v", exactResp.Err)
	}
	if exactResp.Mode != sched.WireModeExact {
		t.Fatalf("exact response mode %q", exactResp.Mode)
	}
	if exactResp.LowerBound != float64(exactResp.Spans) {
		t.Fatalf("exact lower bound %v, want its own optimum %d", exactResp.LowerBound, exactResp.Spans)
	}

	h := base
	h.Mode = sched.WireModeHeuristic
	hResp := decodeSolve(t, postJSON(t, ts.URL+"/v1/solve", h))
	if hResp.Err != nil {
		t.Fatalf("heuristic solve failed: %v", hResp.Err)
	}
	if hResp.Mode != sched.WireModeHeuristic || hResp.HeuristicFragments == 0 {
		t.Fatalf("heuristic response markers: mode %q fragments %d", hResp.Mode, hResp.HeuristicFragments)
	}
	if hResp.LowerBound > float64(exactResp.Spans) || hResp.Spans < exactResp.Spans {
		t.Fatalf("sandwich violated over the wire: lb %v exact %d heur %d", hResp.LowerBound, exactResp.Spans, hResp.Spans)
	}
	if err := hResp.Schedule.Validate(base.Instance()); err != nil {
		t.Fatalf("heuristic wire schedule invalid: %v", err)
	}

	auto := base
	auto.Mode, auto.StateBudget = sched.WireModeAuto, math.MaxInt
	aResp := decodeSolve(t, postJSON(t, ts.URL+"/v1/solve", auto))
	if aResp.Err != nil {
		t.Fatalf("auto solve failed: %v", aResp.Err)
	}
	if aResp.Spans != exactResp.Spans || aResp.HeuristicFragments != 0 {
		t.Fatalf("auto under unbounded budget: spans %d (exact %d), heur frags %d",
			aResp.Spans, exactResp.Spans, aResp.HeuristicFragments)
	}

	st := srv.Stats()
	for mode, want := range map[string]int64{
		sched.WireModeExact:     1,
		sched.WireModeHeuristic: 1,
		sched.WireModeAuto:      1,
	} {
		if st.ModeSolves[mode] != want {
			t.Errorf("ModeSolves[%s] = %d, want %d", mode, st.ModeSolves[mode], want)
		}
	}
	wantGap := float64(hResp.Spans) - hResp.LowerBound
	if st.QualityGap != wantGap {
		t.Errorf("QualityGap %v, want %v", st.QualityGap, wantGap)
	}

	// The /metrics rendering must expose the same numbers.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`gapschedd_mode_solves_total{mode="exact"} 1`,
		`gapschedd_mode_solves_total{mode="heuristic"} 1`,
		`gapschedd_mode_solves_total{mode="auto"} 1`,
		"gapschedd_quality_gap_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

// TestSolveModeRejected: an unknown mode is a bad_request before it
// ever reaches a solver.
func TestSolveModeRejected(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	req := testPool(1)[0]
	req.Mode = "sloppy"
	resp := postJSON(t, ts.URL+"/v1/solve", req)
	out := decodeSolve(t, resp)
	if resp.StatusCode != http.StatusBadRequest || out.Err == nil || out.Err.Code != sched.ErrCodeBadRequest {
		t.Fatalf("unknown mode: status %d err %+v", resp.StatusCode, out.Err)
	}
	if srv.Stats().ModeSolves[sched.WireModeExact] != 0 {
		t.Fatal("rejected request was counted as a solve")
	}
}

// TestBatchMixedModes: one /v1/batch envelope carrying all three modes
// groups per configuration and counts each element under its own mode.
func TestBatchMixedModes(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	base := testPool(1)[0]
	exact, h, auto := base, base, base
	h.Mode = sched.WireModeHeuristic
	auto.Mode, auto.StateBudget = sched.WireModeAuto, math.MaxInt
	resp := postJSON(t, ts.URL+"/v1/batch", sched.BatchRequest{Requests: []sched.SolveRequest{exact, h, auto}})
	defer resp.Body.Close()
	breq, err := sched.DecodeBatchResponse(resp.Body)
	if err != nil {
		t.Fatalf("undecodable batch response: %v", err)
	}
	if len(breq.Responses) != 3 {
		t.Fatalf("%d responses, want 3", len(breq.Responses))
	}
	for i, r := range breq.Responses {
		if r.Err != nil {
			t.Fatalf("batch[%d]: %v", i, r.Err)
		}
	}
	if breq.Responses[0].Spans != breq.Responses[2].Spans {
		t.Fatalf("auto (unbounded) %d spans, exact %d", breq.Responses[2].Spans, breq.Responses[0].Spans)
	}
	if breq.Responses[1].Spans < breq.Responses[0].Spans {
		t.Fatalf("heuristic beat the optimum: %d < %d", breq.Responses[1].Spans, breq.Responses[0].Spans)
	}
	st := srv.Stats()
	for _, mode := range []string{sched.WireModeExact, sched.WireModeHeuristic, sched.WireModeAuto} {
		if st.ModeSolves[mode] != 1 {
			t.Errorf("ModeSolves[%s] = %d, want 1", mode, st.ModeSolves[mode])
		}
	}
}

// TestSessionModeThreading: a heuristic-mode session resolves on the
// heuristic tier and its solves land in the per-mode counters.
func TestSessionModeThreading(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	create := sched.SessionCreateRequest{
		Mode: sched.WireModeHeuristic,
		Jobs: []sched.Job{{Release: 0, Deadline: 3}, {Release: 40, Deadline: 44}},
	}
	resp := postJSON(t, ts.URL+"/v1/session", create)
	defer resp.Body.Close()
	sresp, err := sched.DecodeSessionResponse(resp.Body)
	if err != nil || sresp.Err != nil {
		t.Fatalf("session create: %v %v", err, sresp.Err)
	}

	solve := decodeSolve(t, postJSON(t, ts.URL+"/v1/session/"+sresp.Session+"/solve", struct{}{}))
	if solve.Err != nil {
		t.Fatalf("session solve: %v", solve.Err)
	}
	if solve.Mode != sched.WireModeHeuristic || solve.HeuristicFragments != solve.Subinstances {
		t.Fatalf("session solve markers: mode %q frags %d/%d", solve.Mode, solve.HeuristicFragments, solve.Subinstances)
	}
	if solve.LowerBound <= 0 || float64(solve.Spans) < solve.LowerBound {
		t.Fatalf("session certificate inverted: spans %d lb %v", solve.Spans, solve.LowerBound)
	}
	if got := srv.Stats().ModeSolves[sched.WireModeHeuristic]; got != 1 {
		t.Fatalf("ModeSolves[heuristic] = %d, want 1", got)
	}

	// A bad mode on create is rejected up front.
	bad := postJSON(t, ts.URL+"/v1/session", sched.SessionCreateRequest{Mode: "warp"})
	defer bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad session mode: status %d", bad.StatusCode)
	}
}
