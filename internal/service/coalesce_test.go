package service

// Pins the coalescer's context contract: a dispatch serving a single
// request honors that client's context even when it arrives via the
// window timer, while a dispatch shared by several requests ignores
// individual client contexts so no one client can cancel its peers.

import (
	"context"
	"errors"
	"log/slog"
	"testing"
	"time"

	gapsched "repro"
	"repro/internal/sched"
)

func testCoalescer(window time.Duration) *coalescer {
	met := &metrics{}
	po := &pipelineObs{met: met, logger: slog.New(slog.DiscardHandler)}
	return newCoalescer(window, 8, 0, met, po, func(solveKey) gapsched.Solver {
		return gapsched.Solver{}
	})
}

// TestCoalescerSingleRequestWindowHonorsContext: a window that closes
// holding only one request serves only that client, so the client's
// canceled context must cancel the solve — including the timer-flushed
// path, not just the window-disabled immediate path.
func TestCoalescerSingleRequestWindowHonorsContext(t *testing.T) {
	in := gapsched.Instance{Jobs: []sched.Job{{Release: 0, Deadline: 3}}, Procs: 1}
	for _, tc := range []struct {
		name   string
		window time.Duration
	}{
		{"immediate dispatch", 0},
		{"timer-flushed window", 30 * time.Millisecond},
	} {
		c := testCoalescer(tc.window)
		ctx, cancel := context.WithCancel(context.Background())
		done, err := c.enqueue(ctx, solveKey{}, in)
		if err != nil {
			t.Fatalf("%s: enqueue: %v", tc.name, err)
		}
		cancel() // before the window timer can possibly fire
		select {
		case out := <-done:
			if !errors.Is(out.err, context.Canceled) {
				t.Fatalf("%s: outcome %v, want context.Canceled", tc.name, out.err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%s: dispatch never resolved", tc.name)
		}
		c.close()
	}
}

// TestCoalescerSharedWindowIgnoresClientContext: once a second request
// joins the window, the dispatch is shared — canceling the first
// client's context must not cancel its peer (or itself: the shared
// dispatch runs under the coalescer's own deadline).
func TestCoalescerSharedWindowIgnoresClientContext(t *testing.T) {
	c := testCoalescer(30 * time.Millisecond)
	defer c.close()
	in := gapsched.Instance{Jobs: []sched.Job{{Release: 0, Deadline: 3}}, Procs: 1}
	ctx, cancel := context.WithCancel(context.Background())
	done1, err := c.enqueue(ctx, solveKey{}, in)
	if err != nil {
		t.Fatal(err)
	}
	done2, err := c.enqueue(context.Background(), solveKey{}, in)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	for i, done := range []<-chan outcome{done1, done2} {
		select {
		case out := <-done:
			if out.err != nil {
				t.Fatalf("request %d: %v, want success despite peer cancellation", i, out.err)
			}
			if len(out.sol.Schedule.Slots) != 1 {
				t.Fatalf("request %d: truncated solution %+v", i, out.sol)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("request %d never resolved", i)
		}
	}
}
