package service

// Tests for the observability layer: strict Prometheus exposition
// validity of /metrics, the /v1/debug/traces ring, per-stage timings
// on the wire, and the structured request/slow-solve log lines.

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sched"
)

// fetch GETs a URL and returns the body.
func fetch(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// driveTraffic exercises every instrumented endpoint once: solves,
// a batch, and a full session lifecycle.
func driveTraffic(t *testing.T, url string) {
	t.Helper()
	pool := testPool(4)
	for _, req := range pool[:2] {
		if got := decodeSolve(t, postJSON(t, url+"/v1/solve", req)); got.Err != nil {
			t.Fatalf("solve failed: %+v", got.Err)
		}
	}
	resp := postJSON(t, url+"/v1/batch", sched.BatchRequest{Requests: pool[2:]})
	resp.Body.Close()

	code, out := sessionDo(t, "POST", url+"/v1/session", sched.SessionCreateRequest{
		Objective: sched.WireGaps, Procs: 1,
		Jobs: []sched.Job{{Release: 0, Deadline: 2}, {Release: 10, Deadline: 12}},
	})
	if code != http.StatusOK {
		t.Fatalf("session create: status %d %+v", code, out)
	}
	if code, sresp := sessionSolve(t, url, out.Session); code != http.StatusOK || sresp.Err != nil {
		t.Fatalf("session solve: status %d err %+v", code, sresp.Err)
	}
	sessionDo(t, "POST", url+"/v1/session/"+out.Session+"/delta", sched.SessionDeltaRequest{
		Add: []sched.Job{{Release: 20, Deadline: 22}},
	})
	sessionDo(t, "DELETE", url+"/v1/session/"+out.Session, nil)
}

// expoSeries is one histogram series' buckets in order of appearance.
type expoSeries struct {
	les  []float64
	cums []uint64
}

// exposition is the parsed form of one /metrics body.
type exposition struct {
	typeOf  map[string]string      // family → metric type
	buckets map[string]*expoSeries // family|labels (sans le) → buckets
	counts  map[string]uint64      // family|labels → _count value
	samples map[string]string      // metric|labels → value, non-histogram samples
}

// parseExposition is the strict Prometheus text-format validator: each
// family must have HELP and TYPE lines before its first sample, no
// family may be declared twice, no line may be blank, and every
// histogram series must have cumulative monotone buckets ending at
// le="+Inf" that agrees with _count. It fails the test on any
// violation and returns the parsed exposition for family-specific
// assertions.
func parseExposition(t *testing.T, body string) exposition {
	t.Helper()
	helpSeen := map[string]bool{}
	typeOf := map[string]string{}
	buckets := map[string]*expoSeries{} // family + label set (sans le)
	counts := map[string]uint64{}
	samples := map[string]string{}
	for ln, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: blank line in exposition", ln+1)
		}
		if strings.HasPrefix(line, "# HELP ") {
			name := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)[0]
			if helpSeen[name] {
				t.Fatalf("line %d: duplicate HELP for family %q", ln+1, name)
			}
			helpSeen[name] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed TYPE line %q", ln+1, line)
			}
			name, typ := fields[0], fields[1]
			if typeOf[name] != "" {
				t.Fatalf("line %d: duplicate TYPE for family %q", ln+1, name)
			}
			if !helpSeen[name] {
				t.Fatalf("line %d: TYPE for %q before its HELP", ln+1, name)
			}
			typeOf[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unexpected comment %q", ln+1, line)
		}

		// Sample line: <name>[{labels}] <value>
		nameEnd := strings.IndexAny(line, "{ ")
		if nameEnd < 0 {
			t.Fatalf("line %d: malformed sample %q", ln+1, line)
		}
		metric := line[:nameEnd]
		family := metric
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(metric, suffix); ok && typeOf[base] == "histogram" {
				family = base
				break
			}
		}
		if typeOf[family] == "" {
			t.Fatalf("line %d: sample %q has no preceding HELP/TYPE", ln+1, metric)
		}

		var labels, value string
		rest := line[nameEnd:]
		if rest[0] == '{' {
			end := strings.LastIndexByte(rest, '}')
			if end < 0 {
				t.Fatalf("line %d: unterminated label set %q", ln+1, line)
			}
			labels, value = rest[1:end], strings.TrimSpace(rest[end+1:])
		} else {
			value = strings.TrimSpace(rest)
		}
		if typeOf[family] != "histogram" {
			key := metric
			if labels != "" {
				key += "|" + labels
			}
			samples[key] = value
			continue
		}

		// Histogram bookkeeping: strip le, canonicalize the rest.
		var le string
		var rem []string
		for _, l := range strings.Split(labels, ",") {
			if l == "" {
				continue
			}
			if v, ok := strings.CutPrefix(l, "le="); ok {
				le = strings.Trim(v, `"`)
			} else {
				rem = append(rem, l)
			}
		}
		sort.Strings(rem)
		key := family + "|" + strings.Join(rem, ",")
		switch {
		case strings.HasSuffix(metric, "_bucket"):
			if le == "" {
				t.Fatalf("line %d: histogram bucket without le label: %q", ln+1, line)
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				t.Fatalf("line %d: unparsable le %q: %v", ln+1, le, err)
			}
			cum, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				t.Fatalf("line %d: unparsable bucket count %q: %v", ln+1, value, err)
			}
			s := buckets[key]
			if s == nil {
				s = &expoSeries{}
				buckets[key] = s
			}
			s.les = append(s.les, bound)
			s.cums = append(s.cums, cum)
		case strings.HasSuffix(metric, "_count"):
			n, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				t.Fatalf("line %d: unparsable count %q: %v", ln+1, value, err)
			}
			counts[key] = n
		}
	}

	for key, s := range buckets {
		last := len(s.les) - 1
		for i := 1; i <= last; i++ {
			if s.les[i] <= s.les[i-1] {
				t.Errorf("series %s: le bounds not increasing at index %d (%g after %g)", key, i, s.les[i], s.les[i-1])
			}
			if s.cums[i] < s.cums[i-1] {
				t.Errorf("series %s: buckets not cumulative at index %d (%d after %d)", key, i, s.cums[i], s.cums[i-1])
			}
		}
		if !strings.Contains(strings.ToLower(strconv.FormatFloat(s.les[last], 'g', -1, 64)), "inf") {
			t.Errorf("series %s: last bucket le=%g, want +Inf", key, s.les[last])
		}
		if n, ok := counts[key]; !ok || n != s.cums[last] {
			t.Errorf("series %s: _count %d != +Inf bucket %d", key, n, s.cums[last])
		}
	}
	return exposition{typeOf: typeOf, buckets: buckets, counts: counts, samples: samples}
}

// requiredFamilies are the metric families every /metrics body must
// expose, with their types.
var requiredFamilies = map[string]string{
	"gapschedd_request_duration_seconds":        "histogram",
	"gapschedd_fragment_solve_duration_seconds": "histogram",
	"gapschedd_queue_wait_seconds":              "histogram",
	"gapschedd_slo_latency_seconds":             "gauge",
	"gapschedd_slo_error_budget_remaining":      "gauge",
	"gapschedd_slo_burn_rate":                   "gauge",
	"gapschedd_slo_degraded":                    "gauge",
	"gapschedd_build_info":                      "gauge",
	"gapschedd_start_time_seconds":              "gauge",
	"gapschedd_go_goroutines":                   "gauge",
	"gapschedd_go_heap_inuse_bytes":             "gauge",
	"gapschedd_go_heap_alloc_bytes":             "gauge",
}

// TestMetricsExpositionStrict drives traffic through every endpoint
// and runs the strict validator over /metrics, then pins the required
// families and per-endpoint series.
func TestMetricsExpositionStrict(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	driveTraffic(t, ts.URL)
	exp := parseExposition(t, fetch(t, ts.URL+"/metrics"))
	typeOf, counts, samples := exp.typeOf, exp.counts, exp.samples

	for family, typ := range requiredFamilies {
		if typeOf[family] != typ {
			t.Errorf("family %q missing or wrong type (TYPE %q, want %q)", family, typeOf[family], typ)
		}
	}
	if len(exp.buckets) == 0 {
		t.Fatal("no histogram series found in exposition")
	}
	// The six instrumented endpoints each report a duration series.
	for _, ep := range []string{"solve", "batch", "session_create", "session_delta", "session_solve", "session_delete"} {
		key := `gapschedd_request_duration_seconds|endpoint="` + ep + `"`
		if n := counts[key]; n == 0 {
			t.Errorf("endpoint %q: no request duration samples (count map %v)", ep, counts[key])
		}
	}
	if counts[`gapschedd_fragment_solve_duration_seconds|backend="dp"`] == 0 {
		t.Error("no dp fragment solve samples after exact-mode traffic")
	}
	// Every instrumented endpoint reports all three SLO quantile gauges.
	for _, ep := range sloEndpointNames {
		for _, q := range []string{"0.5", "0.9", "0.99"} {
			key := `gapschedd_slo_latency_seconds|endpoint="` + ep + `",quantile="` + q + `"`
			if _, ok := samples[key]; !ok {
				t.Errorf("missing SLO latency sample %s", key)
			}
		}
	}
	if v := samples["gapschedd_slo_error_budget_remaining"]; v != "1" {
		t.Errorf("error budget after clean traffic = %q, want 1", v)
	}
	if v := samples["gapschedd_slo_degraded"]; v != "0" {
		t.Errorf("slo_degraded after clean traffic = %q, want 0", v)
	}
	// Vitals: the build-info labels carry a Go version, and the start
	// time is a positive Unix timestamp.
	foundBuild := false
	for key := range samples {
		if strings.HasPrefix(key, "gapschedd_build_info|") && strings.Contains(key, `goversion="go`) {
			foundBuild = true
		}
	}
	if !foundBuild {
		t.Errorf("no build_info sample with a goversion label; samples: %v", samples)
	}
	if v, err := strconv.ParseFloat(samples["gapschedd_start_time_seconds"], 64); err != nil || v <= 0 {
		t.Errorf("start_time_seconds = %q, want positive float", samples["gapschedd_start_time_seconds"])
	}
}

// TestDebugTracesEndpoint checks that a served solve leaves a span
// tree in the debug ring: per-stage spans with backend attribution,
// dispatch attributes, and newest-first ordering.
func TestDebugTracesEndpoint(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	pool := testPool(2)
	for _, req := range pool {
		if got := decodeSolve(t, postJSON(t, ts.URL+"/v1/solve", req)); got.Err != nil {
			t.Fatalf("solve failed: %+v", got.Err)
		}
	}

	var out struct {
		Traces []obs.TraceData `json:"traces"`
	}
	if err := json.Unmarshal([]byte(fetch(t, ts.URL+"/v1/debug/traces")), &out); err != nil {
		t.Fatalf("undecodable traces payload: %v", err)
	}
	if len(out.Traces) < 2 {
		t.Fatalf("got %d traces, want >= 2", len(out.Traces))
	}
	for i := 1; i < len(out.Traces); i++ {
		if out.Traces[i].ID >= out.Traces[i-1].ID {
			t.Errorf("traces not newest-first: id %d before id %d", out.Traces[i-1].ID, out.Traces[i].ID)
		}
	}
	tr := out.Traces[0]
	if tr.Op != "solve" || tr.ID == 0 || tr.Dur <= 0 {
		t.Fatalf("head trace malformed: %+v", tr)
	}
	if tr.Attrs["mode"] == "" || tr.Attrs["requests"] != "1" || tr.Attrs["fragments"] == "" {
		t.Errorf("dispatch attrs missing: %v", tr.Attrs)
	}
	stages := map[string]bool{}
	for _, sp := range tr.Spans {
		stages[sp.Name] = true
		if sp.Name == obs.StageSolve && sp.Backend == "" {
			t.Errorf("solve span without backend: %+v", sp)
		}
		if sp.Dur < 0 || sp.Start < 0 {
			t.Errorf("span with negative timing: %+v", sp)
		}
	}
	for _, want := range []string{obs.StageQueueWait, obs.StagePrep, obs.StageSolve, obs.StageAssemble} {
		if !stages[want] {
			t.Errorf("trace missing %q span; spans: %+v", want, tr.Spans)
		}
	}
}

// TestDebugTracesDisabled: a negative TraceRing turns retention off;
// the endpoint still answers with an empty (non-null) list.
func TestDebugTracesDisabled(t *testing.T) {
	srv := New(Config{TraceRing: -1})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	decodeSolve(t, postJSON(t, ts.URL+"/v1/solve", testPool(1)[0]))

	body := fetch(t, ts.URL+"/v1/debug/traces")
	var out struct {
		Traces []obs.TraceData `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Traces) != 0 {
		t.Fatalf("retention disabled but got %d traces", len(out.Traces))
	}
	if !strings.Contains(body, `"traces":[]`) {
		t.Errorf("want empty list, not null: %s", body)
	}
}

// TestSolveResponseCarriesTimings: both the stateless and the session
// solve paths report per-stage durations on the wire.
func TestSolveResponseCarriesTimings(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	got := decodeSolve(t, postJSON(t, ts.URL+"/v1/solve", testPool(1)[0]))
	if got.Err != nil {
		t.Fatalf("solve failed: %+v", got.Err)
	}
	if got.Timings == nil {
		t.Fatal("solve response has no timings")
	}
	if got.Timings.SolveDPNs <= 0 {
		t.Errorf("exact solve reported no dp time: %+v", got.Timings)
	}
	if got.Timings.AssembleNs <= 0 {
		t.Errorf("no assemble time: %+v", got.Timings)
	}

	_, out := sessionDo(t, "POST", ts.URL+"/v1/session", sched.SessionCreateRequest{
		Objective: sched.WireGaps, Procs: 1,
		Jobs: []sched.Job{{Release: 0, Deadline: 2}, {Release: 10, Deadline: 12}},
	})
	if _, sresp := sessionSolve(t, ts.URL, out.Session); sresp.Timings == nil || sresp.Timings.SolveDPNs <= 0 {
		t.Fatalf("session solve timings missing or empty: %+v", sresp.Timings)
	}
}

// syncBuffer is a goroutine-safe log sink for capturing slog output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestSlowSolveWarningAndRequestLog: with a nanosecond threshold every
// dispatch logs a "slow solve" warning carrying the trace id and the
// aggregated stage breakdown, and each HTTP request logs an info line
// with endpoint and status.
func TestSlowSolveWarningAndRequestLog(t *testing.T) {
	var buf syncBuffer
	srv := New(Config{
		SlowSolve: time.Nanosecond,
		Logger:    slog.New(slog.NewTextHandler(&buf, nil)),
	})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if got := decodeSolve(t, postJSON(t, ts.URL+"/v1/solve", testPool(1)[0])); got.Err != nil {
		t.Fatalf("solve failed: %+v", got.Err)
	}
	// The slow-solve warning is emitted before the outcome is
	// delivered, so it is already visible here.
	out := buf.String()
	for _, want := range []string{`"slow solve"`, "traceId=", "stages=", "op=solve"} {
		if !strings.Contains(out, want) {
			t.Errorf("log output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, obs.StagePrep+"=") || !strings.Contains(out, obs.StageSolve+"[") {
		t.Errorf("stage summary missing prep/solve stages:\n%s", out)
	}
	// The request line lands after the handler returns; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		out = buf.String()
		if strings.Contains(out, "msg=request") && strings.Contains(out, "endpoint=solve") && strings.Contains(out, "status=200") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no request log line:\n%s", out)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
