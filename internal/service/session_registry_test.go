package service

// Registry-level tests that exercise sessionRegistry directly, below
// the HTTP layer: the rejected-create leak regression and the
// lookup/expire/remove race. Both rely on create taking the opener as
// a parameter, so tests can observe every session it opens.

import (
	"errors"
	"sync"
	"testing"
	"time"

	gapsched "repro"
)

// trackingOpener records every session it opens so tests can verify
// none leak: a leaked session is one the registry neither returned to
// the caller nor closed.
type trackingOpener struct {
	mu     sync.Mutex
	opened []*gapsched.Session
}

func (o *trackingOpener) open(procs int) (*gapsched.Session, error) {
	s, err := gapsched.Solver{}.Open(procs)
	if err != nil {
		return nil, err
	}
	o.mu.Lock()
	o.opened = append(o.opened, s)
	o.mu.Unlock()
	return s, nil
}

// closedCount reports how many tracked sessions have been closed,
// probed via the facade's ErrSessionClosed contract.
func (o *trackingOpener) closedCount() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	n := 0
	for _, s := range o.opened {
		if _, err := s.Add(gapsched.Job{Release: 0, Deadline: 1}); errors.Is(err, gapsched.ErrSessionClosed) {
			n++
		}
	}
	return n
}

// TestSessionCreateRejectionClosesSession is the leak regression test:
// with the table full, every rejected create must close the session it
// had already opened. Before the fix, each rejection leaked a live
// gapsched.Session (and its tracker state) with no owner.
func TestSessionCreateRejectionClosesSession(t *testing.T) {
	met := &metrics{}
	r := newSessionRegistry(time.Minute, 2, met)
	defer r.close()
	op := &trackingOpener{}

	// Fill the table to MaxSessions.
	for i := 0; i < 2; i++ {
		if _, _, err := r.create(op.open, solveKey{}, 1); err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
	}

	// Hammer creates beyond the bound, concurrently.
	const rejects = 32
	var wg sync.WaitGroup
	for i := 0; i < rejects; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := r.create(op.open, solveKey{}, 1)
			if !errors.Is(err, errSessionsFull) {
				t.Errorf("over-bound create: %v, want errSessionsFull", err)
			}
		}()
	}
	wg.Wait()

	if got := len(op.opened); got != 2+rejects {
		t.Fatalf("opener called %d times, want %d", got, 2+rejects)
	}
	// Every rejected session must be closed; the two admitted ones live.
	if got := op.closedCount(); got != rejects {
		t.Fatalf("%d sessions closed, want %d (leak: %d live rejected sessions)", got, rejects, rejects-got)
	}
	if r.open() != 2 {
		t.Fatalf("registry holds %d sessions, want 2", r.open())
	}
}

// TestSessionCreateAfterCloseClosesSession: the shutting-down
// rejection path must close the opened session too.
func TestSessionCreateAfterCloseClosesSession(t *testing.T) {
	r := newSessionRegistry(0, 0, &metrics{})
	r.close()
	op := &trackingOpener{}
	if _, _, err := r.create(op.open, solveKey{}, 1); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("create after close: %v, want ErrShuttingDown", err)
	}
	if len(op.opened) != 1 || op.closedCount() != 1 {
		t.Fatalf("opened %d closed %d, want 1/1", len(op.opened), op.closedCount())
	}
}

// TestSessionRegistryLookupExpireRemoveRace hammers lookup (which
// refreshes the TTL clock and may itself expire), the sweeper's
// expireIdle, and remove on the same ids concurrently. Run under
// -race this pins the locking discipline; the postscript checks that
// exactly one holder closed each session (created = closed + expired,
// no double counting).
func TestSessionRegistryLookupExpireRemoveRace(t *testing.T) {
	met := &metrics{}
	// A tiny TTL so lazy expiry and the explicit sweeps really fire.
	r := newSessionRegistry(200*time.Microsecond, 0, met)
	defer r.close()
	op := &trackingOpener{}

	const ids = 8
	var mu sync.Mutex
	live := make([]string, 0, ids)
	spawn := func() {
		id, _, err := r.create(op.open, solveKey{}, 1)
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		mu.Lock()
		live = append(live, id)
		mu.Unlock()
	}
	pick := func(i int) string {
		mu.Lock()
		defer mu.Unlock()
		if len(live) == 0 {
			return ""
		}
		return live[i%len(live)]
	}
	for i := 0; i < ids; i++ {
		spawn()
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	worker := func(fn func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					fn(i)
				}
			}
		}()
	}
	worker(func(i int) { // lookup-refresh (and lazy expiry)
		if id := pick(i); id != "" {
			r.lookup(id)
		}
	})
	worker(func(i int) { // background sweeps far in the future: expire everything idle
		r.expireIdle(time.Now().Add(time.Hour))
	})
	worker(func(i int) { // explicit removal
		if id := pick(i); id != "" {
			r.remove(id)
		}
	})
	worker(func(i int) { // churn replacements so the other workers stay busy
		spawn()
		time.Sleep(100 * time.Microsecond)
	})

	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Drain what's left, then account: every created session must have
	// been closed exactly once, by exactly one of the three holders.
	r.expireIdle(time.Now().Add(time.Hour))
	if n := r.open(); n != 0 {
		t.Fatalf("%d sessions survived the final sweep", n)
	}
	created := met.sessionsCreated.Load()
	closed := met.sessionsClosed.Load() + met.sessionsExpired.Load()
	if created != closed {
		t.Fatalf("created %d sessions, closed+expired %d", created, closed)
	}
	if got := op.closedCount(); int64(got) != created {
		t.Fatalf("%d of %d sessions actually closed", got, created)
	}
}
