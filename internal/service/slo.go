package service

// The live SLO layer: every instrumented request feeds a per-endpoint
// rolling window (latency histogram + request/error counters,
// internal/obs Windowed rings), and an evaluator turns the trailing
// window into sliding p50/p90/p99, an error rate, an error-budget
// burn rate, and an ok|degraded verdict against the configured
// objectives. The verdict is surfaced everywhere an operator looks:
// gauges on /metrics, the JSON snapshot at GET /v1/debug/slo, the
// status field on /healthz, and edge-triggered slog warnings when the
// error budget starts (and stops) burning.

import (
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// sloSubWindows is the ring resolution: the trailing window ages out
// in window/sloSubWindows steps.
const sloSubWindows = 10

// SLO verdict strings, shared by /healthz, /v1/debug/slo and E24.
const (
	SLOStatusOK       = "ok"
	SLOStatusDegraded = "degraded"
)

// sloEndpointNames are the instrumented endpoints tracked per window,
// matching the endpoint labels of gapschedd_request_duration_seconds.
var sloEndpointNames = []string{
	"solve", "batch", "session_create", "session_delta", "session_solve", "session_delete",
}

// sloEndpoint is one endpoint's rolling window.
type sloEndpoint struct {
	lat  *obs.Windowed
	reqs *obs.WindowedCounter
	errs *obs.WindowedCounter
}

// sloTracker owns the per-endpoint windows, the objectives, and the
// burn-warning edge trigger. Built once by New; observe runs on every
// request completion, evaluate on demand (metrics scrape, healthz,
// debug endpoint).
type sloTracker struct {
	p99     time.Duration // target sliding p99; <= 0 disables the latency objective
	errRate float64       // max windowed error fraction; <= 0 disables the error objective
	window  time.Duration
	logger  *slog.Logger
	eps     map[string]*sloEndpoint
	burning atomic.Bool // true while the error budget burns faster than earned
}

func newSLOTracker(p99 time.Duration, errRate float64, window time.Duration, logger *slog.Logger) *sloTracker {
	t := &sloTracker{
		p99:     p99,
		errRate: errRate,
		window:  window,
		logger:  logger,
		eps:     make(map[string]*sloEndpoint, len(sloEndpointNames)),
	}
	for _, name := range sloEndpointNames {
		t.eps[name] = &sloEndpoint{
			lat:  obs.NewWindowed(window, sloSubWindows),
			reqs: obs.NewWindowedCounter(window, sloSubWindows),
			errs: obs.NewWindowedCounter(window, sloSubWindows),
		}
	}
	return t
}

// observe feeds one completed request into its endpoint's window. SLO
// errors are server faults — HTTP 5xx: internal errors, shedding
// (503), and solve deadline cut-offs (504). 4xx responses are the
// client's problem (malformed or infeasible requests) and spend no
// error budget.
func (t *sloTracker) observe(endpoint string, d time.Duration, status int) {
	ep := t.eps[endpoint]
	if ep == nil {
		return
	}
	now := time.Now()
	ep.lat.ObserveAt(now, d)
	ep.reqs.AddAt(now, 1)
	if status >= 500 {
		ep.errs.AddAt(now, 1)
	}
	t.checkBurn(now)
}

// totalsAt sums requests and errors across all endpoint windows.
func (t *sloTracker) totalsAt(now time.Time) (reqs, errs int64) {
	for _, ep := range t.eps {
		reqs += ep.reqs.TotalAt(now)
		errs += ep.errs.TotalAt(now)
	}
	return reqs, errs
}

// burnAt computes the error-budget burn rate over the trailing window:
// windowed error rate divided by the objective. Burn 1.0 spends budget
// exactly as fast as the objective earns it; above 1.0 the budget
// shrinks. Zero when the error objective is disabled or the window is
// empty.
func (t *sloTracker) burnAt(now time.Time) (burn float64, reqs, errs int64) {
	reqs, errs = t.totalsAt(now)
	if t.errRate <= 0 || reqs == 0 {
		return 0, reqs, errs
	}
	return float64(errs) / float64(reqs) / t.errRate, reqs, errs
}

// checkBurn fires the edge-triggered budget-burn log lines: one
// warning when the burn rate crosses above 1, one info line when it
// recovers. The windowed counters bound flapping to the sub-window
// cadence, so the transitions cannot storm the log.
func (t *sloTracker) checkBurn(now time.Time) {
	if t.errRate <= 0 {
		return
	}
	burn, reqs, errs := t.burnAt(now)
	if reqs == 0 {
		return
	}
	burning := burn > 1
	if burning == t.burning.Load() || !t.burning.CompareAndSwap(!burning, burning) {
		return
	}
	args := []any{
		slog.Float64("burnRate", burn),
		slog.Float64("errorRate", float64(errs)/float64(reqs)),
		slog.Float64("objective", t.errRate),
		slog.Int64("windowRequests", reqs),
		slog.Int64("windowErrors", errs),
		slog.Duration("window", t.window),
	}
	if burning {
		t.logger.Warn("slo error budget burning", args...)
	} else {
		t.logger.Info("slo error budget recovered", args...)
	}
}

// SLOReport is the JSON document served by GET /v1/debug/slo: the
// daemon's own view of its trailing-window SLO state.
type SLOReport struct {
	// Status is "ok" or "degraded": degraded when any endpoint breaches
	// an enabled objective, or the overall error budget burns faster
	// than it is earned.
	Status string `json:"status"`
	// WindowSeconds is the trailing window the numbers cover.
	WindowSeconds float64 `json:"windowSeconds"`
	// TargetP99Seconds and TargetErrorRate echo the configured
	// objectives; zero means the objective is disabled.
	TargetP99Seconds float64 `json:"targetP99Seconds"`
	TargetErrorRate  float64 `json:"targetErrorRate"`
	// Requests/Errors/ErrorRate aggregate every tracked endpoint over
	// the window.
	Requests  int64   `json:"requests"`
	Errors    int64   `json:"errors"`
	ErrorRate float64 `json:"errorRate"`
	// ErrorBudgetRemaining is the unspent fraction of the window's
	// error budget (1 − burn rate, floored at 0).
	ErrorBudgetRemaining float64 `json:"errorBudgetRemaining"`
	// BurnRate is windowed error rate over the objective; above 1 the
	// budget is shrinking.
	BurnRate float64 `json:"burnRate"`
	// Endpoints holds the per-endpoint windows.
	Endpoints map[string]SLOEndpoint `json:"endpoints"`
}

// SLOEndpoint is one endpoint's trailing-window summary.
type SLOEndpoint struct {
	Status     string  `json:"status"`
	Requests   int64   `json:"requests"`
	Errors     int64   `json:"errors"`
	ErrorRate  float64 `json:"errorRate"`
	P50Seconds float64 `json:"p50Seconds"`
	P90Seconds float64 `json:"p90Seconds"`
	P99Seconds float64 `json:"p99Seconds"`
}

// evaluate builds the full SLO report for the trailing window ending
// now.
func (t *sloTracker) evaluate(now time.Time) SLOReport {
	rep := SLOReport{
		Status:               SLOStatusOK,
		WindowSeconds:        t.window.Seconds(),
		ErrorBudgetRemaining: 1,
		Endpoints:            make(map[string]SLOEndpoint, len(sloEndpointNames)),
	}
	if t.p99 > 0 {
		rep.TargetP99Seconds = t.p99.Seconds()
	}
	if t.errRate > 0 {
		rep.TargetErrorRate = t.errRate
	}
	for _, name := range sloEndpointNames {
		w := t.eps[name]
		snap := w.lat.SnapshotAt(now)
		ep := SLOEndpoint{
			Status:     SLOStatusOK,
			Requests:   w.reqs.TotalAt(now),
			Errors:     w.errs.TotalAt(now),
			P50Seconds: snap.Quantile(0.5),
			P90Seconds: snap.Quantile(0.9),
			P99Seconds: snap.Quantile(0.99),
		}
		if ep.Requests > 0 {
			ep.ErrorRate = float64(ep.Errors) / float64(ep.Requests)
			if (t.p99 > 0 && ep.P99Seconds > t.p99.Seconds()) ||
				(t.errRate > 0 && ep.ErrorRate > t.errRate) {
				ep.Status = SLOStatusDegraded
				rep.Status = SLOStatusDegraded
			}
		}
		rep.Requests += ep.Requests
		rep.Errors += ep.Errors
		rep.Endpoints[name] = ep
	}
	if rep.Requests > 0 {
		rep.ErrorRate = float64(rep.Errors) / float64(rep.Requests)
	}
	if t.errRate > 0 && rep.Requests > 0 {
		rep.BurnRate = rep.ErrorRate / t.errRate
		rep.ErrorBudgetRemaining = 1 - rep.BurnRate
		if rep.ErrorBudgetRemaining < 0 {
			rep.ErrorBudgetRemaining = 0
		}
		if rep.BurnRate > 1 {
			rep.Status = SLOStatusDegraded
		}
	}
	return rep
}

// writeProm renders the SLO gauge families from one evaluation, so
// /metrics, /healthz and /v1/debug/slo all derive from the same
// arithmetic.
func (t *sloTracker) writeProm(w io.Writer, now time.Time) {
	rep := t.evaluate(now)
	fmt.Fprintf(w, "# HELP gapschedd_slo_latency_seconds Sliding request-latency quantiles over the trailing SLO window, by endpoint.\n"+
		"# TYPE gapschedd_slo_latency_seconds gauge\n")
	quantiles := []struct {
		label string
		pick  func(SLOEndpoint) float64
	}{
		{"0.5", func(e SLOEndpoint) float64 { return e.P50Seconds }},
		{"0.9", func(e SLOEndpoint) float64 { return e.P90Seconds }},
		{"0.99", func(e SLOEndpoint) float64 { return e.P99Seconds }},
	}
	for _, name := range sloEndpointNames {
		ep := rep.Endpoints[name]
		for _, q := range quantiles {
			fmt.Fprintf(w, "gapschedd_slo_latency_seconds{endpoint=%q,quantile=%q} %g\n",
				name, q.label, q.pick(ep))
		}
	}
	fmt.Fprintf(w, "# HELP gapschedd_slo_error_budget_remaining Unspent fraction of the trailing window's error budget (1 when no budget is configured or spent).\n"+
		"# TYPE gapschedd_slo_error_budget_remaining gauge\ngapschedd_slo_error_budget_remaining %g\n",
		rep.ErrorBudgetRemaining)
	fmt.Fprintf(w, "# HELP gapschedd_slo_burn_rate Error-budget burn rate over the trailing window: windowed error rate divided by the objective (above 1 the budget shrinks).\n"+
		"# TYPE gapschedd_slo_burn_rate gauge\ngapschedd_slo_burn_rate %g\n",
		rep.BurnRate)
	degraded := 0
	if rep.Status == SLOStatusDegraded {
		degraded = 1
	}
	fmt.Fprintf(w, "# HELP gapschedd_slo_degraded Whether any SLO objective is currently breached (1 = degraded).\n"+
		"# TYPE gapschedd_slo_degraded gauge\ngapschedd_slo_degraded %d\n", degraded)
}

// handleSLO serves GET /v1/debug/slo.
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.slo.evaluate(time.Now()))
}
