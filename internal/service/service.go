// Package service is the batched scheduling daemon behind
// cmd/gapschedd: an HTTP/JSON front end to the gapsched solving
// pipeline whose core is a request coalescer. Concurrent /v1/solve
// requests are buffered into short time/size windows and dispatched as
// one fragment-level SolveBatch over a persistent shared
// FragmentCache, so independent clients with similar workloads hit
// cached canonical fragments instead of re-solving; responses are
// demultiplexed back per request and are bit-identical to direct
// Solve calls. Endpoints:
//
//	POST   /v1/solve             one sched.SolveRequest  → sched.SolveResponse
//	POST   /v1/batch             one sched.BatchRequest  → sched.BatchResponse
//	POST   /v1/session           open an incremental session (session.go)
//	POST   /v1/session/{id}/delta  apply job add/remove deltas
//	POST   /v1/session/{id}/solve  incremental resolve (dirty fragments only)
//	DELETE /v1/session/{id}      close a session
//	GET    /healthz              liveness probe
//	GET    /metrics              Prometheus text exposition of the counters
//
// The wire format is defined in internal/sched (wire.go); DESIGN.md §2
// describes where this layer sits in the pipeline.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	gapsched "repro"
	"repro/internal/obs"
	"repro/internal/sched"
)

// Defaults applied by New for zero Config fields.
const (
	// DefaultMaxBatch bounds how many requests one coalescing window
	// may accumulate before it dispatches early.
	DefaultMaxBatch = 64
	// DefaultCacheCapacity sizes the shared fragment cache.
	DefaultCacheCapacity = 1 << 16
	// DefaultSessionTTL is how long an idle incremental session lives
	// before eviction reclaims it.
	DefaultSessionTTL = 5 * time.Minute
	// DefaultMaxSessions bounds the session registry.
	DefaultMaxSessions = 1 << 12
	// DefaultSLOLatencyP99 is the default sliding-p99 latency objective.
	DefaultSLOLatencyP99 = time.Second
	// DefaultSLOErrorRate is the default windowed error-rate objective
	// (fraction of requests answered 5xx).
	DefaultSLOErrorRate = 0.01
	// DefaultSLOWindow is the trailing window SLO verdicts cover.
	DefaultSLOWindow = time.Minute
	// maxBodyBytes bounds a request body; a million-job instance is
	// ~30 MB and far beyond what the exact DP should be fed over HTTP.
	maxBodyBytes = 8 << 20
)

// Config tunes a Server. The zero value serves uncoalesced requests
// (no buffering window) through a default-capacity shared cache.
type Config struct {
	// Window is the coalescing window: the first /v1/solve request of
	// a solver configuration opens a window, requests arriving within
	// Window join it, and the whole window dispatches as one
	// SolveBatch. Zero or negative disables coalescing — every request
	// dispatches immediately.
	Window time.Duration
	// MaxBatch dispatches a window early once it holds this many
	// requests (0 = DefaultMaxBatch; 1 effectively disables
	// coalescing).
	MaxBatch int
	// CacheCapacity sizes the persistent shared FragmentCache
	// (0 = DefaultCacheCapacity; negative disables caching).
	CacheCapacity int
	// Workers bounds each dispatch's solver pool (0 = GOMAXPROCS).
	Workers int
	// SolveTimeout is the per-dispatch solve deadline. A dispatch
	// that serves a single request additionally honors that client's
	// request context; dispatches shared by several coalesced
	// requests honor only this timeout. Zero means no deadline.
	SolveTimeout time.Duration
	// SessionTTL is how long an idle /v1/session session survives
	// before it is evicted (0 = DefaultSessionTTL; negative disables
	// expiry). The clock resets on every request that addresses the
	// session.
	SessionTTL time.Duration
	// MaxSessions bounds how many sessions may be open at once
	// (0 = DefaultMaxSessions; negative means unlimited). Creates
	// beyond the bound are rejected as unavailable.
	MaxSessions int
	// Logger receives the daemon's structured logs: per-request lines
	// and slow-solve warnings. Nil discards them.
	Logger *slog.Logger
	// TraceRing sizes the ring of recent solve traces served by
	// /v1/debug/traces (0 = obs.DefaultRingSize; negative disables
	// trace retention — the endpoint then serves an empty list).
	TraceRing int
	// SlowSolve, when positive, logs a warning with the full per-stage
	// breakdown for every dispatch whose solve ran at least this long.
	SlowSolve time.Duration
	// SLOLatencyP99 is the sliding-p99 latency objective evaluated per
	// endpoint over SLOWindow (0 = DefaultSLOLatencyP99; negative
	// disables the latency objective).
	SLOLatencyP99 time.Duration
	// SLOErrorRate is the windowed error-rate objective: the tolerated
	// fraction of requests answered 5xx (0 = DefaultSLOErrorRate;
	// negative disables the error objective and budget accounting).
	SLOErrorRate float64
	// SLOWindow is the trailing window SLO verdicts cover
	// (0 or negative = DefaultSLOWindow).
	SLOWindow time.Duration
}

// Server is the daemon: an http.Handler plus the shared cache, the
// coalescer, and the observability sinks (latency histograms, the
// trace ring, the structured logger). Construct with New; close with
// Close.
type Server struct {
	cfg      Config
	cache    *gapsched.FragmentCache
	co       *coalescer
	sessions *sessionRegistry
	met      metrics
	po       *pipelineObs
	slo      *sloTracker
	reqID    atomic.Uint64
	mux      *http.ServeMux
}

// New builds a Server from cfg, applying the documented defaults.
func New(cfg Config) *Server {
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.CacheCapacity == 0 {
		cfg.CacheCapacity = DefaultCacheCapacity
	}
	if cfg.SessionTTL == 0 {
		cfg.SessionTTL = DefaultSessionTTL
	}
	if cfg.MaxSessions == 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	if cfg.SLOLatencyP99 == 0 {
		cfg.SLOLatencyP99 = DefaultSLOLatencyP99
	}
	if cfg.SLOErrorRate == 0 {
		cfg.SLOErrorRate = DefaultSLOErrorRate
	}
	if cfg.SLOWindow <= 0 {
		cfg.SLOWindow = DefaultSLOWindow
	}
	s := &Server{cfg: cfg, mux: http.NewServeMux()}
	s.slo = newSLOTracker(cfg.SLOLatencyP99, cfg.SLOErrorRate, cfg.SLOWindow, cfg.Logger)
	s.met.start = time.Now()
	if cfg.CacheCapacity > 0 {
		s.cache = gapsched.NewFragmentCache(cfg.CacheCapacity)
	}
	s.po = &pipelineObs{met: &s.met, logger: cfg.Logger, slow: cfg.SlowSolve,
		slowLim: newLogLimiter(slowLogRate, slowLogBurst)}
	if cfg.TraceRing >= 0 {
		s.po.rec = obs.NewRecorder(cfg.TraceRing)
	}
	s.co = newCoalescer(cfg.Window, cfg.MaxBatch, cfg.SolveTimeout, &s.met, s.po, s.solverFor)
	s.sessions = newSessionRegistry(cfg.SessionTTL, cfg.MaxSessions, &s.met)
	s.mux.HandleFunc("POST /v1/solve", s.instrument("solve", &s.met.reqSolve, s.handleSolve))
	s.mux.HandleFunc("POST /v1/batch", s.instrument("batch", &s.met.reqBatch, s.handleBatch))
	s.mux.HandleFunc("POST /v1/session", s.instrument("session_create", &s.met.reqSessionCreate, s.handleSessionCreate))
	s.mux.HandleFunc("POST /v1/session/{id}/delta", s.instrument("session_delta", &s.met.reqSessionDelta, s.handleSessionDelta))
	s.mux.HandleFunc("POST /v1/session/{id}/solve", s.instrument("session_solve", &s.met.reqSessionSolve, s.handleSessionSolve))
	s.mux.HandleFunc("DELETE /v1/session/{id}", s.instrument("session_delete", &s.met.reqSessionDelete, s.handleSessionDelete))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/debug/traces", s.handleTraces)
	s.mux.HandleFunc("GET /v1/debug/slo", s.handleSLO)
	return s
}

// ridKey keys the per-request id in a request context, so the dispatch
// trace of an uncoalesced solve can carry the id of the request it
// served.
type ridKey struct{}

// statusWriter captures the response status for the request log line.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// instrument wraps one endpoint handler with the request-scoped
// observability: a fresh request id threaded through the context, the
// endpoint's end-to-end latency histogram, and one structured log line
// per request (id, endpoint, status, duration).
func (s *Server) instrument(endpoint string, hist *obs.Histogram, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rid := s.reqID.Add(1)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r.WithContext(context.WithValue(r.Context(), ridKey{}, rid)))
		d := time.Since(start)
		hist.Observe(d)
		s.slo.observe(endpoint, d, sw.status)
		s.po.logger.Info("request",
			slog.Uint64("id", rid),
			slog.String("endpoint", endpoint),
			slog.Int("status", sw.status),
			slog.Duration("duration", d))
	}
}

// solverFor binds one solve configuration to the shared pieces.
func (s *Server) solverFor(key solveKey) gapsched.Solver {
	return gapsched.Solver{
		Objective:   key.objective,
		Alpha:       key.alpha,
		Mode:        key.mode,
		StateBudget: key.budget,
		Workers:     s.cfg.Workers,
		Cache:       s.cache,
	}
}

// Close gracefully shuts the solving side down: new requests are
// rejected with ErrShuttingDown, every open coalescing window is
// dispatched so buffered clients still get their answers, all
// in-flight dispatches are waited for, and every open incremental
// session is closed (waiting out in-flight session operations). The
// HTTP listener's lifecycle (http.Server.Shutdown) is the caller's
// concern.
func (s *Server) Close() {
	s.co.close()
	s.sessions.close()
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.met.inflight.Add(1)
	defer s.met.inflight.Add(-1)
	s.mux.ServeHTTP(w, r)
}

// Stats is a point-in-time snapshot of the Server's counters, exposed
// for tests and the experiment harness; /metrics renders the same
// numbers.
type Stats struct {
	SolveRequests, BatchRequests, BatchItems int64
	Dispatches, Coalesced                    int64
	// Session counters: requests to any /v1/session endpoint, deltas
	// applied, incremental solves served, and the registry's lifecycle
	// tallies.
	SessionRequests, SessionDeltas, SessionSolves    int64
	SessionsCreated, SessionsClosed, SessionsExpired int64
	// SessionsOpen is the number of sessions currently live.
	SessionsOpen int
	// ModeSolves counts successfully served solutions by solver mode
	// ("exact", "heuristic", "auto"), across /v1/solve, /v1/batch
	// elements, and session resolves.
	ModeSolves map[string]int64
	// QualityGap is the summed certified optimality gap (cost −
	// lowerBound) over every served solution; exact solves contribute 0.
	QualityGap float64
	// OnlineSolves counts solves served for online (commit-only)
	// sessions; OnlineRatio is the last measured competitive ratio.
	OnlineSolves int64
	OnlineRatio  float64
	// Buffered is the number of requests currently waiting in open
	// coalescing windows.
	Buffered     int
	Errors       map[string]int64
	Cache        gapsched.CacheStats
	CacheEntries int
}

// Stats snapshots the counters.
func (s *Server) Stats() Stats {
	st := Stats{
		SolveRequests:   s.met.solveRequests.Load(),
		BatchRequests:   s.met.batchRequests.Load(),
		BatchItems:      s.met.batchItems.Load(),
		Dispatches:      s.met.dispatches.Load(),
		Coalesced:       s.met.coalesced.Load(),
		SessionRequests: s.met.sessionRequests.Load(),
		SessionDeltas:   s.met.sessionDeltas.Load(),
		SessionSolves:   s.met.sessionSolves.Load(),
		SessionsCreated: s.met.sessionsCreated.Load(),
		SessionsClosed:  s.met.sessionsClosed.Load(),
		SessionsExpired: s.met.sessionsExpired.Load(),
		SessionsOpen:    s.sessions.open(),
		ModeSolves: map[string]int64{
			sched.WireModeExact:     s.met.modeExact.Load(),
			sched.WireModeHeuristic: s.met.modeHeuristic.Load(),
			sched.WireModeAuto:      s.met.modeAuto.Load(),
		},
		QualityGap:   s.met.qualityGapTotal(),
		OnlineSolves: s.met.onlineSolves.Load(),
		OnlineRatio:  s.met.onlineRatioValue(),
		Buffered:     s.co.buffered(),
		Errors: map[string]int64{
			sched.ErrCodeBadRequest:  s.met.errBadRequest.Load(),
			sched.ErrCodeInfeasible:  s.met.errInfeasible.Load(),
			sched.ErrCodeCanceled:    s.met.errCanceled.Load(),
			sched.ErrCodeUnavailable: s.met.errUnavailable.Load(),
			sched.ErrCodeNotFound:    s.met.errNotFound.Load(),
			sched.ErrCodeInternal:    s.met.errInternal.Load(),
		},
	}
	if s.cache != nil {
		st.Cache = s.cache.Stats()
		st.CacheEntries = st.Cache.Entries
	}
	return st
}

// keyFor maps a validated wire request to its solver configuration.
// Fields an objective or mode ignores are dropped from the key — gaps
// requests coalesce regardless of any alpha they happen to carry, and
// only auto-mode requests keep their stateBudget.
func keyFor(req sched.SolveRequest) solveKey {
	key := solveKey{objective: gapsched.ObjectiveGaps}
	if req.Objective == sched.WirePower {
		key.objective, key.alpha = gapsched.ObjectivePower, req.Alpha
	}
	// Validation accepted the request, so the mode name parses.
	key.mode, _ = gapsched.ParseMode(req.Mode)
	if key.mode == gapsched.ModeAuto {
		switch key.budget = req.StateBudget; {
		case key.budget == 0:
			// The solver resolves 0 to the default budget; normalizing
			// here lets explicit-default and zero requests coalesce.
			key.budget = gapsched.DefaultStateBudget
		case key.budget < 0:
			// All negative budgets mean "every fragment heuristic";
			// collapse them onto one sentinel for the same reason.
			key.budget = -1
		}
	}
	return key
}

// wireOutcome converts one solve outcome to its wire form.
func wireOutcome(out outcome) sched.SolveResponse {
	if out.err != nil {
		return sched.SolveResponse{Err: wireError(out.err)}
	}
	sol := out.sol
	return sched.SolveResponse{
		Spans:              sol.Spans,
		Gaps:               sol.Gaps,
		Power:              sol.Power,
		Schedule:           &sol.Schedule,
		States:             sol.States,
		Subinstances:       sol.Subinstances,
		CacheHits:          sol.CacheHits,
		PrunedStates:       sol.PrunedStates,
		ExpandedStates:     sol.ExpandedStates,
		Mode:               sol.Mode.String(),
		LowerBound:         sol.LowerBound,
		HeuristicFragments: sol.HeuristicFragments,
		PolyFragments:      sol.PolyFragments,
		CompetitiveRatio:   sol.CompetitiveRatio,
		CommittedJobs:      sol.CommittedJobs,
		CommittedCost:      sol.CommittedCost,
		Timings: &sched.WireTimings{
			PrepNs:      sol.Timings.Prep.Nanoseconds(),
			CacheNs:     sol.Timings.Cache.Nanoseconds(),
			SolveDPNs:   sol.Timings.SolveDP.Nanoseconds(),
			SolvePolyNs: sol.Timings.SolvePoly.Nanoseconds(),
			SolveHeurNs: sol.Timings.SolveHeur.Nanoseconds(),
			AssembleNs:  sol.Timings.Assemble.Nanoseconds(),
		},
	}
}

// costOf extracts the objective's cost from a solution, for the
// quality-gap accounting.
func costOf(key solveKey, sol gapsched.Solution) float64 {
	return key.objective.Cost(sol)
}

// wireError classifies a solver-side error. Requests are validated
// before they reach the solver, so anything but infeasibility, a
// context cut-off, or a session lifecycle race is an internal fault.
func wireError(err error) *sched.WireError {
	code := sched.ErrCodeInternal
	switch {
	case errors.Is(err, gapsched.ErrInfeasible):
		code = sched.ErrCodeInfeasible
	case errors.Is(err, ErrShuttingDown), errors.Is(err, errSessionsFull):
		code = sched.ErrCodeUnavailable
	case errors.Is(err, gapsched.ErrSessionClosed):
		// The session was deleted or expired between lookup and use.
		code = sched.ErrCodeNotFound
	case errors.Is(err, gapsched.ErrCommitOnly), errors.Is(err, gapsched.ErrReleaseOrder):
		// Online-session contract violations: the request is at fault.
		code = sched.ErrCodeBadRequest
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		code = sched.ErrCodeCanceled
	}
	return &sched.WireError{Code: code, Message: err.Error()}
}

// httpStatus maps a wire error code to the /v1/solve response status.
func httpStatus(code string) int {
	switch code {
	case sched.ErrCodeBadRequest:
		return http.StatusBadRequest
	case sched.ErrCodeInfeasible:
		return http.StatusUnprocessableEntity
	case sched.ErrCodeCanceled:
		return http.StatusGatewayTimeout
	case sched.ErrCodeUnavailable:
		return http.StatusServiceUnavailable
	case sched.ErrCodeNotFound:
		return http.StatusNotFound
	}
	return http.StatusInternalServerError
}

// writeJSON writes one wire value with status code.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeWireError writes an error response, counting it.
func (s *Server) writeWireError(w http.ResponseWriter, we *sched.WireError) {
	s.met.bumpError(we.Code)
	writeJSON(w, httpStatus(we.Code), sched.SolveResponse{Err: we})
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.met.solveRequests.Add(1)
	req, err := sched.DecodeSolveRequest(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		s.writeWireError(w, &sched.WireError{Code: sched.ErrCodeBadRequest, Message: err.Error()})
		return
	}
	key := keyFor(req)
	done, err := s.co.enqueue(r.Context(), key, req.Instance())
	if err != nil {
		s.writeWireError(w, wireError(err))
		return
	}
	select {
	case out := <-done:
		resp := wireOutcome(out)
		if resp.Err != nil {
			s.writeWireError(w, resp.Err)
			return
		}
		s.met.countModeSolve(out.sol, costOf(key, out.sol)-out.sol.LowerBound)
		writeJSON(w, http.StatusOK, resp)
	case <-r.Context().Done():
		// The client is gone; its window still completes for the
		// benefit of coalesced peers (and the done channel is buffered,
		// so the dispatcher never blocks on us).
		s.writeWireError(w, &sched.WireError{Code: sched.ErrCodeCanceled, Message: "request canceled by client"})
	}
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.met.batchRequests.Add(1)
	breq, err := sched.DecodeBatchRequest(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		s.met.bumpError(sched.ErrCodeBadRequest)
		writeJSON(w, http.StatusBadRequest, sched.BatchResponse{
			Err: &sched.WireError{Code: sched.ErrCodeBadRequest, Message: err.Error()},
		})
		return
	}
	s.met.batchItems.Add(int64(len(breq.Requests)))
	// Claiming a dispatch slot ties the batch into the coalescer's
	// lifecycle: Close rejects envelopes arriving after shutdown began
	// and waits for this dispatch like any windowed one.
	if err := s.co.acquire(); err != nil {
		we := wireError(err)
		s.met.bumpError(we.Code)
		writeJSON(w, httpStatus(we.Code), sched.BatchResponse{Err: we})
		return
	}
	defer s.co.release()

	// A client-built batch is already a batch: it bypasses the
	// coalescing window and dispatches immediately, grouped by solver
	// configuration, over the same shared cache. Elements fail
	// independently, mirroring SolveBatch semantics.
	resp := sched.BatchResponse{Responses: make([]sched.SolveResponse, len(breq.Requests))}
	groups := make(map[solveKey][]int)
	for i, req := range breq.Requests {
		if err := req.Validate(); err != nil {
			s.met.bumpError(sched.ErrCodeBadRequest)
			resp.Responses[i] = sched.SolveResponse{
				Err: &sched.WireError{Code: sched.ErrCodeBadRequest, Message: err.Error()},
			}
			continue
		}
		key := keyFor(req)
		groups[key] = append(groups[key], i)
	}
	ctx := r.Context()
	if s.cfg.SolveTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.SolveTimeout)
		defer cancel()
	}
	for key, idxs := range groups {
		ins := make([]gapsched.Instance, len(idxs))
		for j, i := range idxs {
			ins[j] = breq.Requests[i].Instance()
		}
		s.met.dispatches.Add(1)
		// Each configuration group dispatches under its own trace, like
		// a coalesced window (queue waits do not apply — client-built
		// batches never buffer).
		tr := obs.NewTrace("batch")
		tr.SetAttr("mode", key.mode.String())
		tr.SetAttr("requests", strconv.Itoa(len(idxs)))
		if rid, ok := r.Context().Value(ridKey{}).(uint64); ok {
			tr.SetAttr("requestId", strconv.FormatUint(rid, 10))
		}
		var firstErr error
		for j, br := range s.solverFor(key).SolveBatchContext(obs.With(ctx, tr), ins) {
			out := wireOutcome(outcome{sol: br.Solution, err: br.Err})
			if out.Err != nil {
				s.met.bumpError(out.Err.Code)
				if firstErr == nil {
					firstErr = br.Err
				}
			} else {
				s.met.countModeSolve(br.Solution, costOf(key, br.Solution)-br.Solution.LowerBound)
			}
			resp.Responses[idxs[j]] = out
		}
		s.po.finishTrace(tr, firstErr)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz stays a liveness probe — always HTTP 200 — but its
// body carries the SLO verdict, so probes that parse JSON can see
// degradation without scraping /metrics.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{s.slo.evaluate(time.Now()).Status})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.write(w, s.co.buffered(), s.sessions.open(), s.cache)
	s.slo.writeProm(w, time.Now())
}

// handleTraces serves GET /v1/debug/traces: the retained solve traces,
// newest first. With retention disabled (Config.TraceRing < 0) the
// list is empty.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	traces := s.po.rec.Traces()
	if traces == nil {
		traces = []obs.TraceData{}
	}
	writeJSON(w, http.StatusOK, struct {
		Traces []obs.TraceData `json:"traces"`
	}{traces})
}
