package service

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"time"

	gapsched "repro"
	"repro/internal/obs"
)

// ErrShuttingDown is returned to requests that arrive after graceful
// shutdown has begun.
var ErrShuttingDown = errors.New("service: shutting down")

// solveKey identifies one solver configuration. Requests coalesce only
// with requests of the same key, since one SolveBatch call runs under
// one configuration; the fragment cache is still shared across keys
// (its entries are keyed by objective, alpha, and solving tier).
// budget is meaningful only for ModeAuto — keyFor zeroes it for the
// other modes so an irrelevant stateBudget does not fragment the
// coalescing windows.
type solveKey struct {
	objective gapsched.Objective
	alpha     float64
	mode      gapsched.Mode
	budget    int
}

// outcome is one request's terminal result.
type outcome struct {
	sol gapsched.Solution
	err error
}

// pending is one buffered request. done is buffered so a dispatcher
// never blocks on a client that stopped listening; enq timestamps the
// buffering so the dispatch trace can report each request's queue wait.
type pending struct {
	ctx  context.Context
	in   gapsched.Instance
	done chan outcome
	enq  time.Time
}

// coalescer buffers concurrent single-instance requests into short
// time/size windows and dispatches each window as one fragment-level
// SolveBatch over the shared cache, demultiplexing results back per
// request. Independent clients sending similar workloads inside one
// window therefore hit the same canonical fragments — the duplicate-
// heavy batch shape the cache layer was built for — instead of
// re-solving in isolation.
type coalescer struct {
	window   time.Duration // 0 disables buffering: every request dispatches at once
	maxBatch int           // dispatch early once a window holds this many requests
	timeout  time.Duration // per-dispatch solve deadline (0 = none)
	solver   func(solveKey) gapsched.Solver
	met      *metrics
	po       *pipelineObs // sinks for the per-dispatch trace

	mu     sync.Mutex
	groups map[solveKey]*group
	closed bool
	wg     sync.WaitGroup // in-flight dispatch goroutines
}

// group is one open coalescing window.
type group struct {
	reqs  []*pending
	timer *time.Timer
}

func newCoalescer(window time.Duration, maxBatch int, timeout time.Duration, met *metrics, po *pipelineObs, solver func(solveKey) gapsched.Solver) *coalescer {
	return &coalescer{
		window:   window,
		maxBatch: maxBatch,
		timeout:  timeout,
		solver:   solver,
		met:      met,
		po:       po,
		groups:   make(map[solveKey]*group),
	}
}

// enqueue buffers one request and returns the channel its outcome will
// arrive on. ctx is honored whenever the dispatch ends up serving only
// this request — an immediate (uncoalesced) dispatch, or a window that
// closes with no other request in it. A dispatch serving several
// clients is bounded by the coalescer's timeout instead, so one
// disconnecting client cannot cancel its peers' solutions.
func (c *coalescer) enqueue(ctx context.Context, key solveKey, in gapsched.Instance) (<-chan outcome, error) {
	p := &pending{ctx: ctx, in: in, done: make(chan outcome, 1), enq: time.Now()}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrShuttingDown
	}
	if c.window <= 0 || c.maxBatch <= 1 {
		c.wg.Add(1)
		c.mu.Unlock()
		go c.run(key, []*pending{p})
		return p.done, nil
	}
	g := c.groups[key]
	if g == nil {
		g = &group{}
		c.groups[key] = g
		// The window opens when its first request arrives; the timer
		// callback flushes whatever the window accumulated.
		g.timer = time.AfterFunc(c.window, func() { c.flush(key, g) })
	}
	g.reqs = append(g.reqs, p)
	if len(g.reqs) >= c.maxBatch {
		c.detachLocked(key, g)
		reqs := g.reqs
		c.mu.Unlock()
		go c.run(key, reqs)
		return p.done, nil
	}
	c.mu.Unlock()
	return p.done, nil
}

// detachLocked removes g from the open set and claims a dispatch slot.
// Caller holds c.mu and must start run() for g's requests.
func (c *coalescer) detachLocked(key solveKey, g *group) {
	delete(c.groups, key)
	g.timer.Stop()
	c.wg.Add(1)
}

// flush dispatches g when its window timer fires. g may already have
// been dispatched by the size trigger or by Close; the map identity
// check makes the flush idempotent.
func (c *coalescer) flush(key solveKey, g *group) {
	c.mu.Lock()
	if c.groups[key] != g {
		c.mu.Unlock()
		return
	}
	c.detachLocked(key, g)
	reqs := g.reqs
	c.mu.Unlock()
	c.run(key, reqs)
}

// run dispatches one claimed window: a single SolveBatchContext over
// the shared cache, results demultiplexed back per request. The
// caller must have claimed a wg slot (detachLocked or enqueue).
// The dispatch runs under one trace — a coalesced window therefore
// yields one span tree with a queue-wait span per buffered request —
// which feeds the latency histograms and the debug ring on completion.
func (c *coalescer) run(key solveKey, reqs []*pending) {
	defer c.wg.Done()
	tr := obs.NewTrace("solve")
	tr.SetAttr("mode", key.mode.String())
	tr.SetAttr("requests", strconv.Itoa(len(reqs)))
	// Queue waits happened before the dispatch trace began; anchor them
	// at offset zero so span offsets stay non-negative — the duration is
	// the meaningful quantity.
	for _, p := range reqs {
		tr.Span(obs.StageQueueWait, "", tr.Begin(), tr.Begin().Sub(p.enq))
	}
	// A single-request dispatch serves exactly one client, however it
	// got here — immediate, size-triggered, or a timer flush of a
	// window nobody else joined — so that client's ctx can safely
	// govern it. Multi-request dispatches share their solve across
	// clients and rely on the coalescer timeout alone.
	ctx := context.Background()
	if len(reqs) == 1 && reqs[0].ctx != nil {
		ctx = reqs[0].ctx
		if rid, ok := ctx.Value(ridKey{}).(uint64); ok {
			tr.SetAttr("requestId", strconv.FormatUint(rid, 10))
		}
	}
	if c.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	ctx = obs.With(ctx, tr)
	c.met.dispatches.Add(1)
	if len(reqs) > 1 {
		c.met.coalesced.Add(int64(len(reqs)))
	}
	s := c.solver(key)
	// The trace finishes (histograms fed, ring entry added, slow-solve
	// warning logged) before outcomes are delivered, so a client that
	// has its response can already see its dispatch in /v1/debug/traces.
	if len(reqs) == 1 {
		sol, err := s.SolveContext(ctx, reqs[0].in)
		if err == nil {
			tr.SetAttr("fragments", strconv.Itoa(sol.Subinstances))
		}
		c.po.finishTrace(tr, err)
		reqs[0].done <- outcome{sol: sol, err: err}
		return
	}
	ins := make([]gapsched.Instance, len(reqs))
	for i, p := range reqs {
		ins[i] = p.in
	}
	results := s.SolveBatchContext(ctx, ins)
	var firstErr error
	for _, r := range results {
		if r.Err != nil {
			firstErr = r.Err
			break
		}
	}
	c.po.finishTrace(tr, firstErr)
	for i, r := range results {
		reqs[i].done <- outcome{sol: r.Solution, err: r.Err}
	}
}

// acquire claims a dispatch slot for solve work that runs outside the
// coalescing windows (client-built /v1/batch envelopes), so close()
// waits for it and work arriving after shutdown began is rejected —
// the same lifecycle every windowed dispatch gets.
func (c *coalescer) acquire() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrShuttingDown
	}
	c.wg.Add(1)
	return nil
}

// release returns a slot claimed with acquire.
func (c *coalescer) release() { c.wg.Done() }

// buffered returns the number of requests currently waiting in open
// coalescing windows (dispatched requests no longer count).
func (c *coalescer) buffered() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, g := range c.groups {
		n += len(g.reqs)
	}
	return n
}

// close rejects new requests, dispatches every open window so buffered
// clients still get answers, and waits for all in-flight dispatches.
func (c *coalescer) close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.wg.Wait()
		return
	}
	c.closed = true
	type claimed struct {
		key  solveKey
		reqs []*pending
	}
	var flushes []claimed
	for key, g := range c.groups {
		c.detachLocked(key, g)
		flushes = append(flushes, claimed{key, g.reqs})
	}
	c.mu.Unlock()
	for _, f := range flushes {
		go c.run(f.key, f.reqs)
	}
	c.wg.Wait()
}
