package service

// Lifecycle and protocol tests for the stateful /v1/session tier: the
// end-to-end churn path (deltas + incremental solves bit-identical to
// direct solves), TTL expiry, delete-while-solving, graceful shutdown
// with open sessions, and strict-decode rejections.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	gapsched "repro"
	"repro/internal/sched"
)

// sessionDo sends one request to a session endpoint and decodes the
// management-envelope response.
func sessionDo(t *testing.T, method, url string, body any) (int, sched.SessionResponse) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := sched.DecodeSessionResponse(resp.Body)
	if err != nil {
		t.Fatalf("%s %s: undecodable session response: %v", method, url, err)
	}
	return resp.StatusCode, out
}

// sessionSolve posts to a session's solve endpoint and decodes the
// solve-shaped response.
func sessionSolve(t *testing.T, url, id string) (int, sched.SolveResponse) {
	t.Helper()
	resp, err := http.Post(url+"/v1/session/"+id+"/solve", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := sched.DecodeSolveResponse(resp.Body)
	if err != nil {
		t.Fatalf("undecodable session solve response: %v", err)
	}
	return resp.StatusCode, out
}

// TestSessionEndToEndChurn drives a session through create, deltas,
// and solves, checking every served cost against a direct Solve of
// the same snapshot and that steady-state solves reuse all fragments.
func TestSessionEndToEndChurn(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	create := sched.SessionCreateRequest{
		Objective: sched.WirePower, Alpha: 2, Procs: 1,
		Jobs: []sched.Job{{Release: 0, Deadline: 2}, {Release: 20, Deadline: 22}},
	}
	code, out := sessionDo(t, "POST", ts.URL+"/v1/session", create)
	if code != http.StatusOK || out.Session == "" || len(out.JobIDs) != 2 {
		t.Fatalf("create: status %d payload %+v", code, out)
	}
	id := out.Session

	jobs := append([]sched.Job(nil), create.Jobs...)
	checkSolve := func(wantResolved int) sched.SolveResponse {
		t.Helper()
		code, got := sessionSolve(t, ts.URL, id)
		if code != http.StatusOK || got.Err != nil {
			t.Fatalf("solve: status %d err %+v", code, got.Err)
		}
		want, err := (gapsched.Solver{Objective: gapsched.ObjectivePower, Alpha: 2}).
			Solve(gapsched.Instance{Jobs: jobs, Procs: 1})
		if err != nil {
			t.Fatal(err)
		}
		if got.Power != want.Power {
			t.Fatalf("session power %v, direct %v (jobs %v)", got.Power, want.Power, jobs)
		}
		if err := got.Schedule.Validate(sched.Instance{Jobs: jobs, Procs: 1}); err != nil {
			t.Fatalf("served schedule invalid: %v", err)
		}
		if wantResolved >= 0 && got.ResolvedFragments != wantResolved {
			t.Fatalf("resolved %d fragments, want %d (reused %d)", got.ResolvedFragments, wantResolved, got.ReusedFragments)
		}
		return got
	}
	checkSolve(2) // both initial fragments solve

	// Delta: drop the first job, add one next to the second.
	delta := sched.SessionDeltaRequest{
		Add:    []sched.Job{{Release: 21, Deadline: 24}},
		Remove: []int{out.JobIDs[0]},
	}
	code, dout := sessionDo(t, "POST", ts.URL+"/v1/session/"+id+"/delta", delta)
	if code != http.StatusOK || len(dout.JobIDs) != 1 || dout.Jobs != 2 {
		t.Fatalf("delta: status %d payload %+v", code, dout)
	}
	jobs = []sched.Job{{Release: 20, Deadline: 22}, {Release: 21, Deadline: 24}}
	checkSolve(1) // only the touched cluster re-solves
	checkSolve(0) // steady state reuses everything
	sol := checkSolve(0)
	if sol.ReusedFragments != sol.Subinstances {
		t.Fatalf("steady state reused %d of %d fragments", sol.ReusedFragments, sol.Subinstances)
	}

	code, _ = sessionDo(t, "DELETE", ts.URL+"/v1/session/"+id, nil)
	if code != http.StatusOK {
		t.Fatalf("delete: status %d", code)
	}
	if code, got := sessionSolve(t, ts.URL, id); code != http.StatusNotFound || got.Err == nil || got.Err.Code != sched.ErrCodeNotFound {
		t.Fatalf("solve after delete: status %d payload %+v", code, got)
	}

	st := srv.Stats()
	if st.SessionsCreated != 1 || st.SessionsClosed != 1 || st.SessionsOpen != 0 {
		t.Fatalf("session counters: %+v", st)
	}
	if st.SessionDeltas != 1 || st.SessionSolves < 4 {
		t.Fatalf("usage counters: deltas %d solves %d", st.SessionDeltas, st.SessionSolves)
	}
}

// TestSessionDeltaAtomicity: a delta with an unknown removal id must
// reject whole — the session's live set (and its next solve) is
// unchanged, even though the delta also carried valid operations.
func TestSessionDeltaAtomicity(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	_, out := sessionDo(t, "POST", ts.URL+"/v1/session", sched.SessionCreateRequest{
		Jobs: []sched.Job{{Release: 0, Deadline: 3}},
	})
	id := out.Session
	bad := sched.SessionDeltaRequest{
		Add:    []sched.Job{{Release: 50, Deadline: 51}},
		Remove: []int{99},
	}
	code, dout := sessionDo(t, "POST", ts.URL+"/v1/session/"+id+"/delta", bad)
	if code != http.StatusNotFound || dout.Err == nil || dout.Err.Code != sched.ErrCodeNotFound {
		t.Fatalf("bad delta: status %d payload %+v", code, dout)
	}
	if _, got := sessionSolve(t, ts.URL, id); got.Err != nil || got.Spans != 1 || len(got.Schedule.Slots) != 1 {
		t.Fatalf("session mutated by rejected delta: %+v", got)
	}
}

// TestSessionTTLExpiry: an idle session is evicted after the TTL —
// by the background sweeper even without being addressed — and
// addressing it afterwards is not_found; activity resets the clock.
func TestSessionTTLExpiry(t *testing.T) {
	srv := New(Config{SessionTTL: 80 * time.Millisecond})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	_, out := sessionDo(t, "POST", ts.URL+"/v1/session", sched.SessionCreateRequest{
		Jobs: []sched.Job{{Release: 0, Deadline: 2}},
	})
	id := out.Session

	// Keep-alive: touch the session a few times across more than one
	// TTL; the clock must reset each time.
	for i := 0; i < 4; i++ {
		time.Sleep(40 * time.Millisecond)
		if code, got := sessionSolve(t, ts.URL, id); code != http.StatusOK || got.Err != nil {
			t.Fatalf("touch %d: status %d err %+v", i, code, got.Err)
		}
	}

	// Idle past the TTL: the sweeper reclaims it without any request.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().SessionsOpen != 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle session never expired")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := srv.Stats(); st.SessionsExpired != 1 {
		t.Fatalf("SessionsExpired = %d, want 1", st.SessionsExpired)
	}
	if code, got := sessionSolve(t, ts.URL, id); code != http.StatusNotFound || got.Err == nil || got.Err.Code != sched.ErrCodeNotFound {
		t.Fatalf("solve after expiry: status %d payload %+v", code, got)
	}
}

// TestSessionDeleteWhileSolving races DELETE against an in-flight
// solve of a session with plenty of fragments: the solve must either
// complete with a full solution or report the closed session, never
// crash or wedge, and the delete must win the registry.
func TestSessionDeleteWhileSolving(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	create := sched.SessionCreateRequest{Procs: 2}
	for c := 0; c < 40; c++ { // many fragments so the solve has real work
		base := 30 * c
		for k := 0; k < 8; k++ {
			create.Jobs = append(create.Jobs, sched.Job{Release: base + k, Deadline: base + k + 3})
		}
	}
	_, out := sessionDo(t, "POST", ts.URL+"/v1/session", create)
	id := out.Session

	solved := make(chan sched.SolveResponse, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/session/"+id+"/solve", "application/json", nil)
		if err != nil {
			solved <- sched.SolveResponse{Err: &sched.WireError{Code: sched.ErrCodeInternal, Message: err.Error()}}
			return
		}
		defer resp.Body.Close()
		got, err := sched.DecodeSolveResponse(resp.Body)
		if err != nil {
			solved <- sched.SolveResponse{Err: &sched.WireError{Code: sched.ErrCodeInternal, Message: err.Error()}}
			return
		}
		solved <- got
	}()
	code, _ := sessionDo(t, "DELETE", ts.URL+"/v1/session/"+id, nil)
	if code != http.StatusOK {
		t.Fatalf("delete: status %d", code)
	}
	select {
	case got := <-solved:
		// Both outcomes are legal depending on who won the race; a
		// success must be a complete solution.
		if got.Err == nil {
			if len(got.Schedule.Slots) != len(create.Jobs) {
				t.Fatalf("racing solve returned a partial schedule: %d slots", len(got.Schedule.Slots))
			}
		} else if got.Err.Code != sched.ErrCodeNotFound {
			t.Fatalf("racing solve failed with %+v", got.Err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("solve wedged behind delete")
	}
	if st := srv.Stats(); st.SessionsOpen != 0 {
		t.Fatalf("session survived delete: %+v", st)
	}
}

// TestSessionShutdownWithOpenSessions: Close with live sessions shuts
// them down and rejects later session traffic as unavailable, while
// in-flight session operations complete.
func TestSessionShutdownWithOpenSessions(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var ids []string
	for i := 0; i < 3; i++ {
		_, out := sessionDo(t, "POST", ts.URL+"/v1/session", sched.SessionCreateRequest{
			Jobs: []sched.Job{{Release: i * 10, Deadline: i*10 + 2}},
		})
		ids = append(ids, out.Session)
	}
	srv.Close()

	st := srv.Stats()
	if st.SessionsOpen != 0 || st.SessionsClosed != 3 {
		t.Fatalf("after shutdown: %d open, %d closed; want 0/3", st.SessionsOpen, st.SessionsClosed)
	}
	code, out := sessionDo(t, "POST", ts.URL+"/v1/session", sched.SessionCreateRequest{Jobs: []sched.Job{{Release: 0, Deadline: 1}}})
	if code != http.StatusServiceUnavailable || out.Err == nil || out.Err.Code != sched.ErrCodeUnavailable {
		t.Fatalf("create after shutdown: status %d payload %+v", code, out)
	}
	// Old ids are gone, reported with the session error shape.
	if code, got := sessionSolve(t, ts.URL, ids[0]); code != http.StatusNotFound || got.Err == nil {
		t.Fatalf("solve after shutdown: status %d payload %+v", code, got)
	}
}

// TestSessionMaxSessions: creates beyond the bound are rejected as
// unavailable until a session frees a slot.
func TestSessionMaxSessions(t *testing.T) {
	srv := New(Config{MaxSessions: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var ids []string
	for i := 0; i < 2; i++ {
		code, out := sessionDo(t, "POST", ts.URL+"/v1/session", sched.SessionCreateRequest{})
		if code != http.StatusOK {
			t.Fatalf("create %d: status %d", i, code)
		}
		ids = append(ids, out.Session)
	}
	code, out := sessionDo(t, "POST", ts.URL+"/v1/session", sched.SessionCreateRequest{})
	if code != http.StatusServiceUnavailable || out.Err == nil || out.Err.Code != sched.ErrCodeUnavailable {
		t.Fatalf("create beyond bound: status %d payload %+v", code, out)
	}
	sessionDo(t, "DELETE", ts.URL+"/v1/session/"+ids[0], nil)
	if code, _ := sessionDo(t, "POST", ts.URL+"/v1/session", sched.SessionCreateRequest{}); code != http.StatusOK {
		t.Fatalf("create after free: status %d", code)
	}
}

// TestSessionStrictDecodeRejections: malformed /v1/session payloads
// come back 400 with bad_request in the session envelope — unknown
// fields, bad windows, empty deltas, duplicate removals, trailing
// garbage, and non-JSON all included.
func TestSessionStrictDecodeRejections(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	_, out := sessionDo(t, "POST", ts.URL+"/v1/session", sched.SessionCreateRequest{})
	id := out.Session

	cases := []struct{ name, url, body string }{
		{"create unknown field", "/v1/session", `{"ttl":30}`},
		{"create bad window", "/v1/session", `{"jobs":[{"release":5,"deadline":1}]}`},
		{"create bad objective", "/v1/session", `{"objective":"speed"}`},
		{"create negative alpha", "/v1/session", `{"alpha":-1}`},
		{"create trailing garbage", "/v1/session", `{} {}`},
		{"create not json", "/v1/session", `nope`},
		{"delta empty", "/v1/session/" + id + "/delta", `{}`},
		{"delta unknown field", "/v1/session/" + id + "/delta", `{"drop":[1]}`},
		{"delta bad window", "/v1/session/" + id + "/delta", `{"add":[{"release":5,"deadline":1}]}`},
		{"delta duplicate removal", "/v1/session/" + id + "/delta", `{"remove":[1,1]}`},
		{"delta not json", "/v1/session/" + id + "/delta", `{"add": nope`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+tc.url, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		got, derr := sched.DecodeSessionResponse(resp.Body)
		resp.Body.Close()
		if derr != nil {
			t.Fatalf("%s: error payload not decodable: %v", tc.name, derr)
		}
		if resp.StatusCode != http.StatusBadRequest || got.Err == nil || got.Err.Code != sched.ErrCodeBadRequest {
			t.Errorf("%s: status %d payload %+v, want 400 bad_request", tc.name, resp.StatusCode, got)
		}
	}
	// The target session must be untouched by all of the rejects.
	if _, got := sessionSolve(t, ts.URL, id); got.Err != nil || got.Spans != 0 {
		t.Fatalf("session mutated by rejected payloads: %+v", got)
	}
}

// TestSessionMetricsExposition: the /metrics page carries the session
// series.
func TestSessionMetricsExposition(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	_, out := sessionDo(t, "POST", ts.URL+"/v1/session", sched.SessionCreateRequest{
		Jobs: []sched.Job{{Release: 0, Deadline: 2}},
	})
	sessionSolve(t, ts.URL, out.Session)
	sessionDo(t, "POST", ts.URL+"/v1/session/"+out.Session+"/delta", sched.SessionDeltaRequest{Add: []sched.Job{{Release: 9, Deadline: 11}}})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	body := buf.String()
	for _, series := range []string{
		`gapschedd_requests_total{endpoint="session"} 3`,
		`gapschedd_session_events_total{event="created"} 1`,
		`gapschedd_session_events_total{event="solve"} 1`,
		`gapschedd_session_events_total{event="delta"} 1`,
		"gapschedd_sessions_open 1",
		`gapschedd_errors_total{code="not_found"}`,
	} {
		if !strings.Contains(body, series) {
			t.Errorf("metrics output missing %q:\n%s", series, body)
		}
	}
}

// TestSessionSharesFragmentCacheWithSolve: a fragment solved through
// /v1/solve is a cache hit for a session solving the same canonical
// fragment, certifying the shared-cache wiring end to end.
func TestSessionSharesFragmentCacheWithSolve(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	jobs := []sched.Job{{Release: 0, Deadline: 2}, {Release: 1, Deadline: 4}}
	decodeSolve(t, postJSON(t, ts.URL+"/v1/solve", sched.SolveRequest{Jobs: jobs}))

	// Same windows shifted in absolute time: canonically identical.
	shifted := []sched.Job{{Release: 1000, Deadline: 1002}, {Release: 1001, Deadline: 1004}}
	_, out := sessionDo(t, "POST", ts.URL+"/v1/session", sched.SessionCreateRequest{Jobs: shifted})
	if _, got := sessionSolve(t, ts.URL, out.Session); got.Err != nil || got.CacheHits != 1 {
		t.Fatalf("session solve: %+v, want 1 cache hit from the /v1/solve fragment", got)
	}
}

// sessionDoRaw issues a request with an arbitrary method for path
// coverage of the router itself.
func TestSessionMethodNotAllowed(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/session", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/session: status %d, want 405", resp.StatusCode)
	}
}
