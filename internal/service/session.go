package service

// The daemon's stateful tier: a registry of incremental scheduling
// sessions (gapsched.Session) addressed by id over the /v1/session
// endpoints. Sessions hold cross-request state — a live job set and
// its solved fragment decomposition — so the registry bounds them
// (MaxSessions), expires the idle ones (SessionTTL, enforced lazily on
// access and by a background sweeper), and closes every survivor on
// graceful shutdown. Session fragment solves run over the same shared
// FragmentCache as the one-shot endpoints, so a fragment solved for a
// coalesced batch is a session cache hit and vice versa.
//
//	POST   /v1/session             sched.SessionCreateRequest → sched.SessionResponse
//	POST   /v1/session/{id}/delta  sched.SessionDeltaRequest  → sched.SessionResponse
//	POST   /v1/session/{id}/solve  (no body)                  → sched.SolveResponse
//	DELETE /v1/session/{id}                                   → sched.SessionResponse

import (
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	gapsched "repro"
	"repro/internal/obs"
	"repro/internal/sched"
)

// errSessionsFull rejects creates once MaxSessions sessions are open;
// it maps to the unavailable wire code (retry later or elsewhere).
var errSessionsFull = errors.New("service: session table full")

// sessionEntry is one live session plus its bookkeeping. ops
// serializes whole endpoint operations (a delta's validate+apply, a
// solve) so deltas are atomic even though the facade Session also
// locks per call.
type sessionEntry struct {
	ops      sync.Mutex
	sess     *gapsched.Session
	key      solveKey
	lastUsed time.Time // guarded by the registry mutex
}

// sessionRegistry owns the id → session table, TTL eviction, and the
// shutdown sweep.
type sessionRegistry struct {
	ttl time.Duration // ≤ 0 disables expiry
	max int
	met *metrics

	mu     sync.Mutex
	byID   map[string]*sessionEntry
	nextID int64
	closed bool
	stop   chan struct{}
	done   chan struct{}
}

func newSessionRegistry(ttl time.Duration, max int, met *metrics) *sessionRegistry {
	r := &sessionRegistry{
		ttl:  ttl,
		max:  max,
		met:  met,
		byID: make(map[string]*sessionEntry),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	if ttl > 0 {
		go r.sweep()
	} else {
		close(r.done)
	}
	return r
}

// sweep expires idle sessions in the background, often enough that an
// abandoned session outlives its TTL by at most ~half a TTL. Lazy
// expiry on access keeps the TTL exact for addressed sessions; the
// sweeper is what reclaims the never-addressed ones.
func (r *sessionRegistry) sweep() {
	defer close(r.done)
	interval := max(r.ttl/2, 10*time.Millisecond)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			return
		case now := <-ticker.C:
			r.expireIdle(now)
		}
	}
}

// expireIdle closes every session idle past the TTL.
func (r *sessionRegistry) expireIdle(now time.Time) {
	var victims []*sessionEntry
	r.mu.Lock()
	for id, e := range r.byID {
		if now.Sub(e.lastUsed) > r.ttl {
			delete(r.byID, id)
			victims = append(victims, e)
		}
	}
	r.mu.Unlock()
	for _, e := range victims {
		e.sess.Close()
		r.met.sessionsExpired.Add(1)
	}
}

// create opens a session via open and registers it. The session is
// opened before taking the lock (opening validates configuration and
// may allocate), so on the rejection paths — registry shutting down,
// table full — the freshly opened session must be closed before
// returning, or every rejected create would leak a live
// gapsched.Session.
func (r *sessionRegistry) create(open func(procs int) (*gapsched.Session, error), key solveKey, procs int) (string, *sessionEntry, error) {
	sess, err := open(procs)
	if err != nil {
		return "", nil, err
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		sess.Close()
		return "", nil, ErrShuttingDown
	}
	if r.max > 0 && len(r.byID) >= r.max {
		n := len(r.byID)
		r.mu.Unlock()
		sess.Close()
		return "", nil, fmt.Errorf("%w: %d sessions open", errSessionsFull, n)
	}
	r.nextID++
	id := "s" + strconv.FormatInt(r.nextID, 10)
	r.byID[id] = &sessionEntry{sess: sess, key: key, lastUsed: time.Now()}
	r.met.sessionsCreated.Add(1)
	e := r.byID[id]
	r.mu.Unlock()
	return id, e, nil
}

// lookup returns the live entry for id, refreshing its TTL clock. A
// session idle past the TTL is expired on the spot and reported as
// missing, so expiry does not depend on sweeper timing.
func (r *sessionRegistry) lookup(id string) (*sessionEntry, bool) {
	now := time.Now()
	r.mu.Lock()
	e, ok := r.byID[id]
	if ok && r.ttl > 0 && now.Sub(e.lastUsed) > r.ttl {
		delete(r.byID, id)
		r.mu.Unlock()
		e.sess.Close()
		r.met.sessionsExpired.Add(1)
		return nil, false
	}
	if ok {
		e.lastUsed = now
	}
	r.mu.Unlock()
	return e, ok
}

// remove deletes id from the table and closes its session. Closing
// waits for an in-flight operation on the session to finish, so
// delete-while-solving is safe: the solve completes with its result,
// later operations see a missing session.
func (r *sessionRegistry) remove(id string) bool {
	r.mu.Lock()
	e, ok := r.byID[id]
	delete(r.byID, id)
	r.mu.Unlock()
	if !ok {
		return false
	}
	e.sess.Close()
	r.met.sessionsClosed.Add(1)
	return true
}

// open returns the number of live sessions.
func (r *sessionRegistry) open() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.byID)
}

// close rejects new sessions, stops the sweeper, and closes every open
// session (waiting out their in-flight operations) — the registry's
// share of graceful shutdown.
func (r *sessionRegistry) close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		<-r.done
		return
	}
	r.closed = true
	victims := make([]*sessionEntry, 0, len(r.byID))
	for id, e := range r.byID {
		delete(r.byID, id)
		victims = append(victims, e)
	}
	r.mu.Unlock()
	close(r.stop)
	for _, e := range victims {
		e.sess.Close()
		r.met.sessionsClosed.Add(1)
	}
	<-r.done
}

// handleSessionCreate serves POST /v1/session.
func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	s.met.sessionRequests.Add(1)
	req, err := sched.DecodeSessionCreateRequest(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		s.writeSessionError(w, &sched.WireError{Code: sched.ErrCodeBadRequest, Message: err.Error()})
		return
	}
	key := keyFor(sched.SolveRequest{Objective: req.Objective, Alpha: req.Alpha, Mode: req.Mode, StateBudget: req.StateBudget})
	procs := req.Procs
	if procs == 0 {
		procs = 1
	}
	if req.Online {
		if err := orderedArrivals(req.Jobs, math.MinInt); err != nil {
			s.writeSessionError(w, wireError(err))
			return
		}
	}
	solver := s.solverFor(key)
	open := solver.Open
	if req.Online {
		open = solver.OpenOnline
	}
	id, e, err := s.sessions.create(open, key, procs)
	if err != nil {
		s.writeSessionError(w, wireError(err))
		return
	}
	resp := sched.SessionResponse{Session: id, Jobs: len(req.Jobs)}
	e.ops.Lock()
	for _, j := range req.Jobs {
		jid, err := e.sess.Add(j)
		if err != nil {
			// Unreachable after wire validation and the arrival-order
			// pre-check; fail the create whole.
			e.ops.Unlock()
			s.sessions.remove(id)
			s.writeSessionError(w, wireError(err))
			return
		}
		resp.JobIDs = append(resp.JobIDs, jid)
	}
	e.ops.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// orderedArrivals rejects job lists an online session cannot admit:
// arrivals must carry non-decreasing releases, starting no earlier
// than the session's watermark. Checking up front keeps creates and
// deltas atomic — nothing is admitted from a rejected list.
func orderedArrivals(jobs []sched.Job, watermark int) error {
	prev := watermark
	for i, j := range jobs {
		if j.Release < prev {
			return fmt.Errorf("%w: job %d [%d,%d] arrives after time %d", gapsched.ErrReleaseOrder, i, j.Release, j.Deadline, prev)
		}
		prev = j.Release
	}
	return nil
}

// handleSessionDelta serves POST /v1/session/{id}/delta. The delta is
// atomic: every removal id is verified against the live session before
// any mutation, so a not_found delta leaves the session untouched.
func (s *Server) handleSessionDelta(w http.ResponseWriter, r *http.Request) {
	s.met.sessionRequests.Add(1)
	id := r.PathValue("id")
	req, err := sched.DecodeSessionDeltaRequest(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		s.writeSessionError(w, &sched.WireError{Code: sched.ErrCodeBadRequest, Message: err.Error()})
		return
	}
	e, ok := s.sessions.lookup(id)
	if !ok {
		s.writeSessionError(w, noSession(id))
		return
	}
	e.ops.Lock()
	defer e.ops.Unlock()
	if wm, online := e.sess.Online(); online {
		// Commit-only sessions: reject removals and out-of-order
		// arrivals before mutating anything, keeping the delta atomic.
		if len(req.Remove) > 0 {
			s.writeSessionError(w, wireError(gapsched.ErrCommitOnly))
			return
		}
		if err := orderedArrivals(req.Add, wm); err != nil {
			s.writeSessionError(w, wireError(err))
			return
		}
	}
	for _, jid := range req.Remove {
		if _, live := e.sess.Job(jid); !live {
			s.writeSessionError(w, &sched.WireError{
				Code:    sched.ErrCodeNotFound,
				Message: fmt.Sprintf("session %s has no job %d", id, jid),
			})
			return
		}
	}
	resp := sched.SessionResponse{Session: id}
	for _, jid := range req.Remove {
		if err := e.sess.Remove(jid); err != nil {
			s.writeSessionError(w, wireError(err))
			return
		}
	}
	for _, j := range req.Add {
		jid, err := e.sess.Add(j)
		if err != nil {
			s.writeSessionError(w, wireError(err))
			return
		}
		resp.JobIDs = append(resp.JobIDs, jid)
	}
	s.met.sessionDeltas.Add(1)
	resp.Jobs = e.sess.Len()
	writeJSON(w, http.StatusOK, resp)
}

// handleSessionSolve serves POST /v1/session/{id}/solve: an
// incremental resolve, answered in the same wire shape as /v1/solve
// plus the resolved/reused fragment counters.
func (s *Server) handleSessionSolve(w http.ResponseWriter, r *http.Request) {
	s.met.sessionRequests.Add(1)
	id := r.PathValue("id")
	e, ok := s.sessions.lookup(id)
	if !ok {
		s.writeWireError(w, noSession(id))
		return
	}
	// Each resolve runs under its own trace: the facade records a span
	// per re-solved fragment, which feeds the per-backend histograms
	// and the debug ring like any one-shot dispatch.
	tr := obs.NewTrace("session_solve")
	tr.SetAttr("session", id)
	if rid, ok := r.Context().Value(ridKey{}).(uint64); ok {
		tr.SetAttr("requestId", strconv.FormatUint(rid, 10))
	}
	e.ops.Lock()
	sol, err := e.sess.ResolveContext(obs.With(r.Context(), tr))
	e.ops.Unlock()
	if err == nil {
		tr.SetAttr("resolved", strconv.Itoa(sol.ResolvedFragments))
		tr.SetAttr("reused", strconv.Itoa(sol.ReusedFragments))
	}
	s.po.finishTrace(tr, err)
	if err != nil {
		s.writeWireError(w, wireError(err))
		return
	}
	s.met.sessionSolves.Add(1)
	s.met.countModeSolve(sol, costOf(e.key, sol)-sol.LowerBound)
	if sol.CompetitiveRatio > 0 {
		s.met.observeOnlineRatio(sol.CompetitiveRatio)
	}
	resp := wireOutcome(outcome{sol: sol})
	resp.ResolvedFragments = sol.ResolvedFragments
	resp.ReusedFragments = sol.ReusedFragments
	writeJSON(w, http.StatusOK, resp)
}

// handleSessionDelete serves DELETE /v1/session/{id}.
func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	s.met.sessionRequests.Add(1)
	id := r.PathValue("id")
	if !s.sessions.remove(id) {
		s.writeSessionError(w, noSession(id))
		return
	}
	writeJSON(w, http.StatusOK, sched.SessionResponse{Session: id})
}

// noSession is the uniform unknown-session error payload.
func noSession(id string) *sched.WireError {
	return &sched.WireError{Code: sched.ErrCodeNotFound, Message: fmt.Sprintf("no session %q (deleted or expired)", id)}
}

// writeSessionError writes a session-management error envelope,
// counting it.
func (s *Server) writeSessionError(w http.ResponseWriter, we *sched.WireError) {
	s.met.bumpError(we.Code)
	writeJSON(w, httpStatus(we.Code), sched.SessionResponse{Err: we})
}
