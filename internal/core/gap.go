package core

import (
	"repro/internal/feas"
	"repro/internal/sched"
)

// gapResult is one memo entry of the gap DP: the optimal cost of a state
// plus the choice that attains it, for reconstruction.
type gapResult struct {
	cost   int
	choice int8
	tp     int32 // j_k's time for choiceB
	lp     int8  // left child's own level at t′ (choiceB, t′ > t1)
	lpp    int8  // right child's level at t′+1 (choiceB)
}

type gapSolver struct {
	*base
	memo map[state]gapResult
}

// Options tunes the gap DP for ablation experiments (E15). The zero
// value is the production configuration.
type Options struct {
	// FullGrid replaces the anchor candidate grid (release/deadline
	// neighbourhoods, Baptiste's Prop 2.1) with every integer time of
	// the horizon. The optimum is unchanged; the state count grows.
	FullGrid bool
}

// SolveGaps computes an optimal minimum-wake-up schedule for a
// one-interval p-processor instance (Theorem 1). It returns
// ErrInfeasible when no feasible schedule exists.
func SolveGaps(in sched.Instance) (Result, error) {
	return SolveGapsOpt(in, Options{})
}

// SolveGapsOpt is SolveGaps with explicit tuning options.
func SolveGapsOpt(in sched.Instance, opts Options) (Result, error) {
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	n := len(in.Jobs)
	if n == 0 {
		return Result{Schedule: sched.Schedule{Procs: in.Procs}}, nil
	}
	if !feas.FeasibleOneInterval(in) {
		return Result{}, ErrInfeasible
	}
	b := newBase(in)
	if opts.FullGrid {
		lo, hi := in.TimeHorizon()
		b.grid = make([]int, 0, hi-lo+1)
		for t := lo; t <= hi; t++ {
			b.grid = append(b.grid, t)
		}
	}
	s := &gapSolver{base: b, memo: make(map[state]gapResult)}
	tStart := s.grid[0] - 1
	tEnd := s.grid[len(s.grid)-1] + 1
	root := mkState(tStart, tEnd, n, 0, 0, 0)
	cost := s.dp(root)
	if cost >= infCost {
		// Cannot happen after the Hall pre-check; defensive.
		return Result{}, ErrInfeasible
	}
	placed := make(map[int]int, n)
	s.rebuild(root, placed)
	schedule, err := assemble(n, in.Procs, placed)
	if err != nil {
		return Result{}, err
	}
	if err := schedule.Validate(in); err != nil {
		return Result{}, err
	}
	return Result{
		Spans:    cost,
		Gaps:     cost - 1,
		Schedule: schedule,
		States:   len(s.memo),
	}, nil
}

// dp returns the minimum Σ_{u ∈ (t1, t2]} (l_u − l_{u−1})_+ over feasible
// completions of the state, or infCost.
func (s *gapSolver) dp(st state) int {
	if r, ok := s.memo[st]; ok {
		return r.cost
	}
	r := s.compute(st)
	s.memo[st] = r
	return r.cost
}

func (s *gapSolver) compute(st state) gapResult {
	t1, t2 := int(st.t1), int(st.t2)
	k, l1, l2, c2 := int(st.k), int(st.l1), int(st.l2), int(st.c2)
	inf := gapResult{cost: infCost, choice: choiceNone}

	if l1 < 0 || l2 < 0 || c2 < 0 || l1 > s.p || l2+c2 > s.p {
		return inf
	}

	// Base: no own jobs. All own levels are zero; the c2 context jobs at
	// t2 start c2 fresh spans when the interval has interior width.
	if k == 0 {
		if l1 != 0 || l2 != 0 {
			return inf
		}
		cost := 0
		if t2 > t1 {
			cost = c2
		}
		return gapResult{cost: cost, choice: choiceEmpty}
	}

	list := s.list(t1, t2)
	if k > len(list) {
		return inf
	}

	// Base: single time unit. All k own jobs execute at t1 = t2.
	if t1 == t2 {
		if l1 != k || l2 != k || k+c2 > s.p {
			return inf
		}
		return gapResult{cost: 0, choice: choicePoint}
	}

	jk := list[k-1]
	job := s.jobs[jk]
	best := inf

	// Case A: j_k at t′ = t2, joining the context stack.
	if l2 >= 1 && job.Deadline >= t2 {
		if c := s.dp(mkState(t1, t2, k-1, l1, l2-1, c2+1)); c < best.cost {
			best = gapResult{cost: c, choice: choiceA}
		}
	}

	// Case B: j_k at a grid time t′ with t1 ≤ t′ < t2.
	lo := job.Release
	if lo < t1 {
		lo = t1
	}
	hi := job.Deadline
	if hi > t2-1 {
		hi = t2 - 1
	}
	for _, tp := range s.gridIn(lo, hi) {
		i := pendingAfter(s.jobs, list, k, tp)
		kL := k - 1 - i

		// The true level at t′+1 is the right child's own level plus,
		// when t′+1 = t2, the context jobs stacked there by ancestors.
		ctxAtNext := 0
		if tp+1 == t2 {
			ctxAtNext = c2
		}

		if tp == t1 {
			// j_k and the kL left jobs all sit at t1; the left child is
			// the single-point base with j_k as context.
			if l1 != kL+1 {
				continue
			}
			left := s.dp(mkState(t1, t1, kL, kL, kL, 1))
			if left >= infCost {
				continue
			}
			for lpp := 0; lpp <= s.p; lpp++ {
				right := s.dp(mkState(t1+1, t2, i, lpp, l2, c2))
				if right >= infCost {
					continue
				}
				boundary := lpp + ctxAtNext - l1
				if boundary < 0 {
					boundary = 0
				}
				if c := left + boundary + right; c < best.cost {
					best = gapResult{cost: c, choice: choiceB, tp: int32(tp), lp: int8(-1), lpp: int8(lpp)}
				}
			}
			continue
		}

		for lp := 0; lp <= s.p-1; lp++ { // left child's own level at t′; +1 for j_k ≤ p
			left := s.dp(mkState(t1, tp, kL, l1, lp, 1))
			if left >= infCost {
				continue
			}
			for lpp := 0; lpp <= s.p; lpp++ {
				right := s.dp(mkState(tp+1, t2, i, lpp, l2, c2))
				if right >= infCost {
					continue
				}
				boundary := lpp + ctxAtNext - (lp + 1)
				if boundary < 0 {
					boundary = 0
				}
				if c := left + boundary + right; c < best.cost {
					best = gapResult{cost: c, choice: choiceB, tp: int32(tp), lp: int8(lp), lpp: int8(lpp)}
				}
			}
		}
	}
	return best
}

// rebuild replays the recorded choices, recording job→time placements.
func (s *gapSolver) rebuild(st state, placed map[int]int) {
	r, ok := s.memo[st]
	if !ok || r.choice == choiceNone {
		return
	}
	t1, t2 := int(st.t1), int(st.t2)
	k := int(st.k)
	switch r.choice {
	case choiceEmpty:
		return
	case choicePoint:
		for _, j := range s.list(t1, t2)[:k] {
			placed[j] = t1
		}
	case choiceA:
		jk := s.list(t1, t2)[k-1]
		placed[jk] = t2
		s.rebuild(mkState(t1, t2, k-1, int(st.l1), int(st.l2)-1, int(st.c2)+1), placed)
	case choiceB:
		list := s.list(t1, t2)
		jk := list[k-1]
		tp := int(r.tp)
		placed[jk] = tp
		i := pendingAfter(s.jobs, list, k, tp)
		kL := k - 1 - i
		if tp == t1 {
			s.rebuild(mkState(t1, t1, kL, kL, kL, 1), placed)
		} else {
			s.rebuild(mkState(t1, tp, kL, int(st.l1), int(r.lp), 1), placed)
		}
		s.rebuild(mkState(tp+1, t2, i, int(r.lpp), int(st.l2), int(st.c2)), placed)
	}
}
