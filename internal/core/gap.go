package core

import (
	"math"

	"repro/internal/feas"
	"repro/internal/heur"
	"repro/internal/sched"
)

// gapModel plugs the span-count objective (Theorem 1) into the shared
// engine. Levels are busy-processor counts: l1/l2 count the subproblem's
// own jobs at the boundaries, and the c2 context jobs stack on top of
// l2, so l2 + c2 is the true profile height at t2. The cost of a state
// is Σ_{u ∈ (t1, t2]} (l_u − l_{u−1})_+, the number of span starts.
type gapModel struct{ p int }

func (m gapModel) stateOK(l1, l2, c2 int) bool { return l2+c2 <= m.p }

// emptyCost: all own levels are zero; the c2 context jobs at t2 start c2
// fresh spans when the interval has interior width.
func (m gapModel) emptyCost(l1, l2, c2, t1, t2 int) (float64, bool) {
	if l1 != 0 || l2 != 0 {
		return 0, false
	}
	if t2 > t1 {
		return float64(c2), true
	}
	return 0, true
}

func (m gapModel) pointOK(k, l1, l2, c2 int) bool {
	return l1 == k && l2 == k && k+c2 <= m.p
}

// caseAChild: j_k moves from the own jobs into the context stack at t2.
func (m gapModel) caseAChild(l2, c2 int) (int, int, bool) {
	return l2 - 1, c2 + 1, l2 >= 1
}

// leftLevel: the left child's own level at t′ excludes j_k, which it
// sees as context.
func (m gapModel) leftLevel(busy int) int { return busy - 1 }

// pointLeft: j_k and the kL left jobs all sit at t1, so the boundary
// level there must be exactly kL+1.
func (m gapModel) pointLeft(l1, kL int) (int, int, bool) {
	return kL, kL, l1 == kL+1
}

// boundary: span starts at t′+1 — profile rises from level to
// next + ctx.
func (m gapModel) boundary(level, next, ctx int) float64 {
	if d := next + ctx - level; d > 0 {
		return float64(d)
	}
	return 0
}

// nodeLB: the subinterval restriction of the heuristic tier's span
// bound (admissibility argued at heur.SubSpanLB).
func (m gapModel) nodeLB(k, l1, l2, c2, t1, t2 int) float64 {
	return float64(heur.SubSpanLB(k, l1, l2, c2, t1, t2))
}

// Options tunes the gap DP for ablation experiments (E15). The zero
// value is the production configuration.
type Options struct {
	// FullGrid replaces the anchor candidate grid (release/deadline
	// neighbourhoods, Baptiste's Prop 2.1) with every integer time of
	// the horizon. The optimum is unchanged; the state count grows.
	FullGrid bool

	// NoPrune disables branch-and-bound pruning (no greedy incumbent, no
	// per-node bound checks). The optimum and the reconstructed schedule
	// are identical either way — pruning only skips subproblems that
	// provably cannot improve on the incumbent — so this exists for
	// ablation and for the fuzz lanes that certify that identity.
	NoPrune bool
}

// incumbentBudget turns a feasible heuristic cost into the engine's
// branch-and-bound budget: one ulp above the incumbent, so a node is cut
// only when its bound strictly exceeds every cost the incumbent still
// allows (an optimum equal to the incumbent stays below the budget and
// is found exactly).
func incumbentBudget(ub float64) float64 {
	return math.Nextafter(ub, infinite)
}

// SolveGaps computes an optimal minimum-wake-up schedule for a
// one-interval p-processor instance (Theorem 1). It returns
// ErrInfeasible when no feasible schedule exists.
func SolveGaps(in sched.Instance) (Result, error) {
	return SolveGapsOpt(in, Options{})
}

// SolveGapsOpt is SolveGaps with explicit tuning options.
func SolveGapsOpt(in sched.Instance, opts Options) (Result, error) {
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	n := len(in.Jobs)
	if n == 0 {
		return Result{Schedule: sched.Schedule{Procs: in.Procs}}, nil
	}
	if !feas.FeasibleOneInterval(in) {
		return Result{}, ErrInfeasible
	}
	b := newBase(in)
	if opts.FullGrid {
		lo, hi := in.TimeHorizon()
		b.grid = make([]int, 0, hi-lo+1)
		for t := lo; t <= hi; t++ {
			b.grid = append(b.grid, t)
		}
	}
	budget := infinite
	if !opts.NoPrune {
		if s, err := heur.Greedy(in); err == nil {
			budget = incumbentBudget(float64(s.Spans()))
		}
	}
	e := newEngine(b, gapModel{p: b.p})
	cost, placed, states, ok := e.run(n, budget)
	if !ok && budget < infinite {
		// Defensive: the greedy cost upper-bounds the optimum, so a
		// bounded run cannot come back empty unless the incumbent was
		// somehow below the optimum; re-solve unbounded rather than
		// misreport infeasibility.
		cost, placed, states, ok = e.run(n, infinite)
	}
	if !ok {
		// Cannot happen after the Hall pre-check; defensive.
		return Result{}, ErrInfeasible
	}
	schedule, err := assemble(n, in.Procs, placed)
	if err != nil {
		return Result{}, err
	}
	if err := schedule.Validate(in); err != nil {
		return Result{}, err
	}
	spans := int(cost)
	return Result{
		Spans:          spans,
		Gaps:           spans - 1,
		Schedule:       schedule,
		States:         states,
		PrunedStates:   int(e.pruned.Load()),
		ExpandedStates: int(e.expanded.Load()),
	}, nil
}
