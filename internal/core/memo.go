package core

// memoTable memoizes DP entries under a flat, index-encoded key: a node
// is folded into a single dense integer (interval-pair index × k × l1 ×
// l2 × c2) and stored in an open-addressing table probed linearly. The
// DP visits a vanishingly small fraction of its index space (hundreds of
// states out of millions of indices on typical instances), so the table
// is sized by occupancy, not by the index space; encoding the key up
// front still buys single-word hashing and comparison instead of the
// struct hashing a map[state] key pays per lookup.
//
// For pathologically large instances whose index space would overflow
// int64, the table degrades to a hash map keyed by the node itself.
type memoTable struct {
	// Strides of the dense encoding: index(nd) =
	// ((((i1·d1 + i2)·d2 + k)·d3 + l1)·d3 + l2)·d3 + c2.
	d1, d2, d3 int64

	slots  []slot         // open addressing, power-of-two length
	mask   uint64         // len(slots) − 1
	sparse map[node]entry // fallback when the index space overflows
	size   int            // number of memoized entries
}

// slot pairs an encoded key with its entry. key is the dense index
// plus one, so the zero value marks an empty slot.
type slot struct {
	key int64
	e   entry
}

const (
	// initialSlots is small: most solves memoize a few hundred states,
	// and the table doubles as needed.
	initialSlots = 1 << 10

	// maxIndexSpace guards the dense encoding against int64 overflow.
	maxIndexSpace = int64(1) << 62
)

func newMemoTable(g, n, p int) *memoTable {
	m := &memoTable{
		d1: int64(g) + 1,
		d2: int64(n) + 1,
		d3: int64(p) + 1,
	}
	space := int64(1)
	for _, dim := range [...]int64{m.d1, m.d1, m.d2, m.d3, m.d3, m.d3} {
		if space > maxIndexSpace/dim {
			m.sparse = make(map[node]entry)
			return m
		}
		space *= dim
	}
	m.slots = make([]slot, initialSlots)
	m.mask = initialSlots - 1
	return m
}

func (m *memoTable) index(nd node) int64 {
	return ((((int64(nd.i1)*m.d1+int64(nd.i2))*m.d2+int64(nd.k))*m.d3+
		int64(nd.l1))*m.d3+int64(nd.l2))*m.d3 + int64(nd.c2)
}

// hash spreads the dense index across the table (Fibonacci hashing).
func hash(key int64) uint64 {
	return uint64(key) * 0x9E3779B97F4A7C15
}

func (m *memoTable) get(nd node) (entry, bool) {
	if m.slots == nil {
		e, ok := m.sparse[nd]
		return e, ok
	}
	key := m.index(nd) + 1
	for i := hash(key) & m.mask; ; i = (i + 1) & m.mask {
		s := &m.slots[i]
		if s.key == key {
			return s.e, true
		}
		if s.key == 0 {
			return entry{}, false
		}
	}
}

func (m *memoTable) put(nd node, e entry) {
	m.size++
	if m.slots == nil {
		m.sparse[nd] = e
		return
	}
	if 4*m.size >= 3*len(m.slots) {
		m.grow()
	}
	m.insert(m.index(nd)+1, e)
}

func (m *memoTable) insert(key int64, e entry) {
	for i := hash(key) & m.mask; ; i = (i + 1) & m.mask {
		s := &m.slots[i]
		if s.key == 0 {
			s.key = key
			s.e = e
			return
		}
	}
}

func (m *memoTable) grow() {
	old := m.slots
	m.slots = make([]slot, 2*len(old))
	m.mask = uint64(len(m.slots) - 1)
	for _, s := range old {
		if s.key != 0 {
			m.insert(s.key, s.e)
		}
	}
}
