package core

import "sync"

// memoStore is the engine's memoization backend. The serial engine uses
// the flat open-addressing memoTable; fragments big enough for the
// intra-fragment parallel root use shardedMemo, whose operations are
// safe for concurrent use. Both honor the same put semantics (exact
// entries win over prune markers, larger marker budgets win — see
// mergeEntry), which is what makes racing duplicate computations of a
// state benign: every exact entry for a state is byte-identical.
type memoStore interface {
	get(nd node) (entry, bool)
	put(nd node, e entry)
	entries() int
	// release returns pooled storage; the table must not be used after.
	release()
}

// memoTable memoizes DP entries under a flat, index-encoded key: a node
// is folded into a single dense integer (interval-pair index × k × l1 ×
// l2 × c2) and stored in an open-addressing table probed linearly. The
// DP visits a vanishingly small fraction of its index space (hundreds of
// states out of millions of indices on typical instances), so the table
// is sized by occupancy, not by the index space; encoding the key up
// front still buys single-word hashing and comparison instead of the
// struct hashing a map[state] key pays per lookup.
//
// For pathologically large instances whose index space would overflow
// int64, the table degrades to a hash map keyed by the node itself.
type memoTable struct {
	// Strides of the dense encoding: index(nd) =
	// ((((i1·d1 + i2)·d2 + k)·d3 + l1)·d3 + l2)·d3 + c2.
	d1, d2, d3 int64

	slots  []slot         // open addressing, power-of-two length
	mask   uint64         // len(slots) − 1
	sparse map[node]entry // fallback when the index space overflows
	size   int            // number of memoized entries
}

// slot pairs an encoded key with its entry. key is the dense index
// plus one, so the zero value marks an empty slot.
type slot struct {
	key int64
	e   entry
}

const (
	// initialSlots is small: most solves memoize a few hundred states,
	// and the table doubles as needed.
	initialSlots = 1 << 10

	// maxIndexSpace guards the dense encoding against int64 overflow.
	maxIndexSpace = int64(1) << 62
)

// memoPool recycles whole memoTables (struct and slot array) across
// fragment solves: duplicate-heavy batches stop paying an allocation and
// its GC debt per fragment. Tables are cleared on get, so a pooled table
// carries capacity, never contents. Sparse-fallback tables are not
// pooled (their map dominates and resists reuse).
var memoPool sync.Pool

// denseIndexSpaceFits reports whether a (g, n, p)-shaped instance can
// use the dense flat encoding — the gate for both memoTable's fast path
// and the sharded parallel table, which has no sparse fallback.
func denseIndexSpaceFits(g, n, p int) bool {
	d1, d2, d3 := int64(g)+1, int64(n)+1, int64(p)+1
	space := int64(1)
	for _, dim := range [...]int64{d1, d1, d2, d3, d3, d3} {
		if space > maxIndexSpace/dim {
			return false
		}
		space *= dim
	}
	return true
}

func newMemoTable(g, n, p int) *memoTable {
	m, _ := memoPool.Get().(*memoTable)
	if m == nil {
		m = &memoTable{}
	}
	m.d1, m.d2, m.d3 = int64(g)+1, int64(n)+1, int64(p)+1
	m.size = 0
	m.sparse = nil
	if !denseIndexSpaceFits(g, n, p) {
		m.slots = nil
		m.sparse = make(map[node]entry)
		return m
	}
	if m.slots == nil {
		m.slots = make([]slot, initialSlots)
	} else {
		clear(m.slots)
	}
	m.mask = uint64(len(m.slots)) - 1
	return m
}

// release returns the table to the pool. Sparse tables are dropped.
func (m *memoTable) release() {
	if m.slots == nil {
		return
	}
	memoPool.Put(m)
}

func (m *memoTable) entries() int { return m.size }

func (m *memoTable) index(nd node) int64 {
	return ((((int64(nd.i1)*m.d1+int64(nd.i2))*m.d2+int64(nd.k))*m.d3+
		int64(nd.l1))*m.d3+int64(nd.l2))*m.d3 + int64(nd.c2)
}

// hash spreads the dense index across the table (Fibonacci hashing).
func hash(key int64) uint64 {
	return uint64(key) * 0x9E3779B97F4A7C15
}

func (m *memoTable) get(nd node) (entry, bool) {
	if m.slots == nil {
		e, ok := m.sparse[nd]
		return e, ok
	}
	key := m.index(nd) + 1
	for i := hash(key) & m.mask; ; i = (i + 1) & m.mask {
		s := &m.slots[i]
		if s.key == key {
			return s.e, true
		}
		if s.key == 0 {
			return entry{}, false
		}
	}
}

// put stores an entry, resolving rewrites of an occupied key with
// mergeEntry: branch and bound revisits a node when a caller arrives
// with a looser budget than the one its prune marker recorded, and the
// re-expansion writes either an exact entry or a stronger marker.
func (m *memoTable) put(nd node, e entry) {
	if m.slots == nil {
		if old, ok := m.sparse[nd]; ok {
			m.sparse[nd] = mergeEntry(old, e)
			return
		}
		m.size++
		m.sparse[nd] = e
		return
	}
	if 4*(m.size+1) >= 3*len(m.slots) {
		m.grow()
	}
	key := m.index(nd) + 1
	for i := hash(key) & m.mask; ; i = (i + 1) & m.mask {
		s := &m.slots[i]
		if s.key == key {
			s.e = mergeEntry(s.e, e)
			return
		}
		if s.key == 0 {
			s.key = key
			s.e = e
			m.size++
			return
		}
	}
}

// mergeEntry decides a double write: an exact result always wins over a
// prune marker (and an exact rewrite is byte-identical, so the old one
// stands); between two markers the larger certified budget wins.
func mergeEntry(old, new entry) entry {
	if old.choice != choicePruned {
		return old
	}
	if new.choice != choicePruned || new.cost > old.cost {
		return new
	}
	return old
}

func (m *memoTable) insert(key int64, e entry) {
	for i := hash(key) & m.mask; ; i = (i + 1) & m.mask {
		s := &m.slots[i]
		if s.key == 0 {
			s.key = key
			s.e = e
			return
		}
	}
}

func (m *memoTable) grow() {
	old := m.slots
	m.slots = make([]slot, 2*len(old))
	m.mask = uint64(len(m.slots) - 1)
	for _, s := range old {
		if s.key != 0 {
			m.insert(s.key, s.e)
		}
	}
}

// shardMask: shardedMemo routes a key by the top bits of its hash to
// one of 64 independently locked memoTable-style shards. 64 shards keep
// contention low at the worker counts GOMAXPROCS yields while bounding
// the per-fragment fixed cost of the shard array.
const numShards = 64

// shardedMemo is the concurrent memoStore backing intra-fragment root
// parallelism. Each shard is a private open-addressing table guarded by
// its own mutex; keys route by hash, so probe sequences never cross a
// shard boundary. There is no sparse fallback — callers gate on
// denseIndexSpaceFits before choosing the parallel path.
type shardedMemo struct {
	d1, d2, d3 int64
	shards     [numShards]memoShard
}

type memoShard struct {
	mu    sync.Mutex
	slots []slot
	mask  uint64
	size  int
}

func newShardedMemo(g, n, p int) *shardedMemo {
	m := &shardedMemo{d1: int64(g) + 1, d2: int64(n) + 1, d3: int64(p) + 1}
	for i := range m.shards {
		m.shards[i].slots = make([]slot, initialSlots/4)
		m.shards[i].mask = uint64(len(m.shards[i].slots)) - 1
	}
	return m
}

func (m *shardedMemo) index(nd node) int64 {
	return ((((int64(nd.i1)*m.d1+int64(nd.i2))*m.d2+int64(nd.k))*m.d3+
		int64(nd.l1))*m.d3+int64(nd.l2))*m.d3 + int64(nd.c2)
}

func (m *shardedMemo) get(nd node) (entry, bool) {
	key := m.index(nd) + 1
	h := hash(key)
	sh := &m.shards[h>>(64-6)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for i := h & sh.mask; ; i = (i + 1) & sh.mask {
		s := &sh.slots[i]
		if s.key == key {
			return s.e, true
		}
		if s.key == 0 {
			return entry{}, false
		}
	}
}

func (m *shardedMemo) put(nd node, e entry) {
	key := m.index(nd) + 1
	h := hash(key)
	sh := &m.shards[h>>(64-6)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if 4*(sh.size+1) >= 3*len(sh.slots) {
		sh.grow()
	}
	for i := h & sh.mask; ; i = (i + 1) & sh.mask {
		s := &sh.slots[i]
		if s.key == key {
			s.e = mergeEntry(s.e, e)
			return
		}
		if s.key == 0 {
			s.key = key
			s.e = e
			sh.size++
			return
		}
	}
}

func (sh *memoShard) grow() {
	old := sh.slots
	sh.slots = make([]slot, 2*len(old))
	sh.mask = uint64(len(sh.slots) - 1)
	for _, s := range old {
		if s.key != 0 {
			for i := hash(s.key) & sh.mask; ; i = (i + 1) & sh.mask {
				if sh.slots[i].key == 0 {
					sh.slots[i] = s
					break
				}
			}
		}
	}
}

func (m *shardedMemo) entries() int {
	total := 0
	for i := range m.shards {
		m.shards[i].mu.Lock()
		total += m.shards[i].size
		m.shards[i].mu.Unlock()
	}
	return total
}

func (m *shardedMemo) release() {} // per-fragment compute dominates; not pooled
