package core

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/sched"
)

// costModel supplies the objective-specific pieces of the shared
// interval-decomposition recursion. The engine owns the skeleton —
// subproblem identity, the case split on j_k's placement, memoization
// and reconstruction — while a model decides what boundary levels mean
// (busy counts for the span objective, active counts for power) and how
// much each boundary crossing costs. Adding a third objective means
// writing another implementation of this interface; see DESIGN.md §3.
//
// Throughout, "level" is the staircase profile height at a boundary
// time: l1 at t1, l2 at t2, with c2 context jobs stacked at t2 by
// ancestors of the current subproblem.
type costModel interface {
	// stateOK reports the objective-specific invariants tying l2 and c2
	// together (the generic 0 ≤ l1 ≤ p bounds are checked by the engine).
	stateOK(l1, l2, c2 int) bool

	// emptyCost is the base case with no own jobs: the cost of carrying
	// the boundary levels across [t1, t2], or ok=false when the levels
	// are unrealizable.
	emptyCost(l1, l2, c2, t1, t2 int) (cost float64, ok bool)

	// pointOK reports whether k own jobs plus c2 context jobs can all
	// execute at the single time t1 == t2 under boundary levels l1, l2.
	pointOK(k, l1, l2, c2 int) bool

	// caseAChild gives the child state levels when j_k is placed at t2,
	// joining the context stack (the paper's case t′ = t2).
	caseAChild(l2, c2 int) (cl2, cc2 int, ok bool)

	// leftLevel is the left child's own boundary level at t′ when the
	// profile height there (including j_k) is busy ∈ [1, p].
	leftLevel(busy int) int

	// pointLeft gives the left child's boundary levels when j_k is
	// placed at t′ == t1, collapsing the left child to the single point
	// t1 with j_k as context.
	pointLeft(l1, kL int) (pl1, pl2 int, ok bool)

	// boundary is the parent-owned cost of the time unit t′+1: the
	// profile is at height level at t′ and at height next (plus ctx
	// context jobs, for models that count them separately) at t′+1.
	boundary(level, next, ctx int) float64

	// nodeLB is an admissible lower bound on the node's cost: no
	// feasible completion of the subproblem costs less. The engine cuts
	// any node whose bound reaches the incumbent-derived budget without
	// expanding it (branch and bound); the bound must therefore never
	// overestimate, or pruning would change answers.
	nodeLB(k, l1, l2, c2, t1, t2 int) float64
}

// infinite marks unreachable subproblems. Finite costs never reach it:
// the engine only adds child costs that compare strictly below it.
var infinite = math.Inf(1)

// rightsPool recycles the per-grid-point right-child buffers compute
// uses. compute recurses through dp, so the buffer cannot live on the
// engine; a pool keeps the recursion allocation-free past warm-up.
var rightsPool = sync.Pool{New: func() any { return new([]float64) }}

// node identifies one subproblem. Interval endpoints are stored as
// indices into the engine's t1val/t2val tables, not as raw times, so
// the memo table can be a flat array instead of a hash map.
type node struct {
	i1, i2 int // indices into t1val / t2val
	k      int // own jobs: the k earliest-deadline jobs of list(t1, t2)
	l1, l2 int // boundary levels at t1 and t2
	c2     int // context jobs stacked at t2 by ancestors
}

// entry is one memo record: the optimal cost of a node plus the choice
// that attains it, for reconstruction. The zero value (choiceUnset)
// means "not yet computed", which is what makes the flat table work.
type entry struct {
	cost   float64
	tp     int32 // grid index of j_k's time for choiceB
	lp     int16 // left child's own level at t′ (choiceB); -1 for a point left child
	lpp    int16 // right child's level at t′+1 (choiceB)
	choice int8
}

// engine runs the shared DP for one cost model. It is generic over the
// concrete model type so the per-state model calls compile to direct
// (inlinable) calls rather than interface dispatch on the hot path.
type engine[M costModel] struct {
	*base
	model M
	memo  memoStore

	// Branch-and-bound accounting. pruned counts the dp calls answered
	// by the bound check (or a memoized prune marker) without expanding
	// the node; expanded counts compute invocations. Atomics: the
	// parallel root's workers share the engine.
	pruned, expanded atomic.Int64

	// t1val[i] is the left endpoint encoded by index i: t1val[0] is the
	// virtual start (grid[0]−1) and t1val[g+1] is grid[g]+1, the right
	// child's start after a split at grid[g]. t2val[g] is grid[g] and
	// t2val[G] is the virtual end (grid[G−1]+1). Both lists are strictly
	// increasing, so index pairs identify intervals uniquely.
	t1val, t2val []int
}

func newEngine[M costModel](b *base, m M) *engine[M] {
	g := len(b.grid)
	e := &engine[M]{
		base:  b,
		model: m,
		t1val: make([]int, g+1),
		t2val: make([]int, g+1),
	}
	// Fragments big enough for the intra-fragment parallel root get the
	// concurrent sharded memo; everything else uses the pooled flat
	// table (strictly cheaper single-threaded).
	if e.parallelRoot() {
		e.memo = newShardedMemo(g, len(b.jobs), b.p)
	} else {
		e.memo = newMemoTable(g, len(b.jobs), b.p)
	}
	e.t1val[0] = b.grid[0] - 1
	for i, t := range b.grid {
		e.t1val[i+1] = t + 1
		e.t2val[i] = t
	}
	e.t2val[g] = b.grid[g-1] + 1
	return e
}

// parallelRootMinJobs gates intra-fragment parallelism: below this many
// jobs a fragment solves in milliseconds and the coordination (sharded
// memo locking, goroutine fan-out) costs more than it buys. Every
// correctness suite that compares state counts across solve paths runs
// far below the threshold, so their counters stay deterministic.
const parallelRootMinJobs = 192

// parallelRoot reports whether this engine distributes the root node's
// case-B grid points across worker goroutines.
func (e *engine[M]) parallelRoot() bool {
	return len(e.jobs) >= parallelRootMinJobs && runtime.GOMAXPROCS(0) > 1 &&
		denseIndexSpaceFits(len(e.grid), len(e.jobs), e.p)
}

// run solves the root problem covering the whole horizon and replays
// the optimal choices into job→time placements. budget is the
// branch-and-bound cut: a strict upper bound on the cost run is allowed
// to report (callers pass one ulp above a feasible incumbent, or
// infinite to disable pruning). A run that comes back !ok under a
// finite budget only certifies cost ≥ budget, not infeasibility.
func (e *engine[M]) run(n int, budget float64) (cost float64, placed map[int]int, states int, ok bool) {
	root := node{i1: 0, i2: len(e.grid), k: n}
	if e.parallelRoot() {
		cost = e.dpRootParallel(root, budget)
	} else {
		cost = e.dp(root, budget)
	}
	states = e.memo.entries()
	if cost >= infinite {
		return 0, nil, states, false
	}
	placed = make(map[int]int, n)
	e.rebuild(root, placed)
	return cost, placed, states, true
}

// dp returns the minimum cost of the node's subproblem, memoized, or
// infinite when that cost is at least budget (pruning). A finite return
// is always the exact optimum: candidates are only ever discarded once
// they provably meet the caller's threshold, so pruning changes which
// states are expanded but never a reported cost or placement.
//
// Memoized entries come in two kinds. Exact entries (choice other than
// choicePruned) are budget-independent and served to every caller.
// Prune markers record, in cost, the largest budget under which the
// node was cut; they answer only callers whose budget is no larger —
// a looser caller re-expands the node, because "≥ old budget" says
// nothing about "≥ new budget".
//
// Field ranges are checked before the memo is consulted: the flat table
// encodes nodes positionally, so an out-of-range field (possible only
// through a buggy costModel) must never reach index computation, where
// it would alias another state's entry.
func (e *engine[M]) dp(nd node, budget float64) float64 {
	if nd.l1 < 0 || nd.l1 > e.p || nd.l2 < 0 || nd.l2 > e.p || nd.c2 < 0 || nd.c2 > e.p {
		return infinite
	}
	if r, ok := e.memo.get(nd); ok {
		if r.choice != choicePruned {
			return r.cost
		}
		if budget <= r.cost {
			e.pruned.Add(1)
			return infinite
		}
	}
	if lb := e.model.nodeLB(nd.k, nd.l1, nd.l2, nd.c2, e.t1val[nd.i1], e.t2val[nd.i2]); lb >= budget {
		e.pruned.Add(1)
		// The admissible bound holds unconditionally, so the marker can
		// record cost ≥ lb — stronger than the triggering budget — and
		// absorb future visits up to lb without recomputing the bound.
		e.memo.put(nd, entry{cost: lb, choice: choicePruned})
		return infinite
	}
	e.expanded.Add(1)
	r := e.compute(nd, budget)
	if r.cost < budget || budget >= infinite {
		// Exact: every candidate either evaluated exactly or proved ≥ the
		// running threshold. (Under an infinite budget nothing prunes, so
		// an infinite result is genuine infeasibility — memoize it as
		// such rather than as a marker.)
		e.memo.put(nd, r)
		return r.cost
	}
	// The result met the budget, but pruned candidates may hide the true
	// optimum below it: record only "cost ≥ budget".
	e.memo.put(nd, entry{cost: budget, choice: choicePruned})
	return infinite
}

// compute is the recursion shared by every objective: base cases, case
// A (j_k joins the context at t2) and case B (j_k at a grid time
// t′ < t2, splitting the interval into two children that own
// (t1, t′] and (t′+1, t2] while the parent pays for the boundary
// crossing into t′+1).
//
// budget propagates the branch-and-bound threshold: children are
// evaluated under min(budget, best so far), so a child that cannot lead
// to an improvement returns infinite instead of expanding. The recorded
// choice is unchanged by pruning: it is the first candidate attaining
// the node optimum, and for that candidate the threshold at evaluation
// time strictly exceeds the optimum, hence exceeds both children's true
// costs — they evaluate exactly, the candidate is accepted, and later
// candidates never displace it (strict < comparison).
func (e *engine[M]) compute(nd node, budget float64) entry {
	t1, t2 := e.t1val[nd.i1], e.t2val[nd.i2]
	k, l1, l2, c2 := nd.k, nd.l1, nd.l2, nd.c2
	inf := entry{cost: infinite, choice: choiceNone}

	if !e.model.stateOK(l1, l2, c2) { // field ranges already vetted by dp
		return inf
	}

	// Base: no own jobs.
	if k == 0 {
		if cost, ok := e.model.emptyCost(l1, l2, c2, t1, t2); ok {
			return entry{cost: cost, choice: choiceEmpty}
		}
		return inf
	}

	list := e.list(t1, t2)
	if k > len(list) {
		return inf
	}

	// Base: single time unit. All k own jobs execute at t1 == t2.
	if t1 == t2 {
		if !e.model.pointOK(k, l1, l2, c2) {
			return inf
		}
		return entry{cost: 0, choice: choicePoint}
	}

	jk := list[k-1]
	job := e.jobs[jk]
	best := inf

	// Case A: j_k at t′ = t2, joining the context stack. The threshold
	// below both the caller's budget and the best found so far; best is
	// still empty here, so the budget alone applies.
	if job.Deadline >= t2 {
		if cl2, cc2, ok := e.model.caseAChild(l2, c2); ok {
			if c := e.dp(node{nd.i1, nd.i2, k - 1, l1, cl2, cc2}, budget); c < best.cost {
				best = entry{cost: c, choice: choiceA}
			}
		}
	}

	// Case B: j_k at a grid time t′ with t1 ≤ t′ < t2.
	giLo, giHi := e.splitRange(job, t1, t2)
	if giLo < giHi {
		rights := getRights(e.p)
		for gi := giLo; gi < giHi; gi++ {
			best = e.evalSplit(nd, gi, t1, t2, list, budget, best, rights)
		}
		putRights(rights)
	}
	return best
}

// splitRange is the grid index range of j_k's case-B candidate times:
// grid times within its window, strictly before t2.
func (e *engine[M]) splitRange(job sched.Job, t1, t2 int) (int, int) {
	lo := job.Release
	if lo < t1 {
		lo = t1
	}
	hi := job.Deadline
	if hi > t2-1 {
		hi = t2 - 1
	}
	return e.gridRange(lo, hi)
}

// getRights leases a right-child cache of width p+1 from rightsPool.
func getRights(p int) *[]float64 {
	rp := rightsPool.Get().(*[]float64)
	if cap(*rp) <= p {
		*rp = make([]float64, p+1)
	} else {
		*rp = (*rp)[:p+1]
	}
	return rp
}

func putRights(rp *[]float64) { rightsPool.Put(rp) }

// evalSplit evaluates every case-B candidate that places j_k at grid
// index gi, folding improvements into best (strict <, so the first
// candidate attaining the minimum is the one recorded) and returns the
// result. thr0 is the caller's branch-and-bound budget; children are
// evaluated under min(thr0, best so far). Under an infinite thr0
// pruning is disabled outright — children inherit the infinite budget
// rather than the running best, reproducing the unbounded recursion
// exactly (and keeping PrunedStates at 0, as NoPrune promises).
//
// The serial recursion calls this with best threaded across all of the
// node's grid points; the parallel root calls it per gi with an empty
// best and merges in gi order, which lands on the identical entry.
func (e *engine[M]) evalSplit(nd node, gi, t1, t2 int, list []int, thr0 float64, best entry, rights *[]float64) entry {
	k, l1, l2, c2 := nd.k, nd.l1, nd.l2, nd.c2
	thr := func() float64 {
		if thr0 >= infinite {
			return infinite
		}
		if best.cost < thr0 {
			return best.cost
		}
		return thr0
	}

	tp := e.grid[gi]
	i := pendingAfter(e.jobs, list, k, tp)
	kL := k - 1 - i

	// The right child of a split at t′ = grid[gi] does not depend on the
	// profile height busy at t′, so its dp value is shared by every busy
	// (and by the point-left branch). rights caches it per next, filled
	// lazily — −1 marks "not yet evaluated" (costs are ≥ 0) — so the
	// hoist adds no dp calls the unhoisted loop would not have made.
	rs := *rights
	for x := range rs {
		rs[x] = -1
	}

	// Context jobs stacked at t2 by ancestors count toward the
	// profile at t′+1 exactly when t′+1 = t2.
	ctx := 0
	if tp+1 == t2 {
		ctx = c2
	}

	// Candidate-level cuts: a candidate costs left + right + boundary
	// with boundary ≥ 0, so when the sum of the children's admissible
	// bounds already meets the threshold the candidate is skipped before
	// any dp call. Skipped candidates are provably ≥ the threshold in
	// force at the time — which only shrinks — so no strict improvement
	// is ever discarded and the first-attainment choice is untouched.
	// Crucially the skip writes no memo state: children that do get
	// evaluated still see the full thr(), so their entries stay exactly
	// as reusable as in the uncut recursion (budget-keyed markers at
	// per-candidate budgets would wreck memo reuse for continuous
	// costs). rLB is the right child's bound minimized over next, the
	// per-busy left bound is computed in the loop.
	rLB := 0.0
	if thr0 < infinite {
		rLB = infinite
		rt1, rt2 := e.t1val[gi+1], e.t2val[nd.i2]
		for next := 0; next <= e.p; next++ {
			if lb := e.model.nodeLB(i, next, l2, c2, rt1, rt2); lb < rLB {
				rLB = lb
			}
		}
	}

	if tp == t1 {
		// j_k and the kL left jobs all sit at t1; the left child is
		// the single-point base with j_k as context.
		pl1, pl2, ok := e.model.pointLeft(l1, kL)
		if !ok {
			return best
		}
		if thr0 < infinite && e.model.nodeLB(kL, pl1, pl2, 1, e.t1val[nd.i1], e.t2val[gi])+rLB >= thr() {
			return best
		}
		left := e.dp(node{nd.i1, gi, kL, pl1, pl2, 1}, thr())
		if left >= infinite {
			return best
		}
		for next := 0; next <= e.p; next++ {
			right := rs[next]
			if right < 0 {
				right = e.dp(node{gi + 1, nd.i2, i, next, l2, c2}, thr())
				rs[next] = right
			}
			if right >= infinite {
				continue
			}
			if c := left + right + e.model.boundary(l1, next, ctx); c < best.cost {
				best = entry{cost: c, choice: choiceB, tp: int32(gi), lp: -1, lpp: int16(next)}
			}
		}
		return best
	}

	for busy := 1; busy <= e.p; busy++ { // profile height at t′, including j_k
		lv := e.model.leftLevel(busy)
		if thr0 < infinite && e.model.nodeLB(kL, l1, lv, 1, e.t1val[nd.i1], e.t2val[gi])+rLB >= thr() {
			continue
		}
		left := e.dp(node{nd.i1, gi, kL, l1, lv, 1}, thr())
		if left >= infinite {
			continue
		}
		for next := 0; next <= e.p; next++ {
			right := rs[next]
			if right < 0 {
				right = e.dp(node{gi + 1, nd.i2, i, next, l2, c2}, thr())
				rs[next] = right
			}
			if right >= infinite {
				continue
			}
			if c := left + right + e.model.boundary(busy, next, ctx); c < best.cost {
				best = entry{cost: c, choice: choiceB, tp: int32(gi), lp: int16(lv), lpp: int16(next)}
			}
		}
	}
	return best
}

// dpRootParallel is dp specialized to the root node, with the case-B
// grid points fanned out across worker goroutines. The memo is the
// concurrent shardedMemo (newEngine pairs the two), so the workers'
// recursions share subproblem results exactly as the serial order does.
func (e *engine[M]) dpRootParallel(nd node, budget float64) float64 {
	e.expanded.Add(1)
	r := e.rootParallel(nd, budget)
	if r.cost < budget || budget >= infinite {
		e.memo.put(nd, r)
		return r.cost
	}
	e.memo.put(nd, entry{cost: budget, choice: choicePruned})
	return infinite
}

// rootParallel is compute for the root node with its case-B grid points
// evaluated concurrently. Exactness and bit-identity with the serial
// order rest on three facts:
//
//   - Each grid point is evaluated by evalSplit with an empty running
//     best and a private threshold thr0 = min(budget, one ulp above the
//     shared incumbent snapshot). The snapshot is always ≥ the node
//     optimum (it is a min over exact feasible candidate costs), so the
//     task owning the optimal grid point sees thr0 strictly above its
//     own minimum and computes it exactly; any other task returns
//     either its exact local minimum or infinite — never a finite
//     non-optimal underestimate.
//
//   - The merge folds results in the serial candidate order (case A
//     first, then grid points ascending) with strict <, so the recorded
//     choice is the same first-attaining candidate the serial loop
//     records, making reconstruction — and the reported schedule —
//     bit-identical.
//
//   - Shared memo writes are safe to race: exact entries for a state
//     are byte-identical, and mergeEntry keeps exact entries over prune
//     markers and larger marker budgets over smaller.
//
// Under an infinite budget (NoPrune) the incumbent is ignored entirely
// so every task expands fully, preserving PrunedStates == 0.
func (e *engine[M]) rootParallel(nd node, budget float64) entry {
	t1, t2 := e.t1val[nd.i1], e.t2val[nd.i2]
	k := nd.k
	list := e.list(t1, t2) // warm the interval cache before sharing it
	jk := list[k-1]
	job := e.jobs[jk]

	best := entry{cost: infinite, choice: choiceNone}

	// Case A: j_k at t′ = t2, joining the context stack — a single child,
	// evaluated up front so its cost seeds the shared incumbent.
	if job.Deadline >= t2 {
		if cl2, cc2, ok := e.model.caseAChild(nd.l2, nd.c2); ok {
			if c := e.dp(node{nd.i1, nd.i2, k - 1, nd.l1, cl2, cc2}, budget); c < best.cost {
				best = entry{cost: c, choice: choiceA}
			}
		}
	}

	giLo, giHi := e.splitRange(job, t1, t2)
	tasks := giHi - giLo
	if tasks <= 0 {
		return best
	}

	// incumbent is the best finite candidate cost published so far, as
	// Float64bits (costs are non-negative and finite, so bit order is
	// value order). It tightens task thresholds but never decides the
	// answer — the deterministic merge below does that.
	var incumbent atomic.Uint64
	incumbent.Store(math.Float64bits(best.cost))
	publish := func(c float64) {
		bits := math.Float64bits(c)
		for {
			cur := incumbent.Load()
			if math.Float64frombits(cur) <= c {
				return
			}
			if incumbent.CompareAndSwap(cur, bits) {
				return
			}
		}
	}

	results := make([]entry, tasks)
	var cursor atomic.Int64
	workers := runtime.GOMAXPROCS(0)
	if workers > tasks {
		workers = tasks
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			rights := getRights(e.p)
			defer putRights(rights)
			for {
				x := int(cursor.Add(1)) - 1
				if x >= tasks {
					return
				}
				thr0 := budget
				if budget < infinite {
					if snap := math.Float64frombits(incumbent.Load()); snap < infinite {
						if t := math.Nextafter(snap, infinite); t < thr0 {
							thr0 = t
						}
					}
				}
				local := e.evalSplit(nd, giLo+x, t1, t2, list, thr0,
					entry{cost: infinite, choice: choiceNone}, rights)
				results[x] = local
				if local.cost < infinite {
					publish(local.cost)
				}
			}
		}()
	}
	wg.Wait()

	for _, r := range results {
		if r.cost < best.cost {
			best = r
		}
	}
	return best
}

// rebuild replays the recorded choices, recording job→time placements.
func (e *engine[M]) rebuild(nd node, placed map[int]int) {
	r, ok := e.memo.get(nd)
	if !ok || r.choice == choiceNone || r.choice == choicePruned {
		// Pruned entries never lie on an optimal path: the path's nodes
		// were all evaluated under thresholds above their true costs.
		return
	}
	t1, t2 := e.t1val[nd.i1], e.t2val[nd.i2]
	k := nd.k
	switch r.choice {
	case choiceEmpty:
		return
	case choicePoint:
		for _, j := range e.list(t1, t2)[:k] {
			placed[j] = t1
		}
	case choiceA:
		jk := e.list(t1, t2)[k-1]
		placed[jk] = t2
		cl2, cc2, _ := e.model.caseAChild(nd.l2, nd.c2)
		e.rebuild(node{nd.i1, nd.i2, k - 1, nd.l1, cl2, cc2}, placed)
	case choiceB:
		list := e.list(t1, t2)
		jk := list[k-1]
		gi := int(r.tp)
		tp := e.grid[gi]
		placed[jk] = tp
		i := pendingAfter(e.jobs, list, k, tp)
		kL := k - 1 - i
		if r.lp < 0 {
			pl1, pl2, _ := e.model.pointLeft(nd.l1, kL)
			e.rebuild(node{nd.i1, gi, kL, pl1, pl2, 1}, placed)
		} else {
			e.rebuild(node{nd.i1, gi, kL, nd.l1, int(r.lp), 1}, placed)
		}
		e.rebuild(node{gi + 1, nd.i2, i, int(r.lpp), nd.l2, nd.c2}, placed)
	}
}
