package core

import (
	"math"
	"sync"
)

// costModel supplies the objective-specific pieces of the shared
// interval-decomposition recursion. The engine owns the skeleton —
// subproblem identity, the case split on j_k's placement, memoization
// and reconstruction — while a model decides what boundary levels mean
// (busy counts for the span objective, active counts for power) and how
// much each boundary crossing costs. Adding a third objective means
// writing another implementation of this interface; see DESIGN.md §3.
//
// Throughout, "level" is the staircase profile height at a boundary
// time: l1 at t1, l2 at t2, with c2 context jobs stacked at t2 by
// ancestors of the current subproblem.
type costModel interface {
	// stateOK reports the objective-specific invariants tying l2 and c2
	// together (the generic 0 ≤ l1 ≤ p bounds are checked by the engine).
	stateOK(l1, l2, c2 int) bool

	// emptyCost is the base case with no own jobs: the cost of carrying
	// the boundary levels across [t1, t2], or ok=false when the levels
	// are unrealizable.
	emptyCost(l1, l2, c2, t1, t2 int) (cost float64, ok bool)

	// pointOK reports whether k own jobs plus c2 context jobs can all
	// execute at the single time t1 == t2 under boundary levels l1, l2.
	pointOK(k, l1, l2, c2 int) bool

	// caseAChild gives the child state levels when j_k is placed at t2,
	// joining the context stack (the paper's case t′ = t2).
	caseAChild(l2, c2 int) (cl2, cc2 int, ok bool)

	// leftLevel is the left child's own boundary level at t′ when the
	// profile height there (including j_k) is busy ∈ [1, p].
	leftLevel(busy int) int

	// pointLeft gives the left child's boundary levels when j_k is
	// placed at t′ == t1, collapsing the left child to the single point
	// t1 with j_k as context.
	pointLeft(l1, kL int) (pl1, pl2 int, ok bool)

	// boundary is the parent-owned cost of the time unit t′+1: the
	// profile is at height level at t′ and at height next (plus ctx
	// context jobs, for models that count them separately) at t′+1.
	boundary(level, next, ctx int) float64
}

// infinite marks unreachable subproblems. Finite costs never reach it:
// the engine only adds child costs that compare strictly below it.
var infinite = math.Inf(1)

// rightsPool recycles the per-grid-point right-child buffers compute
// uses. compute recurses through dp, so the buffer cannot live on the
// engine; a pool keeps the recursion allocation-free past warm-up.
var rightsPool = sync.Pool{New: func() any { return new([]float64) }}

// node identifies one subproblem. Interval endpoints are stored as
// indices into the engine's t1val/t2val tables, not as raw times, so
// the memo table can be a flat array instead of a hash map.
type node struct {
	i1, i2 int // indices into t1val / t2val
	k      int // own jobs: the k earliest-deadline jobs of list(t1, t2)
	l1, l2 int // boundary levels at t1 and t2
	c2     int // context jobs stacked at t2 by ancestors
}

// entry is one memo record: the optimal cost of a node plus the choice
// that attains it, for reconstruction. The zero value (choiceUnset)
// means "not yet computed", which is what makes the flat table work.
type entry struct {
	cost   float64
	tp     int32 // grid index of j_k's time for choiceB
	lp     int16 // left child's own level at t′ (choiceB); -1 for a point left child
	lpp    int16 // right child's level at t′+1 (choiceB)
	choice int8
}

// engine runs the shared DP for one cost model. It is generic over the
// concrete model type so the per-state model calls compile to direct
// (inlinable) calls rather than interface dispatch on the hot path.
type engine[M costModel] struct {
	*base
	model M
	memo  *memoTable

	// t1val[i] is the left endpoint encoded by index i: t1val[0] is the
	// virtual start (grid[0]−1) and t1val[g+1] is grid[g]+1, the right
	// child's start after a split at grid[g]. t2val[g] is grid[g] and
	// t2val[G] is the virtual end (grid[G−1]+1). Both lists are strictly
	// increasing, so index pairs identify intervals uniquely.
	t1val, t2val []int
}

func newEngine[M costModel](b *base, m M) *engine[M] {
	g := len(b.grid)
	e := &engine[M]{
		base:  b,
		model: m,
		memo:  newMemoTable(g, len(b.jobs), b.p),
		t1val: make([]int, g+1),
		t2val: make([]int, g+1),
	}
	e.t1val[0] = b.grid[0] - 1
	for i, t := range b.grid {
		e.t1val[i+1] = t + 1
		e.t2val[i] = t
	}
	e.t2val[g] = b.grid[g-1] + 1
	return e
}

// run solves the root problem covering the whole horizon and replays
// the optimal choices into job→time placements.
func (e *engine[M]) run(n int) (cost float64, placed map[int]int, states int, ok bool) {
	root := node{i1: 0, i2: len(e.grid), k: n}
	cost = e.dp(root)
	states = e.memo.size
	if cost >= infinite {
		return 0, nil, states, false
	}
	placed = make(map[int]int, n)
	e.rebuild(root, placed)
	return cost, placed, states, true
}

// dp returns the minimum cost of the node's subproblem, memoized.
// Field ranges are checked before the memo is consulted: the flat table
// encodes nodes positionally, so an out-of-range field (possible only
// through a buggy costModel) must never reach index computation, where
// it would alias another state's entry.
func (e *engine[M]) dp(nd node) float64 {
	if nd.l1 < 0 || nd.l1 > e.p || nd.l2 < 0 || nd.l2 > e.p || nd.c2 < 0 || nd.c2 > e.p {
		return infinite
	}
	if r, ok := e.memo.get(nd); ok {
		return r.cost
	}
	r := e.compute(nd)
	e.memo.put(nd, r)
	return r.cost
}

// compute is the recursion shared by every objective: base cases, case
// A (j_k joins the context at t2) and case B (j_k at a grid time
// t′ < t2, splitting the interval into two children that own
// (t1, t′] and (t′+1, t2] while the parent pays for the boundary
// crossing into t′+1).
func (e *engine[M]) compute(nd node) entry {
	t1, t2 := e.t1val[nd.i1], e.t2val[nd.i2]
	k, l1, l2, c2 := nd.k, nd.l1, nd.l2, nd.c2
	inf := entry{cost: infinite, choice: choiceNone}

	if !e.model.stateOK(l1, l2, c2) { // field ranges already vetted by dp
		return inf
	}

	// Base: no own jobs.
	if k == 0 {
		if cost, ok := e.model.emptyCost(l1, l2, c2, t1, t2); ok {
			return entry{cost: cost, choice: choiceEmpty}
		}
		return inf
	}

	list := e.list(t1, t2)
	if k > len(list) {
		return inf
	}

	// Base: single time unit. All k own jobs execute at t1 == t2.
	if t1 == t2 {
		if !e.model.pointOK(k, l1, l2, c2) {
			return inf
		}
		return entry{cost: 0, choice: choicePoint}
	}

	jk := list[k-1]
	job := e.jobs[jk]
	best := inf

	// Case A: j_k at t′ = t2, joining the context stack.
	if job.Deadline >= t2 {
		if cl2, cc2, ok := e.model.caseAChild(l2, c2); ok {
			if c := e.dp(node{nd.i1, nd.i2, k - 1, l1, cl2, cc2}); c < best.cost {
				best = entry{cost: c, choice: choiceA}
			}
		}
	}

	// Case B: j_k at a grid time t′ with t1 ≤ t′ < t2.
	lo := job.Release
	if lo < t1 {
		lo = t1
	}
	hi := job.Deadline
	if hi > t2-1 {
		hi = t2 - 1
	}
	giLo, giHi := e.gridRange(lo, hi)

	// The right child of a split at t′ = grid[gi] does not depend on the
	// profile height busy at t′, so its dp value is shared by every busy
	// (and by the point-left branch). rights caches it per (gi, next),
	// filled lazily — −1 marks "not yet evaluated" (costs are ≥ 0) — so
	// the set of dp calls, and with it the memoized state count, is
	// exactly what the unhoisted loop produced.
	rp := rightsPool.Get().(*[]float64)
	rights := *rp
	if cap(rights) <= e.p {
		rights = make([]float64, e.p+1)
	} else {
		rights = rights[:e.p+1]
	}

	for gi := giLo; gi < giHi; gi++ {
		tp := e.grid[gi]
		i := pendingAfter(e.jobs, list, k, tp)
		kL := k - 1 - i
		for x := range rights {
			rights[x] = -1
		}

		// Context jobs stacked at t2 by ancestors count toward the
		// profile at t′+1 exactly when t′+1 = t2.
		ctx := 0
		if tp+1 == t2 {
			ctx = c2
		}

		if tp == t1 {
			// j_k and the kL left jobs all sit at t1; the left child is
			// the single-point base with j_k as context.
			pl1, pl2, ok := e.model.pointLeft(l1, kL)
			if !ok {
				continue
			}
			left := e.dp(node{nd.i1, gi, kL, pl1, pl2, 1})
			if left >= infinite {
				continue
			}
			for next := 0; next <= e.p; next++ {
				right := rights[next]
				if right < 0 {
					right = e.dp(node{gi + 1, nd.i2, i, next, l2, c2})
					rights[next] = right
				}
				if right >= infinite {
					continue
				}
				if c := left + right + e.model.boundary(l1, next, ctx); c < best.cost {
					best = entry{cost: c, choice: choiceB, tp: int32(gi), lp: -1, lpp: int16(next)}
				}
			}
			continue
		}

		for busy := 1; busy <= e.p; busy++ { // profile height at t′, including j_k
			lv := e.model.leftLevel(busy)
			left := e.dp(node{nd.i1, gi, kL, l1, lv, 1})
			if left >= infinite {
				continue
			}
			for next := 0; next <= e.p; next++ {
				right := rights[next]
				if right < 0 {
					right = e.dp(node{gi + 1, nd.i2, i, next, l2, c2})
					rights[next] = right
				}
				if right >= infinite {
					continue
				}
				if c := left + right + e.model.boundary(busy, next, ctx); c < best.cost {
					best = entry{cost: c, choice: choiceB, tp: int32(gi), lp: int16(lv), lpp: int16(next)}
				}
			}
		}
	}
	*rp = rights
	rightsPool.Put(rp)
	return best
}

// rebuild replays the recorded choices, recording job→time placements.
func (e *engine[M]) rebuild(nd node, placed map[int]int) {
	r, ok := e.memo.get(nd)
	if !ok || r.choice == choiceNone {
		return
	}
	t1, t2 := e.t1val[nd.i1], e.t2val[nd.i2]
	k := nd.k
	switch r.choice {
	case choiceEmpty:
		return
	case choicePoint:
		for _, j := range e.list(t1, t2)[:k] {
			placed[j] = t1
		}
	case choiceA:
		jk := e.list(t1, t2)[k-1]
		placed[jk] = t2
		cl2, cc2, _ := e.model.caseAChild(nd.l2, nd.c2)
		e.rebuild(node{nd.i1, nd.i2, k - 1, nd.l1, cl2, cc2}, placed)
	case choiceB:
		list := e.list(t1, t2)
		jk := list[k-1]
		gi := int(r.tp)
		tp := e.grid[gi]
		placed[jk] = tp
		i := pendingAfter(e.jobs, list, k, tp)
		kL := k - 1 - i
		if r.lp < 0 {
			pl1, pl2, _ := e.model.pointLeft(nd.l1, kL)
			e.rebuild(node{nd.i1, gi, kL, pl1, pl2, 1}, placed)
		} else {
			e.rebuild(node{nd.i1, gi, kL, nd.l1, int(r.lp), 1}, placed)
		}
		e.rebuild(node{gi + 1, nd.i2, i, int(r.lpp), nd.l2, nd.c2}, placed)
	}
}
