// Package core implements the paper's primary contribution: exact
// polynomial-time dynamic programs for multiprocessor gap scheduling
// (Theorem 1) and multiprocessor power minimization (Theorem 2).
//
// Both programs share one skeleton, the interval decomposition that
// Demaine et al. build on top of Baptiste's single-machine DP [Bap06]:
//
//   - Lemma 1/2 (staircase form): some optimal solution occupies, at
//     every time, a prefix of the processors; only the occupancy
//     (resp. active-count) profile l_t matters, and the objective is the
//     number of profile span-starts Σ_u (l_u − l_{u−1})_+ — the total
//     number of sleep→active transitions. (See DESIGN.md §1 for why
//     transitions, not per-processor finite gaps, is the consistent
//     objective; on one processor gaps = spans − 1.)
//
//   - Subproblem identity: C(t1, t2, k, ℓ1, ℓ2, c2) schedules
//     J(t1,t2,k) — the k earliest-deadline jobs among those released in
//     [t1, t2] — inside [t1, t2], where ℓ1/ℓ2 pin the boundary profile
//     levels and c2 counts "context" jobs stacked at t2 by ancestors
//     (the paper's q). Recursing on the latest-deadline job j_k placed
//     at a guessed time t′ (maximal over optimal solutions, so jobs
//     scheduled after t′ are released after t′) splits the problem into
//     [t1, t′] and [t′+1, t2], and both children's job sets are again
//     deadline-prefixes of release windows.
//
//   - Candidate times: by the span-anchoring argument (Baptiste's
//     Prop 2.1 extended to profiles, and to the power objective via
//     concavity of gap-bridging costs in the shift), some optimal
//     solution only executes jobs at times within distance n of a
//     release or a deadline, an O(n²)-size grid.
//
// Every boundary u (the span-start/active-unit charge between times u−1
// and u) is owned by exactly one node of the recursion tree: a node
// owns u ∈ (t1, t2], delegates (t1, t′] to its left child and
// (t′+1, t2] minus {t′+1} to its right child, and pays for u = t′+1
// itself.
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/sched"
)

// ErrInfeasible is returned when the instance admits no feasible
// schedule.
var ErrInfeasible = errors.New("core: instance is infeasible")

// base holds the instance view shared by every engine instantiation.
type base struct {
	jobs []sched.Job
	p    int
	byDL []int // all job indices in (deadline, release, index) order
	grid []int // candidate execution times, sorted ascending

	listMu sync.RWMutex     // guards lists: parallel-root workers share the cache
	lists  map[[2]int][]int // (t1,t2) → R(t1,t2) in deadline order
}

func newBase(in sched.Instance) *base {
	b := &base{
		jobs:  in.Jobs,
		p:     in.Procs,
		byDL:  in.SortedByDeadline(),
		lists: make(map[[2]int][]int),
	}
	// No schedule ever occupies more than n processors at once, and no
	// optimal profile rises above the busiest time, so capping p at n
	// preserves the optimum while shrinking the level dimensions of the
	// memo table.
	if b.p > len(in.Jobs) {
		b.p = len(in.Jobs)
	}
	n := len(in.Jobs)
	lo, hi := in.TimeHorizon()
	gridSet := make(map[int]struct{})
	add := func(center int) {
		from, to := center-n, center+n
		if from < lo {
			from = lo
		}
		if to > hi {
			to = hi
		}
		for t := from; t <= to; t++ {
			gridSet[t] = struct{}{}
		}
	}
	for _, j := range in.Jobs {
		add(j.Release)
		add(j.Deadline)
	}
	b.grid = make([]int, 0, len(gridSet))
	for t := range gridSet {
		b.grid = append(b.grid, t)
	}
	sort.Ints(b.grid)
	return b
}

// list returns the deadline-ordered global job indices released in
// [t1, t2], cached per interval.
func (b *base) list(t1, t2 int) []int {
	key := [2]int{t1, t2}
	b.listMu.RLock()
	l, ok := b.lists[key]
	b.listMu.RUnlock()
	if ok {
		return l
	}
	l = []int{}
	for _, j := range b.byDL {
		if a := b.jobs[j].Release; t1 <= a && a <= t2 {
			l = append(l, j)
		}
	}
	b.listMu.Lock()
	b.lists[key] = l
	b.listMu.Unlock()
	return l
}

// gridRange returns the half-open index range of grid times within
// [lo, hi].
func (b *base) gridRange(lo, hi int) (int, int) {
	return sort.SearchInts(b.grid, lo), sort.SearchInts(b.grid, hi+1)
}

// pendingAfter counts, among the first k−1 jobs of list, those released
// strictly after t (the i of the recurrence: jobs that must go to the
// right subproblem when j_k is placed at t).
func pendingAfter(jobs []sched.Job, list []int, k, t int) int {
	cnt := 0
	for _, j := range list[:k-1] {
		if jobs[j].Release > t {
			cnt++
		}
	}
	return cnt
}

// choice kinds recorded for reconstruction. choiceUnset must stay zero:
// the flat memo table treats a zero entry as "not yet computed".
const (
	choiceUnset  = iota // memo slot never written
	choiceNone          // infeasible
	choiceEmpty         // base case, no own jobs
	choicePoint         // base case t1 == t2, all k jobs at t1
	choiceA             // j_k placed at t2 (paper case t′ = t2)
	choiceB             // j_k placed at t′ < t2, split into two children
	choicePruned        // cut by branch and bound; cost holds the budget
)

// Result reports the outcome of an exact gap-scheduling solve.
type Result struct {
	// Spans is the optimal number of spans (wake-ups) summed over
	// processors.
	Spans int
	// Gaps is Spans−1 (clamped at 0): the idle periods in the
	// concatenated-timeline convention; on one processor this is the
	// classic gap count.
	Gaps int
	// Schedule is an optimal schedule in staircase form.
	Schedule sched.Schedule
	// States is the number of memoized subproblems, a measure of the
	// DP's effective size.
	States int
	// PrunedStates counts subproblems answered by the branch-and-bound
	// lower bound (or a memoized prune marker) without being expanded;
	// 0 when pruning is disabled.
	PrunedStates int
	// ExpandedStates counts subproblems the recursion actually expanded.
	ExpandedStates int
}

// PowerResult reports the outcome of an exact power-minimization solve.
type PowerResult struct {
	// Power is the optimal power consumption: active units plus Alpha
	// per sleep→active transition, with idle-active bridging permitted.
	Power float64
	// Schedule is an optimal schedule in staircase form.
	Schedule sched.Schedule
	// States is the number of memoized subproblems.
	States int
	// PrunedStates counts subproblems answered by the branch-and-bound
	// lower bound without being expanded; 0 when pruning is disabled.
	PrunedStates int
	// ExpandedStates counts subproblems the recursion actually expanded.
	ExpandedStates int
}

// assemble builds a staircase schedule from job→time placements.
func assemble(n, procs int, placed map[int]int) (sched.Schedule, error) {
	if len(placed) != n {
		return sched.Schedule{}, fmt.Errorf("core: reconstruction placed %d of %d jobs", len(placed), n)
	}
	byTime := make(map[int][]int)
	for j, t := range placed {
		byTime[t] = append(byTime[t], j)
	}
	s := sched.Schedule{Procs: procs, Slots: make([]sched.Assignment, n)}
	for t, js := range byTime {
		sort.Ints(js)
		if len(js) > procs {
			return sched.Schedule{}, fmt.Errorf("core: %d jobs at time %d exceed %d processors", len(js), t, procs)
		}
		for q, j := range js {
			s.Slots[j] = sched.Assignment{Proc: q, Time: t}
		}
	}
	return s, nil
}
