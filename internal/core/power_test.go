package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/exact"
	"repro/internal/sched"
	"repro/internal/workload"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSolvePowerTrivial(t *testing.T) {
	cases := []struct {
		name  string
		in    sched.Instance
		alpha float64
		power float64
	}{
		{"empty", sched.NewInstance(nil), 2, 0},
		{"single job", sched.NewInstance([]sched.Job{{Release: 0, Deadline: 5}}), 2, 3},
		{"chain", workload.TightChain(4), 3, 7},
		// Two jobs two apart: bridge (cost 1) beats sleeping (alpha=2):
		// 2 busy + alpha + 1 bridge = 5.
		{"bridge short gap", sched.NewInstance([]sched.Job{
			{Release: 0, Deadline: 0}, {Release: 2, Deadline: 2}}), 2, 5},
		// Gap of 5 with alpha=2: sleep. 2 busy + 2 wakes * 2 = 6.
		{"sleep long gap", sched.NewInstance([]sched.Job{
			{Release: 0, Deadline: 0}, {Release: 6, Deadline: 6}}), 2, 6},
		// alpha = 0: transitions free; any feasible schedule costs n.
		{"alpha zero", sched.NewInstance([]sched.Job{
			{Release: 0, Deadline: 0}, {Release: 4, Deadline: 4}}), 0, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := SolvePower(tc.in, tc.alpha)
			if err != nil {
				t.Fatalf("SolvePower: %v", err)
			}
			if !almostEqual(res.Power, tc.power) {
				t.Fatalf("power = %v, want %v", res.Power, tc.power)
			}
		})
	}
}

func TestSolvePowerMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	alphas := []float64{0, 0.5, 1, 2, 3.5, 10}
	for trial := 0; trial < 250; trial++ {
		n := 1 + rng.Intn(7)
		p := 1 + rng.Intn(3)
		alpha := alphas[rng.Intn(len(alphas))]
		in := workload.Multiproc(rng, n, p, 10, 4)
		want, feasible := exact.PowerOneInterval(in, alpha)
		res, err := SolvePower(in, alpha)
		if !feasible {
			if err != ErrInfeasible {
				t.Fatalf("trial %d: oracle infeasible, DP err %v (p=%d α=%v jobs %v)", trial, err, p, alpha, in.Jobs)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: DP failed on feasible instance: %v (p=%d α=%v jobs %v)", trial, err, p, alpha, in.Jobs)
		}
		if !almostEqual(res.Power, want) {
			t.Fatalf("trial %d: DP power %v, oracle %v (p=%d α=%v jobs %v)", trial, res.Power, want, p, alpha, in.Jobs)
		}
		if got := res.Schedule.PowerCost(alpha); !almostEqual(got, want) {
			t.Fatalf("trial %d: schedule power %v, oracle %v (p=%d α=%v jobs %v)", trial, got, want, p, alpha, in.Jobs)
		}
	}
}

// TestPowerOracleMatchesUltraBrute certifies the staircase normalization
// of the power oracle against a normalization-free enumeration.
func TestPowerOracleMatchesUltraBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	alphas := []float64{0.5, 1.5, 4}
	for trial := 0; trial < 80; trial++ {
		n := 1 + rng.Intn(5)
		p := 1 + rng.Intn(2)
		alpha := alphas[rng.Intn(len(alphas))]
		in := workload.Multiproc(rng, n, p, 7, 3)
		a, okA := exact.PowerOneInterval(in, alpha)
		b, okB := exact.UltraBrutePower(in, alpha)
		if okA != okB {
			t.Fatalf("trial %d: oracle feasible=%v ultra-brute=%v (p=%d jobs %v)", trial, okA, okB, p, in.Jobs)
		}
		if okA && !almostEqual(a, b) {
			t.Fatalf("trial %d: oracle %v, ultra-brute %v (p=%d α=%v jobs %v)", trial, a, b, p, alpha, in.Jobs)
		}
	}
}

// TestPowerGapConsistency checks the relations between the two optima:
// the power optimum is bounded above by the optimal-bridging power of the
// gap-optimal schedule, bounded below by n + alpha (one wake-up is
// unavoidable), and equals exactly n when transitions are free.
func TestPowerGapConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	alphas := []float64{0.5, 2, 1000}
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(7)
		p := 1 + rng.Intn(2)
		alpha := alphas[trial%len(alphas)]
		in := workload.FeasibleOneInterval(rng, n, p, 10, 4)
		gapRes, err := SolveGaps(in)
		if err != nil {
			t.Fatalf("trial %d: SolveGaps: %v", trial, err)
		}
		powRes, err := SolvePower(in, alpha)
		if err != nil {
			t.Fatalf("trial %d: SolvePower: %v", trial, err)
		}
		upper := gapRes.Schedule.PowerCost(alpha)
		if powRes.Power > upper+1e-9 {
			t.Fatalf("trial %d: power %v exceeds gap-schedule power %v (p=%d α=%v jobs %v)",
				trial, powRes.Power, upper, p, alpha, in.Jobs)
		}
		if lower := float64(n) + alpha; powRes.Power < lower-1e-9 {
			t.Fatalf("trial %d: power %v below n+α = %v", trial, powRes.Power, lower)
		}
		free, err := SolvePower(in, 0)
		if err != nil {
			t.Fatalf("trial %d: SolvePower(0): %v", trial, err)
		}
		if !almostEqual(free.Power, float64(n)) {
			t.Fatalf("trial %d: α=0 power %v, want n = %d", trial, free.Power, n)
		}
	}
}

func TestSolvePowerRejectsNegativeAlpha(t *testing.T) {
	in := sched.NewInstance([]sched.Job{{Release: 0, Deadline: 1}})
	if _, err := SolvePower(in, -1); err == nil {
		t.Fatal("want error for negative alpha")
	}
}
