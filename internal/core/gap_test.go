package core

import (
	"math/rand"
	"testing"

	"repro/internal/exact"
	"repro/internal/feas"
	"repro/internal/sched"
	"repro/internal/workload"
)

func TestSolveGapsTrivial(t *testing.T) {
	cases := []struct {
		name  string
		in    sched.Instance
		spans int
	}{
		{"empty", sched.NewInstance(nil), 0},
		{"single job", sched.NewInstance([]sched.Job{{Release: 3, Deadline: 7}}), 1},
		{"chain", workload.TightChain(5), 1},
		{"two isolated", sched.NewInstance([]sched.Job{{Release: 0, Deadline: 0}, {Release: 10, Deadline: 10}}), 2},
		{"mergeable", sched.NewInstance([]sched.Job{{Release: 0, Deadline: 2}, {Release: 0, Deadline: 2}}), 1},
		{"forced gap", sched.NewInstance([]sched.Job{{Release: 0, Deadline: 0}, {Release: 2, Deadline: 2}}), 2},
		{"bridgeable window", sched.NewInstance([]sched.Job{
			{Release: 0, Deadline: 0}, {Release: 0, Deadline: 4}, {Release: 2, Deadline: 2}}), 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := SolveGaps(tc.in)
			if err != nil {
				t.Fatalf("SolveGaps: %v", err)
			}
			if res.Spans != tc.spans {
				t.Fatalf("spans = %d, want %d", res.Spans, tc.spans)
			}
			if len(tc.in.Jobs) > 0 && res.Schedule.Spans() != res.Spans {
				t.Fatalf("schedule has %d spans, DP claims %d", res.Schedule.Spans(), res.Spans)
			}
		})
	}
}

func TestSolveGapsInfeasible(t *testing.T) {
	in := sched.NewInstance([]sched.Job{
		{Release: 0, Deadline: 0},
		{Release: 0, Deadline: 0},
	})
	if _, err := SolveGaps(in); err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	in.Procs = 2
	if _, err := SolveGaps(in); err != nil {
		t.Fatalf("two processors make it feasible, got %v", err)
	}
}

func TestSolveGapsMatchesOracleSingleProc(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(8)
		in := workload.OneInterval(rng, n, 12, 5)
		want, feasible := exact.SpansOneInterval(in)
		res, err := SolveGaps(in)
		if !feasible {
			if err != ErrInfeasible {
				t.Fatalf("trial %d: oracle says infeasible, DP says %v (instance %v)", trial, err, in.Jobs)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: oracle feasible but DP failed: %v (instance %v)", trial, err, in.Jobs)
		}
		if res.Spans != want {
			t.Fatalf("trial %d: DP spans %d, oracle %d (instance %v)", trial, res.Spans, want, in.Jobs)
		}
		if got := res.Schedule.Spans(); got != want {
			t.Fatalf("trial %d: reconstructed schedule has %d spans, want %d", trial, got, want)
		}
	}
}

func TestSolveGapsMatchesOracleMultiProc(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(8)
		p := 1 + rng.Intn(3)
		in := workload.Multiproc(rng, n, p, 10, 4)
		want, feasible := exact.SpansOneInterval(in)
		res, err := SolveGaps(in)
		if !feasible {
			if err != ErrInfeasible {
				t.Fatalf("trial %d: oracle infeasible, DP err %v (p=%d jobs %v)", trial, err, p, in.Jobs)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: DP failed on feasible instance: %v (p=%d jobs %v)", trial, err, p, in.Jobs)
		}
		if res.Spans != want {
			t.Fatalf("trial %d: DP spans %d, oracle %d (p=%d jobs %v)", trial, res.Spans, want, p, in.Jobs)
		}
	}
}

// TestOracleMatchesUltraBrute certifies the staircase/EDF normalizations
// of the oracle itself against a normalization-free enumeration.
func TestOracleMatchesUltraBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 120; trial++ {
		n := 1 + rng.Intn(5)
		p := 1 + rng.Intn(2)
		in := workload.Multiproc(rng, n, p, 7, 3)
		a, okA := exact.SpansOneInterval(in)
		b, okB := exact.UltraBruteSpans(in)
		if okA != okB {
			t.Fatalf("trial %d: oracle feasible=%v, ultra-brute=%v (p=%d jobs %v)", trial, okA, okB, p, in.Jobs)
		}
		if okA && a != b {
			t.Fatalf("trial %d: oracle %d, ultra-brute %d (p=%d jobs %v)", trial, a, b, p, in.Jobs)
		}
	}
}

func TestSolveGapsFeasibilityAgreesWithHall(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(7)
		p := 1 + rng.Intn(2)
		in := workload.Multiproc(rng, n, p, 8, 3)
		_, feasible := exact.SpansOneInterval(in)
		if hall := feas.FeasibleOneInterval(in); hall != feasible {
			t.Fatalf("trial %d: Hall=%v oracle=%v (p=%d jobs %v)", trial, hall, feasible, p, in.Jobs)
		}
	}
}

func TestSolveGapsLargerSmoke(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in := workload.FeasibleOneInterval(rng, 16, 2, 24, 6)
	res, err := SolveGaps(in)
	if err != nil {
		t.Fatalf("SolveGaps: %v", err)
	}
	if err := res.Schedule.Validate(in); err != nil {
		t.Fatalf("invalid schedule: %v", err)
	}
	if res.Schedule.Spans() != res.Spans {
		t.Fatalf("schedule spans %d != claimed %d", res.Schedule.Spans(), res.Spans)
	}
}
