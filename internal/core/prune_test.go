package core

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/workload"
)

// TestPrunedGapsMatchesUnpruned is the branch-and-bound contract:
// pruning may skip states but must not change the optimum or the
// reconstructed schedule, bit for bit.
func TestPrunedGapsMatchesUnpruned(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	sawPrune := false
	for trial := 0; trial < 400; trial++ {
		n := 1 + rng.Intn(9)
		p := 1 + rng.Intn(3)
		in := workload.FeasibleOneInterval(rng, n, p, 4+rng.Intn(26), 1+rng.Intn(5))
		pruned, err1 := SolveGaps(in)
		plain, err2 := SolveGapsOpt(in, Options{NoPrune: true})
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("feasibility disagreement: %v vs %v (jobs %v procs %d)", err1, err2, in.Jobs, in.Procs)
		}
		if err1 != nil {
			continue
		}
		if pruned.Spans != plain.Spans || pruned.Gaps != plain.Gaps {
			t.Fatalf("pruned spans %d != unpruned %d (jobs %v procs %d)", pruned.Spans, plain.Spans, in.Jobs, in.Procs)
		}
		if !reflect.DeepEqual(pruned.Schedule, plain.Schedule) {
			t.Fatalf("pruned schedule differs (jobs %v procs %d):\n%v\nvs\n%v", in.Jobs, in.Procs, pruned.Schedule, plain.Schedule)
		}
		if plain.PrunedStates != 0 {
			t.Fatalf("NoPrune run reported %d pruned states", plain.PrunedStates)
		}
		if pruned.PrunedStates > 0 {
			sawPrune = true
		}
	}
	if !sawPrune {
		t.Fatal("no trial pruned anything; bound or budget wiring is dead")
	}
}

// TestPrunedPowerMatchesUnpruned is the same contract for the power DP,
// across a spread of transition costs.
func TestPrunedPowerMatchesUnpruned(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	sawPrune := false
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(8)
		p := 1 + rng.Intn(2)
		alpha := float64(rng.Intn(9)) / 2
		in := workload.FeasibleOneInterval(rng, n, p, 4+rng.Intn(24), 1+rng.Intn(5))
		pruned, err1 := SolvePower(in, alpha)
		plain, err2 := SolvePowerOpt(in, alpha, Options{NoPrune: true})
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("feasibility disagreement: %v vs %v (jobs %v procs %d α=%v)", err1, err2, in.Jobs, in.Procs, alpha)
		}
		if err1 != nil {
			continue
		}
		if pruned.Power != plain.Power {
			t.Fatalf("pruned power %v != unpruned %v (jobs %v procs %d α=%v)", pruned.Power, plain.Power, in.Jobs, in.Procs, alpha)
		}
		if !reflect.DeepEqual(pruned.Schedule, plain.Schedule) {
			t.Fatalf("pruned schedule differs (jobs %v procs %d α=%v):\n%v\nvs\n%v", in.Jobs, in.Procs, alpha, pruned.Schedule, plain.Schedule)
		}
		if plain.PrunedStates != 0 {
			t.Fatalf("NoPrune run reported %d pruned states", plain.PrunedStates)
		}
		if pruned.PrunedStates > 0 {
			sawPrune = true
		}
	}
	if !sawPrune {
		t.Fatal("no trial pruned anything; bound or budget wiring is dead")
	}
}

// TestPruningShrinksDenseSolve pins the point of the exercise: on a
// dense single-fragment instance the bounded run must expand strictly
// fewer states than the unbounded one (wall-clock speedups are measured
// by E21; state counts are the deterministic proxy).
func TestPruningShrinksDenseSolve(t *testing.T) {
	if testing.Short() {
		t.Skip("dense instance")
	}
	rng := rand.New(rand.NewSource(63))
	in := workload.StressDense(rng, 120, 2)
	start := time.Now()
	pruned, err := SolveGaps(in)
	prunedDur := time.Since(start)
	if err != nil {
		t.Fatalf("SolveGaps: %v", err)
	}
	start = time.Now()
	plain, err := SolveGapsOpt(in, Options{NoPrune: true})
	plainDur := time.Since(start)
	if err != nil {
		t.Fatalf("SolveGapsOpt: %v", err)
	}
	if pruned.Spans != plain.Spans {
		t.Fatalf("pruned spans %d != unpruned %d", pruned.Spans, plain.Spans)
	}
	if pruned.ExpandedStates >= plain.ExpandedStates {
		t.Fatalf("pruning expanded %d states, unpruned %d — no reduction",
			pruned.ExpandedStates, plain.ExpandedStates)
	}
	t.Logf("dense n=120: expanded %d vs %d unpruned (pruned %d cuts), %v vs %v",
		pruned.ExpandedStates, plain.ExpandedStates, pruned.PrunedStates, prunedDur, plainDur)
}
