package core

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/workload"
)

// TestParallelRootMatchesSerial certifies the intra-fragment parallel
// root: on a fragment above parallelRootMinJobs, fanning the root's
// case-B grid points across workers must reproduce the serial solve bit
// for bit — cost and reconstructed schedule. GOMAXPROCS gates the
// parallel path, so the test drives both settings explicitly.
func TestParallelRootMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("dense instance")
	}
	rng := rand.New(rand.NewSource(71))
	in := workload.StressDense(rng, parallelRootMinJobs+28, 3)

	prev := runtime.GOMAXPROCS(1)
	serial, serr := SolveGaps(in)
	serialNP, snperr := SolveGapsOpt(in, Options{NoPrune: true})
	runtime.GOMAXPROCS(4)
	par, perr := SolveGaps(in)
	parNP, pnperr := SolveGapsOpt(in, Options{NoPrune: true})
	runtime.GOMAXPROCS(prev)

	for _, err := range []error{serr, snperr, perr, pnperr} {
		if err != nil {
			t.Fatalf("solve failed: %v", err)
		}
	}
	if par.Spans != serial.Spans {
		t.Fatalf("parallel spans %d != serial %d", par.Spans, serial.Spans)
	}
	if !reflect.DeepEqual(par.Schedule, serial.Schedule) {
		t.Fatal("parallel schedule differs from serial")
	}
	if parNP.Spans != serial.Spans {
		t.Fatalf("parallel NoPrune spans %d != serial %d", parNP.Spans, serial.Spans)
	}
	if !reflect.DeepEqual(parNP.Schedule, serialNP.Schedule) {
		t.Fatal("parallel NoPrune schedule differs from serial NoPrune")
	}
	if parNP.PrunedStates != 0 {
		t.Fatalf("parallel NoPrune reported %d pruned states", parNP.PrunedStates)
	}
	// NoPrune visits the full reachable state set regardless of worker
	// interleaving: racing duplicate computations merge into one entry.
	if parNP.States != serialNP.States {
		t.Fatalf("parallel NoPrune states %d != serial %d", parNP.States, serialNP.States)
	}
}

// TestParallelRootPower is the same contract for the power DP.
func TestParallelRootPower(t *testing.T) {
	if testing.Short() {
		t.Skip("dense instance")
	}
	rng := rand.New(rand.NewSource(72))
	in := workload.StressDense(rng, parallelRootMinJobs+13, 2)

	prev := runtime.GOMAXPROCS(1)
	serial, serr := SolvePower(in, 2.5)
	runtime.GOMAXPROCS(4)
	par, perr := SolvePower(in, 2.5)
	runtime.GOMAXPROCS(prev)

	if serr != nil || perr != nil {
		t.Fatalf("solve failed: %v / %v", serr, perr)
	}
	if par.Power != serial.Power {
		t.Fatalf("parallel power %v != serial %v", par.Power, serial.Power)
	}
	if !reflect.DeepEqual(par.Schedule, serial.Schedule) {
		t.Fatal("parallel schedule differs from serial")
	}
}
