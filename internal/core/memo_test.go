package core

import "testing"

// TestMemoPoolSteadyStateAllocs pins the point of pooling memo tables:
// once the pool is warm, a solve-sized get → put → release cycle must
// not allocate at all. AllocsPerRun's warm-up invocation primes the
// pool, so the measured runs all hit recycled tables.
func TestMemoPoolSteadyStateAllocs(t *testing.T) {
	cycle := func() {
		m := newMemoTable(8, 6, 2)
		for i1 := 0; i1 < 4; i1++ {
			for k := 0; k < 6; k++ {
				for l2 := 0; l2 < 2; l2++ {
					m.put(node{i1: i1, i2: 8, k: k, l2: l2}, entry{cost: float64(k), choice: choiceA})
				}
			}
		}
		m.release()
	}
	if n := testing.AllocsPerRun(200, cycle); n != 0 {
		t.Fatalf("steady-state memo cycle allocates %v times per run; pooling is broken", n)
	}
}

// TestMemoPoolClearsOnGet guards against the classic pooling bug: a
// recycled table must never serve entries from its previous life.
func TestMemoPoolClearsOnGet(t *testing.T) {
	m := newMemoTable(8, 6, 2)
	nd := node{i1: 1, i2: 3, k: 2, l1: 1, l2: 1, c2: 0}
	m.put(nd, entry{cost: 7, choice: choiceA})
	m.release()
	m2 := newMemoTable(8, 6, 2)
	if _, ok := m2.get(nd); ok {
		t.Fatal("recycled memo table served a stale entry")
	}
	if m2.entries() != 0 {
		t.Fatalf("recycled memo table reports %d entries", m2.entries())
	}
	m2.release()
}

// TestMergeEntry pins the double-write resolution rules the concurrent
// sharded table relies on.
func TestMergeEntry(t *testing.T) {
	exact := entry{cost: 3, choice: choiceB}
	weak := entry{cost: 5, choice: choicePruned}
	strong := entry{cost: 9, choice: choicePruned}
	if got := mergeEntry(exact, strong); got != exact {
		t.Fatalf("marker displaced exact entry: %+v", got)
	}
	if got := mergeEntry(weak, exact); got != exact {
		t.Fatalf("exact did not displace marker: %+v", got)
	}
	if got := mergeEntry(weak, strong); got != strong {
		t.Fatalf("larger marker budget lost: %+v", got)
	}
	if got := mergeEntry(strong, weak); got != strong {
		t.Fatalf("smaller marker budget won: %+v", got)
	}
}
