package core

import (
	"repro/internal/feas"
	"repro/internal/sched"
)

const infPower = float64(1 << 60)

// powerResult is one memo entry of the power DP.
type powerResult struct {
	cost   float64
	choice int8
	tp     int32 // j_k's time for choiceB
	ap     int8  // active level at t′ (choiceB, t′ > t1)
	app    int8  // active level at t′+1 (choiceB)
}

type powerSolver struct {
	*base
	alpha float64
	memo  map[state]powerResult
}

// SolvePower computes an optimal minimum-power schedule for a
// one-interval p-processor instance with transition cost alpha
// (Theorem 2). Processors may remain active without executing a job
// (bridging); the optimum therefore bridges exactly the gaps shorter
// than alpha. It returns ErrInfeasible when no feasible schedule exists.
//
// In this DP the state levels l1/l2 are *active* processor counts; the
// context count c2 is the number of ancestor jobs executing at t2, which
// lower-bounds the active level there. The cost of a state is
// Σ_{u ∈ (t1, t2]} A_u + alpha·(A_u − A_{u−1})_+ over active profiles A.
func SolvePower(in sched.Instance, alpha float64) (PowerResult, error) {
	if err := in.Validate(); err != nil {
		return PowerResult{}, err
	}
	if alpha < 0 {
		return PowerResult{}, errNegativeAlpha
	}
	n := len(in.Jobs)
	if n == 0 {
		return PowerResult{Schedule: sched.Schedule{Procs: in.Procs}}, nil
	}
	if !feas.FeasibleOneInterval(in) {
		return PowerResult{}, ErrInfeasible
	}
	s := &powerSolver{base: newBase(in), alpha: alpha, memo: make(map[state]powerResult)}
	tStart := s.grid[0] - 1
	tEnd := s.grid[len(s.grid)-1] + 1
	root := mkState(tStart, tEnd, n, 0, 0, 0)
	cost := s.dp(root)
	if cost >= infPower {
		return PowerResult{}, ErrInfeasible
	}
	placed := make(map[int]int, n)
	s.rebuild(root, placed)
	schedule, err := assemble(n, in.Procs, placed)
	if err != nil {
		return PowerResult{}, err
	}
	if err := schedule.Validate(in); err != nil {
		return PowerResult{}, err
	}
	return PowerResult{Power: cost, Schedule: schedule, States: len(s.memo)}, nil
}

var errNegativeAlpha = errInvalid("core: negative transition cost alpha")

type errInvalid string

func (e errInvalid) Error() string { return string(e) }

func (s *powerSolver) dp(st state) float64 {
	if r, ok := s.memo[st]; ok {
		return r.cost
	}
	r := s.compute(st)
	s.memo[st] = r
	return r.cost
}

// emptyCost solves the jobless base case in closed form: boundary active
// levels a1 (at t1) and a2 (at t2) with interior width L = t2−t1−1.
// Up to min(a1, a2) processors may bridge the interior (cost L each, no
// transition at t2); the remaining a2−b wake at t2 (cost alpha each);
// everyone pays one active unit at t2.
func (s *powerSolver) emptyCost(a1, a2, width int) float64 {
	best := infPower
	maxB := a1
	if a2 < maxB {
		maxB = a2
	}
	for b := 0; b <= maxB; b++ {
		c := float64(a2) + float64(b*width) + s.alpha*float64(a2-b)
		if c < best {
			best = c
		}
	}
	return best
}

func (s *powerSolver) compute(st state) powerResult {
	t1, t2 := int(st.t1), int(st.t2)
	k, a1, a2, c2 := int(st.k), int(st.l1), int(st.l2), int(st.c2)
	inf := powerResult{cost: infPower, choice: choiceNone}

	if a1 < 0 || a2 < 0 || c2 < 0 || a1 > s.p || a2 > s.p || c2 > a2 {
		return inf
	}

	// Base: no own jobs. Busy level is c2 at t2 (context) and 0 inside.
	if k == 0 {
		if t1 == t2 {
			if a1 != a2 {
				return inf
			}
			return powerResult{cost: 0, choice: choiceEmpty}
		}
		return powerResult{cost: s.emptyCost(a1, a2, t2-t1-1), choice: choiceEmpty}
	}

	list := s.list(t1, t2)
	if k > len(list) {
		return inf
	}

	// Base: single time unit; all k own jobs and c2 context jobs at t1.
	if t1 == t2 {
		if a1 != a2 || k+c2 > a2 {
			return inf
		}
		return powerResult{cost: 0, choice: choicePoint}
	}

	jk := list[k-1]
	job := s.jobs[jk]
	best := inf

	// Case A: j_k at t2, joining the context stack.
	if job.Deadline >= t2 && c2+1 <= a2 {
		if c := s.dp(mkState(t1, t2, k-1, a1, a2, c2+1)); c < best.cost {
			best = powerResult{cost: c, choice: choiceA}
		}
	}

	// Case B: j_k at a grid time t′ with t1 ≤ t′ < t2.
	lo := job.Release
	if lo < t1 {
		lo = t1
	}
	hi := job.Deadline
	if hi > t2-1 {
		hi = t2 - 1
	}
	for _, tp := range s.gridIn(lo, hi) {
		i := pendingAfter(s.jobs, list, k, tp)
		kL := k - 1 - i

		if tp == t1 {
			// Left child is the single point t1 with j_k as context.
			left := s.dp(mkState(t1, t1, kL, a1, a1, 1))
			if left >= infPower {
				continue
			}
			for app := 0; app <= s.p; app++ {
				right := s.dp(mkState(t1+1, t2, i, app, a2, c2))
				if right >= infPower {
					continue
				}
				c := left + right + s.boundary(a1, app)
				if c < best.cost {
					best = powerResult{cost: c, choice: choiceB, tp: int32(tp), ap: int8(-1), app: int8(app)}
				}
			}
			continue
		}

		for ap := 1; ap <= s.p; ap++ { // active level at t′ must cover j_k
			left := s.dp(mkState(t1, tp, kL, a1, ap, 1))
			if left >= infPower {
				continue
			}
			for app := 0; app <= s.p; app++ {
				right := s.dp(mkState(tp+1, t2, i, app, a2, c2))
				if right >= infPower {
					continue
				}
				c := left + right + s.boundary(ap, app)
				if c < best.cost {
					best = powerResult{cost: c, choice: choiceB, tp: int32(tp), ap: int8(ap), app: int8(app)}
				}
			}
		}
	}
	return best
}

// boundary is the cost owned by the parent for time unit t′+1: its
// active units plus wake transitions relative to the level at t′.
func (s *powerSolver) boundary(atTP, atNext int) float64 {
	c := float64(atNext)
	if atNext > atTP {
		c += s.alpha * float64(atNext-atTP)
	}
	return c
}

func (s *powerSolver) rebuild(st state, placed map[int]int) {
	r, ok := s.memo[st]
	if !ok || r.choice == choiceNone {
		return
	}
	t1, t2 := int(st.t1), int(st.t2)
	k := int(st.k)
	switch r.choice {
	case choiceEmpty:
		return
	case choicePoint:
		for _, j := range s.list(t1, t2)[:k] {
			placed[j] = t1
		}
	case choiceA:
		jk := s.list(t1, t2)[k-1]
		placed[jk] = t2
		s.rebuild(mkState(t1, t2, k-1, int(st.l1), int(st.l2), int(st.c2)+1), placed)
	case choiceB:
		list := s.list(t1, t2)
		jk := list[k-1]
		tp := int(r.tp)
		placed[jk] = tp
		i := pendingAfter(s.jobs, list, k, tp)
		kL := k - 1 - i
		if tp == t1 {
			s.rebuild(mkState(t1, t1, kL, int(st.l1), int(st.l1), 1), placed)
		} else {
			s.rebuild(mkState(t1, tp, kL, int(st.l1), int(r.ap), 1), placed)
		}
		s.rebuild(mkState(tp+1, t2, i, int(r.app), int(st.l2), int(st.c2)), placed)
	}
}
