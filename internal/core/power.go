package core

import (
	"repro/internal/feas"
	"repro/internal/heur"
	"repro/internal/sched"
)

// powerModel plugs the power objective (Theorem 2) into the shared
// engine. Levels are *active* processor counts — processors may stay
// active without executing a job (bridging) — and the c2 context jobs
// execute at t2, lower-bounding the active level there (c2 ≤ l2). The
// cost of a state is Σ_{u ∈ (t1, t2]} A_u + alpha·(A_u − A_{u−1})_+
// over active profiles A.
type powerModel struct {
	p     int
	alpha float64
}

func (m powerModel) stateOK(l1, l2, c2 int) bool { return l2 <= m.p && c2 <= l2 }

// emptyCost solves the jobless base case in closed form: boundary active
// levels l1 (at t1) and l2 (at t2) with interior width t2−t1−1. Up to
// min(l1, l2) processors may bridge the interior (cost width each, no
// transition at t2); the remaining l2−b wake at t2 (cost alpha each);
// everyone pays one active unit at t2.
func (m powerModel) emptyCost(l1, l2, c2, t1, t2 int) (float64, bool) {
	if t1 == t2 {
		return 0, l1 == l2
	}
	width := t2 - t1 - 1
	best := infinite
	maxB := l1
	if l2 < maxB {
		maxB = l2
	}
	for b := 0; b <= maxB; b++ {
		if c := float64(l2) + float64(b*width) + m.alpha*float64(l2-b); c < best {
			best = c
		}
	}
	return best, true
}

func (m powerModel) pointOK(k, l1, l2, c2 int) bool {
	return l1 == l2 && k+c2 <= l2
}

// caseAChild: the active level at t2 already covers the context, so
// only the context count grows.
func (m powerModel) caseAChild(l2, c2 int) (int, int, bool) {
	return l2, c2 + 1, c2+1 <= l2
}

// leftLevel: active levels include context, so the left child's level
// at t′ is the full profile height there.
func (m powerModel) leftLevel(busy int) int { return busy }

func (m powerModel) pointLeft(l1, kL int) (int, int, bool) {
	return l1, l1, true
}

// boundary: the parent-owned cost of time unit t′+1 — its active units
// plus wake transitions relative to the level at t′. Context at t2 is
// already inside the active level, so ctx is unused.
func (m powerModel) boundary(level, next, ctx int) float64 {
	c := float64(next)
	if next > level {
		c += m.alpha * float64(next-level)
	}
	return c
}

// nodeLB: the subinterval restriction of the heuristic tier's power
// bound (admissibility argued at heur.SubPowerLB).
func (m powerModel) nodeLB(k, l1, l2, c2, t1, t2 int) float64 {
	return heur.SubPowerLB(k, l1, l2, c2, t1, t2, m.alpha)
}

// SolvePower computes an optimal minimum-power schedule for a
// one-interval p-processor instance with transition cost alpha
// (Theorem 2). Processors may remain active without executing a job
// (bridging); the optimum therefore bridges exactly the gaps shorter
// than alpha. It returns ErrInfeasible when no feasible schedule exists.
func SolvePower(in sched.Instance, alpha float64) (PowerResult, error) {
	return SolvePowerOpt(in, alpha, Options{})
}

// SolvePowerOpt is SolvePower with explicit tuning options (FullGrid
// does not apply to the power DP and is ignored).
func SolvePowerOpt(in sched.Instance, alpha float64, opts Options) (PowerResult, error) {
	if err := in.Validate(); err != nil {
		return PowerResult{}, err
	}
	if alpha < 0 {
		return PowerResult{}, errNegativeAlpha
	}
	n := len(in.Jobs)
	if n == 0 {
		return PowerResult{Schedule: sched.Schedule{Procs: in.Procs}}, nil
	}
	if !feas.FeasibleOneInterval(in) {
		return PowerResult{}, ErrInfeasible
	}
	budget := infinite
	if !opts.NoPrune {
		if s, err := heur.Greedy(in); err == nil {
			budget = incumbentBudget(s.PowerCost(alpha))
		}
	}
	b := newBase(in)
	e := newEngine(b, powerModel{p: b.p, alpha: alpha})
	cost, placed, states, ok := e.run(n, budget)
	if !ok && budget < infinite {
		// Defensive, as in SolveGapsOpt: never let a too-tight incumbent
		// (conceivable only through float summation-order effects in the
		// greedy's cost) masquerade as infeasibility.
		cost, placed, states, ok = e.run(n, infinite)
	}
	if !ok {
		// Cannot happen after the Hall pre-check; defensive.
		return PowerResult{}, ErrInfeasible
	}
	schedule, err := assemble(n, in.Procs, placed)
	if err != nil {
		return PowerResult{}, err
	}
	if err := schedule.Validate(in); err != nil {
		return PowerResult{}, err
	}
	return PowerResult{Power: cost, Schedule: schedule, States: states,
		PrunedStates: int(e.pruned.Load()), ExpandedStates: int(e.expanded.Load())}, nil
}

var errNegativeAlpha = errInvalid("core: negative transition cost alpha")

type errInvalid string

func (e errInvalid) Error() string { return string(e) }
