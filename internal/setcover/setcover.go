// Package setcover implements the set-cover substrate used by the
// paper's hardness reductions (§4–§5): the classic greedy ln(n)
// approximation, an exact branch-and-bound solver for small instances,
// and generators for random (and B-bounded) coverable instances.
package setcover

import (
	"fmt"
	"math/rand"
	"sort"
)

// Instance is a set-cover instance: cover every element of
// {0..NumElems−1} using as few of the given sets as possible.
type Instance struct {
	NumElems int
	Sets     [][]int
}

// Validate checks element ranges and non-empty sets.
func (in Instance) Validate() error {
	if in.NumElems < 0 {
		return fmt.Errorf("setcover: negative universe size %d", in.NumElems)
	}
	for i, s := range in.Sets {
		if len(s) == 0 {
			return fmt.Errorf("setcover: set %d is empty", i)
		}
		for _, e := range s {
			if e < 0 || e >= in.NumElems {
				return fmt.Errorf("setcover: set %d contains out-of-range element %d", i, e)
			}
		}
	}
	return nil
}

// MaxSetSize returns the largest set cardinality (the B of B-set cover).
func (in Instance) MaxSetSize() int {
	b := 0
	for _, s := range in.Sets {
		if len(s) > b {
			b = len(s)
		}
	}
	return b
}

// Coverable reports whether the union of the sets is the whole universe.
func (in Instance) Coverable() bool {
	seen := make([]bool, in.NumElems)
	cnt := 0
	for _, s := range in.Sets {
		for _, e := range s {
			if !seen[e] {
				seen[e] = true
				cnt++
			}
		}
	}
	return cnt == in.NumElems
}

// IsCover reports whether the chosen set indices cover the universe.
func (in Instance) IsCover(chosen []int) bool {
	seen := make([]bool, in.NumElems)
	cnt := 0
	for _, i := range chosen {
		if i < 0 || i >= len(in.Sets) {
			return false
		}
		for _, e := range in.Sets[i] {
			if !seen[e] {
				seen[e] = true
				cnt++
			}
		}
	}
	return cnt == in.NumElems
}

// Greedy returns the classic greedy cover (repeatedly take the set
// covering the most uncovered elements), an H_n ≈ ln n approximation.
// Returns nil when the instance is not coverable.
func Greedy(in Instance) []int {
	if !in.Coverable() {
		return nil
	}
	covered := make([]bool, in.NumElems)
	remaining := in.NumElems
	var chosen []int
	for remaining > 0 {
		best, bestGain := -1, 0
		for i, s := range in.Sets {
			gain := 0
			for _, e := range s {
				if !covered[e] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			return nil
		}
		chosen = append(chosen, best)
		for _, e := range in.Sets[best] {
			if !covered[e] {
				covered[e] = true
				remaining--
			}
		}
	}
	sort.Ints(chosen)
	return chosen
}

// MaxExactSets bounds the collection size accepted by Exact.
const MaxExactSets = 22

// Exact computes a minimum cover by branch and bound, or nil when not
// coverable. It panics beyond MaxExactSets sets.
func Exact(in Instance) []int {
	if len(in.Sets) > MaxExactSets {
		panic("setcover: collection too large for exact solver")
	}
	if !in.Coverable() {
		return nil
	}
	best := Greedy(in)
	covered := make([]int, in.NumElems) // coverage multiplicity
	remaining := in.NumElems
	var cur []int

	// elementSets[e] lists sets containing e, for the branching rule:
	// branch on the first uncovered element.
	elementSets := make([][]int, in.NumElems)
	for i, s := range in.Sets {
		for _, e := range s {
			elementSets[e] = append(elementSets[e], i)
		}
	}

	var rec func()
	rec = func() {
		if len(cur) >= len(best) {
			return
		}
		if remaining == 0 {
			best = append([]int{}, cur...)
			return
		}
		e := 0
		for covered[e] > 0 {
			e++
		}
		for _, i := range elementSets[e] {
			cur = append(cur, i)
			for _, x := range in.Sets[i] {
				if covered[x] == 0 {
					remaining--
				}
				covered[x]++
			}
			rec()
			for _, x := range in.Sets[i] {
				covered[x]--
				if covered[x] == 0 {
					remaining++
				}
			}
			cur = cur[:len(cur)-1]
		}
	}
	rec()
	sort.Ints(best)
	return best
}

// Random draws a coverable instance: nSets sets of size ≤ maxSize, with
// a final pass adding each uncovered element to a random set.
func Random(rng *rand.Rand, nElems, nSets, maxSize int) Instance {
	if maxSize > nElems {
		maxSize = nElems
	}
	in := Instance{NumElems: nElems, Sets: make([][]int, nSets)}
	for i := range in.Sets {
		size := 1 + rng.Intn(maxSize)
		seen := make(map[int]bool)
		for len(in.Sets[i]) < size {
			e := rng.Intn(nElems)
			if !seen[e] {
				seen[e] = true
				in.Sets[i] = append(in.Sets[i], e)
			}
		}
		sort.Ints(in.Sets[i])
	}
	// Ensure coverage.
	covered := make([]bool, nElems)
	for _, s := range in.Sets {
		for _, e := range s {
			covered[e] = true
		}
	}
	for e, c := range covered {
		if !c {
			i := rng.Intn(nSets)
			in.Sets[i] = append(in.Sets[i], e)
			sort.Ints(in.Sets[i])
		}
	}
	return in
}

// RandomB draws a coverable B-set-cover instance (every set of size
// exactly ≤ B; the coverage pass respects the bound by extending small
// sets or adding singletons).
func RandomB(rng *rand.Rand, nElems, nSets, b int) Instance {
	in := Random(rng, nElems, nSets, b)
	for i := range in.Sets {
		if len(in.Sets[i]) > b {
			in.Sets[i] = in.Sets[i][:b]
		}
	}
	covered := make([]bool, nElems)
	for _, s := range in.Sets {
		for _, e := range s {
			covered[e] = true
		}
	}
	for e, c := range covered {
		if !c {
			in.Sets = append(in.Sets, []int{e})
		}
	}
	return in
}
