package setcover

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGreedyAndExactBasics(t *testing.T) {
	in := Instance{NumElems: 4, Sets: [][]int{{0, 1}, {2, 3}, {0, 1, 2, 3}}}
	if g := Greedy(in); !in.IsCover(g) {
		t.Fatalf("greedy not a cover: %v", g)
	}
	if e := Exact(in); len(e) != 1 {
		t.Fatalf("exact %v, want the single big set", e)
	}
}

func TestExactDominatesGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := &quick.Config{MaxCount: 80, Rand: rng}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := Random(r, 2+r.Intn(7), 2+r.Intn(6), 1+r.Intn(4))
		g, e := Greedy(in), Exact(in)
		if g == nil || e == nil {
			return false
		}
		return in.IsCover(g) && in.IsCover(e) && len(e) <= len(g)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestUncoverable(t *testing.T) {
	in := Instance{NumElems: 3, Sets: [][]int{{0, 1}}}
	if in.Coverable() {
		t.Fatal("uncoverable reported coverable")
	}
	if Greedy(in) != nil || Exact(in) != nil {
		t.Fatal("solvers should return nil on uncoverable input")
	}
}

func TestValidate(t *testing.T) {
	if err := (Instance{NumElems: 2, Sets: [][]int{{0, 5}}}).Validate(); err == nil {
		t.Fatal("out-of-range element accepted")
	}
	if err := (Instance{NumElems: 2, Sets: [][]int{{}}}).Validate(); err == nil {
		t.Fatal("empty set accepted")
	}
	if err := (Instance{NumElems: 2, Sets: [][]int{{0}, {1}}}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomBRespectsBound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		b := 1 + rng.Intn(4)
		in := RandomB(rng, 3+rng.Intn(8), 2+rng.Intn(5), b)
		if !in.Coverable() {
			t.Fatal("RandomB produced uncoverable instance")
		}
		if in.MaxSetSize() > b {
			t.Fatalf("set size %d exceeds B=%d", in.MaxSetSize(), b)
		}
	}
}

func TestIsCoverRejects(t *testing.T) {
	in := Instance{NumElems: 3, Sets: [][]int{{0}, {1}, {2}}}
	if in.IsCover([]int{0, 1}) {
		t.Fatal("partial cover accepted")
	}
	if in.IsCover([]int{0, 1, 7}) {
		t.Fatal("out-of-range index accepted")
	}
	if !in.IsCover([]int{0, 1, 2}) {
		t.Fatal("full cover rejected")
	}
}
