package greedysp

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/sched"
	"repro/internal/workload"
)

func TestSolveProducesValidSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 80; trial++ {
		in := workload.FeasibleOneInterval(rng, 1+rng.Intn(9), 1, 14, 5)
		res, err := Solve(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := res.Schedule.Validate(in); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Spans != res.Schedule.Spans() {
			t.Fatalf("trial %d: spans field %d, schedule %d", trial, res.Spans, res.Schedule.Spans())
		}
	}
}

// TestGreedyWithin3OfOptimalSpans asserts the [FHKN06] factor against
// the exact DP under the paper's §5 convention, which counts one
// infinite idle interval as a gap — i.e. on span counts. Under strict
// finite-gap counting the multiplicative claim is unsatisfiable by the
// literal largest-gap-first greedy: instances with OPT = 0 gaps can
// force it to introduce gaps (see TestGreedyOptZeroCounterexample).
// Since [FHKN06] is an unpublished manuscript, we record the guarantee
// that does hold empirically — spans ≤ 3·OPTspans — here and in
// EXPERIMENTS.md (E10).
func TestGreedyWithin3OfOptimalSpans(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 150; trial++ {
		in := workload.FeasibleOneInterval(rng, 1+rng.Intn(8), 1, 12, 5)
		res, err := Solve(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		opt, err := core.SolveGaps(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Spans > 3*opt.Spans {
			t.Fatalf("trial %d: greedy %d spans > 3×OPT %d (jobs %v)", trial, res.Spans, opt.Spans, in.Jobs)
		}
	}
}

// TestGreedyOptZeroCounterexample pins down the strict-gap-counting
// failure mode: the only largest feasible idle interval splits an
// instance whose optimum is a single span.
func TestGreedyOptZeroCounterexample(t *testing.T) {
	in := sched.NewInstance([]sched.Job{
		{Release: 7, Deadline: 8}, {Release: 2, Deadline: 6}, {Release: 9, Deadline: 11},
		{Release: 8, Deadline: 10}, {Release: 7, Deadline: 11},
	})
	opt, err := core.SolveGaps(in)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Gaps != 0 {
		t.Fatalf("counterexample optimum %d gaps, expected 0", opt.Gaps)
	}
	res, err := Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Spans - 1; got < 1 {
		t.Fatalf("greedy gaps = %d; the documented counterexample expects ≥ 1", got)
	}
}

func TestSolveInfeasible(t *testing.T) {
	in := sched.NewInstance([]sched.Job{{Release: 0, Deadline: 0}, {Release: 0, Deadline: 0}})
	if _, err := Solve(in); err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestSolveRejectsMultiproc(t *testing.T) {
	in := sched.NewMultiprocInstance([]sched.Job{{Release: 0, Deadline: 1}}, 2)
	if _, err := Solve(in); err == nil {
		t.Fatal("accepted multiprocessor instance")
	}
}

func TestSolveEmptyAndSingle(t *testing.T) {
	if res, err := Solve(sched.NewInstance(nil)); err != nil || res.Spans != 0 {
		t.Fatalf("empty: res=%+v err=%v", res, err)
	}
	res, err := Solve(sched.NewInstance([]sched.Job{{Release: 2, Deadline: 6}}))
	if err != nil || res.Spans != 1 {
		t.Fatalf("single: spans=%d err=%v", res.Spans, err)
	}
}

// TestForbiddenIntervalsAreMaximal: after termination no further unit
// can be forbidden — every allowed time is needed by every schedule.
func TestForbiddenIntervalsAreMaximal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		in := workload.FeasibleOneInterval(rng, 1+rng.Intn(6), 1, 10, 4)
		res, err := Solve(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// The schedule saturates its allowed region: spans of the
		// schedule equal spans of the non-forbidden busy region.
		want, _ := exact.SpansOneInterval(in)
		if res.Spans < want {
			t.Fatalf("trial %d: greedy %d spans below optimum %d — invalid", trial, res.Spans, want)
		}
	}
}
