// Package greedysp implements the greedy 3-approximation for
// one-interval single-processor gap scheduling attributed to Feige,
// Hajiaghayi, Khanna and Naor [FHKN06] in the paper: repeatedly choose
// the largest time interval that can be forbidden (left idle) while a
// feasible schedule still exists, until no non-empty interval can be
// forbidden; then schedule the jobs in the remaining allowed times.
//
// The paper reports that the straightforward analysis gives an O(lg n)
// factor by analogy to set cover and that a more careful argument proves
// a factor 3; the harness (experiment E10) measures the true ratios
// against the exact DP.
package greedysp

import (
	"errors"
	"sort"

	"repro/internal/feas"
	"repro/internal/sched"
)

// ErrInfeasible is returned when the instance admits no feasible
// schedule.
var ErrInfeasible = errors.New("greedysp: instance is infeasible")

// Result describes the greedy outcome.
type Result struct {
	// Schedule is the final feasible schedule.
	Schedule sched.Schedule
	// Spans is the number of spans (gaps+1) of the schedule.
	Spans int
	// Forbidden lists the idle intervals chosen, in choice order.
	Forbidden []sched.Interval
}

// Solve runs the greedy on a single-processor one-interval instance.
func Solve(in sched.Instance) (Result, error) {
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	if in.Procs != 1 {
		return Result{}, errors.New("greedysp: single-processor instances only")
	}
	if len(in.Jobs) == 0 {
		return Result{Schedule: sched.Schedule{Procs: 1}}, nil
	}
	lo, hi := in.TimeHorizon()
	forbidden := make(map[int]bool)
	feasible := func() bool {
		return matchAllowed(in, lo, hi, forbidden) != nil
	}
	if !feasible() {
		return Result{}, ErrInfeasible
	}

	var chosen []sched.Interval
	for {
		gap := largestFeasibleGap(in, lo, hi, forbidden)
		if gap.Lo > gap.Hi {
			break
		}
		for t := gap.Lo; t <= gap.Hi; t++ {
			forbidden[t] = true
		}
		chosen = append(chosen, gap)
	}

	times := matchAllowed(in, lo, hi, forbidden)
	if times == nil {
		return Result{}, ErrInfeasible // cannot happen: we only forbade feasibly
	}
	s := sched.Schedule{Procs: 1, Slots: make([]sched.Assignment, len(in.Jobs))}
	for i, t := range times {
		s.Slots[i] = sched.Assignment{Proc: 0, Time: t}
	}
	return Result{Schedule: s, Spans: s.Spans(), Forbidden: chosen}, nil
}

// largestFeasibleGap scans all candidate intervals [a,b] within [lo,hi],
// longest first, and returns the first whose removal keeps the instance
// feasible. Returns an empty interval when none exists.
func largestFeasibleGap(in sched.Instance, lo, hi int, forbidden map[int]bool) sched.Interval {
	maxLen := hi - lo + 1
	for length := maxLen; length >= 1; length-- {
		for a := lo; a+length-1 <= hi; a++ {
			b := a + length - 1
			if anyForbidden(forbidden, a, b) {
				continue // already (partly) forbidden: not a new gap
			}
			if matchAllowedExtra(in, lo, hi, forbidden, a, b) != nil {
				return sched.Interval{Lo: a, Hi: b}
			}
		}
	}
	return sched.Interval{Lo: 1, Hi: 0}
}

func anyForbidden(forbidden map[int]bool, a, b int) bool {
	for t := a; t <= b; t++ {
		if forbidden[t] {
			return true
		}
	}
	return false
}

// matchAllowed computes a feasible assignment of all jobs to allowed
// times (nil if none): job i → times[i].
func matchAllowed(in sched.Instance, lo, hi int, forbidden map[int]bool) []int {
	return matchAllowedExtra(in, lo, hi, forbidden, 1, 0)
}

// matchAllowedExtra additionally forbids [exLo, exHi].
func matchAllowedExtra(in sched.Instance, lo, hi int, forbidden map[int]bool, exLo, exHi int) []int {
	var times []int
	for t := lo; t <= hi; t++ {
		if !forbidden[t] && !(exLo <= t && t <= exHi) {
			times = append(times, t)
		}
	}
	index := make(map[int]int, len(times))
	for i, t := range times {
		index[t] = i
	}
	g := feas.NewBipartite(len(in.Jobs), len(times))
	for u, j := range in.Jobs {
		for t := j.Release; t <= j.Deadline; t++ {
			if v, ok := index[t]; ok {
				g.AddEdge(u, v)
			}
		}
	}
	m := feas.MaxMatching(g)
	if m.Size != len(in.Jobs) {
		return nil
	}
	out := make([]int, len(in.Jobs))
	for u := range out {
		out[u] = times[m.MatchL[u]]
	}
	return out
}

// sortIntervals is exposed for tests.
func sortIntervals(ivs []sched.Interval) {
	sort.Slice(ivs, func(a, b int) bool { return ivs[a].Lo < ivs[b].Lo })
}
