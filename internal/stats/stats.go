// Package stats provides the small numeric summaries and plain-text table
// rendering used by the experiment harness and benchmarks.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"text/tabwriter"
)

// Summary holds order statistics of a sample.
type Summary struct {
	N              int
	Mean, Min, Max float64
	P50, P90       float64
}

// Summarize computes a Summary of xs. An empty sample yields zeros.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, x := range sorted {
		sum += x
	}
	return Summary{
		N:    len(sorted),
		Mean: sum / float64(len(sorted)),
		Min:  sorted[0],
		Max:  sorted[len(sorted)-1],
		P50:  quantile(sorted, 0.5),
		P90:  quantile(sorted, 0.9),
	}
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Ratio returns a/b, treating 0/0 as 1 (both algorithms found the same
// trivial optimum) and x/0 for x>0 as +Inf.
func Ratio(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return a / b
}

// Table renders aligned rows under a header to w. Cells are Sprint-ed
// with %v; floats are shown with 4 significant digits.
type Table struct {
	Header []string
	rows   [][]string
}

// NewTable creates a table with the given column names.
func NewTable(header ...string) *Table { return &Table{Header: header} }

// AddRow appends a row; cells may be any printable values.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Header, "\t"))
	underline := make([]string, len(t.Header))
	for i, h := range t.Header {
		underline[i] = strings.Repeat("-", len(h))
	}
	fmt.Fprintln(tw, strings.Join(underline, "\t"))
	for _, row := range t.rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()
}

// Markdown writes the table as a GitHub-flavored markdown table.
func (t *Table) Markdown(w io.Writer) {
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Header, " | "))
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | "))
	for _, row := range t.rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
}
