package stats

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("summary wrong: %+v", s)
	}
	if s.P90 != 4.6 {
		t.Fatalf("p90 = %v, want 4.6", s.P90)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Fatalf("empty summary: %+v", z)
	}
	one := Summarize([]float64{7})
	if one.P50 != 7 || one.P90 != 7 || one.Mean != 7 {
		t.Fatalf("singleton summary: %+v", one)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Fatal("6/3")
	}
	if Ratio(0, 0) != 1 {
		t.Fatal("0/0 should be 1")
	}
	if !math.IsInf(Ratio(1, 0), 1) {
		t.Fatal("1/0 should be +Inf")
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("spans", 3)
	tb.AddRow("ratio", 1.23456)
	if tb.Len() != 2 {
		t.Fatal("row count")
	}
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	for _, want := range []string{"name", "value", "spans", "1.235"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	var md bytes.Buffer
	tb.Markdown(&md)
	if !strings.Contains(md.String(), "| spans | 3 |") {
		t.Fatalf("markdown wrong:\n%s", md.String())
	}
}
