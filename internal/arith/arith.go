// Package arith implements the corollary of Theorem 1 stated in §2: a
// polynomial-time exact algorithm for multi-interval gap scheduling
// when every job's allowed intervals form a homogeneous arithmetic
// progression — the same number of terms p and the same (long) period x
// for all jobs, with every base interval inside one period window.
//
// Such instances are exactly the laid-out form of a p-processor
// one-interval instance: interval q of a job is its window on processor
// q, shifted by q·x. Detect recovers the base instance; Solve maps it
// through the Theorem 1 DP and translates the optimal schedule back to
// the single timeline. The span optimum is preserved because the period
// is long enough that processor segments never touch (the paper's "each
// processor runs for less than x units").
//
// The paper contrasts this tractable case with its own hardness
// results: with *different* (and possibly small) periods, even two-unit
// arithmetic instances are inapproximable within any constant factor
// (§5.3) — experiment E8 exercises that side.
package arith

import (
	"errors"

	"repro/internal/core"
	"repro/internal/sched"
)

// ErrNotArithmetic is returned when the instance is not a homogeneous
// arithmetic progression family.
var ErrNotArithmetic = errors.New("arith: instance is not a homogeneous arithmetic family")

// ErrShortPeriod is returned when the common period is too short for
// the layout equivalence (segments could touch, so the multiprocessor
// optimum may differ from the timeline optimum).
var ErrShortPeriod = errors.New("arith: period too short — processor segments could touch")

// Detect checks whether every job's intervals are I_j, I_j+x, …,
// I_j+(p−1)x for common p and x, and whether all base intervals fit
// strictly inside one period. On success it returns the base
// p-processor instance and the period.
func Detect(mi sched.MultiInstance) (sched.Instance, int, error) {
	if mi.N() == 0 {
		return sched.Instance{Procs: 1}, 1, nil
	}
	p := len(mi.Jobs[0].Intervals)
	if p == 0 {
		return sched.Instance{}, 0, ErrNotArithmetic
	}
	jobs := make([]sched.Job, mi.N())
	x := 0
	for j, job := range mi.Jobs {
		if len(job.Intervals) != p {
			return sched.Instance{}, 0, ErrNotArithmetic
		}
		base := job.Intervals[0]
		jobs[j] = sched.Job{Release: base.Lo, Deadline: base.Hi}
		for q := 1; q < p; q++ {
			iv := job.Intervals[q]
			if iv.Hi-iv.Lo != base.Hi-base.Lo {
				return sched.Instance{}, 0, ErrNotArithmetic
			}
			step := iv.Lo - job.Intervals[q-1].Lo
			if step <= 0 {
				return sched.Instance{}, 0, ErrNotArithmetic
			}
			if x == 0 && q == 1 && j == 0 {
				x = step
			}
			if step != x {
				return sched.Instance{}, 0, ErrNotArithmetic
			}
		}
	}
	if p == 1 {
		// Degenerate: a plain one-interval instance; any period works.
		in := sched.Instance{Jobs: jobs, Procs: 1}
		return in, 1, nil
	}
	in := sched.Instance{Jobs: jobs, Procs: p}
	lo, hi := in.TimeHorizon()
	if width := hi - lo + 1; x < width+1 {
		return sched.Instance{}, 0, ErrShortPeriod
	}
	return in, x, nil
}

// Result reports an exact arithmetic-instance solve.
type Result struct {
	// Schedule is the optimal timeline schedule.
	Schedule sched.MultiSchedule
	// Spans is the optimal span (wake-up) count.
	Spans int
	// Base is the recovered p-processor instance; Period its layout
	// period.
	Base   sched.Instance
	Period int
}

// Solve solves a homogeneous arithmetic multi-interval instance exactly
// by recovering the base multiprocessor instance, running the Theorem 1
// DP, and mapping the schedule back: processor q's execution at time t
// becomes timeline time t + q·x.
func Solve(mi sched.MultiInstance) (Result, error) {
	base, x, err := Detect(mi)
	if err != nil {
		return Result{}, err
	}
	res, err := core.SolveGaps(base)
	if err != nil {
		return Result{}, err
	}
	out := Result{Base: base, Period: x, Spans: res.Spans}
	out.Schedule = sched.MultiSchedule{Times: make([]int, mi.N())}
	for j, a := range res.Schedule.Slots {
		out.Schedule.Times[j] = a.Time + a.Proc*x
	}
	if mi.N() > 0 {
		if err := out.Schedule.Validate(mi); err != nil {
			return Result{}, err
		}
	}
	return out, nil
}
