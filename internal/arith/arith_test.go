package arith

import (
	"math/rand"
	"testing"

	"repro/internal/exact"
	"repro/internal/sched"
	"repro/internal/workload"
)

func laidOut(rng *rand.Rand, n, p, horizon, window int) (sched.MultiInstance, sched.Instance) {
	in := workload.FeasibleOneInterval(rng, n, p, horizon, window)
	mi, _ := sched.LayOut(in)
	return mi, in
}

func TestDetectRecoversLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		p := 1 + rng.Intn(3)
		mi, orig := laidOut(rng, 2+rng.Intn(6), p, 10, 4)
		base, x, err := Detect(mi)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if base.Procs != orig.Procs {
			t.Fatalf("trial %d: procs %d, want %d", trial, base.Procs, orig.Procs)
		}
		if p > 1 {
			lo, hi := orig.TimeHorizon()
			if x < hi-lo+2 {
				t.Fatalf("trial %d: recovered period %d below layout period", trial, x)
			}
		}
		for j := range orig.Jobs {
			if base.Jobs[j] != orig.Jobs[j] {
				t.Fatalf("trial %d: job %d mismatch: %v vs %v", trial, j, base.Jobs[j], orig.Jobs[j])
			}
		}
	}
}

func TestDetectRejects(t *testing.T) {
	// Different interval counts.
	mi := sched.MultiInstance{Jobs: []sched.MultiJob{
		sched.NewMultiJob(sched.Interval{Lo: 0, Hi: 1}, sched.Interval{Lo: 10, Hi: 11}),
		sched.NewMultiJob(sched.Interval{Lo: 0, Hi: 1}),
	}}
	if _, _, err := Detect(mi); err != ErrNotArithmetic {
		t.Fatalf("count mismatch: err = %v", err)
	}
	// Different periods.
	mi = sched.MultiInstance{Jobs: []sched.MultiJob{
		sched.NewMultiJob(sched.Interval{Lo: 0, Hi: 0}, sched.Interval{Lo: 10, Hi: 10}),
		sched.NewMultiJob(sched.Interval{Lo: 1, Hi: 1}, sched.Interval{Lo: 12, Hi: 12}),
	}}
	if _, _, err := Detect(mi); err != ErrNotArithmetic {
		t.Fatalf("period mismatch: err = %v", err)
	}
	// Different interval lengths within a job.
	mi = sched.MultiInstance{Jobs: []sched.MultiJob{
		sched.NewMultiJob(sched.Interval{Lo: 0, Hi: 1}, sched.Interval{Lo: 10, Hi: 13}),
	}}
	if _, _, err := Detect(mi); err != ErrNotArithmetic {
		t.Fatalf("length mismatch: err = %v", err)
	}
	// Period too short: base windows span [0,5] (width 6) but the
	// common period is only 6, so segments could touch.
	mi = sched.MultiInstance{Jobs: []sched.MultiJob{
		sched.NewMultiJob(sched.Interval{Lo: 0, Hi: 0}, sched.Interval{Lo: 6, Hi: 6}),
		sched.NewMultiJob(sched.Interval{Lo: 5, Hi: 5}, sched.Interval{Lo: 11, Hi: 11}),
	}}
	if _, _, err := Detect(mi); err != ErrShortPeriod {
		t.Fatalf("short period: err = %v", err)
	}
}

func TestSolveMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		p := 1 + rng.Intn(3)
		mi, _ := laidOut(rng, 2+rng.Intn(5), p, 8, 3)
		res, err := Solve(mi)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, ok := exact.SpansMulti(mi)
		if !ok {
			t.Fatalf("trial %d: oracle infeasible", trial)
		}
		if res.Spans != want {
			t.Fatalf("trial %d: arith %d spans, oracle %d", trial, res.Spans, want)
		}
		if got := res.Schedule.Spans(); got != want {
			t.Fatalf("trial %d: schedule %d spans, oracle %d", trial, got, want)
		}
	}
}

func TestSolveEmpty(t *testing.T) {
	res, err := Solve(sched.MultiInstance{})
	if err != nil || res.Spans != 0 {
		t.Fatalf("empty: %+v, %v", res, err)
	}
}
