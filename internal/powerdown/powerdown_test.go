package powerdown

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sched"
	"repro/internal/workload"
)

func TestOfflineCost(t *testing.T) {
	off := Offline{}
	if off.Cost(3, 5) != 3 || off.Cost(7, 5) != 5 || off.Cost(5, 5) != 5 {
		t.Fatal("offline min(L, α) broken")
	}
}

func TestSkiRentalIs2Competitive(t *testing.T) {
	for _, alpha := range []float64{0.5, 1, 2, 5, 10} {
		r := CompetitiveRatio(SkiRental{}, alpha, 200)
		if r > 2+1e-9 {
			t.Fatalf("α=%v: ski rental ratio %v > 2", alpha, r)
		}
	}
	// The bound is tight: an idle period just past α costs ~2α.
	r := CompetitiveRatio(SkiRental{}, 10, 200)
	if r < 1.9 {
		t.Fatalf("ski rental ratio %v unexpectedly far below 2", r)
	}
}

// TestRandomizedExpRatio: the closed-form expected cost must be exactly
// e/(e−1)·min(L, α) for every idle length.
func TestRandomizedExpRatio(t *testing.T) {
	target := math.E / (math.E - 1)
	p := RandomizedExp{}
	for _, alpha := range []float64{1, 2.5, 8} {
		for l := 1; l <= 50; l++ {
			want := target * math.Min(float64(l), alpha)
			if got := p.Cost(l, alpha); math.Abs(got-want) > 1e-9 {
				t.Fatalf("α=%v L=%d: cost %v, want %v", alpha, l, got, want)
			}
		}
	}
}

// TestRandomizedMatchesMonteCarlo cross-checks the closed form against
// sampling from the density via inverse transform.
func TestRandomizedMatchesMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const alpha = 4.0
	const samples = 200000
	p := RandomizedExp{}
	for _, l := range []int{2, 4, 9} {
		var sum float64
		for i := 0; i < samples; i++ {
			// Inverse transform for F(t) = (e^{t/α}−1)/(e−1).
			u := rng.Float64()
			tau := alpha * math.Log(1+u*(math.E-1))
			if float64(l) <= tau {
				sum += float64(l)
			} else {
				sum += tau + alpha
			}
		}
		mc := sum / samples
		if got := p.Cost(l, alpha); math.Abs(got-mc) > 0.03*got {
			t.Fatalf("L=%d: closed form %v vs Monte Carlo %v", l, got, mc)
		}
	}
}

func TestThresholdEdges(t *testing.T) {
	p := Threshold{Tau: 0} // sleep immediately: every gap costs α
	if p.Cost(10, 3) != 3 || p.Cost(1, 3) != 3 {
		t.Fatal("τ=0 should always pay exactly α")
	}
	alwaysOn := Threshold{Tau: math.Inf(1)}
	if alwaysOn.Cost(10, 3) != 10 {
		t.Fatal("τ=∞ should pay the idle length")
	}
}

// TestPolicyDominance: no online policy beats offline on any gap.
func TestPolicyDominance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	off := Offline{}
	policies := []Policy{SkiRental{}, RandomizedExp{}, Threshold{Tau: 1}, Threshold{Tau: 7}}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		idle := 1 + r.Intn(40)
		alpha := 0.25 + 10*r.Float64()
		for _, p := range policies {
			if p.Cost(idle, alpha) < off.Cost(idle, alpha)-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluateEDF(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		in := workload.FeasibleOneInterval(rng, 2+rng.Intn(8), 1, 16, 4)
		const alpha = 3.0
		offRep, ok := EvaluateEDF(in, alpha, Offline{})
		if !ok {
			t.Fatalf("trial %d: EDF failed", trial)
		}
		if math.Abs(offRep.Ratio-1) > 1e-9 {
			t.Fatalf("trial %d: offline against itself has ratio %v", trial, offRep.Ratio)
		}
		for _, p := range []Policy{SkiRental{}, RandomizedExp{}} {
			rep, ok := EvaluateEDF(in, alpha, p)
			if !ok {
				t.Fatalf("trial %d: EDF failed", trial)
			}
			if rep.Total < rep.OfflineTotal-1e-9 {
				t.Fatalf("trial %d: %s beat offline: %+v", trial, p.Name(), rep)
			}
			if rep.Ratio > 2+1e-9 {
				t.Fatalf("trial %d: %s ratio %v above 2 (total includes busy time)", trial, p.Name(), rep.Ratio)
			}
		}
	}
}

func TestEvaluateEDFInfeasible(t *testing.T) {
	in := sched.NewInstance([]sched.Job{{Release: 0, Deadline: 0}, {Release: 0, Deadline: 0}})
	if _, ok := EvaluateEDF(in, 1, SkiRental{}); ok {
		t.Fatal("accepted infeasible instance")
	}
}
