// Package powerdown implements the classic online power-down strategies
// that frame the paper's problem (§1, citing Irani–Shukla–Gupta [ISG03]
// and Augustine–Irani–Swamy [AIS04]): the schedule is fixed, and the
// device must decide online, during each idle period, when to enter the
// sleep state. Sleeping costs nothing but returning to the active state
// costs α; staying awake costs 1 per time unit.
//
//   - Offline optimum per idle period of length L: min(L, α).
//   - Deterministic threshold τ ("ski rental"): stay awake τ units,
//     then sleep. τ = α is exactly 2-competitive.
//   - Randomized exponential threshold: draw τ from density
//     e^{t/α}/(α(e−1)) on [0, α]; its expected cost is e/(e−1) ≈ 1.582
//     times the offline optimum for every idle length.
//
// These baselines quantify what the paper's offline algorithms buy:
// experiment E14 compares them against the exact offline DP on the same
// workloads. The online streaming tier (internal/online) prices each
// committed gap with the Threshold policy at τ = α, and experiment E22
// checks its measured competitive ratios against CompetitiveRatio's
// analytic worst case.
package powerdown

import (
	"fmt"
	"math"

	"repro/internal/feas"
	"repro/internal/sched"
)

// Policy prices one idle period of integer length under transition cost
// alpha. Costs are expected values for randomized policies.
type Policy interface {
	// Cost returns the (expected) energy spent on an idle period of
	// length idle: active units waited plus alpha if the device slept.
	Cost(idle int, alpha float64) float64
	// Name identifies the policy in reports.
	Name() string
}

// Offline is the clairvoyant optimum: bridge iff shorter than alpha.
type Offline struct{}

// Cost returns min(idle, alpha).
func (Offline) Cost(idle int, alpha float64) float64 {
	return math.Min(float64(idle), alpha)
}

// Name implements Policy.
func (Offline) Name() string { return "offline" }

// Threshold stays awake Tau time units and then sleeps (waking again
// costs alpha when the idle period ends). Tau = alpha gives the classic
// 2-competitive ski-rental strategy.
type Threshold struct{ Tau float64 }

// Cost implements Policy.
func (p Threshold) Cost(idle int, alpha float64) float64 {
	l := float64(idle)
	if l <= p.Tau {
		return l
	}
	return p.Tau + alpha
}

// Name implements Policy.
func (p Threshold) Name() string { return fmt.Sprintf("threshold(τ=%.2g)", p.Tau) }

// SkiRental is the deterministic threshold at τ = α.
type SkiRental struct{}

// Cost implements Policy.
func (SkiRental) Cost(idle int, alpha float64) float64 {
	return Threshold{Tau: alpha}.Cost(idle, alpha)
}

// Name implements Policy.
func (SkiRental) Name() string { return "ski-rental(τ=α)" }

// RandomizedExp draws the sleep threshold from the exponential density
// f(t) = e^{t/α} / (α(e−1)) on [0, α]; Cost returns the closed-form
// expectation  [m·e^{m/α} + L·(e − e^{m/α})] / (e−1)  with m = min(L, α),
// which equals e/(e−1)·min(L, α) for every L — the optimal randomized
// competitive ratio.
type RandomizedExp struct{}

// Cost implements Policy.
func (RandomizedExp) Cost(idle int, alpha float64) float64 {
	if alpha == 0 {
		return 0
	}
	l := float64(idle)
	m := math.Min(l, alpha)
	e := math.E
	return (m*math.Exp(m/alpha) + l*(e-math.Exp(m/alpha))) / (e - 1)
}

// Name implements Policy.
func (RandomizedExp) Name() string { return "randomized-exp" }

// CompetitiveRatio returns the worst-case ratio of the policy against
// the offline optimum over idle lengths 1..maxIdle.
func CompetitiveRatio(p Policy, alpha float64, maxIdle int) float64 {
	worst := 1.0
	off := Offline{}
	for l := 1; l <= maxIdle; l++ {
		denom := off.Cost(l, alpha)
		if denom == 0 {
			continue
		}
		if r := p.Cost(l, alpha) / denom; r > worst {
			worst = r
		}
	}
	return worst
}

// Report describes one policy evaluation over a schedule.
type Report struct {
	Policy string
	// Total is busy units + initial wake + per-gap policy cost.
	Total float64
	// OfflineTotal prices the same gaps with the offline rule.
	OfflineTotal float64
	// Ratio = Total / OfflineTotal.
	Ratio float64
}

// EvaluateEDF fixes the schedule to eager EDF (the canonical online
// schedule) and prices its idle periods under the policy, isolating the
// power-down decision from the scheduling decision as in [ISG03]. ok is
// false when the instance is infeasible.
func EvaluateEDF(in sched.Instance, alpha float64, p Policy) (Report, bool) {
	s, ok := feas.EDFOneInterval(in)
	if !ok {
		return Report{}, false
	}
	return EvaluateSchedule(s, alpha, p), true
}

// EvaluateSchedule prices the idle periods of an arbitrary schedule
// under the policy.
func EvaluateSchedule(s sched.Schedule, alpha float64, p Policy) Report {
	rep := Report{Policy: p.Name()}
	off := Offline{}
	for _, ts := range s.BusyTimes() {
		if len(ts) == 0 {
			continue
		}
		busy := float64(len(distinctSorted(ts)))
		rep.Total += busy + alpha
		rep.OfflineTotal += busy + alpha
		for _, g := range sched.GapLengths(ts) {
			rep.Total += p.Cost(g, alpha)
			rep.OfflineTotal += off.Cost(g, alpha)
		}
	}
	if rep.OfflineTotal > 0 {
		rep.Ratio = rep.Total / rep.OfflineTotal
	} else {
		rep.Ratio = 1
	}
	return rep
}

func distinctSorted(sorted []int) []int {
	out := sorted[:0:0]
	for i, t := range sorted {
		if i == 0 || t != sorted[i-1] {
			out = append(out, t)
		}
	}
	return out
}
