// Package workload generates deterministic (seeded) problem instances for
// tests, examples and the experiment harness: random one-interval and
// multiprocessor instances, bursty and periodic patterns motivated by the
// paper's power-management applications, random multi-interval instances,
// and the adversarial online lower-bound family of §1.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/feas"
	"repro/internal/sched"
)

// OneInterval draws n jobs with releases uniform in [0, horizon) and
// window lengths uniform in [1, maxWindow]. Non-positive horizon or
// maxWindow is clamped to 1 (cmd/gapgen forwards user flags straight
// in, and rand.Intn panics on ≤ 0).
func OneInterval(rng *rand.Rand, n, horizon, maxWindow int) sched.Instance {
	if horizon < 1 {
		horizon = 1
	}
	if maxWindow < 1 {
		maxWindow = 1
	}
	jobs := make([]sched.Job, n)
	for i := range jobs {
		a := rng.Intn(horizon)
		w := 1 + rng.Intn(maxWindow)
		jobs[i] = sched.Job{Release: a, Deadline: a + w - 1}
	}
	return sched.NewInstance(jobs)
}

// Multiproc draws a p-processor one-interval instance.
func Multiproc(rng *rand.Rand, n, p, horizon, maxWindow int) sched.Instance {
	in := OneInterval(rng, n, horizon, maxWindow)
	in.Procs = p
	return in
}

// FeasibleOneInterval repeatedly draws instances until one is feasible,
// widening windows after repeated failures so termination is guaranteed.
func FeasibleOneInterval(rng *rand.Rand, n, p, horizon, maxWindow int) sched.Instance {
	for attempt := 0; ; attempt++ {
		in := Multiproc(rng, n, p, horizon, maxWindow+attempt/4)
		if feas.FeasibleOneInterval(in) {
			return in
		}
	}
}

// Bursty draws jobs clustered into the given number of bursts: a model of
// the event-driven device workloads (sensors, phones) in the paper's
// introduction. Each burst occupies a narrow window of the horizon.
// Out-of-range parameters are clamped to the smallest meaningful value
// (horizon and maxWindow to 1, burstSpread to 0) instead of panicking
// in rand.Intn.
func Bursty(rng *rand.Rand, n, bursts, horizon, burstSpread, maxWindow int) sched.Instance {
	if bursts < 1 {
		bursts = 1
	}
	if horizon < 1 {
		horizon = 1
	}
	if burstSpread < 0 {
		burstSpread = 0
	}
	if maxWindow < 1 {
		maxWindow = 1
	}
	centers := make([]int, bursts)
	for b := range centers {
		centers[b] = rng.Intn(horizon)
	}
	jobs := make([]sched.Job, n)
	for i := range jobs {
		c := centers[rng.Intn(bursts)]
		a := c + rng.Intn(burstSpread+1)
		w := 1 + rng.Intn(maxWindow)
		jobs[i] = sched.Job{Release: a, Deadline: a + w - 1}
	}
	return sched.NewInstance(jobs)
}

// Periodic draws jobs released every period units with jitter, each with
// slack extra time units before its deadline: a duty-cycling sensor
// workload. Negative jitter or slack is clamped to 0.
func Periodic(rng *rand.Rand, n, period, jitter, slack int) sched.Instance {
	if jitter < 0 {
		jitter = 0
	}
	if slack < 0 {
		slack = 0
	}
	jobs := make([]sched.Job, n)
	for i := range jobs {
		a := i*period + rng.Intn(jitter+1)
		jobs[i] = sched.Job{Release: a, Deadline: a + slack}
	}
	return sched.NewInstance(jobs)
}

// MultiInterval draws n multi-interval jobs, each with k intervals of
// length ivLen placed uniformly in [0, horizon).
func MultiInterval(rng *rand.Rand, n, k, ivLen, horizon int) sched.MultiInstance {
	jobs := make([]sched.MultiJob, n)
	for i := range jobs {
		ivs := make([]sched.Interval, k)
		for q := range ivs {
			lo := rng.Intn(horizon)
			ivs[q] = sched.Interval{Lo: lo, Hi: lo + ivLen - 1}
		}
		jobs[i] = sched.NewMultiJob(ivs...)
	}
	return sched.MultiInstance{Jobs: jobs}
}

// FeasibleMultiInterval repeatedly draws multi-interval instances until
// one is feasible, stretching the horizon after repeated failures.
func FeasibleMultiInterval(rng *rand.Rand, n, k, ivLen, horizon int) sched.MultiInstance {
	for attempt := 0; ; attempt++ {
		mi := MultiInterval(rng, n, k, ivLen, horizon+attempt)
		if feas.FeasibleMulti(mi) {
			return mi
		}
	}
}

// UnitMulti draws n jobs, each allowed at exactly k distinct unit times
// in [0, horizon): the x-unit gap scheduling setting of §5.2–§5.3.
func UnitMulti(rng *rand.Rand, n, k, horizon int) sched.MultiInstance {
	jobs := make([]sched.MultiJob, n)
	for i := range jobs {
		seen := make(map[int]bool, k)
		var ts []int
		for len(ts) < k && len(ts) < horizon {
			t := rng.Intn(horizon)
			if !seen[t] {
				seen[t] = true
				ts = append(ts, t)
			}
		}
		jobs[i] = sched.MultiJobFromTimes(ts...)
	}
	return sched.MultiInstance{Jobs: jobs}
}

// FeasibleUnitMulti repeatedly draws unit-multi instances until feasible.
func FeasibleUnitMulti(rng *rand.Rand, n, k, horizon int) sched.MultiInstance {
	for attempt := 0; ; attempt++ {
		mi := UnitMulti(rng, n, k, horizon+attempt)
		if feas.FeasibleMulti(mi) {
			return mi
		}
	}
}

// DisjointUnit draws n jobs with pairwise-disjoint allowed-time sets of
// size k each (the disjoint-interval setting of §5.3). Times are
// allocated from a shuffled pool, so the instance is always feasible.
func DisjointUnit(rng *rand.Rand, n, k int) sched.MultiInstance {
	pool := rng.Perm(n * k * 2)
	jobs := make([]sched.MultiJob, n)
	next := 0
	for i := range jobs {
		ts := make([]int, k)
		for q := range ts {
			ts[q] = pool[next]
			next++
		}
		jobs[i] = sched.MultiJobFromTimes(ts...)
	}
	return sched.MultiInstance{Jobs: jobs}
}

// OnlineLowerBound builds the §1 adversarial family for one-interval gap
// scheduling: n flexible jobs released at time 0 with deadline 3n, plus n
// tight jobs released at n, n+2, n+4, ... each with a one-unit-later
// deadline. The offline optimum interleaves the flexible jobs into the
// idle units between tight jobs (O(1) gaps); any eager online algorithm
// runs the flexible jobs immediately and pays Ω(n) gaps.
func OnlineLowerBound(n int) sched.Instance {
	jobs := make([]sched.Job, 0, 2*n)
	for i := 0; i < n; i++ {
		jobs = append(jobs, sched.Job{Release: 0, Deadline: 3 * n})
	}
	for i := 0; i < n; i++ {
		a := n + 2*i
		jobs = append(jobs, sched.Job{Release: a, Deadline: a + 1})
	}
	return sched.NewInstance(jobs)
}

// Stress profile names accepted by Stress (and cmd/gapgen -profile):
// large feasible-by-construction one-interval instances whose window
// shapes match the paper's device workloads, sized for the heuristic
// tier (n far beyond the exact DP's reach).
const (
	// ProfileBursty clusters jobs into dense bursts separated by wide
	// forced-idle runs — the event-driven device shape. Many
	// medium-sized fragments.
	ProfileBursty = "bursty"
	// ProfileSparse scatters tight-window singletons across a huge
	// horizon — duty-cycled sensors. About n tiny fragments.
	ProfileSparse = "sparse"
	// ProfileDense packs every job into one contiguous overlapping
	// region — a single fragment far too large for the exact tier.
	ProfileDense = "dense"
)

// StressProfiles lists the valid Stress profile names.
var StressProfiles = []string{ProfileBursty, ProfileSparse, ProfileDense}

// Stress generates a large stress instance of the named profile. The
// instances are feasible by construction — every job's window contains
// a witness slot, and no (processor, time) slot is used twice — because
// redraw-until-feasible is not viable at these sizes.
func Stress(rng *rand.Rand, profile string, n, p int) (sched.Instance, error) {
	switch profile {
	case ProfileBursty:
		return StressBursty(rng, n, p), nil
	case ProfileSparse:
		return StressSparse(rng, n, p), nil
	case ProfileDense:
		return StressDense(rng, n, p), nil
	}
	return sched.Instance{}, fmt.Errorf("workload: unknown stress profile %q (want %s, %s or %s)",
		profile, ProfileBursty, ProfileSparse, ProfileDense)
}

// StressBursty builds n jobs in ~n/64 dense clusters separated by wide
// idle runs. Within a cluster, p jobs are anchored per time unit with
// small window jitter, so the cluster is busy nearly wall to wall.
func StressBursty(rng *rand.Rand, n, p int) sched.Instance {
	if p < 1 {
		p = 1
	}
	const perCluster = 64
	span := (perCluster + p - 1) / p
	spacing := 8 * (span + 8) // wide forced-idle runs between clusters
	jobs := make([]sched.Job, n)
	for i := range jobs {
		cluster, k := i/perCluster, i%perCluster
		anchor := cluster*spacing + k/p
		r := anchor - rng.Intn(3)
		if lo := cluster * spacing; r < lo {
			r = lo
		}
		jobs[i] = sched.Job{Release: r, Deadline: anchor + rng.Intn(4)}
	}
	return sched.NewMultiprocInstance(jobs, p)
}

// StressSparse builds n singleton jobs, each with a tight window around
// its own anchor, anchors strided far apart: almost every job is its
// own fragment. p is recorded on the instance but never binds.
func StressSparse(rng *rand.Rand, n, p int) sched.Instance {
	if p < 1 {
		p = 1
	}
	const stride = 16
	jobs := make([]sched.Job, n)
	for i := range jobs {
		anchor := i * stride
		r := anchor - rng.Intn(3)
		if r < 0 {
			r = 0
		}
		jobs[i] = sched.Job{Release: r, Deadline: anchor + rng.Intn(3)}
	}
	return sched.NewMultiprocInstance(jobs, p)
}

// StressDense packs all n jobs into one contiguous region: p anchors
// per time unit over a horizon of ⌈n/p⌉, windows jittered a few dozen
// units either way, so the whole instance is a single huge fragment.
func StressDense(rng *rand.Rand, n, p int) sched.Instance {
	if p < 1 {
		p = 1
	}
	const jitter = 24
	jobs := make([]sched.Job, n)
	for i := range jobs {
		anchor := i / p
		r := anchor - rng.Intn(jitter)
		if r < 0 {
			r = 0
		}
		jobs[i] = sched.Job{Release: r, Deadline: anchor + rng.Intn(jitter)}
	}
	return sched.NewMultiprocInstance(jobs, p)
}

// TightChain builds n back-to-back unit jobs: job i exactly at time i.
// One span, no choice; useful as a degenerate test case.
func TightChain(n int) sched.Instance {
	jobs := make([]sched.Job, n)
	for i := range jobs {
		jobs[i] = sched.Job{Release: i, Deadline: i}
	}
	return sched.NewInstance(jobs)
}
