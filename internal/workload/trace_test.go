package workload

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/sched"
)

func sampleTrace() Trace {
	return Trace{Points: []TracePoint{
		{At: 0, Job: sched.Job{Release: 0, Deadline: 2}},
		{At: 0, Job: sched.Job{Release: 1, Deadline: 3}},
		{At: 1500 * time.Microsecond, Job: sched.Job{Release: 10, Deadline: 12}},
		{At: 40 * time.Millisecond, Job: sched.Job{Release: 50, Deadline: 51}},
	}}
}

func equalTraces(a, b Trace) bool {
	if len(a.Points) != len(b.Points) {
		return false
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			return false
		}
	}
	return true
}

func TestTraceCSVRoundTrip(t *testing.T) {
	want := sampleTrace()
	var buf bytes.Buffer
	if err := want.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ParseTrace(&buf)
	if err != nil {
		t.Fatalf("ParseTrace(CSV): %v", err)
	}
	if !equalTraces(got, want) {
		t.Errorf("CSV round trip: got %+v, want %+v", got.Points, want.Points)
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	want := sampleTrace()
	var buf bytes.Buffer
	if err := want.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ParseTrace(&buf)
	if err != nil {
		t.Fatalf("ParseTrace(JSON): %v", err)
	}
	if !equalTraces(got, want) {
		t.Errorf("JSON round trip: got %+v, want %+v", got.Points, want.Points)
	}
}

func TestParseTraceFormats(t *testing.T) {
	// Headerless CSV, comments, blank lines, unsorted rows.
	csv := "\n# recorded by hand\n2000,4,6\n\n0,0,1\n"
	tr, err := ParseTrace(strings.NewReader(csv))
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}
	if tr.Len() != 2 || tr.Points[0].At != 0 || tr.Points[1].At != 2*time.Millisecond {
		t.Errorf("CSV parse/sort: got %+v", tr.Points)
	}
	// JSON object envelope.
	obj := `{"points":[{"atUs":5,"release":1,"deadline":2}]}`
	tr, err = ParseTrace(strings.NewReader(obj))
	if err != nil {
		t.Fatalf("ParseTrace(object): %v", err)
	}
	if tr.Len() != 1 || tr.Points[0].At != 5*time.Microsecond {
		t.Errorf("JSON object parse: got %+v", tr.Points)
	}
	// Empty input is an empty trace.
	if tr, err = ParseTrace(strings.NewReader("  \n")); err != nil || tr.Len() != 0 {
		t.Errorf("empty input: trace %+v, err %v", tr.Points, err)
	}
	// Malformed rows fail loudly.
	for _, bad := range []string{"1,2\n", "x,y,z\nmore,bad,rows\n", "0,5,2\n"} {
		if _, err := ParseTrace(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseTrace(%q): want error", bad)
		}
	}
}

func TestTraceScaleAndDuration(t *testing.T) {
	tr := sampleTrace()
	if got := tr.Duration(); got != 40*time.Millisecond {
		t.Errorf("Duration = %v, want 40ms", got)
	}
	fast := tr.Scale(4)
	if got := fast.Duration(); got != 10*time.Millisecond {
		t.Errorf("Scale(4).Duration = %v, want 10ms", got)
	}
	if tr.Duration() != 40*time.Millisecond {
		t.Error("Scale mutated the receiver")
	}
	if got := tr.Scale(0).Duration(); got != 40*time.Millisecond {
		t.Errorf("Scale(0) should be identity, got duration %v", got)
	}
	if got := (Trace{}).Duration(); got != 0 {
		t.Errorf("empty Duration = %v, want 0", got)
	}
}

func TestTraceInstances(t *testing.T) {
	steps := sampleTrace().Instances(2)
	if len(steps) != 3 {
		t.Fatalf("Instances: got %d steps, want 3", len(steps))
	}
	if n := steps[0].Instance.N(); n != 2 {
		t.Errorf("simultaneous arrivals not merged: first step has %d jobs", n)
	}
	for _, st := range steps {
		if st.Instance.Procs != 2 {
			t.Errorf("step at %v has procs %d, want 2", st.At, st.Instance.Procs)
		}
		if err := st.Instance.Validate(); err != nil {
			t.Errorf("step at %v invalid: %v", st.At, err)
		}
	}
}

func TestTraceWriteDeltaScript(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTrace().WriteDeltaScript(&buf); err != nil {
		t.Fatalf("WriteDeltaScript: %v", err)
	}
	out := buf.String()
	// The script must hold exactly the trace's adds, in the -stream
	// grammar: "add R D" lines plus ignorable comments.
	adds := 0
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var r, d int
		if _, err := fmt.Sscanf(line, "add %d %d", &r, &d); err != nil {
			t.Fatalf("non-delta line %q: %v", line, err)
		}
		adds++
	}
	if adds != 4 {
		t.Errorf("delta script has %d adds, want 4", adds)
	}
}

func TestRecordBursty(t *testing.T) {
	pool := []sched.Instance{
		sched.NewInstance([]sched.Job{{Release: 0, Deadline: 1}}),
		sched.NewInstance([]sched.Job{{Release: 2, Deadline: 3}, {Release: 4, Deadline: 5}}),
	}
	tr := RecordBursty(nil, pool, 3, 2, 10*time.Millisecond, time.Millisecond)
	// 3 bursts × 2 requests drawing 1,2,1,2,1,2 jobs = 9 points.
	if tr.Len() != 9 {
		t.Fatalf("RecordBursty points = %d, want 9", tr.Len())
	}
	if tr.Duration() != 2*10*time.Millisecond+time.Millisecond {
		t.Errorf("RecordBursty duration = %v", tr.Duration())
	}
	// Jittered recordings stay sorted and the same size.
	jit := RecordBursty(rand.New(rand.NewSource(1)), pool, 3, 2, 10*time.Millisecond, time.Millisecond)
	if jit.Len() != 9 {
		t.Errorf("jittered points = %d, want 9", jit.Len())
	}
	for i := 1; i < jit.Len(); i++ {
		if jit.Points[i].At < jit.Points[i-1].At {
			t.Fatalf("jittered trace unsorted at %d", i)
		}
	}
	if RecordBursty(nil, nil, 2, 2, time.Second, time.Millisecond).Len() != 0 {
		t.Error("empty pool should record an empty trace")
	}
}
