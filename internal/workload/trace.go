package workload

// Trace adapters: recorded arrival time series in and out of the
// synthetic-workload layer. A Trace is a sequence of timestamped job
// arrivals — what a packet capture or request log of a real
// event-driven device workload reduces to — parsed from CSV or JSON,
// replayable open-loop against the daemon (cmd/gapbench E24), and
// convertible to the `gapsched -stream` delta-script format so the
// same recording drives both the service and the CLI streaming tier.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/sched"
)

// TracePoint is one recorded arrival: a job revealed At after the
// start of the recording.
type TracePoint struct {
	// At is the arrival offset from the start of the trace.
	At time.Duration
	// Job is the revealed job, in the instance's integer time units.
	Job sched.Job
}

// tracePointWire is the JSON form: microsecond offsets, flat job
// fields, matching the CSV columns.
type tracePointWire struct {
	AtUs     int64 `json:"atUs"`
	Release  int   `json:"release"`
	Deadline int   `json:"deadline"`
}

// Trace is a recorded arrival time series, ordered by At.
type Trace struct {
	Points []TracePoint
}

// Len returns the number of recorded arrivals.
func (t Trace) Len() int { return len(t.Points) }

// Duration returns the offset of the last arrival (0 for an empty
// trace).
func (t Trace) Duration() time.Duration {
	if len(t.Points) == 0 {
		return 0
	}
	return t.Points[len(t.Points)-1].At
}

// Scale returns a copy replayed at rate× the recorded speed: every
// arrival offset divided by rate. Non-positive rates return the trace
// unscaled.
func (t Trace) Scale(rate float64) Trace {
	if rate <= 0 || rate == 1 {
		return t
	}
	pts := make([]TracePoint, len(t.Points))
	for i, p := range t.Points {
		pts[i] = TracePoint{At: time.Duration(float64(p.At) / rate), Job: p.Job}
	}
	return Trace{Points: pts}
}

// sortPoints orders the points by arrival offset, keeping the recorded
// order of simultaneous arrivals.
func (t *Trace) sortPoints() {
	sort.SliceStable(t.Points, func(i, j int) bool { return t.Points[i].At < t.Points[j].At })
}

// TimedInstance is one replay step: the Instance groups every job that
// arrives exactly At after the start.
type TimedInstance struct {
	At       time.Duration
	Instance sched.Instance
}

// Instances groups the trace into replay steps on procs processors:
// consecutive points with equal arrival offsets merge into one
// instance, so a burst recorded at one timestamp is submitted as one
// request.
func (t Trace) Instances(procs int) []TimedInstance {
	if procs < 1 {
		procs = 1
	}
	var out []TimedInstance
	for _, p := range t.Points {
		if n := len(out); n > 0 && out[n-1].At == p.At {
			out[n-1].Instance.Jobs = append(out[n-1].Instance.Jobs, p.Job)
			continue
		}
		out = append(out, TimedInstance{
			At:       p.At,
			Instance: sched.Instance{Jobs: []sched.Job{p.Job}, Procs: procs},
		})
	}
	return out
}

// ParseTrace reads a recorded trace, auto-detecting the format from
// the first non-blank byte: '[' or '{' selects JSON (either a bare
// array of points or an object with a "points" array), anything else
// CSV with columns at_us,release,deadline (a non-numeric first row is
// skipped as a header; blank lines and #-comments are ignored). The
// parsed trace is sorted by arrival offset.
func ParseTrace(r io.Reader) (Trace, error) {
	br := bufio.NewReader(r)
	for {
		b, err := br.Peek(1)
		if err != nil {
			if err == io.EOF {
				return Trace{}, nil
			}
			return Trace{}, err
		}
		if b[0] == ' ' || b[0] == '\t' || b[0] == '\n' || b[0] == '\r' {
			br.ReadByte()
			continue
		}
		if b[0] == '[' || b[0] == '{' {
			return parseJSONTrace(br)
		}
		return parseCSVTrace(br)
	}
}

func parseJSONTrace(r io.Reader) (Trace, error) {
	var raw json.RawMessage
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return Trace{}, fmt.Errorf("workload: parse JSON trace: %w", err)
	}
	var pts []tracePointWire
	if len(raw) > 0 && raw[0] == '{' {
		var env struct {
			Points []tracePointWire `json:"points"`
		}
		if err := json.Unmarshal(raw, &env); err != nil {
			return Trace{}, fmt.Errorf("workload: parse JSON trace: %w", err)
		}
		pts = env.Points
	} else if err := json.Unmarshal(raw, &pts); err != nil {
		return Trace{}, fmt.Errorf("workload: parse JSON trace: %w", err)
	}
	t := Trace{Points: make([]TracePoint, 0, len(pts))}
	for i, p := range pts {
		if p.Release > p.Deadline {
			return Trace{}, fmt.Errorf("workload: JSON trace point %d: empty window [%d,%d]", i, p.Release, p.Deadline)
		}
		t.Points = append(t.Points, TracePoint{
			At:  time.Duration(p.AtUs) * time.Microsecond,
			Job: sched.Job{Release: p.Release, Deadline: p.Deadline},
		})
	}
	t.sortPoints()
	return t, nil
}

func parseCSVTrace(r io.Reader) (Trace, error) {
	var t Trace
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) != 3 {
			return Trace{}, fmt.Errorf("workload: CSV trace line %d: want 3 columns (at_us,release,deadline), got %d", line, len(fields))
		}
		atUs, err := strconv.ParseInt(strings.TrimSpace(fields[0]), 10, 64)
		if err != nil {
			if line == 1 { // header row
				continue
			}
			return Trace{}, fmt.Errorf("workload: CSV trace line %d: bad at_us %q", line, fields[0])
		}
		release, err1 := strconv.Atoi(strings.TrimSpace(fields[1]))
		deadline, err2 := strconv.Atoi(strings.TrimSpace(fields[2]))
		if err1 != nil || err2 != nil {
			return Trace{}, fmt.Errorf("workload: CSV trace line %d: bad job columns %q", line, text)
		}
		if release > deadline {
			return Trace{}, fmt.Errorf("workload: CSV trace line %d: empty window [%d,%d]", line, release, deadline)
		}
		t.Points = append(t.Points, TracePoint{
			At:  time.Duration(atUs) * time.Microsecond,
			Job: sched.Job{Release: release, Deadline: deadline},
		})
	}
	if err := sc.Err(); err != nil {
		return Trace{}, fmt.Errorf("workload: read CSV trace: %w", err)
	}
	t.sortPoints()
	return t, nil
}

// WriteCSV writes the trace in the CSV format ParseTrace reads, with a
// header row.
func (t Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "at_us,release,deadline")
	for _, p := range t.Points {
		fmt.Fprintf(bw, "%d,%d,%d\n", p.At.Microseconds(), p.Job.Release, p.Job.Deadline)
	}
	return bw.Flush()
}

// WriteJSON writes the trace as a JSON array of points in the format
// ParseTrace reads.
func (t Trace) WriteJSON(w io.Writer) error {
	pts := make([]tracePointWire, len(t.Points))
	for i, p := range t.Points {
		pts[i] = tracePointWire{AtUs: p.At.Microseconds(), Release: p.Job.Release, Deadline: p.Job.Deadline}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(pts)
}

// WriteDeltaScript writes the trace as a `gapsched -stream` delta
// script: one "add R D" line per arrival, with a comment carrying the
// recorded offset so the temporal structure survives as annotation
// (the streaming tier replays deltas in order, not in time).
func (t Trace) WriteDeltaScript(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# arrival trace; offsets recorded in microseconds")
	last := time.Duration(-1)
	for _, p := range t.Points {
		if p.At != last {
			fmt.Fprintf(bw, "# t=%dus\n", p.At.Microseconds())
			last = p.At
		}
		fmt.Fprintf(bw, "add %d %d\n", p.Job.Release, p.Job.Deadline)
	}
	return bw.Flush()
}

// RecordBursty synthesizes an arrival trace with the bursty temporal
// shape of the paper's device workloads: bursts of perBurst arrivals,
// burstGap apart, the arrivals within a burst spread withinGap apart
// with up to half a withinGap of jitter, each drawing its job set from
// the pool round-robin. It is the recording counterpart of Bursty —
// where Bursty clusters job windows inside the instance, RecordBursty
// clusters request arrivals on the wall clock. A nil rng drops the
// jitter, keeping the grid exactly periodic.
func RecordBursty(rng *rand.Rand, pool []sched.Instance, bursts, perBurst int, burstGap, withinGap time.Duration) Trace {
	if bursts < 1 {
		bursts = 1
	}
	if perBurst < 1 {
		perBurst = 1
	}
	var t Trace
	if len(pool) == 0 {
		return t
	}
	next := 0
	for b := 0; b < bursts; b++ {
		start := time.Duration(b) * burstGap
		for k := 0; k < perBurst; k++ {
			at := start + time.Duration(k)*withinGap
			if rng != nil && withinGap > 1 {
				at += time.Duration(rng.Int63n(int64(withinGap) / 2))
			}
			in := pool[next%len(pool)]
			next++
			for _, j := range in.Jobs {
				t.Points = append(t.Points, TracePoint{At: at, Job: j})
			}
		}
	}
	t.sortPoints()
	return t
}
