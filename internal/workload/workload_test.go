package workload

import (
	"math/rand"
	"testing"

	"repro/internal/feas"
)

func TestGeneratorsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		if err := OneInterval(rng, 8, 10, 4).Validate(); err != nil {
			t.Fatal(err)
		}
		if err := Multiproc(rng, 8, 3, 10, 4).Validate(); err != nil {
			t.Fatal(err)
		}
		if err := Bursty(rng, 8, 2, 20, 3, 4).Validate(); err != nil {
			t.Fatal(err)
		}
		if err := Periodic(rng, 6, 5, 2, 3).Validate(); err != nil {
			t.Fatal(err)
		}
		if err := MultiInterval(rng, 6, 2, 2, 12).Validate(); err != nil {
			t.Fatal(err)
		}
		if err := UnitMulti(rng, 6, 2, 12).Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFeasibleGeneratorsAreFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		in := FeasibleOneInterval(rng, 6, 2, 10, 3)
		if !feas.FeasibleOneInterval(in) {
			t.Fatal("FeasibleOneInterval returned infeasible instance")
		}
		mi := FeasibleMultiInterval(rng, 6, 2, 2, 12)
		if !feas.FeasibleMulti(mi) {
			t.Fatal("FeasibleMultiInterval returned infeasible instance")
		}
		um := FeasibleUnitMulti(rng, 5, 2, 10)
		if !feas.FeasibleMulti(um) {
			t.Fatal("FeasibleUnitMulti returned infeasible instance")
		}
	}
}

func TestDisjointUnitIsDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mi := DisjointUnit(rng, 6, 3)
	seen := map[int]bool{}
	for _, j := range mi.Jobs {
		for _, tm := range j.Times() {
			if seen[tm] {
				t.Fatal("overlapping allowed sets")
			}
			seen[tm] = true
		}
	}
	if !feas.FeasibleMulti(mi) {
		t.Fatal("disjoint instance must be feasible")
	}
}

func TestOnlineLowerBoundShape(t *testing.T) {
	in := OnlineLowerBound(4)
	if len(in.Jobs) != 8 {
		t.Fatalf("jobs %d, want 8", len(in.Jobs))
	}
	for i := 0; i < 4; i++ {
		if in.Jobs[i].Release != 0 || in.Jobs[i].Deadline != 12 {
			t.Fatalf("flexible job %d wrong: %v", i, in.Jobs[i])
		}
	}
	for i := 0; i < 4; i++ {
		j := in.Jobs[4+i]
		if j.Release != 4+2*i || j.Deadline != j.Release+1 {
			t.Fatalf("tight job %d wrong: %v", i, j)
		}
	}
	if !feas.FeasibleOneInterval(in) {
		t.Fatal("lower-bound family must be feasible")
	}
}

func TestTightChain(t *testing.T) {
	in := TightChain(5)
	if len(in.Jobs) != 5 {
		t.Fatal("wrong size")
	}
	for i, j := range in.Jobs {
		if j.Release != i || j.Deadline != i {
			t.Fatalf("job %d: %v", i, j)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := OneInterval(rand.New(rand.NewSource(42)), 10, 20, 5)
	b := OneInterval(rand.New(rand.NewSource(42)), 10, 20, 5)
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatal("same seed produced different instances")
		}
	}
}
