package workload

import (
	"math/rand"
	"testing"

	"repro/internal/feas"
	"repro/internal/prep"
)

func TestGeneratorsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		if err := OneInterval(rng, 8, 10, 4).Validate(); err != nil {
			t.Fatal(err)
		}
		if err := Multiproc(rng, 8, 3, 10, 4).Validate(); err != nil {
			t.Fatal(err)
		}
		if err := Bursty(rng, 8, 2, 20, 3, 4).Validate(); err != nil {
			t.Fatal(err)
		}
		if err := Periodic(rng, 6, 5, 2, 3).Validate(); err != nil {
			t.Fatal(err)
		}
		if err := MultiInterval(rng, 6, 2, 2, 12).Validate(); err != nil {
			t.Fatal(err)
		}
		if err := UnitMulti(rng, 6, 2, 12).Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFeasibleGeneratorsAreFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		in := FeasibleOneInterval(rng, 6, 2, 10, 3)
		if !feas.FeasibleOneInterval(in) {
			t.Fatal("FeasibleOneInterval returned infeasible instance")
		}
		mi := FeasibleMultiInterval(rng, 6, 2, 2, 12)
		if !feas.FeasibleMulti(mi) {
			t.Fatal("FeasibleMultiInterval returned infeasible instance")
		}
		um := FeasibleUnitMulti(rng, 5, 2, 10)
		if !feas.FeasibleMulti(um) {
			t.Fatal("FeasibleUnitMulti returned infeasible instance")
		}
	}
}

func TestDisjointUnitIsDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mi := DisjointUnit(rng, 6, 3)
	seen := map[int]bool{}
	for _, j := range mi.Jobs {
		for _, tm := range j.Times() {
			if seen[tm] {
				t.Fatal("overlapping allowed sets")
			}
			seen[tm] = true
		}
	}
	if !feas.FeasibleMulti(mi) {
		t.Fatal("disjoint instance must be feasible")
	}
}

func TestOnlineLowerBoundShape(t *testing.T) {
	in := OnlineLowerBound(4)
	if len(in.Jobs) != 8 {
		t.Fatalf("jobs %d, want 8", len(in.Jobs))
	}
	for i := 0; i < 4; i++ {
		if in.Jobs[i].Release != 0 || in.Jobs[i].Deadline != 12 {
			t.Fatalf("flexible job %d wrong: %v", i, in.Jobs[i])
		}
	}
	for i := 0; i < 4; i++ {
		j := in.Jobs[4+i]
		if j.Release != 4+2*i || j.Deadline != j.Release+1 {
			t.Fatalf("tight job %d wrong: %v", i, j)
		}
	}
	if !feas.FeasibleOneInterval(in) {
		t.Fatal("lower-bound family must be feasible")
	}
}

func TestTightChain(t *testing.T) {
	in := TightChain(5)
	if len(in.Jobs) != 5 {
		t.Fatal("wrong size")
	}
	for i, j := range in.Jobs {
		if j.Release != i || j.Deadline != i {
			t.Fatalf("job %d: %v", i, j)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := OneInterval(rand.New(rand.NewSource(42)), 10, 20, 5)
	b := OneInterval(rand.New(rand.NewSource(42)), 10, 20, 5)
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatal("same seed produced different instances")
		}
	}
}

// Stress profiles must be feasible by construction at any size (here
// checked with Hall at sizes the checker can afford), with the
// fragment structure each profile advertises.
func TestStressProfilesShape(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, profile := range StressProfiles {
		for _, p := range []int{1, 3} {
			in, err := Stress(rng, profile, 120, p)
			if err != nil {
				t.Fatalf("%s: %v", profile, err)
			}
			if err := in.Validate(); err != nil {
				t.Fatalf("%s: invalid: %v", profile, err)
			}
			if in.Procs != p || len(in.Jobs) != 120 {
				t.Fatalf("%s: shape %d procs %d jobs", profile, in.Procs, len(in.Jobs))
			}
			if !feas.FeasibleOneInterval(in) {
				t.Fatalf("%s (p=%d): infeasible stress instance", profile, p)
			}
		}
	}
	if _, err := Stress(rng, "warp", 10, 1); err == nil {
		t.Fatal("unknown profile accepted")
	}

	// Fragment structure: sparse ≈ one fragment per job, dense = one
	// fragment, bursty in between.
	sparse, _ := Stress(rng, ProfileSparse, 100, 1)
	if got := len(prep.ForGaps(sparse).Subs); got < 50 {
		t.Errorf("sparse decomposed into %d fragments, want many", got)
	}
	dense, _ := Stress(rng, ProfileDense, 100, 2)
	if got := len(prep.ForGaps(dense).Subs); got != 1 {
		t.Errorf("dense decomposed into %d fragments, want 1", got)
	}
	bursty, _ := Stress(rng, ProfileBursty, 256, 2)
	if got := len(prep.ForGaps(bursty).Subs); got != 4 {
		t.Errorf("bursty decomposed into %d fragments, want 4 clusters", got)
	}
}

// TestGeneratorEdgeParams: out-of-range sizes are clamped instead of
// panicking in rand.Intn — cmd/gapgen forwards user flags straight in.
func TestGeneratorEdgeParams(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cases := []struct {
		name string
		gen  func() int // returns the job count
	}{
		{"oneinterval horizon=0", func() int { return len(OneInterval(rng, 4, 0, 3).Jobs) }},
		{"oneinterval horizon=-7", func() int { return len(OneInterval(rng, 4, -7, 3).Jobs) }},
		{"oneinterval maxWindow=0", func() int { return len(OneInterval(rng, 4, 10, 0).Jobs) }},
		{"oneinterval maxWindow=-1", func() int { return len(OneInterval(rng, 4, 10, -1).Jobs) }},
		{"oneinterval n=0", func() int { return len(OneInterval(rng, 0, 10, 3).Jobs) }},
		{"bursty bursts=0", func() int { return len(Bursty(rng, 4, 0, 20, 3, 4).Jobs) }},
		{"bursty horizon=0", func() int { return len(Bursty(rng, 4, 2, 0, 3, 4).Jobs) }},
		{"bursty horizon=-3", func() int { return len(Bursty(rng, 4, 2, -3, 3, 4).Jobs) }},
		{"bursty burstSpread=-1", func() int { return len(Bursty(rng, 4, 2, 20, -1, 4).Jobs) }},
		{"bursty maxWindow=0", func() int { return len(Bursty(rng, 4, 2, 20, 3, 0).Jobs) }},
		{"bursty maxWindow=-5", func() int { return len(Bursty(rng, 4, 2, 20, 3, -5).Jobs) }},
		{"bursty all minimal", func() int { return len(Bursty(rng, 4, 0, 0, -1, 0).Jobs) }},
		{"periodic jitter=-1", func() int { return len(Periodic(rng, 4, 3, -1, 1).Jobs) }},
		{"periodic slack=-2", func() int { return len(Periodic(rng, 4, 3, 1, -2).Jobs) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panicked: %v", r)
				}
			}()
			want := 4
			if tc.name == "oneinterval n=0" {
				want = 0
			}
			if got := tc.gen(); got != want {
				t.Fatalf("generated %d jobs, want %d", got, want)
			}
		})
	}
	// Clamped instances still hold valid jobs.
	if err := OneInterval(rng, 6, 0, 0).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Bursty(rng, 6, 0, 0, -2, -2).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Periodic(rng, 6, 2, -1, -1).Validate(); err != nil {
		t.Fatal(err)
	}
}
