package incr

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/prep"
	"repro/internal/sched"
)

// gapSolve is the solve callback the tests hand to Resolve: the span
// objective through the exact engine.
func gapSolve(fr sched.Instance) Result {
	res, err := core.SolveGaps(fr)
	return Result{Cost: float64(res.Spans), Schedule: res.Schedule, States: res.States, Err: err}
}

func powerSolve(alpha float64) func(sched.Instance) Result {
	return func(fr sched.Instance) Result {
		res, err := core.SolvePower(fr, alpha)
		return Result{Cost: res.Power, Schedule: res.Schedule, States: res.States, Err: err}
	}
}

// checkDecomposition asserts the tracker's fragment list is identical
// to prep.Decompose of the full current job set: same fragment count,
// same job partition in the same order, same zero-based instances.
func checkDecomposition(t *testing.T, tr *Tracker, splitWidth float64) {
	t.Helper()
	in := tr.Instance()
	pl := prep.Decompose(in, splitWidth)
	if len(pl.Subs) != len(tr.frags) {
		t.Fatalf("tracker has %d fragments, Decompose %d (jobs %v)", len(tr.frags), len(pl.Subs), in.Jobs)
	}
	ids := tr.IDs()
	for si, sub := range pl.Subs {
		f := tr.frags[si]
		if sub.Offset != f.start {
			t.Fatalf("fragment %d: offset %d, tracker start %d", si, sub.Offset, f.start)
		}
		if len(sub.Jobs) != len(f.ids) {
			t.Fatalf("fragment %d: %d jobs, tracker %d", si, len(sub.Jobs), len(f.ids))
		}
		for i, local := range sub.Jobs {
			if ids[local] != f.ids[i] {
				t.Fatalf("fragment %d job %d: Decompose id %d, tracker id %d", si, i, ids[local], f.ids[i])
			}
		}
		got := tr.fragmentInstance(f)
		for i := range got.Jobs {
			if got.Jobs[i] != sub.Instance.Jobs[i] {
				t.Fatalf("fragment %d job %d: instance %v, Decompose %v", si, i, got.Jobs[i], sub.Instance.Jobs[i])
			}
		}
	}
}

// scratchCost solves the full current instance from scratch the way
// the facade does — per Decompose fragment, costs summed in time
// order — so equality with Resolve is a bit-exact claim.
func scratchCost(t *testing.T, tr *Tracker, splitWidth float64, solve func(sched.Instance) Result) (float64, error) {
	t.Helper()
	pl := prep.Decompose(tr.Instance(), splitWidth)
	cost := 0.0
	for _, sub := range pl.Subs {
		r := solve(sub.Instance)
		if r.Err != nil {
			return 0, r.Err
		}
		cost += r.Cost
	}
	return cost, nil
}

// TestTrackerMatchesDecompose drives random add/remove sequences over
// several split widths and processor counts, checking after every
// delta that the incremental decomposition is identical to a
// from-scratch Decompose and that Resolve reproduces the from-scratch
// cost bit-exactly with a valid schedule.
func TestTrackerMatchesDecompose(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, cfg := range []struct {
		procs      int
		splitWidth float64
	}{
		{1, 1}, {2, 1}, {1, 3.5}, {2, 0.5}, {3, 6},
	} {
		solve := gapSolve
		if cfg.splitWidth != 1 {
			solve = powerSolve(cfg.splitWidth)
		}
		for trial := 0; trial < 20; trial++ {
			tr := New(cfg.procs, cfg.splitWidth)
			var live []int
			for step := 0; step < 30; step++ {
				if len(live) > 0 && rng.Intn(3) == 0 {
					i := rng.Intn(len(live))
					if !tr.Remove(live[i]) {
						t.Fatalf("live id %d not found", live[i])
					}
					live = append(live[:i], live[i+1:]...)
				} else {
					r := rng.Intn(40)
					j := sched.Job{Release: r, Deadline: r + rng.Intn(5)}
					live = append(live, tr.Add(j))
				}
				checkDecomposition(t, tr, cfg.splitWidth)

				want, wantErr := scratchCost(t, tr, cfg.splitWidth, solve)
				cost, s, counts, err := tr.Resolve(solve)
				if (wantErr == nil) != (err == nil) {
					t.Fatalf("Resolve err %v, scratch err %v (jobs %v)", err, wantErr, tr.Instance().Jobs)
				}
				if err != nil {
					if !errors.Is(err, core.ErrInfeasible) {
						t.Fatalf("Resolve failed with %v, want ErrInfeasible", err)
					}
					continue
				}
				if cost != want {
					t.Fatalf("Resolve cost %v, scratch %v (jobs %v)", cost, want, tr.Instance().Jobs)
				}
				if err := s.Validate(tr.Instance()); err != nil {
					t.Fatalf("Resolve schedule invalid: %v", err)
				}
				if counts.Resolved+counts.Reused != tr.Fragments() {
					t.Fatalf("counts %+v do not cover %d fragments", counts, tr.Fragments())
				}
			}
		}
	}
}

// TestTrackerDeltaLocality pins the reuse contract on a deterministic
// three-cluster instance: a delta inside one cluster re-solves exactly
// that cluster, a bridging add merges exactly the bridged clusters,
// and removing the bridge splits them back — everything else is
// reused, never re-solved.
func TestTrackerDeltaLocality(t *testing.T) {
	tr := New(1, 1)
	for _, r := range []int{0, 10, 20} { // three clusters of two jobs
		tr.Add(sched.Job{Release: r, Deadline: r + 2})
		tr.Add(sched.Job{Release: r + 1, Deadline: r + 3})
	}
	if tr.Fragments() != 3 {
		t.Fatalf("fragments = %d, want 3", tr.Fragments())
	}
	if _, _, c, err := tr.Resolve(gapSolve); err != nil || c.Resolved != 3 || c.Reused != 0 {
		t.Fatalf("initial resolve: counts %+v err %v, want 3 resolved", c, err)
	}

	// A job inside the middle cluster dirties only it.
	mid := tr.Add(sched.Job{Release: 11, Deadline: 12})
	if _, _, c, err := tr.Resolve(gapSolve); err != nil || c.Resolved != 1 || c.Reused != 2 {
		t.Fatalf("middle add: counts %+v err %v, want 1 resolved 2 reused", c, err)
	}
	if !tr.Remove(mid) {
		t.Fatal("middle job not removed")
	}
	if _, _, c, err := tr.Resolve(gapSolve); err != nil || c.Resolved != 1 || c.Reused != 2 {
		t.Fatalf("middle remove: counts %+v err %v, want 1 resolved 2 reused", c, err)
	}

	// A wide bridge merges the first two clusters into one dirty
	// fragment; the third is reused.
	bridge := tr.Add(sched.Job{Release: 2, Deadline: 11})
	if tr.Fragments() != 2 {
		t.Fatalf("after bridge: fragments = %d, want 2", tr.Fragments())
	}
	if _, _, c, err := tr.Resolve(gapSolve); err != nil || c.Resolved != 1 || c.Reused != 1 {
		t.Fatalf("bridge add: counts %+v err %v, want 1 resolved 1 reused", c, err)
	}

	// Removing the bridge splits the merged fragment back into two,
	// both dirty; the untouched third cluster is still reused.
	if !tr.Remove(bridge) {
		t.Fatal("bridge not removed")
	}
	if tr.Fragments() != 3 {
		t.Fatalf("after unbridge: fragments = %d, want 3", tr.Fragments())
	}
	if _, _, c, err := tr.Resolve(gapSolve); err != nil || c.Resolved != 2 || c.Reused != 1 {
		t.Fatalf("bridge remove: counts %+v err %v, want 2 resolved 1 reused", c, err)
	}

	// A steady-state resolve re-solves nothing.
	if _, _, c, err := tr.Resolve(gapSolve); err != nil || c.Resolved != 0 || c.Reused != 3 {
		t.Fatalf("steady state: counts %+v err %v, want 0 resolved 3 reused", c, err)
	}
}

// TestTrackerInfeasibleAndRecover: an over-constrained fragment makes
// Resolve fail with the engine's infeasibility error; removing the
// conflicting job re-solves only that fragment and earlier results
// survive.
func TestTrackerInfeasibleAndRecover(t *testing.T) {
	tr := New(1, 1)
	tr.Add(sched.Job{Release: 0, Deadline: 1})
	tr.Add(sched.Job{Release: 10, Deadline: 10})
	if _, _, _, err := tr.Resolve(gapSolve); err != nil {
		t.Fatalf("feasible resolve failed: %v", err)
	}
	clash := tr.Add(sched.Job{Release: 10, Deadline: 10}) // two point jobs, one slot
	if _, _, _, err := tr.Resolve(gapSolve); !errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	if !tr.Remove(clash) {
		t.Fatal("clash not removed")
	}
	cost, s, c, err := tr.Resolve(gapSolve)
	if err != nil {
		t.Fatalf("recovery resolve failed: %v", err)
	}
	if cost != 2 {
		t.Fatalf("recovered cost %v, want 2 spans", cost)
	}
	if c.Resolved != 1 || c.Reused != 1 {
		t.Fatalf("recovery counts %+v, want 1 resolved 1 reused", c)
	}
	if err := s.Validate(tr.Instance()); err != nil {
		t.Fatalf("recovered schedule invalid: %v", err)
	}
}

// TestTrackerEmptyAndUnknown covers the degenerate surface: removing
// unknown ids, resolving an empty tracker, and draining to empty.
func TestTrackerEmptyAndUnknown(t *testing.T) {
	tr := New(2, 1)
	if tr.Remove(7) {
		t.Fatal("removed a job that was never added")
	}
	cost, s, c, err := tr.Resolve(gapSolve)
	if err != nil || cost != 0 || len(s.Slots) != 0 || c.Resolved != 0 {
		t.Fatalf("empty resolve: cost %v schedule %+v counts %+v err %v", cost, s, c, err)
	}
	id := tr.Add(sched.Job{Release: 3, Deadline: 5})
	if !tr.Remove(id) || tr.Len() != 0 || tr.Fragments() != 0 {
		t.Fatalf("drain failed: len %d frags %d", tr.Len(), tr.Fragments())
	}
	if tr.Remove(id) {
		t.Fatal("double remove succeeded")
	}
}

// TestTrackerArrivalOrderedDeltas pins the locality property the
// online tier leans on: when jobs arrive in non-decreasing release
// order — every new release is ≥ all previous ones, so every existing
// fragment starts at or before it — an add can only extend or append
// to the LAST fragment, never disturb an earlier one. Each arrival
// therefore dirties exactly one fragment and the mirror re-solve
// behind a streaming session is one fragment's work, not the prefix's.
func TestTrackerArrivalOrderedDeltas(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 40; trial++ {
		tr := New(1+rng.Intn(2), 1)
		release := 0
		for k := 0; k < 12; k++ {
			release += rng.Intn(6) // non-decreasing, sometimes equal
			tr.Add(sched.Job{Release: release, Deadline: release + rng.Intn(9)})
			checkDecomposition(t, tr, 1)
			_, _, c, err := tr.Resolve(gapSolve)
			if err != nil {
				if !errors.Is(err, core.ErrInfeasible) {
					t.Fatalf("Resolve: %v", err)
				}
				continue
			}
			if c.Resolved != 1 || c.Reused != tr.Fragments()-1 {
				t.Fatalf("arrival-ordered add resolved %d fragments, reused %d of %d — the delta was not local (jobs %v)",
					c.Resolved, c.Reused, tr.Fragments(), tr.Instance().Jobs)
			}
		}
	}
}
