// Package incr maintains the forced-idle fragment decomposition of a
// live one-interval instance under job add/remove deltas, so an exact
// solution can be kept current by re-solving only the fragments a delta
// touched. It is the state behind the facade's incremental sessions
// (gapsched.Session) and, through them, the daemon's /v1/session
// endpoints.
//
// The invariant is exactness: after any delta sequence, the tracker's
// fragment list is identical — same boundaries, same per-fragment job
// order, same zero-based translation — to what prep.Decompose would
// produce on the full current job set presented in job-id order. A
// resolve that solves each dirty fragment and sums per-fragment costs
// in time order is therefore bit-identical to a from-scratch solve of
// the current instance; clean fragments keep their stored results and
// are never re-solved.
//
// Why deltas stay local (both directions follow from Decompose's sweep,
// whose running coverage end only ever grows within a fragment):
//
//   - Adding a window never splits an existing fragment — extra windows
//     can only extend coverage, so every old in-fragment boundary still
//     fails the split test. The new job merges into at most one fragment
//     on its left (the one whose coverage its release fails to split
//     from) and then absorbs a run of fragments on its right whose
//     starts the extended coverage reaches.
//   - Removing a window never merges fragments — coverage only shrinks,
//     so every old boundary still splits — and can only split the one
//     fragment that contained the job, which is re-decomposed locally.
//
// Everything outside the touched fragments keeps its solved result.
package incr

import (
	"fmt"
	"sort"

	"repro/internal/prep"
	"repro/internal/sched"
)

// Result is one fragment's solved outcome, as produced by the solve
// callback handed to Resolve. Schedule is fragment-local: zero-based
// times, slots aligned with the fragment's jobs in id order. LB is the
// fragment's certified lower bound (the optimal cost itself when the
// fragment was solved exactly), Heur marks heuristic-tier results, and
// Poly marks exact solves by the polynomial single-machine backend;
// all are stored with the fragment so reuse keeps the session's
// aggregate certificate and backend accounting exact. Hit reports a
// fragment-cache hit (informational). Err is typically the engine's
// infeasibility error.
type Result struct {
	Cost     float64
	Schedule sched.Schedule
	States   int
	Pruned   int // branch-and-bound cuts in the fragment's exact solve
	Expanded int // DP states the fragment's exact solve expanded
	LB       float64
	Heur     bool
	Poly     bool
	Hit      bool
	Err      error
}

// fragment is one maximal covered region of the live instance: jobs
// whose windows chain with idle runs too narrow to split. start is the
// minimum release, end the maximum deadline; ids are ascending, which
// is exactly the per-fragment job order Decompose restores.
type fragment struct {
	ids        []int
	start, end int
	dirty      bool
	res        Result
}

// Tracker holds a live instance and its incrementally maintained
// decomposition. The zero value is not usable; construct with New.
// Tracker is not safe for concurrent use — callers (the facade
// Session) serialize access.
type Tracker struct {
	procs      int
	splitWidth float64
	nextID     int
	jobs       map[int]sched.Job
	frags      []*fragment // ascending by start; regions disjoint
}

// New builds an empty tracker for procs processors with the given
// split threshold (1 for the span objective, α for power — the same
// widths prep.ForGaps/ForPower use).
func New(procs int, splitWidth float64) *Tracker {
	return &Tracker{procs: procs, splitWidth: splitWidth, jobs: make(map[int]sched.Job)}
}

// Len returns the number of live jobs.
func (t *Tracker) Len() int { return len(t.jobs) }

// Fragments returns the number of fragments in the current
// decomposition.
func (t *Tracker) Fragments() int { return len(t.frags) }

// Job returns the live job with the given id.
func (t *Tracker) Job(id int) (sched.Job, bool) {
	j, ok := t.jobs[id]
	return j, ok
}

// IDs returns the live job ids in ascending order — the job order of
// Instance.
func (t *Tracker) IDs() []int {
	ids := make([]int, 0, len(t.jobs))
	for id := range t.jobs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Instance snapshots the current job set as a solver instance, jobs in
// id order. A from-scratch solve of this instance is the reference the
// tracker's incremental solution is bit-identical to.
func (t *Tracker) Instance() sched.Instance {
	ids := t.IDs()
	jobs := make([]sched.Job, len(ids))
	for i, id := range ids {
		jobs[i] = t.jobs[id]
	}
	return sched.Instance{Jobs: jobs, Procs: t.procs}
}

// Add inserts a job and returns its id (ids are assigned in arrival
// order and never reused). The job merges into the decomposition as
// Decompose's sweep would place it: it joins the fragment whose
// coverage its release cannot split from, then absorbs the run of
// later fragments reached by the extended coverage. Exactly the
// touched fragments (at least the one now containing the job) become
// dirty.
func (t *Tracker) Add(j sched.Job) int {
	id := t.nextID
	t.nextID++
	t.jobs[id] = j

	// frags[lo:hi] is the run of fragments the new job merges with. At
	// most one fragment starts at or before the job's release (regions
	// are disjoint); it merges iff the idle run between its coverage
	// end and the release fails the split test — in particular always
	// when the release lands inside it. Fragments to the right then
	// merge while the combined coverage end reaches them the same way.
	lo := sort.Search(len(t.frags), func(i int) bool { return t.frags[i].start > j.Release })
	hi := lo
	start, end := j.Release, j.Deadline
	if lo > 0 && !prep.Splits(j.Release-t.frags[lo-1].end-1, t.splitWidth) {
		lo--
		start = t.frags[lo].start
		if t.frags[lo].end > end {
			end = t.frags[lo].end
		}
	}
	for hi < len(t.frags) && !prep.Splits(t.frags[hi].start-end-1, t.splitWidth) {
		if t.frags[hi].end > end {
			end = t.frags[hi].end
		}
		hi++
	}

	merged := &fragment{ids: []int{id}, start: start, end: end, dirty: true}
	for _, f := range t.frags[lo:hi] {
		merged.ids = append(merged.ids, f.ids...)
	}
	sort.Ints(merged.ids)
	t.frags = append(t.frags[:lo], append([]*fragment{merged}, t.frags[hi:]...)...)
	return id
}

// Remove deletes the job with the given id, reporting whether it was
// live. The containing fragment is re-decomposed locally — it may
// shrink or split, and every piece is dirty; no other fragment is
// touched.
func (t *Tracker) Remove(id int) bool {
	j, ok := t.jobs[id]
	if !ok {
		return false
	}
	delete(t.jobs, id)
	fi := sort.Search(len(t.frags), func(i int) bool { return t.frags[i].end >= j.Release })
	f := t.frags[fi]

	rest := make([]int, 0, len(f.ids)-1)
	for _, fid := range f.ids {
		if fid != id {
			rest = append(rest, fid)
		}
	}
	if len(rest) == 0 {
		t.frags = append(t.frags[:fi], t.frags[fi+1:]...)
		return true
	}
	// Re-decompose the survivors. rest is ascending, so each sub's
	// index list maps back to an ascending id list; fragment instances
	// are rebuilt from absolute windows at Resolve, so only the ids and
	// the covered region carry over.
	jobs := make([]sched.Job, len(rest))
	for i, fid := range rest {
		jobs[i] = t.jobs[fid]
	}
	pl := prep.Decompose(sched.Instance{Jobs: jobs, Procs: t.procs}, t.splitWidth)
	pieces := make([]*fragment, len(pl.Subs))
	for si, sub := range pl.Subs {
		nf := &fragment{ids: make([]int, len(sub.Jobs)), dirty: true}
		for i, local := range sub.Jobs {
			nf.ids[i] = rest[local]
		}
		lo, hi := sub.Instance.TimeHorizon()
		nf.start, nf.end = sub.Offset+lo, sub.Offset+hi
		pieces[si] = nf
	}
	t.frags = append(t.frags[:fi], append(pieces, t.frags[fi+1:]...)...)
	return true
}

// fragmentInstance builds the solver instance of one fragment: the
// fragment's jobs in id order, translated so the earliest release is 0
// — byte-identical to the corresponding prep.Decompose sub-instance of
// Instance().
func (t *Tracker) fragmentInstance(f *fragment) sched.Instance {
	jobs := make([]sched.Job, len(f.ids))
	for i, id := range f.ids {
		j := t.jobs[id]
		jobs[i] = sched.Job{Release: j.Release - f.start, Deadline: j.Deadline - f.start}
	}
	return sched.Instance{Jobs: jobs, Procs: t.procs}
}

// Counts reports what one Resolve call did.
type Counts struct {
	// Resolved is the number of dirty fragments solved by this call.
	Resolved int
	// Reused is the number of clean fragments whose stored result was
	// used without re-solving.
	Reused int
	// CacheHits is the number of resolved fragments the solve callback
	// reported as served from a fragment cache.
	CacheHits int
	// States sums the DP states over all fragments (stored states for
	// reused fragments), matching the batch facade's accounting.
	States int
	// PrunedStates and ExpandedStates sum the fragments'
	// branch-and-bound counters under the same stored-result convention
	// as States.
	PrunedStates   int
	ExpandedStates int
	// LowerBound sums the per-fragment certified lower bounds in
	// fragment time order, matching the one-shot facade's accounting.
	LowerBound float64
	// HeuristicFragments counts the fragments whose current stored
	// result came from the heuristic tier; PolyFragments those served
	// by the polynomial single-machine backend.
	HeuristicFragments int
	PolyFragments      int
}

// Resolve brings the solution up to date: dirty fragments are solved
// through the callback in time order, clean fragments keep their
// stored results, and the per-fragment costs are summed in time order
// — the same order a from-scratch solve uses, so the total is
// bit-identical. The assembled schedule covers Instance() (slots in
// job-id order, absolute times). On the first fragment error (stored
// or fresh) Resolve stops and returns it, exactly like the sequential
// from-scratch path; fragments after the failing one stay dirty and
// are picked up by a later Resolve once the conflict is removed.
func (t *Tracker) Resolve(solve func(sched.Instance) Result) (cost float64, s sched.Schedule, c Counts, err error) {
	ids := t.IDs()
	pos := make(map[int]int, len(ids))
	for i, id := range ids {
		pos[id] = i
	}
	s = sched.Schedule{Procs: t.procs, Slots: make([]sched.Assignment, len(ids))}
	for _, f := range t.frags {
		if f.dirty {
			f.res = solve(t.fragmentInstance(f))
			f.dirty = false
			c.Resolved++
			if f.res.Hit {
				c.CacheHits++
			}
		} else {
			c.Reused++
		}
		c.States += f.res.States
		c.PrunedStates += f.res.Pruned
		c.ExpandedStates += f.res.Expanded
		c.LowerBound += f.res.LB
		if f.res.Heur {
			c.HeuristicFragments++
		}
		if f.res.Poly {
			c.PolyFragments++
		}
		if f.res.Err != nil {
			return 0, sched.Schedule{}, c, f.res.Err
		}
		if len(f.res.Schedule.Slots) != len(f.ids) {
			return 0, sched.Schedule{}, c, fmt.Errorf("incr: fragment solution has %d slots for %d jobs", len(f.res.Schedule.Slots), len(f.ids))
		}
		cost += f.res.Cost
		for i, a := range f.res.Schedule.Slots {
			s.Slots[pos[f.ids[i]]] = sched.Assignment{Proc: a.Proc, Time: a.Time + f.start}
		}
	}
	return cost, s, c, nil
}
