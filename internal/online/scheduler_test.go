package online

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/feas"
	"repro/internal/powerdown"
	"repro/internal/sched"
	"repro/internal/workload"
)

// releaseSorted returns in with jobs reordered by (Release, Deadline,
// index): the arrival order an online stream reveals them in. Feeding
// the sorted instance keeps online ids equal to instance indices.
func releaseSorted(in sched.Instance) sched.Instance {
	jobs := append([]sched.Job(nil), in.Jobs...)
	sort.SliceStable(jobs, func(x, y int) bool {
		if jobs[x].Release != jobs[y].Release {
			return jobs[x].Release < jobs[y].Release
		}
		return jobs[x].Deadline < jobs[y].Deadline
	})
	in.Jobs = jobs
	return in
}

// stream reveals in's jobs (already release-sorted) grouped by release
// time, then finishes the run-out.
func stream(t *testing.T, s *Scheduler, in sched.Instance) error {
	t.Helper()
	for i := 0; i < len(in.Jobs); {
		k := i
		for k < len(in.Jobs) && in.Jobs[k].Release == in.Jobs[i].Release {
			k++
		}
		ids, _, err := s.Step(in.Jobs[i].Release, in.Jobs[i:k])
		if err != nil {
			t.Fatalf("Step(%d): %v", in.Jobs[i].Release, err)
		}
		for q, id := range ids {
			if id != i+q {
				t.Fatalf("Step assigned id %d to arrival %d, want %d", id, i+q, i+q)
			}
		}
		i = k
	}
	_, err := s.Finish()
	return err
}

// TestSchedulerMatchesEDF: a full online run over a release-sorted
// stream commits exactly the schedule the offline eager-EDF oracle
// builds — slot for slot — and agrees with the feasibility oracle.
func TestSchedulerMatchesEDF(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 400; trial++ {
		n := 1 + rng.Intn(12)
		p := 1 + rng.Intn(3)
		in := releaseSorted(workload.Multiproc(rng, n, p, 1+rng.Intn(30), 1+rng.Intn(6)))
		s, err := NewScheduler(Config{Procs: p})
		if err != nil {
			t.Fatal(err)
		}
		err = stream(t, s, in)
		want, feasible := feas.EDFOneInterval(in)
		if feasible != (err == nil) {
			t.Fatalf("trial %d: online err=%v, offline EDF feasible=%v\ninstance %+v", trial, err, feasible, in)
		}
		if !feasible {
			if !errors.Is(err, ErrInfeasible) || !errors.Is(s.Err(), ErrInfeasible) {
				t.Fatalf("trial %d: infeasible run reported %v (Err %v)", trial, err, s.Err())
			}
			if !feas.FeasibleOneInterval(in) {
				continue
			}
			t.Fatalf("trial %d: EDF oracle and Hall oracle disagree", trial)
		}
		slots, done := s.CommittedPrefix()
		for i := range in.Jobs {
			if !done[i] {
				t.Fatalf("trial %d: job %d uncommitted after Finish", trial, i)
			}
			if slots[i] != want.Slots[i] {
				t.Fatalf("trial %d: job %d at %+v, EDF oracle says %+v", trial, i, slots[i], want.Slots[i])
			}
		}
		got := sched.Schedule{Procs: p, Slots: slots}
		if err := got.Validate(in); err != nil {
			t.Fatalf("trial %d: committed schedule invalid: %v", trial, err)
		}
		if acct := s.Accounting(); acct.Spans != got.Spans() {
			t.Fatalf("trial %d: accounted %d spans, schedule has %d", trial, acct.Spans, got.Spans())
		}
	}
}

// TestSchedulerEnergyMatchesThresholdPricing: the committed prefix's
// energy equals pricing the committed schedule's idle periods with
// powerdown.Threshold — the scheduler's incremental accounting and the
// offline evaluator never drift.
func TestSchedulerEnergyMatchesThresholdPricing(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(10)
		p := 1 + rng.Intn(2)
		alpha := float64(rng.Intn(7)) / 2
		in := releaseSorted(workload.Multiproc(rng, n, p, 1+rng.Intn(40), 1+rng.Intn(5)))
		s, err := NewScheduler(Config{Procs: p, Alpha: alpha, Power: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := stream(t, s, in); err != nil {
			continue
		}
		slots, _ := s.CommittedPrefix()
		got := sched.Schedule{Procs: p, Slots: slots}
		want := powerdown.EvaluateSchedule(got, alpha, powerdown.Threshold{Tau: alpha}).Total
		if acct := s.Accounting(); acct.Energy != want {
			t.Fatalf("trial %d (α=%v): accounted energy %v, threshold evaluation %v", trial, alpha, acct.Energy, want)
		}
	}
}

// TestSchedulerCommitIsIrrevocable: a committed slot never changes
// across later steps, and a projection neither commits anything nor
// disturbs the prefix.
func TestSchedulerCommitIsIrrevocable(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		p := 1 + rng.Intn(2)
		in := releaseSorted(workload.Multiproc(rng, 1+rng.Intn(10), p, 1+rng.Intn(25), 1+rng.Intn(5)))
		s, err := NewScheduler(Config{Procs: p})
		if err != nil {
			t.Fatal(err)
		}
		prevSlots, prevDone := s.CommittedPrefix()
		for i, j := range in.Jobs {
			if _, _, err := s.Step(j.Release, []sched.Job{j}); err != nil {
				t.Fatalf("Step: %v", err)
			}
			if _, err := s.Project(); err != nil && !errors.Is(err, ErrInfeasible) {
				t.Fatalf("Project: %v", err)
			}
			slots, done := s.CommittedPrefix()
			for k := range prevDone {
				if prevDone[k] && (!done[k] || slots[k] != prevSlots[k]) {
					t.Fatalf("trial %d: commitment of job %d mutated after arrival %d", trial, k, i)
				}
			}
			prevSlots, prevDone = slots, done
		}
	}
}

// TestSchedulerIdleSkip: a huge release jump costs no time — the
// frontier jumps over the idle stretch and the gap is priced once when
// it closes.
func TestSchedulerIdleSkip(t *testing.T) {
	s, err := NewScheduler(Config{Alpha: 2, Power: true})
	if err != nil {
		t.Fatal(err)
	}
	far := 1 << 40
	if _, _, err := s.Step(0, []sched.Job{{Release: 0, Deadline: 0}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Step(far, []sched.Job{{Release: far, Deadline: far}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Finish(); err != nil {
		t.Fatal(err)
	}
	acct := s.Accounting()
	if acct.Spans != 2 || acct.Committed != 2 {
		t.Fatalf("accounting %+v, want 2 spans / 2 committed", acct)
	}
	// busy 2 + first wake α + one closed gap at the threshold price τ+α.
	if want := 2.0 + 2 + (2 + 2); acct.Energy != want {
		t.Fatalf("energy %v, want %v", acct.Energy, want)
	}
}

// TestSchedulerStepMisuse: time regressions and pre-release arrivals
// are rejected with ErrReleaseOrder and change nothing; invalid
// windows are rejected.
func TestSchedulerStepMisuse(t *testing.T) {
	s, err := NewScheduler(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Step(5, []sched.Job{{Release: 5, Deadline: 6}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Step(3, nil); !errors.Is(err, ErrReleaseOrder) {
		t.Fatalf("time regression: got %v", err)
	}
	if _, _, err := s.Step(7, []sched.Job{{Release: 6, Deadline: 9}}); !errors.Is(err, ErrReleaseOrder) {
		t.Fatalf("pre-release arrival: got %v", err)
	}
	if _, _, err := s.Step(7, []sched.Job{{Release: 9, Deadline: 8}}); err == nil || errors.Is(err, ErrReleaseOrder) {
		t.Fatalf("empty window: got %v", err)
	}
	if acct := s.Accounting(); acct.Revealed != 1 {
		t.Fatalf("rejected arrivals were admitted: %+v", acct)
	}
	if s.Watermark() != 5 {
		t.Fatalf("watermark %d, want 5", s.Watermark())
	}
}

// TestSchedulerInfeasibleIsSticky: a missed deadline is terminal —
// Finish and Project keep reporting it — but revelation continues.
func TestSchedulerInfeasibleIsSticky(t *testing.T) {
	s, err := NewScheduler(Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Two unit jobs at time 0 on one processor: the second must miss.
	if _, _, err := s.Step(0, []sched.Job{{Release: 0, Deadline: 0}, {Release: 0, Deadline: 0}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Step(10, nil); err != nil {
		t.Fatalf("Step after miss must keep accepting revelations: %v", err)
	}
	if !errors.Is(s.Err(), ErrInfeasible) {
		t.Fatalf("Err() = %v, want ErrInfeasible", s.Err())
	}
	if _, err := s.Project(); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("Project after miss: %v", err)
	}
	if ids, _, err := s.Step(10, []sched.Job{{Release: 10, Deadline: 12}}); err != nil || len(ids) != 1 {
		t.Fatalf("arrival after miss: ids=%v err=%v", ids, err)
	}
	if _, err := s.Finish(); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("Finish after miss: %v", err)
	}
}

// TestSchedulerProjectExtendsPrefix: mid-stream projections cover all
// revealed jobs, validate against the revealed instance, and keep the
// committed prefix exactly.
func TestSchedulerProjectExtendsPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 200; trial++ {
		p := 1 + rng.Intn(2)
		in := releaseSorted(workload.FeasibleOneInterval(rng, 1+rng.Intn(10), p, 1+rng.Intn(25), 2+rng.Intn(5)))
		s, err := NewScheduler(Config{Procs: p})
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range in.Jobs {
			if _, _, err := s.Step(j.Release, []sched.Job{j}); err != nil {
				t.Fatalf("Step: %v", err)
			}
			proj, err := s.Project()
			if err != nil {
				// Feasible instance, arrivals at release: EDF never misses.
				t.Fatalf("trial %d: projection infeasible on feasible stream: %v", trial, err)
			}
			if err := proj.Schedule.Validate(s.Instance()); err != nil {
				t.Fatalf("trial %d: projection invalid: %v", trial, err)
			}
			slots, done := s.CommittedPrefix()
			for id, d := range done {
				if d && proj.Schedule.Slots[id] != slots[id] {
					t.Fatalf("trial %d: projection moved committed job %d", trial, id)
				}
			}
		}
	}
}

func TestNewSchedulerValidation(t *testing.T) {
	for _, cfg := range []Config{{Procs: -1}, {Alpha: -1}, {Tau: -0.5}} {
		if _, err := NewScheduler(cfg); err == nil {
			t.Errorf("NewScheduler(%+v) accepted", cfg)
		}
	}
	s, err := NewScheduler(Config{Alpha: 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.tau != 3 {
		t.Fatalf("default tau %v, want alpha", s.tau)
	}
}
