package online

// The online scheduling tier: a Scheduler commits each time unit's
// decisions irrevocably as jobs arrive in release order. Scheduling is
// eager EDF — the only feasibility-safe rule for one-interval unit
// jobs (§1) — and the per-processor power-down decisions follow the
// α-threshold ski-rental rule of internal/powerdown, generalized to
// the multi-job setting in the spirit of Chen–Kao–Lee–Rutter–Wagner:
// after each busy unit a processor stays active for up to τ idle units
// (τ = α by default) and then sleeps, paying α again at its next
// wake-up. The committed prefix is never revisited; projections and
// competitive-ratio measurement against the offline optimum of the
// revealed prefix live in the facade (gapsched.Solver.OpenOnline).

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/powerdown"
	"repro/internal/sched"
)

// ErrReleaseOrder rejects arrivals that violate the online contract:
// every Step's now must be non-decreasing and every arrival must be
// released at or after the now it is revealed at.
var ErrReleaseOrder = errors.New("online: arrival out of release order")

// Config configures a Scheduler.
type Config struct {
	// Procs is the processor count (0 = 1).
	Procs int
	// Alpha is the sleep→active transition cost, used by the power
	// objective and as the default threshold. Must be non-negative.
	Alpha float64
	// Power selects the power objective (busy units + α per wake-up +
	// threshold-priced idle periods); false counts spans.
	Power bool
	// Tau is the ski-rental threshold: a processor stays active through
	// the first Tau idle units after a busy unit, then sleeps. Zero
	// means Alpha (the classic 2-competitive choice); negative is
	// rejected.
	Tau float64
}

// Commitment is one irrevocably committed busy time unit: Jobs[q] is
// the id of the job executed on processor q at Time (len(Jobs) ≤
// procs; idle processors are not listed).
type Commitment struct {
	Time int
	Jobs []int
}

// Projection is a simulated run-out of the revealed jobs from the
// current committed prefix: the schedule the scheduler would commit if
// no further job arrived. The committed prefix of the projection is
// exact; assignments beyond the frontier may change as later arrivals
// are revealed.
type Projection struct {
	// Schedule covers every revealed job, in id order.
	Schedule sched.Schedule
	// Spans and Energy are the full run-out's online accounting; Cost
	// is whichever of the two the configured objective selects.
	Spans  int
	Energy float64
	Cost   float64
}

// Accounting snapshots the committed prefix.
type Accounting struct {
	// Frontier is the next uncommitted time unit.
	Frontier int
	// Revealed counts the jobs revealed so far; Committed the jobs
	// irrevocably placed.
	Revealed  int
	Committed int
	// Spans and Energy are the committed prefix's online accounting
	// (idle periods are priced when they close, so a still-open trailing
	// idle run has not been charged yet); Cost is the objective's one.
	Spans  int
	Energy float64
	Cost   float64
	// Infeasible reports that some committed unit missed a deadline.
	// Online infeasibility is terminal: the job set only ever grows.
	Infeasible bool
}

// Scheduler is the commit-only online engine. Jobs are revealed with
// Step in release order and assigned ids in arrival order; every time
// unit strictly before the latest now is committed irrevocably.
// Scheduler is not safe for concurrent use — the facade Session
// serializes access.
type Scheduler struct {
	procs int
	alpha float64
	power bool
	tau   float64

	started  bool
	now      int // latest Step watermark
	frontier int // next uncommitted time unit
	maxDl    int // largest revealed deadline

	jobs    []sched.Job        // revealed jobs, id = index
	slots   []sched.Assignment // committed assignment per job
	done    []bool             // job id → committed?
	future  []int              // uncommitted ids with Release > last admitted unit, by (Release, id)
	pending []int              // released uncommitted ids, by (Deadline, id)

	lastBusy []int  // per processor, last committed busy unit
	everBusy []bool // per processor, ever committed busy

	spans  int
	energy float64
	err    error // sticky infeasibility
}

// NewScheduler validates cfg and returns an empty scheduler.
func NewScheduler(cfg Config) (*Scheduler, error) {
	procs := cfg.Procs
	if procs == 0 {
		procs = 1
	}
	if procs < 0 {
		return nil, fmt.Errorf("online: scheduler on %d processors, need ≥ 1", procs)
	}
	if cfg.Alpha < 0 {
		return nil, fmt.Errorf("online: negative transition cost alpha %v", cfg.Alpha)
	}
	tau := cfg.Tau
	if tau == 0 {
		tau = cfg.Alpha
	}
	if tau < 0 {
		return nil, fmt.Errorf("online: negative threshold tau %v", cfg.Tau)
	}
	return &Scheduler{
		procs:    procs,
		alpha:    cfg.Alpha,
		power:    cfg.Power,
		tau:      tau,
		lastBusy: make([]int, procs),
		everBusy: make([]bool, procs),
	}, nil
}

// Step advances committed time to now and reveals arrivals: every unit
// in [previous now, now) is committed irrevocably — eager EDF
// assignments plus the threshold power-state decisions — and the
// arrivals join the uncommitted job set with ids assigned in arrival
// order (returned positionally). now must be non-decreasing across
// calls and every arrival must satisfy Release ≥ now, so committed
// units can never be invalidated; violations return ErrReleaseOrder
// (wrapped) and change nothing.
//
// A deadline missed while committing makes the scheduler permanently
// infeasible — Err, Finish and Project report it — but Step itself
// keeps accepting revelations: the stream's job set is still
// well-defined, there is just no feasible schedule for it anymore.
func (s *Scheduler) Step(now int, arrivals []sched.Job) (ids []int, commits []Commitment, err error) {
	if s.started && now < s.now {
		return nil, nil, fmt.Errorf("%w: step at time %d after time %d", ErrReleaseOrder, now, s.now)
	}
	for _, j := range arrivals {
		if !j.Valid() {
			return nil, nil, fmt.Errorf("online: job has empty window [%d,%d]", j.Release, j.Deadline)
		}
		if j.Release < now {
			return nil, nil, fmt.Errorf("%w: job [%d,%d] revealed at time %d, after its release", ErrReleaseOrder, j.Release, j.Deadline, now)
		}
	}
	if !s.started {
		s.started = true
		s.frontier = now
	}
	s.now = now
	commits = s.advance(now)
	ids = make([]int, len(arrivals))
	for i, j := range arrivals {
		ids[i] = s.admit(j)
	}
	return ids, commits, nil
}

// admit reveals one validated job, keeping future ordered by
// (Release, id).
func (s *Scheduler) admit(j sched.Job) int {
	id := len(s.jobs)
	s.jobs = append(s.jobs, j)
	s.slots = append(s.slots, sched.Assignment{})
	s.done = append(s.done, false)
	if len(s.jobs) == 1 || j.Deadline > s.maxDl {
		s.maxDl = j.Deadline
	}
	i := sort.Search(len(s.future), func(k int) bool {
		a := s.jobs[s.future[k]]
		if a.Release != j.Release {
			return a.Release > j.Release
		}
		return s.future[k] > id
	})
	s.future = append(s.future, 0)
	copy(s.future[i+1:], s.future[i:])
	s.future[i] = id
	return id
}

// advance commits every unit in [frontier, limit). Idle stretches are
// committed in one jump — their pricing is deferred to the busy unit
// that closes them, exactly like powerdown.Threshold prices a
// completed idle period — so the cost is linear in the work, not the
// horizon.
func (s *Scheduler) advance(limit int) []Commitment {
	var out []Commitment
	for s.frontier < limit && s.err == nil {
		t := s.frontier
		s.release(t)
		if len(s.pending) == 0 {
			next := limit
			if len(s.future) > 0 {
				if r := s.jobs[s.future[0]].Release; r < next {
					next = r
				}
			}
			s.frontier = next
			continue
		}
		if s.jobs[s.pending[0]].Deadline < t {
			s.err = fmt.Errorf("%w: job %d missed deadline %d at time %d",
				ErrInfeasible, s.pending[0], s.jobs[s.pending[0]].Deadline, t)
			return out
		}
		run := min(s.procs, len(s.pending))
		cm := Commitment{Time: t, Jobs: make([]int, run)}
		for q := 0; q < run; q++ {
			id := s.pending[q]
			s.slots[id] = sched.Assignment{Proc: q, Time: t}
			s.done[id] = true
			s.accountBusy(q, t)
			cm.Jobs[q] = id
		}
		s.pending = s.pending[run:]
		out = append(out, cm)
		s.frontier = t + 1
	}
	return out
}

// release moves every future job released by t into the pending set,
// which stays ordered by (Deadline, id) — the EDF priority, with the
// same tie-break feas.EDFOneInterval uses.
func (s *Scheduler) release(t int) {
	for len(s.future) > 0 {
		id := s.future[0]
		if s.jobs[id].Release > t {
			return
		}
		s.future = s.future[1:]
		i := sort.Search(len(s.pending), func(k int) bool {
			a := s.jobs[s.pending[k]]
			if a.Deadline != s.jobs[id].Deadline {
				return a.Deadline > s.jobs[id].Deadline
			}
			return s.pending[k] > id
		})
		s.pending = append(s.pending, 0)
		copy(s.pending[i+1:], s.pending[i:])
		s.pending[i] = id
	}
}

// accountBusy charges one committed busy unit on processor q at time
// t. Spans count exactly as Schedule.Spans does; energy charges each
// closed idle period with the threshold rule, so the committed
// prefix's energy equals powerdown.EvaluateSchedule of the committed
// schedule under Threshold{Tau} (busy + α per span-opening wake-up,
// threshold price per gap, trailing idle free until it closes).
func (s *Scheduler) accountBusy(q, t int) {
	switch {
	case !s.everBusy[q]:
		s.spans++
		s.energy += s.alpha + 1
	case s.lastBusy[q] == t-1:
		s.energy++
	default:
		s.spans++
		gap := t - 1 - s.lastBusy[q]
		s.energy += powerdown.Threshold{Tau: s.tau}.Cost(gap, s.alpha) + 1
	}
	s.everBusy[q] = true
	s.lastBusy[q] = t
}

// Finish commits the run-out: every remaining revealed job is placed
// (time jumps over idle stretches), after which the committed schedule
// covers the whole revealed set. It returns the newly committed units,
// or the sticky infeasibility error.
func (s *Scheduler) Finish() ([]Commitment, error) {
	if s.err != nil {
		return nil, s.err
	}
	var out []Commitment
	if len(s.pending) > 0 || len(s.future) > 0 {
		out = s.advance(s.maxDl + 1)
		if s.err == nil && len(s.pending) > 0 {
			// advance stopped at the horizon with work left over: those
			// jobs' deadlines have all passed. (future is empty — every
			// release is ≤ its job's deadline ≤ maxDl.)
			id := s.pending[0]
			s.err = fmt.Errorf("%w: job %d missed deadline %d at time %d",
				ErrInfeasible, id, s.jobs[id].Deadline, s.frontier)
		}
		if s.frontier > s.now {
			s.now = s.frontier
		}
	}
	return out, s.err
}

// Project simulates Finish on a copy of the scheduler: the returned
// schedule extends the committed prefix over every revealed job
// without committing anything (a later arrival may still change the
// uncommitted assignments). The error is the infeasibility verdict of
// the revealed prefix — by the standard EDF exchange argument it
// agrees with feas.FeasibleOneInterval on the revealed instance.
func (s *Scheduler) Project() (Projection, error) {
	c := s.clone()
	if _, err := c.Finish(); err != nil {
		return Projection{}, err
	}
	p := Projection{
		Schedule: sched.Schedule{Procs: c.procs, Slots: append([]sched.Assignment(nil), c.slots...)},
		Spans:    c.spans,
		Energy:   c.energy,
	}
	p.Cost = c.cost()
	return p, nil
}

func (s *Scheduler) clone() *Scheduler {
	c := *s
	c.jobs = append([]sched.Job(nil), s.jobs...)
	c.slots = append([]sched.Assignment(nil), s.slots...)
	c.done = append([]bool(nil), s.done...)
	c.future = append([]int(nil), s.future...)
	c.pending = append([]int(nil), s.pending...)
	c.lastBusy = append([]int(nil), s.lastBusy...)
	c.everBusy = append([]bool(nil), s.everBusy...)
	return &c
}

func (s *Scheduler) cost() float64 {
	if s.power {
		return s.energy
	}
	return float64(s.spans)
}

// Err returns the sticky infeasibility error, if any committed unit
// missed a deadline.
func (s *Scheduler) Err() error { return s.err }

// Watermark returns the latest Step time — the earliest release the
// next arrival may carry — or math.MinInt before the first Step.
func (s *Scheduler) Watermark() int {
	if !s.started {
		return math.MinInt
	}
	return s.now
}

// Instance snapshots the revealed job set in id order.
func (s *Scheduler) Instance() sched.Instance {
	return sched.Instance{Jobs: append([]sched.Job(nil), s.jobs...), Procs: s.procs}
}

// CommittedPrefix returns a copy of the irrevocable assignments:
// committed[id] reports whether job id is placed, slots[id] where. A
// slot, once committed, never changes — the invariant the
// FuzzOnlineCommit lane certifies.
func (s *Scheduler) CommittedPrefix() (slots []sched.Assignment, committed []bool) {
	return append([]sched.Assignment(nil), s.slots...), append([]bool(nil), s.done...)
}

// Accounting snapshots the committed prefix's counters.
func (s *Scheduler) Accounting() Accounting {
	committed := 0
	for _, d := range s.done {
		if d {
			committed++
		}
	}
	return Accounting{
		Frontier:   s.frontier,
		Revealed:   len(s.jobs),
		Committed:  committed,
		Spans:      s.spans,
		Energy:     s.energy,
		Cost:       s.cost(),
		Infeasible: s.err != nil,
	}
}
