package online

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/workload"
)

// TestLowerBoundFamilyOfflineOptimum verifies the analytical claim that
// the adversarial family has a one-span offline schedule, using the
// exact DP for small n.
func TestLowerBoundFamilyOfflineOptimum(t *testing.T) {
	for n := 1; n <= 5; n++ {
		in := workload.OnlineLowerBound(n)
		res, err := core.SolveGaps(in)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.Spans != 1 {
			t.Fatalf("n=%d: offline optimum %d spans, want 1", n, res.Spans)
		}
	}
}

// TestLowerBoundOnlineGrowsLinearly: eager EDF pays n spans (the
// flexible block merges with the first tight job; the other n−1 tight
// jobs are isolated).
func TestLowerBoundOnlineGrowsLinearly(t *testing.T) {
	for _, n := range []int{1, 2, 5, 10, 25} {
		rep, err := LowerBound(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if rep.OnlineSpans != n {
			t.Fatalf("n=%d: online spans %d, want %d", n, rep.OnlineSpans, n)
		}
		if rep.OfflineSpans != 1 {
			t.Fatalf("n=%d: offline spans %d, want 1", n, rep.OfflineSpans)
		}
		if rep.Ratio != float64(n) {
			t.Fatalf("n=%d: ratio %v, want %v", n, rep.Ratio, float64(n))
		}
	}
}

func TestEDFInfeasible(t *testing.T) {
	in := sched.NewInstance([]sched.Job{{Release: 0, Deadline: 0}, {Release: 0, Deadline: 0}})
	if _, err := EDF(in); err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestEDFNeverIdlesWhilePending(t *testing.T) {
	in := sched.NewInstance([]sched.Job{
		{Release: 0, Deadline: 10},
		{Release: 0, Deadline: 10},
		{Release: 5, Deadline: 10},
	})
	s, err := EDF(in)
	if err != nil {
		t.Fatal(err)
	}
	// Eagerness: the two flexible jobs run at 0 and 1, not later.
	times := map[int]bool{}
	for _, a := range s.Slots {
		times[a.Time] = true
	}
	if !times[0] || !times[1] {
		t.Fatalf("EDF idled while work was pending: %v", s.Slots)
	}
}
