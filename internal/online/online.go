// Package online is the online scheduling tier. Scheduler (scheduler.go)
// commits each time unit's eager-EDF and power-down decisions
// irrevocably as jobs are revealed in release order; the facade's
// Solver.OpenOnline measures its competitive ratio live against the
// offline optimum of the revealed prefix.
//
// The package started as — and still contains — the paper's §1
// demonstration that one-interval gap scheduling is bleak online: any
// algorithm that guarantees feasibility must schedule eagerly
// (earliest-deadline-first, never idling while work is pending), and on
// the adversarial family LB(n) it pays Ω(n) spans while the offline
// optimum needs one. That Ω(n) is intrinsic, which is why the tier
// reports measured ratios instead of promising constant ones for gaps;
// the power objective's idle decisions, by contrast, follow the
// 2-competitive ski-rental threshold rule (internal/powerdown).
package online

import (
	"errors"

	"repro/internal/feas"
	"repro/internal/sched"
	"repro/internal/workload"
)

// ErrInfeasible is returned when the instance admits no feasible
// schedule.
var ErrInfeasible = errors.New("online: instance is infeasible")

// EDF runs the eager earliest-deadline-first rule, the canonical correct
// online algorithm: at every time unit it executes the released,
// unfinished jobs with the earliest deadlines (up to p of them), never
// idling while work is pending.
func EDF(in sched.Instance) (sched.Schedule, error) {
	s, ok := feas.EDFOneInterval(in)
	if !ok {
		return sched.Schedule{}, ErrInfeasible
	}
	return s, nil
}

// LowerBoundReport compares eager EDF against the known offline optimum
// on the adversarial family LB(n) of §1.
type LowerBoundReport struct {
	N            int
	OnlineSpans  int
	OfflineSpans int // 1 analytically: the tight jobs' idle units absorb the flexible jobs
	Ratio        float64
}

// LowerBound builds workload.OnlineLowerBound(n), runs EDF, and reports
// the competitive ratio against the offline optimum.
//
// Offline, the n flexible jobs [0, 3n] fit exactly into the n idle units
// n+1, n+3, …, 3n−1 interleaving the tight jobs at n, n+2, …, 3n−2, so
// the whole schedule is one span. Eager EDF instead runs the flexible
// jobs during [0, n); that block merges with the first tight job at
// time n, and the remaining n−1 tight jobs each sit in isolation: n
// spans in total, a competitive ratio of n. (The offline optimum is
// re-verified against the exact DP for small n in tests.)
func LowerBound(n int) (LowerBoundReport, error) {
	in := workload.OnlineLowerBound(n)
	s, err := EDF(in)
	if err != nil {
		return LowerBoundReport{}, err
	}
	online := s.Spans()
	return LowerBoundReport{
		N:            n,
		OnlineSpans:  online,
		OfflineSpans: 1,
		Ratio:        float64(online),
	}, nil
}
