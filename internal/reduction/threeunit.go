package reduction

import "repro/internal/sched"

// ThreeUnit is the Theorem 8 construction: an equivalent 3-unit
// gap-scheduling instance (every job has at most three allowed times,
// each a single unit) built from an arbitrary multi-interval instance.
//
// A job j with allowed times t_1 < … < t_k (k > 3) receives an extra
// interval of length 2k−1 whose odd positions (1-indexed) are pinned by
// k dummy jobs. The even positions 2, 4, …, 2k−2 are shared by k
// replacement jobs:
//
//	ĵ_i (1 ≤ i ≤ k−2): allowed at {t_i, pos 2i, pos 2i+2}
//	ĵ_{k−1}:           allowed at {t_{k−1}, pos 2k−2}
//	ĵ_k:               allowed at {t_k, pos 2, pos 4}
//
// Any k−1 of the replacements can fill the k−1 even positions (the
// proof's rotation: excluding ĵ_q with q < k sends ĵ_i to pos 2i+2 for
// i < q, ĵ_k to pos 2, defaults elsewhere), so exactly one replacement
// escapes to its original time: OPT₃ = OPT + 1 as the extra block forms
// one extra span.
type ThreeUnit struct {
	Original sched.MultiInstance
	Reduced  sched.MultiInstance
	// Replacement[j][i] is the reduced index of ĵ_{i+1} for original job
	// j, ordered as the sorted allowed times (nil when copied verbatim).
	Replacement [][]int
	// TimeOf[j][i] is t_{i+1}, job j's i-th allowed time.
	TimeOf [][]int
	// CopyOf[j] is the reduced index of original job j when it was
	// copied verbatim (−1 otherwise).
	CopyOf []int
	// ExtraOf[j] is job j's extra interval (zero-length when copied).
	ExtraOf []sched.Interval
	// Block is the union of all extra intervals.
	Block sched.Interval
}

// ToThreeUnit builds the Theorem 8 reduction. Original jobs with at most
// three allowed times are first exploded into their unit times and
// copied; jobs with more receive the gadget.
func ToThreeUnit(mi sched.MultiInstance) ThreeUnit {
	r := ThreeUnit{
		Original:    mi,
		Replacement: make([][]int, mi.N()),
		TimeOf:      make([][]int, mi.N()),
		CopyOf:      make([]int, mi.N()),
		ExtraOf:     make([]sched.Interval, mi.N()),
	}
	cursor := 0
	if ts := mi.AllTimes(); len(ts) > 0 {
		cursor = ts[len(ts)-1] + 2
	}
	blockStart := cursor
	var jobs []sched.MultiJob
	for j, job := range mi.Jobs {
		r.CopyOf[j] = -1
		times := job.Times()
		r.TimeOf[j] = times
		if len(times) <= 3 {
			r.CopyOf[j] = len(jobs)
			jobs = append(jobs, sched.MultiJobFromTimes(times...))
			continue
		}
		k := len(times)
		extra := sched.Interval{Lo: cursor, Hi: cursor + 2*k - 2}
		r.ExtraOf[j] = extra
		cursor = extra.Hi + 1
		pos := func(oneIndexed int) int { return extra.Lo + oneIndexed - 1 }
		for d := 0; d < k; d++ { // dummies at odd 1-indexed positions
			jobs = append(jobs, sched.MultiJobFromTimes(pos(2*d+1)))
		}
		r.Replacement[j] = make([]int, k)
		for i := 1; i <= k; i++ {
			r.Replacement[j][i-1] = len(jobs)
			switch {
			case i <= k-2:
				jobs = append(jobs, sched.MultiJobFromTimes(times[i-1], pos(2*i), pos(2*i+2)))
			case i == k-1:
				jobs = append(jobs, sched.MultiJobFromTimes(times[i-1], pos(2*k-2)))
			default: // i == k
				jobs = append(jobs, sched.MultiJobFromTimes(times[i-1], pos(2), pos(4)))
			}
		}
	}
	r.Block = sched.Interval{Lo: blockStart, Hi: cursor - 1}
	r.Reduced = sched.MultiInstance{Jobs: jobs}
	return r
}

// FromOriginal lifts a schedule of the original instance to the reduced
// instance with every extra interval completely busy, using the proof's
// rotation.
func (r ThreeUnit) FromOriginal(ms sched.MultiSchedule) (sched.MultiSchedule, bool) {
	if err := ms.Validate(r.Original); err != nil {
		return sched.MultiSchedule{}, false
	}
	out := sched.MultiSchedule{Times: make([]int, r.Reduced.N())}
	for j, job := range r.Original.Jobs {
		if c := r.CopyOf[j]; c >= 0 {
			out.Times[c] = ms.Times[j]
			continue
		}
		times := r.TimeOf[j]
		k := len(times)
		extra := r.ExtraOf[j]
		pos := func(oneIndexed int) int { return extra.Lo + oneIndexed - 1 }
		firstDummy := r.Replacement[j][0] - k
		for d := 0; d < k; d++ {
			out.Times[firstDummy+d] = pos(2*d + 1)
		}
		q := -1 // which replacement escapes
		for i, t := range times {
			if t == ms.Times[j] {
				q = i + 1 // 1-indexed
				break
			}
		}
		if q < 0 {
			return sched.MultiSchedule{}, false
		}
		out.Times[r.Replacement[j][q-1]] = ms.Times[j]
		if q == k {
			// Defaults: ĵ_i → pos 2i for i = 1..k−1.
			for i := 1; i <= k-1; i++ {
				out.Times[r.Replacement[j][i-1]] = pos(2 * i)
			}
		} else {
			// Rotation: ĵ_i → pos 2i+2 for i < q; ĵ_i → pos 2i for
			// q < i ≤ k−1; ĵ_k → pos 2.
			for i := 1; i < q; i++ {
				out.Times[r.Replacement[j][i-1]] = pos(2*i + 2)
			}
			for i := q + 1; i <= k-1; i++ {
				out.Times[r.Replacement[j][i-1]] = pos(2 * i)
			}
			out.Times[r.Replacement[j][k-1]] = pos(2)
		}
		_ = job
	}
	if err := out.Validate(r.Reduced); err != nil {
		return sched.MultiSchedule{}, false
	}
	return out, true
}

// PullBack converts a reduced schedule whose extra intervals are all
// completely busy into an original schedule by reading off escaped
// replacements. (Optimal reduced schedules can always be normalized into
// this form; the normalization is part of the proof, and exact solvers
// reach such optima — asserted in tests.)
func (r ThreeUnit) PullBack(ms sched.MultiSchedule) (sched.MultiSchedule, bool) {
	if len(ms.Times) != r.Reduced.N() {
		return sched.MultiSchedule{}, false
	}
	out := sched.MultiSchedule{Times: make([]int, r.Original.N())}
	for j := range r.Original.Jobs {
		if c := r.CopyOf[j]; c >= 0 {
			out.Times[j] = ms.Times[c]
			continue
		}
		extra := r.ExtraOf[j]
		found := false
		for _, rep := range r.Replacement[j] {
			if !extra.Contains(ms.Times[rep]) {
				if found {
					return sched.MultiSchedule{}, false
				}
				out.Times[j] = ms.Times[rep]
				found = true
			}
		}
		if !found {
			return sched.MultiSchedule{}, false
		}
	}
	if err := out.Validate(r.Original); err != nil {
		return sched.MultiSchedule{}, false
	}
	return out, true
}
