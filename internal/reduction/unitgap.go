package reduction

import (
	"sort"

	"repro/internal/feas"
	"repro/internal/sched"
)

// CompressGaps remaps the times of a multi-interval instance so that
// every maximal stretch of times containing no job interval (a gap′ in
// the paper's §5.3 terminology) shrinks to exactly one unit. No job can
// ever run inside a gap′, so the remapping changes no optimum; it is the
// preprocessing both Theorem 9 directions assume.
func CompressGaps(mi sched.MultiInstance) (sched.MultiInstance, map[int]int) {
	times := mi.AllTimes()
	remap := make(map[int]int, len(times))
	cur := 0
	for i, t := range times {
		if i > 0 {
			if t == times[i-1]+1 {
				cur++
			} else {
				cur += 2 // one unit of gap′, however long the stretch was
			}
		}
		remap[t] = cur
	}
	jobs := make([]sched.MultiJob, mi.N())
	for j, job := range mi.Jobs {
		var ts []int
		for _, t := range job.Times() {
			ts = append(ts, remap[t])
		}
		jobs[j] = sched.MultiJobFromTimes(ts...)
	}
	return sched.MultiInstance{Jobs: jobs}, remap
}

// UnitEquivalence is the Theorem 9 construction relating two-unit gap
// scheduling (each job has at most two allowed unit times) and
// disjoint-unit gap scheduling (jobs' allowed sets are pairwise
// disjoint). Schedules of one instance correspond to schedules of the
// other with the busy/idle state of every time unit reversed, so the
// optimal gap counts differ by at most one.
type UnitEquivalence struct {
	From sched.MultiInstance // the source instance (already compressed)
	To   sched.MultiInstance // the constructed instance
	// Components lists, for each constructed non-pinned job of To, the
	// source job indices and allowed times of its originating component
	// (TwoUnitToDisjoint) or the source job's times (DisjointToTwoUnit
	// groups chain jobs per source job instead).
	Components []Component
	// Pinned lists the gap′ unit jobs appended at the end of To.Jobs.
	Pinned []int
}

// Component records one connected component of the job/time bipartite
// graph of a two-unit instance.
type Component struct {
	Jobs  []int
	Times []int
	// Slack is true when |Times| = |Jobs|+1 (one time always idle).
	Slack bool
	// ToJob is the index in the constructed instance (−1 for saturated
	// components, which generate no job).
	ToJob int
}

// TwoUnitToDisjoint builds the first direction of Theorem 9. The input
// must be feasible, with every job having at most two allowed times; the
// instance is compressed first. For every connected component H(X′, Y′)
// of the job/time graph, |Y′| − |X′| ∈ {0, 1}: saturated components keep
// all their times busy in every schedule and produce nothing; slack
// components leave exactly one time idle and produce one job allowed
// exactly on Y′; every gap′ unit produces a pinned job.
func TwoUnitToDisjoint(mi sched.MultiInstance) (UnitEquivalence, bool) {
	for _, j := range mi.Jobs {
		if j.NumTimes() > 2 {
			return UnitEquivalence{}, false
		}
	}
	compressed, _ := CompressGaps(mi)
	if !feas.FeasibleMulti(compressed) {
		return UnitEquivalence{}, false
	}
	eq := UnitEquivalence{From: compressed}

	// Union-find over times; jobs connect their (≤2) times.
	times := compressed.AllTimes()
	index := make(map[int]int, len(times))
	for i, t := range times {
		index[t] = i
	}
	parent := make([]int, len(times))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for _, job := range compressed.Jobs {
		ts := job.Times()
		for i := 1; i < len(ts); i++ {
			union(index[ts[0]], index[ts[i]])
		}
	}
	compTimes := make(map[int][]int)
	for i, t := range times {
		r := find(i)
		compTimes[r] = append(compTimes[r], t)
	}
	compJobs := make(map[int][]int)
	for j, job := range compressed.Jobs {
		r := find(index[job.Times()[0]])
		compJobs[r] = append(compJobs[r], j)
	}

	var roots []int
	for r := range compTimes {
		roots = append(roots, r)
	}
	sort.Ints(roots)

	var jobs []sched.MultiJob
	for _, r := range roots {
		c := Component{Jobs: compJobs[r], Times: compTimes[r], ToJob: -1}
		switch len(c.Times) - len(c.Jobs) {
		case 0:
			// saturated: no job in the constructed instance
		case 1:
			c.Slack = true
			c.ToJob = len(jobs)
			jobs = append(jobs, sched.MultiJobFromTimes(c.Times...))
		default:
			return UnitEquivalence{}, false // infeasible or disconnected oddity
		}
		eq.Components = append(eq.Components, c)
	}
	// gap′ units: after compression, every absent unit between the first
	// and last allowed time is a single-unit gap′ and gets a pinned job.
	for i := 1; i < len(times); i++ {
		for t := times[i-1] + 1; t < times[i]; t++ {
			eq.Pinned = append(eq.Pinned, len(jobs))
			jobs = append(jobs, sched.MultiJobFromTimes(t))
		}
	}
	eq.To = sched.MultiInstance{Jobs: jobs}
	return eq, true
}

// OldFromNew maps a schedule of the constructed disjoint-unit instance
// back to the two-unit instance: within each slack component the
// constructed job's time is exactly the unit the two-unit schedule
// leaves idle, and a matching on the remaining times schedules the
// component's jobs; saturated components use any perfect matching.
func (eq UnitEquivalence) OldFromNew(ms sched.MultiSchedule) (sched.MultiSchedule, bool) {
	if len(ms.Times) != eq.To.N() {
		return sched.MultiSchedule{}, false
	}
	out := sched.MultiSchedule{Times: make([]int, eq.From.N())}
	for _, c := range eq.Components {
		exclude := -1
		if c.Slack {
			exclude = ms.Times[c.ToJob]
			if !contains(c.Times, exclude) {
				return sched.MultiSchedule{}, false
			}
		}
		if !matchComponent(eq.From, c, exclude, out.Times) {
			return sched.MultiSchedule{}, false
		}
	}
	if err := out.Validate(eq.From); err != nil {
		return sched.MultiSchedule{}, false
	}
	return out, true
}

// NewFromOld maps a schedule of the two-unit instance to the constructed
// instance: each slack component's job runs at the unit the schedule
// left idle; pinned jobs are forced.
func (eq UnitEquivalence) NewFromOld(ms sched.MultiSchedule) (sched.MultiSchedule, bool) {
	if err := ms.Validate(eq.From); err != nil {
		return sched.MultiSchedule{}, false
	}
	busy := make(map[int]bool, len(ms.Times))
	for _, t := range ms.Times {
		busy[t] = true
	}
	out := sched.MultiSchedule{Times: make([]int, eq.To.N())}
	for _, c := range eq.Components {
		if !c.Slack {
			continue
		}
		idle := -1
		for _, t := range c.Times {
			if !busy[t] {
				if idle >= 0 {
					return sched.MultiSchedule{}, false
				}
				idle = t
			}
		}
		if idle < 0 {
			return sched.MultiSchedule{}, false
		}
		out.Times[c.ToJob] = idle
	}
	for _, p := range eq.Pinned {
		out.Times[p] = eq.To.Jobs[p].Times()[0]
	}
	if err := out.Validate(eq.To); err != nil {
		return sched.MultiSchedule{}, false
	}
	return out, true
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// matchComponent schedules the component's jobs on its times minus the
// excluded one via maximum matching, writing into out.
func matchComponent(mi sched.MultiInstance, c Component, exclude int, out []int) bool {
	var slots []int
	for _, t := range c.Times {
		if t != exclude {
			slots = append(slots, t)
		}
	}
	index := make(map[int]int, len(slots))
	for i, t := range slots {
		index[t] = i
	}
	g := feas.NewBipartite(len(c.Jobs), len(slots))
	for u, j := range c.Jobs {
		for _, t := range mi.Jobs[j].Times() {
			if v, ok := index[t]; ok {
				g.AddEdge(u, v)
			}
		}
	}
	m := feas.MaxMatching(g)
	if m.Size != len(c.Jobs) {
		return false
	}
	for u, j := range c.Jobs {
		out[j] = slots[m.MatchL[u]]
	}
	return true
}

// DisjointToTwoUnit builds the second direction of Theorem 9: every
// disjoint-unit job with times t_1 < … < t_k becomes a chain of k−1
// two-unit jobs {t_m, t_{m+1}}; the unit the chain leaves idle is the
// source job's execution time. Single-time jobs stay pinned; gap′ units
// get pinned jobs. Returns false when the allowed sets are not pairwise
// disjoint.
func DisjointToTwoUnit(mi sched.MultiInstance) (UnitEquivalence, bool) {
	seen := make(map[int]bool)
	for _, j := range mi.Jobs {
		for _, t := range j.Times() {
			if seen[t] {
				return UnitEquivalence{}, false
			}
			seen[t] = true
		}
	}
	compressed, _ := CompressGaps(mi)
	eq := UnitEquivalence{From: compressed}
	var jobs []sched.MultiJob
	for j, job := range compressed.Jobs {
		ts := job.Times()
		c := Component{Jobs: []int{j}, Times: ts, Slack: true, ToJob: -1}
		if len(ts) == 1 {
			// A pinned source job stays pinned: its unit is always busy,
			// the chain is empty. Representing it as a saturated
			// pseudo-component keeps the correspondence exact.
			c.Slack = false
			eq.Components = append(eq.Components, c)
			// The constructed instance must keep this unit busy in the
			// reversed sense: in the reversal the source job's time is
			// chosen, i.e. always ts[0]; a chain of zero jobs leaves the
			// unit idle, matching a pinned busy unit on the source side.
			continue
		}
		first := len(jobs)
		for m := 0; m+1 < len(ts); m++ {
			jobs = append(jobs, sched.MultiJobFromTimes(ts[m], ts[m+1]))
		}
		c.ToJob = first // first chain job; chain length = len(ts)−1
		eq.Components = append(eq.Components, c)
	}
	all := compressed.AllTimes()
	for i := 1; i < len(all); i++ {
		for t := all[i-1] + 1; t < all[i]; t++ {
			eq.Pinned = append(eq.Pinned, len(jobs))
			jobs = append(jobs, sched.MultiJobFromTimes(t))
		}
	}
	eq.To = sched.MultiInstance{Jobs: jobs}
	return eq, true
}
