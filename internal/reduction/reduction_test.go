package reduction

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/exact"
	"repro/internal/feas"
	"repro/internal/sched"
	"repro/internal/setcover"
	"repro/internal/workload"
)

// --- Theorems 4/5/6: set cover → multi-interval power/gap scheduling ---

func TestSetCoverPowerEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		sc := setcover.Random(rng, 2+rng.Intn(5), 2+rng.Intn(4), 3)
		r := FromSetCover(sc)
		optCover := setcover.Exact(sc)
		if optCover == nil {
			t.Fatalf("trial %d: generator produced uncoverable instance", trial)
		}
		k := len(optCover)

		// Forward: a cover of size k yields a schedule of power n+1+α(k+1).
		ms, ok := r.CoverToSchedule(optCover)
		if !ok {
			t.Fatalf("trial %d: CoverToSchedule failed", trial)
		}
		if got, want := ms.PowerCost(r.Alpha), r.PowerOfCoverSize(k); math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: forward power %v, want %v", trial, got, want)
		}

		// Exact equivalence: optimal power equals n+1+α(k*+1).
		optPower, feasible := exact.PowerMulti(r.Multi, r.Alpha)
		if !feasible {
			t.Fatalf("trial %d: constructed instance infeasible", trial)
		}
		if want := r.PowerOfCoverSize(k); math.Abs(optPower-want) > 1e-9 {
			t.Fatalf("trial %d: optimal power %v, want %v (k=%d)", trial, optPower, want, k)
		}

		// Theorem 6 (gap objective): optimal spans = k+1.
		optSpans, _ := exact.SpansMulti(r.Multi)
		if optSpans != r.SpansOfCoverSize(k) {
			t.Fatalf("trial %d: optimal spans %d, want %d", trial, optSpans, k+1)
		}

		// Pull-back: the forward schedule induces a cover of size ≤ k.
		back := r.ScheduleToCover(ms)
		if !sc.IsCover(back) {
			t.Fatalf("trial %d: pulled-back set is not a cover", trial)
		}
		if len(back) > k {
			t.Fatalf("trial %d: pulled-back cover size %d > %d", trial, len(back), k)
		}
	}
}

func TestBSetCoverPowerUsesAlphaB(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sc := setcover.RandomB(rng, 6, 4, 3)
	r := FromBSetCover(sc)
	if r.Alpha != float64(sc.MaxSetSize()) {
		t.Fatalf("alpha = %v, want B = %d", r.Alpha, sc.MaxSetSize())
	}
	optCover := setcover.Exact(sc)
	optPower, feasible := exact.PowerMulti(r.Multi, r.Alpha)
	if !feasible {
		t.Fatal("constructed instance infeasible")
	}
	if want := r.PowerOfCoverSize(len(optCover)); math.Abs(optPower-want) > 1e-9 {
		t.Fatalf("optimal power %v, want %v", optPower, want)
	}
	if got := r.CoverSizeOfPower(optPower); got != len(optCover) {
		t.Fatalf("CoverSizeOfPower = %d, want %d", got, len(optCover))
	}
}

// TestSetCoverGreedyThroughReduction demonstrates approximation
// preservation: solving the constructed instance by scheduling greedily
// from the greedy cover is within H_n of the optimal power.
func TestSetCoverGreedyThroughReduction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		sc := setcover.Random(rng, 3+rng.Intn(5), 2+rng.Intn(4), 3)
		r := FromSetCover(sc)
		g := setcover.Greedy(sc)
		ms, ok := r.CoverToSchedule(g)
		if !ok {
			t.Fatalf("trial %d: greedy cover rejected", trial)
		}
		opt := setcover.Exact(sc)
		hn := 0.0
		for i := 1; i <= sc.NumElems; i++ {
			hn += 1.0 / float64(i)
		}
		if float64(len(g)) > hn*float64(len(opt))+1e-9 {
			t.Fatalf("trial %d: greedy cover %d beyond H_n bound %v·%d", trial, len(g), hn, len(opt))
		}
		if got, want := ms.PowerCost(r.Alpha), r.PowerOfCoverSize(len(g)); math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: greedy schedule power %v, want %v", trial, got, want)
		}
	}
}

// --- Theorem 7: multi-interval → 2-interval ---

func TestTwoIntervalReduction(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 40; trial++ {
		mi := workload.FeasibleMultiInterval(rng, 2+rng.Intn(4), 3+rng.Intn(2), 1, 12)
		if mi.MaxIntervalsPerJob() <= 2 {
			continue // nothing to reduce; covered by TestTwoIntervalIdentity
		}
		r := ToTwoInterval(mi)
		for _, j := range r.Reduced.Jobs {
			if len(j.Intervals) > 2 {
				t.Fatalf("trial %d: reduced job has %d intervals", trial, len(j.Intervals))
			}
		}
		optOrig, ok := exact.SpansMulti(mi)
		if !ok {
			t.Fatalf("trial %d: original infeasible", trial)
		}
		if mi.N()+r.Reduced.N() <= exact.MaxOracleJobs+mi.N() && r.Reduced.N() <= exact.MaxOracleJobs {
			optRed, ok := exact.SpansMulti(r.Reduced)
			if !ok {
				t.Fatalf("trial %d: reduced infeasible", trial)
			}
			if optRed != optOrig+1 {
				t.Fatalf("trial %d: reduced opt %d, want original %d + 1", trial, optRed, optOrig)
			}
		}
	}
}

func TestTwoIntervalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		mi := workload.FeasibleMultiInterval(rng, 2+rng.Intn(4), 3, 1, 10)
		r := ToTwoInterval(mi)
		orig, ok := feas.SolveMulti(mi)
		if !ok {
			t.Fatalf("trial %d: infeasible", trial)
		}
		lifted, ok := r.FromOriginal(orig)
		if !ok {
			t.Fatalf("trial %d: FromOriginal failed", trial)
		}
		// Lifting adds exactly one span (the full extra block) when any
		// job was transformed.
		transformed := false
		for j := range mi.Jobs {
			if r.CopyOf[j] < 0 {
				transformed = true
			}
		}
		if transformed {
			if got, want := lifted.Spans(), orig.Spans()+1; got != want {
				t.Fatalf("trial %d: lifted spans %d, want %d", trial, got, want)
			}
		}
		back, ok := r.PullBack(lifted)
		if !ok {
			t.Fatalf("trial %d: PullBack failed", trial)
		}
		if err := back.Validate(mi); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if back.Spans() != orig.Spans() {
			t.Fatalf("trial %d: round trip changed spans %d → %d", trial, orig.Spans(), back.Spans())
		}
	}
}

func TestTwoIntervalIdentity(t *testing.T) {
	mi := sched.MultiInstance{Jobs: []sched.MultiJob{
		sched.NewMultiJob(sched.Interval{Lo: 0, Hi: 3}),
		sched.NewMultiJob(sched.Interval{Lo: 0, Hi: 1}, sched.Interval{Lo: 5, Hi: 6}),
	}}
	r := ToTwoInterval(mi)
	if r.Reduced.N() != mi.N() {
		t.Fatalf("identity reduction changed job count: %d", r.Reduced.N())
	}
}

// --- Theorem 8: multi-interval → 3-unit ---

func TestThreeUnitReduction(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 30; trial++ {
		mi := workload.FeasibleUnitMulti(rng, 2+rng.Intn(3), 4+rng.Intn(2), 14)
		r := ToThreeUnit(mi)
		for _, j := range r.Reduced.Jobs {
			if j.NumTimes() > 3 {
				t.Fatalf("trial %d: reduced job has %d times", trial, j.NumTimes())
			}
			if !j.UnitIntervals() {
				t.Fatalf("trial %d: reduced job has non-unit interval", trial)
			}
		}
		optOrig, ok := exact.SpansMulti(mi)
		if !ok {
			t.Fatalf("trial %d: original infeasible", trial)
		}
		if r.Reduced.N() <= exact.MaxOracleJobs {
			optRed, ok2 := exact.SpansMulti(r.Reduced)
			if !ok2 {
				t.Fatalf("trial %d: reduced infeasible", trial)
			}
			if optRed != optOrig+1 {
				t.Fatalf("trial %d: reduced opt %d, want %d", trial, optRed, optOrig+1)
			}
		}
	}
}

func TestThreeUnitRotationAllExclusions(t *testing.T) {
	// One job with 5 allowed times: every possible escape q must produce
	// a valid lifted schedule (the proof's "every combination of k−1
	// jobs fills the extra interval").
	mi := sched.MultiInstance{Jobs: []sched.MultiJob{
		sched.MultiJobFromTimes(0, 2, 4, 6, 8),
	}}
	r := ToThreeUnit(mi)
	for _, tm := range []int{0, 2, 4, 6, 8} {
		lifted, ok := r.FromOriginal(sched.MultiSchedule{Times: []int{tm}})
		if !ok {
			t.Fatalf("escape at %d: lift failed", tm)
		}
		back, ok := r.PullBack(lifted)
		if !ok {
			t.Fatalf("escape at %d: pull-back failed", tm)
		}
		if back.Times[0] != tm {
			t.Fatalf("escape at %d: round trip gave %d", tm, back.Times[0])
		}
	}
}

// --- Theorem 9: two-unit ↔ disjoint-unit ---

func TestTwoUnitToDisjointReversal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tested := 0
	for trial := 0; trial < 200 && tested < 40; trial++ {
		mi := workload.UnitMulti(rng, 2+rng.Intn(5), 1+rng.Intn(2), 10)
		eq, ok := TwoUnitToDisjoint(mi)
		if !ok {
			continue // infeasible draw
		}
		tested++
		// Constructed instance is disjoint-unit.
		seen := map[int]bool{}
		for _, j := range eq.To.Jobs {
			for _, tm := range j.Times() {
				if seen[tm] {
					t.Fatalf("trial %d: constructed jobs overlap at %d", trial, tm)
				}
				seen[tm] = true
			}
		}
		// Optimal gap counts differ by at most one.
		optFrom, ok1 := exact.SpansMulti(eq.From)
		optTo, ok2 := exact.SpansMulti(eq.To)
		if !ok1 || !ok2 {
			t.Fatalf("trial %d: unexpected infeasibility (%v %v)", trial, ok1, ok2)
		}
		gapsFrom, gapsTo := optFrom-1, optTo-1
		if d := gapsFrom - gapsTo; d < -1 || d > 1 {
			t.Fatalf("trial %d: gap optima differ by %d (from %d, to %d)", trial, d, gapsFrom, gapsTo)
		}
	}
	if tested < 10 {
		t.Fatalf("only %d feasible draws; generator too strict", tested)
	}
}

func TestTwoUnitDisjointSolutionMaps(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tested := 0
	for trial := 0; trial < 200 && tested < 30; trial++ {
		mi := workload.UnitMulti(rng, 2+rng.Intn(5), 2, 9)
		eq, ok := TwoUnitToDisjoint(mi)
		if !ok {
			continue
		}
		tested++
		old, ok := feas.SolveMulti(eq.From)
		if !ok {
			t.Fatalf("trial %d: infeasible after construction", trial)
		}
		nw, ok := eq.NewFromOld(old)
		if !ok {
			t.Fatalf("trial %d: NewFromOld failed", trial)
		}
		back, ok := eq.OldFromNew(nw)
		if !ok {
			t.Fatalf("trial %d: OldFromNew failed", trial)
		}
		if err := back.Validate(eq.From); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
	if tested < 10 {
		t.Fatalf("only %d feasible draws", tested)
	}
}

func TestDisjointToTwoUnit(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		mi := workload.DisjointUnit(rng, 2+rng.Intn(3), 2+rng.Intn(2))
		eq, ok := DisjointToTwoUnit(mi)
		if !ok {
			t.Fatalf("trial %d: construction rejected disjoint instance", trial)
		}
		for _, j := range eq.To.Jobs {
			if j.NumTimes() > 2 {
				t.Fatalf("trial %d: constructed job has %d times", trial, j.NumTimes())
			}
		}
		optFrom, ok1 := exact.SpansMulti(eq.From)
		optTo, ok2 := exact.SpansMulti(eq.To)
		if !ok1 || !ok2 {
			t.Fatalf("trial %d: infeasibility (%v %v)", trial, ok1, ok2)
		}
		if d := (optFrom - 1) - (optTo - 1); d < -1 || d > 1 {
			t.Fatalf("trial %d: gap optima differ by %d", trial, d)
		}
	}
}

func TestDisjointToTwoUnitRejectsOverlap(t *testing.T) {
	mi := sched.MultiInstance{Jobs: []sched.MultiJob{
		sched.MultiJobFromTimes(0, 1),
		sched.MultiJobFromTimes(1, 2),
	}}
	if _, ok := DisjointToTwoUnit(mi); ok {
		t.Fatal("accepted overlapping allowed sets")
	}
}

// --- Theorem 10: B-set cover → disjoint-unit ---

func TestBSetCoverDisjointEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 25; trial++ {
		sc := setcover.RandomB(rng, 2+rng.Intn(4), 2+rng.Intn(3), 2)
		r := FromBSetCoverDisjoint(sc)
		opt := setcover.Exact(sc)
		if opt == nil {
			t.Fatalf("trial %d: uncoverable", trial)
		}
		ms, ok := r.CoverToSchedule(opt)
		if !ok {
			t.Fatalf("trial %d: CoverToSchedule failed", trial)
		}
		if ms.Spans() != len(opt) {
			t.Fatalf("trial %d: forward schedule has %d spans, want %d", trial, ms.Spans(), len(opt))
		}
		optSpans, feasible := exact.SpansMulti(r.Multi)
		if !feasible {
			t.Fatalf("trial %d: constructed instance infeasible", trial)
		}
		if optSpans != len(opt) {
			t.Fatalf("trial %d: optimal spans %d, want cover size %d", trial, optSpans, len(opt))
		}
		back := r.ScheduleToCover(ms)
		if !sc.IsCover(back) || len(back) > len(opt) {
			t.Fatalf("trial %d: bad pulled-back cover %v", trial, back)
		}
	}
}

// --- CompressGaps ---

func TestCompressGapsPreservesOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		mi := workload.UnitMulti(rng, 2+rng.Intn(4), 1+rng.Intn(2), 25)
		c, _ := CompressGaps(mi)
		a, ok1 := exact.SpansMulti(mi)
		b, ok2 := exact.SpansMulti(c)
		if ok1 != ok2 {
			t.Fatalf("trial %d: feasibility changed %v→%v", trial, ok1, ok2)
		}
		if ok1 && a != b {
			t.Fatalf("trial %d: compression changed optimum %d→%d", trial, a, b)
		}
	}
}
