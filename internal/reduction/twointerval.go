package reduction

import (
	"sort"

	"repro/internal/sched"
)

// TwoInterval is the Theorem 7 construction: an equivalent 2-interval
// gap-scheduling instance built from an arbitrary multi-interval one.
//
// Every job j with more than two intervals receives an "extra interval"
// of length 2k−1 (k = its interval count), placed after the original
// timeline with all extra intervals back to back. k dummy jobs pin the
// odd positions of the extra interval; k selector jobs r_1..r_k may run
// either in the original interval I_i or anywhere in the extra interval.
// In an optimal solution the extra block is completely busy, exactly one
// selector escapes to its original interval per job, and the whole block
// forms one additional span: OPT₂ = OPT + 1.
type TwoInterval struct {
	Original sched.MultiInstance
	Reduced  sched.MultiInstance
	// Selector[j][i] is the Reduced job index of r_{i+1} for original
	// job j (nil when job j was copied verbatim).
	Selector [][]int
	// CopyOf[j] is the Reduced index of original job j when copied
	// verbatim (−1 otherwise).
	CopyOf []int
	// ExtraOf[j] is job j's extra interval (zero-length when copied).
	ExtraOf []sched.Interval
	// Block is the union of all extra intervals.
	Block sched.Interval
}

// ToTwoInterval builds the Theorem 7 reduction.
func ToTwoInterval(mi sched.MultiInstance) TwoInterval {
	r := TwoInterval{
		Original: mi,
		Selector: make([][]int, mi.N()),
		CopyOf:   make([]int, mi.N()),
		ExtraOf:  make([]sched.Interval, mi.N()),
	}
	// Place the extra block after the original timeline with one idle
	// unit of separation (it forms its own span).
	cursor := 0
	if ts := mi.AllTimes(); len(ts) > 0 {
		cursor = ts[len(ts)-1] + 2
	}
	blockStart := cursor
	var jobs []sched.MultiJob
	for j, job := range mi.Jobs {
		r.CopyOf[j] = -1
		if len(job.Intervals) <= 2 {
			r.CopyOf[j] = len(jobs)
			jobs = append(jobs, job)
			continue
		}
		k := len(job.Intervals)
		extra := sched.Interval{Lo: cursor, Hi: cursor + 2*k - 2}
		r.ExtraOf[j] = extra
		cursor = extra.Hi + 1
		// Dummies pin positions 1, 3, …, 2k−1 (1-indexed): offsets 0, 2, ….
		for d := 0; d < k; d++ {
			jobs = append(jobs, sched.NewMultiJob(sched.Interval{Lo: extra.Lo + 2*d, Hi: extra.Lo + 2*d}))
		}
		// Selectors r_i: original interval I_i or the whole extra interval.
		r.Selector[j] = make([]int, k)
		for i, iv := range job.Intervals {
			r.Selector[j][i] = len(jobs)
			jobs = append(jobs, sched.NewMultiJob(iv, extra))
		}
	}
	r.Block = sched.Interval{Lo: blockStart, Hi: cursor - 1}
	r.Reduced = sched.MultiInstance{Jobs: jobs}
	return r
}

// PullBack converts a schedule of the reduced instance into a schedule
// of the original one. It first normalizes the schedule so that every
// extra interval is completely busy (the paper's iterative filling
// argument), then reads off, per transformed job, the unique selector
// executing outside the extra block. Returns false only on malformed
// input.
func (r TwoInterval) PullBack(ms sched.MultiSchedule) (sched.MultiSchedule, bool) {
	if len(ms.Times) != r.Reduced.N() {
		return sched.MultiSchedule{}, false
	}
	norm := append([]int{}, ms.Times...)
	r.normalize(norm)
	out := sched.MultiSchedule{Times: make([]int, r.Original.N())}
	for j := range r.Original.Jobs {
		if c := r.CopyOf[j]; c >= 0 {
			out.Times[j] = norm[c]
			continue
		}
		found := false
		for _, sel := range r.Selector[j] {
			if !r.ExtraOf[j].Contains(norm[sel]) {
				if found {
					return sched.MultiSchedule{}, false // two escaped selectors
				}
				out.Times[j] = norm[sel]
				found = true
			}
		}
		if !found {
			return sched.MultiSchedule{}, false
		}
	}
	if err := out.Validate(r.Original); err != nil {
		return sched.MultiSchedule{}, false
	}
	return out, true
}

// normalize moves selectors into free extra-interval units until every
// extra interval is full, as in the proof: a free unit in an extra
// interval always admits some selector of that job, and moving it there
// never increases the span count.
func (r TwoInterval) normalize(times []int) {
	occupied := make(map[int]int, len(times))
	for i, t := range times {
		occupied[t] = i
	}
	for j := range r.Original.Jobs {
		extra := r.ExtraOf[j]
		if r.CopyOf[j] >= 0 {
			continue
		}
		for {
			free := -1
			for t := extra.Lo; t <= extra.Hi; t++ {
				if _, busy := occupied[t]; !busy {
					free = t
					break
				}
			}
			if free < 0 {
				break
			}
			// Exactly the selectors of job j may run at free (dummies are
			// pinned); at least two currently run outside the extra
			// interval, move one in.
			moved := false
			for _, sel := range r.Selector[j] {
				if !extra.Contains(times[sel]) && r.Reduced.Jobs[sel].Contains(free) {
					delete(occupied, times[sel])
					times[sel] = free
					occupied[free] = sel
					moved = true
					break
				}
			}
			if !moved {
				break // already exactly one escaped selector; unit truly free
			}
		}
	}
}

// FromOriginal converts a schedule of the original instance into one of
// the reduced instance with the extra block fully busy: the selector of
// the interval containing the original time escapes, the others fill the
// even offsets by the rotation of the proof.
func (r TwoInterval) FromOriginal(ms sched.MultiSchedule) (sched.MultiSchedule, bool) {
	if err := ms.Validate(r.Original); err != nil {
		return sched.MultiSchedule{}, false
	}
	out := sched.MultiSchedule{Times: make([]int, r.Reduced.N())}
	// Dummies are forced; fill them first by scanning all reduced jobs
	// with a single unit-time choice inside an extra interval.
	for j, job := range r.Original.Jobs {
		if c := r.CopyOf[j]; c >= 0 {
			out.Times[c] = ms.Times[j]
			continue
		}
		extra := r.ExtraOf[j]
		k := len(job.Intervals)
		// Dummy jobs immediately precede the selectors in construction
		// order: reduced indices Selector[j][0]−k … Selector[j][0]−1.
		firstDummy := r.Selector[j][0] - k
		for d := 0; d < k; d++ {
			out.Times[firstDummy+d] = extra.Lo + 2*d
		}
		// The selector whose interval contains the original time escapes;
		// the remaining k−1 selectors take the k−1 odd offsets in order.
		escape := -1
		for i, iv := range job.Intervals {
			if iv.Contains(ms.Times[j]) {
				escape = i
				break
			}
		}
		if escape < 0 {
			return sched.MultiSchedule{}, false
		}
		out.Times[r.Selector[j][escape]] = ms.Times[j]
		odd := extra.Lo + 1
		for i := range job.Intervals {
			if i == escape {
				continue
			}
			out.Times[r.Selector[j][i]] = odd
			odd += 2
		}
	}
	if err := out.Validate(r.Reduced); err != nil {
		return sched.MultiSchedule{}, false
	}
	return out, true
}

// sortedCopy is a test helper.
func sortedCopy(xs []int) []int {
	out := append([]int{}, xs...)
	sort.Ints(out)
	return out
}
