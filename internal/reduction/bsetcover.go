package reduction

import (
	"sort"

	"repro/internal/sched"
	"repro/internal/setcover"
)

// BSetCoverDisjoint is the Theorem 10 construction: a disjoint-unit
// gap-scheduling instance built from a B-set-cover instance so that the
// optimal span count equals the optimal cover size.
//
// For every set c_i and every non-empty subset A ⊆ c_i there is an
// interval of length |A| (all intervals pairwise non-adjacent); element
// e may run at the rank-of-e position of every interval whose subset
// contains it. Covering with k sets and assignment A_1..A_k fills k
// intervals completely — k spans; conversely every schedule's used
// intervals induce a cover of at most the span count.
type BSetCoverDisjoint struct {
	Cover setcover.Instance
	Multi sched.MultiInstance
	// Subsets[x] describes the x-th interval: its set index, its subset
	// (sorted element ids) and its interval.
	Subsets []SubsetInterval
}

// SubsetInterval is one (set, subset) interval of the construction.
type SubsetInterval struct {
	Set      int
	Elements []int
	Interval sched.Interval
}

// MaxBSetCoverBits bounds 2^B blowup of the construction.
const MaxBSetCoverBits = 6

// FromBSetCoverDisjoint builds the Theorem 10 instance. Panics when a
// set exceeds MaxBSetCoverBits elements (the construction is 2^B-sized;
// B is a constant in the theorem).
func FromBSetCoverDisjoint(sc setcover.Instance) BSetCoverDisjoint {
	r := BSetCoverDisjoint{Cover: sc}
	cursor := 0
	timesOf := make([][]int, sc.NumElems)
	for i, s := range sc.Sets {
		if len(s) > MaxBSetCoverBits {
			panic("reduction: set too large for the 2^B Theorem 10 construction")
		}
		sorted := append([]int{}, s...)
		sort.Ints(sorted)
		for mask := 1; mask < 1<<uint(len(sorted)); mask++ {
			var elems []int
			for b := 0; b < len(sorted); b++ {
				if mask&(1<<uint(b)) != 0 {
					elems = append(elems, sorted[b])
				}
			}
			iv := sched.Interval{Lo: cursor, Hi: cursor + len(elems) - 1}
			cursor = iv.Hi + 2 // one idle unit: intervals never merge spans
			r.Subsets = append(r.Subsets, SubsetInterval{Set: i, Elements: elems, Interval: iv})
			for rank, e := range elems {
				timesOf[e] = append(timesOf[e], iv.Lo+rank)
			}
		}
	}
	jobs := make([]sched.MultiJob, sc.NumElems)
	for e, ts := range timesOf {
		jobs[e] = sched.MultiJobFromTimes(ts...)
	}
	r.Multi = sched.MultiInstance{Jobs: jobs}
	return r
}

// CoverToSchedule converts a cover into a schedule with exactly
// len(assignment-used-sets) spans: each element is assigned to one
// chosen covering set, and each used set's assigned elements run in the
// interval of exactly that subset.
func (r BSetCoverDisjoint) CoverToSchedule(chosen []int) (sched.MultiSchedule, bool) {
	if !r.Cover.IsCover(chosen) {
		return sched.MultiSchedule{}, false
	}
	n := r.Cover.NumElems
	assigned := make([]int, n)
	for e := range assigned {
		assigned[e] = -1
	}
	for _, i := range chosen {
		for _, e := range r.Cover.Sets[i] {
			if assigned[e] < 0 {
				assigned[e] = i
			}
		}
	}
	elemsOf := make(map[int][]int)
	for e, i := range assigned {
		elemsOf[i] = append(elemsOf[i], e)
	}
	out := sched.MultiSchedule{Times: make([]int, n)}
	for i, elems := range elemsOf {
		sort.Ints(elems)
		si := r.findSubset(i, elems)
		if si < 0 {
			return sched.MultiSchedule{}, false
		}
		for rank, e := range elems {
			out.Times[e] = r.Subsets[si].Interval.Lo + rank
		}
	}
	if err := out.Validate(r.Multi); err != nil {
		return sched.MultiSchedule{}, false
	}
	return out, true
}

func (r BSetCoverDisjoint) findSubset(set int, elems []int) int {
	for si, s := range r.Subsets {
		if s.Set != set || len(s.Elements) != len(elems) {
			continue
		}
		same := true
		for i := range elems {
			if s.Elements[i] != elems[i] {
				same = false
				break
			}
		}
		if same {
			return si
		}
	}
	return -1
}

// ScheduleToCover extracts the cover induced by a schedule: the sets
// whose intervals execute at least one job. Its size is at most the
// schedule's span count.
func (r BSetCoverDisjoint) ScheduleToCover(ms sched.MultiSchedule) []int {
	used := make(map[int]bool)
	for e := 0; e < r.Cover.NumElems; e++ {
		t := ms.Times[e]
		for _, s := range r.Subsets {
			if s.Interval.Contains(t) {
				used[s.Set] = true
				break
			}
		}
	}
	out := make([]int, 0, len(used))
	for i := range used {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}
