// Package reduction implements the paper's hardness reductions (§4–§5)
// constructively: each theorem's instance map, its solution pull-back,
// and the cost equivalence it proves. Hardness theorems thereby become
// testable statements — e.g. "the constructed power instance has optimum
// n + kα iff the set-cover instance has optimum k" is asserted against
// exact solvers on small inputs in tests and experiment E6–E8.
package reduction

import (
	"fmt"
	"sort"

	"repro/internal/sched"
	"repro/internal/setcover"
)

// SetCoverPower is the Theorem 4/5 construction: a multi-interval
// power-minimization instance built from a set-cover instance.
//
// For each set c_i an interval I_i of length |c_i|; intervals pairwise
// separated by more than n³ so that bridging between them is never
// worthwhile; element e becomes a job executable anywhere in each I_i
// with e ∈ c_i; one extra unit-length interval with a private job forces
// at least one wake-up. Theorem 4 sets Alpha = n; Theorem 5 (B-set
// cover) sets Alpha = B.
type SetCoverPower struct {
	Cover setcover.Instance
	Multi sched.MultiInstance
	Alpha float64
	// IntervalOf[i] is the interval of set i; Extra is the private
	// interval of the final job.
	IntervalOf []sched.Interval
	Extra      sched.Interval
}

// FromSetCover builds the Theorem 4 instance (alpha = n).
func FromSetCover(sc setcover.Instance) SetCoverPower {
	return fromSetCover(sc, float64(sc.NumElems))
}

// FromBSetCover builds the Theorem 5 instance (alpha = B, the maximum
// set size).
func FromBSetCover(sc setcover.Instance) SetCoverPower {
	return fromSetCover(sc, float64(sc.MaxSetSize()))
}

func fromSetCover(sc setcover.Instance, alpha float64) SetCoverPower {
	n := sc.NumElems
	spacing := n*n*n + 1
	if spacing < 8 {
		spacing = 8
	}
	r := SetCoverPower{Cover: sc, Alpha: alpha, IntervalOf: make([]sched.Interval, len(sc.Sets))}
	cursor := 0
	for i, s := range sc.Sets {
		r.IntervalOf[i] = sched.Interval{Lo: cursor, Hi: cursor + len(s) - 1}
		cursor += len(s) + spacing
	}
	r.Extra = sched.Interval{Lo: cursor, Hi: cursor}

	jobs := make([]sched.MultiJob, n+1)
	for e := 0; e < n; e++ {
		var ivs []sched.Interval
		for i, s := range sc.Sets {
			for _, x := range s {
				if x == e {
					ivs = append(ivs, r.IntervalOf[i])
					break
				}
			}
		}
		jobs[e] = sched.NewMultiJob(ivs...)
	}
	jobs[n] = sched.NewMultiJob(r.Extra)
	r.Multi = sched.MultiInstance{Jobs: jobs}
	return r
}

// CoverToSchedule converts a cover into a feasible schedule: each
// element is assigned to one chosen covering set and the assigned
// elements are packed consecutively from the left of that set's
// interval. Returns false if chosen is not a cover.
func (r SetCoverPower) CoverToSchedule(chosen []int) (sched.MultiSchedule, bool) {
	if !r.Cover.IsCover(chosen) {
		return sched.MultiSchedule{}, false
	}
	n := r.Cover.NumElems
	assigned := make([]int, n) // element → chosen set
	for e := range assigned {
		assigned[e] = -1
	}
	for _, i := range chosen {
		for _, e := range r.Cover.Sets[i] {
			if assigned[e] < 0 {
				assigned[e] = i
			}
		}
	}
	next := make(map[int]int) // set → next free offset in its interval
	out := sched.MultiSchedule{Times: make([]int, n+1)}
	for e := 0; e < n; e++ {
		i := assigned[e]
		out.Times[e] = r.IntervalOf[i].Lo + next[i]
		next[i]++
	}
	out.Times[n] = r.Extra.Lo
	if err := out.Validate(r.Multi); err != nil {
		return sched.MultiSchedule{}, false
	}
	return out, true
}

// ScheduleToCover extracts the cover induced by a schedule: every set
// whose interval executes at least one job.
func (r SetCoverPower) ScheduleToCover(ms sched.MultiSchedule) []int {
	used := make(map[int]bool)
	for e := 0; e < r.Cover.NumElems; e++ {
		t := ms.Times[e]
		for i, iv := range r.IntervalOf {
			if iv.Contains(t) {
				used[i] = true
				break
			}
		}
	}
	out := make([]int, 0, len(used))
	for i := range used {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// PowerOfCoverSize returns the power consumption that a cover of size k
// induces under this construction's exact accounting: n+1 busy units and
// k+1 wake-ups (the chosen intervals plus the extra interval; the > n³
// separation makes bridging more expensive than alpha).
func (r SetCoverPower) PowerOfCoverSize(k int) float64 {
	return float64(r.Cover.NumElems+1) + r.Alpha*float64(k+1)
}

// SpansOfCoverSize returns the gap-objective value (Theorem 6): spans
// equal cover size + 1.
func (r SetCoverPower) SpansOfCoverSize(k int) int { return k + 1 }

// CoverSizeOfPower inverts PowerOfCoverSize, returning the cover size a
// schedule of the given power certifies.
func (r SetCoverPower) CoverSizeOfPower(power float64) int {
	k := (power-float64(r.Cover.NumElems+1))/r.Alpha - 1
	return int(k + 0.5)
}

func (r SetCoverPower) String() string {
	return fmt.Sprintf("SetCoverPower{n=%d sets=%d α=%v}", r.Cover.NumElems, len(r.Cover.Sets), r.Alpha)
}
