// Package setpacking implements maximum set packing: given a collection
// of sets over a base universe, find a maximum subcollection of pairwise
// disjoint sets. It provides the greedy maximal packing, the bounded
// local-search improvement in the style of Hurkens–Schrijver [HS89]
// (replace s chosen sets by s+1 disjoint candidates), and an exact
// branch-and-bound solver for small collections.
//
// The (k+1)-set-packing instances built by the Theorem 3 approximation
// (internal/multiinterval) are solved with this package; [HS89] shows
// local search with unbounded exchange size approaches a 2/(k+1)·OPT
// guarantee for (k+1)-set packing, and the experiment harness measures
// how close small exchange depths get in practice.
package setpacking

import (
	"sort"
)

// Instance is a set-packing instance over the universe {0..Universe−1}.
type Instance struct {
	Universe int
	Sets     [][]int // element ids; duplicates within a set are ignored
}

const wordBits = 64

// bitset is a fixed-size bitmask over the universe.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+wordBits-1)/wordBits) }

func (b bitset) set(i int) { b[i/wordBits] |= 1 << uint(i%wordBits) }
func (b bitset) intersects(o bitset) bool {
	for i := range b {
		if b[i]&o[i] != 0 {
			return true
		}
	}
	return false
}

func (b bitset) orInto(o bitset) {
	for i := range b {
		b[i] |= o[i]
	}
}

func (b bitset) clone() bitset {
	out := make(bitset, len(b))
	copy(out, b)
	return out
}

// masks precomputes a bitmask per set.
func (in Instance) masks() []bitset {
	ms := make([]bitset, len(in.Sets))
	for i, s := range in.Sets {
		m := newBitset(in.Universe)
		for _, e := range s {
			m.set(e)
		}
		ms[i] = m
	}
	return ms
}

// Greedy returns a maximal packing (indices into Sets), preferring
// smaller sets first (they block fewer elements), ties by index.
func Greedy(in Instance) []int {
	order := make([]int, len(in.Sets))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		x, y := order[a], order[b]
		if len(in.Sets[x]) != len(in.Sets[y]) {
			return len(in.Sets[x]) < len(in.Sets[y])
		}
		return x < y
	})
	ms := in.masks()
	used := newBitset(in.Universe)
	var chosen []int
	for _, i := range order {
		if !ms[i].intersects(used) {
			chosen = append(chosen, i)
			used.orInto(ms[i])
		}
	}
	sort.Ints(chosen)
	return chosen
}

// LocalSearch improves a packing by bounded exchanges: repeatedly
// replace s chosen sets (s ≤ depth) with s+1 pairwise-disjoint candidate
// sets compatible with the rest, until no such improvement exists.
// depth 0 or negative defaults to 1. The result is always maximal.
func LocalSearch(in Instance, depth int) []int {
	if depth <= 0 {
		depth = 1
	}
	ms := in.masks()
	chosen := Greedy(in)
	for {
		improved := false
		// Try to add a set outright (maximality may have been broken by a
		// previous exchange).
		used := newBitset(in.Universe)
		inPacking := make([]bool, len(in.Sets))
		for _, i := range chosen {
			used.orInto(ms[i])
			inPacking[i] = true
		}
		for i := range in.Sets {
			if !inPacking[i] && !ms[i].intersects(used) {
				chosen = append(chosen, i)
				used.orInto(ms[i])
				inPacking[i] = true
				improved = true
			}
		}
		if improved {
			continue
		}
		if depth >= 1 && exchange1(in, ms, &chosen) {
			continue
		}
		if depth >= 2 && exchange2(in, ms, &chosen) {
			continue
		}
		break
	}
	sort.Ints(chosen)
	return chosen
}

// exchange1 removes one chosen set and inserts two disjoint candidates.
func exchange1(in Instance, ms []bitset, chosen *[]int) bool {
	for ci, removed := range *chosen {
		kept := newBitset(in.Universe)
		for cj, s := range *chosen {
			if cj != ci {
				kept.orInto(ms[s])
			}
		}
		// Candidates disjoint from kept sets. Since the packing is
		// maximal, any improvement must touch the removed set, but we
		// keep the filter simple and correct.
		var cands []int
		for i := range in.Sets {
			if i != removed && !ms[i].intersects(kept) {
				cands = append(cands, i)
			}
		}
		for ai := 0; ai < len(cands); ai++ {
			for bi := ai + 1; bi < len(cands); bi++ {
				a, b := cands[ai], cands[bi]
				if !ms[a].intersects(ms[b]) {
					out := append([]int{}, (*chosen)[:ci]...)
					out = append(out, (*chosen)[ci+1:]...)
					out = append(out, a, b)
					*chosen = out
					return true
				}
			}
		}
	}
	return false
}

// exchange2 removes two chosen sets and inserts three disjoint
// candidates.
func exchange2(in Instance, ms []bitset, chosen *[]int) bool {
	n := len(*chosen)
	for ci := 0; ci < n; ci++ {
		for cj := ci + 1; cj < n; cj++ {
			kept := newBitset(in.Universe)
			for ck, s := range *chosen {
				if ck != ci && ck != cj {
					kept.orInto(ms[s])
				}
			}
			var cands []int
			for i := range in.Sets {
				if i != (*chosen)[ci] && i != (*chosen)[cj] && !ms[i].intersects(kept) {
					cands = append(cands, i)
				}
			}
			if len(cands) < 3 {
				continue
			}
			for ai := 0; ai < len(cands); ai++ {
				for bi := ai + 1; bi < len(cands); bi++ {
					a, b := cands[ai], cands[bi]
					if ms[a].intersects(ms[b]) {
						continue
					}
					ab := ms[a].clone()
					ab.orInto(ms[b])
					for di := bi + 1; di < len(cands); di++ {
						d := cands[di]
						if ms[d].intersects(ab) {
							continue
						}
						out := []int{}
						for ck, s := range *chosen {
							if ck != ci && ck != cj {
								out = append(out, s)
							}
						}
						out = append(out, a, b, d)
						*chosen = out
						return true
					}
				}
			}
		}
	}
	return false
}

// MaxExactSets bounds the collection size accepted by Exact.
const MaxExactSets = 24

// Exact computes a maximum packing by branch and bound. It panics when
// the collection exceeds MaxExactSets.
func Exact(in Instance) []int {
	if len(in.Sets) > MaxExactSets {
		panic("setpacking: collection too large for exact solver")
	}
	ms := in.masks()
	var best []int
	var cur []int
	used := newBitset(in.Universe)

	var rec func(i int)
	rec = func(i int) {
		if len(cur)+(len(in.Sets)-i) <= len(best) {
			return // even taking everything remaining cannot win
		}
		if i == len(in.Sets) {
			if len(cur) > len(best) {
				best = append([]int{}, cur...)
			}
			return
		}
		if !ms[i].intersects(used) {
			used.orInto(ms[i])
			cur = append(cur, i)
			rec(i + 1)
			cur = cur[:len(cur)-1]
			// Undo: recompute is wasteful; XOR out instead.
			for w := range used {
				used[w] &^= ms[i][w]
			}
		}
		rec(i + 1)
	}
	rec(0)
	sort.Ints(best)
	return best
}

// IsPacking validates that the chosen indices form a pairwise-disjoint
// subcollection.
func IsPacking(in Instance, chosen []int) bool {
	ms := in.masks()
	used := newBitset(in.Universe)
	for _, i := range chosen {
		if i < 0 || i >= len(in.Sets) {
			return false
		}
		if ms[i].intersects(used) {
			return false
		}
		used.orInto(ms[i])
	}
	return true
}
