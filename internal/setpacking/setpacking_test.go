package setpacking

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomInstance(rng *rand.Rand, universe, nSets, setSize int) Instance {
	in := Instance{Universe: universe}
	for i := 0; i < nSets; i++ {
		seen := map[int]bool{}
		var s []int
		for len(s) < setSize {
			e := rng.Intn(universe)
			if !seen[e] {
				seen[e] = true
				s = append(s, e)
			}
		}
		in.Sets = append(in.Sets, s)
	}
	return in
}

func TestGreedyIsPacking(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		in := randomInstance(rng, 6+rng.Intn(20), 1+rng.Intn(15), 2+rng.Intn(3))
		if !IsPacking(in, Greedy(in)) {
			t.Fatalf("trial %d: greedy result is not a packing", trial)
		}
	}
}

func TestGreedyIsMaximal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		in := randomInstance(rng, 6+rng.Intn(20), 1+rng.Intn(15), 2+rng.Intn(3))
		chosen := Greedy(in)
		used := map[int]bool{}
		inPack := map[int]bool{}
		for _, i := range chosen {
			inPack[i] = true
			for _, e := range in.Sets[i] {
				used[e] = true
			}
		}
		for i, s := range in.Sets {
			if inPack[i] {
				continue
			}
			free := true
			for _, e := range s {
				if used[e] {
					free = false
					break
				}
			}
			if free {
				t.Fatalf("trial %d: set %d could be added to greedy packing", trial, i)
			}
		}
	}
}

func TestLocalSearchAtLeastGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		in := randomInstance(rng, 6+rng.Intn(16), 1+rng.Intn(14), 3)
		g := Greedy(in)
		for _, depth := range []int{1, 2} {
			ls := LocalSearch(in, depth)
			if !IsPacking(in, ls) {
				t.Fatalf("trial %d depth %d: not a packing", trial, depth)
			}
			if len(ls) < len(g) {
				t.Fatalf("trial %d depth %d: local search %d < greedy %d", trial, depth, len(ls), len(g))
			}
		}
	}
}

func TestExactOptimal(t *testing.T) {
	in := Instance{Universe: 6, Sets: [][]int{
		{0, 1, 2}, // blocks the next two
		{0, 3}, {1, 4}, {2, 5},
	}}
	if got := Exact(in); len(got) != 3 {
		t.Fatalf("exact packing size %d, want 3 (%v)", len(got), got)
	}
}

// TestLocalSearchVsExact measures the Hurkens–Schrijver-style guarantee:
// for 3-element sets, depth-2 local search must reach at least half the
// optimum (the proven asymptotic bound is 2/(k+1) = 1/2 for k+1 = 3... 4;
// empirically it is nearly always optimal).
func TestLocalSearchVsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 60; trial++ {
		in := randomInstance(rng, 8+rng.Intn(10), 4+rng.Intn(10), 3)
		opt := len(Exact(in))
		ls := len(LocalSearch(in, 2))
		if 2*ls < opt {
			t.Fatalf("trial %d: local search %d below half of optimum %d", trial, ls, opt)
		}
	}
}

func TestExactIsPackingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randomInstance(r, 5+r.Intn(10), 1+r.Intn(10), 2+r.Intn(2))
		ex := Exact(in)
		if !IsPacking(in, ex) {
			return false
		}
		// Exact dominates both heuristics.
		return len(ex) >= len(Greedy(in)) && len(ex) >= len(LocalSearch(in, 2))
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestIsPackingRejects(t *testing.T) {
	in := Instance{Universe: 3, Sets: [][]int{{0, 1}, {1, 2}}}
	if IsPacking(in, []int{0, 1}) {
		t.Fatal("overlapping sets accepted")
	}
	if IsPacking(in, []int{0, 5}) {
		t.Fatal("out-of-range index accepted")
	}
	if !IsPacking(in, []int{1}) {
		t.Fatal("singleton rejected")
	}
}
