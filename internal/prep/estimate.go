package prep

// A-priori DP size estimation for the facade's adaptive mode: ModeAuto
// decides per fragment whether the exact engine is affordable, before
// running it, by comparing this estimate against Solver.StateBudget.

import (
	"math"
	"sort"

	"repro/internal/sched"
)

// StateEstimate returns a deterministic a-priori size estimate of the
// exact DP on one instance (typically a fragment after Decompose): the
// engine's index-space shape G²·(n+1)·(p+1)³, where G is the size of
// the candidate execution grid (the union of the ±n neighbourhoods of
// releases and deadlines, clipped to the horizon — exactly the grid
// internal/core builds) and p is capped at n like the engine caps it.
//
// This is an upper-bound-flavoured signal, not a prediction of visited
// states — the DP touches a vanishingly small fraction of its index
// space — but it is monotone in fragment size and stable across runs,
// which is what an admission decision needs: two Solvers with the same
// budget always classify a fragment the same way. Saturates at MaxInt
// instead of overflowing on huge horizons. The empty instance
// estimates 0.
func StateEstimate(in sched.Instance) int {
	n := len(in.Jobs)
	if n == 0 {
		return 0
	}
	p := in.Procs
	if p > n {
		p = n
	}
	g := GridSize(in)
	est := g
	for _, dim := range [...]int{g, n + 1, p + 1, p + 1, p + 1} {
		est = satMul(est, dim)
	}
	return est
}

// GridSize computes the size of the exact backends' candidate
// execution grid without materialising it: the measure of the union of
// the clipped anchor neighbourhoods [a−n, a+n] over all releases and
// deadlines a — exactly the grid internal/core and internal/poly
// build. Exported so backend-specific admission estimates (see
// internal/poly.Estimate) price the same grid StateEstimate does.
func GridSize(in sched.Instance) int {
	n := len(in.Jobs)
	lo, hi := in.TimeHorizon()
	type iv struct{ lo, hi int }
	ivs := make([]iv, 0, 2*n)
	add := func(center int) {
		from, to := center-n, center+n
		if from < lo {
			from = lo
		}
		if to > hi {
			to = hi
		}
		if from <= to {
			ivs = append(ivs, iv{from, to})
		}
	}
	for _, j := range in.Jobs {
		add(j.Release)
		add(j.Deadline)
	}
	sort.Slice(ivs, func(x, y int) bool { return ivs[x].lo < ivs[y].lo })
	size, end := 0, math.MinInt
	for _, v := range ivs {
		if v.lo > end {
			size += v.hi - v.lo + 1
			end = v.hi
		} else if v.hi > end {
			size += v.hi - end
			end = v.hi
		}
	}
	return size
}

// satMul multiplies non-negative ints, saturating at MaxInt.
func satMul(a, b int) int {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxInt/b {
		return math.MaxInt
	}
	return a * b
}
