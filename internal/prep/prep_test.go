package prep_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/prep"
	"repro/internal/sched"
	"repro/internal/workload"
)

// solveSplit decomposes, solves every fragment with the given solver,
// and reassembles, returning the summed cost and assembled schedule.
func solveSplit(t *testing.T, pl *prep.Plan, solve func(sched.Instance) (float64, sched.Schedule, error)) (float64, sched.Schedule) {
	t.Helper()
	total := 0.0
	parts := make([]sched.Schedule, len(pl.Subs))
	for i, sub := range pl.Subs {
		cost, s, err := solve(sub.Instance)
		if err != nil {
			t.Fatalf("fragment %d (%v): %v", i, sub.Instance.Jobs, err)
		}
		total += cost
		parts[i] = s
	}
	out, err := pl.Assemble(parts)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return total, out
}

func TestDecomposeStructure(t *testing.T) {
	in := sched.NewInstance([]sched.Job{
		{Release: 100, Deadline: 102}, // fragment 0
		{Release: 0, Deadline: 1},     // fragment... sorted by release
		{Release: 101, Deadline: 105},
		{Release: 3, Deadline: 4},
	})
	pl := prep.ForGaps(in)
	if len(pl.Subs) != 3 {
		t.Fatalf("got %d fragments, want 3: %+v", len(pl.Subs), pl.Subs)
	}
	// Fragment boundaries: {job 1}, {job 3}, {jobs 0, 2}.
	wantJobs := [][]int{{1}, {3}, {0, 2}}
	for i, sub := range pl.Subs {
		if len(sub.Jobs) != len(wantJobs[i]) {
			t.Fatalf("fragment %d jobs %v, want %v", i, sub.Jobs, wantJobs[i])
		}
		for q, j := range sub.Jobs {
			if j != wantJobs[i][q] {
				t.Fatalf("fragment %d jobs %v, want %v", i, sub.Jobs, wantJobs[i])
			}
		}
		// Translation: earliest release is 0, windows preserved.
		lo := sub.Instance.Jobs[0].Release
		for q, job := range sub.Instance.Jobs {
			if job.Release < lo {
				lo = job.Release
			}
			orig := in.Jobs[sub.Jobs[q]]
			if job.Deadline-job.Release != orig.Deadline-orig.Release {
				t.Fatalf("fragment %d job %d window resized: %v from %v", i, q, job, orig)
			}
			if job.Release+sub.Offset != orig.Release {
				t.Fatalf("fragment %d job %d offset wrong: %v + %d != %v", i, q, job, sub.Offset, orig)
			}
		}
		if lo != 0 {
			t.Fatalf("fragment %d not zero-based: earliest release %d", i, lo)
		}
	}
}

func TestPowerSplitRespectsAlpha(t *testing.T) {
	// Two clusters 4 idle units apart: α ≤ 4 splits, α > 4 must not.
	in := sched.NewInstance([]sched.Job{
		{Release: 0, Deadline: 1}, {Release: 6, Deadline: 7},
	})
	if pl := prep.ForPower(in, 4); len(pl.Subs) != 2 {
		t.Fatalf("α=4 ≤ idle width 4: want split, got %d fragments", len(pl.Subs))
	}
	if pl := prep.ForPower(in, 4.5); len(pl.Subs) != 1 {
		t.Fatalf("α=4.5 > idle width 4: want no split, got fragments")
	}
	if pl := prep.ForPower(in, 0); len(pl.Subs) != 2 {
		t.Fatalf("α=0: every idle run splits, got %d fragments", len(pl.Subs))
	}
}

func TestDecomposeEmptyAndSingle(t *testing.T) {
	if pl := prep.ForGaps(sched.NewInstance(nil)); len(pl.Subs) != 0 {
		t.Fatalf("empty instance produced fragments")
	}
	s, err := prep.ForGaps(sched.NewInstance(nil)).Assemble(nil)
	if err != nil || len(s.Slots) != 0 {
		t.Fatalf("empty assemble: %v %v", s, err)
	}
	pl := prep.ForGaps(sched.NewInstance([]sched.Job{{Release: 7, Deadline: 9}}))
	if len(pl.Subs) != 1 || pl.Subs[0].Offset != 7 {
		t.Fatalf("single job plan wrong: %+v", pl.Subs)
	}
}

// TestSplitGapsMatchesDirect is the prep-layer invariant:
// decompose-then-concatenate equals direct solve in cost, and the
// assembled schedule is valid and attains that cost.
func TestSplitGapsMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(8)
		p := 1 + rng.Intn(3)
		// Sparse horizon so forced-idle splits actually happen, plus a
		// large absolute offset so translation is exercised.
		in := workload.FeasibleOneInterval(rng, n, p, 30, 3)
		off := rng.Intn(1000000)
		for i := range in.Jobs {
			in.Jobs[i].Release += off
			in.Jobs[i].Deadline += off
		}
		direct, err := core.SolveGaps(in)
		if err != nil {
			t.Fatalf("trial %d: direct solve: %v", trial, err)
		}
		pl := prep.ForGaps(in)
		total, s := solveSplit(t, pl, func(sub sched.Instance) (float64, sched.Schedule, error) {
			res, err := core.SolveGaps(sub)
			return float64(res.Spans), res.Schedule, err
		})
		if int(total) != direct.Spans {
			t.Fatalf("trial %d: split spans %v != direct %d (jobs %v)", trial, total, direct.Spans, in.Jobs)
		}
		if err := s.Validate(in); err != nil {
			t.Fatalf("trial %d: assembled schedule invalid: %v", trial, err)
		}
		if got := s.Spans(); got != direct.Spans {
			t.Fatalf("trial %d: assembled schedule has %d spans, want %d", trial, got, direct.Spans)
		}
	}
}

func TestSplitPowerMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	alphas := []float64{0, 0.5, 1, 2.5, 6}
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(7)
		p := 1 + rng.Intn(2)
		alpha := alphas[rng.Intn(len(alphas))]
		in := workload.FeasibleOneInterval(rng, n, p, 24, 3)
		direct, err := core.SolvePower(in, alpha)
		if err != nil {
			t.Fatalf("trial %d: direct solve: %v", trial, err)
		}
		pl := prep.ForPower(in, alpha)
		total, s := solveSplit(t, pl, func(sub sched.Instance) (float64, sched.Schedule, error) {
			res, err := core.SolvePower(sub, alpha)
			return res.Power, res.Schedule, err
		})
		if math.Abs(total-direct.Power) > 1e-9 {
			t.Fatalf("trial %d: split power %v != direct %v (α=%v jobs %v)", trial, total, direct.Power, alpha, in.Jobs)
		}
		if err := s.Validate(in); err != nil {
			t.Fatalf("trial %d: assembled schedule invalid: %v", trial, err)
		}
		if got := s.PowerCost(alpha); math.Abs(got-direct.Power) > 1e-9 {
			t.Fatalf("trial %d: assembled schedule power %v, want %v", trial, got, direct.Power)
		}
	}
}

func TestAssembleRejectsShapeMismatch(t *testing.T) {
	pl := prep.ForGaps(sched.NewInstance([]sched.Job{{Release: 0, Deadline: 1}}))
	if _, err := pl.Assemble(nil); err == nil {
		t.Fatal("wrong part count accepted")
	}
	if _, err := pl.Assemble([]sched.Schedule{{Procs: 1}}); err == nil {
		t.Fatal("wrong slot count accepted")
	}
}
