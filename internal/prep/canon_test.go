package prep

import (
	"math/rand"
	"testing"

	"repro/internal/sched"
)

func TestCanonicalizeSortsAndMapsBack(t *testing.T) {
	in := sched.Instance{Procs: 2, Jobs: []sched.Job{
		{Release: 5, Deadline: 9},
		{Release: 0, Deadline: 3},
		{Release: 5, Deadline: 6},
		{Release: 0, Deadline: 3},
	}}
	canon, perm := Canonicalize(in)
	if canon.Procs != in.Procs || len(canon.Jobs) != len(in.Jobs) || len(perm) != len(in.Jobs) {
		t.Fatalf("canonical shape wrong: %+v perm %v", canon, perm)
	}
	for i := 1; i < len(canon.Jobs); i++ {
		a, b := canon.Jobs[i-1], canon.Jobs[i]
		if a.Release > b.Release || (a.Release == b.Release && a.Deadline > b.Deadline) {
			t.Fatalf("canonical jobs not sorted: %v", canon.Jobs)
		}
	}
	seen := make([]bool, len(in.Jobs))
	for i, j := range perm {
		if seen[j] {
			t.Fatalf("perm %v is not a permutation", perm)
		}
		seen[j] = true
		if canon.Jobs[i] != in.Jobs[j] {
			t.Fatalf("canon.Jobs[%d]=%v but in.Jobs[perm[%d]]=%v", i, canon.Jobs[i], i, in.Jobs[j])
		}
	}
}

func TestCanonicalKeyInvariantUnderPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	base := []sched.Job{
		{Release: 0, Deadline: 4}, {Release: 1, Deadline: 3}, {Release: 2, Deadline: 2},
		{Release: 2, Deadline: 6}, {Release: 0, Deadline: 4},
	}
	want := ""
	for trial := 0; trial < 20; trial++ {
		jobs := make([]sched.Job, len(base))
		copy(jobs, base)
		rng.Shuffle(len(jobs), func(i, j int) { jobs[i], jobs[j] = jobs[j], jobs[i] })
		canon, _ := Canonicalize(sched.Instance{Jobs: jobs, Procs: 2})
		key := CanonicalKey(canon, 0, 0)
		if trial == 0 {
			want = key
		} else if key != want {
			t.Fatalf("trial %d: permuted instance changed the canonical key", trial)
		}
	}
}

func TestCanonicalKeyDistinguishesContext(t *testing.T) {
	canon, _ := Canonicalize(sched.Instance{Jobs: []sched.Job{{Release: 0, Deadline: 2}}, Procs: 1})
	base := CanonicalKey(canon, 0, 0)
	if CanonicalKey(canon, 1, 0) == base {
		t.Fatal("objective tag not part of the key")
	}
	if CanonicalKey(canon, 0, 2.5) == base {
		t.Fatal("alpha not part of the key")
	}
	other := canon
	other.Procs = 2
	if CanonicalKey(other, 0, 0) == base {
		t.Fatal("processor count not part of the key")
	}
	grown := sched.Instance{Jobs: []sched.Job{{Release: 0, Deadline: 2}, {Release: 0, Deadline: 2}}, Procs: 1}
	if CanonicalKey(grown, 0, 0) == base {
		t.Fatal("job count not part of the key")
	}
}

func TestDecomposedDuplicateClustersShareAKey(t *testing.T) {
	// Three identical job clusters far apart on the absolute timeline:
	// after Decompose's translation every fragment must canonicalize to
	// the same key, which is what lets a fragment cache dedupe them.
	var jobs []sched.Job
	for _, base := range []int{3, 1000, 54321} {
		jobs = append(jobs,
			sched.Job{Release: base + 2, Deadline: base + 5},
			sched.Job{Release: base, Deadline: base + 1},
		)
	}
	pl := ForGaps(sched.Instance{Jobs: jobs, Procs: 1})
	if len(pl.Subs) != 3 {
		t.Fatalf("expected 3 fragments, got %d", len(pl.Subs))
	}
	keys := make(map[string]bool)
	for _, sub := range pl.Subs {
		canon, _ := Canonicalize(sub.Instance)
		keys[CanonicalKey(canon, 0, 0)] = true
	}
	if len(keys) != 1 {
		t.Fatalf("identical clusters produced %d distinct keys", len(keys))
	}
}
