package prep

// Canonical fragment form and fingerprint. After Decompose translates
// every fragment to a zero-based origin, fragments arising from
// different instances (or different places in one instance) that
// contain the same multiset of job windows on the same processor count
// become byte-identical once job order is normalized. That is what
// makes fragment solutions cacheable across a batch: the facade's
// fragment cache is keyed by CanonicalKey of the Canonicalize'd
// fragment.

import (
	"encoding/binary"
	"math"
	"sort"

	"repro/internal/sched"
)

// Canonicalize returns a canonical form of an instance — the same jobs
// sorted by (Release, Deadline) — together with the permutation mapping
// canonical positions back to input positions:
//
//	canon.Jobs[i] == in.Jobs[perm[i]]
//
// A schedule of the canonical instance converts to a schedule of the
// input by routing slot i to slot perm[i]; the job windows agree
// position by position, so validity and cost are preserved. Two
// instances with equal job multisets and processor counts share one
// canonical form.
func Canonicalize(in sched.Instance) (canon sched.Instance, perm []int) {
	perm = make([]int, len(in.Jobs))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(x, y int) bool {
		a, b := in.Jobs[perm[x]], in.Jobs[perm[y]]
		if a.Release != b.Release {
			return a.Release < b.Release
		}
		if a.Deadline != b.Deadline {
			return a.Deadline < b.Deadline
		}
		return perm[x] < perm[y]
	})
	jobs := make([]sched.Job, len(in.Jobs))
	for i, j := range perm {
		jobs[i] = in.Jobs[j]
	}
	return sched.Instance{Jobs: jobs, Procs: in.Procs}, perm
}

// CanonicalKey encodes a canonicalized instance plus the caller's
// objective context into a compact byte string usable as an exact cache
// key: equal keys hold exactly when the canonical instances, tags, and
// alphas are all equal, so a cache keyed by it can never conflate two
// different subproblems. tag distinguishes objectives; alpha is the
// power transition cost (callers should pass 0 for objectives that
// ignore it, so irrelevant alphas do not fragment the key space).
//
// The instance must already be in canonical job order (Canonicalize);
// the key is order-sensitive by design, since varint delta coding of an
// unsorted job list would not be canonical.
func CanonicalKey(canon sched.Instance, tag byte, alpha float64) string {
	buf := make([]byte, 0, 20+2*binary.MaxVarintLen64*len(canon.Jobs))
	buf = append(buf, tag)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(alpha))
	buf = binary.AppendVarint(buf, int64(canon.Procs))
	buf = binary.AppendUvarint(buf, uint64(len(canon.Jobs)))
	for _, j := range canon.Jobs {
		buf = binary.AppendVarint(buf, int64(j.Release))
		buf = binary.AppendVarint(buf, int64(j.Deadline))
	}
	return string(buf)
}
