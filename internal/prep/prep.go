// Package prep is the preprocessing layer in front of the exact DP
// engine (see DESIGN.md §2): it normalizes a one-interval instance and
// decomposes it into independent sub-instances that can be solved
// separately and concatenated.
//
// Two transformations are applied, both exactly cost-preserving:
//
//   - Splitting at forced-idle boundaries. A forced-idle run is a
//     maximal time range covered by no job window; no schedule can be
//     busy there. For the span objective any such run separates spans,
//     so the instance splits at every one. For the power objective a
//     processor could profitably stay active across an idle run shorter
//     than the transition cost α, so only runs of width ≥ α separate
//     optimal solutions (at width exactly α, bridging ties sleeping, so
//     an optimal solution that sleeps exists and the split is still
//     exact).
//
//   - Time-coordinate compression. Each sub-instance is translated so
//     its earliest release is 0. Together with the split — which
//     discards the idle stretches between fragments — this shrinks a
//     sparse horizon to the sum of the covered regions, keeping the
//     engine's index-encoded memo table compact regardless of where on
//     the absolute timeline the instance lives.
//
// Both objectives are additive across the split (spans and power each
// sum over fragments), and feasibility decomposes too: a Hall violator
// interval never spans a forced-idle run, since shrinking it to either
// side of the run preserves the violation.
package prep

import (
	"fmt"
	"sort"

	"repro/internal/sched"
)

// Sub is one independent fragment of a decomposed instance.
type Sub struct {
	// Instance is the fragment, translated so its earliest release is 0.
	Instance sched.Instance
	// Jobs maps fragment job indices to original instance job indices:
	// Instance.Jobs[i] is the original in.Jobs[Jobs[i]] shifted left by
	// Offset.
	Jobs []int
	// Offset is the original time of the fragment's time 0.
	Offset int
}

// Plan is a decomposition of an instance into independently solvable
// sub-instances, with enough bookkeeping to reassemble a schedule of
// the original instance from schedules of the fragments.
type Plan struct {
	Subs []Sub

	procs int
	n     int
}

// Splits reports whether a forced-idle run of idle time units separates
// sub-instances under split threshold splitWidth: the run must be
// non-empty and at least splitWidth wide. This single predicate is what
// Decompose's sweep and the incremental tracker (internal/incr) share —
// both layers must agree on every boundary or incremental solutions
// would drift from from-scratch ones.
func Splits(idle int, splitWidth float64) bool {
	return idle >= 1 && float64(idle) >= splitWidth
}

// ForGaps decomposes in for the span objective: every forced-idle run
// splits.
func ForGaps(in sched.Instance) *Plan { return Decompose(in, 1) }

// ForPower decomposes in for the power objective with transition cost
// alpha: only forced-idle runs of width ≥ alpha split, because shorter
// runs may be bridged by an optimal solution.
func ForPower(in sched.Instance, alpha float64) *Plan { return Decompose(in, alpha) }

// Decompose splits in at every forced-idle run of width ≥ splitWidth
// (and width ≥ 1) and translates each fragment to a zero-based origin.
// Fragments appear in increasing time order; job order within a
// fragment follows the original instance. The empty instance yields an
// empty plan.
func Decompose(in sched.Instance, splitWidth float64) *Plan {
	pl := &Plan{procs: in.Procs, n: len(in.Jobs)}
	if len(in.Jobs) == 0 {
		return pl
	}

	order := make([]int, len(in.Jobs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		a, b := in.Jobs[order[x]], in.Jobs[order[y]]
		if a.Release != b.Release {
			return a.Release < b.Release
		}
		return order[x] < order[y]
	})

	// Sweep windows in release order; a new fragment starts whenever the
	// next window opens beyond the current coverage by a splittable
	// idle run.
	var cur []int
	curEnd := 0
	flush := func() {
		if len(cur) == 0 {
			return
		}
		sort.Ints(cur) // restore original job order within the fragment
		offset := in.Jobs[cur[0]].Release
		for _, j := range cur {
			if r := in.Jobs[j].Release; r < offset {
				offset = r
			}
		}
		jobs := make([]sched.Job, len(cur))
		for i, j := range cur {
			jobs[i] = sched.Job{
				Release:  in.Jobs[j].Release - offset,
				Deadline: in.Jobs[j].Deadline - offset,
			}
		}
		pl.Subs = append(pl.Subs, Sub{
			Instance: sched.Instance{Jobs: jobs, Procs: in.Procs},
			Jobs:     cur,
			Offset:   offset,
		})
		cur = nil
	}
	for _, j := range order {
		job := in.Jobs[j]
		if len(cur) > 0 && Splits(job.Release-curEnd-1, splitWidth) {
			flush()
		}
		cur = append(cur, j)
		if job.Deadline > curEnd || len(cur) == 1 {
			curEnd = job.Deadline
		}
	}
	flush()
	return pl
}

// Assemble maps fragment schedules back onto the original instance:
// parts[i] must schedule Subs[i].Instance. Times are shifted back by
// each fragment's offset and job indices are restored.
func (pl *Plan) Assemble(parts []sched.Schedule) (sched.Schedule, error) {
	if len(parts) != len(pl.Subs) {
		return sched.Schedule{}, fmt.Errorf("prep: %d part schedules for %d sub-instances", len(parts), len(pl.Subs))
	}
	out := sched.Schedule{Procs: pl.procs, Slots: make([]sched.Assignment, pl.n)}
	for si, sub := range pl.Subs {
		part := parts[si]
		if len(part.Slots) != len(sub.Jobs) {
			return sched.Schedule{}, fmt.Errorf("prep: part %d has %d slots for %d jobs", si, len(part.Slots), len(sub.Jobs))
		}
		for i, a := range part.Slots {
			out.Slots[sub.Jobs[i]] = sched.Assignment{Proc: a.Proc, Time: a.Time + sub.Offset}
		}
	}
	return out, nil
}
