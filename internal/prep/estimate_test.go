package prep

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/sched"
	"repro/internal/workload"
)

// TestStateEstimateHandValues pins the estimate's shape on instances
// small enough to compute by hand: G²·(n+1)·(p+1)³ with G the clipped
// anchor-neighbourhood union and p capped at n.
func TestStateEstimateHandValues(t *testing.T) {
	// One job [0,0]: G = 1 (neighbourhood clipped to the horizon),
	// n+1 = 2, capped p = 1 → 1·1·2·2³ = 16.
	one := sched.NewInstance([]sched.Job{{Release: 0, Deadline: 0}})
	if got := StateEstimate(one); got != 16 {
		t.Fatalf("single-point estimate %d, want 16", got)
	}
	// Same job on 8 processors: p caps at n = 1, identical estimate.
	if got := StateEstimate(sched.NewMultiprocInstance([]sched.Job{{Release: 0, Deadline: 0}}, 8)); got != 16 {
		t.Fatalf("capped-p estimate %d, want 16", got)
	}
	// Empty instance: nothing to solve.
	if got := StateEstimate(sched.Instance{Procs: 3}); got != 0 {
		t.Fatalf("empty estimate %d, want 0", got)
	}
	// Two far-apart tight jobs [0,0] and [100,100]: each anchor covers
	// ±2 clipped to the horizon ends → G = 3 + 3 = 6, n+1 = 3, p = 1
	// → 36·3·8 = 864.
	two := sched.NewInstance([]sched.Job{{Release: 0, Deadline: 0}, {Release: 100, Deadline: 100}})
	if got := StateEstimate(two); got != 864 {
		t.Fatalf("two-point estimate %d, want 864", got)
	}
}

// TestStateEstimateMonotoneInSize: adding jobs to an instance must
// never shrink the estimate — the property ModeAuto's admission
// decision leans on.
func TestStateEstimateMonotoneInSize(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for trial := 0; trial < 100; trial++ {
		in := workload.Multiproc(rng, 2+rng.Intn(12), 1+rng.Intn(3), 6+rng.Intn(40), 1+rng.Intn(6))
		smaller := sched.Instance{Jobs: in.Jobs[:len(in.Jobs)-1], Procs: in.Procs}
		if StateEstimate(smaller) > StateEstimate(in) {
			t.Fatalf("estimate shrank when adding a job: %d > %d (jobs %v)",
				StateEstimate(smaller), StateEstimate(in), in.Jobs)
		}
	}
}

// TestStateEstimateSaturates: absurd horizons must clamp at MaxInt
// instead of overflowing into a small (or negative) budget pass.
func TestStateEstimateSaturates(t *testing.T) {
	jobs := make([]sched.Job, 2000)
	for i := range jobs {
		jobs[i] = sched.Job{Release: i * 1_000_000, Deadline: i*1_000_000 + 900_000}
	}
	if got := StateEstimate(sched.NewMultiprocInstance(jobs, 4)); got != math.MaxInt {
		t.Fatalf("huge estimate %d, want MaxInt saturation", got)
	}
}

// TestStateEstimateZeroProcs: a hand-built zero-processor instance must
// estimate finitely — the (p+1) dimensions collapse to 1 — rather than
// panic or go negative. The decomposition never produces one, but the
// admission gate sits on the public Solver path, where anything can
// arrive.
func TestStateEstimateZeroProcs(t *testing.T) {
	in := sched.Instance{Jobs: []sched.Job{{Release: 0, Deadline: 0}}}
	if got := StateEstimate(in); got != 2 {
		t.Fatalf("zero-proc estimate %d, want 2 (1·1·2·1³)", got)
	}
	if got := StateEstimate(sched.Instance{}); got != 0 {
		t.Fatalf("zero-everything estimate %d, want 0", got)
	}
}

// TestSatMulNearOverflow pins the saturation boundary itself: products
// that fit exactly stay exact, and the first product past MaxInt clamps
// instead of wrapping negative (which would sail through any budget).
func TestSatMulNearOverflow(t *testing.T) {
	half := math.MaxInt / 2
	if got := satMul(half, 2); got != half*2 {
		t.Fatalf("satMul(MaxInt/2, 2) = %d, want exact %d", got, half*2)
	}
	if got := satMul(half+1, 2); got != math.MaxInt {
		t.Fatalf("satMul(MaxInt/2+1, 2) = %d, want MaxInt saturation", got)
	}
	if got := satMul(math.MaxInt, 1); got != math.MaxInt {
		t.Fatalf("satMul(MaxInt, 1) = %d, want MaxInt", got)
	}
	if got := satMul(math.MaxInt, 0); got != 0 {
		t.Fatalf("satMul(MaxInt, 0) = %d, want 0", got)
	}
}

// TestGridSizeHandValues pins the exported grid measure both exact
// backends' admission estimates price: the clipped ±n anchor
// neighbourhoods with overlaps merged.
func TestGridSizeHandValues(t *testing.T) {
	if got := GridSize(sched.Instance{}); got != 0 {
		t.Fatalf("empty grid %d, want 0", got)
	}
	// One job [0,2]: anchors 0 and 2, each ±1, clipped to the horizon
	// and merged into [0,2] → 3 grid points.
	if got := GridSize(sched.NewInstance([]sched.Job{{Release: 0, Deadline: 2}})); got != 3 {
		t.Fatalf("one-job grid %d, want 3", got)
	}
	// Two far-apart tight jobs: two disjoint clipped neighbourhoods of 3
	// points each.
	two := sched.NewInstance([]sched.Job{{Release: 0, Deadline: 0}, {Release: 100, Deadline: 100}})
	if got := GridSize(two); got != 6 {
		t.Fatalf("two-cluster grid %d, want 6", got)
	}
}

// TestStateEstimateDeterministic: the estimate must not depend on job
// order (fragments are canonicalized before caching, so the admission
// decision must agree between a fragment and its canonical form).
func TestStateEstimateDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		in := workload.Multiproc(rng, 2+rng.Intn(10), 1+rng.Intn(3), 6+rng.Intn(30), 1+rng.Intn(5))
		canon, _ := Canonicalize(in)
		if StateEstimate(in) != StateEstimate(canon) {
			t.Fatalf("estimate depends on job order: %d vs %d (jobs %v)",
				StateEstimate(in), StateEstimate(canon), in.Jobs)
		}
	}
}
