package restart

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/exact"
	"repro/internal/sched"
	"repro/internal/workload"
)

func TestGreedyRespectsBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 80; trial++ {
		mi := workload.MultiInterval(rng, 2+rng.Intn(8), 1+rng.Intn(3), 1+rng.Intn(2), 14)
		budget := 1 + rng.Intn(4)
		res, err := Greedy(mi, budget)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Spans > budget {
			t.Fatalf("trial %d: %d spans exceed budget %d", trial, res.Spans, budget)
		}
		if len(res.Intervals) > budget {
			t.Fatalf("trial %d: %d intervals exceed budget %d", trial, len(res.Intervals), budget)
		}
		// Scheduled assignments are valid and distinct.
		seen := map[int]bool{}
		for job, tm := range res.Scheduled {
			if !mi.Jobs[job].Contains(tm) {
				t.Fatalf("trial %d: job %d at illegal time %d", trial, job, tm)
			}
			if seen[tm] {
				t.Fatalf("trial %d: duplicate time %d", trial, tm)
			}
			seen[tm] = true
		}
	}
}

func TestGreedyFillsChosenIntervals(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		mi := workload.MultiInterval(rng, 3+rng.Intn(6), 2, 2, 12)
		res, err := Greedy(mi, 3)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		busy := map[int]bool{}
		for _, tm := range res.Scheduled {
			busy[tm] = true
		}
		for _, iv := range res.Intervals {
			for tm := iv.Lo; tm <= iv.Hi; tm++ {
				if !busy[tm] {
					t.Fatalf("trial %d: chosen interval %v has idle unit %d", trial, iv, tm)
				}
			}
		}
	}
}

// TestGreedyWithinSqrtN asserts the Theorem 11 guarantee with its proof
// constant: greedy ≥ OPT / (2√n + 1).
func TestGreedyWithinSqrtN(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(8)
		mi := workload.MultiInterval(rng, n, 1+rng.Intn(3), 1+rng.Intn(2), 12)
		budget := 1 + rng.Intn(3)
		res, err := Greedy(mi, budget)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		opt := exact.MaxThroughput(mi, budget)
		if res.Jobs() > opt {
			t.Fatalf("trial %d: greedy %d beats exact %d — oracle bug", trial, res.Jobs(), opt)
		}
		bound := float64(opt) / (2*math.Sqrt(float64(n)) + 1)
		if float64(res.Jobs()) < bound-1e-9 {
			t.Fatalf("trial %d: greedy %d below O(√n) bound %v of opt %d (n=%d budget %d, jobs %v)",
				trial, res.Jobs(), bound, opt, n, budget, mi.Jobs)
		}
	}
}

func TestGreedyZeroBudget(t *testing.T) {
	mi := sched.MultiInstance{Jobs: []sched.MultiJob{sched.MultiJobFromTimes(0)}}
	res, err := Greedy(mi, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs() != 0 {
		t.Fatalf("zero budget scheduled %d jobs", res.Jobs())
	}
	if _, err := Greedy(mi, -1); err == nil {
		t.Fatal("negative budget accepted")
	}
}

func TestGreedyPrefersLargestInterval(t *testing.T) {
	// Three jobs forming a length-3 block and one isolated job: with
	// budget 1 the greedy must take the block.
	mi := sched.MultiInstance{Jobs: []sched.MultiJob{
		sched.MultiJobFromTimes(0),
		sched.MultiJobFromTimes(1),
		sched.MultiJobFromTimes(2),
		sched.MultiJobFromTimes(10),
	}}
	res, err := Greedy(mi, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs() != 3 {
		t.Fatalf("greedy scheduled %d jobs, want the 3-block", res.Jobs())
	}
}

func TestMaxThroughputOracle(t *testing.T) {
	mi := sched.MultiInstance{Jobs: []sched.MultiJob{
		sched.MultiJobFromTimes(0),
		sched.MultiJobFromTimes(1),
		sched.MultiJobFromTimes(5),
	}}
	if got := exact.MaxThroughput(mi, 1); got != 2 {
		t.Fatalf("one span: %d jobs, want 2", got)
	}
	if got := exact.MaxThroughput(mi, 2); got != 3 {
		t.Fatalf("two spans: %d jobs, want 3", got)
	}
	if got := exact.MaxThroughput(mi, 0); got != 0 {
		t.Fatalf("zero spans: %d jobs, want 0", got)
	}
}
