// Package restart implements §6: the minimum-restart (bounded-gap
// throughput) problem. Given multi-interval unit jobs and a budget of k
// spans ("days" in the consultant story — each span is one consecutive
// working stretch, each new span a restart), schedule as many jobs as
// possible.
//
// Theorem 11's greedy picks, k times, the largest time interval that can
// be completely filled with still-unscheduled jobs (checked by maximum
// matching), and proves an O(√n) approximation factor. The experiment
// harness measures true ratios against the exact oracle.
package restart

import (
	"errors"

	"repro/internal/feas"
	"repro/internal/sched"
)

// Result describes a greedy throughput run.
type Result struct {
	// Scheduled maps job index → execution time for the chosen jobs.
	Scheduled map[int]int
	// Intervals lists the working intervals in choice order.
	Intervals []sched.Interval
	// Spans is the span count of the produced schedule (≤ the budget;
	// it can be smaller when chosen intervals touch).
	Spans int
}

// Jobs returns the number of scheduled jobs.
func (r Result) Jobs() int { return len(r.Scheduled) }

// Greedy runs the Theorem 11 algorithm with a budget of maxSpans
// working intervals.
func Greedy(mi sched.MultiInstance, maxSpans int) (Result, error) {
	if err := mi.Validate(); err != nil {
		return Result{}, err
	}
	if maxSpans < 0 {
		return Result{}, errors.New("restart: negative span budget")
	}
	scheduled := make(map[int]int)
	busy := make(map[int]bool)
	var chosen []sched.Interval

	for step := 0; step < maxSpans; step++ {
		iv, fill := largestFillable(mi, scheduled, busy)
		if !iv.Valid() {
			break
		}
		for job, t := range fill {
			scheduled[job] = t
			busy[t] = true
		}
		chosen = append(chosen, iv)
	}

	var ts []int
	for _, t := range scheduled {
		ts = append(ts, t)
	}
	return Result{Scheduled: scheduled, Intervals: chosen, Spans: sched.SpansOfTimes(ts)}, nil
}

// largestFillable finds the largest interval [a, b] of currently idle
// times such that b−a+1 unscheduled jobs can fill it completely, and the
// filling assignment. Candidate endpoints range over the instance's
// allowed times. Returns an invalid interval when none exists.
func largestFillable(mi sched.MultiInstance, scheduled map[int]int, busy map[int]bool) (sched.Interval, map[int]int) {
	all := mi.AllTimes()
	if len(all) == 0 {
		return sched.Interval{Lo: 1, Hi: 0}, nil
	}
	var free []int
	for _, t := range all {
		if !busy[t] {
			free = append(free, t)
		}
	}
	var unsch []int
	for j := range mi.Jobs {
		if _, done := scheduled[j]; !done {
			unsch = append(unsch, j)
		}
	}
	maxLen := len(unsch)
	for length := maxLen; length >= 1; length-- {
		for _, a := range free {
			b := a + length - 1
			if fill := tryFill(mi, unsch, busy, a, b); fill != nil {
				return sched.Interval{Lo: a, Hi: b}, fill
			}
		}
	}
	return sched.Interval{Lo: 1, Hi: 0}, nil
}

// tryFill attempts to fill every time of [a, b] with distinct
// unscheduled jobs; nil if impossible.
func tryFill(mi sched.MultiInstance, unsch []int, busy map[int]bool, a, b int) map[int]int {
	width := b - a + 1
	if width > len(unsch) {
		return nil
	}
	for t := a; t <= b; t++ {
		if busy[t] {
			return nil
		}
	}
	g := feas.NewBipartite(len(unsch), width)
	for u, j := range unsch {
		for _, t := range mi.Jobs[j].Times() {
			if a <= t && t <= b {
				g.AddEdge(u, t-a)
			}
		}
	}
	m := feas.MaxMatching(g)
	if m.Size != width {
		return nil
	}
	fill := make(map[int]int, width)
	for v := 0; v < width; v++ {
		u := m.MatchR[v]
		if u < 0 {
			return nil
		}
		fill[unsch[u]] = a + v
	}
	return fill
}
