package gapsched

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/sched"
	"repro/internal/workload"
)

// TestOnlineSessionAdversarialRatio: on the §1 adversarial family the
// online tier pays n spans against an offline optimum of 1, so the
// measured competitive ratio is exactly n (the mirror solves the
// prefix exactly at these sizes, so LowerBound = OPT = 1).
func TestOnlineSessionAdversarialRatio(t *testing.T) {
	for _, n := range []int{2, 4, 6} {
		ss, err := Solver{}.OpenOnline(1)
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range workload.OnlineLowerBound(n).Jobs {
			if _, err := ss.Add(j); err != nil {
				t.Fatal(err)
			}
		}
		sol, err := ss.Resolve()
		if err != nil {
			t.Fatal(err)
		}
		if sol.Spans != n {
			t.Fatalf("n=%d: online run has %d spans, want %d", n, sol.Spans, n)
		}
		if sol.LowerBound != 1 {
			t.Fatalf("n=%d: mirror LowerBound %v, want 1", n, sol.LowerBound)
		}
		if sol.CompetitiveRatio != float64(n) {
			t.Fatalf("n=%d: CompetitiveRatio %v, want %d", n, sol.CompetitiveRatio, n)
		}
		ss.Close()
	}
}

// TestOnlineSessionRatioHonest: across random release-ordered streams,
// on both objectives, every mid-stream Resolve reports a validated
// schedule whose cost is ≥ the exact offline optimum of the revealed
// prefix, and a CompetitiveRatio ≥ 1.
func TestOnlineSessionRatioHonest(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, cfg := range []Solver{{}, {Objective: ObjectivePower, Alpha: 2.5}} {
		for trial := 0; trial < 60; trial++ {
			p := 1 + rng.Intn(2)
			in := workload.Multiproc(rng, 1+rng.Intn(8), p, 1+rng.Intn(20), 1+rng.Intn(5))
			jobs := append([]sched.Job(nil), in.Jobs...)
			sort.SliceStable(jobs, func(x, y int) bool { return jobs[x].Release < jobs[y].Release })
			ss, err := cfg.OpenOnline(p)
			if err != nil {
				t.Fatal(err)
			}
			infeasible := false
			for _, j := range jobs {
				if _, err := ss.Add(j); err != nil {
					t.Fatalf("Add(%+v): %v", j, err)
				}
				sol, err := ss.Resolve()
				if err != nil {
					if !errors.Is(err, ErrInfeasible) {
						t.Fatal(err)
					}
					infeasible = true
					continue
				}
				if infeasible {
					t.Fatal("session recovered from infeasibility with no job removed")
				}
				opt, err := cfg.Solve(ss.Instance())
				if err != nil {
					t.Fatalf("offline prefix solve: %v", err)
				}
				online, optCost := cfg.Objective.Cost(sol), cfg.Objective.Cost(opt)
				if online < optCost-1e-9 {
					t.Fatalf("online cost %v beats offline optimum %v", online, optCost)
				}
				if sol.CompetitiveRatio < 1-1e-12 {
					t.Fatalf("CompetitiveRatio %v < 1", sol.CompetitiveRatio)
				}
				if sol.Mode != ModeAuto {
					t.Fatalf("online mirror mode %v, want auto", sol.Mode)
				}
			}
			ss.Close()
		}
	}
}

// TestOnlineSessionCommitOnly: Remove is rejected, out-of-order Adds
// are rejected without being admitted, and the watermark tracks the
// last arrival.
func TestOnlineSessionCommitOnly(t *testing.T) {
	ss, err := Solver{}.OpenOnline(0)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	if wm, online := ss.Online(); !online || wm != math.MinInt {
		t.Fatalf("Online() = (%d, %v) before first Add", wm, online)
	}
	id, err := ss.Add(Job{Release: 5, Deadline: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := ss.Remove(id); !errors.Is(err, ErrCommitOnly) {
		t.Fatalf("Remove on online session: %v, want ErrCommitOnly", err)
	}
	if _, err := ss.Add(Job{Release: 3, Deadline: 9}); !errors.Is(err, ErrReleaseOrder) {
		t.Fatalf("out-of-order Add: %v, want ErrReleaseOrder", err)
	}
	if ss.Len() != 1 {
		t.Fatalf("rejected Add was admitted: Len %d", ss.Len())
	}
	if wm, online := ss.Online(); !online || wm != 5 {
		t.Fatalf("Online() = (%d, %v), want (5, true)", wm, online)
	}
	sol, err := ss.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.CompetitiveRatio != 1 || sol.Spans != 1 {
		t.Fatalf("singleton prefix: ratio %v spans %d", sol.CompetitiveRatio, sol.Spans)
	}
	// The sole job is not yet committed: its unit lies at the frontier.
	if sol.CommittedJobs != 0 || sol.CommittedCost != 0 {
		t.Fatalf("nothing is committed yet: %d jobs / cost %v", sol.CommittedJobs, sol.CommittedCost)
	}
	if _, err := ss.Add(Job{Release: 40, Deadline: 41}); err != nil {
		t.Fatal(err)
	}
	sol, err = ss.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.CommittedJobs != 1 {
		t.Fatalf("first job should be committed after time advanced: %+v", sol.CommittedJobs)
	}
	// An offline session reports not-online.
	off, err := Solver{}.Open(1)
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	if _, online := off.Online(); online {
		t.Fatal("offline session claims to be online")
	}
}

// TestOnlineSessionInfeasibleIsSticky: a committed deadline miss makes
// every later Resolve infeasible, while Adds continue to be accepted.
func TestOnlineSessionInfeasibleIsSticky(t *testing.T) {
	ss, err := Solver{}.OpenOnline(1)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	for i := 0; i < 2; i++ {
		if _, err := ss.Add(Job{Release: 0, Deadline: 0}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ss.Add(Job{Release: 10, Deadline: 12}); err != nil {
		t.Fatalf("Add after miss: %v", err)
	}
	if _, err := ss.Resolve(); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("Resolve: %v, want ErrInfeasible", err)
	}
	if ss.Len() != 3 {
		t.Fatalf("Len %d, want 3", ss.Len())
	}
}

// TestOnlineSessionEmptyAndClosed: zero-job Resolve works; closed
// sessions answer like offline ones.
func TestOnlineSessionEmptyAndClosed(t *testing.T) {
	ss, err := Solver{}.OpenOnline(2)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := ss.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Spans != 0 || sol.CompetitiveRatio != 1 {
		t.Fatalf("empty resolve: %+v", sol)
	}
	ss.Close()
	if _, err := ss.Add(Job{Release: 0, Deadline: 1}); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Add after Close: %v", err)
	}
	if _, online := ss.Online(); online {
		t.Fatal("closed session claims to be online")
	}
}
