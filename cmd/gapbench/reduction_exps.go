package main

// Experiments E6–E8: the hardness constructions of Theorems 4–10 as
// verified equivalences between set-cover optima and scheduling optima.

import (
	"math/rand"

	"repro/internal/exact"
	"repro/internal/reduction"
	"repro/internal/setcover"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register("E6", "Theorems 4/5/6: set cover ⇔ power/gap optimum of the construction", runE6)
	register("E7", "Theorems 7/8: 2-interval and 3-unit reductions preserve the optimum (+1 span)", runE7)
	register("E8", "Theorems 9/10: unit-gap equivalences and B-set-cover ⇔ disjoint-unit", runE8)
}

func runE6(cfg config) []*stats.Table {
	rng := rand.New(rand.NewSource(cfg.seed))
	trials := 30
	if cfg.quick {
		trials = 10
	}
	tb := stats.NewTable("construction", "trials", "opt power = n+1+α(k+1)", "opt spans = k+1", "greedy cover ≤ H_n·k")
	for _, mode := range []string{"Thm4 (α=n)", "Thm5 (α=B)"} {
		powerEq, spansEq, greedyOK := 0, 0, 0
		for trial := 0; trial < trials; trial++ {
			var sc setcover.Instance
			var r reduction.SetCoverPower
			if mode == "Thm4 (α=n)" {
				sc = setcover.Random(rng, 2+rng.Intn(5), 2+rng.Intn(4), 3)
				r = reduction.FromSetCover(sc)
			} else {
				sc = setcover.RandomB(rng, 2+rng.Intn(5), 2+rng.Intn(3), 2)
				r = reduction.FromBSetCover(sc)
			}
			opt := setcover.Exact(sc)
			k := len(opt)
			power, ok := exact.PowerMulti(r.Multi, r.Alpha)
			if ok && abs(power-r.PowerOfCoverSize(k)) < 1e-9 {
				powerEq++
			}
			spans, ok2 := exact.SpansMulti(r.Multi)
			if ok2 && spans == r.SpansOfCoverSize(k) {
				spansEq++
			}
			g := setcover.Greedy(sc)
			hn := 0.0
			for i := 1; i <= sc.NumElems; i++ {
				hn += 1.0 / float64(i)
			}
			if float64(len(g)) <= hn*float64(k)+1e-9 {
				greedyOK++
			}
		}
		tb.AddRow(mode, trials, boolMark(powerEq == trials), boolMark(spansEq == trials), boolMark(greedyOK == trials))
	}
	return []*stats.Table{tb}
}

func runE7(cfg config) []*stats.Table {
	rng := rand.New(rand.NewSource(cfg.seed))
	trials := 25
	if cfg.quick {
		trials = 8
	}
	tb := stats.NewTable("reduction", "trials", "verified", "OPT′ = OPT+1 everywhere")
	for _, mode := range []string{"Thm7 → 2-interval", "Thm8 → 3-unit"} {
		verified, plusOne := 0, 0
		total := 0
		for trial := 0; trial < trials; trial++ {
			var optOrig, optRed int
			var ok bool
			switch mode {
			case "Thm7 → 2-interval":
				mi := workload.FeasibleMultiInterval(rng, 2+rng.Intn(3), 3, 1, 12)
				if mi.MaxIntervalsPerJob() <= 2 {
					continue
				}
				r := reduction.ToTwoInterval(mi)
				if r.Reduced.N() > exact.MaxOracleJobs {
					continue
				}
				optOrig, _ = exact.SpansMulti(mi)
				optRed, ok = exact.SpansMulti(r.Reduced)
			case "Thm8 → 3-unit":
				mi := workload.FeasibleUnitMulti(rng, 2+rng.Intn(2), 4+rng.Intn(2), 14)
				r := reduction.ToThreeUnit(mi)
				if r.Reduced.N() > exact.MaxOracleJobs {
					continue
				}
				optOrig, _ = exact.SpansMulti(mi)
				optRed, ok = exact.SpansMulti(r.Reduced)
			}
			total++
			if ok {
				verified++
				if optRed == optOrig+1 {
					plusOne++
				}
			}
		}
		tb.AddRow(mode, total, boolMark(verified == total), boolMark(plusOne == total))
	}
	return []*stats.Table{tb}
}

func runE8(cfg config) []*stats.Table {
	rng := rand.New(rand.NewSource(cfg.seed))
	trials := 40
	if cfg.quick {
		trials = 15
	}
	eqTable := stats.NewTable("direction", "trials", "|opt gap difference| ≤ 1")
	// Two-unit → disjoint-unit.
	okCnt, total := 0, 0
	for trial := 0; trial < 4*trials && total < trials; trial++ {
		mi := workload.UnitMulti(rng, 2+rng.Intn(5), 1+rng.Intn(2), 10)
		eq, ok := reduction.TwoUnitToDisjoint(mi)
		if !ok {
			continue
		}
		total++
		a, ok1 := exact.SpansMulti(eq.From)
		b, ok2 := exact.SpansMulti(eq.To)
		if ok1 && ok2 {
			if d := (a - 1) - (b - 1); d >= -1 && d <= 1 {
				okCnt++
			}
		}
	}
	eqTable.AddRow("2-unit → disjoint-unit", total, boolMark(okCnt == total))
	// Disjoint-unit → two-unit.
	okCnt, total = 0, 0
	for trial := 0; trial < trials; trial++ {
		mi := workload.DisjointUnit(rng, 2+rng.Intn(3), 2+rng.Intn(2))
		eq, ok := reduction.DisjointToTwoUnit(mi)
		if !ok {
			continue
		}
		total++
		a, ok1 := exact.SpansMulti(eq.From)
		b, ok2 := exact.SpansMulti(eq.To)
		if ok1 && ok2 {
			if d := (a - 1) - (b - 1); d >= -1 && d <= 1 {
				okCnt++
			}
		}
	}
	eqTable.AddRow("disjoint-unit → 2-unit", total, boolMark(okCnt == total))

	// Theorem 10.
	t10 := stats.NewTable("trials", "opt spans = opt cover size")
	okCnt, total = 0, 0
	for trial := 0; trial < trials; trial++ {
		sc := setcover.RandomB(rng, 2+rng.Intn(4), 2+rng.Intn(3), 2)
		r := reduction.FromBSetCoverDisjoint(sc)
		opt := setcover.Exact(sc)
		total++
		spans, ok := exact.SpansMulti(r.Multi)
		if ok && opt != nil && spans == len(opt) {
			okCnt++
		}
	}
	t10.AddRow(total, boolMark(okCnt == total))
	return []*stats.Table{eqTable, t10}
}
