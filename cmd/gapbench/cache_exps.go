package main

// Experiment E17: the fragment-level batch scheduler and the
// canonical-fragment solution cache. Two tables:
//
//  1. A duplicate-heavy batch — a few distinct bursty instances
//     replicated many times, the paper's recurring device-traffic
//     pattern — solved with the cache off and on. The cache must leave
//     every cost bit-identical while serving most fragments from
//     memory, several times faster in wall-clock.
//
//  2. A skewed batch — one "whale" instance carrying most of the
//     fragments plus a fleet of small ones — solved sequentially, with
//     instance-granularity parallelism (the pre-fragment-queue design,
//     emulated here), and with the fragment-level queue. Instance
//     granularity strands the whale on one worker; the fragment queue
//     spreads its fragments across the pool.

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	gapsched "repro"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register("E17", "Fragment cache and fragment-level batch scheduling", runE17)
}

func runE17(cfg config) []*stats.Table {
	return []*stats.Table{
		e17DuplicateHeavy(cfg),
		e17SkewScaling(cfg),
	}
}

// batchCosts extracts the per-instance objective values for exact
// comparison across schemes; errors are folded in as NaN markers.
func batchCosts(objective gapsched.Objective, res []gapsched.BatchResult) []float64 {
	costs := make([]float64, len(res))
	for i, r := range res {
		switch {
		case r.Err != nil:
			costs[i] = math.NaN()
		case objective == gapsched.ObjectivePower:
			costs[i] = r.Solution.Power
		default:
			costs[i] = float64(r.Solution.Spans)
		}
	}
	return costs
}

func costsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] && !(math.IsNaN(a[i]) && math.IsNaN(b[i])) {
			return false
		}
	}
	return true
}

func e17DuplicateHeavy(cfg config) *stats.Table {
	rng := rand.New(rand.NewSource(cfg.seed))
	distinct, copies, n := 10, 12, 12
	if cfg.quick {
		distinct, copies, n = 5, 6, 8
	}
	base := make([]gapsched.Instance, distinct)
	for i := range base {
		// Bursty windows repeat local patterns; redraw until feasible so
		// the table measures solves, not feasibility rejections.
		for {
			in := workload.Bursty(rng, n, 3, 6*n, 4, 5)
			in.Procs = 2
			if gapsched.Feasible(in) {
				base[i] = in
				break
			}
		}
	}
	ins := make([]gapsched.Instance, distinct*copies)
	for i := range ins {
		ins[i] = base[i%distinct]
	}
	rng.Shuffle(len(ins), func(i, j int) { ins[i], ins[j] = ins[j], ins[i] })

	tb := stats.NewTable("objective", "instances", "fragments", "cache", "cache hits", "wall ms", "speedup", "costs match uncached")
	for _, objective := range []gapsched.Objective{gapsched.ObjectiveGaps, gapsched.ObjectivePower} {
		s := gapsched.Solver{Objective: objective, Alpha: 2}
		var offCosts []float64
		var offWall float64
		for _, cacheSize := range []int{0, 1 << 14} {
			s.CacheSize = cacheSize
			start := time.Now()
			batch := s.SolveBatch(ins)
			wall := float64(time.Since(start).Microseconds()) / 1000
			frags, hits := 0, 0
			for _, r := range batch {
				frags += r.Solution.Subinstances
				hits += r.Solution.CacheHits
			}
			costs := batchCosts(objective, batch)
			if cacheSize == 0 {
				offCosts, offWall = costs, wall
				tb.AddRow(objective.String(), len(ins), frags, "off", hits, wall, 1.0, boolMark(true))
				continue
			}
			tb.AddRow(objective.String(), len(ins), frags, "on", hits, wall,
				offWall/wall, boolMark(costsEqual(costs, offCosts)))
		}
	}
	return tb
}

// e17SkewScaling compares work-distribution granularities on a skewed
// batch. Instance-level parallelism is emulated with a worker pool that
// claims whole instances, exactly the shape SolveBatch had before the
// fragment queue.
func e17SkewScaling(cfg config) *stats.Table {
	clusters, small := 28, 6
	if cfg.quick {
		clusters, small = 12, 3
	}
	// The whale: many well-separated identical-size clusters, so prep
	// yields many fragments from one instance.
	var whaleJobs []gapsched.Job
	rng := rand.New(rand.NewSource(cfg.seed + 1))
	for c := 0; c < clusters; c++ {
		base := c * 500
		for k := 0; k < 7; k++ {
			r := base + rng.Intn(8)
			whaleJobs = append(whaleJobs, gapsched.Job{Release: r, Deadline: r + 2 + rng.Intn(4)})
		}
	}
	ins := []gapsched.Instance{gapsched.NewMultiprocInstance(whaleJobs, 2)}
	for i := 0; i < small; i++ {
		ins = append(ins, workload.FeasibleOneInterval(rng, 6, 1, 12, 4))
	}

	workers := runtime.GOMAXPROCS(0)
	s := gapsched.Solver{}
	tb := stats.NewTable("scheme", "workers", "instances", "fragments", "wall ms", "speedup vs sequential", "costs match")
	var seqCosts []float64
	var seqWall float64
	for _, scheme := range []string{"sequential", "instance-level", "fragment-level"} {
		var res []gapsched.BatchResult
		start := time.Now()
		switch scheme {
		case "sequential":
			s.Workers = 1
			res = s.SolveBatch(ins)
		case "instance-level":
			res = make([]gapsched.BatchResult, len(ins))
			var next atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := int(next.Add(1)) - 1
						if i >= len(ins) {
							return
						}
						res[i].Solution, res[i].Err = s.Solve(ins[i])
					}
				}()
			}
			wg.Wait()
		case "fragment-level":
			s.Workers = workers
			res = s.SolveBatch(ins)
		}
		wall := float64(time.Since(start).Microseconds()) / 1000
		frags := 0
		for _, r := range res {
			frags += r.Solution.Subinstances
		}
		costs := batchCosts(gapsched.ObjectiveGaps, res)
		if scheme == "sequential" {
			seqCosts, seqWall = costs, wall
		}
		tb.AddRow(scheme, workers, len(ins), frags, wall, seqWall/wall, boolMark(costsEqual(costs, seqCosts)))
	}
	return tb
}
