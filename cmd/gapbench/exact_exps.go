package main

// Experiments E1–E3 and E12: the exact solving pipeline (prep layer +
// unified DP engine, Theorems 1–2) against brute-force oracles, and its
// runtime scaling. Everything runs through the public Solver facade, so
// the tables measure what library users actually get.

import (
	"math/rand"
	"time"

	gapsched "repro"
	"repro/internal/exact"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register("E1", "Theorem 1 DP is exact (vs oracle, multiprocessor)", runE1)
	register("E2", "Theorem 1 DP scales polynomially in n and p", runE2)
	register("E3", "Theorem 2 power DP is exact; gaps bridged iff shorter than α", runE3)
	register("E12", "p = 1 specialization (Baptiste) exactness and scaling", runE12)
}

func runE1(cfg config) []*stats.Table {
	rng := rand.New(rand.NewSource(cfg.seed))
	trials := 120
	if cfg.quick {
		trials = 30
	}
	tb := stats.NewTable("n", "p", "trials", "feasible", "DP=oracle", "mean spans", "mean DP states")
	for _, np := range [][2]int{{4, 1}, {6, 2}, {8, 2}, {8, 3}, {10, 3}} {
		n, p := np[0], np[1]
		feasibleCnt, agree := 0, 0
		var spansSum, statesSum float64
		for trial := 0; trial < trials; trial++ {
			in := workload.Multiproc(rng, n, p, 2+n, 5)
			want, feasible := exact.SpansOneInterval(in)
			res, err := gapsched.MinimizeGaps(in)
			if !feasible {
				if err == gapsched.ErrInfeasible {
					agree++
				}
				continue
			}
			feasibleCnt++
			if err == nil && res.Spans == want && res.Schedule.Spans() == want {
				agree++
			}
			spansSum += float64(want)
			statesSum += float64(res.States)
		}
		tb.AddRow(n, p, trials, feasibleCnt, boolMark(agree == trials),
			spansSum/float64(max(feasibleCnt, 1)), statesSum/float64(max(feasibleCnt, 1)))
	}
	return []*stats.Table{tb}
}

func runE2(cfg config) []*stats.Table {
	rng := rand.New(rand.NewSource(cfg.seed))
	nTable := stats.NewTable("n (p=2)", "mean ms", "mean DP states", "mean spans")
	sizes := []int{6, 10, 14, 18, 22, 26}
	reps := 5
	if cfg.quick {
		sizes = []int{6, 10, 14}
		reps = 3
	}
	for _, n := range sizes {
		var ms, states, spans float64
		for rep := 0; rep < reps; rep++ {
			in := workload.FeasibleOneInterval(rng, n, 2, 2*n, 6)
			start := time.Now()
			res, err := gapsched.MinimizeGaps(in)
			if err != nil {
				continue
			}
			ms += float64(time.Since(start).Microseconds()) / 1000
			states += float64(res.States)
			spans += float64(res.Spans)
		}
		nTable.AddRow(n, ms/float64(reps), states/float64(reps), spans/float64(reps))
	}

	pTable := stats.NewTable("p (n=12)", "mean ms", "mean DP states", "mean spans")
	procs := []int{1, 2, 3, 4, 6, 8}
	if cfg.quick {
		procs = []int{1, 2, 4}
	}
	for _, p := range procs {
		var ms, states, spans float64
		for rep := 0; rep < reps; rep++ {
			in := workload.FeasibleOneInterval(rng, 12, p, 20, 6)
			start := time.Now()
			res, err := gapsched.MinimizeGaps(in)
			if err != nil {
				continue
			}
			ms += float64(time.Since(start).Microseconds()) / 1000
			states += float64(res.States)
			spans += float64(res.Spans)
		}
		pTable.AddRow(p, ms/float64(reps), states/float64(reps), spans/float64(reps))
	}
	return []*stats.Table{nTable, pTable}
}

func runE3(cfg config) []*stats.Table {
	rng := rand.New(rand.NewSource(cfg.seed))
	trials := 80
	if cfg.quick {
		trials = 25
	}
	tb := stats.NewTable("α", "trials", "DP=oracle", "mean power", "mean schedule power")
	for _, alpha := range []float64{0, 0.5, 1, 2, 4, 8} {
		agree := 0
		var powSum, schedSum float64
		cnt := 0
		for trial := 0; trial < trials; trial++ {
			in := workload.FeasibleOneInterval(rng, 7, 2, 10, 4)
			want, _ := exact.PowerOneInterval(in, alpha)
			res, err := gapsched.MinimizePower(in, alpha)
			if err == nil && abs(res.Power-want) < 1e-9 {
				agree++
			}
			if err == nil {
				cnt++
				powSum += res.Power
				schedSum += res.Schedule.PowerCost(alpha)
			}
		}
		tb.AddRow(alpha, trials, boolMark(agree == trials), powSum/float64(max(cnt, 1)), schedSum/float64(max(cnt, 1)))
	}

	// Bridging crossover: two jobs separated by a gap of length g are
	// bridged iff g < α (a tie costs the same either way).
	cross := stats.NewTable("gap g", "α", "optimal power", "decision", "matches g vs α rule")
	for _, g := range []int{1, 2, 3, 5} {
		for _, alpha := range []float64{1, 2, 4} {
			in := sched.NewInstance([]sched.Job{
				{Release: 0, Deadline: 0}, {Release: g + 1, Deadline: g + 1},
			})
			res, err := gapsched.MinimizePower(in, alpha)
			if err != nil {
				continue
			}
			bridged := abs(res.Power-(2+alpha+float64(g))) < 1e-9
			slept := abs(res.Power-(2+2*alpha)) < 1e-9
			decision := "bridge"
			switch {
			case bridged && slept:
				decision = "tie"
			case slept:
				decision = "sleep"
			}
			rule := (float64(g) < alpha && bridged) || (float64(g) > alpha && slept) || (float64(g) == alpha && bridged && slept)
			cross.AddRow(g, alpha, res.Power, decision, boolMark(rule))
		}
	}
	return []*stats.Table{tb, cross}
}

func runE12(cfg config) []*stats.Table {
	rng := rand.New(rand.NewSource(cfg.seed))
	trials := 150
	if cfg.quick {
		trials = 40
	}
	agree := 0
	for trial := 0; trial < trials; trial++ {
		in := workload.OneInterval(rng, 1+rng.Intn(9), 12, 5)
		want, feasible := exact.SpansOneInterval(in)
		res, err := gapsched.MinimizeGaps(in)
		switch {
		case !feasible && err == gapsched.ErrInfeasible:
			agree++
		case feasible && err == nil && res.Spans == want:
			agree++
		}
	}
	check := stats.NewTable("check", "trials", "all agree")
	check.AddRow("p=1 DP vs oracle", trials, boolMark(agree == trials))

	scale := stats.NewTable("n (p=1)", "mean ms", "mean DP states", "mean gaps")
	sizes := []int{8, 16, 24, 32, 40}
	reps := 5
	if cfg.quick {
		sizes = []int{8, 16, 24}
		reps = 3
	}
	for _, n := range sizes {
		var ms, states, gaps float64
		for rep := 0; rep < reps; rep++ {
			in := workload.FeasibleOneInterval(rng, n, 1, 3*n, 6)
			start := time.Now()
			res, err := gapsched.MinimizeGaps(in)
			if err != nil {
				continue
			}
			ms += float64(time.Since(start).Microseconds()) / 1000
			states += float64(res.States)
			gaps += float64(res.Gaps)
		}
		scale.AddRow(n, ms/float64(reps), states/float64(reps), gaps/float64(reps))
	}
	return []*stats.Table{check, scale}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
