package main

// Experiment E24: trace replay against the daemon's live SLO engine.
// A recorded arrival trace (workload.RecordBursty, round-tripped
// through the CSV adapter so the experiment exercises the same parser
// an operator's recording would) is replayed open-loop against a live
// gapschedd instance at the recorded rate and at scaled rates. The
// client measures every request's latency externally; the daemon
// measures the same traffic through its rolling-window SLO tracker.
// The table cross-checks the two views: the daemon's sliding p99 must
// land in the same log₂ bucket as the externally measured p99 (the
// histogram's native resolution), and the daemon's ok/degraded verdict
// must match the verdict computed from the external measurements
// against the same objectives.

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/http/httptrace"
	"sort"
	"sync"
	"time"

	gapsched "repro"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/service"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register("E24", "Trace replay against live SLO objectives", runE24)
}

// e24MakeTrace records a bursty arrival trace over a pool of feasible
// instances and round-trips it through the CSV adapter.
func e24MakeTrace(seed int64, distinct, n, bursts, perBurst int, burstGap, withinGap time.Duration) workload.Trace {
	rng := rand.New(rand.NewSource(seed))
	pool := make([]sched.Instance, distinct)
	for i := range pool {
		for {
			in := workload.Bursty(rng, n, 3, 6*n, 4, 5)
			in.Procs = 2
			if gapsched.Feasible(in) {
				pool[i] = in
				break
			}
		}
	}
	trace := workload.RecordBursty(rng, pool, bursts, perBurst, burstGap, withinGap)
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf); err != nil {
		panic(err)
	}
	parsed, err := workload.ParseTrace(&buf)
	if err != nil {
		panic(err)
	}
	return parsed
}

// e24Result is one replay lane's external and daemon-side measurements.
type e24Result struct {
	requests  int
	errors    int
	extP50    time.Duration
	extP99    time.Duration
	rep       service.SLOReport
	daemonP99 time.Duration
}

// e24Warm establishes n keep-alive connections (via the uninstrumented
// /healthz, invisible to the SLO windows) so TCP setup never lands in
// a measured replay latency.
func e24Warm(client *http.Client, url string, n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if resp, err := client.Get(url + "/healthz"); err == nil {
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
}

// e24Replay replays the trace open-loop against a fresh daemon and
// returns both measurement sides. Arrivals follow the recorded
// offsets; completions never delay arrivals. External latency is
// measured to the first response byte on a pre-warmed connection, so
// the comparison with the daemon's handler-side view is not skewed by
// connection setup or client-side scheduling on a loaded machine.
func e24Replay(trace workload.Trace, cfg service.Config) e24Result {
	srv := service.New(cfg)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        1024,
		MaxIdleConnsPerHost: 1024,
	}}
	defer client.CloseIdleConnections()
	e24Warm(client, ts.URL, 16)

	steps := trace.Instances(2)
	lats := make([]time.Duration, len(steps))
	errs := make([]bool, len(steps))
	var wg sync.WaitGroup
	start := time.Now()
	for i, step := range steps {
		if d := time.Until(start.Add(step.At)); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int, in sched.Instance) {
			defer wg.Done()
			var buf bytes.Buffer
			req := sched.SolveRequest{Objective: sched.WireGaps, Procs: in.Procs, Jobs: in.Jobs}
			if err := json.NewEncoder(&buf).Encode(req); err != nil {
				errs[i] = true
				return
			}
			hreq, err := http.NewRequest("POST", ts.URL+"/v1/solve", &buf)
			if err != nil {
				errs[i] = true
				return
			}
			hreq.Header.Set("Content-Type", "application/json")
			var firstByte time.Time
			hreq = hreq.WithContext(httptrace.WithClientTrace(hreq.Context(), &httptrace.ClientTrace{
				GotFirstResponseByte: func() { firstByte = time.Now() },
			}))
			t0 := time.Now()
			resp, err := client.Do(hreq)
			done := time.Now()
			if err != nil {
				errs[i] = true
				lats[i] = done.Sub(t0)
				return
			}
			resp.Body.Close()
			if firstByte.IsZero() {
				firstByte = done
			}
			lats[i] = firstByte.Sub(t0)
			errs[i] = resp.StatusCode >= 500
		}(i, step.Instance)
	}
	wg.Wait()

	res := e24Result{requests: len(steps)}
	for _, e := range errs {
		if e {
			res.errors++
		}
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := func(q float64) time.Duration {
		if len(sorted) == 0 {
			return 0
		}
		i := int(q*float64(len(sorted))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	res.extP50, res.extP99 = rank(0.5), rank(0.99)

	// The daemon's own view of the same traffic, through its rolling
	// windows, before the server is torn down.
	hresp, err := client.Get(ts.URL + "/v1/debug/slo")
	if err == nil {
		json.NewDecoder(hresp.Body).Decode(&res.rep)
		hresp.Body.Close()
	}
	if ep, ok := res.rep.Endpoints["solve"]; ok {
		res.daemonP99 = time.Duration(ep.P99Seconds * float64(time.Second))
	}
	return res
}

// e24ExternalVerdict evaluates the lane's objectives over the external
// measurements — the same arithmetic the daemon applies to its windows.
func e24ExternalVerdict(res e24Result, p99Target time.Duration, errTarget float64) string {
	if p99Target > 0 && res.extP99 > p99Target {
		return service.SLOStatusDegraded
	}
	if errTarget > 0 && res.requests > 0 &&
		float64(res.errors)/float64(res.requests) > errTarget {
		return service.SLOStatusDegraded
	}
	return service.SLOStatusOK
}

func runE24(cfg config) []*stats.Table {
	distinct, n, bursts, perBurst := 8, 16, 12, 10
	burstGap, withinGap := 12*time.Millisecond, 400*time.Microsecond
	if cfg.quick {
		distinct, n, bursts, perBurst = 5, 12, 6, 6
	}
	trace := e24MakeTrace(cfg.seed, distinct, n, bursts, perBurst, burstGap, withinGap)

	lanes := []struct {
		name      string
		rate      float64
		p99Target time.Duration
		errTarget float64
	}{
		// The recorded rate against a generous objective: healthy on
		// both sides.
		{"1x generous", 1, 2 * time.Second, 0.05},
		// The recorded rate against an unattainable p99: degraded on
		// both sides.
		{"1x tight", 1, time.Nanosecond, 0.05},
		// Compressed replay: the same trace at 4x the recorded rate.
		{"4x generous", 4, 2 * time.Second, 0.05},
	}

	tb := stats.NewTable("lane", "rate", "requests", "errors", "ext p50 µs", "ext p99 µs",
		"daemon p99 µs", "same log2 bucket", "budget left", "daemon verdict", "external verdict", "verdicts agree")
	for _, lane := range lanes {
		cfg := service.Config{
			// The first request of each dispatch waits the whole
			// coalescing window, so a 20 ms window floors the tail
			// latency both sides measure a few ms above the 16384 µs
			// bucket boundary with >10 ms of headroom below the next —
			// scheduler jitter on a loaded machine stays small against
			// both edges, keeping the bucket cross-check meaningful.
			Window:        20 * time.Millisecond,
			CacheCapacity: 1 << 15,
			SolveTimeout:  time.Minute,
			SLOLatencyP99: lane.p99Target,
			SLOErrorRate:  lane.errTarget,
			SLOWindow:     5 * time.Minute, // the whole replay stays inside one window
		}
		// A p99 is still a tail order statistic: on a loaded machine a
		// single straddling sample can split the buckets. Re-replaying
		// is cheap, so a lane gets up to three attempts — a systematic
		// disagreement (a real regression) fails all of them.
		var res e24Result
		var ext string
		var sameBucket bool
		for attempt := 0; attempt < 3; attempt++ {
			res = e24Replay(trace.Scale(lane.rate), cfg)
			ext = e24ExternalVerdict(res, lane.p99Target, lane.errTarget)
			sameBucket = obs.BucketIndex(res.daemonP99) == obs.BucketIndex(res.extP99)
			if sameBucket && res.rep.Status == ext {
				break
			}
		}
		tb.AddRow(lane.name, lane.rate, res.requests, res.errors,
			float64(res.extP50.Microseconds()), float64(res.extP99.Microseconds()),
			float64(res.daemonP99.Microseconds()), boolMark(sameBucket),
			res.rep.ErrorBudgetRemaining, res.rep.Status, ext,
			boolMark(res.rep.Status == ext))
	}
	return []*stats.Table{tb}
}
