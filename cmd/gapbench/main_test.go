package main

import (
	"strings"
	"testing"
)

// TestAllExperimentsQuick runs every registered experiment at quick
// sizes and checks each produces at least one non-empty table. This is
// the harness's own smoke suite — the scientific assertions live in the
// package tests; here we guard against drift between the registry and
// the experiment implementations.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test is not short")
	}
	cfg := config{seed: 1, quick: true}
	seen := map[string]bool{}
	for _, e := range registry {
		if seen[e.id] {
			t.Fatalf("duplicate experiment id %s", e.id)
		}
		seen[e.id] = true
		tables := e.run(cfg)
		if len(tables) == 0 {
			t.Fatalf("%s produced no tables", e.id)
		}
		for ti, tb := range tables {
			if tb.Len() == 0 {
				t.Fatalf("%s table %d is empty", e.id, ti)
			}
			var b strings.Builder
			tb.Render(&b)
			if strings.Contains(b.String(), "NO") {
				t.Fatalf("%s table %d reports a failed invariant:\n%s", e.id, ti, b.String())
			}
		}
	}
	for _, id := range []string{"E1", "E4", "E6", "E9", "E12", "E15"} {
		if !seen[id] {
			t.Fatalf("experiment %s missing from registry", id)
		}
	}
}

func TestLessID(t *testing.T) {
	if !lessID("E2", "E10") {
		t.Fatal("numeric ordering broken")
	}
	if lessID("E10", "E2") {
		t.Fatal("numeric ordering broken (reverse)")
	}
}

func TestBoolMark(t *testing.T) {
	if boolMark(true) != "yes" || boolMark(false) != "NO" {
		t.Fatal("boolMark labels changed — update TestAllExperimentsQuick")
	}
}
