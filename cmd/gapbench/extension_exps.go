package main

// Experiments E13–E15: the §2 arithmetic corollary, the online
// power-down baselines the paper builds on, and ablations of the design
// choices called out in DESIGN.md.

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/arith"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/multiinterval"
	"repro/internal/powerdown"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register("E13", "§2 corollary: homogeneous arithmetic instances solved exactly via Theorem 1", runE13)
	register("E14", "online power-down baselines vs offline optimum ([ISG03]/[AIS04] context)", runE14)
	register("E15", "ablations: candidate-grid pruning and packing search depth", runE15)
}

func runE13(cfg config) []*stats.Table {
	rng := rand.New(rand.NewSource(cfg.seed))
	trials := 40
	if cfg.quick {
		trials = 12
	}
	tb := stats.NewTable("p (terms)", "trials", "arith = oracle", "mean spans")
	for _, p := range []int{1, 2, 3} {
		agree, cnt := 0, 0
		var spans float64
		for trial := 0; trial < trials; trial++ {
			in := workload.FeasibleOneInterval(rng, 2+rng.Intn(5), p, 8, 3)
			mi, _ := sched.LayOut(in)
			res, err := arith.Solve(mi)
			if err != nil {
				continue
			}
			cnt++
			want, ok := exact.SpansMulti(mi)
			if ok && res.Spans == want {
				agree++
			}
			spans += float64(res.Spans)
		}
		tb.AddRow(p, cnt, boolMark(agree == cnt), spans/float64(max(cnt, 1)))
	}
	return []*stats.Table{tb}
}

func runE14(cfg config) []*stats.Table {
	rng := rand.New(rand.NewSource(cfg.seed))
	trials := 80
	if cfg.quick {
		trials = 25
	}
	policies := []powerdown.Policy{
		powerdown.SkiRental{},
		powerdown.RandomizedExp{},
		powerdown.Threshold{Tau: 1},
	}
	tb := stats.NewTable("policy", "α", "worst gap ratio", "theory", "mean EDF-schedule ratio")
	for _, p := range policies {
		for _, alpha := range []float64{1, 3} {
			var ratios []float64
			for trial := 0; trial < trials; trial++ {
				in := workload.FeasibleOneInterval(rng, 2+rng.Intn(10), 1, 20, 5)
				rep, ok := powerdown.EvaluateEDF(in, alpha, p)
				if !ok {
					continue
				}
				ratios = append(ratios, rep.Ratio)
			}
			theory := "-"
			switch p.(type) {
			case powerdown.SkiRental:
				theory = "2"
			case powerdown.RandomizedExp:
				theory = "e/(e−1) ≈ 1.582"
			}
			tb.AddRow(p.Name(), alpha, powerdown.CompetitiveRatio(p, alpha, 400), theory,
				stats.Summarize(ratios).Mean)
		}
	}
	return []*stats.Table{tb}
}

func runE15(cfg config) []*stats.Table {
	rng := rand.New(rand.NewSource(cfg.seed))
	reps := 6
	if cfg.quick {
		reps = 3
	}
	// Ablation 1: anchor grid (Prop 2.1) vs full-horizon grid. Sparse
	// instances (wide horizon) show the pruning's value; both must agree
	// on the optimum.
	// Wide windows matter: with narrow windows the job's own window
	// already clamps the candidate times and the grids coincide.
	grid := stats.NewTable("n", "horizon", "anchor states", "full states", "anchor ms", "full ms", "same optimum")
	for _, shape := range [][2]int{{6, 120}, {8, 240}, {10, 400}} {
		n, horizon := shape[0], shape[1]
		var aStates, fStates, aMS, fMS float64
		same := true
		for rep := 0; rep < reps; rep++ {
			in := workload.FeasibleOneInterval(rng, n, 1, horizon, horizon/2)
			start := time.Now()
			a, errA := core.SolveGapsOpt(in, core.Options{})
			aMS += float64(time.Since(start).Microseconds()) / 1000
			start = time.Now()
			f, errF := core.SolveGapsOpt(in, core.Options{FullGrid: true})
			fMS += float64(time.Since(start).Microseconds()) / 1000
			if errA != nil || errF != nil || a.Spans != f.Spans {
				same = false
				continue
			}
			aStates += float64(a.States)
			fStates += float64(f.States)
		}
		grid.AddRow(n, horizon, aStates/float64(reps), fStates/float64(reps),
			aMS/float64(reps), fMS/float64(reps), boolMark(same))
	}

	// Ablation 2: packing exchange depth in the Theorem 3 pipeline.
	trials := 40
	if cfg.quick {
		trials = 12
	}
	depth := stats.NewTable("search depth", "trials", "mean power ratio", "max power ratio")
	const alpha = 2.0
	for _, d := range []int{1, 2} {
		var ratios []float64
		r := rand.New(rand.NewSource(cfg.seed + 100))
		for trial := 0; trial < trials; trial++ {
			mi := workload.FeasibleMultiInterval(r, 2+r.Intn(8), 1+r.Intn(3), 1+r.Intn(2), 12)
			opt, ok := exact.PowerMulti(mi, alpha)
			if !ok {
				continue
			}
			ms, _, err := multiinterval.ApproxPower(mi, alpha, multiinterval.Options{SearchDepth: d})
			if err != nil {
				continue
			}
			ratios = append(ratios, ms.PowerCost(alpha)/opt)
		}
		s := stats.Summarize(ratios)
		depth.AddRow(d, len(ratios), s.Mean, s.Max)
	}
	_ = math.Sqrt // keep math import if tables change
	return []*stats.Table{grid, depth}
}
