package main

// Experiment E20: the heuristic solver tier. Three tables:
//
//  1. Scale — the greedy tier (ModeHeuristic) on the cmd/gapgen stress
//     profiles at sizes far beyond the exact DP's reach (n up to 10^5).
//     Every answer is a feasible schedule with a certified optimality
//     gap: the table reports the measured cost, the lower-bound
//     certificate, and their ratio.
//
//  2. The exact wall — single-fragment dense instances solved by both
//     tiers. The exact DP's wall-clock grows steeply with fragment
//     size (its a-priori estimate, prep.StateEstimate, alongside),
//     while the heuristic stays near-linear: by n = 800 the greedy is
//     already orders of magnitude faster, and extrapolating the exact
//     trend to n = 10^5 exceeds any bench budget — which is exactly
//     why table 1 has no exact column.
//
//  3. Auto — ModeAuto on a mixed instance (many small clusters plus
//     one oversized fragment). Under the default StateBudget the small
//     fragments stay exact and only the oversized one goes to the
//     greedy, keeping the aggregate certificate tight; with an
//     unbounded budget ModeAuto must be bit-identical to ModeExact.

import (
	"math"
	"math/rand"
	"time"

	gapsched "repro"
	"repro/internal/prep"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register("E20", "Heuristic tier: scale, certificates, and adaptive mode", runE20)
}

func runE20(cfg config) []*stats.Table {
	return []*stats.Table{
		e20Scale(cfg),
		e20ExactWall(cfg),
		e20Auto(cfg),
	}
}

// e20Cost extracts the configured objective's cost.
func e20Cost(s gapsched.Solver, sol gapsched.Solution) float64 {
	return s.Objective.Cost(sol)
}

func e20Scale(cfg config) *stats.Table {
	sizes := []int{10_000, 100_000}
	if cfg.quick {
		sizes = []int{2_000, 10_000}
	}
	tb := stats.NewTable("profile", "objective", "n", "fragments",
		"heur ms", "cost", "lower bound", "cost/LB", "feasible")
	for _, profile := range workload.StressProfiles {
		for _, n := range sizes {
			rng := rand.New(rand.NewSource(cfg.seed))
			in, err := workload.Stress(rng, profile, n, 2)
			if err != nil {
				panic(err)
			}
			for _, m := range []struct {
				name   string
				solver gapsched.Solver
			}{
				{"gaps", gapsched.Solver{Mode: gapsched.ModeHeuristic}},
				{"power α=4", gapsched.Solver{Mode: gapsched.ModeHeuristic, Objective: gapsched.ObjectivePower, Alpha: 4}},
			} {
				t0 := time.Now()
				sol, err := m.solver.Solve(in)
				el := time.Since(t0)
				if err != nil {
					panic(err)
				}
				cost := e20Cost(m.solver, sol)
				tb.AddRow(profile, m.name, n, sol.Subinstances,
					float64(el.Microseconds())/1000, cost, sol.LowerBound, cost/sol.LowerBound,
					boolMark(sol.Schedule.Validate(in) == nil))
			}
		}
	}
	return tb
}

func e20ExactWall(cfg config) *stats.Table {
	sizes := []int{200, 400, 800}
	if cfg.quick {
		sizes = []int{100, 200}
	}
	tb := stats.NewTable("dense n", "state estimate", "exact ms", "DP states",
		"heur ms", "speedup", "exact cost", "heur cost", "cost/LB")
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(cfg.seed))
		in := workload.StressDense(rng, n, 2)
		est := prep.StateEstimate(in)

		t0 := time.Now()
		ex, err := gapsched.Solver{}.Solve(in)
		exEl := time.Since(t0)
		if err != nil {
			panic(err)
		}
		t0 = time.Now()
		h, err := gapsched.Solver{Mode: gapsched.ModeHeuristic}.Solve(in)
		hEl := time.Since(t0)
		if err != nil {
			panic(err)
		}
		tb.AddRow(n, est, float64(exEl.Microseconds())/1000, ex.States,
			float64(hEl.Microseconds())/1000, float64(exEl)/float64(hEl),
			ex.Spans, h.Spans, float64(h.Spans)/h.LowerBound)
	}
	return tb
}

// e20Mixed builds the mixed instance: small exact-friendly clusters
// plus one fragment big enough to blow the default budget.
func e20Mixed(seed int64, clusters, perCluster, bigN int) gapsched.Instance {
	rng := rand.New(rand.NewSource(seed))
	var jobs []sched.Job
	for c := 0; c < clusters; c++ {
		base := c * 200
		for k := 0; k < perCluster; k++ {
			r := base + k + rng.Intn(3)
			jobs = append(jobs, sched.Job{Release: r, Deadline: r + 2 + rng.Intn(4)})
		}
	}
	big := workload.StressDense(rng, bigN, 1)
	off := clusters * 200
	for _, j := range big.Jobs {
		jobs = append(jobs, sched.Job{Release: j.Release + off, Deadline: j.Deadline + off})
	}
	return gapsched.NewInstance(jobs)
}

func e20Auto(cfg config) *stats.Table {
	clusters, perCluster, bigN := 12, 8, 400
	if cfg.quick {
		clusters, bigN = 6, 200
	}
	in := e20Mixed(cfg.seed, clusters, perCluster, bigN)

	tb := stats.NewTable("objective", "mode", "budget", "ms",
		"heur frags", "of", "cost", "lower bound", "cost/LB", "= exact")
	for _, m := range []struct {
		name string
		base gapsched.Solver
	}{
		{"gaps", gapsched.Solver{}},
		{"power α=3", gapsched.Solver{Objective: gapsched.ObjectivePower, Alpha: 3}},
	} {
		t0 := time.Now()
		ex, err := m.base.Solve(in)
		exEl := time.Since(t0)
		if err != nil {
			panic(err)
		}
		exCost := e20Cost(m.base, ex)
		tb.AddRow(m.name, "exact", "", float64(exEl.Microseconds())/1000,
			ex.HeuristicFragments, ex.Subinstances, exCost, ex.LowerBound, exCost/ex.LowerBound, boolMark(true))

		for _, cfg := range []struct {
			label  string
			budget int
		}{
			{"default", 0},
			{"unbounded", math.MaxInt},
		} {
			s := m.base
			s.Mode, s.StateBudget = gapsched.ModeAuto, cfg.budget
			t0 = time.Now()
			sol, err := s.Solve(in)
			el := time.Since(t0)
			if err != nil {
				panic(err)
			}
			cost := e20Cost(s, sol)
			tb.AddRow(m.name, "auto", cfg.label, float64(el.Microseconds())/1000,
				sol.HeuristicFragments, sol.Subinstances, cost, sol.LowerBound, cost/sol.LowerBound,
				boolMark(cost == exCost))
		}
	}
	return tb
}
