// Command gapbench regenerates the experiment tables of DESIGN.md §4:
// one experiment per theorem of the paper (see DESIGN.md §4).
//
// Usage:
//
//	gapbench                  # run everything
//	gapbench -exp E1,E4       # a subset
//	gapbench -quick           # smaller sizes / fewer trials
//	gapbench -markdown        # emit GitHub tables
//	gapbench -seed 7          # change the workload seed
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/stats"
)

// experiment is one registered table generator.
type experiment struct {
	id, title string
	run       func(cfg config) []*stats.Table
}

type config struct {
	seed  int64
	quick bool
}

var registry []experiment

func register(id, title string, run func(cfg config) []*stats.Table) {
	registry = append(registry, experiment{id: id, title: title, run: run})
}

func main() {
	var (
		exps     = flag.String("exp", "all", "comma-separated experiment ids (E1..E24) or all")
		quick    = flag.Bool("quick", false, "smaller sizes and fewer trials")
		markdown = flag.Bool("markdown", false, "emit markdown tables")
		seed     = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	want := map[string]bool{}
	if *exps != "all" {
		for _, id := range strings.Split(*exps, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	sort.Slice(registry, func(a, b int) bool { return lessID(registry[a].id, registry[b].id) })

	cfg := config{seed: *seed, quick: *quick}
	ran := 0
	for _, e := range registry {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		ran++
		fmt.Printf("== %s: %s ==\n", e.id, e.title)
		for _, tb := range e.run(cfg) {
			render(tb, *markdown, os.Stdout)
			fmt.Println()
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "gapbench: no experiment matches %q\n", *exps)
		os.Exit(2)
	}
}

func lessID(a, b string) bool {
	var x, y int
	fmt.Sscanf(a, "E%d", &x)
	fmt.Sscanf(b, "E%d", &y)
	return x < y
}

func render(tb *stats.Table, markdown bool, w io.Writer) {
	if markdown {
		tb.Markdown(w)
	} else {
		tb.Render(w)
	}
}

// boolMark renders a check for table cells.
func boolMark(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}
