package main

// Experiment E21: the bound-guided exact tier. Two tables:
//
//  1. Bounded vs unpruned — single-fragment dense instances solved by
//     the exact engine with branch-and-bound (greedy incumbent +
//     per-node admissible lower bounds, the default) and with pruning
//     disabled (the NoPrune ablation). The two runs must report the
//     same optimal cost — pruning only skips subproblems that provably
//     cannot beat the incumbent. On the integral gaps objective the
//     bounded run expands roughly half the states and runs 2–3×
//     faster; on power, whose continuous costs leave the memoized
//     subtrees shared across thresholds, the cuts mostly hit nodes
//     that would have been memo hits anyway and the bound bookkeeping
//     costs a few percent — the row is there for the correctness
//     certificate and to keep that trade-off measured.
//
//  2. Admission — ModeAuto under the default budgets on mixed
//     instances whose oversized fragment sits on either side of the
//     pruning-discounted DP admission bound. The n=400 dense class,
//     which the raw estimate used to send to the heuristic, is admitted
//     to the (bounded) exact tier and comes back certified optimal:
//     cost/LB = 1.00 with zero heuristic fragments. The n=800 class
//     still exceeds the discounted DP bound, but its big fragment is
//     single-processor, so the polynomial backend picks it up and the
//     solution is certified exact anyway — E23 measures that tier's
//     reach at n in the thousands.

import (
	"math/rand"
	"strconv"
	"time"

	gapsched "repro"
	"repro/internal/core"
	"repro/internal/poly"
	"repro/internal/prep"
	"repro/internal/sched"
	"repro/internal/workload"

	"repro/internal/stats"
)

func init() {
	register("E21", "Bound-guided exact tier: pruning ablation and admission", runE21)
}

func runE21(cfg config) []*stats.Table {
	return []*stats.Table{
		e21Ablation(cfg),
		e21Admission(cfg),
	}
}

// e21Run is one engine solve of the ablation: its cost, the
// branch-and-bound counters, and the wall-clock.
type e21Run struct {
	cost     float64
	pruned   int
	expanded int
	wall     time.Duration
}

func e21Ablation(cfg config) *stats.Table {
	sizes := []int{400, 800}
	if cfg.quick {
		sizes = []int{100, 200}
	}
	tb := stats.NewTable("objective", "dense n", "bounded ms", "expanded", "pruned",
		"unpruned ms", "expanded (ablation)", "speedup", "costs equal")
	for _, obj := range []struct {
		name  string
		alpha float64
		power bool
	}{
		{"gaps", 0, false},
		{"power α=3", 3, true},
	} {
		for _, n := range sizes {
			rng := rand.New(rand.NewSource(cfg.seed))
			in := workload.StressDense(rng, n, 2)

			run := func(opts core.Options) e21Run {
				t0 := time.Now()
				if obj.power {
					res, err := core.SolvePowerOpt(in, obj.alpha, opts)
					if err != nil {
						panic(err)
					}
					return e21Run{res.Power, res.PrunedStates, res.ExpandedStates, time.Since(t0)}
				}
				res, err := core.SolveGapsOpt(in, opts)
				if err != nil {
					panic(err)
				}
				return e21Run{float64(res.Spans), res.PrunedStates, res.ExpandedStates, time.Since(t0)}
			}
			bounded := run(core.Options{})
			plain := run(core.Options{NoPrune: true})
			tb.AddRow(obj.name, n,
				float64(bounded.wall.Microseconds())/1000, bounded.expanded, bounded.pruned,
				float64(plain.wall.Microseconds())/1000, plain.expanded,
				float64(plain.wall)/float64(bounded.wall),
				boolMark(bounded.cost == plain.cost && plain.pruned == 0))
		}
	}
	return tb
}

// e21Mixed is e20Mixed's shape: small exact-friendly clusters plus one
// dense fragment of bigN jobs whose admission the table probes.
func e21Mixed(seed int64, bigN int) (gapsched.Instance, sched.Instance) {
	rng := rand.New(rand.NewSource(seed))
	var jobs []sched.Job
	for c := 0; c < 8; c++ {
		base := c * 200
		for k := 0; k < 6; k++ {
			r := base + k + rng.Intn(3)
			jobs = append(jobs, sched.Job{Release: r, Deadline: r + 2 + rng.Intn(4)})
		}
	}
	big := workload.StressDense(rng, bigN, 1)
	off := 8 * 200
	for _, j := range big.Jobs {
		jobs = append(jobs, sched.Job{Release: j.Release + off, Deadline: j.Deadline + off})
	}
	return gapsched.NewInstance(jobs), big
}

func e21Admission(cfg config) *stats.Table {
	// Both sizes run even in quick mode: the table needs one fragment on
	// each side of the discounted DP admission bound, the n=800 polynomial
	// solve is fast, and the n=400 exact solve is quick precisely because
	// of the pruning this experiment certifies.
	bigNs := []int{400, 800}
	tb := stats.NewTable("big fragment", "state estimate", "discounted", "ms",
		"heur frags", "of", "cost", "lower bound", "cost/LB", "certified exact")
	for _, bigN := range bigNs {
		in, big := e21Mixed(cfg.seed, bigN)
		est := prep.StateEstimate(big)
		auto := gapsched.Solver{Mode: gapsched.ModeAuto}
		t0 := time.Now()
		sol, err := auto.Solve(in)
		el := time.Since(t0)
		if err != nil {
			panic(err)
		}
		cost := float64(sol.Spans)
		certified := sol.HeuristicFragments == 0 && cost == sol.LowerBound
		// "Certified exact" says yes when the solve's verdict matches what
		// the admission estimates predict: the DP tier takes the fragment
		// when the discounted estimate fits the state budget, and the
		// polynomial backend catches single-processor fragments the DP
		// rejected (the n=800 class lands there).
		dpAdmit := est/32 <= gapsched.DefaultStateBudget
		polyAdmit := poly.Admissible(big) && poly.Estimate(big) <= gapsched.DefaultPolyBudget
		expectExact := dpAdmit || polyAdmit
		tb.AddRow("dense n="+strconv.Itoa(bigN), est, est/32,
			float64(el.Microseconds())/1000,
			sol.HeuristicFragments, sol.Subinstances, cost, sol.LowerBound, cost/sol.LowerBound,
			boolMark(certified == expectExact))
	}
	return tb
}
