package main

// Experiment E22: the online streaming tier and its measured
// competitive ratios. Three tables, each driving gapsched.OpenOnline
// sessions job by job in release order and reading the ratio the
// facade measures (committed-run cost over the certified lower bound
// of the revealed prefix's offline optimum):
//
//  1. Adversarial — the §1 lower-bound family. Any eager online
//     algorithm pays n spans where the offline optimum pays 1, so the
//     measured ratio must meet the analytic Ω(n) bound exactly.
//
//  2. Stress — bursty and sparse device workloads at heuristic-tier
//     sizes. No adversary here, but the measurement must stay honest:
//     the ratio is ≥ 1 by construction (online cost ≥ offline optimum
//     ≥ its certified lower bound), and on these gap-structured
//     families it stays small.
//
//  3. Power-down — duty-cycled periodic workloads with forced slots,
//     where the only online decision is the α-threshold ski-rental
//     rule at each gap. The measured ratio must sit within the
//     analytic worst-case ratio of the threshold policy over the idle
//     lengths the family actually produces (≤ 2 for τ = α).

import (
	"math/rand"
	"sort"

	gapsched "repro"
	"repro/internal/powerdown"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register("E22", "Online tier: measured competitive ratios", runE22)
}

func runE22(cfg config) []*stats.Table {
	return []*stats.Table{
		e22Adversarial(cfg),
		e22Stress(cfg),
		e22Powerdown(cfg),
	}
}

// e22Stream feeds jobs (sorted by release) into a fresh online session
// and returns the final resolved solution.
func e22Stream(s gapsched.Solver, procs int, jobs []sched.Job) gapsched.Solution {
	ordered := append([]sched.Job(nil), jobs...)
	sort.SliceStable(ordered, func(a, b int) bool { return ordered[a].Release < ordered[b].Release })
	ss, err := s.OpenOnline(procs)
	if err != nil {
		panic(err)
	}
	defer ss.Close()
	for _, j := range ordered {
		if _, err := ss.Add(j); err != nil {
			panic(err)
		}
	}
	sol, err := ss.Resolve()
	if err != nil {
		panic(err)
	}
	return sol
}

func e22Adversarial(cfg config) *stats.Table {
	sizes := []int{8, 16, 32, 64}
	if cfg.quick {
		sizes = []int{4, 8}
	}
	tb := stats.NewTable("n", "online spans", "offline LB", "measured ratio", "analytic Ω(n)", "meets bound")
	for _, n := range sizes {
		in := workload.OnlineLowerBound(n)
		sol := e22Stream(gapsched.Solver{}, in.Procs, in.Jobs)
		tb.AddRow(n, sol.Spans, sol.LowerBound, sol.CompetitiveRatio, n,
			boolMark(sol.Spans == n && sol.CompetitiveRatio >= float64(n)-1e-9))
	}
	return tb
}

func e22Stress(cfg config) *stats.Table {
	n := 4000
	if cfg.quick {
		n = 1000
	}
	tb := stats.NewTable("family", "jobs", "procs", "online spans", "offline LB", "measured ratio", "ratio ≥ 1")
	for _, fam := range []struct {
		name string
		gen  func(rng *rand.Rand, n, p int) sched.Instance
	}{
		{"bursty", workload.StressBursty},
		{"sparse", workload.StressSparse},
	} {
		rng := rand.New(rand.NewSource(cfg.seed))
		in := fam.gen(rng, n, 2)
		sol := e22Stream(gapsched.Solver{}, in.Procs, in.Jobs)
		tb.AddRow(fam.name, len(in.Jobs), in.Procs, sol.Spans, sol.LowerBound, sol.CompetitiveRatio,
			boolMark(sol.CompetitiveRatio >= 1-1e-12))
	}
	return tb
}

func e22Powerdown(cfg config) *stats.Table {
	n := 200
	if cfg.quick {
		n = 60
	}
	tb := stats.NewTable("α", "period", "jobs", "online power", "offline LB", "measured ratio",
		"analytic bound", "within bound")
	for _, alpha := range []float64{2, 4} {
		for _, period := range []int{3, 6} {
			rng := rand.New(rand.NewSource(cfg.seed))
			// Forced slots (no jitter, no slack): the schedule is fixed, so
			// the measured ratio isolates the ski-rental gap decisions.
			in := workload.Periodic(rng, n, period, 0, 0)
			sol := e22Stream(gapsched.Solver{Objective: gapsched.ObjectivePower, Alpha: alpha}, in.Procs, in.Jobs)
			bound := powerdown.CompetitiveRatio(powerdown.Threshold{Tau: alpha}, alpha, period-1)
			tb.AddRow(alpha, period, len(in.Jobs), sol.Power, sol.LowerBound, sol.CompetitiveRatio, bound,
				boolMark(sol.CompetitiveRatio <= bound+1e-9))
		}
	}
	return tb
}
