package main

// Experiments E4–E5 and E9–E11: the approximation algorithms and
// baselines (Theorems 3 and 11, [FHKN06], the online lower bound).

import (
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/greedysp"
	"repro/internal/multiinterval"
	"repro/internal/online"
	"repro/internal/restart"
	"repro/internal/setpacking"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register("E4", "Theorem 3 approximation ratio vs exact, per α", runE4)
	register("E5", "Lemma 4 shift bound and Hurkens–Schrijver packing quality", runE5)
	register("E9", "Theorem 11 restart greedy vs exact throughput", runE9)
	register("E10", "[FHKN06] greedy 3-approximation vs exact DP", runE10)
	register("E11", "§1 online lower bound: EDF is Ω(n)-competitive", runE11)
}

func runE4(cfg config) []*stats.Table {
	rng := rand.New(rand.NewSource(cfg.seed))
	trials := 60
	if cfg.quick {
		trials = 20
	}
	tb := stats.NewTable("α", "trials", "mean ratio", "max ratio", "bound 1+(2/3)α", "≤ bound",
		"naive mean", "naive max")
	for _, alpha := range []float64{0.25, 0.5, 1, 2, 4, 8} {
		var ratios, naives []float64
		for trial := 0; trial < trials; trial++ {
			mi := workload.FeasibleMultiInterval(rng, 2+rng.Intn(8), 1+rng.Intn(3), 1+rng.Intn(2), 12)
			opt, ok := exact.PowerMulti(mi, alpha)
			if !ok {
				continue
			}
			ms, _, err := multiinterval.ApproxPower(mi, alpha, multiinterval.Options{SearchDepth: 2})
			if err != nil {
				continue
			}
			ratios = append(ratios, stats.Ratio(ms.PowerCost(alpha), opt))
			if nv, err := multiinterval.NaiveSchedule(mi); err == nil {
				naives = append(naives, stats.Ratio(nv.PowerCost(alpha), opt))
			}
		}
		rs, ns := stats.Summarize(ratios), stats.Summarize(naives)
		bound := multiinterval.Bound(2, 0, alpha)
		tb.AddRow(alpha, len(ratios), rs.Mean, rs.Max, bound, boolMark(rs.Max <= bound+1e-9), ns.Mean, ns.Max)
	}
	return []*stats.Table{tb}
}

func runE5(cfg config) []*stats.Table {
	rng := rand.New(rand.NewSource(cfg.seed))
	trials := 300
	if cfg.quick {
		trials = 80
	}
	// Lemma 4: best shift class covers ≥ (n − M(k−1))/k anchors.
	lem := stats.NewTable("k", "trials", "bound holds", "mean slack (count − bound)")
	for _, k := range []int{2, 3} {
		hold := 0
		var slack []float64
		for trial := 0; trial < trials; trial++ {
			busy := map[int]bool{}
			for i := 0; i < 1+rng.Intn(24); i++ {
				busy[rng.Intn(36)] = true
			}
			var ts []int
			for t := range busy {
				ts = append(ts, t)
			}
			n, m := len(ts), 0
			m = spansOf(ts)
			_, count := multiinterval.ShiftCover(ts, k)
			bound := float64(n-m*(k-1)) / float64(k)
			if float64(count) >= bound-1e-9 {
				hold++
			}
			slack = append(slack, float64(count)-bound)
		}
		lem.AddRow(k, trials, boolMark(hold == trials), stats.Summarize(slack).Mean)
	}

	// Packing quality: local search vs exact on random 3-set instances.
	packTrials := 40
	if cfg.quick {
		packTrials = 15
	}
	pk := stats.NewTable("universe", "sets", "trials", "min LS2/OPT", "mean LS2/OPT", "HS bound 1/2")
	for _, shape := range [][2]int{{10, 8}, {14, 12}, {18, 16}} {
		var ratios []float64
		for trial := 0; trial < packTrials; trial++ {
			in := randomPacking(rng, shape[0], shape[1], 3)
			opt := len(setpacking.Exact(in))
			if opt == 0 {
				continue
			}
			ls := len(setpacking.LocalSearch(in, 2))
			ratios = append(ratios, float64(ls)/float64(opt))
		}
		s := stats.Summarize(ratios)
		pk.AddRow(shape[0], shape[1], len(ratios), s.Min, s.Mean, 0.5)
	}
	return []*stats.Table{lem, pk}
}

func randomPacking(rng *rand.Rand, universe, nSets, size int) setpacking.Instance {
	in := setpacking.Instance{Universe: universe}
	for i := 0; i < nSets; i++ {
		seen := map[int]bool{}
		var s []int
		for len(s) < size {
			e := rng.Intn(universe)
			if !seen[e] {
				seen[e] = true
				s = append(s, e)
			}
		}
		in.Sets = append(in.Sets, s)
	}
	return in
}

func spansOf(ts []int) int {
	if len(ts) == 0 {
		return 0
	}
	sorted := append([]int{}, ts...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	spans := 1
	for i := 1; i < len(sorted); i++ {
		if sorted[i] != sorted[i-1]+1 {
			spans++
		}
	}
	return spans
}

func runE9(cfg config) []*stats.Table {
	rng := rand.New(rand.NewSource(cfg.seed))
	trials := 60
	if cfg.quick {
		trials = 20
	}
	tb := stats.NewTable("n", "budget", "trials", "mean greedy/OPT", "min greedy/OPT", "proof bound 1/(2√n+1)", "≥ bound")
	for _, shape := range [][2]int{{6, 1}, {8, 2}, {10, 2}, {12, 3}} {
		n, budget := shape[0], shape[1]
		var ratios []float64
		ok := true
		for trial := 0; trial < trials; trial++ {
			mi := workload.MultiInterval(rng, n, 1+rng.Intn(3), 1+rng.Intn(2), 14)
			res, err := restart.Greedy(mi, budget)
			if err != nil {
				continue
			}
			opt := exact.MaxThroughput(mi, budget)
			if opt == 0 {
				continue
			}
			r := float64(res.Jobs()) / float64(opt)
			ratios = append(ratios, r)
			if r < 1/(2*math.Sqrt(float64(n))+1)-1e-9 {
				ok = false
			}
		}
		s := stats.Summarize(ratios)
		tb.AddRow(n, budget, len(ratios), s.Mean, s.Min, 1/(2*math.Sqrt(float64(n))+1), boolMark(ok))
	}
	return []*stats.Table{tb}
}

func runE10(cfg config) []*stats.Table {
	rng := rand.New(rand.NewSource(cfg.seed))
	trials := 100
	if cfg.quick {
		trials = 30
	}
	tb := stats.NewTable("n", "trials", "mean spans ratio", "max spans ratio", "≤ 3")
	for _, n := range []int{4, 6, 8, 10} {
		var ratios []float64
		for trial := 0; trial < trials; trial++ {
			in := workload.FeasibleOneInterval(rng, n, 1, 14, 5)
			res, err := greedysp.Solve(in)
			if err != nil {
				continue
			}
			opt, err := core.SolveGaps(in)
			if err != nil {
				continue
			}
			ratios = append(ratios, stats.Ratio(float64(res.Spans), float64(opt.Spans)))
		}
		s := stats.Summarize(ratios)
		tb.AddRow(n, len(ratios), s.Mean, s.Max, boolMark(s.Max <= 3+1e-9))
	}
	return []*stats.Table{tb}
}

func runE11(cfg config) []*stats.Table {
	tb := stats.NewTable("n", "online spans (EDF)", "offline spans", "competitive ratio")
	sizes := []int{2, 4, 8, 16, 32, 64}
	if cfg.quick {
		sizes = []int{2, 4, 8, 16}
	}
	for _, n := range sizes {
		rep, err := online.LowerBound(n)
		if err != nil {
			continue
		}
		tb.AddRow(n, rep.OnlineSpans, rep.OfflineSpans, rep.Ratio)
	}
	return []*stats.Table{tb}
}
