package main

// Experiment E23: the polynomial single-machine backend. Two tables:
//
//  1. Crossover — single-fragment dense single-processor instances
//     solved by both exact backends head to head: the index-space DP
//     engine (internal/core) and the polynomial backend
//     (internal/poly). Measured honestly, there is no wall-clock
//     crossover: at p = 1 the two are the same dynamic program (the
//     poly backend just specializes the level dimensions away), they
//     expand identical state counts, and their times track within
//     noise. The crossover is in admission: the DP tier is priced by
//     the index-space shape G²·(n+1)·8, which blows the default budget
//     around n ≈ 800, while the poly backend is priced by its honest
//     lower-degree G·(n+1) — so the same fragment the DP tier must
//     reject is admissible to poly with room to spare. The table
//     records both estimates next to the (equal) wall times.
//
//  2. Reach — ModeAuto under the default budgets on mixed instances
//     whose oversized single-processor fragment sits far beyond the DP
//     tier's discounted admission bound (n in the thousands — the
//     classes E20/E21 used to send to the heuristic). The polynomial
//     backend picks those fragments up, so the whole solution comes
//     back certified optimal: cost/LB = 1.00 with zero heuristic
//     fragments, at the recorded wall times.

import (
	"math/rand"
	"strconv"
	"time"

	gapsched "repro"
	"repro/internal/core"
	"repro/internal/poly"
	"repro/internal/prep"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register("E23", "Polynomial exact backend: crossover and admission reach", runE23)
}

func runE23(cfg config) []*stats.Table {
	return []*stats.Table{
		e23Crossover(cfg),
		e23Reach(cfg),
	}
}

func e23Crossover(cfg config) *stats.Table {
	sizes := []int{100, 200, 400, 800}
	if cfg.quick {
		sizes = []int{50, 100}
	}
	tb := stats.NewTable("objective", "dense n", "dp ms", "poly ms", "expanded",
		"dp ≡ poly", "dp est (disc)", "poly est", "dp admits", "poly admits")
	for _, obj := range []struct {
		name  string
		alpha float64
		power bool
	}{
		{"gaps", 0, false},
		{"power α=3", 3, true},
	} {
		for _, n := range sizes {
			rng := rand.New(rand.NewSource(cfg.seed))
			in := workload.StressDense(rng, n, 1)

			t0 := time.Now()
			var dpCost float64
			var dpExpanded int
			if obj.power {
				res, err := core.SolvePower(in, obj.alpha)
				if err != nil {
					panic(err)
				}
				dpCost, dpExpanded = res.Power, res.ExpandedStates
			} else {
				res, err := core.SolveGaps(in)
				if err != nil {
					panic(err)
				}
				dpCost, dpExpanded = float64(res.Spans), res.ExpandedStates
			}
			dpEl := time.Since(t0)

			t0 = time.Now()
			var pres poly.Result
			var err error
			if obj.power {
				pres, err = poly.SolvePower(in, obj.alpha)
			} else {
				pres, err = poly.SolveGaps(in)
			}
			if err != nil {
				panic(err)
			}
			polyEl := time.Since(t0)

			// The admission economics, priced exactly as ModeAuto prices
			// them: the DP estimate discounted for pruning against the
			// state budget, the poly estimate against the poly budget.
			dpEst := prep.StateEstimate(in) / 32
			polyEst := poly.Estimate(in)
			tb.AddRow(obj.name, n,
				float64(dpEl.Microseconds())/1000,
				float64(polyEl.Microseconds())/1000,
				dpExpanded,
				boolMark(dpCost == pres.Cost && dpExpanded == pres.ExpandedStates),
				dpEst, polyEst,
				boolMark(dpEst <= gapsched.DefaultStateBudget),
				boolMark(polyEst <= gapsched.DefaultPolyBudget))
		}
	}
	return tb
}

func e23Reach(cfg config) *stats.Table {
	// The dense classes the DP tier's discounted bound rejects (n ≥ 800,
	// see E21) — previously heuristic, now certified exact through the
	// polynomial backend.
	bigNs := []int{2000, 4000}
	if cfg.quick {
		bigNs = []int{800, 2000}
	}
	tb := stats.NewTable("big fragment", "poly estimate", "budget", "ms",
		"poly frags", "heur frags", "of", "cost", "lower bound", "cost/LB", "certified exact")
	for _, bigN := range bigNs {
		in, big := e21Mixed(cfg.seed, bigN)
		pe := poly.Estimate(big)
		auto := gapsched.Solver{Mode: gapsched.ModeAuto}
		t0 := time.Now()
		sol, err := auto.Solve(in)
		el := time.Since(t0)
		if err != nil {
			panic(err)
		}
		cost := float64(sol.Spans)
		certified := sol.PolyFragments == 1 && sol.HeuristicFragments == 0 && cost == sol.LowerBound
		tb.AddRow("dense n="+strconv.Itoa(bigN), pe, gapsched.DefaultPolyBudget,
			float64(el.Microseconds())/1000,
			sol.PolyFragments, sol.HeuristicFragments, sol.Subinstances,
			cost, sol.LowerBound, cost/sol.LowerBound,
			boolMark(certified))
	}
	return tb
}
