package main

// Experiment E16: the batch-solve facade. A fleet of instances is
// solved through Solver.SolveBatch at increasing worker counts; the
// table reports wall-clock scaling and certifies that the parallel
// results match a sequential solve instance by instance.

import (
	"math"
	"math/rand"
	"runtime"
	"time"

	gapsched "repro"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register("E16", "Batch facade: worker-pool scaling of SolveBatch", runE16)
}

func runE16(cfg config) []*stats.Table {
	rng := rand.New(rand.NewSource(cfg.seed))
	count, n := 64, 12
	if cfg.quick {
		count, n = 16, 8
	}
	ins := make([]gapsched.Instance, count)
	for i := range ins {
		ins[i] = workload.FeasibleOneInterval(rng, n, 2, 3*n, 5)
	}

	tb := stats.NewTable("objective", "instances", "workers", "wall ms", "total DP states", "matches sequential")
	maxWorkers := runtime.GOMAXPROCS(0)
	workerCounts := []int{1}
	if maxWorkers >= 2 {
		workerCounts = append(workerCounts, 2)
	}
	if maxWorkers > 2 {
		workerCounts = append(workerCounts, maxWorkers)
	}
	for _, objective := range []gapsched.Objective{gapsched.ObjectiveGaps, gapsched.ObjectivePower} {
		s := gapsched.Solver{Objective: objective, Alpha: 2}
		seq := make([]gapsched.BatchResult, len(ins))
		for i, in := range ins {
			seq[i].Solution, seq[i].Err = s.Solve(in)
		}
		for _, workers := range workerCounts {
			s.Workers = workers
			start := time.Now()
			batch := s.SolveBatch(ins)
			wall := float64(time.Since(start).Microseconds()) / 1000
			states, match := 0, len(batch) == len(seq)
			for i, r := range batch {
				states += r.Solution.States
				if match && ((r.Err == nil) != (seq[i].Err == nil) ||
					r.Solution.Spans != seq[i].Solution.Spans ||
					math.Abs(r.Solution.Power-seq[i].Solution.Power) > 1e-9) {
					match = false
				}
			}
			tb.AddRow(objective.String(), count, workers, wall, states, boolMark(match))
		}
	}
	return []*stats.Table{tb}
}
