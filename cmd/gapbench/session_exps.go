package main

// Experiment E19: incremental sessions under arrival/departure churn.
// A long-lived instance — many job clusters separated by wide
// forced-idle runs, the paper's device-traffic shape — receives a
// stream of single-job deltas (arrivals into random clusters,
// departures of random live jobs). After every delta the evolving
// optimum is obtained two ways:
//
//   - incremental: Session.Resolve, which re-solves only the fragments
//     the delta touched and reuses every other stored fragment result;
//   - from-scratch: a fresh uncached Solver.Solve of the same snapshot,
//     the way the one-shot pipeline would serve it.
//
// The table reports the per-delta time of both paths, the speedup, how
// many fragments a delta actually re-solved, and the correctness
// invariant: every incremental cost is bit-identical to the
// from-scratch cost.

import (
	"math/rand"
	"time"

	gapsched "repro"
	"repro/internal/stats"
)

func init() {
	register("E19", "Incremental sessions under churn", runE19)
}

// e19Cluster builds one cluster of jobs chained at its base time.
func e19Cluster(rng *rand.Rand, base, jobs int) []gapsched.Job {
	out := make([]gapsched.Job, jobs)
	for k := range out {
		r := base + k + rng.Intn(3)
		out[k] = gapsched.Job{Release: r, Deadline: r + 2 + rng.Intn(3)}
	}
	return out
}

// e19Churn replays deltas through a session and, per delta, a
// from-scratch solve of the same snapshot, timing both.
func e19Churn(seed int64, s gapsched.Solver, clusters, perCluster, spacing, deltas, procs int) (
	row struct {
		jobs, frags              int
		incr, scratch            time.Duration
		resolvedMean, reusedMean float64
		match                    bool
	}) {
	rng := rand.New(rand.NewSource(seed))
	sess, err := s.Open(procs)
	if err != nil {
		panic(err)
	}
	defer sess.Close()
	var live []int
	for c := 0; c < clusters; c++ {
		for _, j := range e19Cluster(rng, spacing*c, perCluster) {
			id, err := sess.Add(j)
			if err != nil {
				panic(err)
			}
			live = append(live, id)
		}
	}
	if _, err := sess.Resolve(); err != nil {
		panic(err)
	}

	scratch := s
	scratch.Cache = nil // from-scratch must not reuse anything

	row.match = true
	cost := func(sol gapsched.Solution) float64 {
		if s.Objective == gapsched.ObjectivePower {
			return sol.Power
		}
		return float64(sol.Spans)
	}
	for d := 0; d < deltas; d++ {
		if d%2 == 0 || len(live) == 0 {
			c := rng.Intn(clusters)
			id, err := sess.Add(gapsched.Job{Release: spacing*c + rng.Intn(4), Deadline: spacing*c + 4 + rng.Intn(4)})
			if err != nil {
				panic(err)
			}
			live = append(live, id)
		} else {
			i := rng.Intn(len(live))
			if err := sess.Remove(live[i]); err != nil {
				panic(err)
			}
			live = append(live[:i], live[i+1:]...)
		}
		snapshot := sess.Instance()

		t0 := time.Now()
		sol, incErr := sess.Resolve()
		row.incr += time.Since(t0)

		t0 = time.Now()
		want, scrErr := scratch.Solve(snapshot)
		row.scratch += time.Since(t0)

		if (incErr == nil) != (scrErr == nil) {
			row.match = false
			continue
		}
		if incErr == nil {
			if cost(sol) != cost(want) {
				row.match = false
			}
			row.resolvedMean += float64(sol.ResolvedFragments)
			row.reusedMean += float64(sol.ReusedFragments)
			row.frags = sol.Subinstances
		}
	}
	row.resolvedMean /= float64(deltas)
	row.reusedMean /= float64(deltas)
	row.jobs = sess.Len()
	return row
}

func runE19(cfg config) []*stats.Table {
	clusters, perCluster, deltas := 16, 8, 120
	if cfg.quick {
		clusters, perCluster, deltas = 8, 5, 40
	}
	const spacing = 40 // wide forced-idle runs between clusters

	tb := stats.NewTable("objective", "procs", "jobs", "fragments", "deltas",
		"incr µs/delta", "scratch µs/delta", "speedup",
		"mean resolved", "mean reused", "costs match scratch")
	for _, m := range []struct {
		name   string
		solver gapsched.Solver
		procs  int
	}{
		{"gaps", gapsched.Solver{}, 1},
		{"gaps", gapsched.Solver{}, 2},
		{"power α=3", gapsched.Solver{Objective: gapsched.ObjectivePower, Alpha: 3}, 1},
	} {
		row := e19Churn(cfg.seed, m.solver, clusters, perCluster, spacing, deltas, m.procs)
		tb.AddRow(m.name, m.procs, row.jobs, row.frags, deltas,
			float64(row.incr.Microseconds())/float64(deltas),
			float64(row.scratch.Microseconds())/float64(deltas),
			float64(row.scratch)/float64(row.incr),
			row.resolvedMean, row.reusedMean, boolMark(row.match))
	}
	return []*stats.Table{tb}
}
