package main

// Experiment E18: the scheduling daemon's request coalescer under
// open-loop load. A generator fires independent /v1/solve requests at
// a fixed arrival rate — duplicate-heavy, drawn from a small pool of
// distinct bursty instances, the paper's recurring device-traffic
// pattern — against two live HTTP servers:
//
//   - per-request: no coalescing window, no cache — every request is
//     solved in isolation, the way a naive service would wrap Solve.
//   - coalesced: requests arriving within a short window are dispatched
//     as one fragment-level SolveBatch over a shared fragment cache, so
//     independent clients hit each other's canonical fragments.
//
// The table reports drain wall-clock, throughput, dispatch counts,
// cache hit rate, and — the correctness invariant — that every served
// cost is bit-identical to a direct Solve of the same instance.

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	gapsched "repro"
	"repro/internal/sched"
	"repro/internal/service"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register("E18", "Service coalescing under open-loop load", runE18)
}

// e18Workload is a duplicate-heavy open-loop request sequence: nReq
// requests over a pool of distinct instances, alternating between the
// gaps and power objectives, with the exact per-request reference
// costs from direct Solve calls.
type e18Workload struct {
	reqs []sched.SolveRequest
	want []float64 // reference cost per request (spans or power)
}

func e18MakeWorkload(seed int64, distinct, n, nReq int) e18Workload {
	rng := rand.New(rand.NewSource(seed))
	pool := make([]gapsched.Instance, distinct)
	for i := range pool {
		for {
			in := workload.Bursty(rng, n, 3, 6*n, 4, 5)
			in.Procs = 2
			if gapsched.Feasible(in) {
				pool[i] = in
				break
			}
		}
	}
	const alpha = 2
	directGaps := make([]float64, distinct)
	directPower := make([]float64, distinct)
	for i, in := range pool {
		gsol, err := (gapsched.Solver{}).Solve(in)
		if err != nil {
			panic(err)
		}
		psol, err := (gapsched.Solver{Objective: gapsched.ObjectivePower, Alpha: alpha}).Solve(in)
		if err != nil {
			panic(err)
		}
		directGaps[i], directPower[i] = float64(gsol.Spans), psol.Power
	}

	w := e18Workload{reqs: make([]sched.SolveRequest, nReq), want: make([]float64, nReq)}
	for i := range w.reqs {
		j := rng.Intn(distinct)
		if i%2 == 0 {
			w.reqs[i] = sched.SolveRequest{Objective: sched.WireGaps, Procs: 2, Jobs: pool[j].Jobs}
			w.want[i] = directGaps[j]
		} else {
			w.reqs[i] = sched.SolveRequest{Objective: sched.WirePower, Alpha: alpha, Procs: 2, Jobs: pool[j].Jobs}
			w.want[i] = directPower[j]
		}
	}
	return w
}

// e18Drive replays the workload open-loop (fixed inter-arrival gap,
// arrivals independent of completions) against a live server and
// reports the drain wall-clock plus whether every response matched its
// direct-solve reference cost.
func e18Drive(cfg service.Config, w e18Workload, gap time.Duration) (wall time.Duration, st service.Stats, match bool) {
	srv := service.New(cfg)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        1024,
		MaxIdleConnsPerHost: 1024,
	}}
	defer client.CloseIdleConnections()

	got := make([]float64, len(w.reqs))
	var wg sync.WaitGroup
	start := time.Now()
	for i, req := range w.reqs {
		if d := time.Until(start.Add(time.Duration(i) * gap)); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			got[i] = e18Post(client, ts.URL+"/v1/solve", req)
		}()
	}
	wg.Wait()
	wall = time.Since(start)

	match = true
	for i := range got {
		if got[i] != w.want[i] {
			match = false
		}
	}
	return wall, srv.Stats(), match
}

// e18Post sends one solve request and extracts its cost under the
// request's own objective; failures come back as NaN so they can never
// match a reference cost.
func e18Post(client *http.Client, url string, req sched.SolveRequest) float64 {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(req); err != nil {
		return math.NaN()
	}
	httpResp, err := client.Post(url, "application/json", &buf)
	if err != nil {
		return math.NaN()
	}
	defer httpResp.Body.Close()
	resp, err := sched.DecodeSolveResponse(httpResp.Body)
	if err != nil || resp.Err != nil {
		return math.NaN()
	}
	if req.Objective == sched.WirePower {
		return resp.Power
	}
	return float64(resp.Spans)
}

func runE18(cfg config) []*stats.Table {
	distinct, n, nReq := 10, 20, 360
	gap := 50 * time.Microsecond
	if cfg.quick {
		distinct, n, nReq = 6, 14, 120
	}
	w := e18MakeWorkload(cfg.seed, distinct, n, nReq)

	modes := []struct {
		name string
		cfg  service.Config
	}{
		// A naive Solve-per-request service: no window, no cache.
		{"per-request", service.Config{CacheCapacity: -1, SolveTimeout: time.Minute}},
		// The coalescing daemon at its default shape.
		{"coalesced", service.Config{
			Window:        2 * time.Millisecond,
			MaxBatch:      64,
			CacheCapacity: 1 << 15,
			SolveTimeout:  time.Minute,
		}},
	}

	tb := stats.NewTable("mode", "requests", "distinct", "arrival gap µs", "wall ms",
		"req/s", "speedup", "dispatches", "mean batch", "cache hit %", "costs match direct")
	var baseWall time.Duration
	for _, m := range modes {
		wall, st, match := e18Drive(m.cfg, w, gap)
		if m.name == "per-request" {
			baseWall = wall
		}
		hitPct := 0.0
		if total := st.Cache.Hits + st.Cache.Misses; total > 0 {
			hitPct = 100 * float64(st.Cache.Hits) / float64(total)
		}
		meanBatch := 0.0
		if st.Dispatches > 0 {
			meanBatch = float64(nReq) / float64(st.Dispatches)
		}
		tb.AddRow(m.name, nReq, distinct, float64(gap.Microseconds()),
			float64(wall.Microseconds())/1000,
			float64(nReq)/wall.Seconds(),
			float64(baseWall)/float64(wall),
			st.Dispatches, meanBatch, hitPct, boolMark(match))
	}
	return []*stats.Table{tb}
}
