// Command gapgen generates scheduling instances as JSON on stdout.
//
// Usage:
//
//	gapgen -kind one-interval -n 20 -p 2 -horizon 40 -window 8 -seed 1
//	gapgen -kind multi-interval -n 12 -intervals 3 -ivlen 2 -horizon 30
//	gapgen -kind bursty -n 20 -bursts 3 -horizon 60
//	gapgen -kind periodic -n 10 -period 6 -jitter 2 -slack 4
//	gapgen -kind online-lb -n 8
//
// All kinds emit the sched.File JSON envelope consumed by cmd/gapsched.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/sched"
	"repro/internal/workload"
)

func main() {
	var (
		kind      = flag.String("kind", "one-interval", "one-interval | multi-interval | bursty | periodic | online-lb | disjoint-unit")
		n         = flag.Int("n", 10, "number of jobs")
		p         = flag.Int("p", 1, "number of processors (one-interval kinds)")
		horizon   = flag.Int("horizon", 24, "release-time horizon")
		window    = flag.Int("window", 6, "maximum window length")
		intervals = flag.Int("intervals", 2, "intervals per job (multi-interval)")
		ivlen     = flag.Int("ivlen", 2, "interval length (multi-interval)")
		bursts    = flag.Int("bursts", 3, "burst count (bursty)")
		period    = flag.Int("period", 6, "period (periodic)")
		jitter    = flag.Int("jitter", 2, "release jitter (periodic)")
		slack     = flag.Int("slack", 4, "deadline slack (periodic)")
		alpha     = flag.Float64("alpha", 2, "transition cost recorded in the file")
		seed      = flag.Int64("seed", 1, "random seed")
		feasible  = flag.Bool("feasible", true, "redraw until the instance is feasible")
	)
	flag.Parse()
	rng := rand.New(rand.NewSource(*seed))

	var f sched.File
	f.Alpha = *alpha
	switch *kind {
	case "one-interval":
		var in sched.Instance
		if *feasible {
			in = workload.FeasibleOneInterval(rng, *n, *p, *horizon, *window)
		} else {
			in = workload.Multiproc(rng, *n, *p, *horizon, *window)
		}
		f.Kind, f.Instance = sched.KindOneInterval, &in
	case "bursty":
		in := workload.Bursty(rng, *n, *bursts, *horizon, 4, *window)
		in.Procs = *p
		f.Kind, f.Instance = sched.KindOneInterval, &in
	case "periodic":
		in := workload.Periodic(rng, *n, *period, *jitter, *slack)
		in.Procs = *p
		f.Kind, f.Instance = sched.KindOneInterval, &in
	case "online-lb":
		in := workload.OnlineLowerBound(*n)
		f.Kind, f.Instance = sched.KindOneInterval, &in
	case "multi-interval":
		var mi sched.MultiInstance
		if *feasible {
			mi = workload.FeasibleMultiInterval(rng, *n, *intervals, *ivlen, *horizon)
		} else {
			mi = workload.MultiInterval(rng, *n, *intervals, *ivlen, *horizon)
		}
		f.Kind, f.Multi = sched.KindMultiInterval, &mi
	case "disjoint-unit":
		mi := workload.DisjointUnit(rng, *n, *intervals)
		f.Kind, f.Multi = sched.KindMultiInterval, &mi
	default:
		fmt.Fprintf(os.Stderr, "gapgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	if err := f.WriteJSON(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "gapgen: %v\n", err)
		os.Exit(1)
	}
}
