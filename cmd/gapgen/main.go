// Command gapgen generates scheduling instances as JSON on stdout.
//
// Usage:
//
//	gapgen -kind one-interval -n 20 -p 2 -horizon 40 -window 8 -seed 1
//	gapgen -kind multi-interval -n 12 -intervals 3 -ivlen 2 -horizon 30
//	gapgen -kind bursty -n 20 -bursts 3 -horizon 60
//	gapgen -kind periodic -n 10 -period 6 -jitter 2 -slack 4
//	gapgen -kind online-lb -n 8
//	gapgen -profile bursty -n 100000 -p 4 -seed 7
//
// -profile bursty|sparse|dense overrides -kind with a large stress
// instance for the heuristic solver tier (window shapes matching the
// paper's device workloads; feasible by construction, so no redraw
// loop bounds n). These are the instances experiment E20 runs on.
//
// All kinds emit the sched.File JSON envelope consumed by cmd/gapsched.
// Unknown flags, stray positional arguments, and unknown kinds or
// profiles exit with status 2 and the usage text, matching the other
// CLIs.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/cli"
	"repro/internal/sched"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its streams and exit status made explicit for
// testing: 0 on success (including -h), 2 for command-line errors, 1
// for runtime failures.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gapgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		kind      = fs.String("kind", "one-interval", "one-interval | multi-interval | bursty | periodic | online-lb | disjoint-unit")
		n         = fs.Int("n", 10, "number of jobs")
		p         = fs.Int("p", 1, "number of processors (one-interval kinds)")
		horizon   = fs.Int("horizon", 24, "release-time horizon")
		window    = fs.Int("window", 6, "maximum window length")
		intervals = fs.Int("intervals", 2, "intervals per job (multi-interval)")
		ivlen     = fs.Int("ivlen", 2, "interval length (multi-interval)")
		bursts    = fs.Int("bursts", 3, "burst count (bursty)")
		period    = fs.Int("period", 6, "period (periodic)")
		jitter    = fs.Int("jitter", 2, "release jitter (periodic)")
		slack     = fs.Int("slack", 4, "deadline slack (periodic)")
		alpha     = fs.Float64("alpha", 2, "transition cost recorded in the file")
		seed      = fs.Int64("seed", 1, "random seed")
		feasible  = fs.Bool("feasible", true, "redraw until the instance is feasible")
		profile   = fs.String("profile", "", "stress profile overriding -kind: bursty | sparse | dense")
	)
	if err := cli.Parse(fs, args); err != nil {
		return cli.Status(err)
	}
	rng := rand.New(rand.NewSource(*seed))

	var f sched.File
	f.Alpha = *alpha
	switch {
	case *profile != "":
		in, err := workload.Stress(rng, *profile, *n, *p)
		if err != nil {
			fmt.Fprintf(stderr, "gapgen: %v\n", err)
			fs.Usage()
			return 2
		}
		f.Kind, f.Instance = sched.KindOneInterval, &in
	case *kind == "one-interval":
		var in sched.Instance
		if *feasible {
			in = workload.FeasibleOneInterval(rng, *n, *p, *horizon, *window)
		} else {
			in = workload.Multiproc(rng, *n, *p, *horizon, *window)
		}
		f.Kind, f.Instance = sched.KindOneInterval, &in
	case *kind == "bursty":
		in := workload.Bursty(rng, *n, *bursts, *horizon, 4, *window)
		in.Procs = *p
		f.Kind, f.Instance = sched.KindOneInterval, &in
	case *kind == "periodic":
		in := workload.Periodic(rng, *n, *period, *jitter, *slack)
		in.Procs = *p
		f.Kind, f.Instance = sched.KindOneInterval, &in
	case *kind == "online-lb":
		in := workload.OnlineLowerBound(*n)
		f.Kind, f.Instance = sched.KindOneInterval, &in
	case *kind == "multi-interval":
		var mi sched.MultiInstance
		if *feasible {
			mi = workload.FeasibleMultiInterval(rng, *n, *intervals, *ivlen, *horizon)
		} else {
			mi = workload.MultiInterval(rng, *n, *intervals, *ivlen, *horizon)
		}
		f.Kind, f.Multi = sched.KindMultiInterval, &mi
	case *kind == "disjoint-unit":
		mi := workload.DisjointUnit(rng, *n, *intervals)
		f.Kind, f.Multi = sched.KindMultiInterval, &mi
	default:
		fmt.Fprintf(stderr, "gapgen: unknown kind %q\n", *kind)
		fs.Usage()
		return 2
	}
	if err := f.WriteJSON(stdout); err != nil {
		fmt.Fprintf(stderr, "gapgen: %v\n", err)
		return 1
	}
	return 0
}
