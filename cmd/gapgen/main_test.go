package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/feas"
	"repro/internal/sched"
)

// runGapgen invokes run with a canned command line, capturing stdout.
func runGapgen(t *testing.T, args ...string) sched.File {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("gapgen %v exited %d:\n%s", args, code, stderr.String())
	}
	f, err := sched.ReadJSON(&stdout)
	if err != nil {
		t.Fatalf("gapgen %v emitted undecodable JSON: %v", args, err)
	}
	return f
}

// Command-line errors must exit non-zero with the usage text, matching
// every CLI in this repository.
func TestGapgenRejectsBadCommandLines(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-bogus"}},
		{"positional argument", []string{"extra"}},
		{"trailing argument", []string{"-n", "4", "extra"}},
		{"bad value", []string{"-n", "lots"}},
		{"unknown kind", []string{"-kind", "nonsense"}},
	}
	for _, c := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(c.args, &stdout, &stderr); code != 2 {
			t.Errorf("%s: gapgen %v exited %d, want 2", c.name, c.args, code)
		}
		if !strings.Contains(stderr.String(), "Usage") && !strings.Contains(stderr.String(), "-kind") {
			t.Errorf("%s: no usage text on stderr:\n%s", c.name, stderr.String())
		}
	}
	if code := run([]string{"-h"}, &bytes.Buffer{}, &bytes.Buffer{}); code != 0 {
		t.Errorf("-h exited %d, want 0", code)
	}
}

// Smoke test: every generator kind must emit a decodable sched.File
// with the requested shape.
func TestGapgenKindsEmitDecodableJSON(t *testing.T) {
	oneInterval := []string{"one-interval", "bursty", "periodic", "online-lb"}
	for _, kind := range oneInterval {
		f := runGapgen(t, "-kind", kind, "-n", "6", "-seed", "3")
		if f.Kind != sched.KindOneInterval || f.Instance == nil {
			t.Fatalf("%s: wrong envelope %+v", kind, f)
		}
		if len(f.Instance.Jobs) == 0 {
			t.Fatalf("%s: no jobs generated", kind)
		}
		if err := f.Instance.Validate(); err != nil {
			t.Fatalf("%s: invalid instance: %v", kind, err)
		}
	}
	for _, kind := range []string{"multi-interval", "disjoint-unit"} {
		f := runGapgen(t, "-kind", kind, "-n", "5", "-intervals", "2", "-seed", "3")
		if f.Kind != sched.KindMultiInterval || f.Multi == nil {
			t.Fatalf("%s: wrong envelope %+v", kind, f)
		}
		if len(f.Multi.Jobs) == 0 {
			t.Fatalf("%s: no jobs generated", kind)
		}
	}
}

// The default one-interval kind redraws until feasible; the emitted
// instance must therefore admit a schedule.
func TestGapgenDefaultIsFeasible(t *testing.T) {
	f := runGapgen(t, "-n", "8", "-p", "2", "-seed", "7")
	if f.Instance == nil {
		t.Fatal("no instance in envelope")
	}
	if !feas.FeasibleOneInterval(*f.Instance) {
		t.Fatalf("default generation produced an infeasible instance: %+v", f.Instance)
	}
}

// The -profile generators must emit decodable, feasible one-interval
// envelopes with the requested size, and unknown profiles must exit 2
// like every other command-line error.
func TestGapgenStressProfiles(t *testing.T) {
	for _, profile := range []string{"bursty", "sparse", "dense"} {
		f := runGapgen(t, "-profile", profile, "-n", "200", "-p", "2", "-seed", "5")
		if f.Kind != sched.KindOneInterval || f.Instance == nil {
			t.Fatalf("%s: wrong envelope %+v", profile, f)
		}
		if len(f.Instance.Jobs) != 200 {
			t.Fatalf("%s: %d jobs, want 200", profile, len(f.Instance.Jobs))
		}
		if err := f.Instance.Validate(); err != nil {
			t.Fatalf("%s: invalid instance: %v", profile, err)
		}
		if !feas.FeasibleOneInterval(*f.Instance) {
			t.Fatalf("%s: stress instance infeasible", profile)
		}
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-profile", "nonsense"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown profile exited %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "profile") {
		t.Fatalf("no profile mention on stderr:\n%s", stderr.String())
	}
	// -profile overrides -kind rather than mixing with it.
	f := runGapgen(t, "-kind", "multi-interval", "-profile", "sparse", "-n", "8")
	if f.Kind != sched.KindOneInterval || f.Multi != nil {
		t.Fatalf("-profile with -kind produced %+v", f)
	}
}
