package main

import (
	"flag"
	"os"
	"testing"

	"repro/internal/feas"
	"repro/internal/sched"
)

// runGapgen invokes main with a canned command line, capturing stdout.
// gapgen registers its flags inside main on the global FlagSet, so each
// invocation gets a fresh one (which also keeps the test binary's own
// flags out of the way).
func runGapgen(t *testing.T, args ...string) sched.File {
	t.Helper()
	flag.CommandLine = flag.NewFlagSet("gapgen", flag.ExitOnError)
	oldArgs, oldStdout := os.Args, os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Args = append([]string{"gapgen"}, args...)
	os.Stdout = w
	defer func() {
		os.Args = oldArgs
		os.Stdout = oldStdout
	}()
	main()
	w.Close()
	f, err := sched.ReadJSON(r)
	if err != nil {
		t.Fatalf("gapgen %v emitted undecodable JSON: %v", args, err)
	}
	return f
}

// Smoke test: every generator kind must emit a decodable sched.File
// with the requested shape.
func TestGapgenKindsEmitDecodableJSON(t *testing.T) {
	oneInterval := []string{"one-interval", "bursty", "periodic", "online-lb"}
	for _, kind := range oneInterval {
		f := runGapgen(t, "-kind", kind, "-n", "6", "-seed", "3")
		if f.Kind != sched.KindOneInterval || f.Instance == nil {
			t.Fatalf("%s: wrong envelope %+v", kind, f)
		}
		if len(f.Instance.Jobs) == 0 {
			t.Fatalf("%s: no jobs generated", kind)
		}
		if err := f.Instance.Validate(); err != nil {
			t.Fatalf("%s: invalid instance: %v", kind, err)
		}
	}
	for _, kind := range []string{"multi-interval", "disjoint-unit"} {
		f := runGapgen(t, "-kind", kind, "-n", "5", "-intervals", "2", "-seed", "3")
		if f.Kind != sched.KindMultiInterval || f.Multi == nil {
			t.Fatalf("%s: wrong envelope %+v", kind, f)
		}
		if len(f.Multi.Jobs) == 0 {
			t.Fatalf("%s: no jobs generated", kind)
		}
	}
}

// The default one-interval kind redraws until feasible; the emitted
// instance must therefore admit a schedule.
func TestGapgenDefaultIsFeasible(t *testing.T) {
	f := runGapgen(t, "-n", "8", "-p", "2", "-seed", "7")
	if f.Instance == nil {
		t.Fatal("no instance in envelope")
	}
	if !feas.FeasibleOneInterval(*f.Instance) {
		t.Fatalf("default generation produced an infeasible instance: %+v", f.Instance)
	}
}
