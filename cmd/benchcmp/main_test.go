package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
BenchmarkE1_MultiprocExact/n=12-16         1    250000 ns/op    245 states/op
BenchmarkE1_MultiprocExact/n=12-16         1    200000 ns/op    245 states/op
BenchmarkE1_MultiprocExact/n=12-16         1    300000 ns/op    245 states/op
BenchmarkE16_BatchSolve/gaps-16            1   1000000 ns/op
PASS
`

func TestParseBenchTakesMinAndStripsSuffix(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(got), got)
	}
	if ns := got["BenchmarkE1_MultiprocExact/n=12"]; ns != 200000 {
		t.Errorf("min ns/op = %v, want 200000", ns)
	}
	if _, ok := got["BenchmarkE16_BatchSolve/gaps"]; !ok {
		t.Errorf("GOMAXPROCS suffix not stripped: %v", got)
	}
}

func TestParseBenchRejectsEmpty(t *testing.T) {
	if _, err := parseBench(strings.NewReader("PASS\n")); err == nil {
		t.Fatal("accepted input with no benchmarks")
	}
}

func TestCompareFlagsRegressionsNewAndMissing(t *testing.T) {
	baseline := map[string]float64{
		"BenchmarkStable":  1000,
		"BenchmarkSlower":  1000,
		"BenchmarkRemoved": 1000,
	}
	current := map[string]float64{
		"BenchmarkStable": 1100, // +10%: under threshold
		"BenchmarkSlower": 1500, // +50%: regression
		"BenchmarkNew":    42,
	}
	var out bytes.Buffer
	if fails, n := compare(baseline, current, 20, 30, nil, &out); n != 1 || fails != 0 {
		t.Fatalf("compare found %d regressions / %d failures, want 1 / 0:\n%s", n, fails, out.String())
	}
	text := out.String()
	for _, want := range []string{
		"::warning title=bench regression::BenchmarkSlower",
		"::warning title=bench missing::BenchmarkRemoved",
		"(new)",
		"← regression",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "::warning title=bench regression::BenchmarkStable") {
		t.Errorf("under-threshold delta flagged:\n%s", text)
	}
}

// New benchmarks — present in the run but absent from the committed
// baseline, the state right after a PR adds an experiment — must
// report as "(new)" and never warn or count as regressions, no matter
// how slow they are or how many there are.
func TestCompareNewBenchmarksNeverWarn(t *testing.T) {
	baseline := map[string]float64{"BenchmarkOld": 1000}
	cases := []struct {
		name    string
		current map[string]float64
	}{
		{"one new", map[string]float64{
			"BenchmarkOld": 1000,
			"BenchmarkE19_IncrementalSession/gaps/incremental": 200000,
		}},
		{"new and huge", map[string]float64{
			"BenchmarkOld": 1000,
			"BenchmarkNew": 1e12,
		}},
		{"several new", map[string]float64{
			"BenchmarkOld":  1000,
			"BenchmarkNewA": 5,
			"BenchmarkNewB": 50,
			"BenchmarkNewC": 500000,
		}},
		{"all new", map[string]float64{
			"BenchmarkOnlyNew": 777,
		}},
	}
	for _, c := range cases {
		var out bytes.Buffer
		if fails, n := compare(baseline, c.current, 20, 30, []string{"New", "E19_"}, &out); n != 0 || fails != 0 {
			t.Errorf("%s: %d regressions / %d failures from new benchmarks:\n%s", c.name, n, fails, out.String())
		}
		text := out.String()
		if strings.Contains(text, "::warning title=bench regression::") {
			t.Errorf("%s: new benchmark flagged as regression:\n%s", c.name, text)
		}
		for name := range c.current {
			if _, inBase := baseline[name]; !inBase && !strings.Contains(text, name) {
				t.Errorf("%s: new benchmark %s missing from report:\n%s", c.name, name, text)
			}
		}
		if !strings.Contains(text, "(new)") {
			t.Errorf("%s: no (new) marker:\n%s", c.name, text)
		}
	}
}

// End-to-end: -update writes a baseline that a subsequent comparison
// of the same input reads back with zero regressions; warn-only means
// exit 0 even when a regression is present.
func TestRunUpdateThenCompare(t *testing.T) {
	baseline := filepath.Join(t.TempDir(), "BENCH_BASELINE.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-baseline", baseline, "-update"},
		strings.NewReader(sampleBench), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("update exited %d: %s", code, stderr.String())
	}
	if _, err := os.Stat(baseline); err != nil {
		t.Fatal(err)
	}

	stdout.Reset()
	code = run([]string{"-baseline", baseline},
		strings.NewReader(sampleBench), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("compare exited %d: %s", code, stderr.String())
	}
	if strings.Contains(stdout.String(), "::warning") {
		t.Fatalf("identical input produced warnings:\n%s", stdout.String())
	}

	// 10x slower input: warn, still exit 0.
	slower := strings.ReplaceAll(sampleBench, "1000000 ns/op", "9999999 ns/op")
	slower = strings.ReplaceAll(slower, "0000 ns/op", "00000 ns/op")
	stdout.Reset()
	code = run([]string{"-baseline", baseline},
		strings.NewReader(slower), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("regressed compare exited %d, want 0 (warn-only): %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "::warning title=bench regression::") {
		t.Fatalf("regression not flagged:\n%s", stdout.String())
	}
}

// Gated families: a regression beyond -fail-threshold in a family
// named by -fail-families exits 3 with an error annotation; the same
// regression outside the gated families stays warn-only.
func TestCompareGatedFamiliesFail(t *testing.T) {
	baseline := map[string]float64{
		"BenchmarkE16_BatchSolve/gaps":  1000,
		"BenchmarkE10_Greedy3Approx":    1000,
		"BenchmarkE1_MultiprocExact/dp": 1000,
	}
	current := map[string]float64{
		"BenchmarkE16_BatchSolve/gaps":  1500, // +50%: gated → fail
		"BenchmarkE10_Greedy3Approx":    1500, // +50%: ungated → warn
		"BenchmarkE1_MultiprocExact/dp": 1250, // +25%: gated but under fail threshold → warn
	}
	var out bytes.Buffer
	fails, warns := compare(baseline, current, 20, 30, []string{"E1_", "E16_"}, &out)
	if fails != 1 || warns != 2 {
		t.Fatalf("compare found %d failures / %d warnings, want 1 / 2:\n%s", fails, warns, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "::error title=bench regression::BenchmarkE16_BatchSolve/gaps") {
		t.Errorf("gated regression not errored:\n%s", text)
	}
	if !strings.Contains(text, "::warning title=bench regression::BenchmarkE10_Greedy3Approx") {
		t.Errorf("ungated regression not warned:\n%s", text)
	}
	if !strings.Contains(text, "::warning title=bench regression::BenchmarkE1_MultiprocExact/dp") {
		t.Errorf("under-fail-threshold gated regression not warned:\n%s", text)
	}
	// E1_ must not gate E16's cousins by prefix confusion: E10 is not
	// in the E1_ family.
	if strings.Contains(text, "::error title=bench regression::BenchmarkE10") {
		t.Errorf("family prefix matched the wrong benchmark:\n%s", text)
	}
}

func TestRunFailFamiliesExitCode(t *testing.T) {
	baseline := filepath.Join(t.TempDir(), "BENCH_BASELINE.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-baseline", baseline, "-update"},
		strings.NewReader(sampleBench), &stdout, &stderr); code != 0 {
		t.Fatalf("update exited %d: %s", code, stderr.String())
	}
	slower := strings.ReplaceAll(sampleBench, "1000000 ns/op", "9999999 ns/op")
	stdout.Reset()
	code := run([]string{"-baseline", baseline, "-fail-families", "E16_"},
		strings.NewReader(slower), &stdout, &stderr)
	if code != 3 {
		t.Fatalf("gated regression exited %d, want 3:\n%s", code, stdout.String())
	}
	// Same regression with no gated families: warn-only, exit 0.
	stdout.Reset()
	if code := run([]string{"-baseline", baseline},
		strings.NewReader(slower), &stdout, &stderr); code != 0 {
		t.Fatalf("ungated regression exited %d, want 0:\n%s", code, stdout.String())
	}
}

func TestRunBadCommandLines(t *testing.T) {
	for _, args := range [][]string{{"-bogus"}, {"positional"}} {
		if code := run(args, strings.NewReader(""), &bytes.Buffer{}, &bytes.Buffer{}); code != 2 {
			t.Errorf("benchcmp %v exited %d, want 2", args, code)
		}
	}
	if code := run(nil, strings.NewReader("PASS"), &bytes.Buffer{}, &bytes.Buffer{}); code != 1 {
		t.Error("empty input should exit 1")
	}
}
