package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
BenchmarkE1_MultiprocExact/n=12-16         1    250000 ns/op    245 states/op
BenchmarkE1_MultiprocExact/n=12-16         1    200000 ns/op    245 states/op
BenchmarkE1_MultiprocExact/n=12-16         1    300000 ns/op    245 states/op
BenchmarkE16_BatchSolve/gaps-16            1   1000000 ns/op
PASS
`

func TestParseBenchTakesMinAndStripsSuffix(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(got), got)
	}
	if ns := got["BenchmarkE1_MultiprocExact/n=12"]; ns != 200000 {
		t.Errorf("min ns/op = %v, want 200000", ns)
	}
	if _, ok := got["BenchmarkE16_BatchSolve/gaps"]; !ok {
		t.Errorf("GOMAXPROCS suffix not stripped: %v", got)
	}
}

func TestParseBenchRejectsEmpty(t *testing.T) {
	if _, err := parseBench(strings.NewReader("PASS\n")); err == nil {
		t.Fatal("accepted input with no benchmarks")
	}
}

func TestCompareFlagsRegressionsNewAndMissing(t *testing.T) {
	baseline := map[string]float64{
		"BenchmarkStable":  1000,
		"BenchmarkSlower":  1000,
		"BenchmarkRemoved": 1000,
	}
	current := map[string]float64{
		"BenchmarkStable": 1100, // +10%: under threshold
		"BenchmarkSlower": 1500, // +50%: regression
		"BenchmarkNew":    42,
	}
	var out bytes.Buffer
	if n := compare(baseline, current, 20, &out); n != 1 {
		t.Fatalf("compare found %d regressions, want 1:\n%s", n, out.String())
	}
	text := out.String()
	for _, want := range []string{
		"::warning title=bench regression::BenchmarkSlower",
		"::warning title=bench missing::BenchmarkRemoved",
		"(new)",
		"← regression",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "::warning title=bench regression::BenchmarkStable") {
		t.Errorf("under-threshold delta flagged:\n%s", text)
	}
}

// New benchmarks — present in the run but absent from the committed
// baseline, the state right after a PR adds an experiment — must
// report as "(new)" and never warn or count as regressions, no matter
// how slow they are or how many there are.
func TestCompareNewBenchmarksNeverWarn(t *testing.T) {
	baseline := map[string]float64{"BenchmarkOld": 1000}
	cases := []struct {
		name    string
		current map[string]float64
	}{
		{"one new", map[string]float64{
			"BenchmarkOld": 1000,
			"BenchmarkE19_IncrementalSession/gaps/incremental": 200000,
		}},
		{"new and huge", map[string]float64{
			"BenchmarkOld": 1000,
			"BenchmarkNew": 1e12,
		}},
		{"several new", map[string]float64{
			"BenchmarkOld":  1000,
			"BenchmarkNewA": 5,
			"BenchmarkNewB": 50,
			"BenchmarkNewC": 500000,
		}},
		{"all new", map[string]float64{
			"BenchmarkOnlyNew": 777,
		}},
	}
	for _, c := range cases {
		var out bytes.Buffer
		if n := compare(baseline, c.current, 20, &out); n != 0 {
			t.Errorf("%s: %d regressions from new benchmarks:\n%s", c.name, n, out.String())
		}
		text := out.String()
		if strings.Contains(text, "::warning title=bench regression::") {
			t.Errorf("%s: new benchmark flagged as regression:\n%s", c.name, text)
		}
		for name := range c.current {
			if _, inBase := baseline[name]; !inBase && !strings.Contains(text, name) {
				t.Errorf("%s: new benchmark %s missing from report:\n%s", c.name, name, text)
			}
		}
		if !strings.Contains(text, "(new)") {
			t.Errorf("%s: no (new) marker:\n%s", c.name, text)
		}
	}
}

// End-to-end: -update writes a baseline that a subsequent comparison
// of the same input reads back with zero regressions; warn-only means
// exit 0 even when a regression is present.
func TestRunUpdateThenCompare(t *testing.T) {
	baseline := filepath.Join(t.TempDir(), "BENCH_BASELINE.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-baseline", baseline, "-update"},
		strings.NewReader(sampleBench), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("update exited %d: %s", code, stderr.String())
	}
	if _, err := os.Stat(baseline); err != nil {
		t.Fatal(err)
	}

	stdout.Reset()
	code = run([]string{"-baseline", baseline},
		strings.NewReader(sampleBench), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("compare exited %d: %s", code, stderr.String())
	}
	if strings.Contains(stdout.String(), "::warning") {
		t.Fatalf("identical input produced warnings:\n%s", stdout.String())
	}

	// 10x slower input: warn, still exit 0.
	slower := strings.ReplaceAll(sampleBench, "1000000 ns/op", "9999999 ns/op")
	slower = strings.ReplaceAll(slower, "0000 ns/op", "00000 ns/op")
	stdout.Reset()
	code = run([]string{"-baseline", baseline},
		strings.NewReader(slower), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("regressed compare exited %d, want 0 (warn-only): %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "::warning title=bench regression::") {
		t.Fatalf("regression not flagged:\n%s", stdout.String())
	}
}

func TestRunBadCommandLines(t *testing.T) {
	for _, args := range [][]string{{"-bogus"}, {"positional"}} {
		if code := run(args, strings.NewReader(""), &bytes.Buffer{}, &bytes.Buffer{}); code != 2 {
			t.Errorf("benchcmp %v exited %d, want 2", args, code)
		}
	}
	if code := run(nil, strings.NewReader("PASS"), &bytes.Buffer{}, &bytes.Buffer{}); code != 1 {
		t.Error("empty input should exit 1")
	}
}
