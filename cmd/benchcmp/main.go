// Command benchcmp is the CI bench-regression gate: a benchstat-style
// comparison of `go test -bench` output against a committed baseline
// (BENCH_BASELINE.json at the repository root). By default it is
// warn-only — one-shot (-benchtime=1x) timings on shared CI runners
// are noisy, so regressions surface as GitHub warning annotations
// instead of failures; treating them as signals, not verdicts, keeps
// the job honest without flaking the build.
//
// -fail-families promotes selected benchmark families to a hard gate:
// a comma-separated list of name prefixes (matched against the part
// after "Benchmark", so "E16_" covers BenchmarkE16_BatchSolve and its
// sub-benchmarks). A family benchmark regressing beyond
// -fail-threshold percent fails the run with exit status 3 and a
// GitHub error annotation; everything else stays warn-only. The fail
// threshold is deliberately looser than the warn threshold — only the
// headline solver-path families are gated, and only on regressions big
// enough to stand out of one-shot noise.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchtime=1x -count=3 . | benchcmp -baseline BENCH_BASELINE.json
//	go test -run='^$' -bench=. -benchtime=1x -count=3 . | benchcmp -baseline BENCH_BASELINE.json -update
//	... | benchcmp -baseline BENCH_BASELINE.json -fail-families 'E1_,E16_,E17_,E19_,E20_,E21_'
//
// Multiple -count runs of one benchmark are folded to their minimum
// ns/op (the least-noise estimator for one-shot runs); the trailing
// -N GOMAXPROCS suffix is stripped so baselines compare across
// machines. Exit status: 0 on success (warnings included), 1 on I/O or
// parse failures, 2 on command-line errors, 3 when a gated family
// regressed beyond -fail-threshold.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cli"
)

// baselineFile is the committed JSON schema.
type baselineFile struct {
	// Note documents how the numbers were produced.
	Note string `json:"note"`
	// Benchmarks maps normalized benchmark names to ns/op.
	Benchmarks map[string]float64 `json:"benchmarks"`
}

// benchLine matches one result line of `go test -bench` output:
// name, iteration count, ns/op value (further metric pairs ignored).
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+)\s+ns/op`)

// gomaxprocsSuffix is the trailing -N that `go test` appends to
// benchmark names.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBench folds bench output into min ns/op per normalized name.
func parseBench(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchcmp: bad ns/op in %q: %w", sc.Text(), err)
		}
		name := gomaxprocsSuffix.ReplaceAllString(m[1], "")
		if prev, ok := out[name]; !ok || ns < prev {
			out[name] = ns
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchcmp: reading bench output: %w", err)
	}
	if len(out) == 0 {
		return nil, errors.New("benchcmp: no benchmark results in input")
	}
	return out, nil
}

func sortedNames(m map[string]float64) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// inFamilies reports whether a normalized benchmark name belongs to
// one of the gated families (prefixes matched after "Benchmark").
func inFamilies(name string, families []string) bool {
	tail := strings.TrimPrefix(name, "Benchmark")
	for _, f := range families {
		if strings.HasPrefix(tail, f) {
			return true
		}
	}
	return false
}

// compare prints a benchstat-style report: warning annotations for
// regressions beyond warnThreshold percent, error annotations for
// gated-family regressions beyond failThreshold percent. It returns
// the number of gated failures (the caller turns any into a non-zero
// exit) and, separately, the warn-only regression count.
func compare(baseline, current map[string]float64, warnThreshold, failThreshold float64, families []string, stdout io.Writer) (failures, regressions int) {
	fmt.Fprintf(stdout, "%-55s %12s %12s %8s\n", "benchmark", "baseline", "current", "delta")
	for _, name := range sortedNames(current) {
		cur := current[name]
		base, ok := baseline[name]
		if !ok {
			fmt.Fprintf(stdout, "%-55s %12s %12.0f %8s\n", name, "(new)", cur, "-")
			continue
		}
		delta := 100 * (cur - base) / base
		mark := ""
		switch {
		case delta > failThreshold && inFamilies(name, families):
			mark = "  ← FAIL"
			failures++
			fmt.Fprintf(stdout, "::error title=bench regression::%s is %.0f%% slower than BENCH_BASELINE.json (%.0f → %.0f ns/op; gated family)\n",
				name, delta, base, cur)
		case delta > warnThreshold:
			mark = "  ← regression"
			regressions++
			fmt.Fprintf(stdout, "::warning title=bench regression::%s is %.0f%% slower than BENCH_BASELINE.json (%.0f → %.0f ns/op)\n",
				name, delta, base, cur)
		}
		fmt.Fprintf(stdout, "%-55s %12.0f %12.0f %+7.1f%%%s\n", name, base, cur, delta, mark)
	}
	for _, name := range sortedNames(baseline) {
		if _, ok := current[name]; !ok {
			fmt.Fprintf(stdout, "::warning title=bench missing::%s is in BENCH_BASELINE.json but produced no result\n", name)
			fmt.Fprintf(stdout, "%-55s %12.0f %12s %8s\n", name, baseline[name], "(gone)", "-")
		}
	}
	if regressions > 0 {
		fmt.Fprintf(stdout, "\n%d benchmark(s) regressed more than %.0f%% (warn-only; see annotations)\n", regressions, warnThreshold)
	}
	if failures > 0 {
		fmt.Fprintf(stdout, "\n%d gated benchmark(s) regressed more than %.0f%%\n", failures, failThreshold)
	}
	return failures, regressions
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchcmp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		baselinePath = fs.String("baseline", "BENCH_BASELINE.json", "committed baseline file")
		input        = fs.String("input", "-", "bench output to read (- for stdin)")
		threshold    = fs.Float64("threshold", 20, "warn when ns/op grows more than this percent")
		failFams     = fs.String("fail-families", "", "comma-separated benchmark family prefixes (matched after \"Benchmark\") whose regressions fail the run")
		failThresh   = fs.Float64("fail-threshold", 30, "fail when a gated family's ns/op grows more than this percent")
		update       = fs.Bool("update", false, "rewrite the baseline from the input instead of comparing")
		note         = fs.String("note", "go test -run='^$' -bench=. -benchtime=1x -count=3 . (min of 3)", "provenance note stored with -update")
	)
	if err := cli.Parse(fs, args); err != nil {
		return cli.Status(err)
	}

	in := stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			fmt.Fprintf(stderr, "benchcmp: %v\n", err)
			return 1
		}
		defer f.Close()
		in = f
	}
	current, err := parseBench(in)
	if err != nil {
		fmt.Fprintf(stderr, "%v\n", err)
		return 1
	}

	if *update {
		buf, err := json.MarshalIndent(baselineFile{Note: *note, Benchmarks: current}, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "benchcmp: %v\n", err)
			return 1
		}
		if err := os.WriteFile(*baselinePath, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "benchcmp: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %d benchmarks to %s\n", len(current), *baselinePath)
		return 0
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(stderr, "benchcmp: %v\n", err)
		return 1
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(stderr, "benchcmp: parsing %s: %v\n", *baselinePath, err)
		return 1
	}
	var families []string
	for _, f := range strings.Split(*failFams, ",") {
		if f = strings.TrimSpace(f); f != "" {
			families = append(families, f)
		}
	}
	failures, _ := compare(base.Benchmarks, current, *threshold, *failThresh, families, stdout)
	if failures > 0 {
		return 3
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}
