// Command gapsched solves scheduling instances produced by cmd/gapgen
// (or hand-written JSON) and prints the schedule, its span/gap counts,
// its power consumption and a rendered power-state timeline.
//
// Usage:
//
//	gapgen -kind one-interval -n 12 | gapsched -algo gaps
//	gapsched -input instance.json -algo power -alpha 3
//	gapgen -profile dense -n 100000 | gapsched -algo gaps -mode heuristic -quiet
//	gapsched -input instance.json -algo gaps -mode auto -state-budget 1000000
//	gapsched -input multi.json -algo approx
//	gapsched -input multi.json -algo throughput -budget 3
//	gapsched -stream -algo power -alpha 3 -mode auto < deltas.txt
//	gapsched -stream -online -algo gaps < arrivals.txt
//
// Algorithms: gaps (Thm 1 exact), power (Thm 2 exact), greedy
// ([FHKN06] baseline, single processor), edf (online baseline),
// approx (Thm 3 multi-interval pipeline), naive (matching baseline),
// throughput (Thm 11 greedy).
//
// The gaps and power algorithms accept -trace, which prints the solve's
// per-stage span summary (prep, cache, per-backend solve, assemble)
// recorded through the observability layer (internal/obs).
//
// The gaps and power algorithms accept -mode exact|heuristic|auto and
// -state-budget, selecting the solving tier per fragment: heuristic
// runs the near-linear greedy with a certified lower bound (printed
// with the cost as an optimality-gap ratio), auto solves each fragment
// exactly when its estimated DP size fits the budget and heuristically
// otherwise. Both flags also apply to -stream sessions.
//
// Stream mode (-stream, gaps and power only) drives an incremental
// scheduling session instead of a one-shot solve: the input is a
// line-oriented delta script — "add R D" (or "+ R D") inserts a unit
// job with window [R,D] and prints its id, "remove ID" (or "- ID")
// deletes one — and after every delta the evolving optimal cost is
// re-resolved incrementally (only the schedule fragments the delta
// touched are re-solved) and printed. Blank lines and #-comments are
// skipped; an infeasible state is reported and the stream continues.
//
// Online mode (-stream -online) makes the session commit-only: jobs
// must arrive in non-decreasing release order, removals are rejected,
// and every time unit up to the latest arrival is committed
// irrevocably, with idle gaps priced by the α-threshold power-down
// rule. Each resolve line then also reports the measured competitive
// ratio — the committed-run cost over the certified lower bound of
// the revealed prefix's offline optimum.
//
// Unknown flags and stray positional arguments exit with status 2 and
// the usage text, matching the other CLIs.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	gapsched "repro"
	"repro/internal/cli"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/sched"
)

// options is the parsed command line.
type options struct {
	input, algo string
	alpha       float64
	budget      int
	procs       int
	mode        string
	stateBudget int
	stream      bool
	online      bool
	quiet       bool
	trace       bool
}

// parseArgs parses the command line with the shared CLI conventions
// (internal/cli), without touching global state: flag.ErrHelp passes
// through for -h, and unknown flags, bad values, and stray positional
// arguments error after printing the usage text to stderr.
func parseArgs(args []string, stderr io.Writer) (options, error) {
	fs := flag.NewFlagSet("gapsched", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o options
	fs.StringVar(&o.input, "input", "-", "instance JSON file (- for stdin)")
	fs.StringVar(&o.algo, "algo", "gaps", "gaps | power | greedy | edf | approx | naive | throughput")
	fs.Float64Var(&o.alpha, "alpha", -1, "transition cost (overrides the file's alpha when ≥ 0)")
	fs.IntVar(&o.budget, "budget", 2, "span budget for -algo throughput")
	fs.IntVar(&o.procs, "procs", 1, "processor count for -stream sessions")
	fs.StringVar(&o.mode, "mode", "exact", "solver tier for gaps/power: exact | heuristic | auto")
	fs.IntVar(&o.stateBudget, "state-budget", 0, "auto-mode exact-tier budget on estimated DP states per fragment (0 = default)")
	fs.BoolVar(&o.stream, "stream", false, "read job deltas line by line and resolve incrementally")
	fs.BoolVar(&o.online, "online", false, "commit-only online session with measured competitive ratio (requires -stream)")
	fs.BoolVar(&o.quiet, "quiet", false, "suppress the timeline rendering")
	fs.BoolVar(&o.trace, "trace", false, "print the per-stage solve trace (gaps and power)")
	if err := cli.Parse(fs, args); err != nil {
		return options{}, err
	}
	return o, nil
}

func main() {
	o, err := parseArgs(os.Args[1:], os.Stderr)
	if err != nil {
		os.Exit(cli.Status(err))
	}
	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "gapsched: %v\n", err)
		os.Exit(1)
	}
}

func run(o options, w io.Writer) error {
	input, algo, alpha, budget, quiet := o.input, o.algo, o.alpha, o.budget, o.quiet
	mode, err := gapsched.ParseMode(o.mode)
	if err != nil {
		return err
	}
	if o.online && !o.stream {
		return errors.New("-online requires -stream")
	}
	var r io.Reader = os.Stdin
	if input != "-" {
		f, err := os.Open(input)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	if o.stream {
		return runStream(r, o, mode, w)
	}
	file, err := sched.ReadJSON(r)
	if err != nil {
		return err
	}
	if alpha < 0 {
		alpha = file.Alpha
	}

	switch algo {
	case "gaps", "power", "greedy", "edf":
		if file.Instance == nil {
			return fmt.Errorf("algorithm %q needs a one-interval instance", algo)
		}
		return runOneInterval(*file.Instance, o, mode, alpha, quiet, w)
	case "approx", "naive", "throughput":
		mi := file.Multi
		if mi == nil {
			if file.Instance == nil {
				return fmt.Errorf("algorithm %q needs a multi-interval instance", algo)
			}
			laid, _ := gapsched.LayOut(*file.Instance)
			mi = &laid
			fmt.Fprintf(w, "note: laid out %d-processor instance onto a single timeline\n", file.Instance.Procs)
		}
		return runMulti(*mi, algo, alpha, budget, quiet, w)
	default:
		return fmt.Errorf("unknown algorithm %q", algo)
	}
}

func runOneInterval(in sched.Instance, o options, mode gapsched.Mode, alpha float64, quiet bool, w io.Writer) error {
	algo := o.algo
	// -trace threads an obs.Trace through the solve, so the facade
	// records its per-stage spans; printTrace renders them afterwards.
	ctx := context.Background()
	var tr *obs.Trace
	if o.trace && (algo == "gaps" || algo == "power") {
		tr = obs.NewTrace(algo)
		ctx = obs.With(ctx, tr)
	}
	var (
		s   sched.Schedule
		err error
	)
	switch algo {
	case "gaps":
		var sol gapsched.Solution
		sol, err = gapsched.Solver{Objective: gapsched.ObjectiveGaps, Mode: mode, StateBudget: o.stateBudget}.SolveContext(ctx, in)
		if err == nil {
			s = sol.Schedule
			fmt.Fprintf(w, "%s wake-ups (spans): %d   gaps: %d   DP states: %d   sub-instances: %d\n",
				tierLabel(sol), sol.Spans, sol.Gaps, sol.States, sol.Subinstances)
			printCertificate(w, sol, float64(sol.Spans))
		}
	case "power":
		var sol gapsched.Solution
		sol, err = gapsched.Solver{Objective: gapsched.ObjectivePower, Alpha: alpha, Mode: mode, StateBudget: o.stateBudget}.SolveContext(ctx, in)
		if err == nil {
			s = sol.Schedule
			fmt.Fprintf(w, "%s power: %.3f (α=%.2f)   DP states: %d   sub-instances: %d\n",
				tierLabel(sol), sol.Power, alpha, sol.States, sol.Subinstances)
			printCertificate(w, sol, sol.Power)
		}
	case "greedy":
		var res gapsched.GreedyResult
		res, err = gapsched.GreedyGapSchedule(in)
		if err == nil {
			s = res.Schedule
			fmt.Fprintf(w, "greedy wake-ups (spans): %d   forbidden intervals: %d\n", res.Spans, len(res.Forbidden))
		}
	case "edf":
		var ok bool
		s, ok = gapsched.EDF(in)
		if !ok {
			err = gapsched.ErrInfeasible
		} else {
			fmt.Fprintf(w, "EDF wake-ups (spans): %d\n", s.Spans())
		}
	}
	if err != nil {
		return err
	}
	if tr != nil {
		printTrace(w, tr)
	}
	fmt.Fprintf(w, "power at α=%.2f: %.3f\n", alpha, s.PowerCost(alpha))
	printAssignments(w, s)
	if !quiet {
		fmt.Fprint(w, power.Simulate(s, alpha).Render())
		fmt.Fprint(w, power.SpanSummary(s))
	}
	return nil
}

// printTrace renders a solve's per-stage span summary: every recorded
// stage (backend-tagged where a backend served it) with its span
// count and summed duration, in pipeline order.
func printTrace(w io.Writer, tr *obs.Trace) {
	tr.Finish(nil)
	d := tr.Data()
	type agg struct {
		count int
		dur   time.Duration
	}
	type key struct{ name, backend string }
	sums := make(map[key]agg)
	for _, sp := range d.Spans {
		k := key{sp.Name, sp.Backend}
		if sp.Name == obs.StageCache {
			k.backend = ""
		}
		a := sums[k]
		a.count++
		a.dur += sp.Dur
		sums[k] = a
	}
	fmt.Fprintf(w, "trace (%v total):\n", d.Dur)
	for _, k := range []key{
		{obs.StagePrep, ""},
		{obs.StageCache, ""},
		{obs.StageSolve, "dp"},
		{obs.StageSolve, "poly"},
		{obs.StageSolve, "heuristic"},
		{obs.StageAssemble, ""},
	} {
		a, ok := sums[k]
		if !ok {
			continue
		}
		name := k.name
		if k.backend != "" {
			name += "[" + k.backend + "]"
		}
		fmt.Fprintf(w, "  %-18s ×%-4d %v\n", name, a.count, a.dur)
	}
}

func runMulti(mi sched.MultiInstance, algo string, alpha float64, budget int, quiet bool, w io.Writer) error {
	switch algo {
	case "approx":
		ms, st, err := gapsched.ApproxMultiPower(mi, alpha, gapsched.ApproxOptions{SearchDepth: 2})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "approx spans: %d   power: %.3f (α=%.2f)   packed %d jobs in %d runs (shift %d)\n",
			st.Spans, st.Power, alpha, st.PackedJobs, st.PackedRuns, st.Shift)
		if !quiet {
			fmt.Fprint(w, power.SimulateMulti(ms, alpha).Render())
		}
	case "naive":
		ms, err := gapsched.AnyMultiSchedule(mi)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "naive spans: %d   power: %.3f (α=%.2f)\n", ms.Spans(), ms.PowerCost(alpha), alpha)
		if !quiet {
			fmt.Fprint(w, power.SimulateMulti(ms, alpha).Render())
		}
	case "throughput":
		res, err := gapsched.MaxThroughput(mi, budget)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "scheduled %d of %d jobs in %d spans (budget %d)\n", res.Jobs(), mi.N(), res.Spans, budget)
		var jobs []int
		for j := range res.Scheduled {
			jobs = append(jobs, j)
		}
		sort.Ints(jobs)
		for _, j := range jobs {
			fmt.Fprintf(w, "  job %d at t=%d\n", j, res.Scheduled[j])
		}
	}
	return nil
}

// tierLabel describes a solution's cost quality: "optimal" unless some
// fragment was served by the heuristic tier.
func tierLabel(sol gapsched.Solution) string {
	if sol.HeuristicFragments > 0 {
		return "heuristic"
	}
	return "optimal"
}

// printCertificate reports the mode and certified optimality gap of a
// solution that was not (entirely) served by the exact tier.
func printCertificate(w io.Writer, sol gapsched.Solution, cost float64) {
	if sol.Mode == gapsched.ModeExact {
		return
	}
	ratio := 1.0
	if sol.LowerBound > 0 {
		ratio = cost / sol.LowerBound
	}
	fmt.Fprintf(w, "mode: %s   certified lower bound: %.3f   cost/LB ratio: %.3f   heuristic fragments: %d/%d\n",
		sol.Mode, sol.LowerBound, ratio, sol.HeuristicFragments, sol.Subinstances)
}

// runStream drives an incremental session from a line-oriented delta
// script: "add R D"/"+ R D" inserts a job, "remove ID"/"- ID" deletes
// one, and after every delta the evolving cost is re-resolved
// incrementally and printed together with the fragment-reuse counters
// (plus the certified lower bound when the session runs on a
// non-exact mode). With -online the session is commit-only and each
// resolve line reports the measured competitive ratio. A negative
// alpha (the flag default) means 0.
func runStream(r io.Reader, o options, mode gapsched.Mode, w io.Writer) error {
	algo, alpha, procs := o.algo, o.alpha, o.procs
	if alpha < 0 {
		alpha = 0
	}
	s := gapsched.Solver{Mode: mode, StateBudget: o.stateBudget}
	switch algo {
	case "gaps":
	case "power":
		s.Objective, s.Alpha = gapsched.ObjectivePower, alpha
	default:
		return fmt.Errorf("-stream supports gaps and power, not %q", algo)
	}
	open := s.Open
	if o.online {
		open = s.OpenOnline
	}
	sess, err := open(procs)
	if err != nil {
		return err
	}
	defer sess.Close()

	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		var what string
		switch op := fields[0]; {
		case (op == "add" || op == "+") && len(fields) == 3:
			rel, err1 := strconv.Atoi(fields[1])
			dl, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return fmt.Errorf("line %d: bad window %q %q", line, fields[1], fields[2])
			}
			id, err := sess.Add(gapsched.Job{Release: rel, Deadline: dl})
			if err != nil {
				return fmt.Errorf("line %d: %v", line, err)
			}
			what = fmt.Sprintf("+[%d,%d] id=%d", rel, dl, id)
		case (op == "remove" || op == "-") && len(fields) == 2:
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return fmt.Errorf("line %d: bad job id %q", line, fields[1])
			}
			if err := sess.Remove(id); err != nil {
				return fmt.Errorf("line %d: %v", line, err)
			}
			what = fmt.Sprintf("-id=%d", id)
		default:
			return fmt.Errorf("line %d: want \"add R D\" or \"remove ID\", got %q", line, sc.Text())
		}

		sol, err := sess.Resolve()
		switch {
		case errors.Is(err, gapsched.ErrInfeasible):
			fmt.Fprintf(w, "%-16s jobs=%-4d INFEASIBLE\n", what, sess.Len())
			continue
		case err != nil:
			return fmt.Errorf("line %d: %v", line, err)
		}
		cost := fmt.Sprintf("spans=%d gaps=%d", sol.Spans, sol.Gaps)
		if algo == "power" {
			cost = fmt.Sprintf("power=%.3f (α=%.2f)", sol.Power, alpha)
		}
		if sol.Mode != gapsched.ModeExact {
			cost += fmt.Sprintf(" lb=%.3f heur=%d", sol.LowerBound, sol.HeuristicFragments)
		}
		if o.online {
			cost += fmt.Sprintf(" ratio=%.3f committed=%d", sol.CompetitiveRatio, sol.CommittedJobs)
		}
		fmt.Fprintf(w, "%-16s jobs=%-4d frags=%-3d resolved=%-3d reused=%-3d %s\n",
			what, sess.Len(), sol.Subinstances, sol.ResolvedFragments, sol.ReusedFragments, cost)
	}
	return sc.Err()
}

func printAssignments(w io.Writer, s sched.Schedule) {
	type row struct{ job, proc, time int }
	rows := make([]row, len(s.Slots))
	for i, a := range s.Slots {
		rows[i] = row{i, a.Proc, a.Time}
	}
	sort.Slice(rows, func(a, b int) bool {
		if rows[a].time != rows[b].time {
			return rows[a].time < rows[b].time
		}
		return rows[a].proc < rows[b].proc
	})
	for _, r := range rows {
		fmt.Fprintf(w, "  t=%-4d P%-2d job %d\n", r.time, r.proc, r.job)
	}
}
