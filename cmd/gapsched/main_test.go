package main

import (
	"bytes"
	"errors"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sched"
)

// Command-line errors must exit non-zero with the usage text, matching
// every CLI in this repository.
func TestGapschedRejectsBadCommandLines(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-bogus"}},
		{"positional argument", []string{"extra"}},
		{"trailing argument", []string{"-algo", "gaps", "extra"}},
		{"bad value", []string{"-budget", "many"}},
	}
	for _, c := range cases {
		var stderr bytes.Buffer
		if _, err := parseArgs(c.args, &stderr); err == nil || errors.Is(err, flag.ErrHelp) {
			t.Errorf("%s: gapsched %v accepted, want error", c.name, c.args)
		}
		if !strings.Contains(stderr.String(), "Usage") && !strings.Contains(stderr.String(), "-algo") {
			t.Errorf("%s: no usage text on stderr:\n%s", c.name, stderr.String())
		}
	}
	if _, err := parseArgs([]string{"-h"}, &bytes.Buffer{}); !errors.Is(err, flag.ErrHelp) {
		t.Errorf("-h: got %v, want flag.ErrHelp", err)
	}
	o, err := parseArgs([]string{"-algo", "power", "-alpha", "3", "-quiet"}, &bytes.Buffer{})
	if err != nil || o.algo != "power" || o.alpha != 3 || !o.quiet {
		t.Errorf("valid command line mangled: %+v, %v", o, err)
	}
}

func writeInstance(t *testing.T, f sched.File) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "inst.json")
	out, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	if err := f.WriteJSON(out); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunOneIntervalAlgorithms(t *testing.T) {
	path := writeInstance(t, sched.File{
		Kind:  sched.KindOneInterval,
		Alpha: 2,
		Instance: &sched.Instance{Procs: 1, Jobs: []sched.Job{
			{Release: 0, Deadline: 2}, {Release: 5, Deadline: 7},
		}},
	})
	for _, algo := range []string{"gaps", "power", "greedy", "edf"} {
		var b strings.Builder
		if err := run(options{input: path, algo: algo, alpha: -1, budget: 2}, &b); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !strings.Contains(b.String(), "t=") {
			t.Fatalf("%s: no assignments printed:\n%s", algo, b.String())
		}
	}
}

func TestRunMultiAlgorithms(t *testing.T) {
	path := writeInstance(t, sched.File{
		Kind:  sched.KindMultiInterval,
		Alpha: 1,
		Multi: &sched.MultiInstance{Jobs: []sched.MultiJob{
			sched.MultiJobFromTimes(0, 4),
			sched.MultiJobFromTimes(1, 5),
			sched.MultiJobFromTimes(9),
		}},
	})
	for _, algo := range []string{"approx", "naive", "throughput"} {
		var b strings.Builder
		if err := run(options{input: path, algo: algo, alpha: -1, budget: 2, quiet: true}, &b); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if b.Len() == 0 {
			t.Fatalf("%s: empty output", algo)
		}
	}
}

func TestRunLaysOutMultiprocForMultiAlgos(t *testing.T) {
	path := writeInstance(t, sched.File{
		Kind:  sched.KindOneInterval,
		Alpha: 1,
		Instance: &sched.Instance{Procs: 2, Jobs: []sched.Job{
			{Release: 0, Deadline: 1}, {Release: 0, Deadline: 1},
		}},
	})
	var b strings.Builder
	if err := run(options{input: path, algo: "naive", alpha: -1, budget: 2, quiet: true}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "laid out") {
		t.Fatalf("expected lay-out note:\n%s", b.String())
	}
}

// writeScript drops a stream-mode delta script into a temp file.
func writeScript(t *testing.T, script string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "deltas.txt")
	if err := os.WriteFile(path, []byte(script), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunStream drives the incremental session mode end to end: adds
// and removes evolve the printed cost, fragment reuse shows up in the
// counters, comments are skipped, and an infeasible interlude is
// reported without killing the stream.
func TestRunStream(t *testing.T) {
	path := writeScript(t, `
# two separated clusters
add 0 2
+ 1 3
add 20 22
# a point-job clash makes it infeasible, then the clash leaves
add 20 20
add 20 20
- 4
remove 3
`)
	var b strings.Builder
	if err := run(options{input: path, algo: "gaps", alpha: -1, budget: 2, procs: 1, stream: true}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 7 {
		t.Fatalf("got %d output lines, want 7 (one per delta):\n%s", len(lines), out)
	}
	for _, want := range []string{
		"+[0,2] id=0",
		"spans=1 gaps=0", // first cluster alone
		"spans=2 gaps=1", // both clusters
		"INFEASIBLE",     // three point jobs in [20,22]... only after the clash
		"resolved=1",     // the delta touched one fragment
		"reused=1",       // the untouched cluster was reused
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stream output missing %q:\n%s", want, out)
		}
	}
	last := lines[len(lines)-1]
	if !strings.Contains(last, "jobs=3") || !strings.Contains(last, "spans=2") {
		t.Errorf("final state wrong: %q", last)
	}
}

// TestRunStreamPower: the power objective prints evolving power and
// honors alpha.
func TestRunStreamPower(t *testing.T) {
	path := writeScript(t, "add 0 0\nadd 5 5\n")
	var b strings.Builder
	if err := run(options{input: path, algo: "power", alpha: 3, budget: 2, procs: 1, stream: true}, &b); err != nil {
		t.Fatal(err)
	}
	// Two unit jobs 4 idle units apart at α=3: sleeping between them
	// (2 active + 2·α = 8) beats bridging the gap (6 active + α = 9).
	if !strings.Contains(b.String(), "power=8.000") {
		t.Fatalf("expected power=8.000 in:\n%s", b.String())
	}
}

// TestRunStreamRejections: malformed scripts, unknown ids, and
// unsupported algorithms fail with errors naming the offending line.
func TestRunStreamRejections(t *testing.T) {
	for name, c := range map[string]struct{ algo, script string }{
		"bad op":          {"gaps", "frobnicate 1 2\n"},
		"bad window":      {"gaps", "add one two\n"},
		"bad id":          {"gaps", "add 0 1\nremove x\n"},
		"unknown id":      {"gaps", "remove 9\n"},
		"empty window":    {"gaps", "add 5 1\n"},
		"multi algorithm": {"approx", "add 0 1\n"},
	} {
		path := writeScript(t, c.script)
		if err := run(options{input: path, algo: c.algo, alpha: -1, budget: 2, procs: 1, stream: true}, &strings.Builder{}); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRunRejections(t *testing.T) {
	if err := run(options{input: "/nonexistent/file.json", algo: "gaps", alpha: -1, budget: 2, quiet: true}, &strings.Builder{}); err == nil {
		t.Fatal("missing file accepted")
	}
	path := writeInstance(t, sched.File{
		Kind:     sched.KindOneInterval,
		Instance: &sched.Instance{Procs: 1, Jobs: []sched.Job{{Release: 0, Deadline: 0}}},
	})
	if err := run(options{input: path, algo: "bogus", alpha: -1, budget: 2, quiet: true}, &strings.Builder{}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if err := run(options{input: path, algo: "approx", alpha: -1, budget: 2, quiet: true}, &strings.Builder{}); err != nil {
		t.Fatalf("one-interval should lay out for approx: %v", err)
	}
}

// TestRunModes drives the gaps and power algorithms through every
// solver tier: heuristic output must carry the certificate line, auto
// with an unbounded budget must agree with exact, and a bad mode must
// be rejected.
func TestRunModes(t *testing.T) {
	path := writeInstance(t, sched.File{
		Kind:  sched.KindOneInterval,
		Alpha: 2,
		Instance: &sched.Instance{Procs: 1, Jobs: []sched.Job{
			{Release: 0, Deadline: 2}, {Release: 1, Deadline: 4}, {Release: 30, Deadline: 33},
		}},
	})
	for _, algo := range []string{"gaps", "power"} {
		var exact, heur, auto strings.Builder
		if err := run(options{input: path, algo: algo, alpha: -1, mode: "exact"}, &exact); err != nil {
			t.Fatalf("%s exact: %v", algo, err)
		}
		if strings.Contains(exact.String(), "certified lower bound") {
			t.Fatalf("%s exact printed a certificate:\n%s", algo, exact.String())
		}
		if err := run(options{input: path, algo: algo, alpha: -1, mode: "heuristic", quiet: true}, &heur); err != nil {
			t.Fatalf("%s heuristic: %v", algo, err)
		}
		for _, want := range []string{"heuristic", "certified lower bound", "cost/LB ratio", "heuristic fragments: 2/2"} {
			if !strings.Contains(heur.String(), want) {
				t.Fatalf("%s heuristic output missing %q:\n%s", algo, want, heur.String())
			}
		}
		// Unbounded auto reports the same first (cost) line as exact,
		// modulo the mode banner that follows it.
		if err := run(options{input: path, algo: algo, alpha: -1, mode: "auto", stateBudget: math.MaxInt, quiet: true}, &auto); err != nil {
			t.Fatalf("%s auto: %v", algo, err)
		}
		exactCost := strings.SplitN(exact.String(), "\n", 2)[0]
		autoCost := strings.SplitN(auto.String(), "\n", 2)[0]
		if exactCost != autoCost {
			t.Fatalf("%s: auto cost line %q, exact %q", algo, autoCost, exactCost)
		}
	}
	if err := run(options{input: path, algo: "gaps", mode: "sloppy"}, &strings.Builder{}); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

// TestRunStreamOnline drives -stream -online through the adversarial
// family: every resolve line carries the measured competitive ratio,
// and the final ratio is exactly n (3 committed spans against an
// offline optimum of 1).
func TestRunStreamOnline(t *testing.T) {
	path := writeScript(t, `
# three flexible jobs, then the tight jobs that punish eagerness
add 0 9
add 0 9
add 0 9
add 3 4
add 5 6
add 7 8
`)
	var b strings.Builder
	if err := run(options{input: path, algo: "gaps", alpha: -1, budget: 2, procs: 1, stream: true, online: true}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 {
		t.Fatalf("got %d output lines, want 6:\n%s", len(lines), out)
	}
	for _, line := range lines {
		if !strings.Contains(line, "ratio=") || !strings.Contains(line, "committed=") {
			t.Fatalf("online resolve line missing ratio columns: %q", line)
		}
	}
	if last := lines[len(lines)-1]; !strings.Contains(last, "ratio=3.000") || !strings.Contains(last, "spans=3") {
		t.Fatalf("final adversarial state wrong: %q", last)
	}
}

// TestRunStreamOnlineRejections: online streams are commit-only —
// removals and out-of-order arrivals fail with line-numbered errors —
// and -online without -stream is a usage error.
func TestRunStreamOnlineRejections(t *testing.T) {
	for name, script := range map[string]string{
		"remove":       "add 0 4\nremove 0\n",
		"out of order": "add 5 9\nadd 2 9\n",
	} {
		path := writeScript(t, script)
		err := run(options{input: path, algo: "gaps", alpha: -1, budget: 2, procs: 1, stream: true, online: true}, &strings.Builder{})
		if err == nil || !strings.Contains(err.Error(), "line 2") {
			t.Errorf("%s: err %v, want a line-2 error", name, err)
		}
	}
	if err := run(options{algo: "gaps", alpha: -1, online: true}, &strings.Builder{}); err == nil || !strings.Contains(err.Error(), "-stream") {
		t.Errorf("-online without -stream: %v, want usage error", err)
	}
}

// TestRunStreamModes: -stream sessions honor -mode, printing the lb
// column for non-exact tiers.
func TestRunStreamModes(t *testing.T) {
	script := "add 0 3\nadd 50 54\nremove 0\n"
	var b strings.Builder
	if err := run(options{algo: "gaps", alpha: -1, procs: 1, stream: true, mode: "heuristic",
		input: writeScript(t, script)}, &b); err != nil {
		t.Fatalf("stream heuristic: %v", err)
	}
	out := b.String()
	if !strings.Contains(out, "lb=") || !strings.Contains(out, "heur=") {
		t.Fatalf("stream heuristic output missing certificate columns:\n%s", out)
	}
	var e strings.Builder
	if err := run(options{algo: "gaps", alpha: -1, procs: 1, stream: true, mode: "exact",
		input: writeScript(t, script)}, &e); err != nil {
		t.Fatalf("stream exact: %v", err)
	}
	if strings.Contains(e.String(), "lb=") {
		t.Fatalf("stream exact printed certificates:\n%s", e.String())
	}
}

// TestRunTrace: -trace on an exact solve prints the per-stage span
// summary after the schedule; algorithms without a traced pipeline
// stay silent.
func TestRunTrace(t *testing.T) {
	path := writeInstance(t, sched.File{
		Kind:  sched.KindOneInterval,
		Alpha: 2,
		Instance: &sched.Instance{Procs: 1, Jobs: []sched.Job{
			{Release: 0, Deadline: 2}, {Release: 5, Deadline: 7},
		}},
	})
	o, err := parseArgs([]string{"-trace", "-input", path}, &bytes.Buffer{})
	if err != nil || !o.trace {
		t.Fatalf("parseArgs -trace: %+v, %v", o, err)
	}
	var b strings.Builder
	if err := run(options{input: path, algo: "gaps", alpha: -1, budget: 2, trace: true}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"trace (", "prep", "solve[", "assemble"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace summary missing %q:\n%s", want, out)
		}
	}
	var quiet strings.Builder
	if err := run(options{input: path, algo: "greedy", alpha: -1, budget: 2, trace: true}, &quiet); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(quiet.String(), "trace (") {
		t.Fatalf("untraced algorithm printed a trace:\n%s", quiet.String())
	}
}
