package main

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sched"
)

// Command-line errors must exit non-zero with the usage text, matching
// every CLI in this repository.
func TestGapschedRejectsBadCommandLines(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-bogus"}},
		{"positional argument", []string{"extra"}},
		{"trailing argument", []string{"-algo", "gaps", "extra"}},
		{"bad value", []string{"-budget", "many"}},
	}
	for _, c := range cases {
		var stderr bytes.Buffer
		if _, err := parseArgs(c.args, &stderr); err == nil || errors.Is(err, flag.ErrHelp) {
			t.Errorf("%s: gapsched %v accepted, want error", c.name, c.args)
		}
		if !strings.Contains(stderr.String(), "Usage") && !strings.Contains(stderr.String(), "-algo") {
			t.Errorf("%s: no usage text on stderr:\n%s", c.name, stderr.String())
		}
	}
	if _, err := parseArgs([]string{"-h"}, &bytes.Buffer{}); !errors.Is(err, flag.ErrHelp) {
		t.Errorf("-h: got %v, want flag.ErrHelp", err)
	}
	o, err := parseArgs([]string{"-algo", "power", "-alpha", "3", "-quiet"}, &bytes.Buffer{})
	if err != nil || o.algo != "power" || o.alpha != 3 || !o.quiet {
		t.Errorf("valid command line mangled: %+v, %v", o, err)
	}
}

func writeInstance(t *testing.T, f sched.File) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "inst.json")
	out, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	if err := f.WriteJSON(out); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunOneIntervalAlgorithms(t *testing.T) {
	path := writeInstance(t, sched.File{
		Kind:  sched.KindOneInterval,
		Alpha: 2,
		Instance: &sched.Instance{Procs: 1, Jobs: []sched.Job{
			{Release: 0, Deadline: 2}, {Release: 5, Deadline: 7},
		}},
	})
	for _, algo := range []string{"gaps", "power", "greedy", "edf"} {
		var b strings.Builder
		if err := run(path, algo, -1, 2, false, &b); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !strings.Contains(b.String(), "t=") {
			t.Fatalf("%s: no assignments printed:\n%s", algo, b.String())
		}
	}
}

func TestRunMultiAlgorithms(t *testing.T) {
	path := writeInstance(t, sched.File{
		Kind:  sched.KindMultiInterval,
		Alpha: 1,
		Multi: &sched.MultiInstance{Jobs: []sched.MultiJob{
			sched.MultiJobFromTimes(0, 4),
			sched.MultiJobFromTimes(1, 5),
			sched.MultiJobFromTimes(9),
		}},
	})
	for _, algo := range []string{"approx", "naive", "throughput"} {
		var b strings.Builder
		if err := run(path, algo, -1, 2, true, &b); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if b.Len() == 0 {
			t.Fatalf("%s: empty output", algo)
		}
	}
}

func TestRunLaysOutMultiprocForMultiAlgos(t *testing.T) {
	path := writeInstance(t, sched.File{
		Kind:  sched.KindOneInterval,
		Alpha: 1,
		Instance: &sched.Instance{Procs: 2, Jobs: []sched.Job{
			{Release: 0, Deadline: 1}, {Release: 0, Deadline: 1},
		}},
	})
	var b strings.Builder
	if err := run(path, "naive", -1, 2, true, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "laid out") {
		t.Fatalf("expected lay-out note:\n%s", b.String())
	}
}

func TestRunRejections(t *testing.T) {
	if err := run("/nonexistent/file.json", "gaps", -1, 2, true, &strings.Builder{}); err == nil {
		t.Fatal("missing file accepted")
	}
	path := writeInstance(t, sched.File{
		Kind:     sched.KindOneInterval,
		Instance: &sched.Instance{Procs: 1, Jobs: []sched.Job{{Release: 0, Deadline: 0}}},
	})
	if err := run(path, "bogus", -1, 2, true, &strings.Builder{}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if err := run(path, "approx", -1, 2, true, &strings.Builder{}); err != nil {
		t.Fatalf("one-interval should lay out for approx: %v", err)
	}
}
