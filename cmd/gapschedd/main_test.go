package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// Flag handling follows the repository CLI convention: unknown flags,
// stray positional arguments, and bad values fail with the usage text;
// -h asks for help.
func TestParseArgs(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr bool
		help    bool
	}{
		{name: "defaults", args: nil},
		{name: "tuned", args: []string{"-addr", "127.0.0.1:0", "-window", "5ms", "-max-batch", "8"}},
		{name: "unknown flag", args: []string{"-bogus"}, wantErr: true},
		{name: "positional argument", args: []string{"extra"}, wantErr: true},
		{name: "bad duration", args: []string{"-window", "fast"}, wantErr: true},
		{name: "help", args: []string{"-h"}, wantErr: true, help: true},
	}
	for _, c := range cases {
		var stderr bytes.Buffer
		o, err := parseArgs(c.args, &stderr)
		if (err != nil) != c.wantErr {
			t.Errorf("%s: err = %v, wantErr = %v", c.name, err, c.wantErr)
			continue
		}
		if c.help != errors.Is(err, flag.ErrHelp) {
			t.Errorf("%s: ErrHelp mismatch: %v", c.name, err)
		}
		if err != nil && !c.help && !strings.Contains(stderr.String(), "Usage") && !strings.Contains(stderr.String(), "-addr") {
			t.Errorf("%s: no usage text on stderr:\n%s", c.name, stderr.String())
		}
		if err == nil && o.addr == "" {
			t.Errorf("%s: empty addr", c.name)
		}
	}
}

// Startup/shutdown smoke test: the daemon answers /healthz and a solve
// request, then exits cleanly when its context is canceled.
func TestServeSmoke(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	o, err := parseArgs([]string{"-window", "1ms", "-grace", "2s"}, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serve(ctx, ln, nil, o, slog.New(slog.DiscardHandler)) }()

	base := "http://" + ln.Addr().String()
	awaitHealthy(t, base)

	body := `{"objective":"power","alpha":2,"jobs":[{"release":0,"deadline":2},{"release":6,"deadline":8}]}`
	resp, err := http.Post(base+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status = %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// awaitHealthy polls /healthz until the daemon answers.
func awaitHealthy(t *testing.T, base string) {
	t.Helper()
	for deadline := time.Now().Add(5 * time.Second); ; {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never came up: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Profiling smoke test: with -pprof the debug endpoints serve on their
// own listener only — the solve listener stays clean — and without it
// no pprof surface exists anywhere.
func TestServePprof(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pprofLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	o, err := parseArgs([]string{"-window", "1ms", "-grace", "2s", "-pprof", "127.0.0.1:0"}, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serve(ctx, ln, pprofLn, o, slog.New(slog.DiscardHandler)) }()

	base := "http://" + ln.Addr().String()
	awaitHealthy(t, base)

	resp, err := http.Get("http://" + pprofLn.Addr().String() + "/debug/pprof/")
	if err != nil {
		t.Fatalf("pprof listener: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status = %d, want 200", resp.StatusCode)
	}

	// The solve listener must not have grown the debug routes.
	resp, err = http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("solve listener serves /debug/pprof/ with status %d, want 404", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}

	// Disabled: the pprof listener is closed with the daemon, so the
	// endpoint is gone.
	if _, err := http.Get("http://" + pprofLn.Addr().String() + "/debug/pprof/"); err == nil {
		t.Fatal("pprof endpoint still serving after shutdown")
	}
}
