// Command gapschedd is the batched scheduling daemon: an HTTP/JSON
// front end to the exact solving pipeline with request coalescing
// (internal/service). Concurrent solve requests are buffered into
// short time/size windows and dispatched as one fragment-level batch
// over a persistent shared fragment cache, so independent clients with
// similar workloads hit cached canonical fragments instead of
// re-solving.
//
// Usage:
//
//	gapschedd -addr :8080 -window 2ms -max-batch 64 -cache 65536
//
// Endpoints:
//
//	POST   /v1/solve   {"objective":"gaps","procs":2,"jobs":[{"release":0,"deadline":3}]}
//	POST   /v1/batch   {"requests":[...]}
//	POST   /v1/session {"objective":"power","alpha":2,"jobs":[...]}   → {"session":"s1",...}
//	POST   /v1/session/{id}/delta   {"add":[...],"remove":[3]}
//	POST   /v1/session/{id}/solve   incremental resolve of the live instance
//	DELETE /v1/session/{id}
//	GET    /healthz
//	GET    /metrics
//
// Sessions hold a live job set whose exact solution is maintained
// incrementally: a delta re-solves only the schedule fragments it
// touched. Idle sessions expire after -session-ttl.
//
// -pprof serves net/http/pprof on a separate (ideally loopback-only)
// listener, e.g. -pprof 127.0.0.1:6060; the solve listener never
// exposes /debug/pprof.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: the listener
// stops, open coalescing windows are flushed so buffered clients still
// get answers, and in-flight solves complete.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/service"
)

// options is the parsed command line.
type options struct {
	addr      string
	pprofAddr string
	cfg       service.Config
	grace     time.Duration
	verbose   bool
	logLevel  string
	logFormat string
}

// parseArgs parses the command line with the shared CLI conventions
// (internal/cli): unknown flags and stray positional arguments are
// reported with the usage text and flag.ErrHelp is passed through. It
// never calls os.Exit; main maps the error to a status.
func parseArgs(args []string, stderr io.Writer) (options, error) {
	fs := flag.NewFlagSet("gapschedd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o options
	fs.StringVar(&o.addr, "addr", ":8080", "listen address")
	fs.StringVar(&o.pprofAddr, "pprof", "", "serve net/http/pprof on this separate address (empty disables; keep it loopback-only)")
	fs.DurationVar(&o.cfg.Window, "window", 2*time.Millisecond, "coalescing window (0 disables coalescing)")
	fs.IntVar(&o.cfg.MaxBatch, "max-batch", service.DefaultMaxBatch, "dispatch a window early at this many requests")
	fs.IntVar(&o.cfg.CacheCapacity, "cache", service.DefaultCacheCapacity, "fragment cache capacity (negative disables)")
	fs.IntVar(&o.cfg.Workers, "workers", 0, "solver workers per dispatch (0 = GOMAXPROCS)")
	fs.DurationVar(&o.cfg.SolveTimeout, "timeout", 30*time.Second, "per-dispatch solve deadline (0 = none)")
	fs.DurationVar(&o.cfg.SessionTTL, "session-ttl", service.DefaultSessionTTL, "idle incremental sessions expire after this (negative = never)")
	fs.IntVar(&o.cfg.MaxSessions, "max-sessions", service.DefaultMaxSessions, "bound on open incremental sessions (negative = unlimited)")
	fs.DurationVar(&o.grace, "grace", 10*time.Second, "graceful shutdown budget before the listener is torn down")
	fs.BoolVar(&o.verbose, "v", false, "log every dispatch summary")
	fs.StringVar(&o.logLevel, "log-level", "info", "minimum log level: debug, info, warn or error")
	fs.StringVar(&o.logFormat, "log-format", "text", "log output format: text or json")
	fs.DurationVar(&o.cfg.SlowSolve, "slow-solve", 0, "warn with the per-stage trace for solves at least this slow (0 disables)")
	fs.IntVar(&o.cfg.TraceRing, "trace-ring", 0, "solve traces retained for /v1/debug/traces (0 = default, negative disables)")
	fs.DurationVar(&o.cfg.SLOLatencyP99, "slo-p99", service.DefaultSLOLatencyP99, "sliding-p99 latency objective per endpoint (negative disables)")
	fs.Float64Var(&o.cfg.SLOErrorRate, "slo-error-rate", service.DefaultSLOErrorRate, "windowed 5xx error-rate objective (negative disables)")
	fs.DurationVar(&o.cfg.SLOWindow, "slo-window", service.DefaultSLOWindow, "trailing window SLO verdicts cover")
	if err := cli.Parse(fs, args); err != nil {
		return options{}, err
	}
	return o, nil
}

// buildLogger constructs the daemon's structured logger from the
// -log-level and -log-format flags.
func buildLogger(level, format string, w io.Writer) (*slog.Logger, error) {
	var lvl slog.Level
	switch level {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
}

func main() {
	o, err := parseArgs(os.Args[1:], os.Stderr)
	if err != nil {
		os.Exit(cli.Status(err))
	}
	logger, err := buildLogger(o.logLevel, o.logFormat, os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gapschedd: %v\n", err)
		os.Exit(2)
	}
	o.cfg.Logger = logger
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		logger.Error("listen failed", "err", err)
		os.Exit(1)
	}
	var pprofLn net.Listener
	if o.pprofAddr != "" {
		if pprofLn, err = net.Listen("tcp", o.pprofAddr); err != nil {
			logger.Error("pprof listen failed", "err", err)
			os.Exit(1)
		}
	}
	if err := serve(ctx, ln, pprofLn, o, logger); err != nil {
		logger.Error("serve failed", "err", err)
		os.Exit(1)
	}
}

// pprofHandler is the profiling mux served on the -pprof listener. The
// handlers are mounted on a dedicated mux (not http.DefaultServeMux)
// so the solve endpoints never gain /debug/pprof/* routes: profiling
// stays on its own, typically loopback-only, address.
func pprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// serve runs the daemon on ln until ctx is canceled, then shuts down
// gracefully: the listener drains within the grace budget and the
// service flushes its open coalescing windows. A non-nil pprofLn gets
// the profiling mux; it is torn down with the daemon (profiling
// requests are diagnostics, not client traffic, so no grace is owed).
func serve(ctx context.Context, ln, pprofLn net.Listener, o options, logger *slog.Logger) error {
	srv := service.New(o.cfg)
	httpSrv := &http.Server{Handler: srv}
	logger.Info("listening",
		"addr", ln.Addr().String(),
		"window", o.cfg.Window,
		"maxBatch", o.cfg.MaxBatch,
		"cache", o.cfg.CacheCapacity)
	if pprofLn != nil {
		pprofSrv := &http.Server{Handler: pprofHandler()}
		logger.Info("pprof listening", "addr", pprofLn.Addr().String())
		go func() {
			if err := pprofSrv.Serve(pprofLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof listener failed", "err", err)
			}
		}()
		defer pprofSrv.Close()
	}

	errc := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	select {
	case err := <-errc:
		srv.Close()
		return err
	case <-ctx.Done():
	}
	logger.Info("shutting down")
	// Flush the coalescing windows concurrently with the listener
	// drain: buffered handlers are blocked on their window's dispatch,
	// so the flush is what lets their connections go idle inside the
	// grace budget — flushing only after Shutdown returned would burn
	// the whole budget first and reset the very clients the flush is
	// meant to answer.
	closed := make(chan struct{})
	go func() {
		srv.Close()
		close(closed)
	}()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), o.grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Warn("listener shutdown incomplete", "err", err)
	}
	<-closed
	if o.verbose {
		st := srv.Stats()
		logger.Info("served",
			"solveRequests", st.SolveRequests,
			"batchRequests", st.BatchRequests,
			"dispatches", st.Dispatches,
			"coalesced", st.Coalesced,
			"cacheHits", st.Cache.Hits,
			"cacheMisses", st.Cache.Misses)
	}
	return <-errc
}
