package gapsched_test

import (
	"fmt"

	gapsched "repro"
)

// ExampleMinimizeGaps demonstrates exact single-machine gap
// minimization (Theorem 1 with p = 1, Baptiste's problem): three jobs
// whose windows admit a two-span schedule.
func ExampleMinimizeGaps() {
	in := gapsched.NewInstance([]gapsched.Job{
		{Release: 0, Deadline: 2},
		{Release: 1, Deadline: 3},
		{Release: 8, Deadline: 9},
	})
	res, err := gapsched.MinimizeGaps(in)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("spans:", res.Spans, "gaps:", res.Gaps)
	// Output:
	// spans: 2 gaps: 1
}

// ExampleMinimizePower shows the idle-active bridging of Theorem 2: a
// gap of length 2 is cheaper to bridge than an α = 5 wake-up.
func ExampleMinimizePower() {
	in := gapsched.NewInstance([]gapsched.Job{
		{Release: 0, Deadline: 0},
		{Release: 3, Deadline: 3},
	})
	res, err := gapsched.MinimizePower(in, 5)
	if err != nil {
		fmt.Println(err)
		return
	}
	// 2 busy units + one α wake-up + 2 bridged idle units.
	fmt.Printf("power: %.0f\n", res.Power)
	// Output:
	// power: 9
}

// ExampleMinimizeGaps_multiprocessor shows Lemma 1's staircase: two
// simultaneous jobs need two processors, and the optimal schedule
// stacks them into a prefix.
func ExampleMinimizeGaps_multiprocessor() {
	in := gapsched.NewMultiprocInstance([]gapsched.Job{
		{Release: 0, Deadline: 0},
		{Release: 0, Deadline: 0},
		{Release: 1, Deadline: 1},
	}, 2)
	res, err := gapsched.MinimizeGaps(in)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("total wake-ups:", res.Spans)
	// Output:
	// total wake-ups: 2
}

// ExampleApproxMultiPower runs the Theorem 3 pipeline on a
// multi-interval instance.
func ExampleApproxMultiPower() {
	mi := gapsched.MultiInstance{Jobs: []gapsched.MultiJob{
		gapsched.MultiJobFromTimes(0, 1, 2, 3),
		gapsched.MultiJobFromTimes(0, 1, 2, 3),
		gapsched.MultiJobFromTimes(2, 3, 9),
	}}
	ms, st, err := gapsched.ApproxMultiPower(mi, 2, gapsched.ApproxOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := ms.Validate(mi); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("spans:", st.Spans)
	// Output:
	// spans: 1
}

// ExampleMaxThroughput books the consultant of §6 for one working
// stretch: the greedy picks the longest fully-fillable interval.
func ExampleMaxThroughput() {
	tasks := gapsched.MultiInstance{Jobs: []gapsched.MultiJob{
		gapsched.MultiJobFromTimes(0),
		gapsched.MultiJobFromTimes(1),
		gapsched.MultiJobFromTimes(2),
		gapsched.MultiJobFromTimes(10),
	}}
	res, err := gapsched.MaxThroughput(tasks, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("tasks done:", res.Jobs(), "in", res.Spans, "stretch")
	// Output:
	// tasks done: 3 in 1 stretch
}

// ExampleSolveArithmetic solves a homogeneous arithmetic family (the
// §2 corollary): each job's two intervals are one period apart.
func ExampleSolveArithmetic() {
	mi := gapsched.MultiInstance{Jobs: []gapsched.MultiJob{
		gapsched.NewMultiJob(gapsched.Interval{Lo: 0, Hi: 1}, gapsched.Interval{Lo: 10, Hi: 11}),
		gapsched.NewMultiJob(gapsched.Interval{Lo: 0, Hi: 1}, gapsched.Interval{Lo: 10, Hi: 11}),
	}}
	res, err := gapsched.SolveArithmetic(mi)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("spans:", res.Spans, "period:", res.Period)
	// Output:
	// spans: 1 period: 10
}
