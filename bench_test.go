package gapsched

// Benchmarks regenerating every experiment of DESIGN.md §4 (E1–E23),
// one benchmark per table/figure. Run with:
//
//	go test -bench=. -benchmem
//
// The human-readable tables come from cmd/gapbench; these benchmarks
// measure the cost of the same code paths on pinned workloads so
// regressions are visible. Exact-solver benchmarks additionally report
// a states/op metric — the number of memoized DP subproblems — so
// engine-level wins (memo layout, preprocessing) show up separately
// from raw nanoseconds.

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"testing"
	"time"

	"repro/internal/arith"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/greedysp"
	"repro/internal/multiinterval"
	"repro/internal/obs"
	"repro/internal/online"
	"repro/internal/poly"
	"repro/internal/powerdown"
	"repro/internal/reduction"
	"repro/internal/restart"
	"repro/internal/sched"
	"repro/internal/setcover"
	"repro/internal/setpacking"
	"repro/internal/workload"
)

// BenchmarkE1_MultiprocExact: Theorem 1 DP and the oracle on the same
// small multiprocessor instance.
func BenchmarkE1_MultiprocExact(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	in := workload.FeasibleOneInterval(rng, 8, 2, 12, 4)
	b.Run("dp", func(b *testing.B) {
		states := 0
		for i := 0; i < b.N; i++ {
			res, err := core.SolveGaps(in)
			if err != nil {
				b.Fatal(err)
			}
			states += res.States
		}
		b.ReportMetric(float64(states)/float64(b.N), "states/op")
	})
	b.Run("oracle", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := exact.SpansOneInterval(in); !ok {
				b.Fatal("infeasible")
			}
		}
	})
}

// BenchmarkE2_ScaleN / BenchmarkE2_ScaleP: the Theorem 1 DP across n
// and p (the scaling series of E2).
func BenchmarkE2_ScaleN(b *testing.B) {
	for _, n := range []int{8, 14, 20, 26} {
		rng := rand.New(rand.NewSource(2))
		in := workload.FeasibleOneInterval(rng, n, 2, 2*n, 6)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			states := 0
			for i := 0; i < b.N; i++ {
				res, err := core.SolveGaps(in)
				if err != nil {
					b.Fatal(err)
				}
				states += res.States
			}
			b.ReportMetric(float64(states)/float64(b.N), "states/op")
		})
	}
}

func BenchmarkE2_ScaleP(b *testing.B) {
	for _, p := range []int{1, 2, 4, 8} {
		rng := rand.New(rand.NewSource(3))
		in := workload.FeasibleOneInterval(rng, 12, p, 20, 6)
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			states := 0
			for i := 0; i < b.N; i++ {
				res, err := core.SolveGaps(in)
				if err != nil {
					b.Fatal(err)
				}
				states += res.States
			}
			b.ReportMetric(float64(states)/float64(b.N), "states/op")
		})
	}
}

// BenchmarkE3_PowerExact: the Theorem 2 power DP across α.
func BenchmarkE3_PowerExact(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	in := workload.FeasibleOneInterval(rng, 8, 2, 12, 4)
	for _, alpha := range []float64{0.5, 2, 8} {
		b.Run(fmt.Sprintf("alpha=%v", alpha), func(b *testing.B) {
			states := 0
			for i := 0; i < b.N; i++ {
				res, err := core.SolvePower(in, alpha)
				if err != nil {
					b.Fatal(err)
				}
				states += res.States
			}
			b.ReportMetric(float64(states)/float64(b.N), "states/op")
		})
	}
}

// BenchmarkE4_ApproxRatio: the Theorem 3 pipeline vs the naive matching
// baseline on one multi-interval workload.
func BenchmarkE4_ApproxRatio(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	mi := workload.FeasibleMultiInterval(rng, 14, 2, 2, 26)
	b.Run("pipeline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := multiinterval.ApproxPower(mi, 2, multiinterval.Options{SearchDepth: 2}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := multiinterval.NaiveSchedule(mi); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE5_PackingQuality: greedy vs local-search set packing.
func BenchmarkE5_PackingQuality(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	in := setpacking.Instance{Universe: 24}
	for i := 0; i < 30; i++ {
		s := make([]int, 3)
		for j := range s {
			s[j] = rng.Intn(24)
		}
		in.Sets = append(in.Sets, s)
	}
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			setpacking.Greedy(in)
		}
	})
	b.Run("local-search", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			setpacking.LocalSearch(in, 2)
		}
	})
}

// BenchmarkE6_SetCoverReduction: building and solving the Theorem 4
// construction.
func BenchmarkE6_SetCoverReduction(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	sc := setcover.Random(rng, 6, 5, 3)
	b.Run("construct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			reduction.FromSetCover(sc)
		}
	})
	r := reduction.FromSetCover(sc)
	cover := setcover.Greedy(sc)
	b.Run("roundtrip", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ms, ok := r.CoverToSchedule(cover)
			if !ok {
				b.Fatal("cover rejected")
			}
			r.ScheduleToCover(ms)
		}
	})
}

// BenchmarkE7_IntervalReductions: Theorem 7/8 gadget construction.
func BenchmarkE7_IntervalReductions(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	mi := workload.FeasibleMultiInterval(rng, 6, 4, 1, 20)
	um := workload.FeasibleUnitMulti(rng, 4, 5, 20)
	b.Run("to-2-interval", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			reduction.ToTwoInterval(mi)
		}
	})
	b.Run("to-3-unit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			reduction.ToThreeUnit(um)
		}
	})
}

// BenchmarkE8_UnitReductions: Theorem 9/10 constructions.
func BenchmarkE8_UnitReductions(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	tu := workload.FeasibleUnitMulti(rng, 6, 2, 14)
	du := workload.DisjointUnit(rng, 5, 3)
	sc := setcover.RandomB(rng, 5, 4, 2)
	b.Run("2unit-to-disjoint", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			reduction.TwoUnitToDisjoint(tu)
		}
	})
	b.Run("disjoint-to-2unit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			reduction.DisjointToTwoUnit(du)
		}
	})
	b.Run("bsetcover-to-disjoint", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			reduction.FromBSetCoverDisjoint(sc)
		}
	})
}

// BenchmarkE9_RestartGreedy: Theorem 11 greedy vs the exact oracle.
func BenchmarkE9_RestartGreedy(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	mi := workload.MultiInterval(rng, 12, 2, 2, 20)
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := restart.Greedy(mi, 3); err != nil {
				b.Fatal(err)
			}
		}
	})
	small := workload.MultiInterval(rng, 8, 2, 2, 14)
	b.Run("oracle", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			exact.MaxThroughput(small, 3)
		}
	})
}

// BenchmarkE10_Greedy3Approx: the [FHKN06] greedy vs the exact DP.
func BenchmarkE10_Greedy3Approx(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	in := workload.FeasibleOneInterval(rng, 10, 1, 16, 5)
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := greedysp.Solve(in); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exact-dp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.SolveGaps(in); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE11_OnlineLowerBound: the adversarial family across n.
func BenchmarkE11_OnlineLowerBound(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := online.LowerBound(n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE12_SingleProc: the p = 1 specialization (Baptiste) across n.
func BenchmarkE12_SingleProc(b *testing.B) {
	for _, n := range []int{10, 20, 40} {
		rng := rand.New(rand.NewSource(12))
		in := workload.FeasibleOneInterval(rng, n, 1, 3*n, 6)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			states := 0
			for i := 0; i < b.N; i++ {
				res, err := core.SolveGaps(in)
				if err != nil {
					b.Fatal(err)
				}
				states += res.States
			}
			b.ReportMetric(float64(states)/float64(b.N), "states/op")
		})
	}
}

// BenchmarkE13_Arithmetic: the §2 corollary solver on laid-out
// arithmetic instances.
func BenchmarkE13_Arithmetic(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	in := workload.FeasibleOneInterval(rng, 8, 3, 10, 4)
	mi, _ := sched.LayOut(in)
	for i := 0; i < b.N; i++ {
		if _, err := arith.Solve(mi); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE14_PowerDown: online power-down policy evaluation on EDF
// schedules.
func BenchmarkE14_PowerDown(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	in := workload.FeasibleOneInterval(rng, 20, 1, 50, 6)
	for _, p := range []powerdown.Policy{powerdown.SkiRental{}, powerdown.RandomizedExp{}} {
		b.Run(p.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, ok := powerdown.EvaluateEDF(in, 3, p); !ok {
					b.Fatal("infeasible")
				}
			}
		})
	}
}

// BenchmarkE16_BatchSolve: the Solver facade fanning a fleet of
// instances across the worker pool, single-worker vs all cores, for
// both objectives. The states/op metric sums memoized DP subproblems
// across the whole batch (preprocessing splits shrink it).
func BenchmarkE16_BatchSolve(b *testing.B) {
	rng := rand.New(rand.NewSource(16))
	ins := make([]Instance, 32)
	for i := range ins {
		ins[i] = workload.FeasibleOneInterval(rng, 10, 2, 30, 5)
	}
	for _, cfg := range []struct {
		name   string
		solver Solver
	}{
		{"gaps/serial", Solver{Workers: 1}},
		{"gaps/parallel", Solver{}},
		{"gaps/parallel-noprep", Solver{NoPreprocess: true}},
		{"power/serial", Solver{Objective: ObjectivePower, Alpha: 2, Workers: 1}},
		{"power/parallel", Solver{Objective: ObjectivePower, Alpha: 2}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			states := 0
			for i := 0; i < b.N; i++ {
				for _, r := range cfg.solver.SolveBatch(ins) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
					states += r.Solution.States
				}
			}
			b.ReportMetric(float64(states)/float64(b.N), "states/op")
		})
	}
}

// BenchmarkE17_FragmentCache: a duplicate-heavy batch through the
// fragment-level SolveBatch with the canonical-fragment cache off, on
// per batch (CacheSize), and shared across iterations (Cache). The
// hits/op metric counts fragments served from the cache.
func BenchmarkE17_FragmentCache(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	distinct := make([]Instance, 8)
	for i := range distinct {
		distinct[i] = workload.FeasibleOneInterval(rng, 10, 2, 30, 5)
	}
	ins := make([]Instance, 64)
	for i := range ins {
		ins[i] = distinct[rng.Intn(len(distinct))]
	}
	for _, cfg := range []struct {
		name   string
		solver Solver
	}{
		{"uncached", Solver{}},
		{"cached-per-batch", Solver{CacheSize: 1 << 12}},
		{"cached-shared", Solver{Cache: NewFragmentCache(1 << 12)}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			hits := 0
			for i := 0; i < b.N; i++ {
				for _, r := range cfg.solver.SolveBatch(ins) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
					hits += r.Solution.CacheHits
				}
			}
			b.ReportMetric(float64(hits)/float64(b.N), "hits/op")
		})
	}
}

// BenchmarkE19_IncrementalSession: a single-job delta (add + remove of
// the same job, so state is iteration-invariant) on a many-fragment
// live instance, resolved incrementally through a Session versus
// solved from scratch. The fragments/op metric reports how many
// fragments the incremental path actually re-solved per delta.
func BenchmarkE19_IncrementalSession(b *testing.B) {
	rng := rand.New(rand.NewSource(19))
	const clusters, perCluster, spacing = 12, 8, 40
	var jobs []sched.Job
	for c := 0; c < clusters; c++ {
		for k := 0; k < perCluster; k++ {
			r := spacing*c + k + rng.Intn(3)
			jobs = append(jobs, sched.Job{Release: r, Deadline: r + 2 + rng.Intn(3)})
		}
	}
	delta := sched.Job{Release: spacing * 5, Deadline: spacing*5 + 6}
	for _, cfg := range []struct {
		name   string
		solver Solver
	}{
		{"gaps", Solver{}},
		{"power", Solver{Objective: ObjectivePower, Alpha: 3}},
	} {
		b.Run(cfg.name+"/incremental", func(b *testing.B) {
			sess, err := cfg.solver.Open(1)
			if err != nil {
				b.Fatal(err)
			}
			defer sess.Close()
			for _, j := range jobs {
				if _, err := sess.Add(j); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := sess.Resolve(); err != nil {
				b.Fatal(err)
			}
			resolved := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id, err := sess.Add(delta)
				if err != nil {
					b.Fatal(err)
				}
				sol, err := sess.Resolve()
				if err != nil {
					b.Fatal(err)
				}
				resolved += sol.ResolvedFragments
				if err := sess.Remove(id); err != nil {
					b.Fatal(err)
				}
				if sol, err = sess.Resolve(); err != nil {
					b.Fatal(err)
				}
				resolved += sol.ResolvedFragments
			}
			b.ReportMetric(float64(resolved)/float64(b.N), "fragments/op")
		})
		b.Run(cfg.name+"/scratch", func(b *testing.B) {
			withDelta := NewInstance(append(append([]sched.Job(nil), jobs...), delta))
			without := NewInstance(jobs)
			for i := 0; i < b.N; i++ {
				if _, err := cfg.solver.Solve(withDelta); err != nil {
					b.Fatal(err)
				}
				if _, err := cfg.solver.Solve(without); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE20_HeuristicTier: the heuristic tier on instances the
// exact DP cannot serve — 100k-job stress profiles through the full
// ModeHeuristic pipeline, the ModeAuto mixed-instance path under the
// default budget, and the exact tier on the largest dense fragment it
// can still afford, for contrast. Heuristic lanes report the certified
// cost/lower-bound ratio as ratio/op.
func BenchmarkE20_HeuristicTier(b *testing.B) {
	heurSolver := Solver{Mode: ModeHeuristic}
	for _, prof := range []string{workload.ProfileBursty, workload.ProfileDense} {
		rng := rand.New(rand.NewSource(20))
		in, err := workload.Stress(rng, prof, 100_000, 2)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("heuristic/"+prof+"-100k", func(b *testing.B) {
			ratio := 0.0
			for i := 0; i < b.N; i++ {
				sol, err := heurSolver.Solve(in)
				if err != nil {
					b.Fatal(err)
				}
				ratio += float64(sol.Spans) / sol.LowerBound
			}
			b.ReportMetric(ratio/float64(b.N), "ratio/op")
		})
	}
	b.Run("auto-mixed/default-budget", func(b *testing.B) {
		rng := rand.New(rand.NewSource(20))
		var jobs []sched.Job
		for c := 0; c < 12; c++ {
			for k := 0; k < 8; k++ {
				r := c*200 + k + rng.Intn(3)
				jobs = append(jobs, sched.Job{Release: r, Deadline: r + 2 + rng.Intn(4)})
			}
		}
		// The big fragment must stay above the pruning-discounted default
		// budget so the mix is genuinely mixed; n=400 dense is admitted
		// to the exact tier nowadays (BenchmarkE21_BoundedExact covers
		// that class), so the wall here is n=800. The polynomial backend
		// is ablated (PolyBudget −1) because it would otherwise solve the
		// n=800 single-processor fragment exactly — this lane benches the
		// dp+heuristic mix; BenchmarkE23_PolyBackend benches the poly
		// route.
		for _, j := range workload.StressDense(rng, 800, 1).Jobs {
			jobs = append(jobs, sched.Job{Release: j.Release + 2400, Deadline: j.Deadline + 2400})
		}
		in := NewInstance(jobs)
		auto := Solver{Mode: ModeAuto, PolyBudget: -1}
		for i := 0; i < b.N; i++ {
			sol, err := auto.Solve(in)
			if err != nil {
				b.Fatal(err)
			}
			if sol.HeuristicFragments == 0 {
				b.Fatal("mixed instance never used the heuristic tier")
			}
		}
	})
	b.Run("exact-wall/dense/n=400", func(b *testing.B) {
		rng := rand.New(rand.NewSource(20))
		in := workload.StressDense(rng, 400, 2)
		states := 0
		for i := 0; i < b.N; i++ {
			sol, err := Solver{}.Solve(in)
			if err != nil {
				b.Fatal(err)
			}
			states += sol.States
		}
		b.ReportMetric(float64(states)/float64(b.N), "states/op")
	})
}

// BenchmarkE21_BoundedExact: the branch-and-bound exact tier on the
// E20 exact-wall dense class. The bounded lanes are the production
// default (greedy incumbent + admissible node bounds); the unpruned
// lanes ablate pruning via Options.NoPrune and must report the same
// cost. The auto-admitted lane is the workload the pruning-aware
// admission discount newly sends to the exact tier under the default
// StateBudget — it asserts the certificate (zero heuristic fragments)
// so a regression in admission fails loudly rather than silently
// benching the heuristic.
func BenchmarkE21_BoundedExact(b *testing.B) {
	for _, n := range []int{400, 800} {
		rng := rand.New(rand.NewSource(21))
		in := workload.StressDense(rng, n, 2)
		name := "dense/n=" + strconv.Itoa(n)
		b.Run("bounded/"+name, func(b *testing.B) {
			expanded := 0
			for i := 0; i < b.N; i++ {
				res, err := core.SolveGapsOpt(in, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				expanded += res.ExpandedStates
			}
			b.ReportMetric(float64(expanded)/float64(b.N), "expanded/op")
		})
		b.Run("unpruned/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.SolveGapsOpt(in, core.Options{NoPrune: true})
				if err != nil {
					b.Fatal(err)
				}
				if res.PrunedStates != 0 {
					b.Fatal("NoPrune solve reported pruned states")
				}
			}
		})
	}
	b.Run("auto-admitted/dense/n=400", func(b *testing.B) {
		rng := rand.New(rand.NewSource(21))
		in := NewInstance(workload.StressDense(rng, 400, 1).Jobs)
		auto := Solver{Mode: ModeAuto}
		for i := 0; i < b.N; i++ {
			sol, err := auto.Solve(in)
			if err != nil {
				b.Fatal(err)
			}
			if sol.HeuristicFragments != 0 {
				b.Fatal("discounted admission no longer keeps n=400 dense exact")
			}
		}
	})
}

// BenchmarkE22_OnlineTier: the online streaming tier end to end —
// release-ordered Adds through an OpenOnline session plus the final
// mirror resolve that measures the competitive ratio. Lanes cover the
// adversarial Ω(n) family, heuristic-scale stress streams, and the
// ski-rental power-down family; each reports the measured ratio as
// ratio/op and fails loudly if it leaves its analytic range.
func BenchmarkE22_OnlineTier(b *testing.B) {
	stream := func(b *testing.B, s Solver, in Instance) Solution {
		b.Helper()
		jobs := append([]sched.Job(nil), in.Jobs...)
		sort.SliceStable(jobs, func(x, y int) bool { return jobs[x].Release < jobs[y].Release })
		ss, err := s.OpenOnline(in.Procs)
		if err != nil {
			b.Fatal(err)
		}
		defer ss.Close()
		for _, j := range jobs {
			if _, err := ss.Add(j); err != nil {
				b.Fatal(err)
			}
		}
		sol, err := ss.Resolve()
		if err != nil {
			b.Fatal(err)
		}
		return sol
	}
	b.Run("adversarial/n=32", func(b *testing.B) {
		in := workload.OnlineLowerBound(32)
		ratio := 0.0
		for i := 0; i < b.N; i++ {
			sol := stream(b, Solver{}, Instance{Jobs: in.Jobs, Procs: in.Procs})
			if sol.Spans != 32 {
				b.Fatalf("online run has %d spans, want 32", sol.Spans)
			}
			ratio += sol.CompetitiveRatio
		}
		b.ReportMetric(ratio/float64(b.N), "ratio/op")
	})
	for _, prof := range []string{workload.ProfileBursty, workload.ProfileSparse} {
		rng := rand.New(rand.NewSource(22))
		in, err := workload.Stress(rng, prof, 4000, 2)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("stream/"+prof+"-4k", func(b *testing.B) {
			ratio := 0.0
			for i := 0; i < b.N; i++ {
				sol := stream(b, Solver{}, Instance{Jobs: in.Jobs, Procs: in.Procs})
				if sol.CompetitiveRatio < 1-1e-12 {
					b.Fatalf("measured ratio %v < 1", sol.CompetitiveRatio)
				}
				ratio += sol.CompetitiveRatio
			}
			b.ReportMetric(ratio/float64(b.N), "ratio/op")
		})
	}
	b.Run("powerdown/alpha=2/period=6", func(b *testing.B) {
		rng := rand.New(rand.NewSource(22))
		in := workload.Periodic(rng, 200, 6, 0, 0)
		s := Solver{Objective: ObjectivePower, Alpha: 2}
		bound := powerdown.CompetitiveRatio(powerdown.Threshold{Tau: 2}, 2, 5)
		ratio := 0.0
		for i := 0; i < b.N; i++ {
			sol := stream(b, s, Instance{Jobs: in.Jobs, Procs: in.Procs})
			if sol.CompetitiveRatio > bound+1e-9 {
				b.Fatalf("measured ratio %v exceeds analytic bound %v", sol.CompetitiveRatio, bound)
			}
			ratio += sol.CompetitiveRatio
		}
		b.ReportMetric(ratio/float64(b.N), "ratio/op")
	})
}

// BenchmarkE23_PolyBackend: the polynomial single-machine exact
// backend head to head with the index-space DP engine on the dense
// single-processor class — the two are the same dynamic program at
// p = 1, so the expanded/op metrics must agree — plus the ModeAuto
// lane the backend unlocks: a mixed instance whose n=2000 dense
// fragment sits far beyond the DP tier's discounted admission bound
// and used to fall to the heuristic, now solved exactly by poly under
// the default budgets. The lane asserts the certificate (the big
// fragment on poly, nothing heuristic) so an admission regression
// fails loudly rather than silently benching the heuristic.
func BenchmarkE23_PolyBackend(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	dense := workload.StressDense(rng, 400, 1)
	b.Run("dp/dense/n=400", func(b *testing.B) {
		expanded := 0
		for i := 0; i < b.N; i++ {
			res, err := core.SolveGaps(dense)
			if err != nil {
				b.Fatal(err)
			}
			expanded += res.ExpandedStates
		}
		b.ReportMetric(float64(expanded)/float64(b.N), "expanded/op")
	})
	b.Run("poly/dense/n=400", func(b *testing.B) {
		expanded := 0
		for i := 0; i < b.N; i++ {
			res, err := poly.SolveGaps(dense)
			if err != nil {
				b.Fatal(err)
			}
			expanded += res.ExpandedStates
		}
		b.ReportMetric(float64(expanded)/float64(b.N), "expanded/op")
	})
	b.Run("auto-poly/dense/n=2000", func(b *testing.B) {
		rng := rand.New(rand.NewSource(23))
		var jobs []sched.Job
		for c := 0; c < 8; c++ {
			for k := 0; k < 6; k++ {
				r := c*200 + k + rng.Intn(3)
				jobs = append(jobs, sched.Job{Release: r, Deadline: r + 2 + rng.Intn(4)})
			}
		}
		for _, j := range workload.StressDense(rng, 2000, 1).Jobs {
			jobs = append(jobs, sched.Job{Release: j.Release + 1600, Deadline: j.Deadline + 1600})
		}
		in := NewInstance(jobs)
		auto := Solver{Mode: ModeAuto}
		for i := 0; i < b.N; i++ {
			sol, err := auto.Solve(in)
			if err != nil {
				b.Fatal(err)
			}
			if sol.PolyFragments != 1 || sol.HeuristicFragments != 0 {
				b.Fatalf("auto tiers poly=%d heur=%d, want the dense fragment on poly",
					sol.PolyFragments, sol.HeuristicFragments)
			}
		}
	})
}

// BenchmarkE15_GridAblation: anchor grid vs full-horizon grid on a
// sparse instance.
func BenchmarkE15_GridAblation(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	in := workload.FeasibleOneInterval(rng, 8, 1, 240, 4)
	b.Run("anchor-grid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.SolveGapsOpt(in, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-grid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.SolveGapsOpt(in, core.Options{FullGrid: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkObsOverhead: cost of the observability layer on the two
// hottest facade paths — the E1 single-instance exact solve and the
// E17 cache-shared batch — bare versus under a context-attached trace.
// The always-on Timings accounting is included in both variants; the
// traced variants add per-stage span recording plus one trace
// setup/finish per op, which is the daemon's per-dispatch shape. The
// histogram sub-benchmark pins the cost of one Observe, the unit the
// service pays per request and per fragment.
func BenchmarkObsOverhead(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	one := workload.FeasibleOneInterval(rng, 8, 2, 12, 4)
	rng = rand.New(rand.NewSource(17))
	distinct := make([]Instance, 8)
	for i := range distinct {
		distinct[i] = workload.FeasibleOneInterval(rng, 10, 2, 30, 5)
	}
	batch := make([]Instance, 64)
	for i := range batch {
		batch[i] = distinct[rng.Intn(len(distinct))]
	}
	b.Run("solve/bare", func(b *testing.B) {
		s := Solver{}
		for i := 0; i < b.N; i++ {
			if _, err := s.Solve(one); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("solve/traced", func(b *testing.B) {
		s := Solver{}
		for i := 0; i < b.N; i++ {
			tr := obs.NewTrace("bench")
			if _, err := s.SolveContext(obs.With(context.Background(), tr), one); err != nil {
				b.Fatal(err)
			}
			tr.Finish(nil)
		}
	})
	b.Run("batch/bare", func(b *testing.B) {
		s := Solver{Cache: NewFragmentCache(1 << 12)}
		for i := 0; i < b.N; i++ {
			for _, r := range s.SolveBatch(batch) {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
		}
	})
	b.Run("batch/traced", func(b *testing.B) {
		s := Solver{Cache: NewFragmentCache(1 << 12)}
		for i := 0; i < b.N; i++ {
			tr := obs.NewTrace("bench")
			for _, r := range s.SolveBatchContext(obs.With(context.Background(), tr), batch) {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
			tr.Finish(nil)
		}
	})
	b.Run("histogram", func(b *testing.B) {
		var h obs.Histogram
		for i := 0; i < b.N; i++ {
			h.Observe(time.Duration(i))
		}
	})
}
