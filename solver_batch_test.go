package gapsched

// Edge-case and cache tests for the fragment-level SolveBatch: mixed
// infeasible instances, determinism across worker counts, empty
// instances, uniform configuration errors, and the canonical-fragment
// cache (transient, persistent, and within a single Solve).

import (
	"errors"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/workload"
)

// infeasibleInstance needs two unit jobs in one slot on one processor.
func infeasibleInstance() Instance {
	return NewInstance([]Job{
		{Release: 4, Deadline: 4},
		{Release: 4, Deadline: 4},
	})
}

// clusteredInstance builds count copies of the same 3-job cluster
// spread far apart, so prep splits it into count identical fragments.
func clusteredInstance(count, stride int) Instance {
	var jobs []Job
	for c := 0; c < count; c++ {
		base := c * stride
		jobs = append(jobs,
			Job{Release: base, Deadline: base + 2},
			Job{Release: base + 1, Deadline: base + 4},
			Job{Release: base + 4, Deadline: base + 5},
		)
	}
	return NewInstance(jobs)
}

func TestSolveBatchInfeasibleLeavesNeighborsUndisturbed(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	var ins []Instance
	for i := 0; i < 30; i++ {
		if i%3 == 1 {
			ins = append(ins, infeasibleInstance())
		} else {
			ins = append(ins, workload.FeasibleOneInterval(rng, 1+rng.Intn(6), 1+rng.Intn(2), 12, 4))
		}
	}
	for _, s := range []Solver{
		{},
		{CacheSize: 256},
		{Objective: ObjectivePower, Alpha: 1.5, CacheSize: 256},
	} {
		batch := s.SolveBatch(ins)
		for i := range ins {
			want, wantErr := s.Solve(ins[i])
			if i%3 == 1 {
				if !errors.Is(batch[i].Err, ErrInfeasible) {
					t.Fatalf("instance %d: want ErrInfeasible, got %v", i, batch[i].Err)
				}
				continue
			}
			if batch[i].Err != nil || wantErr != nil {
				t.Fatalf("instance %d: batch err %v, solve err %v", i, batch[i].Err, wantErr)
			}
			got := batch[i].Solution
			if got.Spans != want.Spans || got.States != want.States ||
				math.Abs(got.Power-want.Power) > 0 {
				t.Fatalf("instance %d: batch %+v, sequential %+v", i, got, want)
			}
			if err := got.Schedule.Validate(ins[i]); err != nil {
				t.Fatalf("instance %d: invalid schedule next to infeasible neighbor: %v", i, err)
			}
		}
	}
}

func TestSolveBatchInfeasibleFragmentMidInstance(t *testing.T) {
	// Three far-apart fragments, the middle one infeasible: the batch
	// path (which may skip sibling fragments once one fails) must
	// report the same error as a sequential Solve, and neighbors in the
	// batch must be untouched.
	mixed := NewInstance([]Job{
		{Release: 0, Deadline: 2},
		{Release: 1000, Deadline: 1000},
		{Release: 1000, Deadline: 1000},
		{Release: 2000, Deadline: 2003},
	})
	ins := []Instance{clusteredInstance(2, 1000), mixed, clusteredInstance(3, 1000)}
	for _, s := range []Solver{{}, {CacheSize: 64}, {Workers: 4}} {
		_, solveErr := s.Solve(mixed)
		if !errors.Is(solveErr, ErrInfeasible) {
			t.Fatalf("Solve: want ErrInfeasible, got %v", solveErr)
		}
		batch := s.SolveBatch(ins)
		if batch[1].Err == nil || batch[1].Err.Error() != solveErr.Error() {
			t.Fatalf("batch err %v, Solve err %v", batch[1].Err, solveErr)
		}
		for _, i := range []int{0, 2} {
			if batch[i].Err != nil {
				t.Fatalf("neighbor %d failed: %v", i, batch[i].Err)
			}
			if err := batch[i].Solution.Schedule.Validate(ins[i]); err != nil {
				t.Fatalf("neighbor %d: %v", i, err)
			}
		}
	}
}

func TestSolveBatchDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ins := make([]Instance, 24)
	for i := range ins {
		switch i % 4 {
		case 0:
			ins[i] = clusteredInstance(3, 1000) // multi-fragment
		case 1:
			ins[i] = infeasibleInstance()
		case 2:
			ins[i] = Instance{Jobs: nil, Procs: 1} // empty
		default:
			ins[i] = workload.Multiproc(rng, 1+rng.Intn(6), 1+rng.Intn(2), 10+rng.Intn(8), 4)
		}
	}
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, base := range []Solver{
		{},
		{CacheSize: 512},
		{Objective: ObjectivePower, Alpha: 2, CacheSize: 512},
	} {
		var ref []BatchResult
		for wi, workers := range workerCounts {
			s := base
			s.Workers = workers
			batch := s.SolveBatch(ins)
			if wi == 0 {
				ref = batch
				continue
			}
			for i := range ins {
				a, b := ref[i], batch[i]
				if (a.Err == nil) != (b.Err == nil) ||
					(a.Err != nil && a.Err.Error() != b.Err.Error()) {
					t.Fatalf("workers=%d instance %d: err %v vs reference %v", workers, i, b.Err, a.Err)
				}
				if a.Err != nil {
					continue
				}
				// Everything except CacheHits must be bit-identical;
				// hit attribution may legitimately shift between
				// workers racing on the same fragment.
				as, bs := a.Solution, b.Solution
				as.CacheHits, bs.CacheHits = 0, 0
				if as.Spans != bs.Spans || as.Gaps != bs.Gaps || as.States != bs.States ||
					as.Subinstances != bs.Subinstances || as.Power != bs.Power {
					t.Fatalf("workers=%d instance %d: %+v vs reference %+v", workers, i, bs, as)
				}
				if err := bs.Schedule.Validate(ins[i]); err != nil {
					t.Fatalf("workers=%d instance %d: invalid schedule: %v", workers, i, err)
				}
			}
		}
	}
}

func TestSolveBatchEmptyAndZeroJobInstances(t *testing.T) {
	ins := []Instance{
		{Jobs: nil, Procs: 1},
		NewInstance([]Job{{Release: 0, Deadline: 1}}),
		{Jobs: []Job{}, Procs: 3},
		{Jobs: nil, Procs: 0}, // invalid: no processors
	}
	batch := (Solver{}).SolveBatch(ins)
	for i, in := range ins {
		want, wantErr := (Solver{}).Solve(in)
		if (wantErr == nil) != (batch[i].Err == nil) ||
			(wantErr != nil && wantErr.Error() != batch[i].Err.Error()) {
			t.Fatalf("instance %d: batch err %v, solve err %v", i, batch[i].Err, wantErr)
		}
		if wantErr != nil {
			continue
		}
		got := batch[i].Solution
		if got.Spans != want.Spans || got.Subinstances != want.Subinstances {
			t.Fatalf("instance %d: batch %+v, solve %+v", i, got, want)
		}
		if len(in.Jobs) == 0 {
			if got.Spans != 0 || got.Gaps != 0 || got.Subinstances != 0 || len(got.Schedule.Slots) != 0 {
				t.Fatalf("empty instance %d round-trip: %+v", i, got)
			}
		}
		if err := got.Schedule.Validate(in); err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
	}
	if batch[3].Err == nil {
		t.Fatal("zero-processor instance accepted")
	}
}

func TestSolveBatchUniformConfigErrors(t *testing.T) {
	ins := []Instance{
		NewInstance([]Job{{Release: 0, Deadline: 1}}),
		infeasibleInstance(),
	}
	for name, s := range map[string]Solver{
		"negative-alpha-power": {Objective: ObjectivePower, Alpha: -0.5},
		"negative-alpha-gaps":  {Alpha: -2},
		"unknown-objective":    {Objective: Objective(42)},
	} {
		_, solveErr := s.Solve(ins[0])
		if solveErr == nil {
			t.Fatalf("%s: Solve accepted bad config", name)
		}
		batch := s.SolveBatch(ins)
		for i, r := range batch {
			if r.Err == nil || r.Err.Error() != solveErr.Error() {
				t.Fatalf("%s: instance %d got %v, Solve reports %v", name, i, r.Err, solveErr)
			}
		}
	}
}

func TestSolveBatchCachedMatchesUncached(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	distinct := make([]Instance, 6)
	for i := range distinct {
		distinct[i] = workload.FeasibleOneInterval(rng, 8, 2, 40, 4)
	}
	ins := make([]Instance, 48)
	for i := range ins {
		ins[i] = distinct[rng.Intn(len(distinct))]
	}
	for _, objective := range []Objective{ObjectiveGaps, ObjectivePower} {
		uncached := Solver{Objective: objective, Alpha: 2}.SolveBatch(ins)
		cached := Solver{Objective: objective, Alpha: 2, CacheSize: 1024}.SolveBatch(ins)
		hits := 0
		for i := range ins {
			u, c := uncached[i], cached[i]
			if (u.Err == nil) != (c.Err == nil) {
				t.Fatalf("%v instance %d: cached err %v, uncached %v", objective, i, c.Err, u.Err)
			}
			if u.Err != nil {
				continue
			}
			if c.Solution.Spans != u.Solution.Spans || c.Solution.Power != u.Solution.Power ||
				c.Solution.States != u.Solution.States {
				t.Fatalf("%v instance %d: cached %+v, uncached %+v", objective, i, c.Solution, u.Solution)
			}
			if err := c.Solution.Schedule.Validate(ins[i]); err != nil {
				t.Fatalf("%v instance %d: cached schedule invalid: %v", objective, i, err)
			}
			hits += c.Solution.CacheHits
		}
		if hits == 0 {
			t.Fatalf("%v: duplicate-heavy batch produced no cache hits", objective)
		}
	}
}

func TestFragmentCachePersistsAcrossBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	ins := make([]Instance, 12)
	for i := range ins {
		ins[i] = workload.FeasibleOneInterval(rng, 7, 1, 30, 4)
	}
	cache := NewFragmentCache(4096)
	s := Solver{Cache: cache}
	first := s.SolveBatch(ins)
	second := s.SolveBatch(ins)
	frags, secondHits := 0, 0
	for i := range ins {
		if first[i].Err != nil || second[i].Err != nil {
			t.Fatalf("instance %d: errs %v / %v", i, first[i].Err, second[i].Err)
		}
		if first[i].Solution.Spans != second[i].Solution.Spans {
			t.Fatalf("instance %d: second batch changed the answer", i)
		}
		frags += second[i].Solution.Subinstances
		secondHits += second[i].Solution.CacheHits
	}
	if secondHits != frags {
		t.Fatalf("second identical batch: %d hits for %d fragments (want all hits)", secondHits, frags)
	}
	st := cache.Stats()
	if st.Hits == 0 || st.Misses == 0 || cache.Len() == 0 {
		t.Fatalf("implausible persistent cache stats %+v len %d", st, cache.Len())
	}
}

func TestSolveUsesCacheAcrossIdenticalFragments(t *testing.T) {
	// One instance whose prep decomposition yields 5 identical
	// fragments: with a cache, a single Solve call should solve the
	// canonical fragment once and serve the other 4 as hits.
	in := clusteredInstance(5, 1000)
	cache := NewFragmentCache(64)
	withCache, err := Solver{Cache: cache}.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	without, err := Solver{}.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if withCache.Subinstances != 5 {
		t.Fatalf("expected 5 fragments, got %d", withCache.Subinstances)
	}
	if withCache.CacheHits != 4 {
		t.Fatalf("expected 4 cache hits, got %d", withCache.CacheHits)
	}
	if without.CacheHits != 0 {
		t.Fatalf("uncached solve reported %d cache hits", without.CacheHits)
	}
	if withCache.Spans != without.Spans || withCache.States != without.States {
		t.Fatalf("cached solve %+v differs from uncached %+v", withCache, without)
	}
	if err := withCache.Schedule.Validate(in); err != nil {
		t.Fatalf("cached schedule invalid: %v", err)
	}
}
