package gapsched

// Native fuzz targets hardening the full pipeline: for any decodable
// instance, the preprocessed pipeline (with and without the fragment
// cache, solo and batched) must agree exactly with a NoPreprocess
// direct DP solve — same feasibility verdict, same optimal cost, valid
// schedules. Seeds come from the internal/workload generators; the
// decoder clamps every field so all byte strings map to small valid
// instances and the DP stays fast enough to fuzz.

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/feas"
	"repro/internal/poly"
	"repro/internal/sched"
	"repro/internal/workload"
)

const (
	fuzzMaxJobs    = 7
	fuzzMaxProcs   = 3
	fuzzMaxRelease = 40
	fuzzMaxSlack   = 6
	fuzzMaxAlpha   = 9 // half-units: alpha ∈ {0, 0.5, …, 4}
)

// encodeFuzzInstance serializes an instance into the byte format that
// decodeFuzzInstance parses, for seeding the corpus. Out-of-range
// fields are clamped by the modulus, which only matters for seeds drawn
// beyond the fuzz ranges (the workload calls below stay inside them).
func encodeFuzzInstance(in Instance, alphaHalves byte) []byte {
	data := []byte{alphaHalves % fuzzMaxAlpha, byte(len(in.Jobs)-1) % fuzzMaxJobs, byte(in.Procs-1) % fuzzMaxProcs}
	for _, j := range in.Jobs {
		data = append(data, byte(j.Release)%fuzzMaxRelease, byte(j.Deadline-j.Release)%fuzzMaxSlack)
	}
	return data
}

// decodeFuzzInstance maps arbitrary bytes onto a small always-valid
// instance plus a transition cost; ok is false when data is too short.
func decodeFuzzInstance(data []byte) (in Instance, alpha float64, ok bool) {
	if len(data) < 3 {
		return Instance{}, 0, false
	}
	alpha = float64(data[0]%fuzzMaxAlpha) / 2
	n := int(data[1]%fuzzMaxJobs) + 1
	p := int(data[2]%fuzzMaxProcs) + 1
	if len(data) < 3+2*n {
		return Instance{}, 0, false
	}
	jobs := make([]Job, n)
	for i := range jobs {
		r := int(data[3+2*i] % fuzzMaxRelease)
		w := int(data[4+2*i] % fuzzMaxSlack)
		jobs[i] = Job{Release: r, Deadline: r + w}
	}
	return Instance{Jobs: jobs, Procs: p}, alpha, true
}

// seedFuzzCorpus adds workload-generator instances as the corpus.
func seedFuzzCorpus(f *testing.F) {
	f.Helper()
	rng := rand.New(rand.NewSource(51))
	for i := 0; i < 12; i++ {
		in := workload.Multiproc(rng, 1+rng.Intn(fuzzMaxJobs), 1+rng.Intn(fuzzMaxProcs), 6+rng.Intn(30), 5)
		f.Add(encodeFuzzInstance(in, byte(rng.Intn(fuzzMaxAlpha))))
	}
	for i := 0; i < 4; i++ {
		in := workload.Bursty(rng, 1+rng.Intn(fuzzMaxJobs), 1+rng.Intn(3), 30, 4, 4)
		f.Add(encodeFuzzInstance(in, byte(rng.Intn(fuzzMaxAlpha))))
	}
	f.Add(encodeFuzzInstance(workload.TightChain(5), 2))
	f.Add([]byte{0, 0, 0, 0, 0})
}

// checkFuzzAgreement runs one instance through the direct, full, and
// cached pipelines plus a duplicate-pair cached batch, and fails unless
// every path agrees on feasibility and cost with valid schedules.
// cost extracts the objective value from a Solution.
func checkFuzzAgreement(t *testing.T, s Solver, in Instance, cost func(Solution) float64) {
	t.Helper()
	direct := s
	direct.NoPreprocess = true
	cached := s
	cached.Cache = NewFragmentCache(64)
	batched := s
	batched.CacheSize = 64

	want, directErr := direct.Solve(in)
	full, fullErr := s.Solve(in)
	hot, cachedErr := cached.Solve(in)
	pair := batched.SolveBatch([]Instance{in, in})

	for name, err := range map[string]error{
		"full": fullErr, "cached": cachedErr, "batch[0]": pair[0].Err, "batch[1]": pair[1].Err,
	} {
		if (directErr == nil) != (err == nil) {
			t.Fatalf("%s err %v, direct err %v (jobs %v procs %d)", name, err, directErr, in.Jobs, in.Procs)
		}
	}
	if directErr != nil {
		// The only error a valid instance can produce is infeasibility,
		// and every path must classify it identically.
		for name, err := range map[string]error{
			"direct": directErr, "full": fullErr, "cached": cachedErr, "batch": pair[0].Err,
		} {
			if !errors.Is(err, ErrInfeasible) {
				t.Fatalf("%s failed with %v, want ErrInfeasible (jobs %v procs %d)", name, err, in.Jobs, in.Procs)
			}
		}
		return
	}
	for name, sol := range map[string]Solution{
		"full": full, "cached": hot, "batch[0]": pair[0].Solution, "batch[1]": pair[1].Solution,
	} {
		if math.Abs(cost(sol)-cost(want)) > 1e-9 {
			t.Fatalf("%s cost %v, direct %v (jobs %v procs %d)", name, cost(sol), cost(want), in.Jobs, in.Procs)
		}
		if err := sol.Schedule.Validate(in); err != nil {
			t.Fatalf("%s schedule invalid: %v (jobs %v procs %d)", name, err, in.Jobs, in.Procs)
		}
	}
}

// FuzzSessionDeltas decodes bytes as a bounded add/remove delta
// sequence and replays it through incremental sessions — both
// objectives, each with and without a shared fragment cache — checking
// after every delta that Session.Resolve agrees exactly with a
// from-scratch Solve of the session's snapshot instance under the
// same configuration: same feasibility verdict, equal cost, valid
// schedule, and fragment counters that cover the decomposition.
func FuzzSessionDeltas(f *testing.F) {
	f.Add([]byte{2, 1, 1, 0, 2, 1, 5, 1, 0, 0, 0, 1, 9, 3})
	f.Add([]byte{0, 2, 1, 10, 0, 1, 10, 0, 1, 10, 0, 0, 1, 0})
	f.Add([]byte{7, 0, 1, 0, 5, 1, 30, 5, 1, 12, 2, 0, 0, 0, 1, 3, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			t.Skip()
		}
		alpha := float64(data[0]%fuzzMaxAlpha) / 2
		procs := int(data[1]%fuzzMaxProcs) + 1
		type lane struct {
			cfg  Solver
			sess *Session
		}
		lanes := make([]lane, 0, 4)
		for _, cfg := range []Solver{
			{},
			{Cache: NewFragmentCache(64)},
			{Objective: ObjectivePower, Alpha: alpha},
			{Objective: ObjectivePower, Alpha: alpha, Cache: NewFragmentCache(64)},
		} {
			sess, err := cfg.Open(procs)
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			defer sess.Close()
			lanes = append(lanes, lane{cfg, sess})
		}

		var live []int
		deltas := 0
		for i := 2; i+2 < len(data) && deltas < 12; i += 3 {
			deltas++
			if data[i]%4 == 0 && len(live) > 0 {
				k := int(data[i+1]) % len(live)
				for _, l := range lanes {
					if err := l.sess.Remove(live[k]); err != nil {
						t.Fatalf("Remove(%d): %v", live[k], err)
					}
				}
				live = append(live[:k], live[k+1:]...)
			} else {
				r := int(data[i+1] % fuzzMaxRelease)
				j := Job{Release: r, Deadline: r + int(data[i+2]%fuzzMaxSlack)}
				var id int
				for li, l := range lanes {
					got, err := l.sess.Add(j)
					if err != nil {
						t.Fatalf("Add(%v): %v", j, err)
					}
					if li == 0 {
						id = got
					} else if got != id {
						t.Fatalf("lanes assigned different ids %d and %d", id, got)
					}
				}
				live = append(live, id)
			}
			for _, l := range lanes {
				snapshot := l.sess.Instance()
				want, wantErr := l.cfg.Solve(snapshot)
				got, gotErr := l.sess.Resolve()
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("session err %v, scratch err %v (jobs %v procs %d)", gotErr, wantErr, snapshot.Jobs, procs)
				}
				if gotErr != nil {
					if !errors.Is(gotErr, ErrInfeasible) {
						t.Fatalf("session err %v, want ErrInfeasible", gotErr)
					}
					continue
				}
				cost := func(sol Solution) float64 {
					if l.cfg.Objective == ObjectivePower {
						return sol.Power
					}
					return float64(sol.Spans)
				}
				if cost(got) != cost(want) {
					t.Fatalf("session cost %v, scratch %v (jobs %v procs %d alpha %v)",
						cost(got), cost(want), snapshot.Jobs, procs, alpha)
				}
				if err := got.Schedule.Validate(snapshot); err != nil {
					t.Fatalf("session schedule invalid: %v (jobs %v)", err, snapshot.Jobs)
				}
				if got.ResolvedFragments+got.ReusedFragments != got.Subinstances {
					t.Fatalf("counters %d+%d != %d fragments",
						got.ResolvedFragments, got.ReusedFragments, got.Subinstances)
				}
			}
		}
	})
}

// FuzzHeuristicQuality certifies the heuristic tier against the exact
// tier on every decodable instance, for both objectives: the two tiers
// agree on feasibility; heuristic schedules are valid; the cost is
// sandwiched LowerBound ≤ exact ≤ heuristic (with the exact tier
// certifying itself: LowerBound == cost); cached heuristic solves are
// bit-identical to uncached ones; ModeAuto under an unbounded
// StateBudget is bit-for-bit the exact tier (cost, schedule, and
// counters), and under a negative budget bit-for-bit the heuristic.
func FuzzHeuristicQuality(f *testing.F) {
	seedFuzzCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		in, alpha, ok := decodeFuzzInstance(data)
		if !ok {
			t.Skip()
		}
		for _, base := range []Solver{
			{},
			{Objective: ObjectivePower, Alpha: alpha},
		} {
			cost := func(sol Solution) float64 { return base.Objective.Cost(sol) }
			exact := base
			h := base
			h.Mode = ModeHeuristic
			cached := h
			cached.Cache = NewFragmentCache(64)
			auto := base
			auto.Mode, auto.StateBudget = ModeAuto, math.MaxInt
			autoHeur := base
			autoHeur.Mode, autoHeur.StateBudget = ModeAuto, -1

			want, exactErr := exact.Solve(in)
			got, heurErr := h.Solve(in)
			if (exactErr == nil) != (heurErr == nil) {
				t.Fatalf("tiers disagree on feasibility: exact %v, heuristic %v (jobs %v procs %d)",
					exactErr, heurErr, in.Jobs, in.Procs)
			}
			if exactErr != nil {
				for name, err := range map[string]error{"exact": exactErr, "heuristic": heurErr} {
					if !errors.Is(err, ErrInfeasible) {
						t.Fatalf("%s failed with %v, want ErrInfeasible", name, err)
					}
				}
				continue
			}
			if err := got.Schedule.Validate(in); err != nil {
				t.Fatalf("heuristic schedule invalid: %v (jobs %v procs %d)", err, in.Jobs, in.Procs)
			}
			if got.LowerBound > cost(want)+1e-9 || cost(got) < cost(want)-1e-9 {
				t.Fatalf("sandwich violated: lb %v ≤ exact %v ≤ heur %v fails (jobs %v procs %d alpha %v)",
					got.LowerBound, cost(want), cost(got), in.Jobs, in.Procs, alpha)
			}
			if want.LowerBound != cost(want) {
				t.Fatalf("exact tier does not certify itself: lb %v, cost %v", want.LowerBound, cost(want))
			}

			hot, err := cached.Solve(in)
			if err != nil || cost(hot) != cost(got) || hot.LowerBound != got.LowerBound {
				t.Fatalf("cached heuristic drifted: %v/%v vs %v/%v (err %v)",
					cost(hot), hot.LowerBound, cost(got), got.LowerBound, err)
			}

			asExact, err := auto.Solve(in)
			if err != nil {
				t.Fatalf("auto(unbounded): %v", err)
			}
			if cost(asExact) != cost(want) || !reflect.DeepEqual(asExact.Schedule, want.Schedule) ||
				asExact.HeuristicFragments != 0 || asExact.States != want.States {
				t.Fatalf("auto(unbounded) differs from exact: cost %v vs %v (jobs %v procs %d)",
					cost(asExact), cost(want), in.Jobs, in.Procs)
			}
			asHeur, err := autoHeur.Solve(in)
			if err != nil {
				t.Fatalf("auto(-1): %v", err)
			}
			if cost(asHeur) != cost(got) || asHeur.LowerBound != got.LowerBound ||
				asHeur.HeuristicFragments != asHeur.Subinstances {
				t.Fatalf("auto(-1) differs from heuristic: %v/%v vs %v/%v",
					cost(asHeur), asHeur.LowerBound, cost(got), got.LowerBound)
			}
		}
	})
}

// FuzzPrunedExact certifies the branch-and-bound layer at the engine
// boundary on every decodable instance, both objectives: the bounded
// solve (greedy incumbent + per-node lower bounds, the default) must
// agree with the NoPrune ablation bit for bit — same feasibility
// verdict, same optimal cost, byte-identical schedule — and the
// NoPrune run must report zero pruned states, proving the disable
// switch really disables every cut.
func FuzzPrunedExact(f *testing.F) {
	seedFuzzCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		in, alpha, ok := decodeFuzzInstance(data)
		if !ok {
			t.Skip()
		}
		pruned, err1 := core.SolveGaps(in)
		plain, err2 := core.SolveGapsOpt(in, core.Options{NoPrune: true})
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("gaps feasibility disagreement: %v vs %v (jobs %v procs %d)", err1, err2, in.Jobs, in.Procs)
		}
		if err1 == nil {
			if pruned.Spans != plain.Spans || !reflect.DeepEqual(pruned.Schedule, plain.Schedule) {
				t.Fatalf("pruned gaps solve differs: %d vs %d (jobs %v procs %d)",
					pruned.Spans, plain.Spans, in.Jobs, in.Procs)
			}
			if plain.PrunedStates != 0 {
				t.Fatalf("NoPrune gaps run reported %d pruned states", plain.PrunedStates)
			}
		}

		pp, err1 := core.SolvePower(in, alpha)
		pl, err2 := core.SolvePowerOpt(in, alpha, core.Options{NoPrune: true})
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("power feasibility disagreement: %v vs %v (jobs %v procs %d α=%v)", err1, err2, in.Jobs, in.Procs, alpha)
		}
		if err1 == nil {
			if pp.Power != pl.Power || !reflect.DeepEqual(pp.Schedule, pl.Schedule) {
				t.Fatalf("pruned power solve differs: %v vs %v (jobs %v procs %d α=%v)",
					pp.Power, pl.Power, in.Jobs, in.Procs, alpha)
			}
			if pl.PrunedStates != 0 {
				t.Fatalf("NoPrune power run reported %d pruned states", pl.PrunedStates)
			}
		}
	})
}

// FuzzOnlineCommit certifies the online tier's commit contract on
// every decodable instance fed in release order, both objectives:
// once a slot is committed its assignment is bit-exact forever (also
// across Resolve, which projects but must not mutate); Resolve fails
// with ErrInfeasible exactly when the revealed prefix is infeasible by
// the Hall-condition oracle; and on feasible prefixes the online cost
// dominates the exact offline optimum of the revealed prefix, with a
// measured CompetitiveRatio ≥ 1.
func FuzzOnlineCommit(f *testing.F) {
	seedFuzzCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		in, alpha, ok := decodeFuzzInstance(data)
		if !ok {
			t.Skip()
		}
		jobs := append([]Job(nil), in.Jobs...)
		sort.SliceStable(jobs, func(a, b int) bool {
			if jobs[a].Release != jobs[b].Release {
				return jobs[a].Release < jobs[b].Release
			}
			return jobs[a].Deadline < jobs[b].Deadline
		})
		for _, lane := range []Solver{
			{},
			{Objective: ObjectivePower, Alpha: alpha},
		} {
			ss, err := lane.OpenOnline(in.Procs)
			if err != nil {
				t.Fatalf("OpenOnline: %v", err)
			}
			var prevSlots []sched.Assignment
			var prevDone []bool
			checkPrefix := func(when string) {
				slots, done := ss.onl.CommittedPrefix()
				for i, was := range prevDone {
					if !was {
						continue
					}
					if !done[i] || slots[i] != prevSlots[i] {
						t.Fatalf("%s: committed slot %d mutated: %+v/%v → %+v/%v (jobs %v procs %d)",
							when, i, prevSlots[i], was, slots[i], done[i], jobs, in.Procs)
					}
				}
				prevSlots, prevDone = slots, done
			}
			for k, j := range jobs {
				if _, err := ss.Add(j); err != nil {
					t.Fatalf("Add(%v): %v", j, err)
				}
				checkPrefix("after add")
				revealed := ss.Instance()
				feasible := feas.FeasibleOneInterval(revealed)
				sol, err := ss.Resolve()
				checkPrefix("after resolve")
				if feasible != (err == nil) {
					t.Fatalf("prefix %d: oracle says feasible=%v, Resolve err %v (jobs %v procs %d)",
						k, feasible, err, revealed.Jobs, in.Procs)
				}
				if err != nil {
					if !errors.Is(err, ErrInfeasible) {
						t.Fatalf("Resolve failed with %v, want ErrInfeasible", err)
					}
					continue
				}
				opt, err := lane.Solve(revealed)
				if err != nil {
					t.Fatalf("offline prefix solve: %v", err)
				}
				online, offline := lane.Objective.Cost(sol), lane.Objective.Cost(opt)
				if online < offline-1e-9 {
					t.Fatalf("online cost %v beats offline optimum %v (jobs %v procs %d alpha %v)",
						online, offline, revealed.Jobs, in.Procs, alpha)
				}
				if sol.CompetitiveRatio < 1-1e-12 {
					t.Fatalf("CompetitiveRatio %v < 1 (jobs %v procs %d)", sol.CompetitiveRatio, revealed.Jobs, in.Procs)
				}
				if err := sol.Schedule.Validate(revealed); err != nil {
					t.Fatalf("online schedule invalid: %v (jobs %v procs %d)", err, revealed.Jobs, in.Procs)
				}
			}
			ss.Close()
		}
	})
}

// FuzzPolyExact certifies the polynomial single-machine backend against
// the index-space DP engine bit for bit on every decodable instance,
// forced single-processor (the backend's domain), both objectives:
// identical feasibility verdicts, identical optimal costs (dyadic α
// keeps the float sums exact, so equality is exact equality), and
// slot-identical schedules — the equivalence ModeAuto's three-way gate
// relies on when it swaps one exact backend for the other.
func FuzzPolyExact(f *testing.F) {
	seedFuzzCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		in, alpha, ok := decodeFuzzInstance(data)
		if !ok {
			t.Skip()
		}
		in.Procs = 1

		pg, polyErr := poly.SolveGaps(in)
		cg, coreErr := core.SolveGaps(in)
		if (polyErr == nil) != (coreErr == nil) {
			t.Fatalf("gaps feasibility disagreement: poly %v, core %v (jobs %v)", polyErr, coreErr, in.Jobs)
		}
		if polyErr != nil {
			if !errors.Is(polyErr, poly.ErrInfeasible) {
				t.Fatalf("poly gaps failed with %v, want ErrInfeasible", polyErr)
			}
		} else {
			if pg.Cost != float64(cg.Spans) || !reflect.DeepEqual(pg.Schedule, cg.Schedule) {
				t.Fatalf("poly gaps %v differs from core %d (jobs %v)", pg.Cost, cg.Spans, in.Jobs)
			}
			if err := pg.Schedule.Validate(in); err != nil {
				t.Fatalf("poly gaps schedule invalid: %v (jobs %v)", err, in.Jobs)
			}
		}

		pp, polyErr := poly.SolvePower(in, alpha)
		cp, coreErr := core.SolvePower(in, alpha)
		if (polyErr == nil) != (coreErr == nil) {
			t.Fatalf("power feasibility disagreement: poly %v, core %v (jobs %v α=%v)", polyErr, coreErr, in.Jobs, alpha)
		}
		if polyErr != nil {
			if !errors.Is(polyErr, poly.ErrInfeasible) {
				t.Fatalf("poly power failed with %v, want ErrInfeasible", polyErr)
			}
			return
		}
		if pp.Cost != cp.Power || !reflect.DeepEqual(pp.Schedule, cp.Schedule) {
			t.Fatalf("poly power %v differs from core %v (jobs %v α=%v)", pp.Cost, cp.Power, in.Jobs, alpha)
		}
		if err := pp.Schedule.Validate(in); err != nil {
			t.Fatalf("poly power schedule invalid: %v (jobs %v α=%v)", err, in.Jobs, alpha)
		}
	})
}

func FuzzSolveGaps(f *testing.F) {
	seedFuzzCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		in, _, ok := decodeFuzzInstance(data)
		if !ok {
			t.Skip()
		}
		checkFuzzAgreement(t, Solver{}, in, func(sol Solution) float64 { return float64(sol.Spans) })
	})
}

func FuzzSolvePower(f *testing.F) {
	seedFuzzCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		in, alpha, ok := decodeFuzzInstance(data)
		if !ok {
			t.Skip()
		}
		s := Solver{Objective: ObjectivePower, Alpha: alpha}
		checkFuzzAgreement(t, s, in, func(sol Solution) float64 { return sol.Power })
	})
}
