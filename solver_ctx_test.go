package gapsched

import (
	"context"
	"errors"
	"testing"
)

// spread builds a feasible instance whose prep plan has several
// fragments (well-separated job clusters).
func spread(clusters int) Instance {
	var jobs []Job
	for c := 0; c < clusters; c++ {
		base := c * 100
		jobs = append(jobs,
			Job{Release: base, Deadline: base + 3},
			Job{Release: base + 1, Deadline: base + 4},
		)
	}
	return NewInstance(jobs)
}

func TestSolveContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	in := spread(4)
	if _, err := (Solver{}).SolveContext(ctx, in); !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveContext on canceled ctx: got %v, want context.Canceled", err)
	}
	if _, err := (Solver{Objective: ObjectivePower, Alpha: 2}).SolveContext(ctx, in); !errors.Is(err, context.Canceled) {
		t.Fatalf("power SolveContext on canceled ctx: got %v, want context.Canceled", err)
	}
	// Configuration errors are reported even on a dead context: the
	// runtime is validated before the context is consulted.
	if _, err := (Solver{Alpha: -1}).SolveContext(ctx, in); err == nil || errors.Is(err, context.Canceled) {
		t.Fatalf("config error on canceled ctx: got %v, want alpha validation error", err)
	}
}

func TestSolveBatchContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ins := []Instance{spread(3), spread(1), NewInstance(nil)}
	res := (Solver{Workers: 2}).SolveBatchContext(ctx, ins)
	for _, r := range res[:2] {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("batch result on canceled ctx: got %v, want context.Canceled", r.Err)
		}
	}
	// A zero-fragment instance never enters the worker queue, so it
	// completes successfully even on a dead context.
	if r := res[2]; r.Err != nil || r.Solution.Subinstances != 0 {
		t.Fatalf("empty instance on canceled ctx: %+v, %v — want success", r.Solution, r.Err)
	}
}

func TestSolveContextLiveMatchesSolve(t *testing.T) {
	in := spread(5)
	want, err := (Solver{}).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := (Solver{}).SolveContext(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if got.Spans != want.Spans || got.States != want.States || got.Subinstances != want.Subinstances {
		t.Fatalf("SolveContext = %+v, Solve = %+v", got, want)
	}
	batch := (Solver{Workers: 3}).SolveBatchContext(context.Background(), []Instance{in, in})
	for i, r := range batch {
		if r.Err != nil {
			t.Fatalf("batch[%d]: %v", i, r.Err)
		}
		if r.Solution.Spans != want.Spans {
			t.Fatalf("batch[%d].Spans = %d, want %d", i, r.Solution.Spans, want.Spans)
		}
	}
}
