package gapsched

// Property tests for the Solver pipeline: the prep layer plus the
// unified DP engine must agree with the exponential-time oracles in
// internal/exact on randomized small instances, for both objectives,
// with preprocessing on and off; and SolveBatch must be a pure fan-out
// of Solve.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/exact"
	"repro/internal/workload"
)

func TestSolverGapsMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 250; trial++ {
		n := 1 + rng.Intn(8)
		p := 1 + rng.Intn(3)
		// Wide, sparse horizons force prep splits; narrow ones force
		// infeasibility and single-fragment solves.
		horizon := 6 + rng.Intn(30)
		in := workload.Multiproc(rng, n, p, horizon, 4)
		want, feasible := exact.SpansOneInterval(in)
		for _, noPrep := range []bool{false, true} {
			sol, err := Solver{NoPreprocess: noPrep}.Solve(in)
			if !feasible {
				if err != ErrInfeasible {
					t.Fatalf("trial %d (noPrep=%v): oracle infeasible, solver err %v (p=%d jobs %v)",
						trial, noPrep, err, p, in.Jobs)
				}
				continue
			}
			if err != nil {
				t.Fatalf("trial %d (noPrep=%v): solver failed on feasible instance: %v (p=%d jobs %v)",
					trial, noPrep, err, p, in.Jobs)
			}
			if sol.Spans != want {
				t.Fatalf("trial %d (noPrep=%v): solver spans %d, oracle %d (p=%d jobs %v)",
					trial, noPrep, sol.Spans, want, p, in.Jobs)
			}
			if err := sol.Schedule.Validate(in); err != nil {
				t.Fatalf("trial %d (noPrep=%v): invalid schedule: %v", trial, noPrep, err)
			}
			if got := sol.Schedule.Spans(); got != want {
				t.Fatalf("trial %d (noPrep=%v): schedule spans %d, oracle %d", trial, noPrep, got, want)
			}
			if noPrep && sol.Subinstances != 1 {
				t.Fatalf("trial %d: NoPreprocess reported %d subinstances", trial, sol.Subinstances)
			}
		}
	}
}

func TestSolverPowerMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	alphas := []float64{0, 0.5, 1, 2, 3.5, 10}
	for trial := 0; trial < 250; trial++ {
		n := 1 + rng.Intn(7)
		p := 1 + rng.Intn(2)
		alpha := alphas[rng.Intn(len(alphas))]
		horizon := 6 + rng.Intn(24)
		in := workload.Multiproc(rng, n, p, horizon, 4)
		want, feasible := exact.PowerOneInterval(in, alpha)
		for _, noPrep := range []bool{false, true} {
			sol, err := Solver{Objective: ObjectivePower, Alpha: alpha, NoPreprocess: noPrep}.Solve(in)
			if !feasible {
				if err != ErrInfeasible {
					t.Fatalf("trial %d (noPrep=%v): oracle infeasible, solver err %v (p=%d α=%v jobs %v)",
						trial, noPrep, err, p, alpha, in.Jobs)
				}
				continue
			}
			if err != nil {
				t.Fatalf("trial %d (noPrep=%v): solver failed: %v (p=%d α=%v jobs %v)",
					trial, noPrep, err, p, alpha, in.Jobs)
			}
			if math.Abs(sol.Power-want) > 1e-9 {
				t.Fatalf("trial %d (noPrep=%v): solver power %v, oracle %v (p=%d α=%v jobs %v)",
					trial, noPrep, sol.Power, want, p, alpha, in.Jobs)
			}
			if err := sol.Schedule.Validate(in); err != nil {
				t.Fatalf("trial %d (noPrep=%v): invalid schedule: %v", trial, noPrep, err)
			}
			if got := sol.Schedule.PowerCost(alpha); math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d (noPrep=%v): schedule power %v, oracle %v", trial, noPrep, got, want)
			}
		}
	}
}

func TestSolverRejectsBadInput(t *testing.T) {
	if _, err := (Solver{Objective: ObjectivePower, Alpha: -1}).Solve(NewInstance(nil)); err == nil {
		t.Fatal("negative alpha accepted")
	}
	if _, err := (Solver{Objective: Objective(99)}).Solve(NewInstance(nil)); err == nil {
		t.Fatal("unknown objective accepted")
	}
	bad := Instance{Jobs: []Job{{Release: 3, Deadline: 1}}, Procs: 1}
	for _, noPrep := range []bool{false, true} {
		if _, err := (Solver{NoPreprocess: noPrep}).Solve(bad); err == nil {
			t.Fatalf("empty-window job accepted (noPrep=%v)", noPrep)
		}
	}
}

func TestSolverPreprocessSplitsSparseInstances(t *testing.T) {
	// Three clusters far apart: the prep layer must split them and the
	// state count must shrink versus the monolithic solve.
	var jobs []Job
	for _, base := range []int{0, 1000, 2000} {
		for i := 0; i < 4; i++ {
			jobs = append(jobs, Job{Release: base + i, Deadline: base + i + 3})
		}
	}
	in := NewInstance(jobs)
	split, err := Solver{}.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	mono, err := Solver{NoPreprocess: true}.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if split.Subinstances != 3 {
		t.Fatalf("expected 3 subinstances, got %d", split.Subinstances)
	}
	if split.Spans != mono.Spans {
		t.Fatalf("split spans %d != monolithic %d", split.Spans, mono.Spans)
	}
	if split.States >= mono.States {
		t.Fatalf("preprocessing did not shrink the DP: %d states split vs %d monolithic",
			split.States, mono.States)
	}
}

func TestSolveBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ins := make([]Instance, 40)
	for i := range ins {
		// A mix of feasible and infeasible instances.
		ins[i] = workload.Multiproc(rng, 1+rng.Intn(7), 1+rng.Intn(2), 8+rng.Intn(10), 4)
	}
	for _, s := range []Solver{
		{},
		{Workers: 1},
		{Workers: 3},
		{Objective: ObjectivePower, Alpha: 2},
	} {
		batch := s.SolveBatch(ins)
		if len(batch) != len(ins) {
			t.Fatalf("batch returned %d results for %d instances", len(batch), len(ins))
		}
		for i, in := range ins {
			sol, err := s.Solve(in)
			if (err == nil) != (batch[i].Err == nil) || (err != nil && err.Error() != batch[i].Err.Error()) {
				t.Fatalf("instance %d: batch err %v, sequential %v", i, batch[i].Err, err)
			}
			if err != nil {
				continue
			}
			if batch[i].Solution.Spans != sol.Spans || batch[i].Solution.States != sol.States ||
				math.Abs(batch[i].Solution.Power-sol.Power) > 1e-9 {
				t.Fatalf("instance %d: batch solution %+v differs from sequential %+v",
					i, batch[i].Solution, sol)
			}
		}
	}
	if out := (Solver{}).SolveBatch(nil); len(out) != 0 {
		t.Fatal("empty batch returned results")
	}
}

func TestObjectiveString(t *testing.T) {
	if ObjectiveGaps.String() != "gaps" || ObjectivePower.String() != "power" {
		t.Fatal("objective names changed")
	}
	if Objective(7).String() == "" {
		t.Fatal("unknown objective has empty name")
	}
}
